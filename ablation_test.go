// Ablation benchmarks for the design choices DESIGN.md calls out:
// the per-command chunk window, the scoreboard capacity, the engine's
// NIC queue-pair provisioning, and the NDP bank sizing. Each reports
// the metric the choice trades off.
package dcsctrl_test

import (
	"fmt"
	"testing"

	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
)

// ablationStream measures aggregate engine throughput for k concurrent
// 256 KB GET streams under the given parameters.
func ablationStream(b *testing.B, params core.Params, k int, proc core.Processing) float64 {
	b.Helper()
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.DCSCtrl, params)
	const size = 256 << 10
	const rounds = 4
	done := 0
	for i := 0; i < k; i++ {
		conn := cl.OpenConn(true)
		f, err := cl.Server.StageFile(fmt.Sprintf("f%d", i), make([]byte, size))
		if err != nil {
			b.Fatal(err)
		}
		ff, cn := f, conn
		env.Spawn("stream", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				if _, err := cl.Server.SendFileOp(p, ff, 0, size, cn.ID, proc); err != nil {
					b.Error(err)
					return
				}
				done++
			}
		})
		env.Spawn("sink", func(p *sim.Proc) { cl.ClientRecv(p, cn, rounds*size) })
	}
	end := env.Run(-1)
	return float64(done*size) * 8 / end.Seconds() / 1e9
}

// ablationLatency measures one warm 256 KB op's latency.
func ablationLatency(b *testing.B, params core.Params, proc core.Processing) sim.Time {
	b.Helper()
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.DCSCtrl, params)
	const size = 256 << 10
	f, err := cl.Server.StageFile("obj", make([]byte, size))
	if err != nil {
		b.Fatal(err)
	}
	conn := cl.OpenConn(true)
	var lat sim.Time
	env.Spawn("srv", func(p *sim.Proc) {
		cl.Server.SendFileOp(p, f, 0, size, conn.ID, proc)
		res, err := cl.Server.SendFileOp(p, f, 0, size, conn.ID, proc)
		if err != nil {
			b.Error(err)
			return
		}
		lat = res.Latency
	})
	env.Spawn("cli", func(p *sim.Proc) { cl.ClientRecv(p, conn, 2*size) })
	env.Run(-1)
	return lat
}

// BenchmarkAblationWindow sweeps the per-command in-flight chunk
// window: window 1 serializes read/process/send per chunk; larger
// windows pipeline them (the paper's scoreboard exists to allow this).
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("window-%d", w), func(b *testing.B) {
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.HDC.Window = w
				lat = ablationLatency(b, params, core.ProcMD5)
			}
			b.ReportMetric(lat.Microseconds(), "op-µs")
		})
	}
}

// BenchmarkAblationScoreboard sweeps the scoreboard capacity under 16
// concurrent commands: too few entries throttle concurrency.
func BenchmarkAblationScoreboard(b *testing.B) {
	for _, entries := range []int{4, 16, 128} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.HDC.ScoreboardEntries = entries
				gbps = ablationStream(b, params, 16, core.ProcNone)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}

// BenchmarkAblationEngineNICQueues sweeps the engine's NIC queue-pair
// count at 40 GbE — the provisioning knob that lets the engine scale
// past a single ~12 Gbps transmit pipeline.
func BenchmarkAblationEngineNICQueues(b *testing.B) {
	for _, q := range []int{1, 4} {
		b.Run(fmt.Sprintf("queues-%d", q), func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.NumSSDs = 6
				params.NIC.WireBps = 40e9
				params.HostNICQueues = 4
				params.EngineNICQueues = q
				params.PCIe.LinkBps = 126e9 // Gen3, so the fabric isn't the cap
				params.PCIe.CoreBps = 512e9
				params.HDC.ScoreboardEntries = 256
				params.HDC.ChunkCount = 1024
				params.HDC.DDR3Bytes = 192 << 20
				gbps = ablationStream(b, params, 24, core.ProcNone)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}

// BenchmarkAblationNDPProvisioning compares a 10-Gbps MD5 bank (the
// paper's provisioning) against an over- and under-provisioned one on
// a line-rate stream: the bank becomes the pipeline bottleneck exactly
// when its aggregate rate falls below the wire.
func BenchmarkAblationNDPProvisioning(b *testing.B) {
	for _, target := range []float64{2e9, 10e9, 40e9} {
		b.Run(fmt.Sprintf("bank-%.0fG", target/1e9), func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.HDC.NDPTargetBps = target
				gbps = ablationStream(b, params, 8, core.ProcMD5)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}
