package dcsctrl_test

import (
	"bytes"
	"fmt"
	"testing"

	dcsctrl "dcsctrl"
	"dcsctrl/internal/bench"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/sim"
)

// The flow-level wire fast path (DESIGN.md §13) must be timeline
// invisible: every figure render, workload fingerprint, and
// fault-recovery counter has to come out byte-identical with the
// knob on (WireFlow, the default) and off (WireFrame). The NIC-level
// suite in internal/nic/fidelity_test.go checks frame-by-frame
// delivery instants; these tests check the same property end to end
// through the full testbed, where any divergence would silently skew
// the paper's reproduced results.

// swiftFidelityFingerprint runs the object-storage workload on a DCS-ctrl
// testbed at the given fidelity and flattens every result field that
// is a function of the simulated timeline into a string.
func swiftFidelityFingerprint(t *testing.T, fid sim.WireFidelity, opts ...dcsctrl.Option) (string, sim.Stats, dcsctrl.RecoveryStats) {
	t.Helper()
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, opts...)
	tb.Env.SetWireFidelity(fid)
	sc := dcsctrl.DefaultSwiftConfig()
	sc.Conns = 4
	sc.Warmup = 1 * dcsctrl.Millisecond
	sc.Duration = 8 * dcsctrl.Millisecond
	res, err := tb.RunSwift(sc)
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("req=%d get=%d put=%d bytes=%d errs=%d elapsed=%v cpu=%.12f gbps=%.12f getp50=%v getp99=%v putp50=%v putp99=%v",
		res.Requests, res.GETs, res.PUTs, res.Bytes, res.Errors, res.Elapsed,
		res.ServerCPU, res.Gbps,
		res.GETLatency.Percentile(50), res.GETLatency.Percentile(99),
		res.PUTLatency.Percentile(50), res.PUTLatency.Percentile(99))
	return fp, tb.Env.Stats(), tb.ServerRecoveryStats()
}

// TestFidelitySwiftFingerprint pins the Swift workload byte-identical
// across fidelities and proves the knob is not dead: the flow run
// must actually collapse frames into segments, and spend fewer
// kernel events doing it.
func TestFidelitySwiftFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	frameFP, frameStats, _ := swiftFidelityFingerprint(t, sim.WireFrame)
	flowFP, flowStats, _ := swiftFidelityFingerprint(t, sim.WireFlow)
	if frameFP != flowFP {
		t.Fatalf("Swift fingerprint diverged across fidelities:\nframe: %s\nflow:  %s", frameFP, flowFP)
	}
	if frameStats.Segments != 0 {
		t.Fatalf("WireFrame run produced %d flow segments", frameStats.Segments)
	}
	if flowStats.Segments == 0 || flowStats.SegFrames == 0 {
		t.Fatal("flow fast path never fired on the Swift workload (knob dead)")
	}
	if flowStats.Events >= frameStats.Events {
		t.Fatalf("flow run spent %d events, frame run %d: fast path saved nothing",
			flowStats.Events, frameStats.Events)
	}
}

// TestFidelitySwiftFaultFingerprint repeats the comparison under the
// light fault profile: recovery (replays, BD refetches, retries) must
// take the per-frame path and land on the identical timeline.
func TestFidelitySwiftFaultFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run under faults")
	}
	faults := dcsctrl.WithFaults(99, fault.Light())
	frameFP, _, frameRec := swiftFidelityFingerprint(t, sim.WireFrame, faults)
	flowFP, flowStats, flowRec := swiftFidelityFingerprint(t, sim.WireFlow, faults)
	if frameFP != flowFP {
		t.Fatalf("faulty Swift fingerprint diverged:\nframe: %s\nflow:  %s", frameFP, flowFP)
	}
	if frameRec != flowRec {
		t.Fatalf("recovery stats diverged:\nframe: %+v\nflow:  %+v", frameRec, flowRec)
	}
	// No Segments assertion here: with fault sites armed the flow
	// machinery demotes to per-frame fidelity and only re-promotes once
	// the wire fully drains, which a busy workload under the light
	// profile may never allow. That conservatism is the point — the
	// fault-free test above proves the knob is alive.
	_ = flowStats
}

// TestFidelityHDFSFingerprint pins the balancer workload (DCS-ctrl on
// both nodes — the heaviest bulk-stream user in the repo).
func TestFidelityHDFSFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	run := func(fid sim.WireFidelity) (string, sim.Stats) {
		tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithClientConfig(dcsctrl.DCSCtrl))
		tb.Env.SetWireFidelity(fid)
		hc := dcsctrl.DefaultHDFSConfig()
		hc.Warmup = 1 * dcsctrl.Millisecond
		hc.Duration = 8 * dcsctrl.Millisecond
		res, err := tb.RunHDFS(hc)
		if err != nil {
			t.Fatal(err)
		}
		fp := fmt.Sprintf("blocks=%d bytes=%d errs=%d elapsed=%v send=%.12f recv=%.12f gbps=%.12f",
			res.Blocks, res.Bytes, res.Errors, res.Elapsed,
			res.SenderCPU, res.ReceiverCPU, res.Gbps)
		return fp, tb.Env.Stats()
	}
	frameFP, frameStats := run(sim.WireFrame)
	flowFP, flowStats := run(sim.WireFlow)
	if frameFP != flowFP {
		t.Fatalf("HDFS fingerprint diverged across fidelities:\nframe: %s\nflow:  %s", frameFP, flowFP)
	}
	if flowStats.Segments == 0 || flowStats.SegFrames == 0 {
		t.Fatal("flow fast path never fired on the HDFS workload (knob dead)")
	}
	if flowStats.Events >= frameStats.Events {
		t.Fatalf("flow run spent %d events, frame run %d", flowStats.Events, frameStats.Events)
	}
}

// TestFidelityFigureRenders renders the latency-breakdown and
// throughput figures at both fidelities via the package-wide default
// (figures build their own environments internally) and compares the
// full rendered output byte for byte.
func TestFidelityFigureRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs")
	}
	render := func(fid sim.WireFidelity) string {
		sim.SetDefaultWireFidelity(fid)
		defer sim.SetDefaultWireFidelity(sim.WireFlow)
		var buf bytes.Buffer
		bench.RunFigure3().Render(&buf)
		bench.RunFigure8().Render(&buf)
		bench.Figure11a().Render(&buf)
		bench.Figure11b().Render(&buf)
		return buf.String()
	}
	frame := render(sim.WireFrame)
	flow := render(sim.WireFlow)
	if frame != flow {
		t.Fatalf("figure renders diverged across fidelities:\n--- frame ---\n%s\n--- flow ---\n%s", frame, flow)
	}
}
