// Handler-proc equivalence suite: run-to-completion handler dispatch
// (sim.SetDefaultHandlerProcs) is a pure execution-strategy change —
// the same events at the same instants with the same seq tie-breaking,
// minus the goroutine park/resume handoffs. Every observable of a run
// must therefore be byte-identical with the knob on or off, across
// fusion, wire fidelity, shard decomposition, and the seed matrix. CI
// runs this file under -race: handler bodies execute inline on the
// dispatcher, so the detector must stay as silent as it is for the
// goroutine flavor.
package dcsctrl_test

import (
	"testing"

	"dcsctrl/internal/bench"
	"dcsctrl/internal/sim"
)

// withHandlerProcs runs fn with handler-proc dispatch forced on or
// off, restoring the previous default afterwards.
func withHandlerProcs(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := sim.DefaultHandlerProcs()
	sim.SetDefaultHandlerProcs(on)
	defer sim.SetDefaultHandlerProcs(prev)
	fn()
}

// TestHandlerEquivRack pins knob invariance across shard
// decompositions: for every seed and domain count, the handler-mode
// rack must reproduce the goroutine-mode fingerprint, makespan, and
// event count exactly — and the knob must be demonstrably alive
// (handler mode dispatches handlers and parks less; goroutine mode
// dispatches none).
func TestHandlerEquivRack(t *testing.T) {
	seeds := equivSeeds
	domainCounts := []int{1, 2, 4}
	if testing.Short() {
		seeds = seeds[:1]
		domainCounts = []int{2}
	}
	for _, seed := range seeds {
		for _, domains := range domainCounts {
			cfg := bench.RackConfig{Nodes: 8, Domains: domains, Bytes: 4 << 10, Seed: seed}
			var ref, res bench.RackResult
			withHandlerProcs(t, false, func() { ref = bench.RunRack(cfg) })
			withHandlerProcs(t, true, func() { res = bench.RunRack(cfg) })
			if got, want := res.Fingerprint(), ref.Fingerprint(); got != want {
				t.Fatalf("seed %d domains %d: handler fingerprint %s != goroutine %s", seed, domains, got, want)
			}
			if res.Makespan != ref.Makespan {
				t.Fatalf("seed %d domains %d: handler makespan %v != %v", seed, domains, res.Makespan, ref.Makespan)
			}
			if res.Events != ref.Events {
				t.Fatalf("seed %d domains %d: handler events %d != %d", seed, domains, res.Events, ref.Events)
			}
			if ref.ShardStats.HandlerDispatches != 0 {
				t.Fatalf("seed %d domains %d: goroutine mode dispatched %d handlers (knob leak)",
					seed, domains, ref.ShardStats.HandlerDispatches)
			}
			if res.ShardStats.HandlerDispatches == 0 {
				t.Fatalf("seed %d domains %d: handler mode dispatched no handlers (knob dead)", seed, domains)
			}
			if res.ShardStats.Handoffs >= ref.ShardStats.Handoffs {
				t.Fatalf("seed %d domains %d: handler mode handoffs %d not below goroutine %d (conversion dead)",
					seed, domains, res.ShardStats.Handoffs, ref.ShardStats.Handoffs)
			}
		}
	}
}

// TestHandlerEquivMatrix crosses the knob with the other two kernel
// fast paths — continuation fusion and the flow-level wire model —
// over the seed matrix. All three are schedule-preserving, so every
// cell must reproduce the per-seed reference fingerprint (goroutine
// dispatch, fusion on, flow wire) byte-for-byte.
func TestHandlerEquivMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full knob × fusion × fidelity × seed matrix")
	}
	for _, seed := range equivSeeds {
		cfg := bench.RackConfig{Nodes: 8, Domains: 2, Bytes: 4 << 10, Seed: seed}
		var ref bench.RackResult
		withHandlerProcs(t, false, func() { ref = bench.RunRack(cfg) })
		refFP := ref.Fingerprint()
		for _, handler := range []bool{false, true} {
			for _, fusion := range []bool{true, false} {
				for _, wire := range []sim.WireFidelity{sim.WireFlow, sim.WireFrame} {
					withHandlerProcs(t, handler, func() {
						withFusion(t, fusion, func() {
							prev := sim.DefaultWireFidelity()
							sim.SetDefaultWireFidelity(wire)
							defer sim.SetDefaultWireFidelity(prev)
							res := bench.RunRack(cfg)
							if fp := res.Fingerprint(); fp != refFP {
								t.Fatalf("seed %d handler=%v fusion=%v wire=%v: fingerprint %s != reference %s",
									seed, handler, fusion, wire, fp, refFP)
							}
						})
					})
				}
			}
		}
	}
}
