// HDFS example: run the balancer workload — a sender node reads
// blocks from its SSD and ships them; the receiver CRC32-checks and
// stores them — with both nodes on the design under test (the paper's
// Figure 12b experiment).
package main

import (
	"fmt"

	"dcsctrl"
)

func main() {
	for _, kind := range []dcsctrl.Config{dcsctrl.SWP2P, dcsctrl.DCSCtrl} {
		tb := dcsctrl.NewTestbed(kind, dcsctrl.WithClientConfig(kind))
		cfg := dcsctrl.DefaultHDFSConfig()
		cfg.Streams = 4
		cfg.Duration = 20 * dcsctrl.Millisecond
		res, err := tb.RunHDFS(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9v moved %3d blocks  %5.2f Gbps  sender CPU %5.1f%%  receiver CPU %5.1f%%\n",
			kind, res.Blocks, res.Gbps, res.SenderCPU*100, res.ReceiverCPU*100)
	}
	fmt.Println("\nUnder DCS-ctrl both sides run direct device-to-device transfers")
	fmt.Println("through their HDC Engines; the CRC32 moves to an NDP unit, so the")
	fmt.Println("receiver no longer gathers packets or drives a GPU.")
}
