// Swift example: run the OpenStack-Swift-like object workload (PUT/GET
// with MD5, Poisson arrivals, Dropbox file sizes) on the software-
// controlled-P2P baseline and on DCS-ctrl, and compare server CPU at
// the same offered load — the paper's Figure 12a experiment.
package main

import (
	"fmt"

	"dcsctrl"
)

func run(kind dcsctrl.Config) dcsctrl.SwiftResult {
	tb := dcsctrl.NewTestbed(kind)
	cfg := dcsctrl.DefaultSwiftConfig()
	cfg.Conns = 8
	cfg.MeanGap = 250 * dcsctrl.Microsecond
	cfg.Duration = 20 * dcsctrl.Millisecond
	res, err := tb.RunSwift(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	for _, kind := range []dcsctrl.Config{dcsctrl.SWP2P, dcsctrl.DCSCtrl} {
		res := run(kind)
		fmt.Printf("%-9v %4d requests (%d GET / %d PUT)  %5.2f Gbps  server CPU %5.1f%%\n",
			kind, res.Requests, res.GETs, res.PUTs, res.Gbps, res.ServerCPU*100)
		for cat, busy := range res.ServerBusy {
			frac := busy.Seconds() / res.Elapsed.Seconds() / 6 * 100
			if frac >= 0.5 {
				fmt.Printf("          %-12s %5.1f%%\n", cat, frac)
			}
		}
	}
	fmt.Println("\nThe DCS-ctrl server keeps the request handling (user time) but")
	fmt.Println("sheds the storage, network, GPU-control, and copy work onto the")
	fmt.Println("HDC Engine — the paper's ~52% CPU-utilization reduction.")
}
