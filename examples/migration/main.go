// Migration example: rebalance objects across SSDs entirely through
// the HDC Engine — SSD→[CRC32]→SSD copies with zero host data-path
// CPU, the flexibility story of attaching more off-the-shelf devices
// to the same engine (§III-C).
package main

import (
	"bytes"
	"fmt"
	"log"

	"dcsctrl"
)

func main() {
	params := dcsctrl.DefaultParams()
	params.NumSSDs = 4
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithParams(params))

	// Stage objects; round-robin placement lands them on SSDs 0..3.
	const objSize = 512 << 10
	var srcs []*dcsctrl.File
	contents := make([][]byte, 4)
	for i := range contents {
		contents[i] = bytes.Repeat([]byte{byte('A' + i)}, objSize)
		f, err := tb.StageFile(fmt.Sprintf("obj-%d", i), contents[i])
		if err != nil {
			log.Fatal(err)
		}
		srcs = append(srcs, f)
	}
	// Destination files continue the round robin onto the same SSDs,
	// shifted — every copy crosses devices.
	var dsts []*dcsctrl.File
	for i := range srcs {
		f, err := tb.CreateFile(fmt.Sprintf("moved-%d", i), objSize)
		if err != nil {
			log.Fatal(err)
		}
		dsts = append(dsts, f)
	}

	tb.Go("migrator", func(p *dcsctrl.Proc) {
		for i := range srcs {
			res, err := tb.CopyFile(p, srcs[i], 0, dsts[i], 0, objSize, dcsctrl.ProcCRC32)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("moved obj-%d -> moved-%d in %v (crc32 %x)\n", i, i, res.Latency, res.Digest)
		}
	})
	end := tb.Run()

	ok := true
	for i := range dsts {
		if !bytes.Equal(tb.ReadBack(dsts[i]), contents[i]) {
			ok = false
		}
	}
	fmt.Printf("\nmigrated %d objects (%d KiB each) in %v total; verified: %v\n",
		len(srcs), objSize>>10, end, ok)
	fmt.Printf("host CPU spent: %.1f%% of six cores — the data never touched the host\n",
		tb.ServerUtilization()*100)
}
