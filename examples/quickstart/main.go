// Quickstart: build a DCS-ctrl testbed, stage an object on the SSD,
// and ship it to the network peer through the HDC Engine with MD5
// integrity computed by the near-device processing unit — one
// sendfile-like call, no host CPU on the data path.
package main

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"log"

	"dcsctrl"
)

func main() {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	f, err := tb.StageFile("hello-object", payload)
	if err != nil {
		log.Fatal(err)
	}
	conn := tb.OpenConnection(true) // data-plane: owned by the HDC Engine

	var res dcsctrl.OpResult
	var received []byte
	tb.Go("server-app", func(p *dcsctrl.Proc) {
		var err error
		res, err = tb.SendFile(p, f, 0, len(payload), conn, dcsctrl.ProcMD5)
		if err != nil {
			log.Fatal(err)
		}
	})
	tb.Go("client-app", func(p *dcsctrl.Proc) {
		received = tb.ClientRecv(p, conn, len(payload))
	})
	tb.Run()

	want := md5.Sum(payload)
	fmt.Printf("transferred %d KiB in %v (simulated)\n", len(payload)>>10, res.Latency)
	fmt.Printf("NDP MD5:    %x\n", res.Digest)
	fmt.Printf("crypto/md5: %x\n", want)
	fmt.Printf("digests match: %v, payload intact: %v\n",
		bytes.Equal(res.Digest, want[:]), bytes.Equal(received, payload))
	fmt.Printf("latency breakdown: %v\n", res.Breakdown)
	if budget := tb.FPGABudget(); budget != nil {
		luts, regs, brams, power := budget.Totals()
		fmt.Printf("HDC Engine on Virtex-7: %d LUTs, %d registers, %d BRAMs, %.2f W\n",
			luts, regs, brams, power)
	}
}
