// NDP pipeline example: the applicability story of §III-D. The same
// object is shipped SSD→NIC through different near-device processing
// units — integrity, encryption, compression — while the FPGA budget
// tracks what each provisioning costs, and the receive side proves
// the transforms are real by inverting them.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dcsctrl"
	"dcsctrl/internal/ndp"
)

func ship(proc dcsctrl.Processing, payload []byte) (dcsctrl.OpResult, []byte) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
	f, err := tb.StageFile("obj", payload)
	if err != nil {
		log.Fatal(err)
	}
	conn := tb.OpenConnection(true)
	var res dcsctrl.OpResult
	tb.Go("server", func(p *dcsctrl.Proc) {
		res, err = tb.SendFile(p, f, 0, len(payload), conn, proc)
		if err != nil {
			log.Fatal(err)
		}
	})
	tb.Run()
	// Everything the engine transmitted has now landed in the client's
	// reassembly stream (compressed lengths are data-dependent, so the
	// example reads whatever arrived rather than a fixed count).
	return res, drainClient(tb, conn)
}

// drainClient pulls whatever arrived on the client connection.
func drainClient(tb *dcsctrl.Testbed, conn dcsctrl.Conn) []byte {
	n := tb.Cluster.Client.StreamLen(conn.ID)
	var out []byte
	tb.Go("drain", func(p *dcsctrl.Proc) {
		out = tb.ClientRecv(p, conn, n)
	})
	tb.Run()
	return out
}

func main() {
	payload := bytes.Repeat([]byte("device-centric servers move data without CPUs. "), 3000)

	fmt.Println("pipeline              latency      bytes on wire  verification")
	fmt.Println("--------------------  -----------  -------------  ------------")

	res, got := ship(dcsctrl.ProcNone, payload)
	fmt.Printf("%-21s %-12v %-14d payload intact: %v\n", "SSD->NIC", res.Latency, len(got), bytes.Equal(got, payload))

	res, got = ship(dcsctrl.ProcMD5, payload)
	fmt.Printf("%-21s %-12v %-14d digest len: %d\n", "SSD->MD5->NIC", res.Latency, len(got), len(res.Digest))

	res, got = ship(dcsctrl.ProcAES256, payload)
	unit := &ndp.AES256{Key: [32]byte{0x2a}} // the engine's provisioned key slot
	plain, _, _ := unit.Transform(got)
	fmt.Printf("%-21s %-12v %-14d decrypts back: %v\n", "SSD->AES256->NIC", res.Latency, len(got), bytes.Equal(plain, payload))

	res, got = ship(dcsctrl.ProcGZIP, payload)
	plain, _, err := (ndp.GUNZIP{}).Transform(got)
	fmt.Printf("%-21s %-12v %-14d gunzips back: %v (ratio %.1fx), err=%v\n",
		"SSD->GZIP->NIC", res.Latency, len(got), bytes.Equal(plain, payload),
		float64(len(payload))/float64(len(got)), err)
}
