package dcsctrl_test

import (
	"bytes"
	"fmt"
	"testing"

	"dcsctrl"
	"dcsctrl/internal/bench"
	"dcsctrl/internal/core"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/sim"
)

// withFusion runs fn with the kernel's continuation fusion forced on
// or off, restoring the previous default afterwards. Fusion is a pure
// fast path: it may only fire when inlining a continuation is
// schedule-identical to enqueueing it, so everything observable about
// a run — figure renders, simulated clocks, fault statistics — must be
// bit-identical in both modes. These tests pin that invariant.
func withFusion(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := sim.DefaultFusion()
	sim.SetDefaultFusion(on)
	defer sim.SetDefaultFusion(prev)
	fn()
}

// TestFusionEquivalenceFigures renders the deterministic microbenchmark
// figures under both kernel modes and requires byte-identical output.
func TestFusionEquivalenceFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure set under both kernel modes")
	}
	figures := []struct {
		name string
		run  func() string
	}{
		{"fig3", func() string { var b bytes.Buffer; bench.RunFigure3().Render(&b); return b.String() }},
		{"fig8", func() string { var b bytes.Buffer; bench.RunFigure8().Render(&b); return b.String() }},
		{"fig11a", func() string { var b bytes.Buffer; bench.Figure11a().Render(&b); return b.String() }},
		{"fig11b", func() string { var b bytes.Buffer; bench.Figure11b().Render(&b); return b.String() }},
	}
	for _, fig := range figures {
		t.Run(fig.name, func(t *testing.T) {
			var fused, unfused string
			withFusion(t, true, func() { fused = fig.run() })
			withFusion(t, false, func() { unfused = fig.run() })
			if fused != unfused {
				t.Errorf("fused and unfused renders differ:\n--- fused ---\n%s\n--- unfused ---\n%s", fused, unfused)
			}
		})
	}
}

// TestFusionEquivalenceSwift fingerprints a fault-injected Swift run
// (request counts, CPU accounting, latencies, final clock, per-site
// fault fire counts) under both kernel modes.
func TestFusionEquivalenceSwift(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run workload sweep")
	}
	for _, cfg := range []dcsctrl.Config{dcsctrl.SWP2P, dcsctrl.DCSCtrl} {
		t.Run(cfg.String(), func(t *testing.T) {
			var fused, unfused string
			withFusion(t, true, func() { fused = swiftFingerprint(t, cfg, 11, 7) })
			withFusion(t, false, func() { unfused = swiftFingerprint(t, cfg, 11, 7) })
			if fused != unfused {
				t.Fatalf("fused and unfused fingerprints differ:\n fused=%s\n unfused=%s", fused, unfused)
			}
		})
	}
}

// TestFusionEquivalenceRecovery drives the engine-failure fallback path
// under both kernel modes: recovery statistics, the final simulated
// clock, and the injector's fire counts must match exactly.
func TestFusionEquivalenceRecovery(t *testing.T) {
	run := func() string {
		tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithFaults(1, fault.EngineFail()))
		runTransferPair(t, tb, 256<<10)
		return fmt.Sprintf("%+v now=%d faults=%s",
			tb.ServerRecoveryStats(), tb.Env.Now(), tb.Faults().StatsString())
	}
	var fused, unfused string
	withFusion(t, true, func() { fused = run() })
	withFusion(t, false, func() { unfused = run() })
	if fused != unfused {
		t.Fatalf("recovery diverged:\n fused=%s\n unfused=%s", fused, unfused)
	}
}

// TestFusionActuallyFuses guards against the toggle becoming a dead
// knob: with fusion on, a DCS-ctrl protocol cell must inline
// continuations and dispatch strictly fewer events than the unfused
// run, while completing the same I/Os.
func TestFusionActuallyFuses(t *testing.T) {
	var fused, unfused bench.ProtocolStats
	withFusion(t, true, func() { fused = bench.MeasureProtocol("dcs", core.DCSCtrl, 8, 64<<10) })
	withFusion(t, false, func() { unfused = bench.MeasureProtocol("dcs", core.DCSCtrl, 8, 64<<10) })
	if fused.Fused == 0 {
		t.Error("fusion enabled but no continuation was ever inlined")
	}
	if unfused.Fused != 0 {
		t.Errorf("fusion disabled but %d continuations were inlined", unfused.Fused)
	}
	if fused.IOs != unfused.IOs {
		t.Errorf("I/O count diverged: fused %d, unfused %d", fused.IOs, unfused.IOs)
	}
	if fused.Events >= unfused.Events {
		t.Errorf("fusion saved no events: fused %d, unfused %d", fused.Events, unfused.Events)
	}
}
