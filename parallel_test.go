// Tests for the parallel experiment runner: fanning independent trial
// cells across workers must produce byte-identical figures to a serial
// run (results are keyed by cell index, never by completion order),
// and the worker pool itself must cover every index exactly once.
// CI runs this file under -race: cells share no mutable state, so the
// race detector should stay silent at any worker count.
package dcsctrl_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"sync/atomic"
	"testing"

	"dcsctrl/internal/bench"
	"dcsctrl/internal/core"
)

// renderFingerprint hashes a figure's rendered output — the same bytes
// dcsbench prints — so equivalence failures show up as hash diffs.
func renderFingerprint(render func(w *bytes.Buffer)) (string, []byte) {
	var buf bytes.Buffer
	render(&buf)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), buf.Bytes()
}

// TestParallelSweepEquivalence runs the full size sweep serially and
// with 8 workers: structures and rendered bytes must match exactly.
func TestParallelSweepEquivalence(t *testing.T) {
	for _, proc := range []core.Processing{core.ProcNone, core.ProcMD5} {
		serial := bench.RunSizeSweepParallel(proc, 1)
		par := bench.RunSizeSweepParallel(proc, 8)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("proc=%v: parallel sweep results differ from serial\nserial: %+v\nparallel: %+v", proc, serial, par)
		}
		sHash, sBytes := renderFingerprint(func(w *bytes.Buffer) { serial.Render(w) })
		pHash, pBytes := renderFingerprint(func(w *bytes.Buffer) { par.Render(w) })
		if sHash != pHash {
			t.Fatalf("proc=%v: rendered output differs\nserial:\n%s\nparallel:\n%s", proc, sBytes, pBytes)
		}
	}
}

// TestParallelFigure11Equivalence checks the latency-breakdown
// microbenchmarks cell-fanned vs serial.
func TestParallelFigure11Equivalence(t *testing.T) {
	a1, a8 := bench.Figure11aParallel(1), bench.Figure11aParallel(8)
	if !reflect.DeepEqual(a1, a8) {
		t.Fatal("Figure 11a parallel results differ from serial")
	}
	b1, b8 := bench.Figure11bParallel(1), bench.Figure11bParallel(8)
	if !reflect.DeepEqual(b1, b8) {
		t.Fatal("Figure 11b parallel results differ from serial")
	}
}

// TestParallelFigure12Equivalence checks the application experiment
// (six independent clusters) cell-fanned vs serial, including the
// rendered chart bytes.
func TestParallelFigure12Equivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config workload run")
	}
	serial := bench.RunFigure12Parallel(bench.DefaultFig12Swift(), bench.DefaultFig12HDFS(), 1)
	par := bench.RunFigure12Parallel(bench.DefaultFig12Swift(), bench.DefaultFig12HDFS(), 8)
	sHash, sBytes := renderFingerprint(func(w *bytes.Buffer) { serial.Render(w) })
	pHash, pBytes := renderFingerprint(func(w *bytes.Buffer) { par.Render(w) })
	if sHash != pHash {
		t.Fatalf("Figure 12 rendered output differs\nserial:\n%s\nparallel:\n%s", sBytes, pBytes)
	}
	if serial.CPUReduction != par.CPUReduction {
		t.Fatalf("CPU reduction differs: serial %v parallel %v", serial.CPUReduction, par.CPUReduction)
	}
}

// TestParallelFaultMatrix runs the recovery matrix with workers and
// checks it is deterministic and error-free: same injector seeds, same
// faults, zero application-visible errors in every cell.
func TestParallelFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config workload run")
	}
	serial := bench.RunFaultMatrix()
	par := bench.RunFaultMatrixParallel(8)
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("fault matrix parallel results differ from serial")
	}
	for _, c := range par.Cells {
		if c.Errors != 0 {
			t.Errorf("%s/%s: %d application-visible errors", c.Profile, c.Config, c.Errors)
		}
		if c.Requests == 0 {
			t.Errorf("%s/%s: no requests completed", c.Profile, c.Config)
		}
		if c.Profile == "heavy" && c.Injected == 0 {
			t.Errorf("%s/%s: heavy profile injected nothing", c.Profile, c.Config)
		}
		if c.Profile == "engine-fail" && c.Config == core.DCSCtrl && !c.EngineFailed {
			t.Errorf("engine-fail/dcs-ctrl: engine not declared failed")
		}
	}
}

// TestParallelForCoversAllIndices pins the pool's contract: every
// index in [0, n) runs exactly once, for worker counts below, at, and
// above n, including the serial degenerate case.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 37
		var hits [n]atomic.Int32
		bench.ParallelFor(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
	// n = 0 must not call fn or hang.
	bench.ParallelFor(0, 4, func(i int) { t.Fatalf("fn called for n=0 (i=%d)", i) })
}

// TestWorkersNormalization pins the -parallel flag semantics.
func TestWorkersNormalization(t *testing.T) {
	if got := bench.Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := bench.Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := bench.Workers(-1); got < 1 {
		t.Fatalf("Workers(-1) = %d, want >= 1", got)
	}
}
