package dcsctrl_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"dcsctrl"
	"dcsctrl/internal/fault"
)

// swiftFingerprint runs a short Swift workload under fault injection
// and hashes everything observable about the run: request counts and
// byte totals, per-category CPU busy time, latency samples, the final
// simulated clock, and the injector's per-site fire counts. Two runs
// with the same seeds must produce identical hashes.
func swiftFingerprint(t *testing.T, cfg dcsctrl.Config, workloadSeed, faultSeed uint64) string {
	t.Helper()
	tb := dcsctrl.NewTestbed(cfg, dcsctrl.WithFaults(faultSeed, fault.Light()))
	sc := dcsctrl.DefaultSwiftConfig()
	sc.Seed = workloadSeed
	sc.Conns = 4
	sc.Warmup = 1 * dcsctrl.Millisecond
	sc.Duration = 5 * dcsctrl.Millisecond
	res, err := tb.RunSwift(sc)
	if err != nil {
		t.Fatal(err)
	}

	h := sha256.New()
	fmt.Fprintf(h, "req=%d get=%d put=%d bytes=%d elapsed=%d errors=%d gbps=%.12e cpu=%.12e\n",
		res.Requests, res.GETs, res.PUTs, res.Bytes, res.Elapsed, res.Errors, res.Gbps, res.ServerCPU)
	cats := make([]string, 0, len(res.ServerBusy))
	for c := range res.ServerBusy {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(h, "busy[%s]=%d\n", c, res.ServerBusy[dcsctrl.Category(c)])
	}
	fmt.Fprintf(h, "getlat=%+v putlat=%+v\n", res.GETLatency, res.PUTLatency)
	fmt.Fprintf(h, "now=%d\n", tb.Env.Now())
	fmt.Fprintf(h, "faults=%s\n", tb.Faults().StatsString())
	return hex.EncodeToString(h.Sum(nil))
}

// TestDeterminism runs every configuration twice with identical seeds
// (fingerprints must match bit for bit) and once with different seeds
// (fingerprints must diverge — otherwise the seeds are dead knobs and
// the identical-hash check proves nothing).
func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run workload sweep")
	}
	configs := []dcsctrl.Config{dcsctrl.Vanilla, dcsctrl.SWOpt, dcsctrl.SWP2P, dcsctrl.DCSCtrl}
	for _, cfg := range configs {
		t.Run(cfg.String(), func(t *testing.T) {
			a := swiftFingerprint(t, cfg, 11, 7)
			b := swiftFingerprint(t, cfg, 11, 7)
			if a != b {
				t.Fatalf("same seeds, different fingerprints:\n a=%s\n b=%s", a, b)
			}
			c := swiftFingerprint(t, cfg, 12, 7)
			if c == a {
				t.Fatal("different workload seed produced an identical fingerprint")
			}
			d := swiftFingerprint(t, cfg, 11, 8)
			if d == a {
				t.Fatal("different fault seed produced an identical fingerprint")
			}
		})
	}
}
