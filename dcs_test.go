package dcsctrl_test

import (
	"bytes"
	"crypto/md5"
	"testing"

	"dcsctrl"
)

func payload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*11 + 3)
	}
	return out
}

func TestQuickstartFlow(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
	content := payload(128 << 10)
	f, err := tb.StageFile("obj", content)
	if err != nil {
		t.Fatal(err)
	}
	conn := tb.OpenConnection(true)
	var res dcsctrl.OpResult
	var got []byte
	tb.Go("server", func(p *dcsctrl.Proc) {
		res, err = tb.SendFile(p, f, 0, len(content), conn, dcsctrl.ProcMD5)
	})
	tb.Go("client", func(p *dcsctrl.Proc) {
		got = tb.ClientRecv(p, conn, len(content))
	})
	tb.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := md5.Sum(content)
	if !bytes.Equal(res.Digest, want[:]) {
		t.Fatalf("digest = %x", res.Digest)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("payload mismatch")
	}
	if res.Latency <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestUploadFlow(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
	content := payload(96 << 10)
	f, err := tb.CreateFile("upload", len(content))
	if err != nil {
		t.Fatal(err)
	}
	conn := tb.OpenConnection(true)
	tb.Go("client", func(p *dcsctrl.Proc) {
		tb.ClientSend(p, conn, content)
	})
	tb.Go("server", func(p *dcsctrl.Proc) {
		if _, err := tb.RecvFile(p, conn, f, 0, len(content), dcsctrl.ProcCRC32); err != nil {
			t.Error(err)
		}
	})
	tb.Run()
	if got := tb.ReadBack(f); !bytes.Equal(got, content) {
		t.Fatal("flash contents differ")
	}
}

func TestAllConfigsThroughFacade(t *testing.T) {
	content := payload(64 << 10)
	for _, kind := range []dcsctrl.Config{
		dcsctrl.Vanilla, dcsctrl.SWOpt, dcsctrl.SWP2P, dcsctrl.DevIntegration, dcsctrl.DCSCtrl,
	} {
		tb := dcsctrl.NewTestbed(kind)
		f, err := tb.StageFile("obj", content)
		if err != nil {
			t.Fatal(err)
		}
		conn := tb.OpenConnection(true)
		var got []byte
		tb.Go("server", func(p *dcsctrl.Proc) {
			if _, err := tb.SendFile(p, f, 0, len(content), conn, dcsctrl.ProcNone); err != nil {
				t.Error(kind, err)
			}
		})
		tb.Go("client", func(p *dcsctrl.Proc) {
			got = tb.ClientRecv(p, conn, len(content))
		})
		tb.Run()
		if !bytes.Equal(got, content) {
			t.Fatalf("%v: payload mismatch", kind)
		}
	}
}

func TestFPGABudgetExposure(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
	budget := tb.FPGABudget()
	if budget == nil {
		t.Fatal("no budget on DCS testbed")
	}
	luts, _, brams, _ := budget.Totals()
	if luts < 116344 || brams < 442 {
		t.Fatalf("budget below base design: %d LUTs, %d BRAMs", luts, brams)
	}
	if dcsctrl.NewTestbed(dcsctrl.SWOpt).FPGABudget() != nil {
		t.Fatal("non-DCS testbed reports a budget")
	}
}

func TestServerAccounting(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.SWOpt)
	content := payload(64 << 10)
	f, _ := tb.StageFile("obj", content)
	conn := tb.OpenConnection(true)
	tb.Go("server", func(p *dcsctrl.Proc) {
		tb.SendFile(p, f, 0, len(content), conn, dcsctrl.ProcNone)
	})
	tb.Go("client", func(p *dcsctrl.Proc) { tb.ClientRecv(p, conn, len(content)) })
	tb.Run()
	if tb.ServerUtilization() <= 0 {
		t.Fatal("no utilization recorded")
	}
	if len(tb.ServerBusy()) == 0 {
		t.Fatal("no busy categories")
	}
	tb.ResetServerAccounting()
	if tb.ServerUtilization() != 0 {
		t.Fatal("reset did not clear accounting")
	}
}

func TestScalabilityProjection(t *testing.T) {
	sc, err := dcsctrl.NewScalability(9.0, 0.30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.CoresAt(40); got < 7.9 || got > 8.1 {
		t.Fatalf("cores at 40G = %v, want 8", got)
	}
	if got := sc.MaxGbps(6, 40); got < 29.9 || got > 30.1 {
		t.Fatalf("max = %v, want 30", got)
	}
	if got := sc.MaxGbps(60, 40); got != 40 {
		t.Fatalf("wire cap broken: %v", got)
	}
	if _, err := dcsctrl.NewScalability(0, 0.3, 6); err == nil {
		t.Fatal("bad operating point accepted")
	}
	curve := sc.Curve(40, 4)
	if len(curve) != 5 || curve[4][0] != 40 {
		t.Fatalf("curve = %v", curve)
	}
}

func TestWorkloadsThroughFacade(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithClientConfig(dcsctrl.DCSCtrl))
	cfg := dcsctrl.DefaultHDFSConfig()
	cfg.Streams = 2
	cfg.BlockSize = 256 << 10
	cfg.Warmup = 1 * dcsctrl.Millisecond
	cfg.Duration = 5 * dcsctrl.Millisecond
	res, err := tb.RunHDFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 || res.Gbps <= 0 {
		t.Fatalf("blocks=%d gbps=%v", res.Blocks, res.Gbps)
	}
}

func TestCustomParams(t *testing.T) {
	params := dcsctrl.DefaultParams()
	params.SSD.ReadLatency = 100 * dcsctrl.Microsecond // a much slower SSD
	slow := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithParams(params))
	fast := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
	run := func(tb *dcsctrl.Testbed) dcsctrl.Time {
		content := payload(4096)
		f, _ := tb.StageFile("obj", content)
		conn := tb.OpenConnection(true)
		var res dcsctrl.OpResult
		tb.Go("server", func(p *dcsctrl.Proc) {
			res, _ = tb.SendFile(p, f, 0, len(content), conn, dcsctrl.ProcNone)
		})
		tb.Go("client", func(p *dcsctrl.Proc) { tb.ClientRecv(p, conn, len(content)) })
		tb.Run()
		return res.Latency
	}
	if ls, lf := run(slow), run(fast); ls <= lf+50*dcsctrl.Microsecond {
		t.Fatalf("slow SSD (%v) not slower than fast (%v)", ls, lf)
	}
}

func TestCopyFileFacade(t *testing.T) {
	params := dcsctrl.DefaultParams()
	params.NumSSDs = 2
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithParams(params))
	content := payload(128 << 10)
	src, err := tb.StageFile("src", content)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := tb.CreateFile("dst", len(content))
	if err != nil {
		t.Fatal(err)
	}
	tb.Go("migrator", func(p *dcsctrl.Proc) {
		if _, err := tb.CopyFile(p, src, 0, dst, 0, len(content), dcsctrl.ProcNone); err != nil {
			t.Error(err)
		}
	})
	tb.Run()
	if !bytes.Equal(tb.ReadBack(dst), content) {
		t.Fatal("copy mismatch")
	}
	// Copying on a non-DCS server is rejected.
	sw := dcsctrl.NewTestbed(dcsctrl.SWOpt)
	f1, _ := sw.StageFile("a", content)
	f2, _ := sw.CreateFile("b", len(content))
	sw.Go("bad", func(p *dcsctrl.Proc) {
		if _, err := sw.CopyFile(p, f1, 0, f2, 0, len(content), dcsctrl.ProcNone); err == nil {
			t.Error("CopyFile on SWOpt succeeded")
		}
	})
	sw.Run()
}

func TestEncryptedSendFacade(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
	if err := tb.ProvisionAESKey(7, [32]byte{0x5c}); err != nil {
		t.Fatal(err)
	}
	content := payload(64 << 10)
	f, _ := tb.StageFile("obj", content)
	conn := tb.OpenConnection(true)
	var got []byte
	tb.Go("server", func(p *dcsctrl.Proc) {
		if _, err := tb.SendFileEncrypted(p, f, 0, len(content), conn, 7); err != nil {
			t.Error(err)
		}
	})
	tb.Go("client", func(p *dcsctrl.Proc) {
		got = tb.ClientRecv(p, conn, len(content))
	})
	tb.Run()
	if bytes.Equal(got, content) {
		t.Fatal("ciphertext equals plaintext")
	}
	if err := dcsctrl.NewTestbed(dcsctrl.SWOpt).ProvisionAESKey(1, [32]byte{}); err == nil {
		t.Fatal("key slot on SWOpt accepted")
	}
}
