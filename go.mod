module dcsctrl

go 1.22
