package dcsctrl_test

import (
	"bytes"
	"crypto/md5"
	"testing"

	"dcsctrl"
	"dcsctrl/internal/fault"
)

// runTransferPair stages a file, GETs it (server SendFile → client),
// then PUTs fresh content (client → server RecvFile), verifying both
// payloads and MD5 digests end to end. It is the workhorse of the
// fault-recovery tests: every byte crosses the faulty device models.
func runTransferPair(t *testing.T, tb *dcsctrl.Testbed, size int) {
	t.Helper()
	getContent := payload(size)
	f, err := tb.StageFile("get-obj", getContent)
	if err != nil {
		t.Fatal(err)
	}
	conn := tb.OpenConnection(true)

	var getRes dcsctrl.OpResult
	var getErr error
	var clientGot []byte
	tb.Go("server-get", func(p *dcsctrl.Proc) {
		getRes, getErr = tb.SendFile(p, f, 0, size, conn, dcsctrl.ProcMD5)
	})
	tb.Go("client-get", func(p *dcsctrl.Proc) {
		clientGot = tb.ClientRecv(p, conn, size)
	})
	tb.Run()
	if getErr != nil {
		t.Fatalf("GET failed: %v", getErr)
	}
	if !bytes.Equal(clientGot, getContent) {
		t.Fatal("GET payload corrupted")
	}
	wantGet := md5.Sum(getContent)
	if !bytes.Equal(getRes.Digest, wantGet[:]) {
		t.Fatalf("GET digest mismatch: got %x want %x", getRes.Digest, wantGet)
	}

	putContent := make([]byte, size)
	for i := range putContent {
		putContent[i] = byte(i*7 + 129)
	}
	dst, err := tb.CreateFile("put-obj", size)
	if err != nil {
		t.Fatal(err)
	}
	var putRes dcsctrl.OpResult
	var putErr error
	tb.Go("server-put", func(p *dcsctrl.Proc) {
		putRes, putErr = tb.RecvFile(p, conn, dst, 0, size, dcsctrl.ProcMD5)
	})
	tb.Go("client-put", func(p *dcsctrl.Proc) {
		tb.ClientSend(p, conn, putContent)
	})
	tb.Run()
	if putErr != nil {
		t.Fatalf("PUT failed: %v", putErr)
	}
	if got := tb.ReadBack(dst); !bytes.Equal(got, putContent) {
		t.Fatal("PUT payload corrupted on SSD")
	}
	wantPut := md5.Sum(putContent)
	if !bytes.Equal(putRes.Digest, wantPut[:]) {
		t.Fatalf("PUT digest mismatch: got %x want %x", putRes.Digest, wantPut)
	}
}

// TestFaultRecoveryAcrossConfigs exercises every server design under
// the light and heavy fault profiles: transfers must complete with
// correct bytes and digests despite injected PCIe, NVMe, and NIC
// faults, because each device's recovery machinery absorbs them.
func TestFaultRecoveryAcrossConfigs(t *testing.T) {
	configs := []dcsctrl.Config{dcsctrl.Vanilla, dcsctrl.SWOpt, dcsctrl.SWP2P, dcsctrl.DCSCtrl}
	for _, profile := range []dcsctrl.FaultProfile{fault.Light(), fault.Heavy()} {
		for _, cfg := range configs {
			t.Run(profile.Name+"/"+cfg.String(), func(t *testing.T) {
				tb := dcsctrl.NewTestbed(cfg, dcsctrl.WithFaults(42, profile))
				runTransferPair(t, tb, 512<<10)
				if profile.Name == "heavy" && tb.Faults().TotalInjected() == 0 {
					t.Error("heavy profile injected no faults (injection sites not wired?)")
				}
			})
		}
	}
}

// TestRetriesVisibleInBreakdown forces two poisoned completions on the
// first D2D command: the driver must re-issue it with backoff charged
// to the "retry" trace category, and the op must still succeed.
func TestRetriesVisibleInBreakdown(t *testing.T) {
	poison := dcsctrl.FaultProfile{
		Name:  "poison-twice",
		Rules: map[fault.Site]fault.Rule{fault.HDCPoisonCpl: {Prob: 1, Limit: 2}},
	}
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithFaults(7, poison))
	content := payload(128 << 10)
	f, err := tb.StageFile("obj", content)
	if err != nil {
		t.Fatal(err)
	}
	conn := tb.OpenConnection(true)
	var res dcsctrl.OpResult
	var opErr error
	tb.Go("server", func(p *dcsctrl.Proc) {
		res, opErr = tb.SendFile(p, f, 0, len(content), conn, dcsctrl.ProcMD5)
	})
	tb.Go("client", func(p *dcsctrl.Proc) { tb.ClientRecv(p, conn, len(content)) })
	tb.Run()
	if opErr != nil {
		t.Fatal(opErr)
	}
	want := md5.Sum(content)
	if !bytes.Equal(res.Digest, want[:]) {
		t.Fatalf("digest mismatch after retries: got %x want %x", res.Digest, want)
	}
	if retry := res.Breakdown.Get(dcsctrl.Category("retry")); retry <= 0 {
		t.Error("no retry time in the breakdown")
	}
	rs := tb.ServerRecoveryStats()
	if rs.DriverRetries != 2 {
		t.Errorf("driver retries = %d, want 2", rs.DriverRetries)
	}
	if rs.EngineFailed {
		t.Error("engine wrongly declared failed")
	}
}

// TestEngineFailureFallsBackToHost kills the engine on its first
// command: the driver watchdog must detect the hang, the node must
// adopt the engine's connections into the host stack, and both the
// in-flight op and subsequent ops must complete on the host-mediated
// path with correct digests.
func TestEngineFailureFallsBackToHost(t *testing.T) {
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl, dcsctrl.WithFaults(1, fault.EngineFail()))
	runTransferPair(t, tb, 256<<10)
	rs := tb.ServerRecoveryStats()
	if !rs.EngineFailed {
		t.Error("engine not declared failed")
	}
	if rs.DriverTimeouts < 1 {
		t.Errorf("driver timeouts = %d, want >= 1", rs.DriverTimeouts)
	}
	if rs.Fallbacks < 2 {
		t.Errorf("fallbacks = %d, want >= 2 (GET and PUT)", rs.Fallbacks)
	}
}

// TestSwiftCompletesUnderFaults runs the object-storage workload on
// every configuration with the light fault profile: all requests must
// complete without application-visible errors.
func TestSwiftCompletesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config workload run")
	}
	for _, cfg := range []dcsctrl.Config{dcsctrl.Vanilla, dcsctrl.SWOpt, dcsctrl.SWP2P, dcsctrl.DCSCtrl} {
		t.Run(cfg.String(), func(t *testing.T) {
			tb := dcsctrl.NewTestbed(cfg, dcsctrl.WithFaults(99, fault.Light()))
			sc := dcsctrl.DefaultSwiftConfig()
			sc.Conns = 4
			sc.Warmup = 1 * dcsctrl.Millisecond
			sc.Duration = 8 * dcsctrl.Millisecond
			res, err := tb.RunSwift(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if res.Errors != 0 {
				t.Fatalf("%d request errors under fault injection", res.Errors)
			}
		})
	}
}

// TestHDFSCompletesUnderFaults runs the balancer workload (DCS-ctrl on
// both nodes) with the light profile.
func TestHDFSCompletesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl,
		dcsctrl.WithClientConfig(dcsctrl.DCSCtrl),
		dcsctrl.WithFaults(5, fault.Light()))
	hc := dcsctrl.DefaultHDFSConfig()
	hc.Warmup = 1 * dcsctrl.Millisecond
	hc.Duration = 8 * dcsctrl.Millisecond
	res, err := tb.RunHDFS(hc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 {
		t.Fatal("no blocks moved")
	}
}
