// Parallel-equivalence suite for the sharded rack kernel: the
// conservative parallel DES must produce byte-identical results at
// ANY worker count and ANY domain decomposition — including uneven
// node/domain splits and runs with fault injection live. CI runs
// this file under -race across the seed matrix: domains share no
// state and the coordinator owns the fabric, so the race detector
// must stay silent while the fingerprints stay constant.
package dcsctrl_test

import (
	"testing"

	"dcsctrl/internal/bench"
	"dcsctrl/internal/fault"
)

// equivSeeds is the seed matrix: the pinned default plus seeds that
// reshuffle flow sizes (and with faults, injection schedules).
var equivSeeds = []uint64{0, 7, 42, 0xBADCAFE, 20260808}

// TestRackEquivWorkers pins worker-count invariance: at a fixed
// 4-domain decomposition, runs with 1, 2, 4, and 8 workers must all
// reproduce the single-worker fingerprint and makespan exactly, for
// every seed. Workers only change which OS thread executes a domain's
// window — never the schedule.
func TestRackEquivWorkers(t *testing.T) {
	for _, seed := range equivSeeds {
		base := bench.RackConfig{Nodes: 8, Domains: 4, Workers: 1, Bytes: 4 << 10, Seed: seed}
		ref := bench.RunRack(base)
		refFP := ref.Fingerprint()
		for _, workers := range []int{2, 4, 8} {
			cfg := base
			cfg.Workers = workers
			res := bench.RunRack(cfg)
			if fp := res.Fingerprint(); fp != refFP {
				t.Fatalf("seed %d workers %d: fingerprint %s != 1-worker %s", seed, workers, fp, refFP)
			}
			if res.Makespan != ref.Makespan {
				t.Fatalf("seed %d workers %d: makespan %v != %v", seed, workers, res.Makespan, ref.Makespan)
			}
			if res.Events != ref.Events {
				t.Fatalf("seed %d workers %d: events %d != %d", seed, workers, res.Events, ref.Events)
			}
		}
	}
}

// TestRackEquivDomains pins decomposition invariance: the same
// workload cut into 1, 2, 3 (uneven 12/3 split boundaries on 8
// nodes), 4, and 8 domains must fingerprint identically, and every
// multi-domain run must actually dispatch domains in parallel.
func TestRackEquivDomains(t *testing.T) {
	for _, pattern := range []string{bench.RackAllToAll, bench.RackIncast} {
		cfg := bench.RackConfig{Nodes: 8, Pattern: pattern, Bytes: 4 << 10, Rounds: 2, Seed: 42}
		ref := bench.RunRack(cfg)
		refFP := ref.Fingerprint()
		for _, domains := range []int{2, 3, 4, 8} {
			c := cfg
			c.Domains = domains
			res := bench.RunRack(c)
			if fp := res.Fingerprint(); fp != refFP {
				t.Fatalf("%s domains %d: fingerprint %s != serial %s", pattern, domains, fp, refFP)
			}
			if res.ShardStats.ParWindows == 0 {
				t.Fatalf("%s domains %d: no parallel windows (knob dead)", pattern, domains)
			}
		}
	}
}

// TestRackEquivFaults pins equivalence with fault injection live:
// per-node injectors are seeded by node index, so the corruption
// schedule — and therefore the retransmit traffic and final timings —
// must not depend on the decomposition. The crc-heavy profile
// guarantees receiver-visible corruption at this scale; fault.Light
// covers the mixed-site profile the recovery matrix uses.
func TestRackEquivFaults(t *testing.T) {
	crcHeavy := fault.Profile{
		Name:  "crc-heavy",
		Rules: map[fault.Site]fault.Rule{fault.NICCorruptFrame: {Prob: 0.05}},
	}
	for _, profile := range []fault.Profile{crcHeavy, fault.Light()} {
		for _, seed := range []uint64{3, 9} {
			cfg := bench.RackConfig{
				Nodes: 8, Bytes: 4 << 10, Seed: seed,
				FaultProfile: profile, FaultSeed: seed ^ 0xF00D,
			}
			ref := bench.RunRack(cfg)
			refFP := ref.Fingerprint()
			if profile.Name == "crc-heavy" && ref.RxErrors == 0 {
				t.Fatalf("%s seed %d: no corrupt frames observed (injection dead)", profile.Name, seed)
			}
			for _, domains := range []int{2, 4} {
				c := cfg
				c.Domains = domains
				res := bench.RunRack(c)
				if fp := res.Fingerprint(); fp != refFP {
					t.Fatalf("%s seed %d domains %d: fingerprint %s != serial %s",
						profile.Name, seed, domains, fp, refFP)
				}
				if res.RxErrors != ref.RxErrors {
					t.Fatalf("%s seed %d domains %d: rx errors %d != serial %d",
						profile.Name, seed, domains, res.RxErrors, ref.RxErrors)
				}
			}
		}
	}
}
