// Command dcsbench regenerates the paper's tables and figures on the
// simulated testbed and prints them, plus a paper-vs-measured summary
// of the headline claims.
//
// Usage:
//
//	dcsbench                  # run everything, serially
//	dcsbench -parallel 8      # fan independent trial cells over 8 workers
//	dcsbench -only fig11a,table4
//	dcsbench -list            # show available experiment ids
//	dcsbench -benchjson BENCH_kernel.json   # emit kernel + wall-time perf report
//	dcsbench -dataplanejson BENCH_dataplane.json   # emit data-plane ns/op + allocs/op report
//	dcsbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiment output is byte-identical at every -parallel value:
// results are keyed by trial-cell index, never by completion order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"dcsctrl/internal/bench"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

var experiments = []string{
	"table1", "table2", "table3", "table4",
	"fig2", "fig3", "fig8", "fig11a", "fig11b", "fig12", "fig13", "fig13sim", "sweep",
	"faults", "rack", "warmfork", "headlines",
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", 1, "worker goroutines per experiment (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file")
	benchjson := flag.String("benchjson", "", "write a kernel+wall-time perf report (BENCH_kernel.json) to this file")
	dataplanejson := flag.String("dataplanejson", "", "write the data-plane microbenchmark report (BENCH_dataplane.json) to this file")
	wire := flag.String("wire", "flow", "wire model fidelity: flow (analytic fast path, default) or frame (every frame simulated)")
	handler := flag.Bool("handler", true, "dispatch converted loops as run-to-completion handler procs (false = goroutine procs, the A/B reference)")
	nodes := flag.Int("nodes", 64, "rack experiment: node count")
	domains := flag.Int("domains", 4, "rack experiment: shard domains (1 = serial reference)")
	checkpoint := flag.String("checkpoint", "", "write a warm checkpoint artifact (gzip) to this file or directory and exit")
	restore := flag.String("restore", "", "restore a checkpoint artifact, verify the round-trip byte-for-byte, and exit")
	warmfork := flag.Bool("warmfork", false, "run the warm-fork grid experiment (alias for -only warmfork)")
	flag.Parse()

	sim.SetDefaultHandlerProcs(*handler)

	switch *wire {
	case "flow":
		sim.SetDefaultWireFidelity(sim.WireFlow)
	case "frame":
		sim.SetDefaultWireFidelity(sim.WireFrame)
	default:
		fmt.Fprintf(os.Stderr, "dcsbench: -wire must be flow or frame, got %q\n", *wire)
		os.Exit(2)
	}

	if *list {
		fmt.Println(strings.Join(experiments, "\n"))
		return
	}

	// Checkpoint artifact modes run alone: they exist for CI's
	// golden-artifact gate and for warm-forking across processes.
	if *checkpoint != "" {
		cfg := bench.DefaultWarmForkConfig()
		data, err := bench.BuildWarmCheckpoint(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: checkpoint: %v\n", err)
			os.Exit(1)
		}
		path, err := bench.WriteCheckpointArtifact(*checkpoint, cfg.Kind.String(), data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dcsbench: wrote %s (%d bytes uncompressed, hash %s)\n", path, len(data), snap.ContentHash(data))
		return
	}
	if *restore != "" {
		data, err := bench.ReadCheckpointArtifact(*restore)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: restore: %v\n", err)
			os.Exit(1)
		}
		if err := bench.VerifyCheckpoint(bench.DefaultWarmForkConfig(), data); err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: restore: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dcsbench: %s verified (%d bytes, hash %s): restore round-trips byte-for-byte and matches the regenerated warm state\n",
			*restore, len(data), snap.ContentHash(data))
		return
	}

	if *warmfork && *only == "" {
		*only = "warmfork"
	} else if *warmfork {
		*only += ",warmfork"
	}
	want := map[string]bool{}
	if *only == "" {
		for _, e := range experiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*only, ",") {
			e = strings.TrimSpace(e)
			ok := false
			for _, known := range experiments {
				if e == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "dcsbench: unknown experiment %q (try -list)\n", e)
				os.Exit(2)
			}
			want[e] = true
		}
	}
	workers := bench.Workers(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// The perf report runs the kernel microbenchmarks up front (before
	// any experiment warms the heap) and then accumulates per-figure
	// wall times as the experiments run.
	var perf *bench.PerfReport
	timed := func(name string, fn func()) {
		if perf != nil {
			perf.Time(name, fn)
		} else {
			fn()
		}
	}
	if *benchjson != "" {
		perf = bench.NewPerfReport(workers)
		perf.MeasureProtocols()
	}
	if *dataplanejson != "" {
		dp := bench.NewDataplaneReport()
		if err := dp.WriteJSON(*dataplanejson); err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcsbench: wrote data-plane report to %s\n", *dataplanejson)
	}

	w := os.Stdout

	if want["table1"] {
		bench.Table1(w)
	}
	if want["table2"] {
		bench.Table2(w)
	}
	if want["table3"] {
		bench.Table3(w)
	}
	if want["table4"] {
		bench.Table4(w)
	}
	if want["fig2"] {
		bench.RenderTimeline(w, bench.Figure2Timeline())
	}
	if want["fig3"] {
		timed("fig3", func() { bench.RunFigure3Parallel(workers).Render(w) })
	}
	if want["fig8"] {
		timed("fig8", func() { bench.RunFigure8Parallel(workers).Render(w) })
	}

	var f11a, f11b bench.Figure11
	if want["fig11a"] || want["headlines"] {
		timed("fig11a", func() { f11a = bench.Figure11aParallel(workers) })
		if want["fig11a"] {
			f11a.Render(w)
		}
	}
	if want["fig11b"] || want["headlines"] {
		timed("fig11b", func() { f11b = bench.Figure11bParallel(workers) })
		if want["fig11b"] {
			f11b.Render(w)
		}
	}

	var f12 bench.Figure12
	var f13 bench.Figure13
	if want["fig12"] || want["fig13"] || want["headlines"] {
		timed("fig12", func() {
			f12 = bench.RunFigure12Parallel(bench.DefaultFig12Swift(), bench.DefaultFig12HDFS(), workers)
		})
		if want["fig12"] {
			f12.Render(w)
		}
		f13 = bench.ProjectFigure13(f12)
		if want["fig13"] {
			f13.Render(w)
		}
	}
	if want["fig13sim"] {
		timed("fig13sim", func() { bench.RunFigure13SimParallel(workers).Render(w) })
	}
	if want["sweep"] {
		timed("sweep", func() {
			bench.RunSizeSweepParallel(0, workers).Render(w) // ProcNone
			bench.RunSizeSweepParallel(bench.ProcMD5, workers).Render(w)
		})
	}
	if want["faults"] {
		timed("faults", func() { bench.RunFaultMatrixParallel(workers).Render(w) })
	}
	if want["rack"] {
		// The rack cell is itself parallel (shard kernel); run it alone
		// and record serial-vs-sharded in the perf report when one is
		// being written, otherwise just render the sharded run.
		timed("rack", func() {
			if perf != nil {
				perf.MeasureRacks(*nodes, *domains)
				for _, rp := range perf.Racks {
					fmt.Fprintf(w, "rack %-22s wall %8.1f ms  windows %7d  par %7d  speedup %.2fx  fp %s\n",
						rp.Name, rp.WallMs, rp.Windows, rp.ParWindows, rp.SpeedupVs1, rp.Fingerprint)
				}
			} else {
				res := bench.RunRack(bench.RackConfig{
					Nodes: *nodes, Domains: *domains,
					Workers: bench.IntraRunWorkers(1, *domains),
				})
				fmt.Fprint(w, res.Render())
			}
		})
	}
	if want["warmfork"] || perf != nil {
		// The warm-fork grid renders as an experiment and doubles as
		// the perf report's checkpoint section; run it once for both.
		timed("warmfork", func() {
			cfg := bench.DefaultWarmForkConfig()
			cfg.Workers = workers
			res, err := bench.RunWarmForkGrid(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsbench: warmfork: %v\n", err)
				os.Exit(1)
			}
			if want["warmfork"] {
				res.Render(w)
			}
			if perf != nil {
				perf.RecordCheckpoint(res)
			}
		})
	}
	if want["headlines"] {
		bench.Headlines(f11a, f11b, f12, f13).Render(w)
	}

	if perf != nil {
		perf.CompareSweep(workers)
		if err := perf.WriteJSON(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcsbench: wrote perf report to %s\n", *benchjson)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dcsbench: %v\n", err)
			os.Exit(1)
		}
	}
}
