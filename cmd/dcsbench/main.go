// Command dcsbench regenerates the paper's tables and figures on the
// simulated testbed and prints them, plus a paper-vs-measured summary
// of the headline claims.
//
// Usage:
//
//	dcsbench            # run everything
//	dcsbench -only fig11a,table4
//	dcsbench -list      # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcsctrl/internal/bench"
)

var experiments = []string{
	"table1", "table2", "table3", "table4",
	"fig2", "fig3", "fig8", "fig11a", "fig11b", "fig12", "fig13", "fig13sim", "sweep",
	"headlines",
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments, "\n"))
		return
	}
	want := map[string]bool{}
	if *only == "" {
		for _, e := range experiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*only, ",") {
			e = strings.TrimSpace(e)
			ok := false
			for _, known := range experiments {
				if e == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "dcsbench: unknown experiment %q (try -list)\n", e)
				os.Exit(2)
			}
			want[e] = true
		}
	}
	w := os.Stdout

	if want["table1"] {
		bench.Table1(w)
	}
	if want["table2"] {
		bench.Table2(w)
	}
	if want["table3"] {
		bench.Table3(w)
	}
	if want["table4"] {
		bench.Table4(w)
	}
	if want["fig2"] {
		bench.RenderTimeline(w, bench.Figure2Timeline())
	}
	if want["fig3"] {
		bench.RunFigure3().Render(w)
	}
	if want["fig8"] {
		bench.RunFigure8().Render(w)
	}

	var f11a, f11b bench.Figure11
	if want["fig11a"] || want["headlines"] {
		f11a = bench.Figure11a()
		if want["fig11a"] {
			f11a.Render(w)
		}
	}
	if want["fig11b"] || want["headlines"] {
		f11b = bench.Figure11b()
		if want["fig11b"] {
			f11b.Render(w)
		}
	}

	var f12 bench.Figure12
	var f13 bench.Figure13
	if want["fig12"] || want["fig13"] || want["headlines"] {
		f12 = bench.RunFigure12(bench.DefaultFig12Swift(), bench.DefaultFig12HDFS())
		if want["fig12"] {
			f12.Render(w)
		}
		f13 = bench.ProjectFigure13(f12)
		if want["fig13"] {
			f13.Render(w)
		}
	}
	if want["fig13sim"] {
		bench.RunFigure13Sim().Render(w)
	}
	if want["sweep"] {
		bench.RunSizeSweep(0).Render(w) // ProcNone
		bench.RunSizeSweep(bench.ProcMD5).Render(w)
	}
	if want["headlines"] {
		bench.Headlines(f11a, f11b, f12, f13).Render(w)
	}
}
