// Command dcstrace prints a Figure 2-style device-control timeline:
// where the control path spends its time on a multi-device task, for
// any server configuration.
//
// Usage:
//
//	dcstrace [-config sw-opt|sw-p2p|vanilla|dcs-ctrl] [-size 4096] [-proc none|md5|crc32]
package main

import (
	"flag"
	"fmt"
	"os"

	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
)

func parseConfig(s string) (core.Config, bool) {
	for _, k := range []core.Config{core.Vanilla, core.SWOpt, core.SWP2P, core.DevIntegration, core.DCSCtrl} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

func parseProc(s string) (core.Processing, bool) {
	switch s {
	case "none":
		return core.ProcNone, true
	case "md5":
		return core.ProcMD5, true
	case "crc32":
		return core.ProcCRC32, true
	case "aes256":
		return core.ProcAES256, true
	case "gzip":
		return core.ProcGZIP, true
	}
	return 0, false
}

func main() {
	cfgName := flag.String("config", "sw-opt", "server configuration")
	size := flag.Int("size", 4096, "transfer size in bytes")
	procName := flag.String("proc", "md5", "intermediate processing")
	flag.Parse()

	kind, ok := parseConfig(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcstrace: unknown config %q\n", *cfgName)
		os.Exit(2)
	}
	proc, ok := parseProc(*procName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcstrace: unknown processing %q\n", *procName)
		os.Exit(2)
	}

	env := sim.NewEnv()
	cl := core.NewCluster(env, kind, core.DefaultParams())
	content := make([]byte, *size)
	f, err := cl.Server.StageFile("obj", content)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcstrace:", err)
		os.Exit(1)
	}
	conn := cl.OpenConn(true)
	cl.Server.StartTrace()
	var res core.OpResult
	env.Spawn("server", func(p *sim.Proc) {
		res, err = cl.Server.SendFileOp(p, f, 0, *size, conn.ID, proc)
	})
	env.Spawn("client", func(p *sim.Proc) { cl.ClientRecv(p, conn, *size) })
	env.Run(-1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcstrace:", err)
		os.Exit(1)
	}

	fmt.Printf("device-control timeline: %s, %d bytes, %s processing\n", kind, *size, proc)
	fmt.Printf("total latency %v\n\n", res.Latency)
	fmt.Printf("  %-12s %-8s %s\n", "time", "domain", "event")
	fmt.Printf("  %-12s %-8s %s\n", "----", "------", "-----")
	for _, e := range cl.Server.StopTrace() {
		fmt.Printf("  %-12v %-8s %s\n", e.At, e.Where, e.What)
	}
	fmt.Printf("\nlatency breakdown: %v\n", res.Breakdown)
}
