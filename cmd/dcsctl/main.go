// Command dcsctl runs a single multi-device operation on a chosen
// server configuration and reports latency, breakdown, digest, and
// server CPU — the interactive one-off counterpart of dcsbench.
//
// Usage:
//
//	dcsctl -config dcs-ctrl -op send -size 262144 -proc md5 -n 4
//	dcsctl -config sw-p2p   -op recv -size 1048576 -proc crc32
//	dcsctl -config dcs-ctrl -op send -n 8 -faults heavy -fault-seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcsctrl/internal/core"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

func main() {
	cfgName := flag.String("config", "dcs-ctrl", "vanilla|sw-opt|sw-p2p|dev-integration|dcs-ctrl")
	op := flag.String("op", "send", "send (SSD->NIC) or recv (NIC->SSD)")
	size := flag.Int("size", 256<<10, "bytes per operation")
	procName := flag.String("proc", "md5", "none|md5|crc32|aes256|gzip")
	count := flag.Int("n", 1, "operations to run back to back")
	faults := flag.String("faults", "none",
		"fault-injection profile: "+strings.Join(fault.ProfileNames(), "|"))
	faultSeed := flag.Uint64("fault-seed", 1, "deterministic fault-injection seed")
	flag.Parse()

	kind, proc, err := parse(*cfgName, *procName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsctl:", err)
		os.Exit(2)
	}
	profile, ok := fault.ProfileByName(*faults)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcsctl: unknown fault profile %q (want %s)\n",
			*faults, strings.Join(fault.ProfileNames(), "|"))
		os.Exit(2)
	}

	params := core.DefaultParams()
	if len(profile.Rules) > 0 {
		params.Faults = fault.NewInjector(*faultSeed, profile)
	}
	env := sim.NewEnv()
	cl := core.NewCluster(env, kind, params)
	content := make([]byte, *size)
	for i := range content {
		content[i] = byte(i * 13)
	}
	conn := cl.OpenConn(true)

	var results []core.OpResult
	switch *op {
	case "send":
		f, err := cl.Server.StageFile("obj", content)
		must(err)
		env.Spawn("server", func(p *sim.Proc) {
			for i := 0; i < *count; i++ {
				res, err := cl.Server.SendFileOp(p, f, 0, *size, conn.ID, proc)
				must(err)
				results = append(results, res)
			}
		})
		env.Spawn("client", func(p *sim.Proc) {
			cl.ClientRecv(p, conn, *count**size)
		})
	case "recv":
		f, err := cl.Server.FS.Create("upload", *size)
		must(err)
		env.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < *count; i++ {
				cl.ClientSend(p, conn, content)
			}
		})
		env.Spawn("server", func(p *sim.Proc) {
			for i := 0; i < *count; i++ {
				res, err := cl.Server.RecvFileOp(p, conn.ID, f, 0, *size, proc)
				must(err)
				results = append(results, res)
			}
		})
	default:
		fmt.Fprintf(os.Stderr, "dcsctl: unknown op %q\n", *op)
		os.Exit(2)
	}
	end := env.Run(-1)

	var lat trace.Sample
	for _, r := range results {
		lat.AddTime(r.Latency)
	}
	fmt.Printf("%s %s ×%d, %d bytes each, processing=%s\n", kind, *op, *count, *size, proc)
	fmt.Printf("latency µs: mean=%.1f p50=%.1f min=%.1f max=%.1f\n",
		lat.Mean(), lat.Percentile(50), lat.Min(), lat.Max())
	if len(results) > 0 {
		fmt.Printf("last breakdown: %v\n", results[len(results)-1].Breakdown)
		if d := results[len(results)-1].Digest; len(d) > 0 {
			fmt.Printf("digest: %x\n", d)
		}
	}
	busy := cl.Server.Host.Acct.TotalBusy()
	fmt.Printf("server CPU busy %v over %v (%.1f%% of %d cores)\n",
		busy, end, cl.Server.Host.Utilization()*100, core.DefaultParams().Host.Cores)
	gbps := float64(*count**size) * 8 / end.Seconds() / 1e9
	fmt.Printf("delivered %.2f Gbps\n", gbps)

	if params.Faults != nil {
		fmt.Printf("\nfault injection (profile=%s seed=%d): %d faults fired\n",
			params.Faults.ProfileUsed().Name, params.Faults.Seed(), params.Faults.TotalInjected())
		if s := params.Faults.StatsString(); s != "" {
			fmt.Print(s)
		}
		replays, refetches := cl.Server.NIC.RecoveryStats()
		fmt.Printf("recovery: nic-tx-replays=%d nic-bd-refetches=%d host-nvme-retries=%d fallbacks=%d\n",
			replays, refetches, cl.Server.HostNVMeRetries(), cl.Server.Fallbacks())
		if d := cl.Server.Driver; d != nil {
			fmt.Printf("hdc driver: retries=%d timeouts=%d engine-failed=%v\n",
				d.Retries(), d.Timeouts(), d.Failed())
		}
	}
}

func parse(cfgName, procName string) (core.Config, core.Processing, error) {
	var kind core.Config
	found := false
	for _, k := range []core.Config{core.Vanilla, core.SWOpt, core.SWP2P, core.DevIntegration, core.DCSCtrl} {
		if k.String() == cfgName {
			kind, found = k, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("unknown config %q", cfgName)
	}
	procs := map[string]core.Processing{
		"none": core.ProcNone, "md5": core.ProcMD5, "crc32": core.ProcCRC32,
		"aes256": core.ProcAES256, "gzip": core.ProcGZIP,
	}
	proc, ok := procs[procName]
	if !ok {
		return 0, 0, fmt.Errorf("unknown processing %q", procName)
	}
	return kind, proc, nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsctl:", err)
		os.Exit(1)
	}
}
