// Command dcslint runs the repo's determinism lint suite — a
// multichecker over internal/lint's analyzers.
//
// Per-package analyzers:
//
//	nowallclock       no wall-clock time or global math/rand in sim packages
//	maporder          no map-range bodies that leak iteration order
//	nogoroutine       no goroutines or raw channels outside the DES kernel
//	nochainrecursion  no continuations that re-enter sim.Env.Chain
//	simtime           no raw integer literals in sim.Time arithmetic
//
// Whole-module (interprocedural) analyzers:
//
//	noalloc           //dcslint:hotpath functions transitively allocation-free
//	shardsafe         no state mutably shared across shard domains
//
// Usage:
//
//	go run ./cmd/dcslint ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 failed to load.
// Suppress a single finding with a justified directive:
//
//	//dcslint:allow <analyzer> <reason>
//
// on the offending line or the line directly above. See the
// "Determinism rules" and "Static analysis architecture" sections of
// DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"dcsctrl/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (file/line/analyzer/message/chain)")
	hotpaths := flag.Bool("hotpaths", false, "emit the //dcslint:hotpath roots as JSON and exit (no linting)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dcslint [-list] [-json] [-hotpaths] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		for _, ma := range lint.ModuleAnalyzers() {
			fmt.Printf("%-12s %s (module)\n", ma.Name, firstLine(ma.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *hotpaths {
		roots, err := lint.Hotpaths("", patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcslint:", err)
			os.Exit(2)
		}
		if err := lint.PrintHotpaths(os.Stdout, roots); err != nil {
			fmt.Fprintln(os.Stderr, "dcslint:", err)
			os.Exit(2)
		}
		return
	}

	findings, err := lint.Run("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcslint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := lint.PrintJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "dcslint:", err)
			os.Exit(2)
		}
	} else {
		lint.Print(os.Stdout, findings)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dcslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
