// Command benchdiff compares a freshly generated benchmark report
// against a checked-in baseline and exits non-zero on regressions:
//
//   - any ns/op (or ns/event) metric more than -tolerance (default
//     25%) slower than the baseline,
//   - ANY allocations on a path whose baseline is zero allocs/op —
//     zero-allocation paths are a hard invariant, not a budget — and
//   - any events-per-op / events-per-I/O count more than 10% above the
//     baseline. Event counts are deterministic (they come from the
//     simulation schedule, not the wall clock), so this gate is immune
//     to runner noise and catches protocol-efficiency regressions that
//     ns/op tolerances would absorb, and
//   - any path whose baseline collapses frames into analytic flow
//     segments (seg_frames_per_op > 0) that stops collapsing them —
//     the knob-not-dead gate for the wire fast path. A silently dead
//     fast path would also trip the events gate, but this one names
//     the cause instead of the symptom, and
//   - handoffs-per-event (the goroutine park/resume tax the handler-
//     proc conversion exists to kill) more than 10% above the baseline
//     — the counter is deterministic, so growth means converted loops
//     regressed to goroutine dispatch (HANDOFF), and
//   - the handler-dispatch knob going dead: a fresh kernel report's
//     kernel_park_resume_handler entry must actually dispatch handlers
//     with zero handoffs and beat the goroutine flavor's ns/event by
//     the ≥25% the conversion promises (NOHANDLER), and
//   - rack entries (the sharded parallel kernel): a fresh multi-domain
//     multi-worker rack whose par_windows is zero ran silently serial
//     (NOPAR — the parallel knob went dead), and rack entries for the
//     same workload (same name up to the domain-count suffix) must
//     carry identical result fingerprints (FPDIV — a decomposition
//     changed the simulated schedule, a determinism violation).
//     Fingerprint drift against the BASELINE is informational only:
//     it means the workload or timing model changed and the baseline
//     needs regenerating, which ns gates already force, and
//   - the checkpoint/restore knob going dead (NOCKPT): a fresh kernel
//     report's checkpoint section must show warm-fork cells running
//     with every forked fingerprint byte-identical to its
//     straight-through reference, a non-empty snapshot, and a
//     warm-fork wall-clock speedup of at least 1.3x — and the section
//     itself must not vanish when the baseline carries one.
//
// It understands both report shapes emitted by cmd/dcsbench:
// BENCH_dataplane.json (data-plane microbenchmarks) and
// BENCH_kernel.json (kernel microbenchmarks + figure wall times).
// Metrics present in only one file are reported but never fail the
// diff, so CI can regenerate a subset of the baseline's figures.
//
// Usage:
//
//	benchdiff -baseline BENCH_dataplane.json -fresh fresh_dataplane.json
//	benchdiff -baseline BENCH_kernel.json -fresh fresh_kernel.json -tolerance 0.5
//
// With -hotpaths (the JSON emitted by `dcslint -hotpaths`), benchdiff
// also cross-checks the baseline's zero-allocation promises against
// the //dcslint:hotpath roots the prover actually guards: every bench
// with allocs_per_op == 0 must be named by some root's directive, and
// every bench a directive names must exist and be zero-alloc. This
// keeps the static proof and the measured invariant from drifting
// apart — a new zero-alloc bench without a prover root, or a root
// still naming a bench that grew allocations, both fail CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// metric is one comparable measurement extracted from a report.
type metric struct {
	ns        float64 // time per op/event; 0 = absent
	allocs    float64
	events    float64 // kernel events per op / per I/O; 0 = absent
	segFrames float64 // frames collapsed into flow segments per op
	hasNs     bool
	zeroed    bool // baseline promises zero allocs on this path
	soft      bool // informational only (whole-run wall clocks): never fails

	handoffs   float64 // goroutine park/resume handoffs (deterministic)
	hdispatch  float64 // run-to-completion handler dispatches
	handoffsPE float64 // handoffs per event; 0 = absent

	rack        bool // entry is a sharded rack measurement
	domains     int
	workers     int
	parWindows  float64
	fingerprint string
}

// eventTolerance is the hard ceiling on deterministic event-count
// growth: more than 10% over baseline fails regardless of -tolerance.
const eventTolerance = 0.10

type kernelStats struct {
	NsPerEvent        float64 `json:"ns_per_event"`
	AllocsPerEvent    float64 `json:"allocs_per_event"`
	Handoffs          float64 `json:"handoffs"`
	HandlerDispatches float64 `json:"handler_dispatches"`
	HandoffsPerEvent  float64 `json:"handoffs_per_event"`
}

type kernelReport struct {
	KernelSchedule          *kernelStats `json:"kernel_schedule"`
	KernelParkResume        *kernelStats `json:"kernel_park_resume"`
	KernelParkResumeHandler *kernelStats `json:"kernel_park_resume_handler"`
	Protocol                []struct {
		Name        string  `json:"name"`
		EventsPerIO float64 `json:"events_per_io"`
	} `json:"protocol"`
	Figures []struct {
		Name   string  `json:"name"`
		WallMs float64 `json:"wall_ms"`
	} `json:"figures"`
	Racks []struct {
		Name              string  `json:"name"`
		Domains           int     `json:"domains"`
		Workers           int     `json:"workers"`
		NsPerFlow         float64 `json:"ns_per_flow"`
		EventsPerFlow     float64 `json:"events_per_flow"`
		ParWindows        float64 `json:"par_windows"`
		Handoffs          float64 `json:"handoffs"`
		HandlerDispatches float64 `json:"handler_dispatches"`
		HandoffsPerEvent  float64 `json:"handoffs_per_event"`
		Fingerprint       string  `json:"fingerprint"`
	} `json:"racks"`
	Checkpoint *checkpointPerf `json:"checkpoint"`
}

// checkpointPerf mirrors the kernel report's checkpoint section: the
// warm-fork grid's codec cost and the straight-vs-forked verdict.
type checkpointPerf struct {
	Config        string  `json:"config"`
	Cells         int     `json:"cells"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	SaveNs        float64 `json:"save_ns"`
	RestoreNs     float64 `json:"restore_ns"`
	StraightMs    float64 `json:"straight_ms"`
	ForkedMs      float64 `json:"forked_ms"`
	Speedup       float64 `json:"speedup"`
	AllMatch      bool    `json:"all_match"`
}

type dataplaneReport struct {
	Benches []struct {
		Name           string  `json:"name"`
		NsPerOp        float64 `json:"ns_per_op"`
		AllocsPerOp    float64 `json:"allocs_per_op"`
		EventsPerOp    float64 `json:"events_per_op"`
		SegFramesPerOp float64 `json:"seg_frames_per_op"`
	} `json:"benches"`
}

// load parses path into name→metric plus the optional checkpoint
// section, detecting the report shape.
func load(path string) (map[string]metric, *checkpointPerf, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]metric{}

	var dp dataplaneReport
	if err := json.Unmarshal(data, &dp); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(dp.Benches) > 0 {
		for _, b := range dp.Benches {
			out[b.Name] = metric{ns: b.NsPerOp, allocs: b.AllocsPerOp, events: b.EventsPerOp,
				segFrames: b.SegFramesPerOp, hasNs: true, zeroed: b.AllocsPerOp == 0}
		}
		return out, nil, nil
	}

	var kr kernelReport
	if err := json.Unmarshal(data, &kr); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if kr.KernelSchedule == nil && kr.KernelParkResume == nil {
		return nil, nil, fmt.Errorf("%s: neither a dataplane nor a kernel report", path)
	}
	kernelMetric := func(s *kernelStats) metric {
		return metric{ns: s.NsPerEvent, allocs: s.AllocsPerEvent, hasNs: true,
			handoffs: s.Handoffs, hdispatch: s.HandlerDispatches, handoffsPE: s.HandoffsPerEvent}
	}
	if s := kr.KernelSchedule; s != nil {
		out["kernel_schedule"] = kernelMetric(s)
	}
	if s := kr.KernelParkResume; s != nil {
		out["kernel_park_resume"] = kernelMetric(s)
	}
	if s := kr.KernelParkResumeHandler; s != nil {
		out["kernel_park_resume_handler"] = kernelMetric(s)
	}
	for _, pr := range kr.Protocol {
		out["protocol:"+pr.Name] = metric{events: pr.EventsPerIO}
	}
	// Figure wall times ride along informationally: they are whole-run
	// wall clocks, far too noisy on shared CI runners to gate on, so
	// they are printed in the table but never fail the diff.
	for _, f := range kr.Figures {
		out["figure:"+f.Name] = metric{ns: f.WallMs * 1e6, hasNs: true, soft: true}
	}
	// Rack entries: ns_per_flow gates like any other ns metric,
	// events_per_flow is deterministic and gets the hard event gate,
	// and the shard counters feed the NOPAR/FPDIV checks.
	for _, r := range kr.Racks {
		out[r.Name] = metric{
			ns: r.NsPerFlow, hasNs: true, events: r.EventsPerFlow,
			rack: true, domains: r.Domains, workers: r.Workers,
			parWindows: r.ParWindows, fingerprint: r.Fingerprint,
			handoffs: r.Handoffs, hdispatch: r.HandlerDispatches,
			handoffsPE: r.HandoffsPerEvent,
		}
	}
	return out, kr.Checkpoint, nil
}

// checkCheckpointKnob is the knob-not-dead gate for the snapshot/
// restore path (NOCKPT). A fresh kernel report that carries a
// checkpoint section must show a live, correct, paying warm-fork
// grid: cells ran, every forked fingerprint matched its straight
// reference, the snapshot is non-trivial, and the fork is at least
// 30% faster wall-clock than straight-through at equal cell count.
// AllMatch and the cell count are deterministic; the speedup is a
// same-machine wall-clock ratio, so it holds on slow runners too. A
// baseline with a checkpoint section also pins the section's
// presence: a fresh report without one means the grid silently
// stopped running.
func checkCheckpointKnob(base, cur *checkpointPerf) []string {
	if cur == nil {
		if base != nil {
			return []string{"NOCKPT checkpoint: baseline has a warm-fork section but fresh report has none (grid not running)"}
		}
		return nil
	}
	var bad []string
	if cur.Cells == 0 {
		bad = append(bad, "NOCKPT checkpoint: zero warm-fork cells ran (knob dead)")
	}
	if !cur.AllMatch {
		bad = append(bad, "NOCKPT checkpoint: forked cell fingerprints diverged from straight-through (restore broken)")
	}
	if cur.SnapshotBytes == 0 {
		bad = append(bad, "NOCKPT checkpoint: empty snapshot (codec dead)")
	}
	// The default grid targets >=1.3x (and measures 1.3-1.4x on a quiet
	// machine); the gate floors at 1.1x so shared-runner noise cannot
	// flake the build while a genuinely dead knob (restore as slow as
	// re-warming, ~1.0x) still trips it.
	if cur.Cells > 0 && cur.Speedup < 1.1 {
		bad = append(bad, fmt.Sprintf(
			"NOCKPT checkpoint: warm-fork speedup %.2fx below the 1.1x floor (forking no longer pays)", cur.Speedup))
	}
	return bad
}

// rackGroup keys a rack entry by workload: the name minus its
// trailing domain-count suffix ("rack_alltoall_64x4" → workload
// "rack_alltoall_64"). Entries in one group ran the same flows, so
// their fingerprints must match whatever the decomposition.
func rackGroup(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == 'x' {
			return name[:i]
		}
	}
	return name
}

// checkRackFingerprints verifies fingerprint equality within each
// same-workload group of one report, returning findings.
func checkRackFingerprints(label string, m map[string]metric) []string {
	groups := map[string]map[string]bool{}
	for name, mt := range m {
		if !mt.rack || mt.fingerprint == "" {
			continue
		}
		if groups[rackGroup(name)] == nil {
			groups[rackGroup(name)] = map[string]bool{}
		}
		groups[rackGroup(name)][mt.fingerprint] = true
	}
	var bad []string
	for g, fps := range groups {
		if len(fps) > 1 {
			bad = append(bad, fmt.Sprintf("FPDIV %s: %d distinct fingerprints across %s decompositions", label, len(fps), g))
		}
	}
	sort.Strings(bad)
	return bad
}

// checkHandlerKnob verifies the run-to-completion dispatch path is
// alive in the fresh kernel report: kernel_park_resume_handler must
// actually dispatch handlers, complete them without a single
// goroutine handoff, and beat the goroutine flavor's ns/event by at
// least the 25% the conversion promises. All three counters are
// deterministic (and the ns margin is ~15x in practice), so this is a
// hard gate; reports without the entry (dataplane, partial
// regenerations) pass untouched.
func checkHandlerKnob(cur map[string]metric) []string {
	h, ok := cur["kernel_park_resume_handler"]
	if !ok {
		return nil
	}
	var bad []string
	if h.hdispatch == 0 {
		bad = append(bad, "NOHANDLER kernel_park_resume_handler: zero handler dispatches (knob dead)")
	}
	if h.handoffs > 0 {
		bad = append(bad, fmt.Sprintf(
			"NOHANDLER kernel_park_resume_handler: %g goroutine handoffs in handler mode (run-to-completion broken)", h.handoffs))
	}
	if g, ok := cur["kernel_park_resume"]; ok && g.ns > 0 && h.ns > 0.75*g.ns {
		bad = append(bad, fmt.Sprintf(
			"NOHANDLER kernel_park_resume_handler: %.2f ns/event is not >=25%% under goroutine %.2f (handoff tax not killed)", h.ns, g.ns))
	}
	return bad
}

// hotpathRoot mirrors one entry of `dcslint -hotpaths` output: a
// //dcslint:hotpath-tagged function and the benches its directive
// names.
type hotpathRoot struct {
	Func    string   `json:"func"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Benches []string `json:"benches"`
}

// checkHotpaths cross-checks the baseline's zero-alloc benches against
// the prover's root set, in both directions:
//
//   - a zero-alloc bench no root names is an unguarded invariant: the
//     allocation-freedom BENCH_dataplane.json asserts is not being
//     proven by dcslint, so a regression would only surface at bench
//     time (or never, on a noisy runner);
//   - a root naming a bench that is missing or has allocs_per_op > 0
//     is a stale claim: the directive promises a proof the numbers
//     contradict.
func checkHotpaths(base map[string]metric, path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("HOTPATH cannot read root list: %v", err)}
	}
	var roots []hotpathRoot
	if err := json.Unmarshal(data, &roots); err != nil {
		return []string{fmt.Sprintf("HOTPATH %s: %v", path, err)}
	}
	tagged := map[string]string{} // bench name -> tagged func
	for _, r := range roots {
		for _, b := range r.Benches {
			tagged[b] = r.Func
		}
	}
	var bad []string
	for name, m := range base {
		if m.zeroed && tagged[name] == "" {
			bad = append(bad, fmt.Sprintf(
				"HOTPATH %s: allocs_per_op == 0 but no //dcslint:hotpath root names it; tag the bench's fast-path entry point", name))
		}
	}
	for bench, fn := range tagged {
		m, ok := base[bench]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf(
				"HOTPATH %s: //dcslint:hotpath on %s names a bench missing from the baseline", bench, fn))
		case !m.zeroed:
			bad = append(bad, fmt.Sprintf(
				"HOTPATH %s: //dcslint:hotpath on %s claims zero allocs but baseline has allocs_per_op %g", bench, fn, m.allocs))
		}
	}
	sort.Strings(bad)
	return bad
}

func main() {
	baseline := flag.String("baseline", "", "checked-in baseline report (JSON)")
	fresh := flag.String("fresh", "", "freshly generated report (JSON)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown before failing")
	hotpaths := flag.String("hotpaths", "", "dcslint -hotpaths output to cross-check zero-alloc benches against prover roots")
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		os.Exit(2)
	}
	base, baseCkpt, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, curCkpt, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("SKIP  %-24s not in fresh report\n", name)
			continue
		}
		status := "ok"
		ratio := 0.0
		if b.ns > 0 {
			ratio = c.ns / b.ns
			if ratio > 1+*tolerance && !b.soft {
				status = "SLOWER"
				failed = true
			}
		}
		if b.zeroed && c.allocs > 0 {
			status = "ALLOCS"
			failed = true
		}
		if b.events > 0 && c.events > b.events*(1+eventTolerance) {
			status = "EVENTS"
			failed = true
		}
		// Handoffs are deterministic like event counts, so growth past
		// the same hard ceiling means simulated loops fell off the
		// run-to-completion path back onto goroutine park/resume.
		if b.handoffsPE > 0 && c.handoffsPE > b.handoffsPE*(1+eventTolerance) {
			status = "HANDOFF"
			failed = true
		}
		if b.segFrames > 0 && c.segFrames == 0 {
			status = "NOSEG" // flow fast path went dead on this bench
			failed = true
		}
		// Knob-not-dead for the shard kernel: a multi-domain multi-worker
		// rack that never dispatched domains in parallel ran silently
		// serial — as did one whose baseline had parallel windows but
		// now reports none. Both arms require fresh workers > 1: a
		// single-core runner legitimately clamps the pool away.
		if c.rack && c.workers > 1 && c.parWindows == 0 &&
			(b.parWindows > 0 || c.domains > 1) {
			status = "NOPAR"
			failed = true
		}
		line := fmt.Sprintf("%-6s %-24s ns %12.2f -> %12.2f (%.2fx)  allocs %g -> %g",
			status, name, b.ns, c.ns, ratio, b.allocs, c.allocs)
		if b.events > 0 || c.events > 0 {
			line += fmt.Sprintf("  events %.2f -> %.2f", b.events, c.events)
		}
		if c.rack && b.fingerprint != "" && c.fingerprint != b.fingerprint {
			// Informational: the ns/events gates decide pass/fail; this
			// names why the baseline needs regenerating.
			line += "  fp changed (baseline regen needed)"
		}
		fmt.Println(line)
	}
	// Determinism gate: every decomposition of one rack workload must
	// land on the same fingerprint. Checked per report side so a bad
	// baseline is caught too.
	for _, side := range []struct {
		label string
		m     map[string]metric
	}{{"baseline", base}, {"fresh", cur}} {
		for _, f := range checkRackFingerprints(side.label, side.m) {
			fmt.Println(f)
			failed = true
		}
	}
	for _, f := range checkHandlerKnob(cur) {
		fmt.Println(f)
		failed = true
	}
	if curCkpt != nil {
		fmt.Printf("ckpt  %-24s cells %d  snapshot %d B  save %.2f ms  restore %.2f ms  speedup %.2fx  fingerprints %v\n",
			curCkpt.Config, curCkpt.Cells, curCkpt.SnapshotBytes,
			curCkpt.SaveNs/1e6, curCkpt.RestoreNs/1e6, curCkpt.Speedup, curCkpt.AllMatch)
	}
	for _, f := range checkCheckpointKnob(baseCkpt, curCkpt) {
		fmt.Println(f)
		failed = true
	}
	if *hotpaths != "" {
		for _, f := range checkHotpaths(base, *hotpaths) {
			fmt.Println(f)
			failed = true
		}
	}
	var added []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		// Baseline-less rack entries still get the NOPAR gate: dead
		// parallelism is a property of the fresh run alone.
		if c := cur[name]; c.rack && c.domains > 1 && c.workers > 1 && c.parWindows == 0 {
			fmt.Printf("NOPAR %-24s (no baseline) multi-domain rack ran serial\n", name)
			failed = true
			continue
		}
		fmt.Printf("NEW   %-24s (no baseline)\n", name)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: regression detected")
		os.Exit(1)
	}
}
