// Command benchdiff compares a freshly generated benchmark report
// against a checked-in baseline and exits non-zero on regressions:
//
//   - any ns/op (or ns/event) metric more than -tolerance (default
//     25%) slower than the baseline,
//   - ANY allocations on a path whose baseline is zero allocs/op —
//     zero-allocation paths are a hard invariant, not a budget — and
//   - any events-per-op / events-per-I/O count more than 10% above the
//     baseline. Event counts are deterministic (they come from the
//     simulation schedule, not the wall clock), so this gate is immune
//     to runner noise and catches protocol-efficiency regressions that
//     ns/op tolerances would absorb, and
//   - any path whose baseline collapses frames into analytic flow
//     segments (seg_frames_per_op > 0) that stops collapsing them —
//     the knob-not-dead gate for the wire fast path. A silently dead
//     fast path would also trip the events gate, but this one names
//     the cause instead of the symptom.
//
// It understands both report shapes emitted by cmd/dcsbench:
// BENCH_dataplane.json (data-plane microbenchmarks) and
// BENCH_kernel.json (kernel microbenchmarks + figure wall times).
// Metrics present in only one file are reported but never fail the
// diff, so CI can regenerate a subset of the baseline's figures.
//
// Usage:
//
//	benchdiff -baseline BENCH_dataplane.json -fresh fresh_dataplane.json
//	benchdiff -baseline BENCH_kernel.json -fresh fresh_kernel.json -tolerance 0.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// metric is one comparable measurement extracted from a report.
type metric struct {
	ns        float64 // time per op/event; 0 = absent
	allocs    float64
	events    float64 // kernel events per op / per I/O; 0 = absent
	segFrames float64 // frames collapsed into flow segments per op
	hasNs     bool
	zeroed    bool // baseline promises zero allocs on this path
	soft      bool // informational only (whole-run wall clocks): never fails
}

// eventTolerance is the hard ceiling on deterministic event-count
// growth: more than 10% over baseline fails regardless of -tolerance.
const eventTolerance = 0.10

type kernelStats struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type kernelReport struct {
	KernelSchedule   *kernelStats `json:"kernel_schedule"`
	KernelParkResume *kernelStats `json:"kernel_park_resume"`
	Protocol         []struct {
		Name        string  `json:"name"`
		EventsPerIO float64 `json:"events_per_io"`
	} `json:"protocol"`
	Figures []struct {
		Name   string  `json:"name"`
		WallMs float64 `json:"wall_ms"`
	} `json:"figures"`
}

type dataplaneReport struct {
	Benches []struct {
		Name           string  `json:"name"`
		NsPerOp        float64 `json:"ns_per_op"`
		AllocsPerOp    float64 `json:"allocs_per_op"`
		EventsPerOp    float64 `json:"events_per_op"`
		SegFramesPerOp float64 `json:"seg_frames_per_op"`
	} `json:"benches"`
}

// load parses path into name→metric, detecting the report shape.
func load(path string) (map[string]metric, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]metric{}

	var dp dataplaneReport
	if err := json.Unmarshal(data, &dp); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(dp.Benches) > 0 {
		for _, b := range dp.Benches {
			out[b.Name] = metric{ns: b.NsPerOp, allocs: b.AllocsPerOp, events: b.EventsPerOp,
				segFrames: b.SegFramesPerOp, hasNs: true, zeroed: b.AllocsPerOp == 0}
		}
		return out, nil
	}

	var kr kernelReport
	if err := json.Unmarshal(data, &kr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if kr.KernelSchedule == nil && kr.KernelParkResume == nil {
		return nil, fmt.Errorf("%s: neither a dataplane nor a kernel report", path)
	}
	if s := kr.KernelSchedule; s != nil {
		out["kernel_schedule"] = metric{ns: s.NsPerEvent, allocs: s.AllocsPerEvent, hasNs: true}
	}
	if s := kr.KernelParkResume; s != nil {
		out["kernel_park_resume"] = metric{ns: s.NsPerEvent, allocs: s.AllocsPerEvent, hasNs: true}
	}
	for _, pr := range kr.Protocol {
		out["protocol:"+pr.Name] = metric{events: pr.EventsPerIO}
	}
	// Figure wall times ride along informationally: they are whole-run
	// wall clocks, far too noisy on shared CI runners to gate on, so
	// they are printed in the table but never fail the diff.
	for _, f := range kr.Figures {
		out["figure:"+f.Name] = metric{ns: f.WallMs * 1e6, hasNs: true, soft: true}
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "checked-in baseline report (JSON)")
	fresh := flag.String("fresh", "", "freshly generated report (JSON)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown before failing")
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("SKIP  %-24s not in fresh report\n", name)
			continue
		}
		status := "ok"
		ratio := 0.0
		if b.ns > 0 {
			ratio = c.ns / b.ns
			if ratio > 1+*tolerance && !b.soft {
				status = "SLOWER"
				failed = true
			}
		}
		if b.zeroed && c.allocs > 0 {
			status = "ALLOCS"
			failed = true
		}
		if b.events > 0 && c.events > b.events*(1+eventTolerance) {
			status = "EVENTS"
			failed = true
		}
		if b.segFrames > 0 && c.segFrames == 0 {
			status = "NOSEG" // flow fast path went dead on this bench
			failed = true
		}
		line := fmt.Sprintf("%-6s %-24s ns %12.2f -> %12.2f (%.2fx)  allocs %g -> %g",
			status, name, b.ns, c.ns, ratio, b.allocs, c.allocs)
		if b.events > 0 || c.events > 0 {
			line += fmt.Sprintf("  events %.2f -> %.2f", b.events, c.events)
		}
		fmt.Println(line)
	}
	var added []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("NEW   %-24s (no baseline)\n", name)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: regression detected")
		os.Exit(1)
	}
}
