// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§V). Each benchmark runs the corresponding experiment on
// the simulated testbed and reports the figure's key quantities as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The simulations are deterministic:
// per-iteration variance is zero by construction.
package dcsctrl_test

import (
	"fmt"
	"io"
	"testing"

	"dcsctrl/internal/apps"
	"dcsctrl/internal/bench"
	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
)

// BenchmarkFigure2Timeline regenerates the software device-control
// timeline (Figure 2): events traced across user/kernel/driver/device.
func BenchmarkFigure2Timeline(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		events = len(bench.Figure2Timeline())
	}
	b.ReportMetric(float64(events), "timeline-events")
}

// BenchmarkFigure3Motivation regenerates Figure 3: software latency
// and normalized CPU of SSD→GPU(MD5)→NIC across the baselines.
func BenchmarkFigure3Motivation(b *testing.B) {
	var f bench.Figure3
	for i := 0; i < b.N; i++ {
		f = bench.RunFigure3()
	}
	b.ReportMetric(f.Lat[core.SWOpt].Latency.Microseconds(), "sw-opt-µs")
	b.ReportMetric(f.Lat[core.SWP2P].Latency.Microseconds(), "sw-p2p-µs")
	b.ReportMetric(f.Lat[core.DevIntegration].Latency.Microseconds(), "integration-µs")
	if base := f.CPU[core.SWOpt].Seconds(); base > 0 {
		b.ReportMetric(f.CPU[core.DevIntegration].Seconds()/base, "integration-cpu-norm")
	}
}

// BenchmarkFigure8KernelCPU regenerates Figure 8: kernel-side CPU of
// direct SSD→NIC transfers on stock kernel, optimized kernel, DCS-ctrl.
func BenchmarkFigure8KernelCPU(b *testing.B) {
	var f bench.Figure8
	for i := 0; i < b.N; i++ {
		f = bench.RunFigure8()
	}
	total := func(k core.Config) float64 {
		var t sim.Time
		for _, v := range f.Busy[k] {
			t += v
		}
		return t.Microseconds()
	}
	b.ReportMetric(total(core.Vanilla), "vanilla-kernel-µs")
	b.ReportMetric(total(core.SWOpt), "sw-opt-kernel-µs")
	b.ReportMetric(total(core.DCSCtrl), "dcs-kernel-µs")
}

// BenchmarkFigure11aSSDToNIC regenerates Figure 11a and reports the
// headline latency reduction (paper: 42%).
func BenchmarkFigure11aSSDToNIC(b *testing.B) {
	var f bench.Figure11
	for i := 0; i < b.N; i++ {
		f = bench.Figure11a()
	}
	b.ReportMetric(f.Results[core.SWP2P].Latency.Microseconds(), "sw-p2p-µs")
	b.ReportMetric(f.Results[core.DCSCtrl].Latency.Microseconds(), "dcs-µs")
	b.ReportMetric(f.Reduction*100, "reduction-%")
}

// BenchmarkFigure11bWithProcessing regenerates Figure 11b (MD5 via
// GPU vs NDP) and reports the headline reduction (paper: 72%).
func BenchmarkFigure11bWithProcessing(b *testing.B) {
	var f bench.Figure11
	for i := 0; i < b.N; i++ {
		f = bench.Figure11b()
	}
	b.ReportMetric(f.Results[core.SWP2P].Latency.Microseconds(), "sw-p2p-µs")
	b.ReportMetric(f.Results[core.DCSCtrl].Latency.Microseconds(), "dcs-µs")
	b.ReportMetric(f.Reduction*100, "reduction-%")
}

// fig12Once runs the Figure 12 applications once with harness-scale
// configs (shared by the Figure 12 and 13 benchmarks).
func fig12Once() bench.Figure12 {
	return bench.RunFigure12(bench.DefaultFig12Swift(), bench.DefaultFig12HDFS())
}

// BenchmarkFigure12aSwift regenerates Figure 12a: Swift server CPU at
// iso-load (paper headline: 52% reduction).
func BenchmarkFigure12aSwift(b *testing.B) {
	var f bench.Figure12
	for i := 0; i < b.N; i++ {
		f = fig12Once()
	}
	b.ReportMetric(f.Swift[core.SWP2P].ServerCPU*100, "sw-p2p-cpu-%")
	b.ReportMetric(f.Swift[core.DCSCtrl].ServerCPU*100, "dcs-cpu-%")
	b.ReportMetric(f.CPUReduction*100, "reduction-%")
	b.ReportMetric(f.Swift[core.DCSCtrl].Gbps, "dcs-gbps")
}

// BenchmarkFigure12bHDFS regenerates Figure 12b: HDFS balancer CPU at
// iso-bandwidth.
func BenchmarkFigure12bHDFS(b *testing.B) {
	var f bench.Figure12
	for i := 0; i < b.N; i++ {
		f = fig12Once()
	}
	b.ReportMetric(f.HDFS[core.SWP2P].ReceiverCPU*100, "sw-p2p-recv-cpu-%")
	b.ReportMetric(f.HDFS[core.DCSCtrl].ReceiverCPU*100, "dcs-recv-cpu-%")
	b.ReportMetric(f.HDFS[core.DCSCtrl].Gbps, "dcs-gbps")
}

// BenchmarkFigure13Scalability regenerates the 40-Gbps projection
// (paper headlines: 1.95× Swift, 2.06× HDFS iso-CPU throughput).
func BenchmarkFigure13Scalability(b *testing.B) {
	var f13 bench.Figure13
	for i := 0; i < b.N; i++ {
		f13 = bench.ProjectFigure13(fig12Once())
	}
	b.ReportMetric(f13.SwiftGain, "swift-gain-x")
	b.ReportMetric(f13.HDFSGain, "hdfs-gain-x")
	b.ReportMetric(f13.HDFSCores[core.DCSCtrl], "dcs-hdfs-cores@40G")
}

// BenchmarkTable3NDPUnits exercises every NDP unit over 1 MB of data
// (real transforms) and reports modelled aggregate bank throughput.
func BenchmarkTable3NDPUnits(b *testing.B) {
	var out int
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		for _, u := range bench.AllNDPUnits() {
			res, _, err := u.Transform(data)
			if err != nil {
				b.Fatal(err)
			}
			out += len(res)
		}
	}
	if out == 0 {
		b.Fatal("no output")
	}
}

// BenchmarkTable4EngineResources rebuilds the HDC Engine design and
// reports the Table IV resource totals.
func BenchmarkTable4EngineResources(b *testing.B) {
	var luts, brams int
	for i := 0; i < b.N; i++ {
		luts, brams = bench.EngineResourceTotals()
	}
	b.ReportMetric(float64(luts), "luts")
	b.ReportMetric(float64(brams), "brams")
}

// BenchmarkSwiftDCSThroughput measures delivered Swift throughput on
// the DCS-ctrl server (sanity: near the 10-GbE line rate).
func BenchmarkSwiftDCSThroughput(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		cl := core.NewCluster(env, core.DCSCtrl, core.DefaultParams())
		res, err := apps.RunSwift(env, cl, bench.DefaultFig12Swift())
		if err != nil {
			b.Fatal(err)
		}
		gbps = res.Gbps
	}
	b.ReportMetric(gbps, "gbps")
}

// BenchmarkTables renders the static tables (I/II) — a smoke check
// that the renderers stay wired.
func BenchmarkTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
		bench.Table2(io.Discard)
		bench.Table3(io.Discard)
		bench.Table4(io.Discard)
	}
}

// BenchmarkFigure13SimSaturation measures (rather than projects) the
// 40-GbE saturation point on the paper's Gen2 switch and on a Gen3
// fabric.
func BenchmarkFigure13SimSaturation(b *testing.B) {
	var f bench.Figure13Sim
	for i := 0; i < b.N; i++ {
		f = bench.RunFigure13Sim()
	}
	for name, gain := range f.Gains {
		metric := "gen2-gain-x"
		if name == "pcie-gen3 x16" {
			metric = "gen3-gain-x"
		}
		b.ReportMetric(gain, metric)
	}
}

// BenchmarkSizeSweep measures the latency crossover across transfer
// sizes: DCS-ctrl's edge is largest where device control dominates.
func BenchmarkSizeSweep(b *testing.B) {
	var sw bench.SizeSweep
	for i := 0; i < b.N; i++ {
		sw = bench.RunSizeSweep(core.ProcNone)
	}
	b.ReportMetric(sw.Reduction(0)*100, "reduction-4KB-%")
	b.ReportMetric(sw.Reduction(len(sw.Sizes)-1)*100, "reduction-1MB-%")
}

// BenchmarkSweepParallel runs the full size sweep with the worker pool
// at 1, 2, 4, and 8 workers. ns/op across the sub-benchmarks is the
// wall-clock scaling curve of the parallel runner; on a multi-core
// machine ns/op should drop roughly linearly until workers exceed
// independent trial cells or physical cores. Results are asserted
// byte-identical to serial elsewhere (TestParallelSweepEquivalence).
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var sw bench.SizeSweep
			for i := 0; i < b.N; i++ {
				sw = bench.RunSizeSweepParallel(core.ProcNone, workers)
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(sw.Reduction(0)*100, "reduction-4KB-%")
		})
	}
}
