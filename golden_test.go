package dcsctrl_test

import (
	"testing"

	"dcsctrl/internal/bench"
)

// Golden values measured from the calibrated simulator, compatible
// with the paper's headlines: Figure 11a ≈42% latency reduction,
// Figure 11b ≈72%, Figure 12 ≈52% CPU reduction. A drift beyond the
// tolerance means a change altered the modelled physics — either fix
// the regression or re-justify the calibration in EXPERIMENTS.md and
// update these constants deliberately.
const (
	goldenFig11aReduction = 0.3863
	goldenFig11bReduction = 0.6704
	goldenFig12CPUSaving  = 0.5573
	goldenTolerance       = 0.05
)

func assertGolden(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := got - want; diff > goldenTolerance || diff < -goldenTolerance {
		t.Errorf("%s = %.4f, want %.4f ± %.2f", name, got, want, goldenTolerance)
	}
}

// TestGoldenFigure11a pins the SSD→NIC microbenchmark latency
// reduction of DCS-ctrl vs software-controlled P2P.
func TestGoldenFigure11a(t *testing.T) {
	if testing.Short() {
		t.Skip("golden benchmark run")
	}
	assertGolden(t, "Figure 11a reduction", bench.Figure11a().Reduction, goldenFig11aReduction)
}

// TestGoldenFigure11b pins the SSD→MD5→NIC microbenchmark reduction.
func TestGoldenFigure11b(t *testing.T) {
	if testing.Short() {
		t.Skip("golden benchmark run")
	}
	assertGolden(t, "Figure 11b reduction", bench.Figure11b().Reduction, goldenFig11bReduction)
}

// TestGoldenFigure12 pins the Swift CPU-utilization saving of
// DCS-ctrl vs software-controlled P2P at matched throughput.
func TestGoldenFigure12(t *testing.T) {
	if testing.Short() {
		t.Skip("golden benchmark run")
	}
	f12 := bench.RunFigure12(bench.DefaultFig12Swift(), bench.DefaultFig12HDFS())
	assertGolden(t, "Figure 12 CPU reduction", f12.CPUReduction, goldenFig12CPUSaving)
	for _, k := range bench.Fig12Configs {
		if f12.Swift[k].Errors != 0 {
			t.Errorf("%s: %d Swift request errors", k, f12.Swift[k].Errors)
		}
		if f12.Swift[k].Requests == 0 {
			t.Errorf("%s: no Swift requests completed", k)
		}
		if f12.HDFS[k].Blocks == 0 {
			t.Errorf("%s: no HDFS blocks moved", k)
		}
	}
}
