// Package dcsctrl is the public API of the DCS-ctrl testbed: a
// deterministic full-system simulation of the ISCA 2018 paper
// "DCS-ctrl: A Fast and Flexible Device-Control Mechanism for
// Device-Centric Server Architecture" (Kwon et al.).
//
// A Testbed is the paper's two-node setup: a server in one of five
// configurations (stock kernel, optimized kernel, software-controlled
// peer-to-peer, integrated device, or DCS-ctrl with the FPGA-based
// HDC Engine) connected back to back with a client. Multi-device
// tasks — SSD→[NDP]→NIC and NIC→[NDP]→SSD — execute over modelled
// devices that move real bytes: NVMe commands, TCP/IP frames with
// checksums, MD5/CRC32/AES/GZIP transforms.
//
// Quick start:
//
//	tb := dcsctrl.NewTestbed(dcsctrl.DCSCtrl)
//	f, _ := tb.StageFile("obj", payload)
//	conn := tb.OpenConnection(true)
//	tb.Go("app", func(p *dcsctrl.Proc) {
//	    res, _ := tb.SendFile(p, f, 0, len(payload), conn, dcsctrl.ProcMD5)
//	    fmt.Println(res.Latency, res.Digest)
//	})
//	tb.Go("sink", func(p *dcsctrl.Proc) { tb.ClientRecv(p, conn, len(payload)) })
//	tb.Run()
package dcsctrl

import (
	"fmt"

	"dcsctrl/internal/apps"
	"dcsctrl/internal/core"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/fpga"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// Re-exported fundamental types.
type (
	// Config selects a server design.
	Config = core.Config
	// Params bundles every model's calibration parameters.
	Params = core.Params
	// Processing selects intermediate data processing (Table II).
	Processing = core.Processing
	// Proc is a simulation process handle.
	Proc = sim.Proc
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// File is a server-side file (extent-mapped onto the SSD).
	File = hostos.File
	// Conn is an established server↔client connection.
	Conn = core.Conn
	// OpResult is a completed multi-device task.
	OpResult = core.OpResult
	// Category labels where CPU time or latency went.
	Category = trace.Category
	// Breakdown is a per-phase latency decomposition.
	Breakdown = trace.Breakdown
	// SwiftConfig drives the object-storage workload.
	SwiftConfig = apps.SwiftConfig
	// SwiftResult summarizes a Swift run.
	SwiftResult = apps.SwiftResult
	// HDFSConfig drives the balancer workload.
	HDFSConfig = apps.HDFSConfig
	// HDFSResult summarizes a balancer run.
	HDFSResult = apps.HDFSResult
	// Scalability is the Figure 13 projection model.
	Scalability = core.Scalability
	// FaultProfile is a named set of fault-injection rules.
	FaultProfile = fault.Profile
	// FaultInjector draws seed-deterministic fault decisions.
	FaultInjector = fault.Injector
)

// FaultProfileByName resolves a named fault profile ("none", "light",
// "heavy", "engine-fail").
func FaultProfileByName(name string) (FaultProfile, bool) {
	return fault.ProfileByName(name)
}

// FaultProfileNames lists the named fault profiles.
func FaultProfileNames() []string { return fault.ProfileNames() }

// NewFaultInjector builds a deterministic injector for a profile.
func NewFaultInjector(seed uint64, profile FaultProfile) *FaultInjector {
	return fault.NewInjector(seed, profile)
}

// Server configurations.
const (
	Vanilla        = core.Vanilla
	SWOpt          = core.SWOpt
	SWP2P          = core.SWP2P
	DevIntegration = core.DevIntegration
	DCSCtrl        = core.DCSCtrl
)

// Intermediate processing kinds.
const (
	ProcNone   = core.ProcNone
	ProcMD5    = core.ProcMD5
	ProcCRC32  = core.ProcCRC32
	ProcSHA256 = core.ProcSHA256
	ProcAES256 = core.ProcAES256
	ProcGZIP   = core.ProcGZIP
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultParams returns the calibrated parameter set (Table V devices,
// Table III/IV FPGA figures; see EXPERIMENTS.md for provenance).
func DefaultParams() Params { return core.DefaultParams() }

// Testbed is the two-node evaluation platform.
type Testbed struct {
	Env     *sim.Env
	Cluster *core.Cluster

	faults *fault.Injector
}

// Option customizes testbed construction.
type Option func(*options)

type options struct {
	params     Params
	clientKind Config
	faults     *fault.Injector
}

// WithParams overrides the calibration parameters.
func WithParams(p Params) Option { return func(o *options) { o.params = p } }

// WithClientConfig sets the client node's design (default: optimized
// software; the HDFS experiment runs the design under test on both).
func WithClientConfig(k Config) Option { return func(o *options) { o.clientKind = k } }

// WithFaults threads a deterministic fault injector through every
// device model on both nodes: same seed and profile, same faults,
// bit-for-bit. Recovery machinery (driver retries, command watchdog,
// host-mediated fallback) is armed automatically.
func WithFaults(seed uint64, profile FaultProfile) Option {
	return func(o *options) { o.faults = fault.NewInjector(seed, profile) }
}

// NewTestbed builds a server of the given configuration plus a client.
func NewTestbed(serverKind Config, opts ...Option) *Testbed {
	o := options{params: core.DefaultParams(), clientKind: SWOpt}
	for _, fn := range opts {
		fn(&o)
	}
	if o.faults != nil {
		o.params.Faults = o.faults
	}
	env := sim.NewEnv()
	return &Testbed{
		Env:     env,
		Cluster: core.NewClusterWithClient(env, serverKind, o.clientKind, o.params),
		faults:  o.params.Faults,
	}
}

// Go spawns an application process.
func (t *Testbed) Go(name string, fn func(p *Proc)) { t.Env.Spawn(name, fn) }

// Run executes the simulation to completion and returns the final
// simulated time.
func (t *Testbed) Run() Time { return t.Env.Run(-1) }

// RunFor executes the simulation up to the horizon.
func (t *Testbed) RunFor(d Time) Time { return t.Env.Run(d) }

// StageFile creates a server file and loads its content onto the
// server SSD.
func (t *Testbed) StageFile(name string, content []byte) (*File, error) {
	return t.Cluster.Server.StageFile(name, content)
}

// CreateFile creates an empty server file (for uploads).
func (t *Testbed) CreateFile(name string, size int) (*File, error) {
	return t.Cluster.Server.CreateFile(name, size)
}

// OpenConnection establishes a connection; dataPlane hands the server
// endpoint to the HDC Engine on DCS-ctrl servers.
func (t *Testbed) OpenConnection(dataPlane bool) Conn {
	return t.Cluster.OpenConn(dataPlane)
}

// SendFile runs the SSD→[NDP]→NIC task on the server.
func (t *Testbed) SendFile(p *Proc, f *File, off, n int, conn Conn, proc Processing) (OpResult, error) {
	return t.Cluster.Server.SendFileOp(p, f, off, n, conn.ID, proc)
}

// RecvFile runs the NIC→[NDP]→SSD task on the server.
func (t *Testbed) RecvFile(p *Proc, conn Conn, f *File, off, n int, proc Processing) (OpResult, error) {
	return t.Cluster.Server.RecvFileOp(p, conn.ID, f, off, n, proc)
}

// CopyFile moves data between two server files through the HDC Engine
// (SSD→[NDP]→SSD, no host data path). DCS-ctrl servers only; if the
// engine has failed, the copy degrades to the host-staged path.
func (t *Testbed) CopyFile(p *Proc, src *File, srcOff int, dst *File, dstOff, n int, proc Processing) (OpResult, error) {
	srv := t.Cluster.Server
	if srv.Driver == nil {
		return OpResult{}, fmt.Errorf("dcsctrl: CopyFile requires a DCS-ctrl server")
	}
	return srv.CopyFileOp(p, src, srcOff, dst, dstOff, n, proc)
}

// ProvisionAESKey installs an AES-256 key slot on the server's engine;
// select it per operation with SendFileEncrypted.
func (t *Testbed) ProvisionAESKey(slot uint64, key [32]byte) error {
	if t.Cluster.Server.Engine == nil {
		return fmt.Errorf("dcsctrl: key slots require a DCS-ctrl server")
	}
	t.Cluster.Server.Engine.ProvisionAESKey(slot, key)
	return nil
}

// SendFileEncrypted is SendFile through the engine's AES-256 unit
// using a provisioned key slot.
func (t *Testbed) SendFileEncrypted(p *Proc, f *File, off, n int, conn Conn, keySlot uint64) (OpResult, error) {
	srv := t.Cluster.Server
	if srv.Driver == nil {
		return OpResult{}, fmt.Errorf("dcsctrl: engine encryption requires a DCS-ctrl server")
	}
	bd := trace.NewBreakdown()
	start := t.Env.Now()
	res, err := srv.Driver.SendFileAux(p, bd, srv.DevOf(f), f, off, n, conn.ID, uint8(ProcAES256), keySlot)
	out := OpResult{Breakdown: bd, Latency: t.Env.Now() - start, Digest: res.Aux}
	if err == nil && res.Status != 0 {
		err = fmt.Errorf("dcsctrl: command failed with status %d", res.Status)
	}
	return out, err
}

// ClientSend transmits payload from the client.
func (t *Testbed) ClientSend(p *Proc, conn Conn, payload []byte) {
	t.Cluster.ClientSend(p, conn, payload)
}

// ClientRecv blocks until the client received n bytes and returns them.
func (t *Testbed) ClientRecv(p *Proc, conn Conn, n int) []byte {
	return t.Cluster.ClientRecv(p, conn, n)
}

// ReadBack fetches a server file's SSD contents (verification).
func (t *Testbed) ReadBack(f *File) []byte { return t.Cluster.Server.ReadBack(f) }

// ServerUtilization returns total server CPU utilization since the
// last account reset.
func (t *Testbed) ServerUtilization() float64 { return t.Cluster.Server.Host.Utilization() }

// ServerBusy returns per-category server CPU busy time.
func (t *Testbed) ServerBusy() map[Category]Time {
	acct := t.Cluster.Server.Host.Acct
	out := map[Category]Time{}
	for _, cat := range acct.Categories() {
		out[cat] = acct.Busy(cat)
	}
	return out
}

// ResetServerAccounting restarts the server CPU measurement window.
func (t *Testbed) ResetServerAccounting() { t.Cluster.Server.Host.Acct.Reset() }

// FPGABudget returns the HDC Engine's resource accounting (Table IV);
// nil on non-DCS servers.
func (t *Testbed) FPGABudget() *fpga.Budget {
	if t.Cluster.Server.Engine == nil {
		return nil
	}
	return t.Cluster.Server.Engine.Budget()
}

// Faults returns the testbed's fault injector (nil without WithFaults).
func (t *Testbed) Faults() *FaultInjector { return t.faults }

// RecoveryStats summarizes the recovery machinery's activity across
// the server node after a run under fault injection.
type RecoveryStats struct {
	Injected        int64 // total faults the injector fired (both nodes)
	DriverRetries   int64 // D2D commands re-issued after transient status
	DriverTimeouts  int64 // D2D commands abandoned by the watchdog
	EngineFailed    bool  // engine declared dead
	Fallbacks       int64 // ops completed on the host-mediated path
	HostNVMeRetries int64 // host NVMe driver re-submissions
	NICTxReplays    int64 // corrupt frames re-transmitted
	NICBDRefetches  int64 // stuck buffer descriptors re-fetched
}

// ServerRecoveryStats collects the server's recovery counters.
func (t *Testbed) ServerRecoveryStats() RecoveryStats {
	srv := t.Cluster.Server
	rs := RecoveryStats{
		Fallbacks:       srv.Fallbacks(),
		HostNVMeRetries: srv.HostNVMeRetries(),
	}
	if t.faults != nil {
		rs.Injected = t.faults.TotalInjected()
	}
	rs.NICTxReplays, rs.NICBDRefetches = srv.NIC.RecoveryStats()
	if srv.Driver != nil {
		rs.DriverRetries = srv.Driver.Retries()
		rs.DriverTimeouts = srv.Driver.Timeouts()
		rs.EngineFailed = srv.Driver.Failed()
	}
	return rs
}

// RunSwift executes the object-storage workload on this testbed.
func (t *Testbed) RunSwift(cfg SwiftConfig) (SwiftResult, error) {
	return apps.RunSwift(t.Env, t.Cluster, cfg)
}

// RunHDFS executes the balancer workload on this testbed.
func (t *Testbed) RunHDFS(cfg HDFSConfig) (HDFSResult, error) {
	return apps.RunHDFS(t.Env, t.Cluster, cfg)
}

// DefaultSwiftConfig returns the evaluation's Swift setup.
func DefaultSwiftConfig() SwiftConfig { return apps.DefaultSwiftConfig() }

// DefaultHDFSConfig returns the evaluation's HDFS setup.
func DefaultHDFSConfig() HDFSConfig { return apps.DefaultHDFSConfig() }

// NewScalability derives the Figure 13 projection from a measured
// operating point.
func NewScalability(measuredGbps, utilization float64, cores int) (Scalability, error) {
	return core.NewScalability(measuredGbps, utilization, cores)
}
