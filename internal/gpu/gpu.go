// Package gpu models the accelerator the paper's baselines use for
// intermediate processing (an NVIDIA Tesla K20m): device memory
// exposed as a P2P target (GPUDirect-style), a DMA copy engine, and
// kernel execution with launch latency and compute throughput. Kernels
// compute real results (MD5/CRC32 over the actual bytes), so baseline
// pipelines are functionally verifiable too.
package gpu

import (
	"crypto/md5"
	"fmt"
	"hash/crc32"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Params are the GPU performance characteristics.
type Params struct {
	VRAMBytes    uint64
	LaunchLat    sim.Time // kernel launch to first instruction
	CompleteLat  sim.Time // completion signalling back to host
	HashBps      float64  // checksum kernel throughput over data
	CopyEngines  int      // concurrent DMA engines
	CopySetupLat sim.Time // per-copy programming latency on device
}

// DefaultParams return K20m-calibrated values. Hash throughput is
// deliberately modest: per-request checksum kernels at 4-64 KB sizes
// run far below peak GPU bandwidth (launch-bound, little parallelism).
func DefaultParams() Params {
	return Params{
		VRAMBytes:    64 << 20,
		LaunchLat:    25 * sim.Microsecond,
		CompleteLat:  15 * sim.Microsecond,
		HashBps:      40e9,
		CopyEngines:  2,
		CopySetupLat: 10 * sim.Microsecond,
	}
}

// KernelKind selects the checksum computed by a kernel.
type KernelKind int

// Supported kernels.
const (
	KernelMD5 KernelKind = iota
	KernelCRC32
)

func (k KernelKind) String() string {
	switch k {
	case KernelMD5:
		return "md5"
	case KernelCRC32:
		return "crc32"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// GPU is the device model.
type GPU struct {
	Name string

	env    *sim.Env
	fab    *pcie.Fabric
	params Params
	port   *pcie.Port

	// VRAM is exposed on the bus (GPUDirect): peers may DMA into it.
	VRAM *mem.Region

	copyEng *sim.Resource
	smUnits *sim.Resource // kernel serialization (one kernel at a time)

	kernels int64
	copied  int64
}

// NewGPU builds the device on a new fabric port.
func NewGPU(env *sim.Env, fab *pcie.Fabric, name string, params Params) *GPU {
	g := &GPU{Name: name, env: env, fab: fab, params: params}
	g.port = fab.AddPort(name)
	g.VRAM = fab.Mem().AddRegion(name+"-vram", mem.GPUVRAM, params.VRAMBytes, true)
	fab.Attach(g.port, g.VRAM)
	g.copyEng = sim.NewResource(env, name+"-copy", params.CopyEngines)
	g.smUnits = sim.NewResource(env, name+"-sm", 1)
	return g
}

// Port returns the GPU's fabric port.
func (g *GPU) Port() *pcie.Port { return g.port }

// Stats returns kernels launched and bytes copied by the copy engine.
func (g *GPU) Stats() (kernels, copiedBytes int64) { return g.kernels, g.copied }

// Copy moves n bytes between VRAM and any bus address using a copy
// engine (either direction; a cudaMemcpy issued by the host or a
// GPUDirect peer transfer). The process blocks for the transfer.
func (g *GPU) Copy(p *sim.Proc, dst, src mem.Addr, n int) error {
	g.copyEng.Acquire(p)
	defer g.copyEng.Release()
	p.Sleep(g.params.CopySetupLat)
	return g.fab.DMA(p, g.port, dst, src, n)
}

// RunHashKernel launches a checksum kernel over VRAM[data:data+n] and
// returns the digest bytes (16 for MD5, 4 for CRC32 big-endian). The
// digest is also written back to VRAM at resultAddr.
func (g *GPU) RunHashKernel(p *sim.Proc, kind KernelKind, data mem.Addr, n int, resultAddr mem.Addr) ([]byte, error) {
	if !g.VRAM.Contains(data) || !g.VRAM.Contains(resultAddr) {
		return nil, fmt.Errorf("gpu: kernel operands must reside in VRAM")
	}
	g.smUnits.Acquire(p)
	defer g.smUnits.Release()
	p.Sleep(g.params.LaunchLat)
	p.Sleep(sim.BpsToTime(n, g.params.HashBps))
	// View: the digest functions only read the bytes, synchronously.
	buf := g.fab.Mem().View(data, n)
	var digest []byte
	switch kind {
	case KernelMD5:
		d := md5.Sum(buf)
		digest = d[:]
	case KernelCRC32:
		c := crc32.ChecksumIEEE(buf)
		digest = []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}
	default:
		return nil, fmt.Errorf("gpu: unknown kernel %v", kind)
	}
	g.fab.Mem().Write(resultAddr, digest)
	p.Sleep(g.params.CompleteLat)
	g.kernels++
	g.copied += int64(n)
	return digest, nil
}
