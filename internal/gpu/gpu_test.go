package gpu

import (
	"bytes"
	"crypto/md5"
	"hash/crc32"
	"testing"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

type rig struct {
	env  *sim.Env
	mm   *mem.Map
	fab  *pcie.Fabric
	gpu  *GPU
	dram *mem.Region
}

func newRig() *rig {
	env := sim.NewEnv()
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	host := fab.AddPort("root")
	dram := mm.AddRegion("dram", mem.HostDRAM, 16<<20, true)
	fab.Attach(host, dram)
	g := NewGPU(env, fab, "k20m", DefaultParams())
	return &rig{env: env, mm: mm, fab: fab, gpu: g, dram: dram}
}

func TestCopyHostToVRAMAndBack(t *testing.T) {
	r := newRig()
	payload := bytes.Repeat([]byte("cuda"), 1024)
	src := r.dram.Alloc(uint64(len(payload)), 64)
	r.mm.Write(src, payload)
	vbuf := r.gpu.VRAM.Alloc(uint64(len(payload)), 64)
	back := r.dram.Alloc(uint64(len(payload)), 64)
	r.env.Spawn("host", func(p *sim.Proc) {
		if err := r.gpu.Copy(p, vbuf, src, len(payload)); err != nil {
			t.Errorf("h2d: %v", err)
		}
		if err := r.gpu.Copy(p, back, vbuf, len(payload)); err != nil {
			t.Errorf("d2h: %v", err)
		}
	})
	r.env.Run(-1)
	if got := r.mm.Read(back, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	if _, copied := r.gpu.Stats(); copied != 0 {
		// copied counts kernel-processed bytes, not copies
		t.Fatalf("kernel bytes = %d", copied)
	}
}

func TestMD5KernelMatchesStdlib(t *testing.T) {
	r := newRig()
	payload := bytes.Repeat([]byte{0x5A}, 64<<10)
	vbuf := r.gpu.VRAM.Alloc(uint64(len(payload)), 64)
	vres := r.gpu.VRAM.Alloc(64, 64)
	r.mm.Write(vbuf, payload)
	var digest []byte
	r.env.Spawn("host", func(p *sim.Proc) {
		var err error
		digest, err = r.gpu.RunHashKernel(p, KernelMD5, vbuf, len(payload), vres)
		if err != nil {
			t.Error(err)
		}
	})
	r.env.Run(-1)
	want := md5.Sum(payload)
	if !bytes.Equal(digest, want[:]) {
		t.Fatal("MD5 mismatch")
	}
	if got := r.mm.Read(vres, 16); !bytes.Equal(got, want[:]) {
		t.Fatal("digest not written to VRAM")
	}
}

func TestCRC32Kernel(t *testing.T) {
	r := newRig()
	payload := []byte("hdfs balancer block")
	vbuf := r.gpu.VRAM.Alloc(4096, 64)
	vres := r.gpu.VRAM.Alloc(64, 64)
	r.mm.Write(vbuf, payload)
	var digest []byte
	r.env.Spawn("host", func(p *sim.Proc) {
		digest, _ = r.gpu.RunHashKernel(p, KernelCRC32, vbuf, len(payload), vres)
	})
	r.env.Run(-1)
	c := crc32.ChecksumIEEE(payload)
	want := []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}
	if !bytes.Equal(digest, want) {
		t.Fatal("CRC mismatch")
	}
}

func TestKernelRequiresVRAMOperands(t *testing.T) {
	r := newRig()
	hostBuf := r.dram.Alloc(4096, 64)
	vres := r.gpu.VRAM.Alloc(64, 64)
	var err error
	r.env.Spawn("host", func(p *sim.Proc) {
		_, err = r.gpu.RunHashKernel(p, KernelMD5, hostBuf, 100, vres)
	})
	r.env.Run(-1)
	if err == nil {
		t.Fatal("kernel over host memory accepted")
	}
}

func TestKernelLatencyModel(t *testing.T) {
	r := newRig()
	vbuf := r.gpu.VRAM.Alloc(64<<10, 64)
	vres := r.gpu.VRAM.Alloc(64, 64)
	n := 64 << 10
	var took sim.Time
	r.env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		r.gpu.RunHashKernel(p, KernelMD5, vbuf, n, vres)
		took = p.Now() - start
	})
	r.env.Run(-1)
	params := DefaultParams()
	want := params.LaunchLat + params.CompleteLat + sim.BpsToTime(n, params.HashBps)
	if took != want {
		t.Fatalf("kernel took %v, want %v", took, want)
	}
}

func TestKernelsSerialize(t *testing.T) {
	r := newRig()
	vbuf := r.gpu.VRAM.Alloc(4096, 64)
	vres := r.gpu.VRAM.Alloc(64, 64)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		r.env.Spawn("host", func(p *sim.Proc) {
			r.gpu.RunHashKernel(p, KernelMD5, vbuf, 4096, vres)
			ends = append(ends, p.Now())
		})
	}
	r.env.Run(-1)
	if ends[1] < 2*DefaultParams().LaunchLat {
		t.Fatalf("kernels overlapped: %v", ends)
	}
	if k, _ := r.gpu.Stats(); k != 2 {
		t.Fatalf("kernels = %d", k)
	}
}

func TestPeerDMAIntoVRAM(t *testing.T) {
	// A peer device (not the GPU, not the host) can DMA into VRAM —
	// the GPUDirect property the SW-P2P baseline depends on.
	r := newRig()
	peer := r.fab.AddPort("peer-dev")
	peerBuf := r.mm.AddRegion("peer-int", mem.DeviceInternal, 1<<20, false)
	r.fab.Attach(peer, peerBuf)
	r.mm.Write(peerBuf.Base, []byte("peer payload"))
	vdst := r.gpu.VRAM.Alloc(4096, 64)
	var err error
	r.env.Spawn("peer", func(p *sim.Proc) {
		err = r.fab.DMA(p, peer, vdst, peerBuf.Base, 12)
	})
	r.env.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.mm.Read(vdst, 12); !bytes.Equal(got, []byte("peer payload")) {
		t.Fatal("peer write mismatch")
	}
}
