package gpu

import (
	"fmt"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). A quiescent GPU runs no kernel
// and no copy, so the state is the two resource accumulators and the
// counters. VRAM content is captured by the memory-map snapshot.

// SnapSave encodes the device state.
func (g *GPU) SnapSave(w *snap.Writer) error {
	if err := sim.CheckpointAccumInto(w, g.copyEng); err != nil {
		return fmt.Errorf("gpu: %s: %w", g.Name, err)
	}
	if err := sim.CheckpointAccumInto(w, g.smUnits); err != nil {
		return fmt.Errorf("gpu: %s: %w", g.Name, err)
	}
	w.I64(g.kernels)
	w.I64(g.copied)
	return nil
}

// SnapLoad overlays the captured state onto an idle GPU.
func (g *GPU) SnapLoad(r *snap.Reader) error {
	if err := sim.RestoreAccumFrom(r, g.copyEng); err != nil {
		return err
	}
	if err := sim.RestoreAccumFrom(r, g.smUnits); err != nil {
		return err
	}
	g.kernels = r.I64()
	g.copied = r.I64()
	return r.Err()
}
