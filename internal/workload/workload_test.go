package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dcsctrl/internal/sim"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100", same)
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zeros")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn bucket %d = %d of 10000 (not ~uniform)", i, c)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 3 {
		t.Fatalf("Exp mean = %v, want ~100", mean)
	}
}

func TestExpTimePositive(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(100 * sim.Microsecond); d < 0 {
			t.Fatalf("negative inter-arrival %v", d)
		}
	}
}

func TestSizeDistSamplesWithinBuckets(t *testing.T) {
	d := DropboxSizes()
	r := NewRand(3)
	min, max := d.Buckets[0].Min, d.Buckets[len(d.Buckets)-1].Max
	for i := 0; i < 10000; i++ {
		s := d.Sample(r)
		if s < min || s > max {
			t.Fatalf("sample %d outside [%d,%d]", s, min, max)
		}
	}
}

func TestSizeDistWeights(t *testing.T) {
	d := DropboxSizes()
	r := NewRand(5)
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(r) <= 32<<10 {
			small++
		}
	}
	frac := float64(small) / n
	// First bucket weight is 0.30 (plus a sliver from bucket 2's min).
	if frac < 0.25 || frac > 0.36 {
		t.Fatalf("small-file fraction %.3f, want ~0.30", frac)
	}
}

func TestSizeDistMean(t *testing.T) {
	d := DropboxSizes()
	want := d.Mean()
	r := NewRand(17)
	var sum float64
	const n = 30000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical mean %.0f vs analytic %.0f", got, want)
	}
}

func TestBadBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSizeDist([]SizeBucket{{Weight: 1, Min: 10, Max: 5}})
}

func TestMixRatio(t *testing.T) {
	m := NewMix(9, DropboxSizes(), 0.67)
	gets := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Next().Kind == OpGET {
			gets++
		}
	}
	frac := float64(gets) / n
	if math.Abs(frac-0.67) > 0.02 {
		t.Fatalf("GET fraction %.3f, want 0.67", frac)
	}
}

func TestMixDeterministicReplay(t *testing.T) {
	run := func() []Request {
		m := NewMix(21, DropboxSizes(), 0.5)
		out := make([]Request, 100)
		for i := range out {
			out[i] = m.Next()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mix replay diverged")
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpGET.String() != "GET" || OpPUT.String() != "PUT" {
		t.Fatal("bad strings")
	}
}

// Property: every sample is within some bucket's [Min,Max].
func TestSampleInBucketProperty(t *testing.T) {
	d := DropboxSizes()
	f := func(seed uint64) bool {
		r := NewRand(seed)
		s := d.Sample(r)
		for _, b := range d.Buckets {
			if s >= b.Min && s <= b.Max {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
