// Package workload generates the request streams of the paper's
// evaluation (§V-C): Poisson arrivals, a Dropbox-derived file-size
// mixture (Drago et al. [42]), and PUT/GET mixes, all from a seeded
// deterministic PRNG so every run replays identically.
package workload

import (
	"math"

	"dcsctrl/internal/sim"
)

// Rand is a small deterministic PRNG (xorshift64*), independent of
// math/rand so model evolution never changes replay behaviour.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed (0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean
// (inter-arrival times of a Poisson process).
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponential sim.Time with the given mean.
func (r *Rand) ExpTime(mean sim.Time) sim.Time {
	return sim.Time(r.Exp(float64(mean)))
}

// SizeBucket is one segment of a file-size mixture: sizes uniform in
// [Min,Max] chosen with probability Weight (after normalization).
type SizeBucket struct {
	Weight   float64
	Min, Max int
}

// SizeDist is a bucketized file-size distribution.
type SizeDist struct {
	Buckets []SizeBucket
	total   float64
}

// NewSizeDist normalizes the bucket weights.
func NewSizeDist(buckets []SizeBucket) *SizeDist {
	d := &SizeDist{Buckets: buckets}
	for _, b := range buckets {
		if b.Min <= 0 || b.Max < b.Min || b.Weight < 0 {
			panic("workload: bad size bucket")
		}
		d.total += b.Weight
	}
	if d.total <= 0 {
		panic("workload: empty size distribution")
	}
	return d
}

// DropboxSizes is the personal-cloud-storage mixture of [42], scaled
// to the testbed (capped at 4 MB so discrete-event runs stay
// tractable; the cap is documented in EXPERIMENTS.md).
func DropboxSizes() *SizeDist {
	return NewSizeDist([]SizeBucket{
		{Weight: 0.30, Min: 4 << 10, Max: 32 << 10},
		{Weight: 0.40, Min: 32 << 10, Max: 256 << 10},
		{Weight: 0.25, Min: 256 << 10, Max: 1 << 20},
		{Weight: 0.05, Min: 1 << 20, Max: 4 << 20},
	})
}

// Sample draws a size.
func (d *SizeDist) Sample(r *Rand) int {
	x := r.Float64() * d.total
	for _, b := range d.Buckets {
		if x < b.Weight || b == d.Buckets[len(d.Buckets)-1] {
			return b.Min + r.Intn(b.Max-b.Min+1)
		}
		x -= b.Weight
	}
	return d.Buckets[len(d.Buckets)-1].Max
}

// Mean returns the distribution's expected size.
func (d *SizeDist) Mean() float64 {
	var m float64
	for _, b := range d.Buckets {
		m += b.Weight / d.total * float64(b.Min+b.Max) / 2
	}
	return m
}

// OpKind is a storage operation type.
type OpKind int

// Request kinds.
const (
	OpGET OpKind = iota
	OpPUT
)

func (k OpKind) String() string {
	if k == OpGET {
		return "GET"
	}
	return "PUT"
}

// Request is one generated storage request.
type Request struct {
	Kind OpKind
	Size int
}

// Mix generates GET/PUT requests with Dropbox-like sizes.
type Mix struct {
	rng      *Rand
	sizes    *SizeDist
	getRatio float64
}

// NewMix returns a generator; getRatio is the fraction of GETs.
func NewMix(seed uint64, sizes *SizeDist, getRatio float64) *Mix {
	if getRatio < 0 || getRatio > 1 {
		panic("workload: GET ratio out of range")
	}
	return &Mix{rng: NewRand(seed), sizes: sizes, getRatio: getRatio}
}

// Next draws the next request.
func (m *Mix) Next() Request {
	k := OpPUT
	if m.rng.Float64() < m.getRatio {
		k = OpGET
	}
	return Request{Kind: k, Size: m.sizes.Sample(m.rng)}
}

// Rand exposes the generator's PRNG (for arrival sampling).
func (m *Mix) Rand() *Rand { return m.rng }
