// Package fpga models the Virtex-7 resource budget of the HDC Engine
// board (XC7VX485T on the VC707): slice LUTs, slice registers, BRAM
// tiles, and power. Components register their usage; the builder
// refuses designs that exceed the device, reproducing the paper's
// Tables III and IV accounting.
package fpga

import (
	"fmt"
	"sort"
)

// Device is an FPGA part's resource capacity.
type Device struct {
	Name      string
	LUTs      int
	Registers int
	BRAMs     int
}

// Virtex7VC707 is the evaluation board's part (Table IV denominators).
func Virtex7VC707() Device {
	return Device{Name: "Virtex-7 XC7VX485T (VC707)", LUTs: 303600, Registers: 607200, BRAMs: 1030}
}

// Usage is one component's resource consumption.
type Usage struct {
	Component string
	LUTs      int
	Registers int
	BRAMs     int
	PowerW    float64
	// MaxClockMHz is the component's timing-closure ceiling; 0 means
	// not characterized. The design clock is capped at 250 MHz per the
	// paper's realistic-throughput rule (Table III footnote 1).
	MaxClockMHz float64
}

// DesignClockCapMHz is the highest clock used for throughput
// estimates, even when timing closes above it.
const DesignClockCapMHz = 250.0

// EffectiveClockMHz returns the clock used for throughput estimation.
func (u Usage) EffectiveClockMHz() float64 {
	c := u.MaxClockMHz
	if c <= 0 || c > DesignClockCapMHz {
		c = DesignClockCapMHz
	}
	return c
}

// Budget tracks allocations against a device.
type Budget struct {
	dev   Device
	used  []Usage
	byKey map[string]int
}

// NewBudget returns an empty budget for the device.
func NewBudget(dev Device) *Budget {
	return &Budget{dev: dev, byKey: map[string]int{}}
}

// Device returns the budget's device.
func (b *Budget) Device() Device { return b.dev }

// Claim reserves u against the budget, failing when any resource
// would exceed the device.
func (b *Budget) Claim(u Usage) error {
	if u.LUTs < 0 || u.Registers < 0 || u.BRAMs < 0 {
		return fmt.Errorf("fpga: negative usage for %s", u.Component)
	}
	luts, regs, brams, _ := b.Totals()
	if luts+u.LUTs > b.dev.LUTs {
		return fmt.Errorf("fpga: %s needs %d LUTs, only %d free", u.Component, u.LUTs, b.dev.LUTs-luts)
	}
	if regs+u.Registers > b.dev.Registers {
		return fmt.Errorf("fpga: %s needs %d registers, only %d free", u.Component, u.Registers, b.dev.Registers-regs)
	}
	if brams+u.BRAMs > b.dev.BRAMs {
		return fmt.Errorf("fpga: %s needs %d BRAMs, only %d free", u.Component, u.BRAMs, b.dev.BRAMs-brams)
	}
	if i, dup := b.byKey[u.Component]; dup {
		old := b.used[i]
		old.LUTs += u.LUTs
		old.Registers += u.Registers
		old.BRAMs += u.BRAMs
		old.PowerW += u.PowerW
		b.used[i] = old
		return nil
	}
	b.byKey[u.Component] = len(b.used)
	b.used = append(b.used, u)
	return nil
}

// MustClaim is Claim that panics; used for configuration-time wiring
// where overflow is a build error.
func (b *Budget) MustClaim(u Usage) {
	if err := b.Claim(u); err != nil {
		panic(err)
	}
}

// Totals returns aggregate usage.
func (b *Budget) Totals() (luts, regs, brams int, powerW float64) {
	for _, u := range b.used {
		luts += u.LUTs
		regs += u.Registers
		brams += u.BRAMs
		powerW += u.PowerW
	}
	return
}

// Components returns claimed usages sorted by component name.
func (b *Budget) Components() []Usage {
	out := append([]Usage(nil), b.used...)
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// UtilizationPct returns the percentage of each resource in use.
func (b *Budget) UtilizationPct() (lutPct, regPct, bramPct float64) {
	luts, regs, brams, _ := b.Totals()
	return 100 * float64(luts) / float64(b.dev.LUTs),
		100 * float64(regs) / float64(b.dev.Registers),
		100 * float64(brams) / float64(b.dev.BRAMs)
}

// ControllersUsage is the HDC Engine base design — PCIe/host interface
// plus NVMe and NIC standard device controllers — matching the paper's
// measured Table IV: 116344 LUTs (38%), 91005 registers (15%),
// 442 BRAMs (43%), 5.57 W.
func ControllersUsage() []Usage {
	return []Usage{
		{Component: "pcie-host-interface", LUTs: 41344, Registers: 32005, BRAMs: 106, PowerW: 1.97, MaxClockMHz: 250},
		{Component: "scoreboard", LUTs: 15000, Registers: 11000, BRAMs: 48, PowerW: 0.60, MaxClockMHz: 250},
		{Component: "nvme-controller", LUTs: 28000, Registers: 22000, BRAMs: 128, PowerW: 1.40, MaxClockMHz: 250},
		{Component: "nic-controller", LUTs: 32000, Registers: 26000, BRAMs: 160, PowerW: 1.60, MaxClockMHz: 250},
	}
}
