package fpga

import (
	"math"
	"testing"
)

func TestControllersMatchTableIV(t *testing.T) {
	b := NewBudget(Virtex7VC707())
	for _, u := range ControllersUsage() {
		b.MustClaim(u)
	}
	luts, regs, brams, power := b.Totals()
	// Table IV: 116344 LUTs, 91005 registers, 442 BRAMs, 5.57 W.
	if luts != 116344 {
		t.Fatalf("LUTs = %d, want 116344", luts)
	}
	if regs != 91005 {
		t.Fatalf("registers = %d, want 91005", regs)
	}
	if brams != 442 {
		t.Fatalf("BRAMs = %d, want 442", brams)
	}
	if math.Abs(power-5.57) > 1e-9 {
		t.Fatalf("power = %.2f W, want 5.57", power)
	}
	lutPct, regPct, bramPct := b.UtilizationPct()
	if int(lutPct+0.5) != 38 || int(regPct+0.5) != 15 || int(bramPct+0.5) != 43 {
		t.Fatalf("utilization = %.0f%%/%.0f%%/%.0f%%, want 38/15/43", lutPct, regPct, bramPct)
	}
}

func TestClaimRejectsOverflow(t *testing.T) {
	b := NewBudget(Device{Name: "tiny", LUTs: 100, Registers: 100, BRAMs: 2})
	if err := b.Claim(Usage{Component: "a", LUTs: 60}); err != nil {
		t.Fatal(err)
	}
	if err := b.Claim(Usage{Component: "b", LUTs: 50}); err == nil {
		t.Fatal("LUT overflow accepted")
	}
	if err := b.Claim(Usage{Component: "c", BRAMs: 3}); err == nil {
		t.Fatal("BRAM overflow accepted")
	}
	if err := b.Claim(Usage{Component: "d", LUTs: -1}); err == nil {
		t.Fatal("negative usage accepted")
	}
}

func TestClaimMergesDuplicateComponents(t *testing.T) {
	b := NewBudget(Device{Name: "d", LUTs: 1000, Registers: 1000, BRAMs: 100})
	b.MustClaim(Usage{Component: "x", LUTs: 100, PowerW: 1})
	b.MustClaim(Usage{Component: "x", LUTs: 50, PowerW: 0.5})
	comps := b.Components()
	if len(comps) != 1 || comps[0].LUTs != 150 || comps[0].PowerW != 1.5 {
		t.Fatalf("components = %+v", comps)
	}
}

func TestEffectiveClockCapped(t *testing.T) {
	if got := (Usage{MaxClockMHz: 400}).EffectiveClockMHz(); got != DesignClockCapMHz {
		t.Fatalf("capped clock = %v", got)
	}
	if got := (Usage{MaxClockMHz: 130}).EffectiveClockMHz(); got != 130 {
		t.Fatalf("clock = %v", got)
	}
	if got := (Usage{}).EffectiveClockMHz(); got != DesignClockCapMHz {
		t.Fatalf("uncharacterized clock = %v", got)
	}
}

func TestMustClaimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := NewBudget(Device{Name: "d", LUTs: 1})
	b.MustClaim(Usage{Component: "big", LUTs: 2})
}
