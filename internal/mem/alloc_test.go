package mem

import "testing"

// The data plane depends on these operations being allocation-free:
// every DMA, NVMe block move, and NIC frame copy goes through them.
// A regression here multiplies across millions of simulated events.

func TestCopySameMapZeroAlloc(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("dram", HostDRAM, 1<<20, true)
	m.Write(r.Base, make([]byte, 4096))
	dst, src := r.Base+(512<<10), r.Base
	if n := testing.AllocsPerRun(100, func() {
		m.Copy(dst, src, 4096)
	}); n != 0 {
		t.Fatalf("Map.Copy (same map) allocates %v per run", n)
	}
}

func TestReadIntoZeroAlloc(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("dram", HostDRAM, 1<<20, true)
	buf := make([]byte, 4096)
	if n := testing.AllocsPerRun(100, func() {
		m.ReadInto(r.Base, buf)
	}); n != 0 {
		t.Fatalf("Map.ReadInto allocates %v per run", n)
	}
}

func TestViewZeroAlloc(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("dram", HostDRAM, 1<<20, true)
	var sink byte
	if n := testing.AllocsPerRun(100, func() {
		v := m.View(r.Base+64, 4096)
		sink += v[0]
	}); n != 0 {
		t.Fatalf("Map.View allocates %v per run", n)
	}
	_ = sink
}

func TestZeroZeroAlloc(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("dram", HostDRAM, 1<<20, true)
	if n := testing.AllocsPerRun(100, func() {
		m.Zero(r.Base, 4096)
	}); n != 0 {
		t.Fatalf("Map.Zero allocates %v per run", n)
	}
}

// Resolve with the one-entry cache must stay allocation-free across
// alternating regions (cache hits and misses both).
func TestResolveZeroAlloc(t *testing.T) {
	m := NewMap()
	a := m.AddRegion("a", HostDRAM, 1<<20, true)
	b := m.AddRegion("b", DeviceDRAM, 1<<20, true)
	if n := testing.AllocsPerRun(100, func() {
		m.MustResolve(a.Base + 100)
		m.MustResolve(b.Base + 200)
	}); n != 0 {
		t.Fatalf("Map.MustResolve allocates %v per run", n)
	}
}
