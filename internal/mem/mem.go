// Package mem models the physical address space of the testbed: host
// DRAM, device BARs (HDC Engine BRAM and on-board DDR3, GPU VRAM), and
// the buffers that live in them. All regions carry real bytes, so the
// data plane is functionally testable end-to-end.
//
// Regions can refuse inbound peer-to-peer traffic. This is how the
// testbed encodes the paper's observation (§V-A) that an NVMe SSD and
// a NIC cannot talk directly: both are DMA masters whose internal
// memory is not exposed on the bus, so software-controlled P2P has no
// target to aim at. The HDC Engine's BRAM/DDR3 *are* exposed, which is
// exactly what makes the DCS-ctrl path possible.
package mem

import (
	"fmt"
	"sort"
)

// Kind classifies a memory region.
type Kind int

// Region kinds.
const (
	HostDRAM       Kind = iota // host main memory
	DeviceBRAM                 // FPGA on-chip block RAM (fast, small)
	DeviceDRAM                 // FPGA on-board DDR3 (1 GB on the VC707)
	GPUVRAM                    // GPU device memory
	DeviceInternal             // device-private memory, not bus-addressable
	MMIO                       // register window (doorbells)
)

func (k Kind) String() string {
	switch k {
	case HostDRAM:
		return "host-dram"
	case DeviceBRAM:
		return "device-bram"
	case DeviceDRAM:
		return "device-dram"
	case GPUVRAM:
		return "gpu-vram"
	case DeviceInternal:
		return "device-internal"
	case MMIO:
		return "mmio"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Addr is a 64-bit physical bus address.
type Addr uint64

// Region is a contiguous span of the physical address space.
type Region struct {
	Name string
	Kind Kind
	Base Addr
	Size uint64

	// P2PTarget reports whether peer devices may DMA into/out of this
	// region. Host DRAM and exposed BARs are targets; device-internal
	// memory (SSD data buffers, NIC FIFOs) is not.
	P2PTarget bool

	data      []byte
	writeHook func(off uint64, n int)
	allocOff  uint64 // bump allocator cursor

	// hiWater bounds the bytes that may be non-zero: every write path
	// (WriteAt, Copy) raises it past the written span, and the region
	// starts zeroed, so [hiWater, Size) is guaranteed zero. Checkpoint
	// save scans only the live prefix and restore only scrubs it —
	// regions are sized like hardware (hundreds of megabytes across a
	// cluster) while live content is typically a few percent. Writes
	// through View bypass the watermark exactly as they bypass the
	// write hook; both are why View is documented read-only.
	hiWater uint64
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool {
	return addr >= r.Base && uint64(addr-r.Base) < r.Size
}

// End returns the first address past the region.
func (r *Region) End() Addr { return r.Base + Addr(r.Size) }

// SetWriteHook installs fn to be called after every write into the
// region with the written offset and length. This is the discrete-
// event analogue of hardware continuously snooping a completion-queue
// phase bit: in RTL the poll is free, here it is an event.
func (r *Region) SetWriteHook(fn func(off uint64, n int)) { r.writeHook = fn }

// HasWriteHook reports whether a write hook is installed. Analytic
// fast paths that would move a write earlier or later than its
// per-frame instant consult this: a hooked region makes the write's
// exact instant observable, so such plans are only legal on hook-free
// regions (DESIGN.md §13).
func (r *Region) HasWriteHook() bool { return r.writeHook != nil }

func (r *Region) check(off uint64, n int) {
	if n < 0 || off+uint64(n) > r.Size {
		panic(fmt.Sprintf("mem: access [%d,%d) outside region %s size %d",
			off, off+uint64(n), r.Name, r.Size))
	}
}

// WriteAt copies p into the region at off and fires the write hook.
func (r *Region) WriteAt(off uint64, p []byte) {
	r.check(off, len(p))
	if end := off + uint64(len(p)); end > r.hiWater {
		r.hiWater = end
	}
	copy(r.data[off:], p)
	if r.writeHook != nil {
		//dcslint:allow noalloc hook bodies are model code vetted by shardsafe; benched paths run hook-free
		//dcslint:allow noblockhandler hooks take no Proc and cannot park; they fire signals and schedule events only
		r.writeHook(off, len(p))
	}
}

// ReadAt copies from the region at off into p.
func (r *Region) ReadAt(off uint64, p []byte) {
	r.check(off, len(p))
	copy(p, r.data[off:])
}

// Bytes returns a read-only view of [off, off+n). The caller must not
// retain it across simulated time.
func (r *Region) Bytes(off uint64, n int) []byte {
	r.check(off, n)
	return r.data[off : off+uint64(n)]
}

// Zero clears [off, off+n) in place without allocating and fires the
// write hook, exactly as writing n zero bytes would.
func (r *Region) Zero(off uint64, n int) {
	r.check(off, n)
	b := r.data[off : off+uint64(n)]
	for i := range b {
		b[i] = 0
	}
	if r.writeHook != nil {
		//dcslint:allow noalloc hook bodies are model code vetted by shardsafe; benched paths run hook-free
		r.writeHook(off, n)
	}
}

// Alloc carves n bytes (aligned) out of the region with a bump
// allocator and returns the bus address. It panics when the region is
// exhausted: the testbed sizes regions up front, as hardware does.
func (r *Region) Alloc(n uint64, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	off := (r.allocOff + align - 1) &^ (align - 1)
	if off+n > r.Size {
		panic(fmt.Sprintf("mem: region %s exhausted (%d + %d > %d)", r.Name, off, n, r.Size))
	}
	r.allocOff = off + n
	return r.Base + Addr(off)
}

// AllocBytes returns the allocated span's free space remaining.
func (r *Region) FreeBytes() uint64 { return r.Size - r.allocOff }

// Map is the global bus address map: it assigns bases to regions and
// resolves addresses back to (region, offset).
type Map struct {
	regions []*Region
	next    Addr

	// last is a one-entry resolution cache in front of the binary
	// search: device models hammer the same region (their own BAR or
	// the host buffer they are streaming through) for long runs, so
	// most Resolve calls hit here. Purely a lookup memo — it never
	// affects results, only the cost of finding them.
	last *Region
}

// NewMap returns an empty address map starting at 4 GiB (leaving the
// low range free, as a real platform does).
func NewMap() *Map { return &Map{next: 4 << 30} }

// AddRegion creates and maps a region of the given size.
func (m *Map) AddRegion(name string, kind Kind, size uint64, p2pTarget bool) *Region {
	r := &Region{
		Name:      name,
		Kind:      kind,
		Base:      m.next,
		Size:      size,
		P2PTarget: p2pTarget,
		data:      make([]byte, size),
	}
	m.regions = append(m.regions, r)
	// Keep a guard gap between regions so off-by-one addressing faults
	// are caught instead of silently landing in a neighbour.
	m.next += Addr(size) + 1<<20
	return r
}

// Resolve returns the region containing addr and the offset within it.
func (m *Map) Resolve(addr Addr) (*Region, uint64, error) {
	if r := m.last; r != nil && r.Contains(addr) {
		return r, uint64(addr - r.Base), nil
	}
	//dcslint:allow noalloc non-escaping search closure, stack-allocated (TestMemAllocFree proves 0 allocs/op)
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].End() > addr
	})
	if i < len(m.regions) && m.regions[i].Contains(addr) {
		m.last = m.regions[i]
		return m.regions[i], uint64(addr - m.regions[i].Base), nil
	}
	return nil, 0, fmt.Errorf("mem: unmapped address %#x", uint64(addr))
}

// MustResolve is Resolve that panics on unmapped addresses (device
// models treat a bad address as a modelling bug, not a runtime error).
//
//dcslint:hotpath
func (m *Map) MustResolve(addr Addr) (*Region, uint64) {
	r, off, err := m.Resolve(addr)
	if err != nil {
		panic(err)
	}
	return r, off
}

// Regions returns all mapped regions in address order. The returned
// slice is the map's own backing store, not a copy: callers must only
// iterate it (audited — internal/report and the tests do exactly
// that) and must not append to, reorder, or mutate it. Returning the
// live slice keeps per-call cost at zero for hot diagnostics.
func (m *Map) Regions() []*Region { return m.regions }

// Write copies p to the absolute address addr.
func (m *Map) Write(addr Addr, p []byte) {
	r, off := m.MustResolve(addr)
	r.WriteAt(off, p)
}

// Read copies n bytes from the absolute address addr into a freshly
// allocated slice. Hot paths should prefer ReadInto (caller-owned
// buffer) or View (no copy at all).
func (m *Map) Read(addr Addr, n int) []byte {
	p := make([]byte, n)
	m.ReadInto(addr, p)
	return p
}

// ReadInto copies len(p) bytes from the absolute address addr into p
// without allocating.
//
//dcslint:hotpath mem_read_into_4k
func (m *Map) ReadInto(addr Addr, p []byte) {
	r, off := m.MustResolve(addr)
	r.ReadAt(off, p)
}

// View returns a slice aliasing the backing store of [addr, addr+n).
// The span must be contiguous, i.e. lie inside one region — region
// spans always are, since regions are separated by guard gaps.
//
// Aliasing rules (see DESIGN.md §11): the view is only valid until
// the underlying buffer is rewritten or simulated time advances —
// callers must either consume it immediately (decode, hash, copy out)
// or take an explicit copy before parking. Writing through a View
// bypasses the region write hook; use Write/WriteAt for stores that
// must be observable.
//
//dcslint:hotpath
func (m *Map) View(addr Addr, n int) []byte {
	r, off := m.MustResolve(addr)
	return r.Bytes(off, n)
}

// Zero clears n bytes at addr in place, firing the write hook as a
// write of n zero bytes would, without allocating a zero buffer.
//
//dcslint:hotpath
func (m *Map) Zero(addr Addr, n int) {
	if n == 0 {
		return
	}
	r, off := m.MustResolve(addr)
	r.Zero(off, n)
}

// Copy moves n bytes from src to dst, preserving write-hook semantics
// at the destination. Both spans live in this map, so the copy runs
// region-to-region with no bounce buffer; Go's copy has memmove
// semantics, so overlapping same-region spans behave exactly as the
// old read-snapshot-then-write implementation did.
//
//dcslint:hotpath mem_copy_same_map_4k
func (m *Map) Copy(dst, src Addr, n int) {
	if n == 0 {
		return
	}
	sr, soff := m.MustResolve(src)
	sr.check(soff, n)
	dr, doff := m.MustResolve(dst)
	dr.check(doff, n)
	if end := doff + uint64(n); end > dr.hiWater {
		dr.hiWater = end
	}
	copy(dr.data[doff:doff+uint64(n)], sr.data[soff:soff+uint64(n)])
	if dr.writeHook != nil {
		//dcslint:allow noalloc hook bodies are model code vetted by shardsafe; benched paths run hook-free
		//dcslint:allow noblockhandler hooks take no Proc and cannot park; they fire signals and schedule events only
		dr.writeHook(doff, n)
	}
}
