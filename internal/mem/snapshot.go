package mem

import (
	"fmt"

	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). A memory map's state is the
// byte content of its regions plus each region's bump-allocator
// cursor. Content is load-bearing everywhere — completion-queue phase
// bits, cumulative status words, ring descriptors, staged payloads are
// all read back through View — so the snapshot captures every region
// as an authoritative sparse page image and the restore overwrites the
// whole region (zero, then apply captured pages). Write hooks are
// deliberately bypassed: a restore is state transplantation, not
// simulated traffic, and must not schedule events.

// SnapSection implements snap.Snapshotter (the section carries no
// node prefix; core registers maps under per-node names via
// snap wrappers — see internal/core/snapshot.go).
func (m *Map) SnapSection() string { return "mem" }

// SnapSave encodes every region: name and size (verified at load),
// allocator cursor, write high-water mark, and sparse data image, in
// address order — the regions slice is append-ordered by
// construction, so the encode order is deterministic without sorting.
// The high-water mark bounds the sparse scan: regions are sized like
// hardware, but only the written prefix can hold non-zero pages.
func (m *Map) SnapSave(w *snap.Writer) error {
	w.U32(uint32(len(m.regions)))
	for _, r := range m.regions {
		w.Str(r.Name)
		w.U64(r.Size)
		w.U64(r.allocOff)
		w.U64(r.hiWater)
		w.Grow(int(r.hiWater) + 64) // upper bound: every live page non-zero
		w.SparseBytesLive(r.data, r.hiWater)
	}
	return nil
}

// SnapLoad overlays the captured images onto a freshly built map of
// the identical configuration: same regions, same order, same sizes.
func (m *Map) SnapLoad(r *snap.Reader) error {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(m.regions) {
		return fmt.Errorf("mem: snapshot has %d regions, map has %d", n, len(m.regions))
	}
	for _, reg := range m.regions {
		name := r.Str()
		size := r.U64()
		off := r.U64()
		hiWater := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if name != reg.Name || size != reg.Size {
			return fmt.Errorf("mem: snapshot region %q/%d, map region %q/%d (configuration mismatch)",
				name, size, reg.Name, reg.Size)
		}
		reg.allocOff = off
		// The destination's own high-water mark bounds the scrub of
		// uncaptured pages; the captured mark then becomes this
		// region's, so a re-snapshot reproduces the source bytes.
		if err := r.LoadSparseBytesDirty(reg.data, reg.hiWater); err != nil {
			return err
		}
		reg.hiWater = hiWater
	}
	return nil
}

// SnapSave encodes the pool's free list in exact order. The list is
// LIFO and order is schedule state: which chunk address a future Get
// returns decides the PRP extents and DMA event shapes downstream.
func (p *ChunkPool) SnapSave(w *snap.Writer) error {
	w.Int(p.total)
	w.Int(p.outMin)
	w.U32(uint32(len(p.free)))
	for _, a := range p.free {
		w.U64(uint64(a))
	}
	return nil
}

// SnapLoad overlays the captured free list.
func (p *ChunkPool) SnapLoad(r *snap.Reader) error {
	total := r.Int()
	outMin := r.Int()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if total != p.total {
		return fmt.Errorf("mem: snapshot pool total %d, pool has %d", total, p.total)
	}
	p.outMin = outMin
	p.free = p.free[:0]
	for i := 0; i < n; i++ {
		p.free = append(p.free, Addr(r.U64()))
	}
	return r.Err()
}
