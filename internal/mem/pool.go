package mem

import "fmt"

// ChunkPool manages fixed-size blocks carved from a region — the
// paper's §IV-C scheme for the HDC Engine's 1 GB on-board DDR3:
// intermediate buffers and packet receive buffers are "chunked into
// multiple fixed-size blocks (64KB)".
type ChunkPool struct {
	region    *Region
	chunkSize uint64
	free      []Addr
	total     int
	outMin    int // low-water mark of free chunks
}

// NewChunkPool carves count chunks of chunkSize bytes from region.
func NewChunkPool(region *Region, chunkSize uint64, count int) *ChunkPool {
	p := &ChunkPool{region: region, chunkSize: chunkSize, total: count}
	for i := 0; i < count; i++ {
		p.free = append(p.free, region.Alloc(chunkSize, chunkSize))
	}
	p.outMin = count
	return p
}

// ChunkSize returns the size of each chunk.
func (p *ChunkPool) ChunkSize() uint64 { return p.chunkSize }

// Free returns the number of available chunks.
func (p *ChunkPool) Free() int { return len(p.free) }

// Total returns the pool size.
func (p *ChunkPool) Total() int { return p.total }

// LowWater returns the minimum number of free chunks ever observed.
func (p *ChunkPool) LowWater() int { return p.outMin }

// Get takes a chunk; ok is false when the pool is empty (callers must
// back-pressure, as the hardware does when DDR3 buffers run out).
func (p *ChunkPool) Get() (Addr, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	a := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	if len(p.free) < p.outMin {
		p.outMin = len(p.free)
	}
	return a, true
}

// Put returns a chunk to the pool.
func (p *ChunkPool) Put(a Addr) {
	if !p.region.Contains(a) {
		panic(fmt.Sprintf("mem: chunk %#x outside pool region %s", uint64(a), p.region.Name))
	}
	if uint64(a-p.region.Base)%p.chunkSize != 0 {
		panic(fmt.Sprintf("mem: misaligned chunk %#x", uint64(a)))
	}
	if len(p.free) >= p.total {
		panic("mem: chunk pool overflow (double free?)")
	}
	p.free = append(p.free, a)
}

// ScatterList is an ordered set of (addr, len) extents describing data
// spread across buffers — NIC receive payloads before gathering, or a
// PRP-style page list.
type ScatterList struct {
	Extents []Extent
}

// Extent is one contiguous span.
type Extent struct {
	Addr Addr
	Len  int
}

// Add appends an extent.
func (s *ScatterList) Add(a Addr, n int) {
	s.Extents = append(s.Extents, Extent{Addr: a, Len: n})
}

// TotalLen returns the summed extent length.
func (s *ScatterList) TotalLen() int {
	t := 0
	for _, e := range s.Extents {
		t += e.Len
	}
	return t
}

// GatherInto copies all extents, in order, to contiguous memory at dst
// and returns the byte count — the "packet gathering" operation the
// HDC Engine performs for NIC-sourced D2D transfers (§IV-C).
func (s *ScatterList) GatherInto(m *Map, dst Addr) int {
	off := 0
	for _, e := range s.Extents {
		m.Copy(dst+Addr(off), e.Addr, e.Len)
		off += e.Len
	}
	return off
}

// ReadAll returns the concatenated bytes of all extents.
func (s *ScatterList) ReadAll(m *Map) []byte {
	out := make([]byte, 0, s.TotalLen())
	for _, e := range s.Extents {
		out = append(out, m.Read(e.Addr, e.Len)...)
	}
	return out
}
