package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRegionReadWrite(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("dram", HostDRAM, 1<<20, true)
	data := []byte("hello device-centric world")
	r.WriteAt(100, data)
	got := make([]byte, len(data))
	r.ReadAt(100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestRegionBoundsPanic(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("small", DeviceBRAM, 16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-bounds write")
		}
	}()
	r.WriteAt(10, make([]byte, 8))
}

func TestWriteHook(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("cq", DeviceBRAM, 4096, true)
	var hookOff uint64
	var hookN int
	calls := 0
	r.SetWriteHook(func(off uint64, n int) { hookOff, hookN, calls = off, n, calls+1 })
	r.WriteAt(64, make([]byte, 16))
	if calls != 1 || hookOff != 64 || hookN != 16 {
		t.Fatalf("hook calls=%d off=%d n=%d", calls, hookOff, hookN)
	}
	r.ReadAt(64, make([]byte, 16))
	if calls != 1 {
		t.Fatal("read fired write hook")
	}
}

func TestMapResolve(t *testing.T) {
	m := NewMap()
	a := m.AddRegion("a", HostDRAM, 4096, true)
	b := m.AddRegion("b", DeviceDRAM, 4096, true)
	r, off, err := m.Resolve(a.Base + 100)
	if err != nil || r != a || off != 100 {
		t.Fatalf("resolve a: %v %v %v", r, off, err)
	}
	r, off, err = m.Resolve(b.Base)
	if err != nil || r != b || off != 0 {
		t.Fatalf("resolve b: %v %v %v", r, off, err)
	}
	if _, _, err := m.Resolve(a.End()); err == nil {
		t.Fatal("guard gap resolved")
	}
	if _, _, err := m.Resolve(0); err == nil {
		t.Fatal("null address resolved")
	}
}

func TestMapCopyAcrossRegions(t *testing.T) {
	m := NewMap()
	a := m.AddRegion("a", HostDRAM, 4096, true)
	b := m.AddRegion("b", GPUVRAM, 4096, true)
	src := []byte("payload bytes travel for real")
	m.Write(a.Base+10, src)
	m.Copy(b.Base+20, a.Base+10, len(src))
	if got := m.Read(b.Base+20, len(src)); !bytes.Equal(got, src) {
		t.Fatalf("copy: %q", got)
	}
}

func TestMapCopyFiresDestHook(t *testing.T) {
	m := NewMap()
	a := m.AddRegion("a", HostDRAM, 4096, true)
	b := m.AddRegion("b", DeviceBRAM, 4096, true)
	fired := false
	b.SetWriteHook(func(off uint64, n int) { fired = true })
	m.Copy(b.Base, a.Base, 8)
	if !fired {
		t.Fatal("copy did not fire destination hook")
	}
}

func TestAlloc(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("bram", DeviceBRAM, 4096, true)
	a1 := r.Alloc(100, 64)
	a2 := r.Alloc(100, 64)
	if uint64(a1-r.Base)%64 != 0 || uint64(a2-r.Base)%64 != 0 {
		t.Fatal("misaligned alloc")
	}
	if a2 <= a1 || uint64(a2-a1) < 100 {
		t.Fatalf("overlapping allocs %#x %#x", uint64(a1), uint64(a2))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exhaustion")
		}
	}()
	r.Alloc(1<<20, 1)
}

func TestChunkPool(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("ddr3", DeviceDRAM, 1<<20, true)
	p := NewChunkPool(r, 64<<10, 16)
	if p.Free() != 16 || p.Total() != 16 {
		t.Fatalf("free=%d total=%d", p.Free(), p.Total())
	}
	seen := map[Addr]bool{}
	var got []Addr
	for i := 0; i < 16; i++ {
		a, ok := p.Get()
		if !ok {
			t.Fatalf("pool dry at %d", i)
		}
		if seen[a] {
			t.Fatalf("duplicate chunk %#x", uint64(a))
		}
		seen[a] = true
		got = append(got, a)
	}
	if _, ok := p.Get(); ok {
		t.Fatal("17th chunk from 16-chunk pool")
	}
	if p.LowWater() != 0 {
		t.Fatalf("low water = %d", p.LowWater())
	}
	for _, a := range got {
		p.Put(a)
	}
	if p.Free() != 16 {
		t.Fatalf("after put-back free=%d", p.Free())
	}
}

func TestChunkPoolBadPutPanics(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("ddr3", DeviceDRAM, 1<<20, true)
	other := m.AddRegion("other", HostDRAM, 1<<20, true)
	p := NewChunkPool(r, 64<<10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on foreign chunk")
		}
	}()
	p.Put(other.Base)
}

func TestChunkPoolMisalignedPutPanics(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("ddr3", DeviceDRAM, 1<<20, true)
	p := NewChunkPool(r, 64<<10, 4)
	a, _ := p.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on misaligned chunk")
		}
	}()
	p.Put(a + 1)
}

func TestScatterGather(t *testing.T) {
	m := NewMap()
	src := m.AddRegion("bufs", DeviceDRAM, 1<<20, true)
	dst := m.AddRegion("gather", DeviceDRAM, 1<<20, true)
	// Three scattered fragments simulating split NIC packets.
	frags := [][]byte{[]byte("first-"), []byte("second-"), []byte("third")}
	var sl ScatterList
	off := uint64(0)
	for _, f := range frags {
		m.Write(src.Base+Addr(off), f)
		sl.Add(src.Base+Addr(off), len(f))
		off += 4096 // scattered, non-contiguous
	}
	n := sl.GatherInto(m, dst.Base)
	want := []byte("first-second-third")
	if n != len(want) {
		t.Fatalf("gathered %d bytes", n)
	}
	if got := m.Read(dst.Base, n); !bytes.Equal(got, want) {
		t.Fatalf("gathered %q", got)
	}
	if got := sl.ReadAll(m); !bytes.Equal(got, want) {
		t.Fatalf("ReadAll %q", got)
	}
	if sl.TotalLen() != len(want) {
		t.Fatalf("TotalLen = %d", sl.TotalLen())
	}
}

// Property: any data written at any offset reads back identically
// (within bounds), across region kinds.
func TestRoundTripProperty(t *testing.T) {
	m := NewMap()
	r := m.AddRegion("r", HostDRAM, 1<<16, true)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := uint64(off) % (r.Size - uint64(len(data)))
		r.WriteAt(o, data)
		got := make([]byte, len(data))
		r.ReadAt(o, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: resolving any address inside any region returns that
// region and the right offset.
func TestResolveProperty(t *testing.T) {
	m := NewMap()
	var regs []*Region
	for i := 0; i < 8; i++ {
		regs = append(regs, m.AddRegion("r", HostDRAM, 1<<14, true))
	}
	f := func(ri uint8, off uint16) bool {
		r := regs[int(ri)%len(regs)]
		o := uint64(off) % r.Size
		got, gotOff, err := m.Resolve(r.Base + Addr(o))
		return err == nil && got == r && gotOff == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
