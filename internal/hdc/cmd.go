// Package hdc implements the paper's contribution: the Hardware-based
// Device-Control mechanism. It contains the HDC Engine (an FPGA device
// on its own PCIe port: command queue and parser, scoreboard, standard
// NVMe and NIC device controllers with queue pairs in on-chip BRAM,
// near-device processing units chained through 64 KB intermediate
// buffers in on-board DDR3, and an interrupt generator), the HDC
// Driver (the thin kernel module that resolves file/connection
// metadata and posts D2D commands), and the HDC Library (the
// sendfile-like user API).
package hdc

import (
	"encoding/binary"
	"fmt"

	"dcsctrl/internal/mem"
)

// ChunkSize is the engine's fixed intermediate-buffer block size
// (§IV-C: DDR3 "chunked into multiple fixed-size blocks (64KB)").
const ChunkSize = 64 << 10

// Device classes addressable by a D2D command operation.
const (
	ClassNone uint8 = 0
	ClassSSD  uint8 = 1
	ClassNIC  uint8 = 2
)

// NDP function identifiers carried in D2D commands.
const (
	FnNone   uint8 = 0
	FnMD5    uint8 = 1
	FnCRC32  uint8 = 2
	FnSHA1   uint8 = 3
	FnSHA256 uint8 = 4
	FnAES256 uint8 = 5
	FnGZIP   uint8 = 6
	FnGUNZIP uint8 = 7
)

// FnName returns the NDP unit name for a function id.
func FnName(fn uint8) string {
	switch fn {
	case FnNone:
		return "none"
	case FnMD5:
		return "md5"
	case FnCRC32:
		return "crc32"
	case FnSHA1:
		return "sha1"
	case FnSHA256:
		return "sha256"
	case FnAES256:
		return "aes256"
	case FnGZIP:
		return "gzip"
	case FnGUNZIP:
		return "gunzip"
	default:
		return fmt.Sprintf("fn(%d)", fn)
	}
}

// Command flags.
const (
	// FlagAuxWriteback requests the NDP digest be DMA'd to AuxAddr.
	FlagAuxWriteback uint8 = 1 << 0
)

// CommandSize is the fixed D2D command size; the 64-entry command
// queue is 4 KB (§IV-C).
const CommandSize = 64

// ExtentEntry is one LBA run in a host-memory extent table the engine
// fetches by DMA — the storage-side addressing of a D2D command.
type ExtentEntry struct {
	LBA    uint64
	Blocks uint32
}

// ExtentEntrySize is the wire size of one extent entry.
const ExtentEntrySize = 16

// EncodeExtents serializes an extent table.
func EncodeExtents(ext []ExtentEntry) []byte {
	out := make([]byte, len(ext)*ExtentEntrySize)
	for i, e := range ext {
		binary.LittleEndian.PutUint64(out[i*ExtentEntrySize:], e.LBA)
		binary.LittleEndian.PutUint32(out[i*ExtentEntrySize+8:], e.Blocks)
	}
	return out
}

// DecodeExtents parses count extent entries.
func DecodeExtents(raw []byte, count int) ([]ExtentEntry, error) {
	if len(raw) < count*ExtentEntrySize {
		return nil, fmt.Errorf("hdc: extent table short: %d bytes for %d entries", len(raw), count)
	}
	out := make([]ExtentEntry, count)
	for i := range out {
		out[i].LBA = binary.LittleEndian.Uint64(raw[i*ExtentEntrySize:])
		out[i].Blocks = binary.LittleEndian.Uint32(raw[i*ExtentEntrySize+8:])
	}
	return out, nil
}

// Command is a decoded D2D command: move Length bytes from the source
// device to the destination device, optionally through NDP function
// Fn. Storage endpoints address data by an extent table in host
// memory; network endpoints by a registered connection ID.
type Command struct {
	ID       uint32
	SrcClass uint8
	DstClass uint8
	Fn       uint8
	Flags    uint8
	SrcArg   uint64 // extent-table bus address (SSD) or connection ID (NIC)
	SrcCount uint32 // extent count (SSD endpoints)
	SrcDev   uint8  // SSD index for ClassSSD sources
	DstArg   uint64
	DstCount uint32
	DstDev   uint8 // SSD index for ClassSSD destinations
	Length   uint64
	AuxAddr  mem.Addr // digest writeback address (FlagAuxWriteback)
	AuxData  uint64   // function argument (e.g. key slot for AES)
}

// Encode serializes the command into its 64-byte wire format.
func (c *Command) Encode() [CommandSize]byte {
	var b [CommandSize]byte
	binary.LittleEndian.PutUint32(b[0:], c.ID)
	b[4] = c.SrcClass
	b[5] = c.DstClass
	b[6] = c.Fn
	b[7] = c.Flags
	binary.LittleEndian.PutUint64(b[8:], c.SrcArg)
	binary.LittleEndian.PutUint32(b[16:], c.SrcCount)
	b[20] = c.SrcDev
	binary.LittleEndian.PutUint64(b[24:], c.DstArg)
	binary.LittleEndian.PutUint32(b[32:], c.DstCount)
	b[36] = c.DstDev
	binary.LittleEndian.PutUint64(b[40:], c.Length)
	binary.LittleEndian.PutUint64(b[48:], uint64(c.AuxAddr))
	binary.LittleEndian.PutUint64(b[56:], c.AuxData)
	return b
}

// DecodeCommand parses a 64-byte D2D command.
func DecodeCommand(raw []byte) (Command, error) {
	if len(raw) < CommandSize {
		return Command{}, fmt.Errorf("hdc: short D2D command (%d bytes)", len(raw))
	}
	return Command{
		ID:       binary.LittleEndian.Uint32(raw[0:]),
		SrcClass: raw[4],
		DstClass: raw[5],
		Fn:       raw[6],
		Flags:    raw[7],
		SrcArg:   binary.LittleEndian.Uint64(raw[8:]),
		SrcCount: binary.LittleEndian.Uint32(raw[16:]),
		SrcDev:   raw[20],
		DstArg:   binary.LittleEndian.Uint64(raw[24:]),
		DstCount: binary.LittleEndian.Uint32(raw[32:]),
		DstDev:   raw[36],
		Length:   binary.LittleEndian.Uint64(raw[40:]),
		AuxAddr:  mem.Addr(binary.LittleEndian.Uint64(raw[48:])),
		AuxData:  binary.LittleEndian.Uint64(raw[56:]),
	}, nil
}

// Validate performs the structural checks the command parser applies
// before admitting a command to the scoreboard.
func (c *Command) Validate() error {
	if c.Length == 0 {
		return fmt.Errorf("hdc: command %d has zero length", c.ID)
	}
	valid := func(cl uint8) bool { return cl == ClassSSD || cl == ClassNIC }
	if !valid(c.SrcClass) || !valid(c.DstClass) {
		return fmt.Errorf("hdc: command %d has invalid classes %d->%d", c.ID, c.SrcClass, c.DstClass)
	}
	if c.Fn > FnGUNZIP {
		return fmt.Errorf("hdc: command %d has unknown NDP function %d", c.ID, c.Fn)
	}
	if c.SrcClass == ClassSSD && c.SrcCount == 0 {
		return fmt.Errorf("hdc: command %d reads SSD without extents", c.ID)
	}
	if c.DstClass == ClassSSD && c.DstCount == 0 {
		return fmt.Errorf("hdc: command %d writes SSD without extents", c.ID)
	}
	return nil
}
