package hdc

import (
	"fmt"
	"sort"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/sim"
)

// nvmeReq asks the NVMe controller to move blocks between flash and
// an engine buffer.
type nvmeReq struct {
	write   bool
	lba     uint64
	blocks  int
	buf     mem.Addr // engine DDR3 address
	done    *sim.Signal
	attempt int // retries already spent on this request
}

// NVMe retry policy of the engine's hardware controller: transient
// media errors are re-issued with exponential backoff; deterministic
// protocol errors still panic (they are model bugs).
const (
	nvmeMaxRetries   = 4
	nvmeRetryBackoff = 5 * sim.Microsecond
)

// NVMeCtrl is the standard NVMe device controller of Figure 7a: a
// queue pair in engine BRAM, hardware logic that builds NVMe commands
// and handles completions, and doorbell writes to the SSD — all
// without host involvement.
type NVMeCtrl struct {
	eng  *Engine
	ring *nvme.Ring
	reqQ *sim.Queue[nvmeReq]
	room *sim.Cond

	// prpPages rotate per submission; the ring's outstanding cap
	// (entries-1) guarantees a page is reused only after its previous
	// command completed.
	prpPages []mem.Addr
	prpNext  int

	// Per-loop scratch and recycled completion callbacks, so the
	// steady-state submit path allocates nothing (DESIGN.md §11).
	pages  []mem.Addr
	batch  []nvmeReq
	cbFree []*nvmeCb

	cmds    int64
	retries int64
}

// nvmeCb is one in-flight command's completion context. fn is the
// record's bound onCpl method, created once per record and reused.
type nvmeCb struct {
	c   *NVMeCtrl
	req nvmeReq
	fn  func(nvme.Completion)
}

func (cb *nvmeCb) onCpl(cpl nvme.Completion) {
	c, req := cb.c, cb.req
	cb.req = nvmeReq{}
	c.cbFree = append(c.cbFree, cb)
	switch {
	case cpl.Status == nvme.StatusSuccess:
		req.done.Fire(nil)
	case nvme.Retryable(cpl.Status) && req.attempt < nvmeMaxRetries:
		// Transient media error: re-enqueue the request after an
		// exponential backoff. The callback runs on the scheduler,
		// so the requeue is deferred rather than slept.
		c.retries++
		retry := req
		retry.attempt++
		c.eng.env.Schedule(nvmeRetryBackoff<<uint(req.attempt), func() {
			c.reqQ.Put(retry)
		})
	default:
		panic(fmt.Sprintf("hdc: nvme status %#x after %d attempts", cpl.Status, req.attempt+1))
	}
}

func (c *NVMeCtrl) getCb() *nvmeCb {
	if k := len(c.cbFree); k > 0 {
		cb := c.cbFree[k-1]
		c.cbFree = c.cbFree[:k-1]
		return cb
	}
	cb := &nvmeCb{c: c}
	cb.fn = cb.onCpl
	return cb
}

func newNVMeCtrl(eng *Engine, ssd *nvme.SSD, qid uint16, entries, idx int) *NVMeCtrl {
	mm := eng.fab.Mem()
	sq := mm.AddRegion(fmt.Sprintf("%s-nvme%d-sq", eng.name, idx), mem.DeviceBRAM, uint64(entries*nvme.CommandSize), true)
	cq := mm.AddRegion(fmt.Sprintf("%s-nvme%d-cq", eng.name, idx), mem.DeviceBRAM, uint64(entries*nvme.CompletionSize), true)
	eng.fab.Attach(eng.port, sq)
	eng.fab.Attach(eng.port, cq)
	sqdb, cqdb := ssd.DoorbellAddrs(qid)
	cfg := nvme.RingConfig{QID: qid, Entries: entries, SQ: sq, CQ: cq, SQDoorbell: sqdb, CQDoorbell: cqdb}
	c := &NVMeCtrl{
		eng:  eng,
		ring: nvme.NewRing(eng.fab, cfg),
		reqQ: sim.NewQueue[nvmeReq](eng.env, eng.name+"-nvme-reqs"),
		room: sim.NewCond(eng.env),
	}
	for i := 0; i < entries; i++ {
		c.prpPages = append(c.prpPages, eng.ddr3.Alloc(256, 64))
	}
	// Completion detection: the SSD DMA-writes CQEs into engine BRAM;
	// the controller's phase-bit snoop is modelled as a write hook.
	cq.SetWriteHook(func(off uint64, n int) {
		if c.ring.ProcessCompletions() > 0 {
			c.room.Broadcast()
		}
	})
	// No MSI: the engine polls its own BRAM (msiVector < 0).
	ssd.CreateQueuePair(cfg, -1)
	eng.env.Spawn(fmt.Sprintf("%s-nvme%d-ctrl", eng.name, idx), c.loop)
	return c
}

// Submit enqueues a request; done fires when the SSD completes it.
func (c *NVMeCtrl) Submit(r nvmeReq) { c.reqQ.Put(r) }

func (c *NVMeCtrl) loop(p *sim.Proc) {
	for {
		// Drain every request queued by this instant into one batch:
		// the build cost is charged in a single sleep and the doorbell
		// rings once per batch instead of once per command.
		batch := append(c.batch[:0], c.reqQ.Get(p))
		for {
			r, ok := c.reqQ.TryGet()
			if !ok {
				break
			}
			batch = append(batch, r)
		}
		c.batch = batch
		for _, r := range batch {
			if r.blocks < 1 || r.blocks > nvme.MaxBlocksPerCmd {
				panic(fmt.Sprintf("hdc: nvme request of %d blocks", r.blocks))
			}
		}
		// Hardware command build: PRPs point straight at DDR3 pages.
		p.Sleep(sim.Time(len(batch)) * c.eng.params.NVMeBuild)
		unrung := 0 // submissions since the last doorbell
		for _, r := range batch {
			for c.ring.Full() {
				// Flush submissions the SSD hasn't been told about
				// before parking, or it would never free a slot.
				if unrung > 0 {
					c.ring.RingDoorbell()
					unrung = 0
				}
				c.room.Wait(p)
			}
			pages := c.pages[:0]
			for i := 0; i < r.blocks; i++ {
				pages = append(pages, r.buf+mem.Addr(i*nvme.BlockSize))
			}
			c.pages = pages
			prpPage := c.prpPages[c.prpNext]
			c.prpNext = (c.prpNext + 1) % len(c.prpPages)
			prp1, prp2, err := nvme.BuildPRPs(c.eng.fab.Mem(), pages, prpPage)
			if err != nil {
				panic(err)
			}
			op := nvme.OpRead
			if r.write {
				op = nvme.OpWrite
			}
			cb := c.getCb()
			cb.req = r
			_, err = c.ring.Submit(nvme.Command{
				Opcode: op, NSID: 1, PRP1: prp1, PRP2: prp2,
				SLBA: r.lba, NLB: uint16(r.blocks - 1),
			}, cb.fn)
			if err != nil {
				panic(err)
			}
			unrung++
			c.cmds++
		}
		if unrung > 0 {
			c.ring.RingDoorbell()
		}
	}
}

// sendReq asks the NIC controller to transmit len bytes from an
// engine buffer on a registered connection.
type sendReq struct {
	connID uint64
	buf    mem.Addr
	length int
	done   *sim.Signal
}

// recvReq asks the NIC controller for the next want bytes of a
// connection's in-order stream, gathered into buf.
type recvReq struct {
	connID uint64
	want   int
	buf    mem.Addr
	done   *sim.Signal
}

// conn is a registered connection's hardware state.
type conn struct {
	id     uint64
	flow   ether.Flow // transmit direction
	txSeq  uint32
	rxSeq  uint32 // next expected receive sequence
	rxBufs []rxExtent
	rxHead int      // next unconsumed rxBufs entry (capacity-preserving)
	rxALen int      // bytes available in rxBufs
	waiter *recvReq // at most one outstanding receive per connection
}

type rxExtent struct {
	addr mem.Addr // payload location in a receive buffer
	n    int
	buf  mem.Addr // owning 2 KB receive buffer (for recycling)
}

// NICCtrl is the standard NIC controller of Figure 7b: send/recv
// rings and a header buffer in BRAM, TCP/IP header generation, packet
// parsing and payload gathering in hardware.
type NICCtrl struct {
	eng *Engine
	dev *nic.NIC
	qid uint16

	send   *nic.SendRing
	recv   *nic.RecvRing
	hdrBuf *mem.Region

	sendQ     *sim.Queue[sendReq]
	recvQ     *sim.Queue[recvReq]
	sendSpace *sim.Cond
	cplKick   *sim.Cond
	pendTx    []pendingSend

	// Reused per-loop scratch (BD chains, restock lists, poll results,
	// header template) — each is touched by exactly one controller
	// process, so a single slice apiece suffices.
	bds        []nic.SendBD
	rbds       []nic.RecvBD
	fills      []nic.Filled
	hdrScratch []byte
	sendBatch  []sendReq

	conns map[uint64]*conn

	// hdrNext rotates through the BRAM header-buffer slots; a field (not
	// a sendLoop local) so a checkpoint restore resumes the rotation at
	// the same slot and header writes stay byte-identical.
	hdrNext int

	sendJobs, recvPkts int64
	gatheredBytes      int64
}

type pendingSend struct {
	tail uint64
	done *sim.Signal
}

func newNICCtrl(eng *Engine, dev *nic.NIC, qid uint16, entries int) *NICCtrl {
	mm := eng.fab.Mem()
	pfx := fmt.Sprintf("%s-nic-q%d", eng.name, qid)
	sring := mm.AddRegion(pfx+"-sring", mem.DeviceBRAM, uint64(entries*nic.SendBDSize), true)
	rring := mm.AddRegion(pfx+"-rring", mem.DeviceBRAM, uint64(entries*nic.RecvBDSize), true)
	rcpl := mm.AddRegion(pfx+"-rcpl", mem.DeviceBRAM, uint64(entries*nic.RecvCplSize), true)
	status := mm.AddRegion(pfx+"-status", mem.DeviceBRAM, 64, true)
	hdrBuf := mm.AddRegion(pfx+"-hdrs", mem.DeviceBRAM, 64<<10, true)
	for _, r := range []*mem.Region{sring, rring, rcpl, status, hdrBuf} {
		eng.fab.Attach(eng.port, r)
	}
	cfg := nic.QueueConfig{
		QID: qid, SendRing: sring, SendEntries: entries,
		SendStatus: status.Base,
		RecvRing:   rring, RecvEntries: entries,
		RecvCpl: rcpl, RecvStatus: status.Base + 8,
		MSIVector:   -1,   // the engine snoops its BRAM, no interrupts
		HeaderSplit: true, // hardware header/data split (§IV-C)
	}
	dev.ConfigureQueue(cfg)
	c := &NICCtrl{
		eng: eng, dev: dev, qid: qid,
		send:      nic.NewSendRing(eng.fab, dev, cfg),
		recv:      nic.NewRecvRing(eng.fab, dev, cfg),
		hdrBuf:    hdrBuf,
		sendQ:     sim.NewQueue[sendReq](eng.env, pfx+"-send"),
		recvQ:     sim.NewQueue[recvReq](eng.env, pfx+"-recv"),
		sendSpace: sim.NewCond(eng.env),
		cplKick:   sim.NewCond(eng.env),
		conns:     map[uint64]*conn{},
	}
	// Status words double as the completion snoop points.
	status.SetWriteHook(func(off uint64, n int) { c.onStatus() })
	eng.env.Spawn(pfx+"-sendctrl", c.sendLoop)
	eng.env.Spawn(pfx+"-recvctrl", c.recvLoop)
	// Keep the NIC stocked with receive buffers from DDR3.
	c.restockRecvBuffers()
	return c
}

// RegisterConnection installs a connection's flow state and steers its
// inbound packets to the engine's dedicated queue.
func (c *NICCtrl) RegisterConnection(id uint64, flow ether.Flow, txSeq, rxSeq uint32) {
	if _, dup := c.conns[id]; dup {
		panic(fmt.Sprintf("hdc: connection %d already registered", id))
	}
	c.conns[id] = &conn{id: id, flow: flow, txSeq: txSeq, rxSeq: rxSeq}
	c.dev.SetSteering(flow.Reverse().Tuple(), c.qid)
}

// Conn returns a registered connection's state (diagnostics).
func (c *NICCtrl) Conn(id uint64) (ether.Flow, uint32, uint32, bool) {
	cn, ok := c.conns[id]
	if !ok {
		return ether.Flow{}, 0, 0, false
	}
	return cn.flow, cn.txSeq, cn.rxSeq, true
}

// DrainConn removes a connection from the controller and returns its
// flow state plus any buffered in-order payload bytes. This is the
// fail-over path: after an engine hard failure the driver salvages
// connection state and DDR3-buffered receive data (DDR3 is a P2P-
// readable BAR) so the host network stack can take the connection
// over without losing stream bytes. Frames arriving after the drain
// find no registered connection and are recycled; the caller must
// re-steer the flow to a host queue first.
func (c *NICCtrl) DrainConn(id uint64) (flow ether.Flow, txSeq, rxSeq uint32, buffered []byte, ok bool) {
	cn, ok := c.conns[id]
	if !ok {
		return ether.Flow{}, 0, 0, nil, false
	}
	mm := c.eng.fab.Mem()
	for _, ext := range cn.rxBufs[cn.rxHead:] {
		buffered = append(buffered, mm.View(ext.addr, ext.n)...)
		c.eng.recvPool.Put(ext.buf)
	}
	delete(c.conns, id)
	return cn.flow, cn.txSeq, cn.rxSeq, buffered, true
}

func (c *NICCtrl) onStatus() {
	// Send completions: fire every pending send at or below the
	// cumulative counter.
	completed := c.send.Completed()
	n := 0
	for _, ps := range c.pendTx {
		if ps.tail > completed {
			break
		}
		ps.done.Fire(nil)
		n++
	}
	// Compact in place so the slice's capacity is reused forever
	// instead of resliced away.
	c.pendTx = append(c.pendTx[:0], c.pendTx[n:]...)
	c.sendSpace.Broadcast()
	// Receive completions: wake the receive controller.
	c.cplKick.Broadcast()
}

// sendLoop implements hardware transmit: header generation into the
// BRAM header buffer, BD chain construction, doorbell.
func (c *NICCtrl) sendLoop(p *sim.Proc) {
	hdrSlots := int(c.hdrBuf.Size / 64)
	for {
		// Drain every send queued by this instant into one batch: the
		// header-generation cost is charged in a single sleep and the
		// doorbell rings once per batch instead of once per job.
		batch := append(c.sendBatch[:0], c.sendQ.Get(p))
		for {
			r, ok := c.sendQ.TryGet()
			if !ok {
				break
			}
			batch = append(batch, r)
		}
		c.sendBatch = batch
		// Generate the TCP/IP header templates in hardware.
		p.Sleep(sim.Time(len(batch)) * c.eng.params.NICHeaderGen)
		unrung := 0 // chains pushed since the last doorbell
		for _, r := range batch {
			cn, ok := c.conns[r.connID]
			if !ok {
				panic(fmt.Sprintf("hdc: send on unknown connection %d", r.connID))
			}
			hdr := ether.HeaderTemplateTo(c.hdrScratch, cn.flow, cn.txSeq, ether.FlagACK|ether.FlagPSH)
			c.hdrScratch = hdr
			slotAddr := c.hdrBuf.Base + mem.Addr(c.hdrNext*64)
			c.hdrNext = (c.hdrNext + 1) % hdrSlots
			c.eng.fab.Mem().Write(slotAddr, hdr)
			cn.txSeq += uint32(r.length)

			// Build the BD chain: header from BRAM, payload from DDR3 in
			// ≤32 KB fragments (16-bit BD lengths).
			bds := append(c.bds[:0], nic.SendBD{Addr: slotAddr, Len: uint16(len(hdr)), Flags: nic.SendFlagLSO, MSS: ether.MSS})
			const frag = 32 << 10
			for off := 0; off < r.length; off += frag {
				n := r.length - off
				if n > frag {
					n = frag
				}
				bds = append(bds, nic.SendBD{Addr: r.buf + mem.Addr(off), Len: uint16(n)})
			}
			bds[len(bds)-1].Flags |= nic.SendFlagEnd
			for c.send.FreeSlots() < len(bds) {
				// Flush chains the NIC hasn't been told about before
				// parking, or it would never free a slot.
				if unrung > 0 {
					c.send.RingDoorbell()
					unrung = 0
				}
				c.sendSpace.Wait(p)
			}
			if err := c.send.Push(bds); err != nil {
				panic(err)
			}
			c.bds = bds
			c.pendTx = append(c.pendTx, pendingSend{tail: c.send.Tail(), done: r.done})
			unrung++
			c.sendJobs++
		}
		if unrung > 0 {
			c.send.RingDoorbell()
		}
	}
}

// SubmitSend queues a transmit request.
func (c *NICCtrl) SubmitSend(r sendReq) { c.sendQ.Put(r) }

// SubmitRecv queues a receive request and wakes the controller.
func (c *NICCtrl) SubmitRecv(r recvReq) {
	c.recvQ.Put(r)
	c.cplKick.Broadcast()
}

// restockRecvBuffers posts 2 KB DDR3 buffers until the ring is full.
func (c *NICCtrl) restockRecvBuffers() {
	bds := c.rbds[:0]
	for c.recv.Unconsumed()+len(bds) < c.eng.params.NICEntries-1 {
		buf, ok := c.eng.recvPool.Get()
		if !ok {
			break
		}
		bds = append(bds, nic.RecvBD{Addr: buf, Len: uint32(c.eng.recvPool.ChunkSize())})
	}
	if len(bds) > 0 {
		if err := c.recv.Post(bds); err != nil {
			panic(err)
		}
		c.recv.RingDoorbell()
	}
	c.rbds = bds
}

// recvLoop implements hardware receive: packet header parsing, flow
// identification, payload bookkeeping, and gather into contiguous
// chunks — the NIC-specific intermediate processing of §IV-C.
func (c *NICCtrl) recvLoop(p *sim.Proc) {
	mm := c.eng.fab.Mem()
	for {
		// Adopt newly submitted receive requests; buffered bytes may
		// already satisfy them.
		for c.recvQ.Len() > 0 {
			r, _ := c.recvQ.TryGet()
			cn := c.conns[r.connID]
			if cn == nil {
				panic(fmt.Sprintf("hdc: recv on unknown connection %d", r.connID))
			}
			if cn.waiter != nil {
				panic(fmt.Sprintf("hdc: two receive requests on connection %d", r.connID))
			}
			rr := r
			cn.waiter = &rr
			c.tryGather(p, cn)
		}
		c.fills = c.recv.AppendPoll(c.fills[:0])
		fills := c.fills
		if len(fills) == 0 {
			c.cplKick.Wait(p)
			continue
		}
		for _, f := range fills {
			p.Sleep(c.eng.params.RecvParse)
			hdr := mm.View(f.Addr, int(f.Cpl.HdrLen))
			seg, err := ether.ParseHeaders(hdr)
			if err != nil {
				panic(fmt.Sprintf("hdc: unparsable received header: %v", err))
			}
			cn := c.lookupByTuple(seg.Flow.Tuple())
			if cn == nil {
				// Not ours: recycle the buffer and move on.
				c.eng.recvPool.Put(f.Addr)
				continue
			}
			if seg.Seq != cn.rxSeq {
				panic(fmt.Sprintf("hdc: out-of-order segment on conn %d: seq %d want %d", cn.id, seg.Seq, cn.rxSeq))
			}
			cn.rxSeq += uint32(f.Cpl.PayLen)
			if f.Cpl.PayLen > 0 {
				if cn.rxHead == len(cn.rxBufs) {
					// Fully drained: rewind so the backing array is reused.
					cn.rxBufs = cn.rxBufs[:0]
					cn.rxHead = 0
				}
				cn.rxBufs = append(cn.rxBufs, rxExtent{addr: f.Addr + nic.HdrOff, n: int(f.Cpl.PayLen), buf: f.Addr})
				cn.rxALen += int(f.Cpl.PayLen)
			} else {
				c.eng.recvPool.Put(f.Addr)
			}
			c.recvPkts++
			c.tryGather(p, cn)
		}
		c.restockRecvBuffers()
	}
}

func (c *NICCtrl) lookupByTuple(t ether.Tuple) *conn {
	for _, cn := range c.conns {
		if cn.flow.Reverse().Tuple() == t {
			return cn
		}
	}
	return nil
}

// DebugState prints receive-side state (diagnostics).
func (c *NICCtrl) DebugState() string {
	out := fmt.Sprintf("recvPkts=%d gathered=%d sendJobs=%d pool(free=%d low=%d) recvQ=%d pendTx=%d",
		c.recvPkts, c.gatheredBytes, c.sendJobs, c.eng.recvPool.Free(), c.eng.recvPool.LowWater(), c.recvQ.Len(), len(c.pendTx))
	ids := make([]uint64, 0, len(c.conns))
	for id := range c.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cn := c.conns[id]
		w := -1
		if cn.waiter != nil {
			w = cn.waiter.want
		}
		out += fmt.Sprintf("\n  conn %d: rxSeq=%d avail=%d waiterWant=%d txSeq=%d", id, cn.rxSeq, cn.rxALen, w, cn.txSeq)
	}
	return out
}

// tryGather satisfies the connection's pending receive request when
// enough in-order bytes have accumulated: the packet-gather hardware
// copies scattered payloads into the contiguous destination chunk.
func (c *NICCtrl) tryGather(p *sim.Proc, cn *conn) {
	r := cn.waiter
	if r == nil || cn.rxALen < r.want {
		return
	}
	mm := c.eng.fab.Mem()
	remaining := r.want
	off := 0
	for remaining > 0 {
		ext := cn.rxBufs[cn.rxHead]
		take := ext.n
		if take > remaining {
			take = remaining
		}
		mm.Copy(r.buf+mem.Addr(off), ext.addr, take)
		off += take
		remaining -= take
		if take == ext.n {
			cn.rxHead++
			c.eng.recvPool.Put(ext.buf)
		} else {
			cn.rxBufs[cn.rxHead].addr += mem.Addr(take)
			cn.rxBufs[cn.rxHead].n -= take
		}
	}
	cn.rxALen -= r.want
	// Gather engine time: DDR3-internal copy bandwidth.
	p.Sleep(sim.BpsToTime(r.want, c.eng.params.GatherBps))
	c.gatheredBytes += int64(r.want)
	cn.waiter = nil
	c.restockRecvBuffers()
	r.done.Fire(r.want)
}
