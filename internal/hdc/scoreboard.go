package hdc

import (
	"fmt"

	"dcsctrl/internal/sim"
)

// EntryState is a scoreboard entry's lifecycle state (Figure 6).
type EntryState int

// Scoreboard entry states: wait (dependencies outstanding), ready
// (issuable), issue (at a device controller), done.
const (
	StateWait EntryState = iota
	StateReady
	StateIssue
	StateDone
)

func (s EntryState) String() string {
	switch s {
	case StateWait:
		return "wait"
	case StateReady:
		return "ready"
	case StateIssue:
		return "issue"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Entry is one device command tracked by the scoreboard: which device
// it targets, read/write direction, source and destination addresses,
// auxiliary data, and state — the fields of Figure 6.
type Entry struct {
	CmdID uint32 // owning D2D command
	Seq   int    // chunk sequence within the command
	Dev   string // "nvme", "nic", "ndp"
	RW    byte   // 'R' or 'W'
	Src   uint64
	Dst   uint64
	Aux   uint64
	State EntryState

	deps []*Entry
	sb   *Scoreboard
}

// DepsDone reports whether every dependency has completed.
func (e *Entry) DepsDone() bool {
	for _, d := range e.deps {
		if d.State != StateDone {
			return false
		}
	}
	return true
}

// Scoreboard tracks all in-flight device commands for user-requested
// multi-device tasks. Capacity is bounded (hardware entries); Alloc
// blocks when full, back-pressuring the command parser.
type Scoreboard struct {
	env      *sim.Env
	cap      int
	live     int
	opCost   sim.Time // per state transition (FPGA cycles)
	freeCond *sim.Cond
	issued   int64
	done     int64
	maxLive  int

	// Batched retirement: DeferDone parks finished entries here and the
	// retire stage completes every same-instant batch in one pass (one
	// sleep covering the batch's op costs, one broadcast).
	pendDone []*Entry
	doneKick *sim.Cond
}

// NewScoreboard returns a scoreboard with the given entry capacity and
// per-operation cost.
func NewScoreboard(env *sim.Env, capacity int, opCost sim.Time) *Scoreboard {
	if capacity < 1 {
		panic("hdc: scoreboard capacity")
	}
	s := &Scoreboard{env: env, cap: capacity, opCost: opCost,
		freeCond: sim.NewCond(env), doneKick: sim.NewCond(env)}
	env.Spawn("sb-retire", s.retireLoop)
	return s
}

// OpCost returns the per-transition cost (charged by the caller's
// process to keep timing attribution at the call site).
func (s *Scoreboard) OpCost() sim.Time { return s.opCost }

// Live returns the number of allocated, not-yet-retired entries.
func (s *Scoreboard) Live() int { return s.live }

// MaxLive returns the high-water mark of live entries.
func (s *Scoreboard) MaxLive() int { return s.maxLive }

// Stats returns issued and completed device-command counts.
func (s *Scoreboard) Stats() (issued, done int64) { return s.issued, s.done }

// Alloc creates an entry in StateWait, blocking while the scoreboard
// is full. deps are the entries that must complete before this one
// may issue.
func (s *Scoreboard) Alloc(p *sim.Proc, cmdID uint32, seq int, dev string, rw byte, deps ...*Entry) *Entry {
	for s.live >= s.cap {
		s.freeCond.Wait(p)
	}
	p.Sleep(s.opCost)
	s.live++
	if s.live > s.maxLive {
		s.maxLive = s.live
	}
	return &Entry{CmdID: cmdID, Seq: seq, Dev: dev, RW: rw, State: StateWait, deps: deps, sb: s}
}

// MarkReady transitions wait->ready once the owner has filled in the
// addressing fields.
func (e *Entry) MarkReady(p *sim.Proc) {
	if e.State != StateWait {
		panic(fmt.Sprintf("hdc: MarkReady from %v", e.State))
	}
	p.Sleep(e.sb.opCost)
	e.State = StateReady
}

// Issue transitions ready->issue; the scoreboard refuses when
// dependencies are outstanding (the "conflict" case of §III-B).
func (e *Entry) Issue(p *sim.Proc) error {
	if e.State != StateReady {
		return fmt.Errorf("hdc: issue from %v", e.State)
	}
	if !e.DepsDone() {
		return fmt.Errorf("hdc: issue of %s[%d.%d] with incomplete dependencies", e.Dev, e.CmdID, e.Seq)
	}
	p.Sleep(e.sb.opCost)
	e.State = StateIssue
	e.sb.issued++
	return nil
}

// WaitDeps blocks until all dependencies are done, then issues. This
// is the scheduler's delay-until-ready behaviour; completion of any
// entry broadcasts the scoreboard condition.
func (e *Entry) WaitDeps(p *sim.Proc) {
	for !e.DepsDone() {
		e.sb.freeCond.Wait(p)
	}
	if err := e.Issue(p); err != nil {
		panic(err)
	}
}

// Done retires the entry, freeing its slot and waking waiters.
func (e *Entry) Done(p *sim.Proc) {
	if e.State != StateIssue {
		panic(fmt.Sprintf("hdc: Done from %v", e.State))
	}
	p.Sleep(e.sb.opCost)
	e.State = StateDone
	e.sb.live--
	e.sb.done++
	e.sb.freeCond.Broadcast()
}

// AllocIssue allocates an entry and drives it wait→ready→issue in one
// batched transition for the dependency-free common case: all three op
// costs are charged in a single sleep instead of three separate parked
// events. Blocks while the scoreboard is full, like Alloc. Not a
// noalloc root: it returns a freshly allocated Entry by design.
func (s *Scoreboard) AllocIssue(p *sim.Proc, cmdID uint32, seq int, dev string, rw byte) *Entry {
	for s.live >= s.cap {
		s.freeCond.Wait(p)
	}
	p.Sleep(3 * s.opCost)
	s.live++
	if s.live > s.maxLive {
		s.maxLive = s.live
	}
	s.issued++
	return &Entry{CmdID: cmdID, Seq: seq, Dev: dev, RW: rw, State: StateIssue, sb: s}
}

// DeferDone hands a finished entry to the scoreboard's retire stage
// without blocking the caller; retirement cost is charged there, in
// same-instant batches.
//
//dcslint:hotpath
func (s *Scoreboard) DeferDone(e *Entry) {
	if e.State != StateIssue {
		panic(fmt.Sprintf("hdc: DeferDone from %v", e.State))
	}
	//dcslint:allow noalloc pendDone keeps its capacity across batches; steady state is 0 allocs/op (BENCH_dataplane hdc_gather)
	s.pendDone = append(s.pendDone, e)
	s.doneKick.Broadcast()
}

// retireLoop batch-completes scoreboard entries: every entry finishing
// at one instant retires under a single sleep covering the batch's op
// costs, followed by one broadcast to capacity/dependency waiters.
func (s *Scoreboard) retireLoop(p *sim.Proc) {
	for {
		for len(s.pendDone) == 0 {
			s.doneKick.Wait(p)
		}
		p.Yield() // gather every entry retiring at this instant
		k := len(s.pendDone)
		p.Sleep(sim.Time(k) * s.opCost)
		for _, e := range s.pendDone[:k] {
			e.State = StateDone
			s.live--
			s.done++
		}
		n := copy(s.pendDone, s.pendDone[k:])
		s.pendDone = s.pendDone[:n]
		s.freeCond.Broadcast()
	}
}
