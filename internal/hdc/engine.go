package hdc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/fpga"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/ndp"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// Completion statuses the engine writes to the host completion ring.
// Transient means the command was rejected before any data moved —
// the driver may re-issue it idempotently.
const (
	CplStatusOK        uint32 = 0
	CplStatusInvalid   uint32 = 1
	CplStatusTransient uint32 = 2
)

// engineStallDelay is the injected transient parser hang — long
// enough to show up in latency, far below any sane driver timeout.
const engineStallDelay = 50 * sim.Microsecond

// Params are the HDC Engine's hardware timing and sizing parameters
// (FPGA logic at 250 MHz; DDR3-1600 on-board memory).
type Params struct {
	CmdParse       sim.Time // command parser per D2D command
	ScoreboardOp   sim.Time // per scoreboard state transition
	NVMeBuild      sim.Time // NVMe controller command build
	NICHeaderGen   sim.Time // NIC controller header generation
	RecvParse      sim.Time // per received packet, hardware parse
	CompletionPost sim.Time // interrupt generator per completion
	GatherBps      float64  // DDR3-internal gather bandwidth
	NDPTargetBps   float64  // provisioning target for NDP banks

	CmdQueueEntries   int // host-interface command queue (64, §IV-C)
	ScoreboardEntries int
	NVMeEntries       int // NVMe queue pair depth in BRAM
	NICEntries        int // NIC ring depth in BRAM
	Window            int // in-flight chunks per D2D command

	DDR3Bytes  uint64 // modelled slice of the 1 GB on-board DRAM
	ChunkCount int    // 64 KB intermediate buffers
	RecvBufs   int    // 2 KB packet receive buffers

	// Faults injects engine stalls, poisoned completion entries, and
	// hard engine failure; nil disables injection.
	Faults *fault.Injector
}

// DefaultParams return the prototype's configuration.
func DefaultParams() Params {
	return Params{
		CmdParse:       200 * sim.Nanosecond,
		ScoreboardOp:   60 * sim.Nanosecond,
		NVMeBuild:      200 * sim.Nanosecond,
		NICHeaderGen:   300 * sim.Nanosecond,
		RecvParse:      100 * sim.Nanosecond,
		CompletionPost: 200 * sim.Nanosecond,
		GatherBps:      51.2e9,
		NDPTargetBps:   ndp.TargetBps,

		CmdQueueEntries:   64,
		ScoreboardEntries: 128,
		NVMeEntries:       64,
		NICEntries:        512,
		Window:            4,

		DDR3Bytes:  96 << 20,
		ChunkCount: 512,
		RecvBufs:   8192,
	}
}

// HostConfig is the host-facing completion path: a completion ring in
// host DRAM plus the MSI vector the interrupt generator uses.
type HostConfig struct {
	CplRing    *mem.Region // host DRAM: CplEntrySize × CmdQueueEntries
	CplStatus  mem.Addr    // 8-byte cumulative completion counter
	HeadMirror mem.Addr    // 8-byte cumulative consumed-command counter
	MSIVector  int
}

// CplEntrySize is the completion-ring entry size: id(4) status(4)
// auxLen(4) valid(1) pad(3) aux(16). The valid byte carries the
// producer's phase; the driver clears it after consuming, so no
// separate status-counter DMA is needed.
const CplEntrySize = 32

// cmdResult is an executed command's outcome.
type cmdResult struct {
	id     uint32
	status uint32
	aux    []byte
}

// Engine is the HDC Engine device: Figure 5's FPGA board.
type Engine struct {
	name   string
	env    *sim.Env
	fab    *pcie.Fabric
	params Params
	port   *pcie.Port
	budget *fpga.Budget

	// Host interface: 64-entry command queue + tail doorbell in BRAM.
	cmdq       *mem.Region
	cmdHead    uint64
	cmdTail    uint64 // doorbell value
	cmdKick    *sim.Cond
	kickQueued bool   // a parser kick is already chained at this instant
	kickFn     func() // bound once; clears kickQueued and broadcasts cmdKick

	// On-board DDR3: intermediate chunks and packet receive buffers.
	ddr3      *mem.Region
	chunks    *mem.ChunkPool
	recvPool  *mem.ChunkPool
	chunkCond *sim.Cond
	prpList   mem.Addr // scratch page for PRP lists

	sb        *Scoreboard
	nvmeCtls  []*NVMeCtrl
	nicCtls   []*NICCtrl
	connOwner map[uint64]*NICCtrl
	nextNICRR int
	aesKeys   map[uint64]ndp.Streamer // AES key slots (AuxData selects)
	banks     map[uint8]*ndp.Bank
	streamer  map[uint8]ndp.Streamer

	host      HostConfig
	hostSet   bool
	submitted []uint32             // submission order, for in-order completion
	finished  map[uint32]cmdResult // results awaiting their turn
	cplCount  uint64
	cplCond   *sim.Cond
	cplBuf    mem.Addr     // completer staging (one full ring's worth)
	cplExts   []mem.Extent // completer scratch (≤2 wrap-aware extents)
	mirrorBuf mem.Addr     // head-mirror staging
	extBufs   []mem.Addr   // per-command-slot extent staging

	cmdsDone int64
	dead     bool // parser suffered a hard failure; no command makes progress

	tracing bool
	traces  map[uint32]*CmdTrace
}

// CmdTrace stamps one command's milestones (for latency-decomposition
// reporting, Figure 11's DCS-ctrl bar).
type CmdTrace struct {
	Posted  sim.Time // parser admitted the command
	SrcDone sim.Time // first source chunk completed (≈ media read time)
	Done    sim.Time // all destination operations completed
}

// NewEngine creates the engine, claims the base design's FPGA
// resources, and starts the parser and completer processes. Attach
// devices with AttachSSD/AttachNIC, NDP units with AddNDP, and the
// host with ConfigureHost before submitting commands.
func NewEngine(env *sim.Env, fab *pcie.Fabric, name string, params Params) *Engine {
	e := &Engine{
		name:      name,
		env:       env,
		fab:       fab,
		params:    params,
		budget:    fpga.NewBudget(fpga.Virtex7VC707()),
		cmdKick:   sim.NewCond(env),
		banks:     map[uint8]*ndp.Bank{},
		streamer:  map[uint8]ndp.Streamer{},
		finished:  map[uint32]cmdResult{},
		cplCond:   sim.NewCond(env),
		connOwner: map[uint64]*NICCtrl{},
		aesKeys:   map[uint64]ndp.Streamer{},
	}
	for _, u := range fpga.ControllersUsage() {
		e.budget.MustClaim(u)
	}
	e.port = fab.AddPort(name)
	mm := fab.Mem()
	e.cmdq = mm.AddRegion(name+"-cmdq", mem.DeviceBRAM,
		uint64(params.CmdQueueEntries*CommandSize)+8, true)
	fab.Attach(e.port, e.cmdq)
	e.cmdq.SetWriteHook(e.onCmdqWrite)

	e.ddr3 = mm.AddRegion(name+"-ddr3", mem.DeviceDRAM, params.DDR3Bytes, true)
	fab.Attach(e.port, e.ddr3)
	e.chunks = mem.NewChunkPool(e.ddr3, ChunkSize, params.ChunkCount)
	e.recvPool = mem.NewChunkPool(e.ddr3, 2048, params.RecvBufs)
	e.chunkCond = sim.NewCond(env)
	e.prpList = e.ddr3.Alloc(4096, 4096)
	e.cplBuf = e.ddr3.Alloc(uint64(params.CmdQueueEntries*CplEntrySize), 64)
	e.cplExts = make([]mem.Extent, 0, 2)
	e.mirrorBuf = e.ddr3.Alloc(8, 8)
	for i := 0; i < params.CmdQueueEntries; i++ {
		e.extBufs = append(e.extBufs, e.ddr3.Alloc(4096, 64))
	}

	e.traces = map[uint32]*CmdTrace{}
	e.kickFn = func() {
		e.kickQueued = false
		e.cmdKick.Broadcast()
	}
	e.sb = NewScoreboard(env, params.ScoreboardEntries, params.ScoreboardOp)
	env.Spawn(name+"-parser", e.parserLoop)
	env.Spawn(name+"-completer", e.completerLoop)
	return e
}

// Budget returns the engine's FPGA resource budget (Table IV).
func (e *Engine) Budget() *fpga.Budget { return e.budget }

// Scoreboard returns the engine's scoreboard (diagnostics).
func (e *Engine) Scoreboard() *Scoreboard { return e.sb }

// Port returns the engine's fabric port.
func (e *Engine) Port() *pcie.Port { return e.port }

// DDR3 returns the on-board memory region.
func (e *Engine) DDR3() *mem.Region { return e.ddr3 }

// CommandsDone returns the number of completed D2D commands.
func (e *Engine) CommandsDone() int64 { return e.cmdsDone }

// AttachSSD creates an NVMe standard device controller with its queue
// pair in engine BRAM (Figure 7a) and returns the device index D2D
// commands use to address it. The flexibility story of §III-C:
// attaching another off-the-shelf SSD is one more controller instance.
func (e *Engine) AttachSSD(ssd *nvme.SSD, qid uint16) uint8 {
	idx := len(e.nvmeCtls)
	if idx > 255 {
		panic("hdc: too many SSDs")
	}
	e.nvmeCtls = append(e.nvmeCtls, newNVMeCtrl(e, ssd, qid, e.params.NVMeEntries, idx))
	return uint8(idx)
}

// SSDCount returns the number of attached SSDs.
func (e *Engine) SSDCount() int { return len(e.nvmeCtls) }

// AttachNIC creates NIC standard device controllers with dedicated
// rings in engine BRAM (Figure 7b), one per queue id. A 10-GbE
// deployment needs one queue pair; provisioning for 40 GbE means
// several, with connections spread across them.
func (e *Engine) AttachNIC(dev *nic.NIC, qids ...uint16) {
	if len(e.nicCtls) > 0 {
		panic("hdc: NIC already attached")
	}
	if len(qids) == 0 {
		panic("hdc: AttachNIC needs at least one queue id")
	}
	for _, qid := range qids {
		e.nicCtls = append(e.nicCtls, newNICCtrl(e, dev, qid, e.params.NICEntries))
	}
}

// NIC returns the first NIC controller (diagnostics/compatibility).
func (e *Engine) NIC() *NICCtrl { return e.nicCtls[0] }

// ctrlFor returns the NIC controller owning a connection.
func (e *Engine) ctrlFor(connID uint64) *NICCtrl {
	c, ok := e.connOwner[connID]
	if !ok {
		panic(fmt.Sprintf("hdc: connection %d not registered", connID))
	}
	return c
}

// AddNDP provisions a bank of the unit sized for the engine's target
// line rate, claiming FPGA resources.
func (e *Engine) AddNDP(fn uint8, unit ndp.Streamer) error {
	if _, dup := e.banks[fn]; dup {
		return fmt.Errorf("hdc: NDP fn %s already provisioned", FnName(fn))
	}
	bank, err := ndp.NewBank(e.env, e.budget, unit, e.params.NDPTargetBps)
	if err != nil {
		return err
	}
	e.banks[fn] = bank
	e.streamer[fn] = unit
	return nil
}

// ProvisionAESKey installs an AES-256 key in a key slot; D2D commands
// select it through AuxData. Keys live in unit registers, so no extra
// fabric is claimed beyond the aes256 bank itself.
func (e *Engine) ProvisionAESKey(slot uint64, key [32]byte) {
	e.aesKeys[slot] = &ndp.AES256{Key: key}
}

// Bank returns the provisioned bank for an NDP function.
func (e *Engine) Bank(fn uint8) (*ndp.Bank, bool) {
	b, ok := e.banks[fn]
	return b, ok
}

// ConfigureHost installs the host completion path and starts the
// interrupt generator.
func (e *Engine) ConfigureHost(cfg HostConfig) {
	if e.hostSet {
		panic("hdc: host already configured")
	}
	if cfg.CplRing.Size < uint64(e.params.CmdQueueEntries*CplEntrySize) {
		panic("hdc: completion ring too small")
	}
	e.host = cfg
	e.hostSet = true
}

// CmdSlotAddr returns the bus address of command-queue slot i — the
// driver writes D2D commands here by MMIO.
func (e *Engine) CmdSlotAddr(i int) mem.Addr {
	return e.cmdq.Base + mem.Addr(i*CommandSize)
}

// TailDoorbell returns the command-queue tail doorbell address.
func (e *Engine) TailDoorbell() mem.Addr {
	return e.cmdq.Base + mem.Addr(e.params.CmdQueueEntries*CommandSize)
}

func (e *Engine) onCmdqWrite(off uint64, n int) {
	if off == uint64(e.params.CmdQueueEntries*CommandSize) {
		e.cmdTail = binary.LittleEndian.Uint64(e.cmdq.Bytes(off, 8))
		// Chain the parser kick so several doorbell writes landing at one
		// instant wake the parser once, after the last write is visible.
		if !e.kickQueued {
			e.kickQueued = true
			e.env.Chain(e.kickFn)
		}
	}
}

// Failed reports whether the engine suffered an injected hard
// failure: the parser stopped and queued commands never complete.
func (e *Engine) Failed() bool { return e.dead }

// parserLoop is the command parser of §IV-C: it decodes queued D2D
// commands in order and admits them to the scoreboard pipeline.
//
// Fault injection models two parser failure modes: a transient stall
// (recovered by waiting) and a hard failure that stops the loop for
// good — queued commands then never complete and the driver's command
// timeout is the only way out.
func (e *Engine) parserLoop(p *sim.Proc) {
	for {
		for e.cmdHead == e.cmdTail {
			e.cmdKick.Wait(p)
		}
		// Drain every command posted by this instant in one pass. Fault
		// draws stay per-command (injection statistics are unchanged),
		// but stall and parse costs are charged in one sleep each and
		// the head mirror is published once per batch.
		avail := int(e.cmdTail - e.cmdHead)
		n, stalls := avail, 0
		failed := false
		for i := 0; i < avail; i++ {
			if e.params.Faults.Hit(fault.HDCEngineFail) {
				n, failed = i, true
				break
			}
			if e.params.Faults.Hit(fault.HDCEngineStall) {
				stalls++
			}
		}
		if stalls > 0 {
			p.Sleep(sim.Time(stalls) * engineStallDelay)
		}
		if n > 0 {
			p.Sleep(sim.Time(n) * e.params.CmdParse)
		}
		for i := 0; i < n; i++ {
			slot := e.cmdHead % uint64(e.params.CmdQueueEntries)
			var raw [CommandSize]byte
			e.cmdq.ReadAt(slot*CommandSize, raw[:])
			e.cmdHead++
			cmd, err := DecodeCommand(raw[:])
			if err == nil {
				err = cmd.Validate()
			}
			e.submitted = append(e.submitted, cmd.ID)
			if err != nil {
				e.finish(cmd.ID, CplStatusInvalid, nil)
				continue
			}
			c := cmd
			e.env.Spawn(fmt.Sprintf("%s-cmd%d", e.name, cmd.ID), func(ep *sim.Proc) {
				e.execute(ep, c)
			})
		}
		if n > 0 {
			e.mirrorHead(p)
		}
		if failed {
			e.dead = true
			return
		}
	}
}

// mirrorHead publishes the consumed-command counter to host memory so
// the driver can track free command-queue slots.
func (e *Engine) mirrorHead(p *sim.Proc) {
	if !e.hostSet || e.host.HeadMirror == 0 {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e.cmdHead)
	e.fab.Mem().Write(e.mirrorBuf, b[:])
	e.fab.MustDMA(p, e.port, e.host.HeadMirror, e.mirrorBuf, 8)
}

// finish records a command result; the completer delivers results in
// submission order (§IV-C: completions are notified in order).
func (e *Engine) finish(id uint32, status uint32, aux []byte) {
	e.finished[id] = cmdResult{id: id, status: status, aux: aux}
	e.cplCond.Broadcast()
}

// completerLoop drains in-order-finished commands to the host
// completion ring and raises MSI. Every command whose turn has come at
// one instant is posted as a batch: one sleep covering the batch's
// post costs, one wrap-aware vectored DMA to the ring, one MSI.
func (e *Engine) completerLoop(p *sim.Proc) {
	for {
		for len(e.submitted) == 0 || !e.headFinished() {
			e.cplCond.Wait(p)
		}
		p.Yield() // gather every command finishing at this instant
		k := 0
		for k < len(e.submitted) && k < e.params.CmdQueueEntries {
			if _, ok := e.finished[e.submitted[k]]; !ok {
				break
			}
			k++
		}
		p.Sleep(sim.Time(k) * e.params.CompletionPost)
		if e.hostSet {
			for i := 0; i < k; i++ {
				res := e.finished[e.submitted[i]]
				entry := [CplEntrySize]byte{}
				binary.LittleEndian.PutUint32(entry[0:], res.id)
				binary.LittleEndian.PutUint32(entry[4:], res.status)
				binary.LittleEndian.PutUint32(entry[8:], uint32(len(res.aux)))
				entry[12] = 1 // valid
				copy(entry[16:], res.aux)
				e.fab.Mem().Write(e.cplBuf+mem.Addr(i*CplEntrySize), entry[:])
			}
			slot := int(e.cplCount % uint64(e.params.CmdQueueEntries))
			e.cplExts = ringExtents(e.cplExts[:0], e.host.CplRing.Base, slot, k,
				e.params.CmdQueueEntries, CplEntrySize)
			e.fab.MustDMAVec(p, e.port, e.cplBuf, e.cplExts, false)
			e.cplCount += uint64(k)
			e.env.CountIO(k)
			e.fab.RaiseMSI(e.host.MSIVector)
		}
		for i := 0; i < k; i++ {
			delete(e.finished, e.submitted[i])
		}
		e.submitted = e.submitted[k:]
		e.cmdsDone += int64(k)
	}
}

// ringExtents maps n consecutive ring slots starting at head to at most
// two extents (one wrap), appending to exts.
func ringExtents(exts []mem.Extent, base mem.Addr, head, n, entries, esz int) []mem.Extent {
	first := entries - head
	if first > n {
		first = n
	}
	exts = append(exts, mem.Extent{Addr: base + mem.Addr(uint64(head)*uint64(esz)), Len: first * esz})
	if n > first {
		exts = append(exts, mem.Extent{Addr: base, Len: (n - first) * esz})
	}
	return exts
}

func (e *Engine) headFinished() bool {
	_, ok := e.finished[e.submitted[0]]
	return ok
}

// allocChunk takes a 64 KB intermediate buffer, blocking while the
// pool is dry (back-pressure toward the scoreboard).
func (e *Engine) allocChunk(p *sim.Proc) mem.Addr {
	for {
		if a, ok := e.chunks.Get(); ok {
			return a
		}
		e.chunkCond.Wait(p)
	}
}

// freeChunk returns an intermediate buffer.
func (e *Engine) freeChunk(a mem.Addr) {
	e.chunks.Put(a)
	e.chunkCond.Broadcast()
}

// RegisterConnection assigns the connection to a NIC controller
// (round-robin) and installs its flow state there.
func (e *Engine) RegisterConnection(id uint64, flow ether.Flow, txSeq, rxSeq uint32) {
	if len(e.nicCtls) == 0 {
		panic("hdc: no NIC attached")
	}
	ctl := e.nicCtls[e.nextNICRR%len(e.nicCtls)]
	e.nextNICRR++
	e.connOwner[id] = ctl
	ctl.RegisterConnection(id, flow, txSeq, rxSeq)
}

// AdoptedConn is one connection's salvaged state after an engine
// failure: TCP flow, sequence positions, and any receive bytes that
// were buffered in engine DDR3 but not yet consumed by a command.
type AdoptedConn struct {
	ID           uint64
	Flow         ether.Flow
	TxSeq, RxSeq uint32
	Buffered     []byte
}

// AdoptConnections drains every registered connection out of the
// engine's NIC controllers — the graceful-degradation step after a
// hard engine failure. Connections are returned in ascending ID
// order so fail-over is deterministic.
func (e *Engine) AdoptConnections() []AdoptedConn {
	ids := make([]uint64, 0, len(e.connOwner))
	for id := range e.connOwner {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []AdoptedConn
	for _, id := range ids {
		ctl := e.connOwner[id]
		flow, txSeq, rxSeq, buffered, ok := ctl.DrainConn(id)
		if !ok {
			continue
		}
		delete(e.connOwner, id)
		out = append(out, AdoptedConn{ID: id, Flow: flow, TxSeq: txSeq, RxSeq: rxSeq, Buffered: buffered})
	}
	return out
}

// EnableTracing records per-command milestone stamps.
func (e *Engine) EnableTracing() { e.tracing = true }

// TraceOf returns the recorded milestones of a command.
func (e *Engine) TraceOf(id uint32) (CmdTrace, bool) {
	t, ok := e.traces[id]
	if !ok {
		return CmdTrace{}, false
	}
	return *t, true
}

// DebugState prints engine state (diagnostics).
func (e *Engine) DebugState() string {
	out := fmt.Sprintf("cmds: head=%d tail=%d done=%d submitted=%v finishedIDs=%d chunks(free=%d low=%d) sbLive=%d",
		e.cmdHead, e.cmdTail, e.cmdsDone, e.submitted, len(e.finished), e.chunks.Free(), e.chunks.LowWater(), e.sb.Live())
	for _, ctl := range e.nicCtls {
		out += "\n" + ctl.DebugState()
	}
	return out
}

// Counters exposes key engine counters for reporting.
func (e *Engine) Counters() *trace.Counter {
	c := trace.NewCounter()
	c.Inc("cmds-done", e.cmdsDone)
	issued, done := e.sb.Stats()
	c.Inc("sb-issued", issued)
	c.Inc("sb-done", done)
	for i, ctl := range e.nvmeCtls {
		c.Inc(fmt.Sprintf("nvme%d-cmds", i), ctl.cmds)
		c.Inc(fmt.Sprintf("nvme%d-retries", i), ctl.retries)
	}
	for i, ctl := range e.nicCtls {
		c.Inc(fmt.Sprintf("nic%d-send-jobs", i), ctl.sendJobs)
		c.Inc(fmt.Sprintf("nic%d-recv-pkts", i), ctl.recvPkts)
		c.Inc(fmt.Sprintf("nic%d-gathered-bytes", i), ctl.gatheredBytes)
	}
	return c
}
