package hdc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// ErrEngineFailed reports that the HDC Engine stopped completing
// commands (a command timed out). The driver marks the engine failed
// and callers fall back to the host-mediated data path.
var ErrEngineFailed = errors.New("hdc: engine failed (command timeout)")

// DriverParams are the host CPU costs of the HDC Driver — the thin
// kernel module of §IV-B — plus its recovery policy. The CPU costs
// are small by design: the driver only resolves metadata and posts
// one command where the software stacks run entire I/O paths.
type DriverParams struct {
	MetadataLookup sim.Time // VFS interaction: extent map retrieval
	DirtyCheck     sim.Time // page-cache consistency check per request
	ConnLookup     sim.Time // TCP connection metadata retrieval
	CmdBuild       sim.Time // D2D command construction
	CmdPost        sim.Time // MMIO write of command + doorbell
	IRQHandle      sim.Time // completion interrupt handling per batch

	// CmdTimeout declares the engine dead when a command gets no
	// completion in time; 0 disables the watchdog. It must exceed the
	// worst-case legitimate command latency — core.NewNode enables it
	// automatically when fault injection is configured.
	CmdTimeout sim.Time
	// MaxRetries bounds re-issues of a command the engine completed
	// with a transient (poisoned) status.
	MaxRetries int
	// RetryBackoff is the initial backoff before a re-issue; it
	// doubles per attempt.
	RetryBackoff sim.Time
}

// DefaultDriverParams return the calibrated driver costs.
func DefaultDriverParams() DriverParams {
	return DriverParams{
		MetadataLookup: 800 * sim.Nanosecond,
		DirtyCheck:     200 * sim.Nanosecond,
		ConnLookup:     500 * sim.Nanosecond,
		CmdBuild:       300 * sim.Nanosecond,
		CmdPost:        400 * sim.Nanosecond,
		IRQHandle:      700 * sim.Nanosecond,

		MaxRetries:   3,
		RetryBackoff: 5 * sim.Microsecond,
	}
}

// Result is a completed D2D command's outcome as seen by the library.
type Result struct {
	Status uint32
	Aux    []byte // NDP digest, when requested
}

// Driver is the HDC Driver plus the HDC Library entry points. It owns
// the host side of the engine's command/completion interface and
// charges all of its work to trace.CatHDCDriver.
type Driver struct {
	env    *sim.Env
	host   *hostos.Host
	fs     *hostos.FileSystem
	fab    *pcie.Fabric
	eng    *Engine
	params DriverParams

	cplRing *mem.Region
	arena   *mem.Region // extent tables visible to the engine

	nextID      uint32
	tail        uint64
	outstanding int
	slotFree    *sim.Cond
	waiting     map[uint32]*cmdWaiter
	cplHead     uint64

	failed   bool  // engine declared dead after a command timeout
	retries  int64 // transient-status re-issues
	timeouts int64 // commands abandoned by the watchdog
	orphans  int64 // completions for commands already abandoned

	// Writeback flushes a dirty page before a D2D read; wired by the
	// server configuration (it needs the host's own storage path).
	Writeback func(p *sim.Proc, f *hostos.File, page int, data []byte)
}

// cmdWaiter tracks one posted command. Unlike a one-shot Signal it
// can resolve two ways — completion or watchdog timeout — so it uses
// a condition variable the library call re-checks.
type cmdWaiter struct {
	done     bool
	timedOut bool
	res      Result
	cond     *sim.Cond
}

// NewDriver builds the driver, allocating its host-memory interface
// regions and registering the completion interrupt.
func NewDriver(env *sim.Env, host *hostos.Host, fs *hostos.FileSystem,
	fab *pcie.Fabric, hostPort *pcie.Port, eng *Engine, msiVector int, params DriverParams) *Driver {
	mm := fab.Mem()
	d := &Driver{
		env: env, host: host, fs: fs, fab: fab, eng: eng, params: params,
		slotFree: sim.NewCond(env),
		waiting:  map[uint32]*cmdWaiter{},
	}
	entries := eng.params.CmdQueueEntries
	d.cplRing = mm.AddRegion("hdc-cpl-ring", mem.HostDRAM, uint64(entries*CplEntrySize)+64, true)
	d.arena = mm.AddRegion("hdc-extent-arena", mem.HostDRAM, uint64(entries)*4096, true)
	fab.Attach(hostPort, d.cplRing)
	fab.Attach(hostPort, d.arena)

	eng.ConfigureHost(HostConfig{
		CplRing:    d.cplRing,
		CplStatus:  d.cplRing.Base + mem.Addr(uint64(entries*CplEntrySize)),
		HeadMirror: d.cplRing.Base + mem.Addr(uint64(entries*CplEntrySize)) + 8,
		MSIVector:  msiVector,
	})
	fab.OnMSI(msiVector, func() {
		host.RaiseIRQ(trace.CatHDCDriver, params.IRQHandle, d.drainCompletions)
	})
	return d
}

// drainCompletions consumes new completion-ring entries and wakes the
// blocked library calls (runs from the IRQ path).
func (d *Driver) drainCompletions() {
	entries := uint64(d.eng.params.CmdQueueEntries)
	for {
		slot := d.cplHead % entries
		entryAddr := d.cplRing.Base + mem.Addr(slot*uint64(CplEntrySize))
		// View: only the valid byte is rewritten before the fields are
		// decoded, and aux below copies what it keeps.
		raw := d.fab.Mem().View(entryAddr, CplEntrySize)
		if raw[12] == 0 {
			return // no more valid entries
		}
		// Clear the valid byte (host-local memory write).
		d.fab.Mem().Write(entryAddr+12, []byte{0})
		id := binary.LittleEndian.Uint32(raw[0:])
		status := binary.LittleEndian.Uint32(raw[4:])
		auxLen := int(binary.LittleEndian.Uint32(raw[8:]))
		if auxLen > 16 {
			auxLen = 16
		}
		aux := append([]byte(nil), raw[16:16+auxLen]...)
		d.cplHead++
		w, ok := d.waiting[id]
		if !ok {
			// The watchdog abandoned this command and the engine
			// completed it anyway; its slot was already reclaimed.
			d.orphans++
			continue
		}
		delete(d.waiting, id)
		d.outstanding--
		d.slotFree.Broadcast()
		w.done = true
		w.res = Result{Status: status, Aux: aux}
		w.cond.Broadcast()
	}
}

// Failed reports whether the driver has declared the engine dead.
func (d *Driver) Failed() bool { return d.failed }

// Retries returns how many commands were re-issued after a transient
// completion status.
func (d *Driver) Retries() int64 { return d.retries }

// Timeouts returns how many commands the watchdog abandoned.
func (d *Driver) Timeouts() int64 { return d.timeouts }

// Connect registers a TCP connection with the engine's NIC controller
// (driver-side: the connection was established by the kernel stack;
// the driver hands its state to hardware, as §IV-B describes).
func (d *Driver) Connect(id uint64, flow ether.Flow, txSeq, rxSeq uint32) {
	d.eng.RegisterConnection(id, flow, txSeq, rxSeq)
}

// post writes a built command into the engine's queue and rings the
// tail doorbell. Caller charges CPU cost.
func (d *Driver) post(p *sim.Proc, cmd Command) *cmdWaiter {
	for d.outstanding >= d.eng.params.CmdQueueEntries-1 {
		d.slotFree.Wait(p)
	}
	w := &cmdWaiter{cond: sim.NewCond(d.env)}
	d.waiting[cmd.ID] = w
	d.outstanding++
	slot := d.tail % uint64(d.eng.params.CmdQueueEntries)
	enc := cmd.Encode()
	// MMIO writes into the engine BAR: command body, then doorbell.
	d.tail++
	tail := d.tail
	mmio := d.fab.Params().MMIOLatency
	slotAddr := d.eng.CmdSlotAddr(int(slot))
	d.env.Schedule(mmio, func() { d.fab.Mem().Write(slotAddr, enc[:]) })
	d.env.Schedule(mmio, func() {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], tail)
		d.fab.Mem().Write(d.eng.TailDoorbell(), b[:])
	})
	if d.params.CmdTimeout > 0 {
		d.env.Schedule(d.params.CmdTimeout, func() {
			if !w.done && !w.timedOut {
				w.timedOut = true
				w.cond.Broadcast()
			}
		})
	}
	return w
}

// await blocks the library call on a posted command's outcome —
// completion or watchdog timeout — charging the context switch and
// idle wait the way hostos.Host.BlockOnDevice does. A timed-out
// command is abandoned: its queue slot is reclaimed and a late
// completion is dropped as an orphan; it is never re-posted, so the
// engine cannot execute it twice.
func (d *Driver) await(p *sim.Proc, bd *trace.Breakdown, id uint32, w *cmdWaiter) (Result, bool) {
	d.host.Exec(p, trace.CatInterrupt, d.host.Params.CtxSwitch, bd)
	start := p.Now()
	for !w.done && !w.timedOut {
		w.cond.Wait(p)
	}
	if bd != nil {
		bd.Add(trace.CatIdleWait, p.Now()-start)
	}
	if w.timedOut {
		d.timeouts++
		delete(d.waiting, id)
		d.outstanding--
		d.slotFree.Broadcast()
		return Result{}, false
	}
	return w.res, true
}

// submit runs the post→await cycle with the driver's recovery policy:
// a transient completion status is retried with a fresh command ID
// after an exponential backoff (charged to trace.CatRetry), and a
// watchdog timeout declares the engine failed. build constructs the
// command for a given ID — called once per attempt so re-issues stage
// their own extent-table slot and never alias an abandoned command.
func (d *Driver) submit(p *sim.Proc, bd *trace.Breakdown, postCost sim.Time, build func(id uint32) (Command, error)) (Result, error) {
	if d.failed {
		return Result{}, ErrEngineFailed
	}
	backoff := d.params.RetryBackoff
	for attempt := 0; ; attempt++ {
		id := d.nextID
		d.nextID++
		cmd, err := build(id)
		if err != nil {
			return Result{}, err
		}
		d.host.Exec(p, trace.CatHDCDriver, postCost, bd)
		w := d.post(p, cmd)
		res, ok := d.await(p, bd, id, w)
		if !ok {
			d.failed = true
			return Result{}, ErrEngineFailed
		}
		if res.Status == CplStatusTransient && attempt < d.params.MaxRetries {
			d.retries++
			if bd != nil {
				bd.Add(trace.CatRetry, backoff)
			}
			p.Sleep(backoff)
			backoff *= 2
			continue
		}
		d.host.Exec(p, trace.CatHDCDriver, d.host.Params.SyscallExit, bd)
		return res, nil
	}
}

// stageExtents writes an extent table into the arena slot for a
// command and returns its bus address.
func (d *Driver) stageExtents(id uint32, ext []ExtentEntry) (mem.Addr, error) {
	if len(ext) > 256 {
		return 0, fmt.Errorf("hdc: %d extents exceed one command (split the transfer)", len(ext))
	}
	slot := uint64(id) % uint64(d.eng.params.CmdQueueEntries)
	addr := d.arena.Base + mem.Addr(slot*4096)
	d.fab.Mem().Write(addr, EncodeExtents(ext))
	return addr, nil
}

// fileExtents maps a byte range of a file to engine extent entries,
// enforcing chunk-aligned starts.
func fileExtents(f *hostos.File, off, n int) ([]ExtentEntry, error) {
	if off%hostos.BlockSize != 0 {
		return nil, fmt.Errorf("hdc: offset %d not block aligned", off)
	}
	lbas, err := f.LBARange(off, n)
	if err != nil {
		return nil, err
	}
	var out []ExtentEntry
	for _, lba := range lbas {
		if k := len(out); k > 0 && out[k-1].LBA+uint64(out[k-1].Blocks) == lba {
			out[k-1].Blocks++
			continue
		}
		out = append(out, ExtentEntry{LBA: lba, Blocks: 1})
	}
	return out, nil
}

// prepare runs the driver's common preamble: syscall entry, metadata
// and consistency work. Command IDs are allocated per attempt by
// submit, so prepare runs exactly once per library call even when the
// command is retried.
func (d *Driver) prepare(p *sim.Proc, bd *trace.Breakdown, f *hostos.File) {
	hp := d.host.Params
	d.host.Exec(p, trace.CatHDCDriver, hp.SyscallEntry, bd)
	d.host.Exec(p, trace.CatHDCDriver, d.params.MetadataLookup, bd)
	if f != nil {
		d.host.Exec(p, trace.CatHDCDriver, d.params.DirtyCheck, bd)
		if dirty := d.fs.Dirty(f.Name); len(dirty) > 0 {
			if d.Writeback == nil {
				panic("hdc: dirty pages with no writeback path configured")
			}
			for _, pg := range dirty {
				data, _ := d.fs.CleanPage(f.Name, pg)
				d.Writeback(p, f, pg, data)
			}
		}
	}
}

// SendFile is the HDC Library's sendfile-like call: transfer n bytes
// of file f starting at off to connection connID, optionally through
// NDP function fn (§IV-A). It blocks until the engine completes the
// D2D command and returns the NDP digest when fn computes one.
func (d *Driver) SendFile(p *sim.Proc, bd *trace.Breakdown, f *hostos.File, off, n int, connID uint64, fn uint8) (Result, error) {
	return d.SendFileDev(p, bd, 0, f, off, n, connID, fn)
}

// SendFileDev is SendFile addressing a specific SSD (multi-SSD
// engines; dev is the index AttachSSD returned).
func (d *Driver) SendFileDev(p *sim.Proc, bd *trace.Breakdown, dev uint8, f *hostos.File, off, n int, connID uint64, fn uint8) (Result, error) {
	return d.SendFileAux(p, bd, dev, f, off, n, connID, fn, 0)
}

// SendFileAux is SendFileDev with an NDP function argument (e.g. the
// AES key slot provisioned with Engine.ProvisionAESKey).
func (d *Driver) SendFileAux(p *sim.Proc, bd *trace.Breakdown, dev uint8, f *hostos.File, off, n int, connID uint64, fn uint8, aux uint64) (Result, error) {
	d.prepare(p, bd, f)
	ext, err := fileExtents(f, off, n)
	if err != nil {
		return Result{}, err
	}
	return d.submit(p, bd, d.params.ConnLookup+d.params.CmdBuild+d.params.CmdPost,
		func(id uint32) (Command, error) {
			extAddr, err := d.stageExtents(id, ext)
			if err != nil {
				return Command{}, err
			}
			return Command{
				ID: id, SrcClass: ClassSSD, DstClass: ClassNIC, Fn: fn,
				Flags:  FlagAuxWriteback,
				SrcArg: uint64(extAddr), SrcCount: uint32(len(ext)), SrcDev: dev,
				DstArg: connID, Length: uint64(n), AuxData: aux,
			}, nil
		})
}

// CopyFile moves n bytes between two files (possibly on different
// SSDs) entirely through the engine — SSD→[NDP]→SSD, no host data
// path. Both extent tables share the command's arena slot, so each
// side is limited to 128 extents.
func (d *Driver) CopyFile(p *sim.Proc, bd *trace.Breakdown,
	srcDev uint8, srcF *hostos.File, srcOff int,
	dstDev uint8, dstF *hostos.File, dstOff, n int, fn uint8) (Result, error) {
	d.prepare(p, bd, srcF)
	srcExt, err := fileExtents(srcF, srcOff, n)
	if err != nil {
		return Result{}, err
	}
	dstExt, err := fileExtents(dstF, dstOff, n)
	if err != nil {
		return Result{}, err
	}
	if len(srcExt) > 128 || len(dstExt) > 128 {
		return Result{}, fmt.Errorf("hdc: copy with >128 extents per side (split the transfer)")
	}
	return d.submit(p, bd, d.params.CmdBuild+d.params.CmdPost,
		func(id uint32) (Command, error) {
			slot := uint64(id) % uint64(d.eng.params.CmdQueueEntries)
			base := d.arena.Base + mem.Addr(slot*4096)
			d.fab.Mem().Write(base, EncodeExtents(srcExt))
			d.fab.Mem().Write(base+2048, EncodeExtents(dstExt))
			return Command{
				ID: id, SrcClass: ClassSSD, DstClass: ClassSSD, Fn: fn,
				Flags:  FlagAuxWriteback,
				SrcArg: uint64(base), SrcCount: uint32(len(srcExt)), SrcDev: srcDev,
				DstArg: uint64(base + 2048), DstCount: uint32(len(dstExt)), DstDev: dstDev,
				Length: uint64(n),
			}, nil
		})
}

// RecvFile receives n bytes from connection connID into file f at
// off, optionally through NDP function fn — the PUT-side D2D path.
func (d *Driver) RecvFile(p *sim.Proc, bd *trace.Breakdown, connID uint64, f *hostos.File, off, n int, fn uint8) (Result, error) {
	return d.RecvFileDev(p, bd, connID, 0, f, off, n, fn)
}

// RecvFileDev is RecvFile addressing a specific SSD.
func (d *Driver) RecvFileDev(p *sim.Proc, bd *trace.Breakdown, connID uint64, dev uint8, f *hostos.File, off, n int, fn uint8) (Result, error) {
	d.prepare(p, bd, f)
	ext, err := fileExtents(f, off, n)
	if err != nil {
		return Result{}, err
	}
	return d.submit(p, bd, d.params.ConnLookup+d.params.CmdBuild+d.params.CmdPost,
		func(id uint32) (Command, error) {
			extAddr, err := d.stageExtents(id, ext)
			if err != nil {
				return Command{}, err
			}
			return Command{
				ID: id, SrcClass: ClassNIC, DstClass: ClassSSD, Fn: fn,
				Flags:  FlagAuxWriteback,
				SrcArg: connID, DstArg: uint64(extAddr), DstCount: uint32(len(ext)), DstDev: dev,
				Length: uint64(n),
			}, nil
		})
}

// Forward moves n bytes from one connection to another through the
// engine (network-to-network, e.g. proxying with re-encryption).
func (d *Driver) Forward(p *sim.Proc, bd *trace.Breakdown, srcConn, dstConn uint64, n int, fn uint8) (Result, error) {
	d.prepare(p, bd, nil)
	return d.submit(p, bd, 2*d.params.ConnLookup+d.params.CmdBuild+d.params.CmdPost,
		func(id uint32) (Command, error) {
			return Command{
				ID: id, SrcClass: ClassNIC, DstClass: ClassNIC, Fn: fn,
				Flags:  FlagAuxWriteback,
				SrcArg: srcConn, DstArg: dstConn, Length: uint64(n),
			}, nil
		})
}
