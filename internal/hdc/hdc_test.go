package hdc

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"hash/crc32"
	"testing"
	"testing/quick"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/ndp"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(id uint32, src, dst, fn, flags uint8, a1, a2, ln, auxA, auxD uint64, c1, c2 uint32) bool {
		c := Command{ID: id, SrcClass: src, DstClass: dst, Fn: fn, Flags: flags,
			SrcArg: a1, SrcCount: c1, DstArg: a2, DstCount: c2, Length: ln,
			AuxAddr: mem.Addr(auxA), AuxData: auxD}
		enc := c.Encode()
		got, err := DecodeCommand(enc[:])
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtentsRoundTripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		ext := make([]ExtentEntry, len(raw))
		for i, v := range raw {
			ext[i] = ExtentEntry{LBA: v, Blocks: uint32(v % 1000)}
		}
		got, err := DecodeExtents(EncodeExtents(ext), len(ext))
		if err != nil {
			return false
		}
		for i := range ext {
			if got[i] != ext[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandValidate(t *testing.T) {
	good := Command{ID: 1, SrcClass: ClassSSD, DstClass: ClassNIC, SrcCount: 1, Length: 4096}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Command{
		{ID: 2, SrcClass: ClassSSD, DstClass: ClassNIC, SrcCount: 1, Length: 0},
		{ID: 3, SrcClass: 9, DstClass: ClassNIC, Length: 1},
		{ID: 4, SrcClass: ClassSSD, DstClass: ClassNIC, SrcCount: 0, Length: 1},
		{ID: 5, SrcClass: ClassNIC, DstClass: ClassSSD, DstCount: 0, Length: 1},
		{ID: 6, SrcClass: ClassNIC, DstClass: ClassNIC, Fn: 99, Length: 1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("command %d validated", c.ID)
		}
	}
}

func TestBlockRuns(t *testing.T) {
	ext := []ExtentEntry{{LBA: 100, Blocks: 4}, {LBA: 500, Blocks: 32}, {LBA: 900, Blocks: 4}}
	// Chunk 0: 64 KB = 16 blocks: 4 from ext0, 12 from ext1.
	runs, err := blockRuns(ext, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].lba != 100 || runs[0].blocks != 4 ||
		runs[1].lba != 500 || runs[1].blocks != 12 || runs[1].bufOff != 4*4096 {
		t.Fatalf("runs = %+v", runs)
	}
	// Chunk 1: next 16 blocks: 16 from ext1 (offset 12) -> one run.
	runs, err = blockRuns(ext, 64<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].lba != 512 || runs[0].blocks != 16 {
		t.Fatalf("runs = %+v", runs)
	}
	// Partial tail: blocks 32..39 = 4 from ext1 end + 4 from ext2.
	runs, err = blockRuns(ext, 2*64<<10, 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].lba != 528 || runs[0].blocks != 4 || runs[1].lba != 900 {
		t.Fatalf("runs = %+v", runs)
	}
	// Beyond the extent list.
	if _, err := blockRuns(ext, 0, 41*4096); err == nil {
		t.Fatal("overrun accepted")
	}
}

func TestBlockRunsCapsAtMaxBlocks(t *testing.T) {
	ext := []ExtentEntry{{LBA: 0, Blocks: 64}}
	runs, err := blockRuns(ext, 0, 64*4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d runs for 64 blocks", len(runs))
	}
	for _, r := range runs {
		if r.blocks > nvme.MaxBlocksPerCmd {
			t.Fatalf("run of %d blocks", r.blocks)
		}
	}
}

// testbed: node A has host+fs+SSD+NIC+engine+driver; node B is a plain
// host endpoint that can source and sink network payload.
type testbed struct {
	env    *sim.Env
	mmA    *mem.Map
	fabA   *pcie.Fabric
	hostA  *hostos.Host
	fsA    *hostos.FileSystem
	ssd    *nvme.SSD
	nicA   *nic.NIC
	eng    *Engine
	drv    *Driver
	dramA  *mem.Region
	peer   *peerNode
	flowAB ether.Flow
}

// peerNode is node B: host-driven NIC rings, a payload collector, and
// a payload sender.
type peerNode struct {
	env      *sim.Env
	mm       *mem.Map
	fab      *pcie.Fabric
	dram     *mem.Region
	nic      *nic.NIC
	send     *nic.SendRing
	recv     *nic.RecvRing
	got      []byte
	gotAll   *sim.Cond
	rxBufLen uint32
}

func newPeer(env *sim.Env, name string) *peerNode {
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	hostPort := fab.AddPort(name + "-root")
	dram := mm.AddRegion(name+"-dram", mem.HostDRAM, 128<<20, true)
	fab.Attach(hostPort, dram)
	n := nic.NewNIC(env, fab, name+"-nic", nic.DefaultParams())
	sring := mm.AddRegion(name+"-sring", mem.HostDRAM, 1024*nic.SendBDSize, true)
	rring := mm.AddRegion(name+"-rring", mem.HostDRAM, 1024*nic.RecvBDSize, true)
	rcpl := mm.AddRegion(name+"-rcpl", mem.HostDRAM, 1024*nic.RecvCplSize, true)
	status := mm.AddRegion(name+"-status", mem.HostDRAM, 64, true)
	for _, r := range []*mem.Region{sring, rring, rcpl, status} {
		fab.Attach(hostPort, r)
	}
	cfg := nic.QueueConfig{QID: 0, SendRing: sring, SendEntries: 1024,
		SendStatus: status.Base, RecvRing: rring, RecvEntries: 1024,
		RecvCpl: rcpl, RecvStatus: status.Base + 8, MSIVector: -1}
	n.ConfigureQueue(cfg)
	p := &peerNode{env: env, mm: mm, fab: fab, dram: dram, nic: n,
		send: nic.NewSendRing(fab, n, cfg), recv: nic.NewRecvRing(fab, n, cfg),
		gotAll: sim.NewCond(env), rxBufLen: 2048}
	// Collector: drain receive completions into the byte stream.
	status.SetWriteHook(func(off uint64, nn int) {
		for _, f := range p.recv.Poll() {
			frame := p.mm.Read(f.Addr, int(f.Cpl.HdrLen)+int(f.Cpl.PayLen))
			seg, err := ether.Parse(frame)
			if err != nil {
				panic(err)
			}
			p.got = append(p.got, seg.Payload...)
			p.postBufs(1)
		}
		p.gotAll.Broadcast()
	})
	p.postBufs(256)
	return p
}

func (p *peerNode) postBufs(k int) {
	var bds []nic.RecvBD
	for i := 0; i < k; i++ {
		bds = append(bds, nic.RecvBD{Addr: p.dram.Alloc(uint64(p.rxBufLen), 64), Len: p.rxBufLen})
	}
	if err := p.recv.Post(bds); err != nil {
		panic(err)
	}
	p.recv.RingDoorbell()
}

// waitFor blocks until n payload bytes have arrived.
func (p *peerNode) waitFor(pr *sim.Proc, n int) []byte {
	for len(p.got) < n {
		p.gotAll.Wait(pr)
	}
	return p.got[:n]
}

// sendPayload transmits payload on the reverse flow starting at seq,
// split into 64 KB send jobs (the NIC staging-buffer bound).
func (p *peerNode) sendPayload(flow ether.Flow, seq uint32, payload []byte) {
	const job = 64 << 10
	for off := 0; off < len(payload); off += job {
		end := off + job
		if end > len(payload) {
			end = len(payload)
		}
		p.sendOne(flow, seq+uint32(off), payload[off:end])
	}
}

func (p *peerNode) sendOne(flow ether.Flow, seq uint32, payload []byte) {
	hdr := ether.HeaderTemplate(flow, seq, ether.FlagACK|ether.FlagPSH)
	hdrAddr := p.dram.Alloc(uint64(len(hdr)), 64)
	p.mm.Write(hdrAddr, hdr)
	payAddr := p.dram.Alloc(uint64(len(payload))+1, 64)
	p.mm.Write(payAddr, payload)
	bds := []nic.SendBD{{Addr: hdrAddr, Len: uint16(len(hdr)), Flags: nic.SendFlagLSO, MSS: ether.MSS}}
	const frag = 32 << 10
	for off := 0; off < len(payload); off += frag {
		n := len(payload) - off
		if n > frag {
			n = frag
		}
		bds = append(bds, nic.SendBD{Addr: payAddr + mem.Addr(off), Len: uint16(n)})
	}
	bds[len(bds)-1].Flags |= nic.SendFlagEnd
	if err := p.send.Push(bds); err != nil {
		panic(err)
	}
	p.send.RingDoorbell()
}

const connAB = 7

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	env := sim.NewEnv()
	mmA := mem.NewMap()
	fabA := pcie.NewFabric(env, mmA, pcie.DefaultParams())
	hostPort := fabA.AddPort("a-root")
	dramA := mmA.AddRegion("a-dram", mem.HostDRAM, 64<<20, true)
	fabA.Attach(hostPort, dramA)
	hostA := hostos.NewHost(env, hostos.DefaultParams())
	fsA := hostos.NewFileSystem(4 << 30)

	ssd := nvme.NewSSD(env, fabA, "a-ssd", nvme.DefaultParams())
	nicA := nic.NewNIC(env, fabA, "a-nic", nic.DefaultParams())
	eng := NewEngine(env, fabA, "hdc", DefaultParams())
	eng.AttachSSD(ssd, 1)
	eng.AttachNIC(nicA, 1)
	for fn, u := range map[uint8]ndp.Streamer{
		FnMD5: ndp.MD5{}, FnCRC32: ndp.CRC32{}, FnSHA256: ndp.SHA256{},
		FnAES256: &ndp.AES256{Key: [32]byte{42}}, FnGZIP: ndp.GZIP{}, FnGUNZIP: ndp.GUNZIP{},
	} {
		if err := eng.AddNDP(fn, u); err != nil {
			t.Fatal(err)
		}
	}
	drv := NewDriver(env, hostA, fsA, fabA, hostPort, eng, 9, DefaultDriverParams())

	peer := newPeer(env, "b")
	nic.Connect(nicA, peer.nic)

	flowAB := ether.Flow{
		SrcMAC: ether.MAC{2, 0, 0, 0, 0, 1}, DstMAC: ether.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: ether.IP{10, 0, 0, 1}, DstIP: ether.IP{10, 0, 0, 2},
		SrcPort: 6000, DstPort: 8080,
	}
	drv.Connect(connAB, flowAB, 0, 0)
	return &testbed{env: env, mmA: mmA, fabA: fabA, hostA: hostA, fsA: fsA,
		ssd: ssd, nicA: nicA, eng: eng, drv: drv, dramA: dramA, peer: peer, flowAB: flowAB}
}

// stageFile creates a file and preloads its content on the SSD.
func (tb *testbed) stageFile(t *testing.T, name string, content []byte) *hostos.File {
	t.Helper()
	f, err := tb.fsA.Create(name, len(content))
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, e := range f.Extents() {
		n := e.Blocks * hostos.BlockSize
		if off+n > len(content) {
			n = len(content) - off
		}
		tb.ssd.Preload(e.LBA, content[off:off+n])
		off += n
	}
	return f
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i>>8)
	}
	return out
}

func TestSendFileEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	content := pattern(200 << 10) // 200 KB: multiple chunks, partial tail
	f := tb.stageFile(t, "obj", content)
	var res Result
	var err error
	tb.env.Spawn("app", func(p *sim.Proc) {
		bd := trace.NewBreakdown()
		res, err = tb.drv.SendFile(p, bd, f, 0, len(content), connAB, FnNone)
		tb.peer.waitFor(p, len(content))
	})
	tb.env.Run(-1)
	if err != nil || res.Status != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !bytes.Equal(tb.peer.got, content) {
		t.Fatal("peer received wrong bytes")
	}
	if tb.eng.CommandsDone() != 1 {
		t.Fatalf("commands done = %d", tb.eng.CommandsDone())
	}
	// No host DRAM payload traffic on node A: the defining property.
	if tb.fabA.HostBytes() > 4096 {
		t.Fatalf("host DRAM moved %d bytes on the data path", tb.fabA.HostBytes())
	}
}

func TestSendFileWithMD5(t *testing.T) {
	tb := newTestbed(t)
	content := pattern(96 << 10)
	f := tb.stageFile(t, "obj", content)
	var res Result
	tb.env.Spawn("app", func(p *sim.Proc) {
		res, _ = tb.drv.SendFile(p, trace.NewBreakdown(), f, 0, len(content), connAB, FnMD5)
		tb.peer.waitFor(p, len(content))
	})
	tb.env.Run(-1)
	want := md5.Sum(content)
	if !bytes.Equal(res.Aux, want[:]) {
		t.Fatalf("MD5 aux = %x, want %x", res.Aux, want)
	}
	if !bytes.Equal(tb.peer.got, content) {
		t.Fatal("payload corrupted by integrity unit")
	}
}

func TestSendFileEncrypted(t *testing.T) {
	tb := newTestbed(t)
	content := pattern(64 << 10)
	f := tb.stageFile(t, "obj", content)
	tb.env.Spawn("app", func(p *sim.Proc) {
		tb.drv.SendFile(p, trace.NewBreakdown(), f, 0, len(content), connAB, FnAES256)
		tb.peer.waitFor(p, len(content))
	})
	tb.env.Run(-1)
	if bytes.Equal(tb.peer.got, content) {
		t.Fatal("ciphertext equals plaintext")
	}
	unit := &ndp.AES256{Key: [32]byte{42}}
	plain, _, _ := unit.Transform(tb.peer.got)
	if !bytes.Equal(plain, content) {
		t.Fatal("decryption does not recover plaintext")
	}
}

func TestSendFileGzip(t *testing.T) {
	tb := newTestbed(t)
	content := bytes.Repeat([]byte("compressible block content "), 6000) // ~162 KB
	f := tb.stageFile(t, "obj", content)
	done := false
	tb.env.Spawn("app", func(p *sim.Proc) {
		res, err := tb.drv.SendFile(p, trace.NewBreakdown(), f, 0, len(content), connAB, FnGZIP)
		if err != nil || res.Status != 0 {
			t.Errorf("res=%+v err=%v", res, err)
		}
		// The compressed stream is shorter; wait for sim to quiesce.
		done = true
	})
	tb.env.Run(-1)
	if !done {
		t.Fatal("send did not complete")
	}
	if len(tb.peer.got) >= len(content)/2 {
		t.Fatalf("no compression: %d -> %d", len(content), len(tb.peer.got))
	}
	plain, _, err := (ndp.GUNZIP{}).Transform(tb.peer.got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, content) {
		t.Fatal("gunzip(sent) != original")
	}
}

func TestRecvFileEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	content := pattern(150 << 10)
	f, err := tb.fsA.Create("upload", len(content))
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	tb.env.Spawn("remote", func(p *sim.Proc) {
		tb.peer.sendPayload(tb.flowAB.Reverse(), 0, content)
	})
	tb.env.Spawn("app", func(p *sim.Proc) {
		res, err = tb.drv.RecvFile(p, trace.NewBreakdown(), connAB, f, 0, len(content), FnCRC32)
	})
	tb.env.Run(-1)
	if err != nil || res.Status != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	c := crc32.ChecksumIEEE(content)
	want := []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}
	if !bytes.Equal(res.Aux, want) {
		t.Fatalf("CRC aux = %x, want %x", res.Aux, want)
	}
	// Verify flash contents block by block.
	lbas := f.LBAs()
	for i, lba := range lbas {
		blk := tb.ssd.PeekBlock(lba)
		start := i * hostos.BlockSize
		end := start + hostos.BlockSize
		if end > len(content) {
			end = len(content)
		}
		if !bytes.Equal(blk[:end-start], content[start:end]) {
			t.Fatalf("flash block %d mismatch", i)
		}
	}
}

func TestConcurrentCommandsMultipleConnections(t *testing.T) {
	tb := newTestbed(t)
	// Second connection with a different port.
	flow2 := tb.flowAB
	flow2.SrcPort = 6001
	tb.drv.Connect(8, flow2, 0, 0)

	c1 := pattern(80 << 10)
	c2 := bytes.Repeat([]byte{0xEE}, 100<<10)
	f1 := tb.stageFile(t, "f1", c1)
	f2 := tb.stageFile(t, "f2", c2)
	done := 0
	tb.env.Spawn("app1", func(p *sim.Proc) {
		tb.drv.SendFile(p, trace.NewBreakdown(), f1, 0, len(c1), connAB, FnMD5)
		done++
	})
	tb.env.Spawn("app2", func(p *sim.Proc) {
		tb.drv.SendFile(p, trace.NewBreakdown(), f2, 0, len(c2), 8, FnMD5)
		done++
	})
	tb.env.Run(-1)
	if done != 2 {
		t.Fatalf("completed %d/2", done)
	}
	if len(tb.peer.got) != len(c1)+len(c2) {
		t.Fatalf("peer got %d bytes", len(tb.peer.got))
	}
	if tb.eng.CommandsDone() != 2 {
		t.Fatalf("engine completed %d", tb.eng.CommandsDone())
	}
	issued, doneSB := tb.eng.Scoreboard().Stats()
	if issued == 0 || issued != doneSB {
		t.Fatalf("scoreboard issued=%d done=%d", issued, doneSB)
	}
	if tb.eng.Scoreboard().Live() != 0 {
		t.Fatalf("scoreboard leaked %d entries", tb.eng.Scoreboard().Live())
	}
}

func TestDriverChargesLittleCPU(t *testing.T) {
	tb := newTestbed(t)
	content := pattern(64 << 10)
	f := tb.stageFile(t, "obj", content)
	bd := trace.NewBreakdown()
	tb.env.Spawn("app", func(p *sim.Proc) {
		tb.drv.SendFile(p, bd, f, 0, len(content), connAB, FnNone)
	})
	tb.env.Run(-1)
	drvTime := bd.Get(trace.CatHDCDriver)
	wait := bd.Get(trace.CatIdleWait)
	if drvTime <= 0 {
		t.Fatal("no driver time recorded")
	}
	if drvTime > 10*sim.Microsecond {
		t.Fatalf("driver CPU %v too high", drvTime)
	}
	if wait < 5*drvTime {
		t.Fatalf("device wait %v not dominant over driver %v", wait, drvTime)
	}
}

func TestInvalidCommandCompletesWithError(t *testing.T) {
	tb := newTestbed(t)
	var res Result
	tb.env.Spawn("app", func(p *sim.Proc) {
		// Zero-length transfer: rejected by the parser.
		w := tb.drv.post(p, Command{ID: 999, SrcClass: ClassSSD, DstClass: ClassNIC, SrcCount: 1, Length: 0})
		tb.drv.nextID = 1000
		for !w.done {
			w.cond.Wait(p)
		}
		res = w.res
	})
	tb.env.Run(-1)
	if res.Status == 0 {
		t.Fatal("invalid command reported success")
	}
}

func TestDirtyPageWritebackBeforeD2D(t *testing.T) {
	tb := newTestbed(t)
	content := pattern(64 << 10)
	f := tb.stageFile(t, "obj", content)
	// Dirty page 2 in the page cache with different content.
	newPage := bytes.Repeat([]byte{0xAA}, hostos.BlockSize)
	tb.fsA.CacheWrite("obj", 2, newPage)
	wrote := false
	tb.drv.Writeback = func(p *sim.Proc, file *hostos.File, page int, data []byte) {
		// Simplified writeback path: direct media update + latency.
		tb.ssd.Preload(file.LBAs()[page], data)
		p.Sleep(30 * sim.Microsecond)
		wrote = true
	}
	tb.env.Spawn("app", func(p *sim.Proc) {
		tb.drv.SendFile(p, trace.NewBreakdown(), f, 0, len(content), connAB, FnNone)
		tb.peer.waitFor(p, len(content))
	})
	tb.env.Run(-1)
	if !wrote {
		t.Fatal("writeback not invoked")
	}
	want := append([]byte(nil), content...)
	copy(want[2*hostos.BlockSize:], newPage)
	if !bytes.Equal(tb.peer.got, want) {
		t.Fatal("peer did not observe latest (written-back) data")
	}
	if len(tb.fsA.Dirty("obj")) != 0 {
		t.Fatal("pages still dirty")
	}
}

func TestSendFileUnalignedOffsetRejected(t *testing.T) {
	tb := newTestbed(t)
	f := tb.stageFile(t, "obj", pattern(64<<10))
	var err error
	tb.env.Spawn("app", func(p *sim.Proc) {
		_, err = tb.drv.SendFile(p, trace.NewBreakdown(), f, 13, 100, connAB, FnNone)
	})
	tb.env.Run(-1)
	if err == nil {
		t.Fatal("unaligned offset accepted")
	}
}

func TestScoreboardBackpressure(t *testing.T) {
	// A tiny scoreboard still completes a large transfer.
	env := sim.NewEnv()
	mmA := mem.NewMap()
	fabA := pcie.NewFabric(env, mmA, pcie.DefaultParams())
	hostPort := fabA.AddPort("a-root")
	dramA := mmA.AddRegion("a-dram", mem.HostDRAM, 64<<20, true)
	fabA.Attach(hostPort, dramA)
	hostA := hostos.NewHost(env, hostos.DefaultParams())
	fsA := hostos.NewFileSystem(1 << 30)
	ssd := nvme.NewSSD(env, fabA, "a-ssd", nvme.DefaultParams())
	nicA := nic.NewNIC(env, fabA, "a-nic", nic.DefaultParams())
	params := DefaultParams()
	params.ScoreboardEntries = 3
	params.Window = 2
	eng := NewEngine(env, fabA, "hdc", params)
	eng.AttachSSD(ssd, 1)
	eng.AttachNIC(nicA, 1)
	drv := NewDriver(env, hostA, fsA, fabA, hostPort, eng, 9, DefaultDriverParams())
	peer := newPeer(env, "b")
	nic.Connect(nicA, peer.nic)
	flow := ether.Flow{SrcMAC: ether.MAC{2}, DstMAC: ether.MAC{4},
		SrcIP: ether.IP{10, 0, 0, 1}, DstIP: ether.IP{10, 0, 0, 2}, SrcPort: 1, DstPort: 2}
	drv.Connect(connAB, flow, 0, 0)

	content := pattern(256 << 10)
	f, _ := fsA.Create("big", len(content))
	off := 0
	for _, e := range f.Extents() {
		n := e.Blocks * hostos.BlockSize
		if off+n > len(content) {
			n = len(content) - off
		}
		ssd.Preload(e.LBA, content[off:off+n])
		off += n
	}
	ok := false
	env.Spawn("app", func(p *sim.Proc) {
		res, err := drv.SendFile(p, trace.NewBreakdown(), f, 0, len(content), connAB, FnNone)
		ok = err == nil && res.Status == 0
		peer.waitFor(p, len(content))
	})
	env.Run(-1)
	if !ok {
		t.Fatal("transfer failed under scoreboard pressure")
	}
	if !bytes.Equal(peer.got, content) {
		t.Fatal("data mismatch under backpressure")
	}
	if eng.Scoreboard().MaxLive() > 3 {
		t.Fatalf("scoreboard exceeded capacity: %d", eng.Scoreboard().MaxLive())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, string) {
		tb := newTestbed(t)
		content := pattern(128 << 10)
		f := tb.stageFile(t, "obj", content)
		var log []string
		tb.env.Spawn("app", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				res, _ := tb.drv.SendFile(p, trace.NewBreakdown(), f, 0, len(content), connAB, FnMD5)
				log = append(log, fmt.Sprintf("%d:%x@%v", i, res.Aux[:4], p.Now()))
			}
		})
		end := tb.env.Run(-1)
		return end, fmt.Sprint(log)
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("nondeterministic:\n%v %s\n%v %s", e1, l1, e2, l2)
	}
}

func TestForwardNICToNIC(t *testing.T) {
	// Network-to-network through the engine with re-encryption: the
	// applicability case beyond the paper's SSD<->NIC prototypes (the
	// scoreboard and NDP chain are agnostic to endpoint classes).
	tb := newTestbed(t)
	inFlow := tb.flowAB
	inFlow.SrcPort = 6100 // connection the body arrives on
	outFlow := tb.flowAB
	outFlow.SrcPort = 6101 // connection the ciphertext leaves on
	tb.drv.Connect(21, inFlow, 0, 0)
	tb.drv.Connect(22, outFlow, 0, 0)

	payload := pattern(96 << 10)
	var res Result
	var err error
	tb.env.Spawn("remote-sender", func(p *sim.Proc) {
		tb.peer.sendPayload(inFlow.Reverse(), 0, payload)
	})
	tb.env.Spawn("proxy-app", func(p *sim.Proc) {
		res, err = tb.drv.Forward(p, trace.NewBreakdown(), 21, 22, len(payload), FnAES256)
	})
	tb.env.Run(-1)
	if err != nil || res.Status != 0 {
		t.Fatalf("forward: res=%+v err=%v", res, err)
	}
	if len(tb.peer.got) != len(payload) {
		t.Fatalf("peer received %d bytes", len(tb.peer.got))
	}
	if bytes.Equal(tb.peer.got, payload) {
		t.Fatal("forwarded data not encrypted")
	}
	unit := &ndp.AES256{Key: [32]byte{42}}
	plain, _, _ := unit.Transform(tb.peer.got)
	if !bytes.Equal(plain, payload) {
		t.Fatal("forwarded ciphertext does not decrypt to the original")
	}
}

func TestMultiSSDEngineRouting(t *testing.T) {
	// A second SSD attached to the same engine: commands address it by
	// device index; data comes from the right flash.
	tb := newTestbed(t)
	ssd2 := nvme.NewSSD(tb.env, tb.fabA, "a-ssd2", nvme.DefaultParams())
	dev2 := tb.eng.AttachSSD(ssd2, 2)
	if dev2 != 1 {
		t.Fatalf("second SSD index = %d", dev2)
	}
	if tb.eng.SSDCount() != 2 {
		t.Fatalf("SSD count = %d", tb.eng.SSDCount())
	}
	content := pattern(80 << 10)
	f, err := tb.fsA.Create("on-ssd2", len(content))
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, e := range f.Extents() {
		n := e.Blocks * hostos.BlockSize
		if off+n > len(content) {
			n = len(content) - off
		}
		ssd2.Preload(e.LBA, content[off:off+n])
		off += n
	}
	tb.env.Spawn("app", func(p *sim.Proc) {
		res, err := tb.drv.SendFileDev(p, trace.NewBreakdown(), dev2, f, 0, len(content), connAB, FnNone)
		if err != nil || res.Status != 0 {
			t.Errorf("res=%+v err=%v", res, err)
		}
		tb.peer.waitFor(p, len(content))
	})
	tb.env.Run(-1)
	if !bytes.Equal(tb.peer.got, content) {
		t.Fatal("data did not come from SSD 2")
	}
}

func TestBadDeviceIndexFails(t *testing.T) {
	tb := newTestbed(t)
	f := tb.stageFile(t, "obj", pattern(8<<10))
	tb.env.Spawn("app", func(p *sim.Proc) {
		res, err := tb.drv.SendFileDev(p, trace.NewBreakdown(), 9, f, 0, 8<<10, connAB, FnNone)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Status == 0 {
			t.Error("command addressing SSD 9 succeeded")
		}
	})
	tb.env.Run(-1)
}

func TestCopyFileBetweenSSDs(t *testing.T) {
	tb := newTestbed(t)
	ssd2 := nvme.NewSSD(tb.env, tb.fabA, "a-ssd2", nvme.DefaultParams())
	dev2 := tb.eng.AttachSSD(ssd2, 2)

	content := pattern(192 << 10)
	src := tb.stageFile(t, "src", content)
	dst, err := tb.fsA.Create("dst", len(content))
	if err != nil {
		t.Fatal(err)
	}
	tb.env.Spawn("app", func(p *sim.Proc) {
		res, err := tb.drv.CopyFile(p, trace.NewBreakdown(), 0, src, 0, dev2, dst, 0, len(content), FnCRC32)
		if err != nil || res.Status != 0 {
			t.Errorf("copy: res=%+v err=%v", res, err)
			return
		}
		c := crc32.ChecksumIEEE(content)
		want := []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}
		if !bytes.Equal(res.Aux, want) {
			t.Errorf("copy CRC = %x", res.Aux)
		}
	})
	tb.env.Run(-1)
	// Verify the destination SSD's flash block by block.
	off := 0
	for _, lba := range dst.LBAs() {
		end := off + hostos.BlockSize
		if end > len(content) {
			end = len(content)
		}
		if !bytes.Equal(ssd2.PeekBlock(lba)[:end-off], content[off:end]) {
			t.Fatalf("dst flash mismatch at byte %d", off)
		}
		off = end
	}
	// No network traffic for an SSD->SSD copy.
	tx, rx, _, _, _, _ := tb.nicA.Stats()
	if tx != 0 || rx != 0 {
		t.Fatalf("copy used the NIC: tx=%d rx=%d", tx, rx)
	}
}

func TestAESKeySlots(t *testing.T) {
	run := func(slot uint64) []byte {
		tb := newTestbed(t)
		tb.eng.ProvisionAESKey(1, [32]byte{0x11})
		tb.eng.ProvisionAESKey(2, [32]byte{0x22})
		content := pattern(64 << 10)
		f := tb.stageFile(t, "obj", content)
		tb.env.Spawn("app", func(p *sim.Proc) {
			res, err := tb.drv.SendFileAux(p, trace.NewBreakdown(), 0, f, 0, len(content), connAB, FnAES256, slot)
			if err != nil || res.Status != 0 {
				t.Errorf("slot %d: res=%+v err=%v", slot, res, err)
			}
			tb.peer.waitFor(p, len(content))
		})
		tb.env.Run(-1)
		return tb.peer.got
	}
	content := pattern(64 << 10)
	ct1, ct2 := run(1), run(2)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("different key slots produced identical ciphertext")
	}
	plain1, _, _ := (&ndp.AES256{Key: [32]byte{0x11}}).Transform(ct1)
	plain2, _, _ := (&ndp.AES256{Key: [32]byte{0x22}}).Transform(ct2)
	if !bytes.Equal(plain1, content) || !bytes.Equal(plain2, content) {
		t.Fatal("key-slot ciphertexts do not decrypt with their keys")
	}
}

// Property: blockRuns covers exactly the requested block range, in
// order, with runs bounded by the per-command maximum, for arbitrary
// fragmented extent maps.
func TestBlockRunsCoverageProperty(t *testing.T) {
	f := func(runLens []uint8, offRaw, nRaw uint16) bool {
		var ext []ExtentEntry
		lba := uint64(1000)
		total := 0
		for _, rl := range runLens {
			blocks := int(rl%32) + 1
			ext = append(ext, ExtentEntry{LBA: lba, Blocks: uint32(blocks)})
			lba += uint64(blocks) + 7 // gaps between extents
			total += blocks
		}
		if total == 0 {
			return true
		}
		startBlk := int(offRaw) % total
		maxBytes := (total - startBlk) * nvme.BlockSize
		n := int(nRaw)%maxBytes + 1
		runs, err := blockRuns(ext, startBlk*nvme.BlockSize, n)
		if err != nil {
			return false
		}
		// Reconstruct the covered block list.
		var got []uint64
		bufOff := 0
		for _, r := range runs {
			if r.blocks > nvme.MaxBlocksPerCmd || r.bufOff != bufOff {
				return false
			}
			for b := 0; b < r.blocks; b++ {
				got = append(got, r.lba+uint64(b))
			}
			bufOff += r.blocks * nvme.BlockSize
		}
		// Expected: blocks startBlk .. startBlk+ceil(n/bs)-1 of the map.
		var all []uint64
		for _, e := range ext {
			for b := 0; b < int(e.Blocks); b++ {
				all = append(all, e.LBA+uint64(b))
			}
		}
		want := all[startBlk : startBlk+(n+nvme.BlockSize-1)/nvme.BlockSize]
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
