package hdc

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/sim"
)

// chunkMsg is one 64 KB (or final partial) chunk flowing through a
// command's source → NDP → destination pipeline.
type chunkMsg struct {
	buf  mem.Addr
	n    int
	seq  int
	last bool
}

// lbaRun is a contiguous block run within one NVMe command.
type lbaRun struct {
	lba    uint64
	blocks int
	bufOff int
}

// blockRuns maps the byte range [byteOff, byteOff+n) of a command's
// extent list to NVMe commands of at most MaxBlocksPerCmd blocks.
func blockRuns(ext []ExtentEntry, byteOff, n int) ([]lbaRun, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hdc: empty block range")
	}
	startBlk := byteOff / nvme.BlockSize
	numBlk := (byteOff%nvme.BlockSize + n + nvme.BlockSize - 1) / nvme.BlockSize
	var runs []lbaRun
	blk := 0
	bufOff := 0
	for _, e := range ext {
		if numBlk == 0 {
			break
		}
		if blk+int(e.Blocks) <= startBlk {
			blk += int(e.Blocks)
			continue
		}
		skip := 0
		if startBlk > blk {
			skip = startBlk - blk
		}
		avail := int(e.Blocks) - skip
		take := avail
		if take > numBlk {
			take = numBlk
		}
		lba := e.LBA + uint64(skip)
		for take > 0 {
			cmd := take
			if cmd > nvme.MaxBlocksPerCmd {
				cmd = nvme.MaxBlocksPerCmd
			}
			runs = append(runs, lbaRun{lba: lba, blocks: cmd, bufOff: bufOff})
			lba += uint64(cmd)
			bufOff += cmd * nvme.BlockSize
			take -= cmd
			numBlk -= cmd
		}
		startBlk = blk + int(e.Blocks)
		blk += int(e.Blocks)
	}
	if numBlk > 0 {
		return nil, fmt.Errorf("hdc: extent list short by %d blocks", numBlk)
	}
	return runs, nil
}

// fetchExtents DMAs a command's extent table from host memory into
// the command slot's private staging buffer (concurrent commands must
// not share staging).
func (e *Engine) fetchExtents(p *sim.Proc, cmdID uint32, addr uint64, count uint32) ([]ExtentEntry, error) {
	if count == 0 || count > 256 {
		return nil, fmt.Errorf("hdc: extent count %d out of range", count)
	}
	buf := e.extBufs[int(cmdID)%len(e.extBufs)]
	n := int(count) * ExtentEntrySize
	e.fab.MustDMA(p, e.port, buf, mem.Addr(addr), n)
	// View: DecodeExtents copies into its own []ExtentEntry, nothing
	// aliases the staging buffer after it returns.
	return DecodeExtents(e.fab.Mem().View(buf, n), int(count))
}

// execute runs one D2D command through the scoreboard pipeline:
// source device → optional NDP unit → destination device, chunk by
// chunk with a bounded in-flight window.
func (e *Engine) execute(p *sim.Proc, cmd Command) {
	if e.params.Faults.Hit(fault.HDCPoisonCpl) {
		// Pipeline parity error detected at admission: the completion
		// entry is poisoned with a transient status before any device
		// command is issued or stream byte consumed, so the driver's
		// re-issue of the same command is idempotent.
		e.finish(cmd.ID, CplStatusTransient, nil)
		return
	}
	var rec *CmdTrace
	if e.tracing {
		rec = &CmdTrace{Posted: p.Now()}
		e.traces[cmd.ID] = rec
	}
	var srcExt, dstExt []ExtentEntry
	var err error
	if cmd.SrcClass == ClassSSD {
		if srcExt, err = e.fetchExtents(p, cmd.ID, cmd.SrcArg, cmd.SrcCount); err != nil {
			e.finish(cmd.ID, CplStatusInvalid, nil)
			return
		}
	}
	if cmd.DstClass == ClassSSD {
		if dstExt, err = e.fetchExtents(p, cmd.ID, cmd.DstArg, cmd.DstCount); err != nil {
			e.finish(cmd.ID, CplStatusInvalid, nil)
			return
		}
	}
	if cmd.Fn != FnNone {
		if _, ok := e.banks[cmd.Fn]; !ok {
			e.finish(cmd.ID, CplStatusInvalid, nil)
			return
		}
	}
	if cmd.SrcClass == ClassSSD && int(cmd.SrcDev) >= len(e.nvmeCtls) {
		e.finish(cmd.ID, CplStatusInvalid, nil)
		return
	}
	if cmd.DstClass == ClassSSD && int(cmd.DstDev) >= len(e.nvmeCtls) {
		e.finish(cmd.ID, CplStatusInvalid, nil)
		return
	}

	window := sim.NewResource(e.env, fmt.Sprintf("%s-cmd%d-window", e.name, cmd.ID), e.params.Window)
	srcOut := sim.NewQueue[chunkMsg](e.env, "src-out")
	var dstIn *sim.Queue[chunkMsg]

	e.env.Spawn(fmt.Sprintf("%s-cmd%d-src", e.name, cmd.ID), func(sp *sim.Proc) {
		e.sourceStage(sp, cmd, srcExt, window, srcOut)
	})

	var aux []byte
	auxReady := sim.NewSignal(e.env)
	if cmd.Fn != FnNone {
		dstIn = sim.NewQueue[chunkMsg](e.env, "ndp-out")
		e.env.Spawn(fmt.Sprintf("%s-cmd%d-ndp", e.name, cmd.ID), func(np *sim.Proc) {
			e.ndpStage(np, cmd, window, srcOut, dstIn, auxReady)
		})
	} else {
		dstIn = srcOut
		auxReady.Fire([]byte(nil))
	}

	e.destStage(p, cmd, dstExt, window, dstIn)
	aux, _ = auxReady.Wait(p).([]byte)
	if rec != nil {
		rec.Done = p.Now()
	}
	e.finish(cmd.ID, CplStatusOK, aux)
}

// sourceStage produces chunks: NVMe reads (overlapped up to the
// window) or in-order NIC receives.
func (e *Engine) sourceStage(p *sim.Proc, cmd Command, ext []ExtentEntry,
	window *sim.Resource, out *sim.Queue[chunkMsg]) {
	total := int(cmd.Length)
	nChunks := (total + ChunkSize - 1) / ChunkSize
	if cmd.SrcClass == ClassNIC {
		// NIC receive: inherently serial per connection; the receive
		// controller gathers split packets into each chunk.
		off := 0
		for seq := 0; seq < nChunks; seq++ {
			window.Acquire(p)
			buf := e.allocChunk(p)
			n := total - off
			if n > ChunkSize {
				n = ChunkSize
			}
			entry := e.sb.AllocIssue(p, cmd.ID, seq, "nic", 'R')
			entry.Src = cmd.SrcArg
			entry.Dst = uint64(buf)
			sig := sim.NewSignal(e.env)
			e.ctrlFor(cmd.SrcArg).SubmitRecv(recvReq{connID: cmd.SrcArg, want: n, buf: buf, done: sig})
			sig.Wait(p)
			e.sb.DeferDone(entry)
			if seq == 0 && e.tracing {
				if rec, ok := e.traces[cmd.ID]; ok {
					rec.SrcDone = p.Now()
				}
			}
			out.Put(chunkMsg{buf: buf, n: n, seq: seq, last: seq == nChunks-1})
			off += n
		}
		return
	}

	// NVMe reads: issue up to the window in parallel, deliver in order.
	delivered := make([]*sim.Signal, nChunks+1)
	for i := range delivered {
		delivered[i] = sim.NewSignal(e.env)
	}
	delivered[0].Fire(nil)
	off := 0
	for seq := 0; seq < nChunks; seq++ {
		window.Acquire(p)
		buf := e.allocChunk(p)
		n := total - off
		if n > ChunkSize {
			n = ChunkSize
		}
		runs, err := blockRuns(ext, off, n)
		if err != nil {
			panic(err) // validated by the driver; a mismatch is a model bug
		}
		entry := e.sb.AllocIssue(p, cmd.ID, seq, "nvme", 'R')
		entry.Src = runs[0].lba
		entry.Dst = uint64(buf)
		seq, n, buf := seq, n, buf
		ctl := e.nvmeCtls[cmd.SrcDev]
		e.env.Spawn(fmt.Sprintf("%s-cmd%d-rd%d", e.name, cmd.ID, seq), func(rp *sim.Proc) {
			sigs := make([]*sim.Signal, len(runs))
			for i, r := range runs {
				sigs[i] = sim.NewSignal(e.env)
				ctl.Submit(nvmeReq{lba: r.lba, blocks: r.blocks, buf: buf + mem.Addr(r.bufOff), done: sigs[i]})
			}
			for _, s := range sigs {
				s.Wait(rp)
			}
			e.sb.DeferDone(entry)
			if seq == 0 && e.tracing {
				if rec, ok := e.traces[cmd.ID]; ok {
					rec.SrcDone = rp.Now()
				}
			}
			delivered[seq].Wait(rp)
			out.Put(chunkMsg{buf: buf, n: n, seq: seq, last: seq == nChunks-1})
			delivered[seq+1].Fire(nil)
		})
		off += n
	}
}

// ndpStage streams chunks through the command's NDP bank. Integrity
// and cipher units transform in place; size-changing units (gzip)
// re-chunk their output.
func (e *Engine) ndpStage(p *sim.Proc, cmd Command, window *sim.Resource,
	in, out *sim.Queue[chunkMsg], auxReady *sim.Signal) {
	bank := e.banks[cmd.Fn]
	streamerFor := e.streamer[cmd.Fn]
	if cmd.Fn == FnAES256 && cmd.AuxData != 0 {
		keyed, ok := e.aesKeys[cmd.AuxData]
		if !ok {
			panic(fmt.Sprintf("hdc: AES key slot %d not provisioned", cmd.AuxData))
		}
		streamerFor = keyed
	}
	stream := streamerFor.NewStream()
	mm := e.fab.Mem()
	sizeChanging := cmd.Fn == FnGZIP || cmd.Fn == FnGUNZIP

	// Output accumulator for size-changing functions.
	var outBuf mem.Addr
	outFill := 0
	outSeq := 0
	emit := func(ep *sim.Proc, data []byte, flushAll bool) {
		for len(data) > 0 || (flushAll && outFill > 0) {
			if outBuf == 0 {
				outBuf = e.allocChunk(ep)
			}
			take := ChunkSize - outFill
			if take > len(data) {
				take = len(data)
			}
			if take > 0 {
				mm.Write(outBuf+mem.Addr(outFill), data[:take])
				outFill += take
				data = data[take:]
			}
			if outFill == ChunkSize || (flushAll && len(data) == 0 && outFill > 0) {
				out.Put(chunkMsg{buf: outBuf, n: outFill, seq: outSeq, last: false})
				outBuf, outFill = 0, 0
				outSeq++
			}
			if flushAll && len(data) == 0 {
				return
			}
		}
	}

	seq := 0
	for {
		msg := in.Get(p)
		entry := e.sb.AllocIssue(p, cmd.ID, seq, "ndp", 'P')
		entry.Src = uint64(msg.buf)
		entry.Aux = uint64(cmd.Fn)
		// View: msg.buf is not freed (and the window credit not
		// released) until after StreamChunk returns, so the bytes are
		// stable across its simulated delays. In-place units mutating
		// the view write the same bytes mm.Write stores back below.
		data := mm.View(msg.buf, msg.n)
		outBytes, err := bank.StreamChunk(p, stream, data)
		if err != nil {
			panic(err)
		}
		e.sb.DeferDone(entry)
		seq++

		if sizeChanging {
			e.freeChunk(msg.buf)
			window.Release()
			emit(p, outBytes, false)
			if msg.last {
				tail, aux, err := bank.StreamClose(p, stream)
				if err != nil {
					panic(err)
				}
				emit(p, tail, true)
				// Terminal sentinel so the destination sees last=true.
				out.Put(chunkMsg{buf: 0, n: 0, seq: outSeq, last: true})
				auxReady.Fire(aux)
				return
			}
		} else {
			// In-place transform: same buffer continues downstream.
			if len(outBytes) != msg.n {
				panic("hdc: identity-size unit changed length")
			}
			mm.Write(msg.buf, outBytes)
			out.Put(msg)
			if msg.last {
				_, aux, err := bank.StreamClose(p, stream)
				if err != nil {
					panic(err)
				}
				auxReady.Fire(aux)
				return
			}
		}
	}
}

// destStage consumes chunks and issues destination device commands,
// overlapping completions; it returns when every write/send is done.
func (e *Engine) destStage(p *sim.Proc, cmd Command, ext []ExtentEntry,
	window *sim.Resource, in *sim.Queue[chunkMsg]) {
	sizeChanging := cmd.Fn == FnGZIP || cmd.Fn == FnGUNZIP
	outstanding := 0
	doneQ := sim.NewQueue[int](e.env, "dst-done")
	off := 0
	for {
		msg := in.Get(p)
		if msg.n > 0 {
			entry := e.sb.AllocIssue(p, cmd.ID, msg.seq, devName(cmd.DstClass), 'W')
			entry.Src = uint64(msg.buf)
			entry.Dst = cmd.DstArg
			sig := sim.NewSignal(e.env)
			if cmd.DstClass == ClassNIC {
				e.ctrlFor(cmd.DstArg).SubmitSend(sendReq{connID: cmd.DstArg, buf: msg.buf, length: msg.n, done: sig})
			} else {
				runs, err := blockRuns(ext, off, msg.n)
				if err != nil {
					panic(err)
				}
				inner := make([]*sim.Signal, len(runs))
				ctl := e.nvmeCtls[cmd.DstDev]
				for i, r := range runs {
					inner[i] = sim.NewSignal(e.env)
					ctl.Submit(nvmeReq{write: true, lba: r.lba, blocks: r.blocks,
						buf: msg.buf + mem.Addr(r.bufOff), done: inner[i]})
				}
				e.env.Spawn("dst-collect", func(cp *sim.Proc) {
					for _, s := range inner {
						s.Wait(cp)
					}
					sig.Fire(nil)
				})
			}
			outstanding++
			msgCopy := msg
			e.env.Spawn("dst-finish", func(fp *sim.Proc) {
				sig.Wait(fp)
				e.sb.DeferDone(entry)
				e.freeChunk(msgCopy.buf)
				if !sizeChanging {
					window.Release()
				}
				doneQ.Put(msgCopy.seq)
			})
			off += msg.n
		}
		if msg.last {
			break
		}
	}
	for i := 0; i < outstanding; i++ {
		doneQ.Get(p)
	}
}

func devName(class uint8) string {
	if class == ClassNIC {
		return "nic"
	}
	return "nvme"
}
