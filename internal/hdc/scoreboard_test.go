package hdc

import (
	"testing"

	"dcsctrl/internal/sim"
)

func TestScoreboardLifecycle(t *testing.T) {
	env := sim.NewEnv()
	sb := NewScoreboard(env, 8, 100*sim.Nanosecond)
	var states []EntryState
	env.Spawn("owner", func(p *sim.Proc) {
		e := sb.Alloc(p, 1, 0, "nvme", 'R')
		states = append(states, e.State)
		e.MarkReady(p)
		states = append(states, e.State)
		if err := e.Issue(p); err != nil {
			t.Error(err)
		}
		states = append(states, e.State)
		e.Done(p)
		states = append(states, e.State)
	})
	env.Run(-1)
	want := []EntryState{StateWait, StateReady, StateIssue, StateDone}
	for i, s := range want {
		if states[i] != s {
			t.Fatalf("state[%d] = %v, want %v", i, states[i], s)
		}
	}
	if issued, done := sb.Stats(); issued != 1 || done != 1 {
		t.Fatalf("stats: %d %d", issued, done)
	}
	if sb.Live() != 0 {
		t.Fatalf("live = %d", sb.Live())
	}
}

func TestScoreboardIssueBlockedByDependency(t *testing.T) {
	// §III-B: "the scoreboard does not issue the second NIC command
	// until the first NVMe command is completed".
	env := sim.NewEnv()
	sb := NewScoreboard(env, 8, 0)
	var issueErr error
	var issuedAt sim.Time
	env.Spawn("owner", func(p *sim.Proc) {
		read := sb.Alloc(p, 1, 0, "nvme", 'R')
		read.MarkReady(p)
		if err := read.Issue(p); err != nil {
			t.Error(err)
		}
		send := sb.Alloc(p, 1, 0, "nic", 'W', read)
		send.MarkReady(p)
		issueErr = send.Issue(p) // premature: dependency outstanding
		env.Spawn("device", func(dp *sim.Proc) {
			dp.Sleep(20 * sim.Microsecond)
			read.Done(dp)
		})
		send.WaitDeps(p) // delays until the read completes, then issues
		issuedAt = p.Now()
		send.Done(p)
	})
	env.Run(-1)
	if issueErr == nil {
		t.Fatal("issue with incomplete dependency accepted")
	}
	if issuedAt != 20*sim.Microsecond {
		t.Fatalf("issued at %v, want 20µs", issuedAt)
	}
}

func TestScoreboardCapacityBackpressure(t *testing.T) {
	env := sim.NewEnv()
	sb := NewScoreboard(env, 2, 0)
	var thirdAllocAt sim.Time
	env.Spawn("owner", func(p *sim.Proc) {
		a := sb.Alloc(p, 1, 0, "nvme", 'R')
		b := sb.Alloc(p, 1, 1, "nvme", 'R')
		for _, e := range []*Entry{a, b} {
			e.MarkReady(p)
			if err := e.Issue(p); err != nil {
				t.Error(err)
			}
		}
		env.Spawn("finisher", func(fp *sim.Proc) {
			fp.Sleep(15 * sim.Microsecond)
			a.Done(fp)
		})
		c := sb.Alloc(p, 1, 2, "nic", 'W') // blocks until a slot frees
		thirdAllocAt = p.Now()
		c.MarkReady(p)
		c.Issue(p)
		c.Done(p)
		b.Done(p)
	})
	env.Run(-1)
	if thirdAllocAt != 15*sim.Microsecond {
		t.Fatalf("third alloc at %v, want 15µs", thirdAllocAt)
	}
	if sb.MaxLive() != 2 {
		t.Fatalf("max live = %d", sb.MaxLive())
	}
}

func TestScoreboardStateStrings(t *testing.T) {
	for s, want := range map[EntryState]string{
		StateWait: "wait", StateReady: "ready", StateIssue: "issue", StateDone: "done",
	} {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
}

func TestScoreboardBadTransitionsPanic(t *testing.T) {
	env := sim.NewEnv()
	sb := NewScoreboard(env, 4, 0)
	paniced := 0
	env.Spawn("owner", func(p *sim.Proc) {
		e := sb.Alloc(p, 1, 0, "nvme", 'R')
		func() {
			defer func() {
				if recover() != nil {
					paniced++
				}
			}()
			e.Done(p) // wait -> done is illegal
		}()
		e.MarkReady(p)
		func() {
			defer func() {
				if recover() != nil {
					paniced++
				}
			}()
			e.MarkReady(p) // ready -> ready is illegal
		}()
	})
	env.Run(-1)
	if paniced != 2 {
		t.Fatalf("paniced = %d", paniced)
	}
}
