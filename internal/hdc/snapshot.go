package hdc

import (
	"fmt"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). A quiescent engine has parsed
// every doorbelled command (cmdHead == cmdTail), completed and
// retired all of them (submitted/finished empty, scoreboard live 0),
// and its device controllers hold no queued work. What persists is
// the cumulative cursors (command/completion counts drive future
// queue-slot and ring arithmetic), the chunk-pool free orders (which
// DDR3 chunk a future transfer stages through is schedule state),
// per-connection TCP sequence state and buffered receive extents,
// ring cursors, the BRAM header-slot rotation, and counters.
// Setup-determined structure — controller lists, connection
// ownership, NDP streamers, AES keys — is rebuilt by running the
// identical configuration and only verified here.

// SnapSave encodes the engine state. Controllers iterate in
// attachment order, connections in sorted-ID order.
func (e *Engine) SnapSave(w *snap.Writer) error {
	if e.dead {
		return fmt.Errorf("hdc: %s: checkpoint of a failed engine is unsupported", e.name)
	}
	if e.cmdHead != e.cmdTail {
		return fmt.Errorf("hdc: %s: checkpoint with unparsed commands (head=%d tail=%d)", e.name, e.cmdHead, e.cmdTail)
	}
	if e.kickQueued {
		return fmt.Errorf("hdc: %s: checkpoint with a queued parser kick", e.name)
	}
	if len(e.submitted) != 0 || len(e.finished) != 0 {
		return fmt.Errorf("hdc: %s: checkpoint with %d submitted / %d finished commands in flight",
			e.name, len(e.submitted), len(e.finished))
	}
	if e.sb.live != 0 || len(e.sb.pendDone) != 0 {
		return fmt.Errorf("hdc: %s: checkpoint with %d live / %d retiring scoreboard entries",
			e.name, e.sb.live, len(e.sb.pendDone))
	}
	w.U64(e.cmdTail)
	w.U64(e.cplCount)
	w.I64(e.cmdsDone)
	w.Int(e.nextNICRR)
	w.U32(uint32(len(e.connOwner))) // setup-determined; verified at load
	if err := e.chunks.SnapSave(w); err != nil {
		return fmt.Errorf("hdc: %s chunks: %w", e.name, err)
	}
	if err := e.recvPool.SnapSave(w); err != nil {
		return fmt.Errorf("hdc: %s recvPool: %w", e.name, err)
	}
	w.I64(e.sb.issued)
	w.I64(e.sb.done)
	w.Int(e.sb.maxLive)

	w.U32(uint32(len(e.nvmeCtls)))
	for _, c := range e.nvmeCtls {
		if err := c.snapSave(w); err != nil {
			return err
		}
	}
	w.U32(uint32(len(e.nicCtls)))
	for _, c := range e.nicCtls {
		if err := c.snapSave(w); err != nil {
			return err
		}
	}
	return nil
}

// SnapLoad overlays the captured state onto a freshly built engine
// with the identical device attachments and registered connections.
func (e *Engine) SnapLoad(r *snap.Reader) error {
	tail := r.U64()
	e.cplCount = r.U64()
	e.cmdsDone = r.I64()
	rr := r.Int()
	nConn := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	e.cmdHead, e.cmdTail = tail, tail
	if rr != e.nextNICRR {
		return fmt.Errorf("hdc: %s: snapshot NIC round-robin cursor %d, engine has %d (connection setup differs)",
			e.name, rr, e.nextNICRR)
	}
	if nConn != len(e.connOwner) {
		return fmt.Errorf("hdc: %s: snapshot has %d connections, engine has %d", e.name, nConn, len(e.connOwner))
	}
	if err := e.chunks.SnapLoad(r); err != nil {
		return err
	}
	if err := e.recvPool.SnapLoad(r); err != nil {
		return err
	}
	e.sb.issued = r.I64()
	e.sb.done = r.I64()
	e.sb.maxLive = r.Int()

	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.nvmeCtls) {
		return fmt.Errorf("hdc: %s: snapshot has %d NVMe controllers, engine has %d", e.name, n, len(e.nvmeCtls))
	}
	for _, c := range e.nvmeCtls {
		if err := c.snapLoad(r); err != nil {
			return err
		}
	}
	n = int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.nicCtls) {
		return fmt.Errorf("hdc: %s: snapshot has %d NIC controllers, engine has %d", e.name, n, len(e.nicCtls))
	}
	for _, c := range e.nicCtls {
		if err := c.snapLoad(r); err != nil {
			return err
		}
	}
	return r.Err()
}

func (c *NVMeCtrl) snapSave(w *snap.Writer) error {
	if l := c.reqQ.Len(); l != 0 {
		return fmt.Errorf("hdc: checkpoint with %d queued NVMe requests", l)
	}
	w.Int(c.prpNext)
	w.I64(c.cmds)
	w.I64(c.retries)
	return c.ring.SnapSave(w)
}

func (c *NVMeCtrl) snapLoad(r *snap.Reader) error {
	c.prpNext = r.Int()
	c.cmds = r.I64()
	c.retries = r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	return c.ring.SnapLoad(r)
}

func (c *NICCtrl) snapSave(w *snap.Writer) error {
	if l := c.sendQ.Len(); l != 0 {
		return fmt.Errorf("hdc: q%d: checkpoint with %d queued sends", c.qid, l)
	}
	if l := c.recvQ.Len(); l != 0 {
		return fmt.Errorf("hdc: q%d: checkpoint with %d queued receives", c.qid, l)
	}
	if len(c.pendTx) != 0 {
		return fmt.Errorf("hdc: q%d: checkpoint with %d unacknowledged transmits", c.qid, len(c.pendTx))
	}
	w.Int(c.hdrNext)
	w.I64(c.sendJobs)
	w.I64(c.recvPkts)
	w.I64(c.gatheredBytes)
	if err := c.send.SnapSave(w); err != nil {
		return err
	}
	if err := c.recv.SnapSave(w); err != nil {
		return err
	}
	ids := sim.SortedKeys(c.conns)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		cn := c.conns[id]
		if cn.waiter != nil {
			return fmt.Errorf("hdc: q%d: checkpoint with a receive waiter on connection %d", c.qid, id)
		}
		w.U64(id)
		w.U32(cn.txSeq)
		w.U32(cn.rxSeq)
		// Buffered, not-yet-consumed receive extents (live chunk data a
		// future RecvFile drains first), in arrival order.
		exts := cn.rxBufs[cn.rxHead:]
		w.U32(uint32(len(exts)))
		for _, x := range exts {
			w.U64(uint64(x.addr))
			w.Int(x.n)
			w.U64(uint64(x.buf))
		}
		w.Int(cn.rxALen)
	}
	return nil
}

func (c *NICCtrl) snapLoad(r *snap.Reader) error {
	c.hdrNext = r.Int()
	c.sendJobs = r.I64()
	c.recvPkts = r.I64()
	c.gatheredBytes = r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if err := c.send.SnapLoad(r); err != nil {
		return err
	}
	if err := c.recv.SnapLoad(r); err != nil {
		return err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(c.conns) {
		return fmt.Errorf("hdc: q%d: snapshot has %d connections, controller has %d", c.qid, n, len(c.conns))
	}
	for i := 0; i < n; i++ {
		id := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		cn, ok := c.conns[id]
		if !ok {
			return fmt.Errorf("hdc: q%d: snapshot connection %d absent on controller", c.qid, id)
		}
		cn.txSeq = r.U32()
		cn.rxSeq = r.U32()
		ne := int(r.U32())
		if err := r.Err(); err != nil {
			return err
		}
		cn.rxBufs = cn.rxBufs[:0]
		cn.rxHead = 0
		for j := 0; j < ne; j++ {
			cn.rxBufs = append(cn.rxBufs, rxExtent{
				addr: mem.Addr(r.U64()),
				n:    r.Int(),
				buf:  mem.Addr(r.U64()),
			})
		}
		cn.rxALen = r.Int()
	}
	return r.Err()
}

// SnapSave encodes the driver state. A quiescent driver has every
// library call returned: no command waiting on a completion and no
// queue slot held.
func (d *Driver) SnapSave(w *snap.Writer) error {
	if d.outstanding != 0 || len(d.waiting) != 0 {
		return fmt.Errorf("hdc: driver checkpoint with %d outstanding commands", d.outstanding)
	}
	w.U32(d.nextID)
	w.U64(d.tail)
	w.U64(d.cplHead)
	w.Bool(d.failed)
	w.I64(d.retries)
	w.I64(d.timeouts)
	w.I64(d.orphans)
	return nil
}

// SnapLoad overlays the captured driver state.
func (d *Driver) SnapLoad(r *snap.Reader) error {
	if d.outstanding != 0 || len(d.waiting) != 0 {
		return fmt.Errorf("hdc: driver restore with %d outstanding commands", d.outstanding)
	}
	d.nextID = r.U32()
	d.tail = r.U64()
	d.cplHead = r.U64()
	d.failed = r.Bool()
	d.retries = r.I64()
	d.timeouts = r.I64()
	d.orphans = r.I64()
	return r.Err()
}
