package core

import "fmt"

// Scalability is the paper's Figure 13 projection: measure CPU cost
// per unit of delivered bandwidth at 10 GbE, then extrapolate to a
// 40-Gbps NIC and six SSDs under a fixed core budget. Device time
// scales with the added hardware; CPU cost per byte is the invariant.
type Scalability struct {
	// CoresPerGbps is the measured CPU cost: cores consumed per Gbps
	// of delivered application throughput.
	CoresPerGbps float64
}

// NewScalability derives the projection from a measured operating
// point: utilization (0..1 across cores) at measuredGbps.
func NewScalability(measuredGbps, utilization float64, cores int) (Scalability, error) {
	if measuredGbps <= 0 || utilization <= 0 || cores <= 0 {
		return Scalability{}, fmt.Errorf("core: bad operating point (%.2f Gbps, %.2f util, %d cores)",
			measuredGbps, utilization, cores)
	}
	return Scalability{CoresPerGbps: utilization * float64(cores) / measuredGbps}, nil
}

// CoresAt returns the cores needed to sustain gbps.
func (s Scalability) CoresAt(gbps float64) float64 {
	return s.CoresPerGbps * gbps
}

// MaxGbps returns the deliverable throughput with coreBudget cores,
// capped at the wire rate.
func (s Scalability) MaxGbps(coreBudget, wireGbps float64) float64 {
	if s.CoresPerGbps <= 0 {
		return wireGbps
	}
	cpuBound := coreBudget / s.CoresPerGbps
	if cpuBound > wireGbps {
		return wireGbps
	}
	return cpuBound
}

// Curve returns (gbps, cores) pairs from 0 to maxGbps in steps.
func (s Scalability) Curve(maxGbps float64, steps int) [][2]float64 {
	if steps < 1 {
		steps = 1
	}
	out := make([][2]float64, 0, steps+1)
	for i := 0; i <= steps; i++ {
		g := maxGbps * float64(i) / float64(steps)
		out = append(out, [2]float64{g, s.CoresAt(g)})
	}
	return out
}
