package core

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/shard"
	"dcsctrl/internal/trace"
)

// RackParams configures a multi-node rack on a switched fabric
// (internal/ether) executed by the conservative parallel kernel
// (internal/sim/shard). The two-node Cluster stays the thin special
// case for the paper's microbenchmarks; Rack is the scale-out path.
type RackParams struct {
	Nodes   int // node count (1..65536)
	Domains int // shard count; default 1 (serial reference schedule)
	Workers int // worker goroutines per window; default = Domains

	Kind   Config         // every node's configuration; default SWOpt
	Spec   ether.RackSpec // fabric shape; Nodes is filled in, link rate/latency default from the NIC
	Params Params         // per-node device parameters; zero value takes rack defaults

	// FaultProfile, when it has rules, arms fault injection with one
	// injector per node, seeded from FaultSeed and the node index. The
	// injectors must be per-node: nodes in different domains draw from
	// their streams concurrently, and a shared injector would be both a
	// data race and a decomposition-dependent draw order.
	FaultProfile fault.Profile
	FaultSeed    uint64
}

// Rack is N nodes on a switched ToR/spine fabric, sharded across
// parallel execution domains.
type Rack struct {
	Topo   *ether.Topology
	Fabric *ether.FabricSim
	Kernel *shard.Kernel
	Nodes  []*Node

	nextConn uint64
	ports    map[[2]int]*PortSpace // per directed (client, server) pair
}

// rackNodeParams derives the per-node parameter set: explicit Params
// are used as given; the zero value takes the calibrated defaults with
// the per-node memory arenas shrunk (a rack instantiates every region
// N times, and rack workloads bound their in-flight footprint).
func rackNodeParams(rp RackParams) Params {
	p := rp.Params
	if p.NIC.WireBps == 0 {
		p = DefaultParams()
		p.HostArenaBytes = 8 << 20
		p.GPU.VRAMBytes = 8 << 20
	}
	return p
}

// NewRack builds the topology, the shard kernel, and the nodes, and
// wires every NIC to the fabric.
func NewRack(rp RackParams) *Rack {
	if rp.Nodes < 1 {
		panic("core: rack needs at least one node")
	}
	if rp.Domains < 1 {
		rp.Domains = 1
	}
	if rp.Domains > rp.Nodes {
		rp.Domains = rp.Nodes
	}
	if rp.Workers < 1 {
		rp.Workers = rp.Domains
	}
	p := rackNodeParams(rp)

	spec := rp.Spec
	spec.Nodes = rp.Nodes
	if spec.NodeBps == 0 {
		spec.NodeBps = p.NIC.WireBps
	}
	if spec.NodeLinkLat == 0 {
		spec.NodeLinkLat = p.NIC.PropDelay
	}
	topo := ether.NewTopology(spec)
	fab := ether.NewFabricSim(topo)
	k := shard.NewKernel(fab, topo.Lookahead(), rp.Workers)

	r := &Rack{
		Topo:   topo,
		Fabric: fab,
		Kernel: k,
		ports:  map[[2]int]*PortSpace{},
	}
	domains := make([]*shard.Domain, rp.Domains)
	for d := range domains {
		domains[d] = k.AddDomain()
	}
	for i := 0; i < rp.Nodes; i++ {
		d := domains[i*rp.Domains/rp.Nodes]
		np := p
		if len(rp.FaultProfile.Rules) > 0 {
			np.Faults = fault.NewInjector(rp.FaultSeed^(uint64(i+1)*0x9E3779B97F4A7C15), rp.FaultProfile)
		}
		node := NewNode(d.Env(), fmt.Sprintf("n%03d", i), rp.Kind, np)
		out := k.AddNode(i, d, node.NIC.InjectFrame)
		node.NIC.AttachUplink(out)
		r.Nodes = append(r.Nodes, node)
	}
	return r
}

// OpenConn establishes a TCP-lite connection from client to server
// (node indices). dataPlane selects engine ownership exactly as
// Cluster.OpenConn does; connection IDs are rack-global so a node can
// carry connections to many peers.
func (r *Rack) OpenConn(client, server int, dataPlane bool) Conn {
	r.nextConn++
	id := r.nextConn
	key := [2]int{client, server}
	ps := r.ports[key]
	if ps == nil {
		ps = &PortSpace{}
		r.ports[key] = ps
	}
	srvPort, cliPort := ps.AllocPair()
	serverFlow := ether.Flow{
		SrcMAC: r.Topo.NodeMAC(server), DstMAC: r.Topo.NodeMAC(client),
		SrcIP: r.Topo.NodeIP(server), DstIP: r.Topo.NodeIP(client),
		SrcPort: srvPort, DstPort: cliPort,
	}
	s, c := r.Nodes[server], r.Nodes[client]
	engineOwned := dataPlane && s.Kind == DCSCtrl
	if engineOwned {
		s.Driver.Connect(id, serverFlow, 0, 0)
	} else {
		s.OpenHostConn(id, serverFlow)
	}
	if dataPlane && c.Kind == DCSCtrl {
		c.Driver.Connect(id, serverFlow.Reverse(), 0, 0)
	} else {
		c.OpenHostConn(id, serverFlow.Reverse())
	}
	return Conn{ID: id, ServerData: engineOwned}
}

// NodeSend transmits payload bytes from a node on a host-terminated
// connection. The calling process must run on the node's own domain
// Env (spawn it via r.Nodes[node].Env).
func (r *Rack) NodeSend(p *sim.Proc, node int, conn Conn, payload []byte) {
	n := r.Nodes[node]
	buf := n.allocHost(uint64(len(payload)) + 4096)
	n.MM.Write(buf, payload)
	n.hostNetSend(p, trace.NewBreakdown(), conn.ID, buf, len(payload))
}

// NodeRecv blocks until the node has received want bytes on the
// connection and returns them. Same domain-affinity rule as NodeSend.
func (r *Rack) NodeRecv(p *sim.Proc, node int, conn Conn, want int) []byte {
	return r.Nodes[node].hostNetRecv(p, trace.NewBreakdown(), conn.ID, want)
}

// Run executes the rack to quiescence (or to horizon; negative runs to
// exhaustion) and returns the final window end.
func (r *Rack) Run(horizon sim.Time) sim.Time { return r.Kernel.Run(horizon) }

// Stats returns the shard kernel's synchronization counters.
func (r *Rack) Stats() shard.Stats { return r.Kernel.Stats() }

// FabricStats returns delivered frames, delivered wire bytes, and
// unroutable drops on the switched fabric.
func (r *Rack) FabricStats() (frames, wireBytes, drops int64) { return r.Fabric.Stats() }

var _ nic.Uplink = (*shard.Outbox)(nil)
