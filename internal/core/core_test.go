package core

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"dcsctrl/internal/hostos"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*13 + i>>9)
	}
	return out
}

// runSend executes one SendFileOp on a fresh cluster of the given
// kind and returns the result plus the bytes the client received.
func runSend(t *testing.T, kind Config, nbytes int, proc Processing) (OpResult, []byte) {
	t.Helper()
	env := sim.NewEnv()
	cl := NewCluster(env, kind, DefaultParams())
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	content := pattern(nbytes)
	f, err := cl.Server.StageFile("obj", content)
	if err != nil {
		t.Fatal(err)
	}
	conn := cl.OpenConn(true)
	var res OpResult
	var got []byte
	env.Spawn("server-app", func(p *sim.Proc) {
		res, err = cl.Server.SendFileOp(p, f, 0, nbytes, conn.ID, proc)
	})
	env.Spawn("client-app", func(p *sim.Proc) {
		got = cl.ClientRecv(p, conn, nbytes)
	})
	env.Run(-1)
	if err != nil {
		t.Fatalf("%v SendFileOp: %v", kind, err)
	}
	return res, got
}

func TestSendFileAllConfigsDeliverSameBytes(t *testing.T) {
	content := pattern(96 << 10)
	for _, kind := range []Config{Vanilla, SWOpt, SWP2P, DevIntegration, DCSCtrl} {
		_, got := runSend(t, kind, len(content), ProcNone)
		if !bytes.Equal(got, content) {
			t.Fatalf("%v: client bytes differ", kind)
		}
	}
}

func TestSendFileMD5DigestAgreesEverywhere(t *testing.T) {
	content := pattern(128 << 10)
	want := md5.Sum(content)
	for _, kind := range []Config{SWOpt, SWP2P, DevIntegration, DCSCtrl} {
		res, got := runSend(t, kind, len(content), ProcMD5)
		if !bytes.Equal(res.Digest, want[:]) {
			t.Fatalf("%v digest = %x, want %x", kind, res.Digest, want)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("%v payload corrupted", kind)
		}
	}
}

func TestLatencyOrderingSSDToNIC(t *testing.T) {
	// Figure 11a shape: DCS-ctrl < SW-ctrl P2P ≈ SW-opt (no P2P target
	// exists for SSD->NIC, so SW-P2P degenerates), and the hardware
	// control path saves a sizable fraction.
	const n = 4096
	swOpt, _ := runSend(t, SWOpt, n, ProcNone)
	swP2P, _ := runSend(t, SWP2P, n, ProcNone)
	dcs, _ := runSend(t, DCSCtrl, n, ProcNone)
	integ, _ := runSend(t, DevIntegration, n, ProcNone)

	if swP2P.Latency != swOpt.Latency {
		t.Fatalf("SW-P2P (%v) should equal SW-opt (%v) without a P2P target", swP2P.Latency, swOpt.Latency)
	}
	if dcs.Latency >= swP2P.Latency {
		t.Fatalf("DCS (%v) not faster than SW-P2P (%v)", dcs.Latency, swP2P.Latency)
	}
	red := 1 - dcs.Latency.Seconds()/swP2P.Latency.Seconds()
	if red < 0.20 || red > 0.65 {
		t.Fatalf("latency reduction %.0f%% outside the paper's ballpark (~42%%)", red*100)
	}
	if integ.Latency > dcs.Latency+10*sim.Microsecond {
		t.Fatalf("integration (%v) much slower than DCS (%v)", integ.Latency, dcs.Latency)
	}
}

func TestLatencyOrderingWithProcessing(t *testing.T) {
	// Figure 11b shape: baselines pay GPU control + copies; SW-P2P
	// saves the copies but not the control; DCS with NDP wins big.
	// The paper's microbenchmark is per-4KB-command (§IV-C).
	const n = 4096
	swOpt, _ := runSend(t, SWOpt, n, ProcMD5)
	swP2P, _ := runSend(t, SWP2P, n, ProcMD5)
	dcs, _ := runSend(t, DCSCtrl, n, ProcMD5)

	if swP2P.Latency >= swOpt.Latency {
		t.Fatalf("SW-P2P (%v) not faster than SW-opt (%v) with GPU processing", swP2P.Latency, swOpt.Latency)
	}
	if dcs.Latency >= swP2P.Latency {
		t.Fatalf("DCS (%v) not faster than SW-P2P (%v)", dcs.Latency, swP2P.Latency)
	}
	// GPU-control overheads the baselines pay must be visible.
	if swOpt.Breakdown.Get(trace.CatGPUCtrl) == 0 || swOpt.Breakdown.Get(trace.CatGPUCopy) == 0 {
		t.Fatal("SW-opt breakdown missing GPU phases")
	}
	if dcs.Breakdown.Get(trace.CatGPUCtrl) != 0 {
		t.Fatal("DCS breakdown contains GPU control")
	}
}

func TestRecvFileWritesThroughToFlash(t *testing.T) {
	for _, kind := range []Config{SWOpt, DCSCtrl} {
		env := sim.NewEnv()
		cl := NewCluster(env, kind, DefaultParams())
		content := pattern(100 << 10)
		f, err := cl.Server.FS.Create("upload", len(content))
		if err != nil {
			t.Fatal(err)
		}
		conn := cl.OpenConn(true)
		var res OpResult
		env.Spawn("client-app", func(p *sim.Proc) {
			cl.ClientSend(p, conn, content)
		})
		env.Spawn("server-app", func(p *sim.Proc) {
			res, err = cl.Server.RecvFileOp(p, conn.ID, f, 0, len(content), ProcCRC32)
		})
		env.Run(-1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		c := crc32.ChecksumIEEE(content)
		want := []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}
		if !bytes.Equal(res.Digest, want) {
			t.Fatalf("%v digest = %x, want %x", kind, res.Digest, want)
		}
		if got := cl.Server.ReadBack(f); !bytes.Equal(got, content) {
			t.Fatalf("%v: flash contents differ", kind)
		}
	}
}

func TestVanillaCostsExceedOptimized(t *testing.T) {
	// Figure 8 shape: the stock kernel burns more kernel-side CPU than
	// the optimized stack on the same SSD->NIC task.
	busy := func(kind Config) sim.Time {
		env := sim.NewEnv()
		cl := NewCluster(env, kind, DefaultParams())
		content := pattern(64 << 10)
		f, _ := cl.Server.StageFile("obj", content)
		conn := cl.OpenConn(true)
		env.Spawn("server-app", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcNone)
			}
		})
		env.Spawn("client-app", func(p *sim.Proc) {
			cl.ClientRecv(p, conn, 10*len(content))
		})
		env.Run(-1)
		return cl.Server.Host.Acct.TotalBusy() - cl.Server.Host.Acct.Busy(trace.CatUser)
	}
	v, o, d := busy(Vanilla), busy(SWOpt), busy(DCSCtrl)
	if v <= o {
		t.Fatalf("vanilla kernel CPU (%v) not above optimized (%v)", v, o)
	}
	if d >= o {
		t.Fatalf("DCS kernel CPU (%v) not below optimized (%v)", d, o)
	}
}

func TestCPUUtilizationReduction(t *testing.T) {
	// Figure 12 shape: at identical offered work, DCS-ctrl uses far
	// less host CPU than software-controlled P2P.
	busy := func(kind Config) sim.Time {
		env := sim.NewEnv()
		cl := NewCluster(env, kind, DefaultParams())
		content := pattern(256 << 10)
		f, _ := cl.Server.StageFile("obj", content)
		conn := cl.OpenConn(true)
		env.Spawn("server-app", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				if _, err := cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcMD5); err != nil {
					t.Error(err)
					return
				}
			}
		})
		env.Spawn("client-app", func(p *sim.Proc) {
			cl.ClientRecv(p, conn, 8*len(content))
		})
		env.Run(-1)
		return cl.Server.Host.Acct.TotalBusy()
	}
	p2p := busy(SWP2P)
	dcs := busy(DCSCtrl)
	ratio := dcs.Seconds() / p2p.Seconds()
	if ratio > 0.6 {
		t.Fatalf("DCS CPU %.2fx of SW-P2P; paper reports ~0.48x", ratio)
	}
}

func TestNoHostDRAMDataPathUnderDCS(t *testing.T) {
	env := sim.NewEnv()
	cl := NewCluster(env, DCSCtrl, DefaultParams())
	content := pattern(256 << 10)
	f, _ := cl.Server.StageFile("obj", content)
	conn := cl.OpenConn(true)
	env.Spawn("server-app", func(p *sim.Proc) {
		cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcMD5)
	})
	env.Spawn("client-app", func(p *sim.Proc) {
		cl.ClientRecv(p, conn, len(content))
	})
	env.Run(-1)
	// Control-plane traffic (commands, completions, extent tables) is
	// tiny; the 256 KB payload must not cross host DRAM.
	if hb := cl.Server.Fab.HostBytes(); hb > 16<<10 {
		t.Fatalf("host DRAM saw %d bytes under DCS", hb)
	}
	if p2p := cl.Server.Fab.P2PBytes(); p2p < int64(len(content)) {
		t.Fatalf("P2P moved only %d bytes", p2p)
	}
}

func TestTimelineTrace(t *testing.T) {
	env := sim.NewEnv()
	cl := NewCluster(env, SWOpt, DefaultParams())
	content := pattern(4096)
	f, _ := cl.Server.StageFile("obj", content)
	conn := cl.OpenConn(true)
	cl.Server.StartTrace()
	env.Spawn("server-app", func(p *sim.Proc) {
		cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcNone)
	})
	env.Spawn("client-app", func(p *sim.Proc) {
		cl.ClientRecv(p, conn, len(content))
	})
	env.Run(-1)
	events := cl.Server.StopTrace()
	if len(events) < 4 {
		t.Fatalf("timeline has %d events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("timeline not monotonic")
		}
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func(kind Config) string {
		env := sim.NewEnv()
		cl := NewCluster(env, kind, DefaultParams())
		content := pattern(64 << 10)
		f, _ := cl.Server.StageFile("obj", content)
		conn := cl.OpenConn(true)
		var lats []sim.Time
		env.Spawn("server-app", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				res, _ := cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcMD5)
				lats = append(lats, res.Latency)
			}
		})
		env.Spawn("client-app", func(p *sim.Proc) {
			cl.ClientRecv(p, conn, 3*len(content))
		})
		env.Run(-1)
		return fmt.Sprint(lats, env.Now())
	}
	for _, kind := range []Config{SWOpt, DCSCtrl} {
		if a, b := run(kind), run(kind); a != b {
			t.Fatalf("%v nondeterministic:\n%s\n%s", kind, a, b)
		}
	}
}

func TestMultiSSDDistributionAndTransfer(t *testing.T) {
	for _, kind := range []Config{SWOpt, DCSCtrl} {
		env := sim.NewEnv()
		params := DefaultParams()
		params.NumSSDs = 4
		cl := NewClusterWithClient(env, kind, SWOpt, params)
		if got := len(cl.Server.SSDs); got != 4 {
			t.Fatalf("%v: %d SSDs", kind, got)
		}
		// Files land round-robin on distinct devices.
		var files []*hostos.File
		contents := make([][]byte, 6)
		for i := 0; i < 6; i++ {
			contents[i] = pattern(48<<10 + i*4096)
			f, err := cl.Server.StageFile(fmt.Sprintf("f%d", i), contents[i])
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		devs := map[uint8]bool{}
		for _, f := range files {
			devs[cl.Server.DevOf(f)] = true
		}
		if len(devs) != 4 {
			t.Fatalf("%v: files on %d devices, want 4", kind, len(devs))
		}
		conn := cl.OpenConn(true)
		total := 0
		env.Spawn("server", func(p *sim.Proc) {
			for i, f := range files {
				if _, err := cl.Server.SendFileOp(p, f, 0, len(contents[i]), conn.ID, ProcNone); err != nil {
					t.Error(err)
					return
				}
			}
		})
		var got []byte
		for _, c := range contents {
			total += len(c)
		}
		env.Spawn("client", func(p *sim.Proc) {
			got = cl.ClientRecv(p, conn, total)
		})
		env.Run(-1)
		var want []byte
		for _, c := range contents {
			want = append(want, c...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: multi-SSD stream corrupted", kind)
		}
	}
}

func TestMultiSSDUploadLandsOnRightDevice(t *testing.T) {
	env := sim.NewEnv()
	params := DefaultParams()
	params.NumSSDs = 3
	cl := NewClusterWithClient(env, DCSCtrl, SWOpt, params)
	// Burn two slots so the upload file lands on device 2.
	cl.Server.CreateFile("a", 4096)
	cl.Server.CreateFile("b", 4096)
	f, err := cl.Server.CreateFile("upload", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Server.DevOf(f) != 2 {
		t.Fatalf("upload on device %d", cl.Server.DevOf(f))
	}
	content := pattern(64 << 10)
	conn := cl.OpenConn(true)
	env.Spawn("client", func(p *sim.Proc) { cl.ClientSend(p, conn, content) })
	env.Spawn("server", func(p *sim.Proc) {
		if _, err := cl.Server.RecvFileOp(p, conn.ID, f, 0, len(content), ProcCRC32); err != nil {
			t.Error(err)
		}
	})
	env.Run(-1)
	if !bytes.Equal(cl.Server.ReadBack(f), content) {
		t.Fatal("upload contents wrong on device 2")
	}
	// The other devices' flash stayed untouched for these LBAs.
	if c0, _, w0 := cl.Server.SSDs[0].Stats(); c0 != 0 && w0 != 0 {
		t.Fatalf("device 0 wrote %d bytes", w0)
	}
}

func TestMultiSSDAggregateReadBandwidth(t *testing.T) {
	// Reads striped across 4 SSDs complete much faster than the same
	// bytes from one SSD — the hardware scaling Figure 13 banks on.
	// Measured through the host storage path so the NIC is not in the
	// way.
	elapsed := func(numSSD int) sim.Time {
		env := sim.NewEnv()
		params := DefaultParams()
		params.NumSSDs = numSSD
		cl := NewClusterWithClient(env, SWOpt, SWOpt, params)
		const per = 512 << 10
		for i := 0; i < 4; i++ {
			f, _ := cl.Server.StageFile(fmt.Sprintf("f%d", i), pattern(per))
			ff := f
			env.Spawn("reader", func(p *sim.Proc) {
				buf := cl.Server.allocHost(per)
				cl.Server.hostReadFile(p, trace.NewBreakdown(), ff, 0, per, buf)
			})
		}
		return env.Run(-1)
	}
	t1, t4 := elapsed(1), elapsed(4)
	// Speedup is real but far below 4x: per-command software costs
	// (submit, IRQ, completion) don't scale with added devices — the
	// host-centric bottleneck that motivates the paper (§II-B).
	if float64(t4) > 0.8*float64(t1) {
		t.Fatalf("4 SSDs (%v) not faster than 1 (%v)", t4, t1)
	}
	if float64(t4) < 0.3*float64(t1) {
		t.Fatalf("4 SSDs scaled too ideally (%v vs %v): software costs missing", t4, t1)
	}
}

func TestVanillaPageCacheHits(t *testing.T) {
	// The stock kernel's second read of the same range comes from the
	// page cache: faster, and no additional SSD commands.
	env := sim.NewEnv()
	cl := NewCluster(env, Vanilla, DefaultParams())
	content := pattern(64 << 10)
	f, _ := cl.Server.StageFile("obj", content)
	conn := cl.OpenConn(true)
	var lat1, lat2 sim.Time
	env.Spawn("server", func(p *sim.Proc) {
		r1, _ := cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcNone)
		r2, _ := cl.Server.SendFileOp(p, f, 0, len(content), conn.ID, ProcNone)
		lat1, lat2 = r1.Latency, r2.Latency
	})
	var got []byte
	env.Spawn("client", func(p *sim.Proc) { got = cl.ClientRecv(p, conn, 2*len(content)) })
	env.Run(-1)
	if lat2 >= lat1 {
		t.Fatalf("cached read (%v) not faster than cold (%v)", lat2, lat1)
	}
	cmds, _, _ := cl.Server.SSD.Stats()
	if cmds != 1 { // one 16-block command for the cold read; none warm
		t.Fatalf("SSD commands = %d, want 1", cmds)
	}
	want := append(append([]byte(nil), content...), content...)
	if !bytes.Equal(got, want) {
		t.Fatal("cache-served bytes differ")
	}
	hits, _ := cl.Server.FS.CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// TestConnPortAllocation pins the connection port scheme (ports.go):
// the first epoch starts at (8000, 40000), the client-port wrap moves
// to the next server port instead of silently reusing pairs, and true
// exhaustion panics with a clear message rather than colliding.
func TestConnPortAllocation(t *testing.T) {
	env := sim.NewEnv()
	cl := NewCluster(env, SWOpt, DefaultParams())

	src1, dst1 := cl.ports.AllocPair()
	if src1 != connSrvPortBase || dst1 != connPortBase {
		t.Fatalf("first conn ports = (%d,%d), want (%d,%d)", src1, dst1, connSrvPortBase, connPortBase)
	}

	// Fast-forward to the end of the client-port range: the next
	// allocation must move to the next server port, not wrap into
	// reserved space.
	cl.ports.nextCli = 65535
	if _, dst := cl.ports.AllocPair(); dst != 65535 {
		t.Fatalf("pre-wrap DstPort = %d, want 65535", dst)
	}
	src3, dst3 := cl.ports.AllocPair()
	if dst3 != connPortBase {
		t.Fatalf("post-wrap DstPort = %d, want %d", dst3, connPortBase)
	}
	if cl.ports.epoch != 1 {
		t.Fatalf("epoch = %d after wrap, want 1", cl.ports.epoch)
	}
	if src3 != connSrvPortBase+1 {
		t.Fatalf("post-wrap SrcPort = %d, want %d", src3, connSrvPortBase+1)
	}

	// No (SrcPort, DstPort) pair may repeat across a dense run that
	// includes a wrap.
	cl2 := NewCluster(sim.NewEnv(), SWOpt, DefaultParams())
	cl2.ports.nextCli = 65535 - 50
	seen := map[[2]uint16]bool{}
	for id := uint64(1); id <= 200; id++ {
		src, dst := cl2.ports.AllocPair()
		key := [2]uint16{src, dst}
		if seen[key] {
			t.Fatalf("port pair (%d,%d) reused at id %d", src, dst, id)
		}
		seen[key] = true
	}

	// OpenConn still works end to end with the new allocator.
	if conn := cl.OpenConn(true); conn.ID == 0 {
		t.Fatal("OpenConn returned zero conn ID")
	}

	// Exhaustion: an epoch past the server-port range must panic, not
	// wrap.
	cl3 := NewCluster(sim.NewEnv(), SWOpt, DefaultParams())
	cl3.ports.epoch = srvPortEpochs
	cl3.ports.nextCli = connPortBase
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on port-space exhaustion")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "port space exhausted") {
			t.Fatalf("panic message %q does not name the exhaustion", msg)
		}
	}()
	cl3.ports.AllocPair()
}
