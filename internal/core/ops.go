package core

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/gpu"
	"dcsctrl/internal/hdc"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/ndp"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// OpResult is a completed multi-device task.
type OpResult struct {
	Breakdown *trace.Breakdown
	Latency   sim.Time
	Digest    []byte // intermediate-processing result, when computed
}

// cpuHashBps is the single-core software checksum rate used when a
// baseline must compute a digest on the CPU (no GPU kernel for it).
const cpuHashBps = 4e9

// SendFileOp executes the paper's flagship multi-device task — read a
// file range from the SSD, optionally apply intermediate processing,
// and transmit it on a connection — using the node's configuration.
func (n *Node) SendFileOp(p *sim.Proc, f *hostos.File, off, nbytes int, connID uint64, proc Processing) (OpResult, error) {
	bd := trace.NewBreakdown()
	start := p.Now()
	var digest []byte
	var err error
	switch n.Kind {
	case DCSCtrl:
		n.trace("user", "hdc_sendfile()")
		n.trace("driver", "resolve metadata, post D2D command")
		var res hdc.Result
		res, err = n.Driver.SendFileDev(p, bd, n.fileDev[f.Name], f, off, nbytes, connID, uint8(proc))
		n.trace("driver", "completion interrupt, return to user")
		digest = res.Aux
		if err == hdc.ErrEngineFailed {
			n.failoverToHost(p, bd)
			n.fallbacks++
			n.trace("kernel", "engine failed: host-mediated fallback")
			digest, err = n.softwareSend(p, bd, f, off, nbytes, connID, proc)
		} else if err == nil && res.Status != 0 {
			err = fmt.Errorf("core: D2D command failed with status %d", res.Status)
		}
	case DevIntegration:
		digest, err = n.integratedSend(p, bd, f, off, nbytes, connID, proc)
	default:
		digest, err = n.softwareSend(p, bd, f, off, nbytes, connID, proc)
	}
	return OpResult{Breakdown: bd, Latency: p.Now() - start, Digest: digest}, err
}

// softwareSend is the Vanilla / SWOpt / SWP2P path: the host CPU runs
// every control action; data is staged in host DRAM, or directly in
// GPU VRAM when SW-P2P has a P2P target to use.
func (n *Node) softwareSend(p *sim.Proc, bd *trace.Breakdown, f *hostos.File, off, nbytes int, connID uint64, proc Processing) ([]byte, error) {
	hp := n.Params.Host
	n.trace("user", "read+process+send")
	n.Host.Exec(p, trace.CatUser, hp.SyscallEntry, bd) // app dispatch

	kernel, gpuOK := proc.gpuKernel()
	useP2P := n.Kind == SWP2P && proc != ProcNone && gpuOK && n.GPU != nil
	var digest []byte

	if useP2P {
		// SW-ctrl P2P: the SSD DMAs straight into GPU VRAM (the GPU is
		// the only P2P target); the NIC later DMA-reads VRAM. Control
		// stays on the CPU.
		vbuf := n.allocVRAM(uint64(nbytes) + 4096)
		vres := n.allocVRAM(4096)
		n.hostReadFile(p, bd, f, off, nbytes, vbuf)
		n.Host.Exec(p, trace.CatGPUCtrl, hp.GPULaunch, bd)
		start := p.Now()
		var err error
		digest, err = n.GPU.RunHashKernel(p, kernel, vbuf, nbytes, vres)
		if err != nil {
			return nil, err
		}
		bd.Add(trace.CatHash, p.Now()-start)
		// Fetch the digest to host memory (tiny copy).
		n.Host.Exec(p, trace.CatGPUCtrl, hp.GPUDMASetup, bd)
		hres := n.allocHost(64)
		if err := n.GPU.Copy(p, hres, vres, len(digest)); err != nil {
			return nil, err
		}
		n.hostNetSend(p, bd, connID, vbuf, nbytes)
		return digest, nil
	}

	// Host-staged path (Vanilla, SWOpt; and SWP2P when no P2P target
	// exists — the paper's SSD↔NIC observation).
	buf := n.allocHost(uint64(nbytes) + 4096)
	n.hostReadFile(p, bd, f, off, nbytes, buf)
	if proc != ProcNone {
		var err error
		digest, err = n.hostProcess(p, bd, buf, nbytes, proc)
		if err != nil {
			return nil, err
		}
	}
	n.hostNetSend(p, bd, connID, buf, nbytes)
	return digest, nil
}

// hostProcess runs intermediate processing for a host-staged buffer:
// offloaded to the GPU when a kernel exists (copy + launch + copy
// back), otherwise computed on the CPU.
func (n *Node) hostProcess(p *sim.Proc, bd *trace.Breakdown, buf mem.Addr, nbytes int, proc Processing) ([]byte, error) {
	hp := n.Params.Host
	kernel, gpuOK := proc.gpuKernel()
	if gpuOK && n.GPU != nil {
		vbuf := n.allocVRAM(uint64(nbytes) + 4096)
		vres := n.allocVRAM(4096)
		n.trace("driver", "cudaMemcpy h2d")
		n.Host.Exec(p, trace.CatGPUCtrl, hp.GPUDMASetup, bd)
		start := p.Now()
		if err := n.GPU.Copy(p, vbuf, buf, nbytes); err != nil {
			return nil, err
		}
		bd.Add(trace.CatGPUCopy, p.Now()-start)
		n.trace("driver", "kernel launch")
		n.Host.Exec(p, trace.CatGPUCtrl, hp.GPULaunch, bd)
		start = p.Now()
		digest, err := n.GPU.RunHashKernel(p, kernel, vbuf, nbytes, vres)
		if err != nil {
			return nil, err
		}
		bd.Add(trace.CatHash, p.Now()-start)
		n.Host.Exec(p, trace.CatGPUCtrl, hp.GPUDMASetup, bd)
		start = p.Now()
		hres := n.allocHost(64)
		if err := n.GPU.Copy(p, hres, vres, len(digest)); err != nil {
			return nil, err
		}
		bd.Add(trace.CatGPUCopy, p.Now()-start)
		return digest, nil
	}
	// CPU fallback: hash/encrypt on a core.
	n.Host.Exec(p, trace.CatHash, sim.BpsToTime(nbytes, cpuHashBps), bd)
	// View: cpuDigest only reads the bytes, synchronously.
	return cpuDigest(proc, n.MM.View(buf, nbytes)), nil
}

// cpuDigest computes the real digest for a processing kind (nil when
// the kind yields no digest).
func cpuDigest(proc Processing, data []byte) []byte {
	switch proc {
	case ProcMD5:
		_, aux, _ := ndp.MD5{}.Transform(data)
		return aux
	case ProcCRC32:
		_, aux, _ := ndp.CRC32{}.Transform(data)
		return aux
	case ProcSHA256:
		_, aux, _ := ndp.SHA256{}.Transform(data)
		return aux
	default:
		return nil
	}
}

// RecvFileOp receives nbytes from a connection, optionally processes
// them, and writes them to a file range — the PUT-side task. Under
// SW-P2P the receive side degenerates to the host-staged path: split
// packets must be gathered by the CPU before any peer transfer, the
// paper's "data gathering problem".
func (n *Node) RecvFileOp(p *sim.Proc, connID uint64, f *hostos.File, off, nbytes int, proc Processing) (OpResult, error) {
	bd := trace.NewBreakdown()
	start := p.Now()
	var digest []byte
	var err error
	switch n.Kind {
	case DCSCtrl:
		var res hdc.Result
		res, err = n.Driver.RecvFileDev(p, bd, connID, n.fileDev[f.Name], f, off, nbytes, uint8(proc))
		digest = res.Aux
		if err == hdc.ErrEngineFailed {
			n.failoverToHost(p, bd)
			n.fallbacks++
			digest, err = n.hostStagedRecv(p, bd, connID, f, off, nbytes, proc)
		} else if err == nil && res.Status != 0 {
			err = fmt.Errorf("core: D2D command failed with status %d", res.Status)
		}
	case DevIntegration:
		err = fmt.Errorf("core: integrated device receive path not modelled")
	default:
		digest, err = n.hostStagedRecv(p, bd, connID, f, off, nbytes, proc)
	}
	return OpResult{Breakdown: bd, Latency: p.Now() - start, Digest: digest}, err
}

// hostStagedRecv is the host-mediated receive path: gather the stream
// into a DRAM staging buffer, process, write to the file — shared by
// the software baselines and the DCS fallback path.
func (n *Node) hostStagedRecv(p *sim.Proc, bd *trace.Breakdown, connID uint64, f *hostos.File, off, nbytes int, proc Processing) ([]byte, error) {
	hp := n.Params.Host
	n.Host.Exec(p, trace.CatUser, hp.SyscallEntry, bd)
	buf := n.allocHost(uint64(nbytes) + 4096)
	n.hostNetRecvTo(p, bd, connID, nbytes, buf)
	var digest []byte
	if proc != ProcNone {
		var err error
		digest, err = n.hostProcess(p, bd, buf, nbytes, proc)
		if err != nil {
			return nil, err
		}
	}
	n.hostWriteFile(p, bd, f, off, nbytes, buf)
	return digest, nil
}

// CopyFileOp moves nbytes between two files. On a DCS node it is a
// single D2D command; if the engine has failed it degrades to a
// host-staged read+process+write so the operation still completes.
func (n *Node) CopyFileOp(p *sim.Proc, srcF *hostos.File, srcOff int, dstF *hostos.File, dstOff, nbytes int, proc Processing) (OpResult, error) {
	bd := trace.NewBreakdown()
	start := p.Now()
	if n.Kind != DCSCtrl {
		return OpResult{}, fmt.Errorf("core: CopyFileOp requires a DCS-ctrl node")
	}
	res, err := n.Driver.CopyFile(p, bd, n.fileDev[srcF.Name], srcF, srcOff,
		n.fileDev[dstF.Name], dstF, dstOff, nbytes, uint8(proc))
	digest := res.Aux
	if err == hdc.ErrEngineFailed {
		n.failoverToHost(p, bd)
		n.fallbacks++
		buf := n.allocHost(uint64(nbytes) + 4096)
		n.hostReadFile(p, bd, srcF, srcOff, nbytes, buf)
		if proc != ProcNone {
			digest, err = n.hostProcess(p, bd, buf, nbytes, proc)
			if err != nil {
				return OpResult{Breakdown: bd}, err
			}
		} else {
			err = nil
		}
		n.hostWriteFile(p, bd, dstF, dstOff, nbytes, buf)
	} else if err == nil && res.Status != 0 {
		err = fmt.Errorf("core: D2D command failed with status %d", res.Status)
	}
	return OpResult{Breakdown: bd, Latency: p.Now() - start, Digest: digest}, err
}

// failoverToHost adopts the engine's connections into the host network
// stack after an unrecoverable engine failure. It runs once; the
// salvaged per-connection state (sequence numbers plus any payload
// already reassembled in engine DDR3) seeds host connections so
// streams continue without loss. The reconfiguration cost is charged
// to trace.CatFallback so fail-overs show up in breakdowns.
func (n *Node) failoverToHost(p *sim.Proc, bd *trace.Breakdown) {
	n.Host.Exec(p, trace.CatFallback, n.Params.Host.CtxSwitch, bd)
	if n.adopted {
		return
	}
	n.adopted = true
	for _, ac := range n.Engine.AdoptConnections() {
		// Dropping the steering rule sends subsequent frames to host
		// queue 0 (the RSS default).
		n.NIC.ClearSteering(ac.Flow.Reverse().Tuple())
		if _, dup := n.conns[ac.ID]; dup {
			panic(fmt.Sprintf("core: adopted connection %d collides on %s", ac.ID, n.Name))
		}
		c := &hostConn{
			id: ac.ID, flow: ac.Flow, txSeq: ac.TxSeq, rxSeq: ac.RxSeq,
			stream: ac.Buffered, avail: sim.NewCond(n.Env),
		}
		n.conns[ac.ID] = c
		n.connsRx[ac.Flow.Reverse().Tuple()] = c
		n.Host.Exec(p, trace.CatFallback, n.Params.Host.SockSendSetup, bd)
	}
}

// integratedSend models the tightly integrated device of Figure 3: a
// consolidated storage+NIC+accelerator executes the whole task with a
// hardware control path and an internal interconnect; the host posts
// one command and takes one interrupt.
func (n *Node) integratedSend(p *sim.Proc, bd *trace.Breakdown, f *hostos.File, off, nbytes int, connID uint64, proc Processing) ([]byte, error) {
	hp := n.Params.Host
	n.Host.Exec(p, trace.CatUser, hp.SyscallEntry, bd)
	n.Host.Exec(p, trace.CatDevCtrl, n.Params.IntegratedCtrl, bd)

	// Internal hardware pipeline: media read, internal transfer,
	// optional line-rate processing — all off-host.
	sp := n.Params.SSD
	readTime := sp.ReadLatency + sim.BpsToTime(nbytes, sp.ReadBps)
	p.Sleep(readTime)
	bd.Add(trace.CatRead, readTime)
	xfer := sim.BpsToTime(nbytes, n.Params.IntegratedInternalBps)
	p.Sleep(xfer)
	bd.Add(trace.CatDevCtrl, xfer)

	// Fetch the real bytes for functional fidelity.
	buf := n.allocHost(uint64(nbytes) + 4096)
	data := make([]byte, 0, nbytes)
	ssd := n.SSDs[n.fileDev[f.Name]]
	for _, r := range runsOf(f, off, nbytes) {
		for b := 0; b < r.blocks; b++ {
			data = append(data, ssd.PeekBlock(r.lba+uint64(b))...)
		}
	}
	data = data[:nbytes]
	n.MM.Write(buf, data)

	var digest []byte
	if proc != ProcNone {
		hw := sim.BpsToTime(nbytes, 10e9)
		p.Sleep(hw)
		bd.Add(trace.CatHash, hw)
		digest = cpuDigest(proc, data)
	}

	// Transmit through the integrated NIC: reuse the node's send ring
	// without charging host CPU (the integrated controller drives it).
	c := n.conns[connID]
	if c == nil {
		return nil, fmt.Errorf("core: unknown conn %d", connID)
	}
	startTx := p.Now()
	n.deviceSend(p, c, buf, nbytes)
	bd.Add(trace.CatNICTransmit, p.Now()-startTx)
	n.Host.RaiseIRQ(trace.CatInterrupt, 0, nil)
	n.Host.Exec(p, trace.CatInterrupt, hp.CtxSwitch, bd)
	return digest, nil
}

// deviceSend pushes LSO jobs onto the host send ring without CPU cost
// (hardware-initiated transmit for the integrated-device model).
func (n *Node) deviceSend(p *sim.Proc, c *hostConn, src mem.Addr, nbytes int) {
	const job = 64 << 10
	for off := 0; off < nbytes; off += job {
		seg := nbytes - off
		if seg > job {
			seg = job
		}
		hdr := ether.HeaderTemplate(c.flow, c.txSeq, ether.FlagACK|ether.FlagPSH)
		c.txSeq += uint32(seg)
		hdrAddr := n.allocHost(64)
		n.MM.Write(hdrAddr, hdr)
		bds := []nic.SendBD{{Addr: hdrAddr, Len: uint16(len(hdr)), Flags: nic.SendFlagLSO, MSS: ether.MSS}}
		const frag = 32 << 10
		for o := 0; o < seg; o += frag {
			k := seg - o
			if k > frag {
				k = frag
			}
			bds = append(bds, nic.SendBD{Addr: src + mem.Addr(off+o), Len: uint16(k)})
		}
		bds[len(bds)-1].Flags |= nic.SendFlagEnd
		for n.sendRing.FreeSlots() < len(bds) {
			n.sendCond.Wait(p)
		}
		if err := n.sendRing.Push(bds); err != nil {
			panic(err)
		}
		sig := sim.NewSignal(n.Env)
		n.pendTx = append(n.pendTx, hostPendingSend{tail: n.sendRing.Tail(), sig: sig})
		n.sendRing.RingDoorbell()
		n.sendRing.Arm()
		n.waitSendCompleted(p, sig)
	}
}

// GPUForNode exposes the node's GPU (nil on DCS/integration nodes).
func (n *Node) GPUForNode() *gpu.GPU { return n.GPU }
