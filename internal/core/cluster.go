package core

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// Cluster is the paper's two-node setup: the server under test plus a
// client load generator, NICs connected back to back. The client is
// always a plain optimized-software host — its CPU is not what the
// experiments measure.
type Cluster struct {
	Env    *sim.Env
	Server *Node
	Client *Node

	nextConn uint64
	ports    PortSpace // (server, client) port pairs; see ports.go
}

// serverIP and clientIP address the two nodes.
var (
	serverIP  = ether.IP{10, 0, 0, 1}
	clientIP  = ether.IP{10, 0, 0, 2}
	serverMAC = ether.MAC{0x02, 0, 0, 0, 0, 1}
	clientMAC = ether.MAC{0x02, 0, 0, 0, 0, 2}
)

// NewCluster builds a server of the given configuration and a plain
// optimized-software client, and wires their NICs together.
func NewCluster(env *sim.Env, kind Config, params Params) *Cluster {
	return NewClusterWithClient(env, kind, SWOpt, params)
}

// NewClusterWithClient builds both nodes with explicit configurations
// (the HDFS balancer experiment measures sender and receiver, so both
// run the design under test).
func NewClusterWithClient(env *sim.Env, serverKind, clientKind Config, params Params) *Cluster {
	c := &Cluster{
		Env:      env,
		Server:   NewNode(env, "server", serverKind, params),
		Client:   NewNode(env, "client", clientKind, params),
		nextConn: 1,
	}
	nic.Connect(c.Server.NIC, c.Client.NIC)
	return c
}

// Conn is one established connection between server and client, as a
// pair of endpoint IDs (the same ID on both nodes).
type Conn struct {
	ID         uint64
	ServerData bool // true when the server endpoint is engine-owned
}

// OpenConn establishes a TCP-lite connection. dataPlane selects
// whether the server endpoint is handed to the HDC Engine (DCS-ctrl
// servers) or terminated by the host stack; the client endpoint is
// always host-terminated.
func (c *Cluster) OpenConn(dataPlane bool) Conn {
	id := c.nextConn
	c.nextConn++
	srcPort, dstPort := c.ports.AllocPair()
	serverFlow := ether.Flow{
		SrcMAC: serverMAC, DstMAC: clientMAC,
		SrcIP: serverIP, DstIP: clientIP,
		SrcPort: srcPort, DstPort: dstPort,
	}
	engineOwned := dataPlane && c.Server.Kind == DCSCtrl
	if engineOwned {
		c.Server.Driver.Connect(id, serverFlow, 0, 0)
	} else {
		c.Server.OpenHostConn(id, serverFlow)
	}
	if dataPlane && c.Client.Kind == DCSCtrl {
		c.Client.Driver.Connect(id, serverFlow.Reverse(), 0, 0)
	} else {
		c.Client.OpenHostConn(id, serverFlow.Reverse())
	}
	return Conn{ID: id, ServerData: engineOwned}
}

// ClientSend transmits payload bytes from the client on a connection
// (load-generation path; client CPU is charged but not reported).
func (c *Cluster) ClientSend(p *sim.Proc, conn Conn, payload []byte) {
	buf := c.Client.allocHost(uint64(len(payload)) + 4096)
	c.Client.MM.Write(buf, payload)
	c.Client.hostNetSend(p, trace.NewBreakdown(), conn.ID, buf, len(payload))
}

// ClientRecv blocks until the client has received n bytes on the
// connection and returns them.
func (c *Cluster) ClientRecv(p *sim.Proc, conn Conn, n int) []byte {
	return c.Client.hostNetRecv(p, trace.NewBreakdown(), conn.ID, n)
}

// ServerRecv receives on a host-terminated server connection (control
// messages; works on every configuration).
func (c *Cluster) ServerRecv(p *sim.Proc, bd *trace.Breakdown, conn Conn, n int) []byte {
	if conn.ServerData {
		panic("core: ServerRecv on an engine-owned connection")
	}
	if bd == nil {
		bd = trace.NewBreakdown()
	}
	return c.Server.hostNetRecv(p, bd, conn.ID, n)
}

// ServerSend transmits from the server host stack on a
// host-terminated connection.
func (c *Cluster) ServerSend(p *sim.Proc, bd *trace.Breakdown, conn Conn, payload []byte) {
	if conn.ServerData {
		panic("core: ServerSend on an engine-owned connection")
	}
	if bd == nil {
		bd = trace.NewBreakdown()
	}
	buf := c.Server.allocHost(uint64(len(payload)) + 4096)
	c.Server.MM.Write(buf, payload)
	c.Server.hostNetSend(p, bd, conn.ID, buf, len(payload))
}

// Validate checks that the cluster wiring is consistent.
func (c *Cluster) Validate() error {
	if c.Server.Kind == DCSCtrl && c.Server.Engine == nil {
		return fmt.Errorf("core: DCS server without engine")
	}
	return nil
}
