package core

import (
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// runsOf maps a file byte range onto per-command LBA runs (bounded by
// the NVMe per-command limit).
type ioRun struct {
	lba    uint64
	blocks int
	off    int // byte offset within the destination buffer
}

func runsOf(f *hostos.File, off, nbytes int) []ioRun {
	lbas, err := f.LBARange(off, nbytes)
	if err != nil {
		panic(err)
	}
	var runs []ioRun
	for i := 0; i < len(lbas); {
		j := i + 1
		for j < len(lbas) && lbas[j] == lbas[j-1]+1 && j-i < nvme.MaxBlocksPerCmd {
			j++
		}
		runs = append(runs, ioRun{lba: lbas[i], blocks: j - i, off: i * hostos.BlockSize})
		i = j
	}
	return runs
}

// collectCompletion funnels one command-completion signal into the
// caller's tally queue. Under handler procs the collector is a
// run-to-completion machine (enrolls on the signal, fires the tally,
// exits — no goroutine park/resume handoffs); otherwise it is the
// classic goroutine form. Both enqueue exactly the same events.
func (n *Node) collectCompletion(name string, sig *sim.Signal, done *sim.Queue[int]) {
	if n.Env.HandlerProcs() {
		n.Env.SpawnHandler(name, func(h *sim.HandlerCtx) {
			if !sig.WaitH(h) {
				return
			}
			done.Put(1)
			h.Exit()
		})
	} else {
		n.Env.Spawn(name, func(cp *sim.Proc) {
			sig.Wait(cp)
			done.Put(1)
		})
	}
}

// hostReadFile reads a file range to dst (any bus address the SSD may
// DMA to: host DRAM always; GPU VRAM under SW-P2P) using the host
// kernel storage path. Costs follow the configuration: the Vanilla
// path adds page-cache management and a kernel→destination copy.
func (n *Node) hostReadFile(p *sim.Proc, bd *trace.Breakdown, f *hostos.File, off, nbytes int, dst mem.Addr) {
	dev := n.fileDev[f.Name]
	hp := n.Params.Host
	n.trace("kernel", "read() enter")
	n.Host.Exec(p, trace.CatFileSystem, hp.SyscallEntry+hp.VFSLookup, bd)

	vanilla := n.Kind == Vanilla
	allCached := false
	if vanilla {
		pages := (nbytes + hostos.BlockSize - 1) / hostos.BlockSize
		n.Host.Exec(p, trace.CatPageCache, sim.Time(pages)*hp.PageCacheOp, bd)
		// Page-cache lookup: fully cached reads never touch the device
		// (the stock kernel's one advantage over direct I/O).
		allCached = true
		firstPage := off / hostos.BlockSize
		for pg := 0; pg < pages; pg++ {
			if _, hit := n.FSs[dev].CacheLookup(f.Name, firstPage+pg); !hit {
				allCached = false
			}
		}
		if allCached {
			pageBuf := make([]byte, hostos.BlockSize)
			for pg := 0; pg < pages; pg++ {
				data, _ := n.FSs[dev].CacheLookup(f.Name, firstPage+pg)
				copy(pageBuf, data)
				end := (pg + 1) * hostos.BlockSize
				if end > nbytes {
					end = nbytes
				}
				n.MM.Write(dst+mem.Addr(pg*hostos.BlockSize), pageBuf[:end-pg*hostos.BlockSize])
			}
			n.Host.Copy(p, trace.CatDataCopy, nbytes, bd)
			n.Host.Exec(p, trace.CatFileSystem, hp.SyscallExit, bd)
			n.trace("kernel", "read() exit (cache hit)")
			return
		}
	}

	runs := runsOf(f, off, nbytes)
	done := sim.NewQueue[int](n.Env, "read-done")
	for _, r := range runs {
		n.trace("driver", "nvme submit")
		n.Host.Exec(p, trace.CatDevCtrl, hp.BlockSubmit, bd)
		pages := make([]mem.Addr, r.blocks)
		for i := range pages {
			pages[i] = dst + mem.Addr(r.off+i*nvme.BlockSize)
		}
		sig := sim.NewSignal(n.Env)
		n.submitHostNVMe(p, dev, false, r.lba, r.blocks, pages, sig)
		n.collectCompletion("read-collect", sig, done)
	}
	n.Host.Exec(p, trace.CatInterrupt, hp.CtxSwitch, bd)
	start := p.Now()
	for range runs {
		done.Get(p)
	}
	bd.Add(trace.CatRead, p.Now()-start)
	n.trace("device", "nvme complete")
	// Completion handling beyond the IRQ-side cost: per-command
	// completion work in the caller's context.
	n.Host.Exec(p, trace.CatDevCtrl, sim.Time(len(runs))*hp.BlockComplete/2, bd)

	if vanilla {
		// Page-cache fill + copy to the caller's buffer.
		firstPage := off / hostos.BlockSize
		pages := (nbytes + hostos.BlockSize - 1) / hostos.BlockSize
		for pg := 0; pg < pages; pg++ {
			start := pg * hostos.BlockSize
			end := start + hostos.BlockSize
			if end > nbytes {
				end = nbytes
			}
			n.FSs[dev].CacheFill(f.Name, firstPage+pg, n.MM.Read(dst+mem.Addr(start), end-start))
		}
		n.Host.Copy(p, trace.CatDataCopy, nbytes, bd)
	}
	n.Host.Exec(p, trace.CatFileSystem, hp.SyscallExit, bd)
	n.trace("kernel", "read() exit")
}

// hostWriteFile writes a buffer to a file range through the host
// kernel storage path.
func (n *Node) hostWriteFile(p *sim.Proc, bd *trace.Breakdown, f *hostos.File, off, nbytes int, src mem.Addr) {
	dev := n.fileDev[f.Name]
	hp := n.Params.Host
	n.Host.Exec(p, trace.CatFileSystem, hp.SyscallEntry+hp.VFSLookup, bd)
	vanilla := n.Kind == Vanilla
	if vanilla {
		pages := (nbytes + hostos.BlockSize - 1) / hostos.BlockSize
		n.Host.Exec(p, trace.CatPageCache, sim.Time(pages)*hp.PageCacheOp, bd)
		n.Host.Copy(p, trace.CatDataCopy, nbytes, bd)
	}
	runs := runsOf(f, off, nbytes)
	done := sim.NewQueue[int](n.Env, "write-done")
	for _, r := range runs {
		n.Host.Exec(p, trace.CatDevCtrl, hp.BlockSubmit, bd)
		pages := make([]mem.Addr, r.blocks)
		for i := range pages {
			pages[i] = src + mem.Addr(r.off+i*nvme.BlockSize)
		}
		sig := sim.NewSignal(n.Env)
		n.submitHostNVMe(p, dev, true, r.lba, r.blocks, pages, sig)
		n.collectCompletion("write-collect", sig, done)
	}
	n.Host.Exec(p, trace.CatInterrupt, hp.CtxSwitch, bd)
	start := p.Now()
	for range runs {
		done.Get(p)
	}
	bd.Add(trace.CatWrite, p.Now()-start)
	n.Host.Exec(p, trace.CatDevCtrl, sim.Time(len(runs))*hp.BlockComplete/2, bd)
	n.Host.Exec(p, trace.CatFileSystem, hp.SyscallExit, bd)
}

// StageFile creates a file (round-robin across the node's SSDs) and
// loads its content onto that SSD (testbed setup, no simulated cost).
func (n *Node) StageFile(name string, content []byte) (*hostos.File, error) {
	f, err := n.CreateFile(name, len(content))
	if err != nil {
		return nil, err
	}
	ssd := n.SSDs[n.fileDev[name]]
	off := 0
	for _, e := range f.Extents() {
		nb := e.Blocks * hostos.BlockSize
		if off+nb > len(content) {
			nb = len(content) - off
		}
		if nb > 0 {
			ssd.Preload(e.LBA, content[off:off+nb])
		}
		off += nb
	}
	return f, nil
}

// ReadBack fetches a file's SSD contents directly (verification).
func (n *Node) ReadBack(f *hostos.File) []byte {
	ssd := n.SSDs[n.fileDev[f.Name]]
	out := make([]byte, 0, f.Size)
	for _, lba := range f.LBAs() {
		out = append(out, ssd.PeekBlock(lba)...)
	}
	return out[:f.Size]
}
