package core

import (
	"fmt"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Cluster checkpoint/restore (DESIGN.md §17). A checkpoint is legal
// only at full quiescence (Env.Quiescent): every in-flight transfer
// delivered, every queue drained, service processes parked. The
// snapshot then reduces to architectural state — kernel counters,
// memory images, device cursors, per-connection stream state — in a
// versioned, length-prefixed, digest-trailed binary format whose
// encode order is fully deterministic (map state goes through
// sim.SortedKeys everywhere).
//
// Restore never rebuilds processes from bytes. The caller constructs
// a fresh cluster from the identical configuration, replays the
// identical setup (Prepare), settles it to quiescence, and then
// Restore overlays the captured state and forces the kernel clock.
// From that instant every future event carries the same (time, seq)
// stamp the straight-through run would produce, so the event
// fingerprint of the forked continuation is byte-identical.

// Snapshot serializes the cluster at a quiescent instant.
func (c *Cluster) Snapshot() ([]byte, error) {
	if !c.Env.Quiescent() {
		return nil, fmt.Errorf("core: snapshot of non-quiescent cluster")
	}
	es, err := c.Env.CheckpointState()
	if err != nil {
		return nil, err
	}
	w := snap.NewWriter(snap.Header{
		Version: snap.Version,
		Flags:   c.snapFlags(),
		Config:  c.ConfigFingerprint(),
	})

	w.Section("env")
	w.I64(int64(es.Now))
	w.U64(es.Seq)
	w.U64(es.Steps)
	w.U64(es.Fused)
	w.U64(es.IOs)
	w.U64(es.Segments)
	w.U64(es.SegFrames)
	w.EndSection()

	w.Section("cluster")
	w.U64(c.nextConn)
	w.U64(c.ports.Allocated())
	w.EndSection()

	w.Section("fault")
	inj := c.Server.Params.Faults
	w.Bool(inj != nil)
	if inj != nil {
		if err := inj.SnapSave(w); err != nil {
			return nil, err
		}
	}
	w.EndSection()

	for _, n := range []*Node{c.Server, c.Client} {
		if err := n.snapSave(w); err != nil {
			return nil, err
		}
	}
	return w.Finish(), nil
}

// Restore overlays a snapshot onto a freshly built, identically
// configured, settled cluster. The caller must have run the same
// setup (file staging, connection opens, workload preparation) that
// preceded the checkpointed run's warm phase.
func (c *Cluster) Restore(data []byte) error { return c.restore(data, true) }

// RestoreTrusted is Restore without the envelope digest check, for
// snapshots that never left this process (see snap.OpenTrusted).
func (c *Cluster) RestoreTrusted(data []byte) error { return c.restore(data, false) }

func (c *Cluster) restore(data []byte, verify bool) error {
	if !c.Env.Quiescent() {
		return fmt.Errorf("core: restore into non-quiescent cluster")
	}
	open := snap.OpenTrusted
	if verify {
		open = snap.Open
	}
	r, h, err := open(data)
	if err != nil {
		return err
	}
	if h.Flags != c.snapFlags() {
		return fmt.Errorf("core: snapshot flags %#x, cluster runs %#x (kernel knobs differ)", h.Flags, c.snapFlags())
	}
	if h.Config != c.ConfigFingerprint() {
		return fmt.Errorf("core: snapshot config %#x, cluster is %#x (configuration differs)", h.Config, c.ConfigFingerprint())
	}

	if err := r.Section("env"); err != nil {
		return err
	}
	es := sim.EnvState{
		Now: sim.Time(r.I64()), Seq: r.U64(), Steps: r.U64(),
		Fused: r.U64(), IOs: r.U64(), Segments: r.U64(), SegFrames: r.U64(),
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := r.Section("cluster"); err != nil {
		return err
	}
	nextConn, alloced := r.U64(), r.U64()
	if err := r.EndSection(); err != nil {
		return err
	}
	if nextConn != c.nextConn {
		return fmt.Errorf("core: snapshot has %d connections opened, cluster has %d (setup differs)", nextConn-1, c.nextConn-1)
	}
	if alloced != c.ports.Allocated() {
		return fmt.Errorf("core: snapshot allocated %d port pairs, cluster %d (setup differs)", alloced, c.ports.Allocated())
	}

	if err := r.Section("fault"); err != nil {
		return err
	}
	hasInj := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasInj != (c.Server.Params.Faults != nil) {
		return fmt.Errorf("core: snapshot fault injection %v, cluster %v", hasInj, c.Server.Params.Faults != nil)
	}
	if hasInj {
		if err := c.Server.Params.Faults.SnapLoad(r); err != nil {
			return err
		}
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	for _, n := range []*Node{c.Server, c.Client} {
		if err := n.snapLoad(r); err != nil {
			return err
		}
	}
	// The overlays above prime worker pools (SSD exec, async DMA) by
	// spawning workers that park on their job queues; settle those
	// spawn events now so every pool reaches its checkpointed
	// population. Forcing the kernel counters comes last: it erases
	// the settle dispatches from the clock and counters, and a failed
	// restore leaves the clock untouched.
	c.Env.Run(-1)
	return c.Env.ForceCheckpointState(es)
}

// snapFlags encodes the kernel knobs the schedule depends on; a
// snapshot only restores into a cluster running the same knobs.
func (c *Cluster) snapFlags() uint32 {
	var f uint32
	if c.Env.Fusion() {
		f |= snap.FlagFusion
	}
	if c.Env.HandlerProcs() {
		f |= snap.FlagHandlerProcs
	}
	if c.Env.WireFidelity() == sim.WireFlow {
		f |= snap.FlagWireFlow
	}
	return f
}

// ConfigFingerprint hashes the structural configuration — everything
// that decides which regions, queues, and devices exist. Two clusters
// with equal fingerprints accept each other's snapshots.
func (c *Cluster) ConfigFingerprint() uint64 {
	prof := "none"
	if c.Server.Params.Faults != nil {
		prof = c.Server.Params.Faults.ProfileUsed().Name
	}
	return snap.HashString(fmt.Sprintf(
		"server=%s|client=%s|ssds=%d|hnq=%d|enq=%d|arena=%d|fault=%s",
		c.Server.Kind, c.Client.Kind,
		c.Server.Params.NumSSDs, c.Server.Params.HostNICQueues,
		c.Server.Params.EngineNICQueues, c.Server.Params.HostArenaBytes, prof))
}

// snapSave encodes one node, one section per subsystem, in fixed
// order. Section names are prefixed with the node name so server and
// client state can never be transposed.
func (n *Node) snapSave(w *snap.Writer) error {
	sec := func(s string) { w.Section(n.Name + "." + s) }

	sec("node")
	if err := n.saveNodeState(w); err != nil {
		return err
	}
	w.EndSection()

	sec("mem")
	if err := n.MM.SnapSave(w); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	w.EndSection()

	sec("host")
	if err := n.Host.SnapSave(w); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	w.EndSection()

	sec("fs")
	w.U32(uint32(len(n.FSs)))
	for _, fs := range n.FSs {
		if err := fs.SnapSave(w); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	w.EndSection()

	sec("ssd")
	w.U32(uint32(len(n.SSDs)))
	for _, ssd := range n.SSDs {
		if err := ssd.SnapSave(w); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	w.EndSection()

	sec("pcie")
	if err := n.Fab.SnapSave(w); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	w.EndSection()

	sec("nic")
	if err := n.NIC.SnapSave(w); err != nil {
		return err
	}
	w.EndSection()

	sec("rings")
	if len(n.pendTx) != 0 {
		return fmt.Errorf("core: %s: checkpoint with %d unswept transmit jobs", n.Name, len(n.pendTx))
	}
	w.U32(uint32(len(n.nvmeRings)))
	for _, ring := range n.nvmeRings {
		if err := ring.SnapSave(w); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	if err := n.sendRing.SnapSave(w); err != nil {
		return err
	}
	w.U32(uint32(len(n.recvRings)))
	for _, rr := range n.recvRings {
		if err := rr.SnapSave(w); err != nil {
			return err
		}
	}
	w.EndSection()

	sec("gpu")
	w.Bool(n.GPU != nil)
	if n.GPU != nil {
		if err := n.GPU.SnapSave(w); err != nil {
			return err
		}
	}
	w.EndSection()

	sec("hdc")
	w.Bool(n.Engine != nil)
	if n.Engine != nil {
		if err := n.Engine.SnapSave(w); err != nil {
			return err
		}
		if err := n.Driver.SnapSave(w); err != nil {
			return err
		}
	}
	w.EndSection()
	return nil
}

// saveNodeState encodes the node-local software state: host-stack
// connections (sequence numbers plus the unconsumed reassembled
// stream), staging-arena cursors, fallback/retry counters, and the
// receive-wake park order (park order is wake order; see
// sim.Cond.WaiterNames).
func (n *Node) saveNodeState(w *snap.Writer) error {
	w.Bool(n.adopted)
	w.I64(n.fallbacks)
	w.I64(n.hostNVMeRetries)
	w.U64(n.arenaOff)
	w.U64(n.vramOff)
	w.Int(n.nextDev)
	w.Int(n.nextRSS)

	ids := sim.SortedKeys(n.conns)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		cn := n.conns[id]
		w.U64(id)
		w.U32(cn.txSeq)
		w.U32(cn.rxSeq)
		w.Bytes(cn.stream[cn.rd:])
	}

	names := n.rxWake.WaiterNames()
	w.U32(uint32(len(names)))
	for _, name := range names {
		w.Str(name)
	}
	return nil
}

// snapLoad decodes one node, verifying that setup-determined
// structure matches before overlaying captured state.
func (n *Node) snapLoad(r *snap.Reader) error {
	sec := func(s string) error { return r.Section(n.Name + "." + s) }

	if err := sec("node"); err != nil {
		return err
	}
	if err := n.loadNodeState(r); err != nil {
		return err
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("mem"); err != nil {
		return err
	}
	if err := n.MM.SnapLoad(r); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("host"); err != nil {
		return err
	}
	if err := n.Host.SnapLoad(r); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("fs"); err != nil {
		return err
	}
	nFS := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nFS != len(n.FSs) {
		return fmt.Errorf("core: %s: snapshot has %d filesystems, node has %d", n.Name, nFS, len(n.FSs))
	}
	for _, fs := range n.FSs {
		if err := fs.SnapLoad(r); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("ssd"); err != nil {
		return err
	}
	nSSD := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nSSD != len(n.SSDs) {
		return fmt.Errorf("core: %s: snapshot has %d SSDs, node has %d", n.Name, nSSD, len(n.SSDs))
	}
	for _, ssd := range n.SSDs {
		if err := ssd.SnapLoad(r); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("pcie"); err != nil {
		return err
	}
	if err := n.Fab.SnapLoad(r); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("nic"); err != nil {
		return err
	}
	if err := n.NIC.SnapLoad(r); err != nil {
		return err
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("rings"); err != nil {
		return err
	}
	nRings := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nRings != len(n.nvmeRings) {
		return fmt.Errorf("core: %s: snapshot has %d NVMe rings, node has %d", n.Name, nRings, len(n.nvmeRings))
	}
	for _, ring := range n.nvmeRings {
		if err := ring.SnapLoad(r); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	if err := n.sendRing.SnapLoad(r); err != nil {
		return err
	}
	nRR := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nRR != len(n.recvRings) {
		return fmt.Errorf("core: %s: snapshot has %d receive rings, node has %d", n.Name, nRR, len(n.recvRings))
	}
	for _, rr := range n.recvRings {
		if err := rr.SnapLoad(r); err != nil {
			return err
		}
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("gpu"); err != nil {
		return err
	}
	hasGPU := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasGPU != (n.GPU != nil) {
		return fmt.Errorf("core: %s: snapshot GPU presence %v, node %v", n.Name, hasGPU, n.GPU != nil)
	}
	if hasGPU {
		if err := n.GPU.SnapLoad(r); err != nil {
			return err
		}
	}
	if err := r.EndSection(); err != nil {
		return err
	}

	if err := sec("hdc"); err != nil {
		return err
	}
	hasHDC := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasHDC != (n.Engine != nil) {
		return fmt.Errorf("core: %s: snapshot engine presence %v, node %v", n.Name, hasHDC, n.Engine != nil)
	}
	if hasHDC {
		if err := n.Engine.SnapLoad(r); err != nil {
			return err
		}
		if err := n.Driver.SnapLoad(r); err != nil {
			return err
		}
	}
	return r.EndSection()
}

func (n *Node) loadNodeState(r *snap.Reader) error {
	n.adopted = r.Bool()
	n.fallbacks = r.I64()
	n.hostNVMeRetries = r.I64()
	n.arenaOff = r.U64()
	n.vramOff = r.U64()
	nextDev, nextRSS := r.Int(), r.Int()
	nConn := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nextDev != n.nextDev {
		return fmt.Errorf("core: %s: snapshot file-placement cursor %d, node %d (setup differs)", n.Name, nextDev, n.nextDev)
	}
	if nextRSS != n.nextRSS {
		return fmt.Errorf("core: %s: snapshot RSS cursor %d, node %d (setup differs)", n.Name, nextRSS, n.nextRSS)
	}
	if nConn != len(n.conns) {
		return fmt.Errorf("core: %s: snapshot has %d host connections, node has %d", n.Name, nConn, len(n.conns))
	}
	for i := 0; i < nConn; i++ {
		id := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		cn, ok := n.conns[id]
		if !ok {
			return fmt.Errorf("core: %s: snapshot connection %d absent on node", n.Name, id)
		}
		cn.txSeq = r.U32()
		cn.rxSeq = r.U32()
		stream := r.Bytes()
		if err := r.Err(); err != nil {
			return err
		}
		cn.stream = append(cn.stream[:0], stream...)
		cn.rd = 0
	}

	nNames := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	names := make([]string, nNames)
	for i := range names {
		names[i] = r.Str()
	}
	if err := r.Err(); err != nil {
		return err
	}
	return n.rxWake.ReorderWaiters(names)
}
