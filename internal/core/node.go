package core

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/gpu"
	"dcsctrl/internal/hdc"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/ndp"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// MSI vector assignments on a node.
const (
	msiHDC      = 3
	msiNICBase  = 40 // vectors 40..40+HostNICQueues-1
	msiNVMeBase = 10 // vectors 10..10+NumSSDs-1
)

// Node is one server: host complex, PCIe fabric, devices, and the
// software or hardware control paths of its configuration.
type Node struct {
	Name   string
	Kind   Config
	Params Params

	Env      *sim.Env
	MM       *mem.Map
	Fab      *pcie.Fabric
	HostPort *pcie.Port
	DRAM     *mem.Region
	Host     *hostos.Host
	FS       *hostos.FileSystem

	SSD  *nvme.SSD            // first SSD (compatibility alias)
	SSDs []*nvme.SSD          // all SSDs, indexed by device number
	FSs  []*hostos.FileSystem // one namespace per SSD
	NIC  *nic.NIC
	GPU  *gpu.GPU

	Engine *hdc.Engine
	Driver *hdc.Driver

	// Host-driven device interfaces (software configurations; on a
	// DCS node they serve the control-plane connections the engine
	// does not own).
	nvmeRings []*nvme.Ring
	nvmeWait  *sim.Cond
	fileDev   map[string]uint8 // file name -> SSD index
	nextDev   int              // round-robin file placement
	sendRing  *nic.SendRing
	recvRings []*nic.RecvRing // one per RSS queue
	recvRing  *nic.RecvRing   // queue 0 (compatibility alias)
	sendCond  *sim.Cond
	pendTx    []hostPendingSend
	nextRSS   int // round-robin connection-to-queue assignment

	conns    map[uint64]*hostConn
	connsRx  map[ether.Tuple]*hostConn // receive-tuple index for the rx hot path
	rxWake   *sim.Cond
	arena    *mem.Region // host DRAM staging buffers
	arenaOff uint64
	vramOff  uint64 // GPU staging ring cursor

	adopted         bool  // engine connections taken over by the host
	fallbacks       int64 // ops completed on the host-mediated path
	hostNVMeRetries int64 // host-driver NVMe re-submissions

	timeline []TimelineEvent
	tracing  bool
}

type hostPendingSend struct {
	tail uint64
	sig  *sim.Signal
}

// hostConn is a host-terminated TCP-lite endpoint.
type hostConn struct {
	id     uint64
	flow   ether.Flow // transmit direction
	txSeq  uint32
	rxSeq  uint32
	stream []byte // reassembled in-order payload; stream[rd:] is unconsumed
	rd     int    // consumed prefix (head index, capacity-preserving)

	// avail signals stream growth to this connection's readers. Waking
	// per connection instead of per node matters at rack scale: a node
	// with dozens of parked receivers would otherwise wake every one of
	// them (a goroutine handoff each) on every delivered batch.
	avail *sim.Cond
}

// reserveStream guarantees room for extra more unconsumed bytes,
// compacting the consumed prefix and growing by doubling: Go's native
// large-slice growth (~1.25x) plus the capacity bleed of reslicing on
// consume made reassembly a top copy cost at 40 GbE. Segment-
// granularity deliveries (netRxLoop) reserve a whole frame run up
// front so the compact/grow decision runs once per run, not per frame.
func (c *hostConn) reserveStream(extra int) {
	if len(c.stream)+extra > cap(c.stream) && c.rd > 0 {
		m := copy(c.stream, c.stream[c.rd:])
		c.stream = c.stream[:m]
		c.rd = 0
	}
	if need := len(c.stream) + extra; need > cap(c.stream) {
		newCap := 2 * cap(c.stream)
		if newCap < need {
			newCap = need
		}
		if newCap < 4096 {
			newCap = 4096
		}
		ns := make([]byte, len(c.stream), newCap)
		copy(ns, c.stream)
		c.stream = ns
	}
}

// pushStream appends payload bytes to the reassembled stream.
func (c *hostConn) pushStream(b []byte) {
	c.reserveStream(len(b))
	c.stream = append(c.stream, b...)
}

// streamLen returns the unconsumed byte count.
func (c *hostConn) streamLen() int { return len(c.stream) - c.rd }

// takeStream consumes want bytes into a fresh slice, preserving the
// buffer's capacity for the next reassembly round.
func (c *hostConn) takeStream(want int) []byte {
	out := append([]byte(nil), c.stream[c.rd:c.rd+want]...)
	c.rd += want
	if c.rd == len(c.stream) {
		c.stream, c.rd = c.stream[:0], 0
	}
	return out
}

// TimelineEvent is a Figure 2-style trace point.
type TimelineEvent struct {
	At    sim.Time
	Where string // "user", "kernel", "driver", "device", "engine"
	What  string
}

// NewNode builds a node of the given configuration on a fresh fabric.
func NewNode(env *sim.Env, name string, kind Config, params Params) *Node {
	if params.Faults != nil {
		params.PCIe.Faults = params.Faults
		params.SSD.Faults = params.Faults
		params.NIC.Faults = params.Faults
		params.HDC.Faults = params.Faults
		if params.Driver.CmdTimeout == 0 {
			// Arm the watchdog only under fault injection: in clean runs
			// the timer events would stretch the event horizon of
			// open-ended simulations for no benefit.
			params.Driver.CmdTimeout = 20 * sim.Millisecond
		}
	}
	n := &Node{
		Name: name, Kind: kind, Params: params,
		Env:     env,
		MM:      mem.NewMap(),
		conns:   map[uint64]*hostConn{},
		connsRx: map[ether.Tuple]*hostConn{},
	}
	n.Fab = pcie.NewFabric(env, n.MM, params.PCIe)
	n.HostPort = n.Fab.AddPort(name + "-root")
	n.DRAM = n.MM.AddRegion(name+"-dram", mem.HostDRAM, 16<<20, true)
	n.Fab.Attach(n.HostPort, n.DRAM)
	n.Host = hostos.NewHost(env, params.Host)
	n.rxWake = sim.NewCond(env)
	n.nvmeWait = sim.NewCond(env)
	n.sendCond = sim.NewCond(env)

	if params.NumSSDs < 1 {
		params.NumSSDs = 1
		n.Params.NumSSDs = 1
	}
	for i := 0; i < params.NumSSDs; i++ {
		n.SSDs = append(n.SSDs, nvme.NewSSD(env, n.Fab, fmt.Sprintf("%s-ssd%d", name, i), params.SSD))
		n.FSs = append(n.FSs, hostos.NewFileSystem(64<<30))
	}
	n.SSD = n.SSDs[0]
	n.FS = n.FSs[0]
	n.fileDev = map[string]uint8{}
	n.NIC = nic.NewNIC(env, n.Fab, name+"-nic", params.NIC)
	if kind == Vanilla || kind == SWOpt || kind == SWP2P {
		n.GPU = gpu.NewGPU(env, n.Fab, name+"-gpu", params.GPU)
	}
	arenaBytes := params.HostArenaBytes
	if arenaBytes == 0 {
		arenaBytes = 128 << 20
	}
	n.arena = n.MM.AddRegion(name+"-arena", mem.HostDRAM, arenaBytes, true)
	n.Fab.Attach(n.HostPort, n.arena)

	n.setupHostNVMe()
	n.setupHostNIC()

	if kind == DCSCtrl {
		n.Engine = hdc.NewEngine(env, n.Fab, name+"-hdc", params.HDC)
		for _, ssd := range n.SSDs {
			n.Engine.AttachSSD(ssd, 2) // QP 2: QP 1 belongs to the host driver
		}
		// Queue 1 plus (for >10GbE provisioning) queues 16+ belong to
		// the engine; queue 0 and 2..15 are the host's RSS range.
		engineQIDs := []uint16{1}
		for i := 1; i < params.EngineNICQueues; i++ {
			engineQIDs = append(engineQIDs, uint16(15+i))
		}
		n.Engine.AttachNIC(n.NIC, engineQIDs...)
		units := map[uint8]ndp.Streamer{
			hdc.FnMD5: ndp.MD5{}, hdc.FnCRC32: ndp.CRC32{}, hdc.FnSHA256: ndp.SHA256{},
			hdc.FnAES256: &ndp.AES256{Key: [32]byte{0x2a}}, hdc.FnGZIP: ndp.GZIP{}, hdc.FnGUNZIP: ndp.GUNZIP{},
		}
		fns := params.NDPFuncs
		if fns == nil {
			fns = []uint8{hdc.FnMD5, hdc.FnCRC32, hdc.FnSHA256, hdc.FnAES256, hdc.FnGZIP, hdc.FnGUNZIP}
		}
		for _, fn := range fns {
			if err := n.Engine.AddNDP(fn, units[fn]); err != nil {
				panic(err)
			}
		}
		n.Driver = hdc.NewDriver(env, n.Host, n.FSs[0], n.Fab, n.HostPort, n.Engine, msiHDC, params.Driver)
		n.Driver.Writeback = n.writebackPage
	}
	return n
}

// DevOf returns the SSD index backing a file.
func (n *Node) DevOf(f *hostos.File) uint8 { return n.fileDev[f.Name] }

// CreateFile creates an empty file, placing it on the next SSD in
// round-robin order.
func (n *Node) CreateFile(name string, size int) (*hostos.File, error) {
	dev := n.nextDev % len(n.FSs)
	n.nextDev++
	f, err := n.FSs[dev].Create(name, size)
	if err != nil {
		return nil, err
	}
	n.fileDev[name] = uint8(dev)
	return f, nil
}

// StartTrace begins recording timeline events.
func (n *Node) StartTrace() { n.tracing = true; n.timeline = nil }

// StopTrace stops recording and returns the events.
func (n *Node) StopTrace() []TimelineEvent {
	n.tracing = false
	return n.timeline
}

func (n *Node) trace(where, what string) {
	if n.tracing {
		n.timeline = append(n.timeline, TimelineEvent{At: n.Env.Now(), Where: where, What: what})
	}
}

// allocVRAM carves a staging buffer out of GPU VRAM; like the host
// arena it recycles in a ring, so workloads bound their working set.
func (n *Node) allocVRAM(size uint64) mem.Addr {
	size = (size + 4095) &^ 4095
	if n.vramOff+size > n.GPU.VRAM.Size {
		n.vramOff = 0
	}
	a := n.GPU.VRAM.Base + mem.Addr(n.vramOff)
	n.vramOff += size
	return a
}

// allocHost carves a staging buffer out of the node's DRAM arena.
// The arena recycles in a ring: workloads bound their working set.
func (n *Node) allocHost(size uint64) mem.Addr {
	size = (size + 4095) &^ 4095
	if n.arenaOff+size > n.arena.Size {
		n.arenaOff = 0
	}
	a := n.arena.Base + mem.Addr(n.arenaOff)
	n.arenaOff += size
	return a
}

// setupHostNVMe creates the host kernel driver's queue pair (QP 1) in
// host DRAM with MSI completion, one per SSD.
func (n *Node) setupHostNVMe() {
	entries := 256
	for i, ssd := range n.SSDs {
		sq := n.MM.AddRegion(fmt.Sprintf("%s-h-nvme%d-sq", n.Name, i), mem.HostDRAM, uint64(entries*nvme.CommandSize), true)
		cq := n.MM.AddRegion(fmt.Sprintf("%s-h-nvme%d-cq", n.Name, i), mem.HostDRAM, uint64(entries*nvme.CompletionSize), true)
		n.Fab.Attach(n.HostPort, sq)
		n.Fab.Attach(n.HostPort, cq)
		sqdb, cqdb := ssd.DoorbellAddrs(1)
		cfg := nvme.RingConfig{QID: 1, Entries: entries, SQ: sq, CQ: cq, SQDoorbell: sqdb, CQDoorbell: cqdb}
		ring := nvme.NewRing(n.Fab, cfg)
		n.nvmeRings = append(n.nvmeRings, ring)
		vector := msiNVMeBase + i
		n.Fab.OnMSI(vector, func() {
			n.Host.RaiseIRQ("interrupt", n.Params.Host.BlockComplete, func() {
				if ring.ProcessCompletions() > 0 {
					n.nvmeWait.Broadcast()
				}
			})
		})
		ssd.CreateQueuePair(cfg, vector)
	}
}

// setupHostNIC creates the host kernel driver's NIC queues in host
// DRAM with armed MSI, and starts one receive-service process per
// queue (multi-queue RSS: the 40 GbE experiments need the softirq
// path to scale across cores).
func (n *Node) setupHostNIC() {
	entries := 1024
	queues := n.Params.HostNICQueues
	if queues < 1 {
		queues = 1
	}
	for q := 0; q < queues; q++ {
		qid := hostQID(q)
		sring := n.MM.AddRegion(fmt.Sprintf("%s-h-nic%d-sring", n.Name, q), mem.HostDRAM, uint64(entries*nic.SendBDSize), true)
		rring := n.MM.AddRegion(fmt.Sprintf("%s-h-nic%d-rring", n.Name, q), mem.HostDRAM, uint64(entries*nic.RecvBDSize), true)
		rcpl := n.MM.AddRegion(fmt.Sprintf("%s-h-nic%d-rcpl", n.Name, q), mem.HostDRAM, uint64(entries*nic.RecvCplSize), true)
		status := n.MM.AddRegion(fmt.Sprintf("%s-h-nic%d-status", n.Name, q), mem.HostDRAM, 64, true)
		for _, r := range []*mem.Region{sring, rring, rcpl, status} {
			n.Fab.Attach(n.HostPort, r)
		}
		cfg := nic.QueueConfig{QID: qid, SendRing: sring, SendEntries: entries,
			SendStatus: status.Base, RecvRing: rring, RecvEntries: entries,
			RecvCpl: rcpl, RecvStatus: status.Base + 8, MSIVector: msiNICBase + q}
		n.NIC.ConfigureQueue(cfg)
		recv := nic.NewRecvRing(n.Fab, n.NIC, cfg)
		n.recvRings = append(n.recvRings, recv)
		if q == 0 {
			n.sendRing = nic.NewSendRing(n.Fab, n.NIC, cfg)
			n.recvRing = recv
		}
		q := q
		n.Fab.OnMSI(msiNICBase+q, func() {
			n.Host.RaiseIRQ("interrupt", 0, func() {
				// NAPI-style bottom half: complete transmit jobs and
				// re-arm the send side (queue 0 owns transmit); each
				// receive service re-arms its own queue after draining.
				if q == 0 {
					n.sweepSendCompletions()
					n.sendRing.Arm()
					n.sendCond.Broadcast()
				}
				n.rxWake.Broadcast()
			})
		})
		if n.Env.HandlerProcs() {
			n.Env.SpawnHandler(fmt.Sprintf("%s-net-rx%d", n.Name, q), (&netRxMachine{n: n, recv: recv}).run)
		} else {
			n.Env.Spawn(fmt.Sprintf("%s-net-rx%d", n.Name, q), func(p *sim.Proc) { n.netRxLoop(p, recv) })
		}
		n.postRecvBuffers(recv)
		recv.Arm()
	}
	n.sendRing.Arm()
}

// hostQID maps a host RSS queue index to a NIC queue id, skipping
// queue 1 (reserved for the HDC Engine on DCS nodes).
func hostQID(q int) uint16 {
	if q == 0 {
		return 0
	}
	return uint16(q + 1) // 2, 3, 4, ...
}

// postRecvBuffers keeps a host receive ring stocked with MTU-sized
// kernel buffers.
func (n *Node) postRecvBuffers(r *nic.RecvRing) {
	var bds []nic.RecvBD
	for r.Unconsumed()+len(bds) < 1023 {
		bds = append(bds, nic.RecvBD{Addr: n.allocHost(2048), Len: 2048})
	}
	if len(bds) > 0 {
		if err := r.Post(bds); err != nil {
			panic(err)
		}
		r.RingDoorbell()
	}
}

// writebackPage flushes one dirty page to the SSD via the host NVMe
// path (used by the HDC Driver's consistency check).
func (n *Node) writebackPage(p *sim.Proc, f *hostos.File, page int, data []byte) {
	buf := n.allocHost(hostos.BlockSize)
	n.MM.Write(buf, data)
	lba := f.LBAs()[page]
	sig := sim.NewSignal(n.Env)
	n.Host.Exec(p, "block-layer", n.Params.Host.BlockSubmit, nil)
	n.submitHostNVMe(p, n.fileDev[f.Name], true, lba, 1, []mem.Addr{buf}, sig)
	sig.Wait(p)
}

// Host NVMe driver recovery policy: a retryable media error is
// re-submitted with exponential backoff a bounded number of times.
const (
	hostNVMeMaxRetries   = 4
	hostNVMeRetryBackoff = 5 * sim.Microsecond
)

// submitHostNVMe issues one NVMe command from the host driver's ring.
// CPU cost is charged by the caller; this performs the ring protocol.
func (n *Node) submitHostNVMe(p *sim.Proc, dev uint8, write bool, lba uint64, blocks int, pages []mem.Addr, done *sim.Signal) {
	prpBuf := n.allocHost(4096)
	prp1, prp2, err := nvme.BuildPRPs(n.MM, pages, prpBuf)
	if err != nil {
		panic(err)
	}
	op := nvme.OpRead
	if write {
		op = nvme.OpWrite
	}
	n.issueHostNVMe(p, dev, nvme.Command{
		Opcode: op, NSID: 1, PRP1: prp1, PRP2: prp2,
		SLBA: lba, NLB: uint16(blocks - 1),
	}, 0, done)
}

// issueHostNVMe submits one attempt of a command and arranges retries.
// The PRP lists are reused verbatim: a media error is injected before
// the SSD moves data or commits flash, so a re-submission is
// idempotent.
func (n *Node) issueHostNVMe(p *sim.Proc, dev uint8, cmd nvme.Command, attempt int, done *sim.Signal) {
	ring := n.nvmeRings[dev]
	for ring.Full() {
		n.nvmeWait.Wait(p)
	}
	_, err := ring.Submit(cmd, n.hostNVMeCplFn(dev, cmd, attempt, done))
	if err != nil {
		panic(err)
	}
	ring.RingDoorbell()
}

// hostNVMeCplFn builds the completion callback for one attempt of a
// host-driver command: success fires the caller's signal, a retryable
// media error arranges a backed-off re-submission. Completion
// callbacks run on the scheduler and cannot block, so the re-issue
// runs in its own proc — a run-to-completion retry machine under
// handler procs, a spawned goroutine proc otherwise (the two are
// schedule-identical; the handler skips the goroutine park/resume
// handoffs).
func (n *Node) hostNVMeCplFn(dev uint8, cmd nvme.Command, attempt int, done *sim.Signal) func(nvme.Completion) {
	if n.Env.HandlerProcs() {
		return n.hostNVMeCplFnH(dev, cmd, attempt, done)
	}
	return func(cpl nvme.Completion) {
		switch {
		case cpl.Status == nvme.StatusSuccess:
			done.Fire(nil)
		case nvme.Retryable(cpl.Status) && attempt < hostNVMeMaxRetries:
			n.hostNVMeRetries++
			n.Env.Spawn(fmt.Sprintf("%s-nvme%d-retry", n.Name, dev), func(rp *sim.Proc) {
				rp.Sleep(hostNVMeRetryBackoff << uint(attempt))
				n.issueHostNVMe(rp, dev, cmd, attempt+1, done)
			})
		default:
			panic(fmt.Sprintf("core: nvme status %#x after %d attempts", cpl.Status, attempt+1))
		}
	}
}

// hostNVMeCplFnH is the handler-proc flavor of hostNVMeCplFn: the
// re-submission runs as a run-to-completion retry machine. It is a
// separate constructor (rather than a branch inside the shared one)
// so the machine's own re-submission path never reaches the goroutine
// flavor's blocking Sleep even syntactically.
func (n *Node) hostNVMeCplFnH(dev uint8, cmd nvme.Command, attempt int, done *sim.Signal) func(nvme.Completion) {
	return func(cpl nvme.Completion) {
		switch {
		case cpl.Status == nvme.StatusSuccess:
			done.Fire(nil)
		case nvme.Retryable(cpl.Status) && attempt < hostNVMeMaxRetries:
			n.hostNVMeRetries++
			m := &nvmeRetryMachine{n: n, dev: dev, cmd: cmd, attempt: attempt + 1, done: done}
			n.Env.SpawnHandler(fmt.Sprintf("%s-nvme%d-retry", n.Name, dev), m.run)
		default:
			panic(fmt.Sprintf("core: nvme status %#x after %d attempts", cpl.Status, attempt+1))
		}
	}
}

// nvmeRetryMachine is the handler-proc form of the retry spawn in
// hostNVMeCplFn: first dispatch re-arms for the exponential backoff,
// subsequent dispatches re-check ring space (enrolling on nvmeWait
// exactly where a goroutine would park) and re-submit.
type nvmeRetryMachine struct {
	n       *Node
	dev     uint8
	cmd     nvme.Command
	attempt int // attempt number of the re-submission being arranged
	done    *sim.Signal
	slept   bool
}

func (m *nvmeRetryMachine) run(h *sim.HandlerCtx) {
	if !m.slept {
		m.slept = true
		h.Rearm(hostNVMeRetryBackoff << uint(m.attempt-1))
		return
	}
	ring := m.n.nvmeRings[m.dev]
	if ring.Full() {
		m.n.nvmeWait.WaitH(h)
		return
	}
	if _, err := ring.Submit(m.cmd, m.n.hostNVMeCplFnH(m.dev, m.cmd, m.attempt, m.done)); err != nil {
		panic(err)
	}
	ring.RingDoorbell()
	h.Exit()
}

// Fallbacks returns how many operations completed on the
// host-mediated path after an engine failure.
func (n *Node) Fallbacks() int64 { return n.fallbacks }

// HostNVMeRetries returns how many NVMe commands the host driver
// re-submitted after retryable media errors.
func (n *Node) HostNVMeRetries() int64 { return n.hostNVMeRetries }
