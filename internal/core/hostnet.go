package core

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// OpenHostConn registers a host-terminated TCP-lite connection; flow
// is the node's transmit direction. With RSS enabled, connections are
// steered round-robin across the host receive queues.
func (n *Node) OpenHostConn(id uint64, flow ether.Flow) {
	if _, dup := n.conns[id]; dup {
		panic(fmt.Sprintf("core: connection %d exists on %s", id, n.Name))
	}
	c := &hostConn{id: id, flow: flow, avail: sim.NewCond(n.Env)}
	n.conns[id] = c
	n.connsRx[flow.Reverse().Tuple()] = c
	if len(n.recvRings) > 1 {
		q := n.nextRSS % len(n.recvRings)
		n.nextRSS++
		n.NIC.SetSteering(flow.Reverse().Tuple(), hostQID(q))
	}
}

// lookupConnByTuple finds the host connection matching an inbound
// packet's tuple (indexed: this runs once per received frame).
func (n *Node) lookupConnByTuple(t ether.Tuple) *hostConn {
	return n.connsRx[t]
}

// rxSeg is one parsed in-order segment awaiting stream delivery.
type rxSeg struct {
	c       *hostConn
	payload []byte // view into the frame buffer, valid until repost
}

// netRxCost returns the NAPI-style batch charge for a poll of k
// frames: per-frame stack cost is uniform, so one core occupancy
// covers the batch. Totals charged to the accountant are unchanged,
// and readers only observe the batch after the delivery broadcast
// either way.
func (n *Node) netRxCost(k int) sim.Time {
	hp := n.Params.Host
	cost := sim.Time(k) * hp.SockPerSeg
	if n.Kind == Vanilla {
		cost += sim.Time(k) * hp.SockBufOp
	}
	return cost
}

// deliverNetRx is the charge-free tail of one receive poll: parse,
// reassemble connection streams, wake readers, repost buffers. Shared
// by the goroutine and handler flavors of the receive service so the
// two stay byte-identical. segs is caller-owned scratch, returned for
// reuse.
func (n *Node) deliverNetRx(recv *nic.RecvRing, fills []nic.Filled, segs []rxSeg) []rxSeg {
	segs = segs[:0]
	for _, f := range fills {
		// View: the payload is copied into c.stream before the
		// buffer is reposted by postRecvBuffers below.
		frame := n.MM.View(f.Addr, int(f.Cpl.HdrLen)+int(f.Cpl.PayLen))
		seg, err := ether.ParseView(frame)
		if err != nil {
			continue // corrupt frame: dropped by checksum
		}
		c := n.lookupConnByTuple(seg.Flow.Tuple())
		if c == nil {
			continue
		}
		if seg.Seq != c.rxSeq {
			panic(fmt.Sprintf("core: out-of-order seq %d (want %d) on conn %d at %s",
				seg.Seq, c.rxSeq, c.id, n.Name))
		}
		c.rxSeq += uint32(len(seg.Payload))
		segs = append(segs, rxSeg{c, seg.Payload})
	}
	// Segment-granularity delivery: a poll batch of a bulk stream is
	// a run of contiguous frames for one connection (the flow fast
	// path delivers whole segments this way). Reserve each run's
	// bytes at once so reassembly compacts/grows per run, not per
	// frame. Purely a data-structure change — stream contents,
	// rxSeq advancement, and all charged costs are unchanged.
	for i := 0; i < len(segs); {
		j, runBytes := i, 0
		for ; j < len(segs) && segs[j].c == segs[i].c; j++ {
			runBytes += len(segs[j].payload)
		}
		segs[i].c.reserveStream(runBytes)
		c := segs[i].c
		for ; i < j; i++ {
			segs[i].c.pushStream(segs[i].payload)
		}
		// Wake only this connection's readers, once per run.
		c.avail.Broadcast()
	}
	n.postRecvBuffers(recv)
	return segs
}

// netRxLoop is the host receive service (softirq/NAPI analogue): it
// drains NIC completions, charges per-frame network-stack cost,
// reassembles connection streams, and reposts buffers.
func (n *Node) netRxLoop(p *sim.Proc, recv *nic.RecvRing) {
	var fills []nic.Filled // scratch, reused across wakes
	var segs []rxSeg       // scratch, reused across wakes
	for {
		fills = recv.AppendPoll(fills[:0])
		if len(fills) == 0 {
			// Re-arm with the current ack before parking; completions
			// that raced in trigger an immediate interrupt (NAPI's
			// re-enable-then-repoll race closure).
			recv.Arm()
			n.rxWake.Wait(p)
			continue
		}
		n.Host.Exec(p, trace.CatNetStack, n.netRxCost(len(fills)), nil)
		segs = n.deliverNetRx(recv, fills, segs)
	}
}

// netRxState enumerates where the handler receive service resumes.
type netRxState int

const (
	nrPoll netRxState = iota // poll the ring (or park on the wake cond)
	nrExec                   // batch stack charge in progress
)

// netRxMachine is the handler flavor of netRxLoop: the same poll /
// arm-and-wait / charge / deliver cycle as a run-to-completion state
// machine (DESIGN.md §16).
type netRxMachine struct {
	n     *Node
	recv  *nic.RecvRing
	st    netRxState
	fills []nic.Filled
	segs  []rxSeg
	exec  hostos.ExecH
}

// run is the machine's handler body.
func (m *netRxMachine) run(h *sim.HandlerCtx) {
	n := m.n
	for {
		switch m.st {
		case nrPoll:
			m.fills = m.recv.AppendPoll(m.fills[:0])
			if len(m.fills) == 0 {
				// Re-arm then enroll, closing the same re-enable race as
				// the goroutine's Arm-before-Wait; every broadcast
				// redispatches here and re-polls.
				m.recv.Arm()
				n.rxWake.WaitH(h)
				return
			}
			m.exec.Start(n.Host, trace.CatNetStack, n.netRxCost(len(m.fills)), nil)
			m.st = nrExec
		case nrExec:
			if !m.exec.Step(h) {
				return
			}
			m.segs = n.deliverNetRx(m.recv, m.fills, m.segs)
			m.st = nrPoll
		}
	}
}

// hostNetRecv blocks until want bytes of the connection's stream are
// available and consumes them, charging the receive-path costs (the
// user-copy "gathering" of scattered packet payloads).
func (n *Node) hostNetRecv(p *sim.Proc, bd *trace.Breakdown, connID uint64, want int) []byte {
	c, ok := n.conns[connID]
	if !ok {
		panic(fmt.Sprintf("core: recv on unknown conn %d", connID))
	}
	hp := n.Params.Host
	n.Host.Exec(p, trace.CatNetStack, hp.SyscallEntry+hp.SockRecvSetup, bd)
	start := p.Now()
	for c.streamLen() < want {
		c.avail.Wait(p)
	}
	bd.Add(trace.CatIdleWait, p.Now()-start)
	out := c.takeStream(want)
	if n.Kind == Vanilla {
		n.Host.Exec(p, trace.CatSockBuf, hp.SockBufOp, bd)
	}
	// Copy out of kernel buffers into the caller's contiguous buffer.
	n.Host.Copy(p, trace.CatDataCopy, want, bd)
	n.Host.Exec(p, trace.CatNetStack, hp.SyscallExit, bd)
	return out
}

// hostNetRecvTo is hostNetRecv that also lands the bytes at a bus
// address (the contiguous buffer later ops DMA from).
func (n *Node) hostNetRecvTo(p *sim.Proc, bd *trace.Breakdown, connID uint64, want int, dst mem.Addr) []byte {
	data := n.hostNetRecv(p, bd, connID, want)
	n.MM.Write(dst, data)
	return data
}

// hostNetSend transmits nbytes from src (host DRAM, or GPU VRAM under
// SW-P2P) on the connection through the host network stack with LSO.
func (n *Node) hostNetSend(p *sim.Proc, bd *trace.Breakdown, connID uint64, src mem.Addr, nbytes int) {
	c, ok := n.conns[connID]
	if !ok {
		panic(fmt.Sprintf("core: send on unknown conn %d", connID))
	}
	hp := n.Params.Host
	n.trace("kernel", "send() enter")
	n.Host.Exec(p, trace.CatNetStack, hp.SyscallEntry+hp.SockSendSetup, bd)
	if n.Kind == Vanilla {
		n.Host.Exec(p, trace.CatSockBuf, hp.SockBufOp, bd)
		n.Host.Copy(p, trace.CatDataCopy, nbytes, bd)
	}

	// One LSO job per 64 KB: header template + payload BDs.
	const job = 64 << 10
	for off := 0; off < nbytes; off += job {
		seg := nbytes - off
		if seg > job {
			seg = job
		}
		n.Host.Exec(p, trace.CatNetStack, hp.SockPerSeg, bd)
		hdr := ether.HeaderTemplate(c.flow, c.txSeq, ether.FlagACK|ether.FlagPSH)
		hdrAddr := n.allocHost(64)
		n.MM.Write(hdrAddr, hdr)
		c.txSeq += uint32(seg)
		bds := []nic.SendBD{{Addr: hdrAddr, Len: uint16(len(hdr)), Flags: nic.SendFlagLSO, MSS: ether.MSS}}
		const frag = 32 << 10
		for o := 0; o < seg; o += frag {
			k := seg - o
			if k > frag {
				k = frag
			}
			bds = append(bds, nic.SendBD{Addr: src + mem.Addr(off+o), Len: uint16(k)})
		}
		bds[len(bds)-1].Flags |= nic.SendFlagEnd
		for n.sendRing.FreeSlots() < len(bds) {
			n.sendCond.Wait(p)
		}
		if err := n.sendRing.Push(bds); err != nil {
			panic(err)
		}
		n.trace("driver", "nic doorbell")
		n.Host.Exec(p, trace.CatDevCtrl, hp.SockPerSeg/2, bd)
		sig := sim.NewSignal(n.Env)
		n.pendTx = append(n.pendTx, hostPendingSend{tail: n.sendRing.Tail(), sig: sig})
		n.sendRing.RingDoorbell()
		// Wait for the NIC to fetch the job (buffer reuse safety).
		n.Host.Exec(p, trace.CatInterrupt, hp.CtxSwitch, bd)
		start := p.Now()
		n.waitSendCompleted(p, sig)
		bd.Add(trace.CatNICTransmit, p.Now()-start)
	}
	n.Host.Exec(p, trace.CatNetStack, hp.SyscallExit, bd)
	n.trace("kernel", "send() exit")
}

// sweepSendCompletions fires pending transmit signals whose BDs the
// NIC has consumed (runs in the IRQ bottom half).
func (n *Node) sweepSendCompletions() {
	completed := n.sendRing.Completed()
	k := 0
	for _, ps := range n.pendTx {
		if ps.tail > completed {
			break
		}
		ps.sig.Fire(nil)
		k++
	}
	n.pendTx = n.pendTx[k:]
}

// waitSendCompleted blocks until the job's fetch completion; the IRQ
// bottom half performs the sweep that fires the signal.
func (n *Node) waitSendCompleted(p *sim.Proc, sig *sim.Signal) {
	n.sweepSendCompletions() // the NIC may already have fetched it
	sig.Wait(p)
}

// StreamLen returns the bytes buffered on a host connection.
func (n *Node) StreamLen(connID uint64) int {
	c, ok := n.conns[connID]
	if !ok {
		return 0
	}
	return c.streamLen()
}
