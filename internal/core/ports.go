package core

import "fmt"

// Connection port allocation: client-side ports are drawn from the
// ephemeral range [connPortBase, 65535]; the server-side port is fixed
// per epoch, starting at connSrvPortBase and moving up one each time
// the client range wraps. Within an epoch every client port is unique;
// across epochs the server ports differ — so a (server, client) pair
// never repeats until the server-port space itself runs out, at which
// point AllocPair panics instead of silently colliding. (The older
// two-node scheme advanced the server port by id%1000 inside a
// 1000-port epoch block, which exhausted the space 57× sooner and
// could not be shared by nodes that did not share a connection-id
// counter.)
const (
	connPortBase    = 40000
	connSrvPortBase = 8000

	cliPortsPerEpoch = 65536 - connPortBase
	srvPortEpochs    = 65536 - connSrvPortBase
)

// PortSpace allocates collision-free (server, client) port pairs for
// the connections of one node pair. The zero value is ready to use, so
// a rack can keep one per directed node pair in a map without a
// constructor; distinct node pairs need distinct PortSpaces only for
// capacity — their connection tuples already differ by IP.
type PortSpace struct {
	nextCli uint32 // next client-side ephemeral port; 0 means unstarted
	epoch   uint32 // completed wraps of the client range
}

// AllocPair returns the next collision-free (server, client) port
// pair. The space holds srvPortEpochs × cliPortsPerEpoch (≈1.47
// billion) pairs; exhausting it panics with a clear message.
func (ps *PortSpace) AllocPair() (srvPort, cliPort uint16) {
	if ps.nextCli == 0 {
		ps.nextCli = connPortBase
	}
	if ps.nextCli > 65535 {
		ps.nextCli = connPortBase
		ps.epoch++
	}
	if ps.epoch >= srvPortEpochs {
		panic(fmt.Sprintf("core: connection port space exhausted after %d pairs",
			uint64(srvPortEpochs)*uint64(cliPortsPerEpoch)))
	}
	cli := ps.nextCli
	ps.nextCli++
	return uint16(connSrvPortBase + ps.epoch), uint16(cli)
}

// Allocated returns how many pairs have been handed out.
func (ps *PortSpace) Allocated() uint64 {
	if ps.nextCli == 0 {
		return 0
	}
	return uint64(ps.epoch)*uint64(cliPortsPerEpoch) + uint64(ps.nextCli-connPortBase)
}
