package core

import (
	"bytes"
	"testing"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/sim"
)

// TestPortSpaceUniqueness drives one PortSpace across several epoch
// wraps and checks that no (server, client) pair ever repeats — the
// regression the old Cluster epoch arithmetic invited (server-port
// reuse after the client range wrapped).
func TestPortSpaceUniqueness(t *testing.T) {
	var ps PortSpace
	seen := map[uint32]bool{}
	n := 2*cliPortsPerEpoch + 100 // cross two epoch boundaries
	for i := 0; i < n; i++ {
		srv, cli := ps.AllocPair()
		if srv < connSrvPortBase {
			t.Fatalf("server port %d below base %d", srv, connSrvPortBase)
		}
		if cli < connPortBase {
			t.Fatalf("client port %d below ephemeral base %d", cli, connPortBase)
		}
		key := uint32(srv)<<16 | uint32(cli)
		if seen[key] {
			t.Fatalf("pair (%d, %d) repeated after %d allocations", srv, cli, i)
		}
		seen[key] = true
	}
	if got := ps.Allocated(); got != uint64(n) {
		t.Fatalf("Allocated() = %d, want %d", got, n)
	}
}

// TestRackConnTupleUniqueness opens connections from several clients
// to one server and checks every receive tuple registered on the
// server is distinct (connsRx silently overwrites on collision, so the
// map size is the proof).
func TestRackConnTupleUniqueness(t *testing.T) {
	r := NewRack(RackParams{Nodes: 4, Domains: 2})
	const perClient = 50
	total := 0
	for client := 1; client < 4; client++ {
		for j := 0; j < perClient; j++ {
			r.OpenConn(client, 0, false)
			total++
		}
	}
	if got := len(r.Nodes[0].connsRx); got != total {
		t.Fatalf("server has %d distinct receive tuples, want %d (tuple collision)", got, total)
	}
}

// TestRackEndToEnd pushes a payload across the switched fabric between
// two nodes on different ToRs and different domains, serial and
// sharded, and checks the bytes arrive intact either way.
func TestRackEndToEnd(t *testing.T) {
	for _, workers := range []int{1, 2} {
		r := NewRack(RackParams{
			Nodes: 4, Domains: 2, Workers: workers,
			Spec: rackSpecSmall(),
		})
		conn := r.OpenConn(3, 0, false) // node 3 (ToR 1) -> node 0 (ToR 0)
		payload := make([]byte, 48<<10)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		var got []byte
		r.Nodes[3].Env.Spawn("send", func(p *sim.Proc) {
			r.NodeSend(p, 3, conn, payload)
		})
		r.Nodes[0].Env.Spawn("recv", func(p *sim.Proc) {
			got = r.NodeRecv(p, 0, conn, len(payload))
		})
		end := r.Run(-1)
		if !bytes.Equal(got, payload) {
			t.Fatalf("workers=%d: received %d bytes, want %d intact", workers, len(got), len(payload))
		}
		if end <= 0 {
			t.Fatalf("workers=%d: rack finished at %v", workers, end)
		}
		frames, wireBytes, drops := r.FabricStats()
		if frames == 0 || wireBytes == 0 {
			t.Fatalf("workers=%d: no traffic crossed the fabric (frames=%d bytes=%d)", workers, frames, wireBytes)
		}
		if drops != 0 {
			t.Fatalf("workers=%d: %d unroutable frames", workers, drops)
		}
		st := r.Stats()
		if st.Windows == 0 || st.CrossFrames == 0 {
			t.Fatalf("workers=%d: kernel ran no windows (%+v)", workers, st)
		}
	}
}

// rackSpecSmall is a 2-nodes-per-ToR spec so tiny racks still exercise
// the spine tier.
func rackSpecSmall() ether.RackSpec {
	return ether.RackSpec{NodesPerToR: 2}
}
