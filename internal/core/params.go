// Package core assembles the testbed: a node is a host (CPU cores +
// kernel stacks) plus an NVMe SSD, a 10-GbE NIC, a GPU, and — in the
// DCS-ctrl configuration — the HDC Engine, all behind a PCIe switch.
// It implements the paper's compared designs as multi-device task
// execution paths over the same device models:
//
//   - Vanilla: stock kernel (page cache, socket buffers, copies).
//   - SWOpt: optimized kernel (direct I/O, reduced copies), data
//     staged through host DRAM — the paper's baseline (§II-B1).
//   - SWP2P: software-controlled peer-to-peer — data moves directly
//     between devices where a P2P target exists (GPU VRAM), but every
//     control action still runs on the host CPU.
//   - DevIntegration: a tightly integrated storage+NIC+accelerator
//     device (QuickSAN/BlueDBM-style reference point of Figure 3).
//   - DCSCtrl: the paper's contribution — control and data both move
//     to the HDC Engine.
package core

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/gpu"
	"dcsctrl/internal/hdc"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Config selects a server design.
type Config int

// The compared designs.
const (
	Vanilla Config = iota
	SWOpt
	SWP2P
	DevIntegration
	DCSCtrl
)

func (c Config) String() string {
	switch c {
	case Vanilla:
		return "vanilla"
	case SWOpt:
		return "sw-opt"
	case SWP2P:
		return "sw-p2p"
	case DevIntegration:
		return "dev-integration"
	case DCSCtrl:
		return "dcs-ctrl"
	default:
		return fmt.Sprintf("config(%d)", int(c))
	}
}

// Params bundles every model's parameters. Calibration constants live
// here; EXPERIMENTS.md documents their provenance.
type Params struct {
	Host   hostos.Params
	SSD    nvme.Params
	NIC    nic.Params
	GPU    gpu.Params
	PCIe   pcie.Params
	HDC    hdc.Params
	Driver hdc.DriverParams

	// Integrated-device reference (Figure 3): a consolidated
	// storage+NIC+accelerator with an internal interconnect.
	IntegratedInternalBps float64  // internal data-path bandwidth
	IntegratedCtrl        sim.Time // hardware control path per op

	// NumSSDs is the number of SSDs per node (Figure 13 assumes six).
	// Files are distributed round-robin across them.
	NumSSDs int
	// NDPFuncs lists the NDP units provisioned on DCS engines; nil
	// means all of them. Narrow it when provisioning for a faster
	// line rate so the design still fits the Virtex-7.
	NDPFuncs []uint8
	// HostNICQueues is the host driver's receive-queue count (RSS).
	// One queue suffices at 10 GbE; the 40 GbE experiments need
	// several so the softirq path scales across cores.
	HostNICQueues int
	// HostArenaBytes sizes the host staging-buffer arena. It must
	// exceed the peak in-flight buffer footprint (concurrent ops ×
	// object size); the 40 GbE runs need more than the default.
	HostArenaBytes uint64
	// EngineNICQueues is the number of NIC queue pairs the HDC Engine
	// drives. One suffices at 10 GbE; 40 GbE needs several, exactly
	// as the host side needs RSS.
	EngineNICQueues int

	// Faults, when non-nil, threads a deterministic fault injector
	// through every device model on the node (internal/fault). NewNode
	// also arms the HDC Driver's command watchdog (unless CmdTimeout
	// was set explicitly) so an injected engine failure is detected
	// and recovered rather than hanging the run.
	Faults *fault.Injector
}

// DefaultParams return the full calibrated parameter set.
func DefaultParams() Params {
	return Params{
		Host:                  hostos.DefaultParams(),
		SSD:                   nvme.DefaultParams(),
		NIC:                   nic.DefaultParams(),
		GPU:                   gpu.DefaultParams(),
		PCIe:                  pcie.DefaultParams(),
		HDC:                   hdc.DefaultParams(),
		Driver:                hdc.DefaultDriverParams(),
		IntegratedInternalBps: 64e9,
		IntegratedCtrl:        1 * sim.Microsecond,
		NumSSDs:               1,
		HostNICQueues:         1,
		HostArenaBytes:        128 << 20,
		EngineNICQueues:       1,
	}
}

// Processing identifies the intermediate data processing of a task
// (Table II), mapped to NDP functions or GPU kernels depending on the
// configuration.
type Processing uint8

// Supported intermediate processing kinds.
const (
	ProcNone   Processing = Processing(hdc.FnNone)
	ProcMD5    Processing = Processing(hdc.FnMD5)
	ProcCRC32  Processing = Processing(hdc.FnCRC32)
	ProcSHA256 Processing = Processing(hdc.FnSHA256)
	ProcAES256 Processing = Processing(hdc.FnAES256)
	ProcGZIP   Processing = Processing(hdc.FnGZIP)
)

func (p Processing) String() string { return hdc.FnName(uint8(p)) }

// gpuKernel maps a processing kind to the GPU kernel the baselines
// offload it to; ok is false when the GPU has no such kernel (the
// baseline then computes on the CPU).
func (p Processing) gpuKernel() (gpu.KernelKind, bool) {
	switch p {
	case ProcMD5:
		return gpu.KernelMD5, true
	case ProcCRC32:
		return gpu.KernelCRC32, true
	default:
		return 0, false
	}
}
