package pcie

import (
	"bytes"
	"strings"
	"testing"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

type rig struct {
	env    *sim.Env
	mm     *mem.Map
	fab    *Fabric
	host   *Port
	ssd    *Port
	nic    *Port
	gpu    *Port
	hdc    *Port
	dram   *mem.Region
	ssdBuf *mem.Region // device-internal, NOT a P2P target
	nicBuf *mem.Region // device-internal, NOT a P2P target
	vram   *mem.Region // exposed P2P target
	ddr3   *mem.Region // exposed P2P target (HDC on-board DRAM)
}

func newRig() *rig {
	env := sim.NewEnv()
	mm := mem.NewMap()
	fab := NewFabric(env, mm, DefaultParams())
	r := &rig{env: env, mm: mm, fab: fab}
	r.host = fab.AddPort("root-complex")
	r.ssd = fab.AddPort("nvme-ssd")
	r.nic = fab.AddPort("nic")
	r.gpu = fab.AddPort("gpu")
	r.hdc = fab.AddPort("hdc-engine")
	r.dram = mm.AddRegion("host-dram", mem.HostDRAM, 16<<20, true)
	r.ssdBuf = mm.AddRegion("ssd-internal", mem.DeviceInternal, 1<<20, false)
	r.nicBuf = mm.AddRegion("nic-internal", mem.DeviceInternal, 1<<20, false)
	r.vram = mm.AddRegion("gpu-vram", mem.GPUVRAM, 16<<20, true)
	r.ddr3 = mm.AddRegion("hdc-ddr3", mem.DeviceDRAM, 16<<20, true)
	fab.Attach(r.host, r.dram)
	fab.Attach(r.ssd, r.ssdBuf)
	fab.Attach(r.nic, r.nicBuf)
	fab.Attach(r.gpu, r.vram)
	fab.Attach(r.hdc, r.ddr3)
	return r
}

func TestDMAMovesRealBytes(t *testing.T) {
	r := newRig()
	payload := []byte("block 42 contents, for real")
	r.mm.Write(r.ssdBuf.Base, payload)
	var err error
	r.env.Spawn("ssd-dma", func(p *sim.Proc) {
		// SSD (DMA master) writes its internal buffer to host DRAM.
		err = r.fab.DMA(p, r.ssd, r.dram.Base+4096, r.ssdBuf.Base, len(payload))
	})
	r.env.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.mm.Read(r.dram.Base+4096, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if r.fab.HostBytes() != int64(len(payload)) || r.fab.P2PBytes() != 0 {
		t.Fatalf("host=%d p2p=%d", r.fab.HostBytes(), r.fab.P2PBytes())
	}
}

func TestDMATiming(t *testing.T) {
	r := newRig()
	var end sim.Time
	r.env.Spawn("dma", func(p *sim.Proc) {
		r.fab.MustDMA(p, r.ssd, r.dram.Base, r.ssdBuf.Base, 4096)
		end = p.Now()
	})
	r.env.Run(-1)
	params := DefaultParams()
	want := params.PropLatency + params.DMASetup +
		2*sim.BpsToTime(4096, params.LinkBps) + sim.BpsToTime(4096, params.CoreBps)
	if end != want {
		t.Fatalf("DMA end = %v, want %v", end, want)
	}
}

func TestP2PPolicySSDToNICForbidden(t *testing.T) {
	r := newRig()
	var err error
	r.env.Spawn("dma", func(p *sim.Proc) {
		// The paper's key constraint: SSD cannot DMA into NIC internal
		// memory — neither device exposes a payload BAR.
		err = r.fab.DMA(p, r.ssd, r.nicBuf.Base, r.ssdBuf.Base, 4096)
	})
	r.env.Run(-1)
	if err == nil {
		t.Fatal("SSD->NIC direct DMA was allowed")
	}
	if !strings.Contains(err.Error(), "not a P2P target") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestP2PPolicySSDToGPUAllowed(t *testing.T) {
	r := newRig()
	payload := []byte("gpudirect-style peer write")
	r.mm.Write(r.ssdBuf.Base, payload)
	var err error
	r.env.Spawn("dma", func(p *sim.Proc) {
		err = r.fab.DMA(p, r.ssd, r.vram.Base, r.ssdBuf.Base, len(payload))
	})
	r.env.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.mm.Read(r.vram.Base, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("vram = %q", got)
	}
	if r.fab.P2PBytes() != int64(len(payload)) {
		t.Fatalf("p2p bytes = %d", r.fab.P2PBytes())
	}
}

func TestP2PPolicyHDCDDR3IsTarget(t *testing.T) {
	r := newRig()
	var errIn, errOut error
	r.env.Spawn("dma", func(p *sim.Proc) {
		// SSD writes payload into HDC DDR3, then NIC reads it out:
		// the two legs of a DCS-ctrl SSD->NIC transfer.
		errIn = r.fab.DMA(p, r.ssd, r.ddr3.Base, r.ssdBuf.Base, 4096)
		errOut = r.fab.DMA(p, r.nic, r.nicBuf.Base, r.ddr3.Base, 4096)
	})
	r.env.Run(-1)
	if errIn != nil || errOut != nil {
		t.Fatalf("in=%v out=%v", errIn, errOut)
	}
	if r.fab.HostBytes() != 0 {
		t.Fatalf("host DRAM touched: %d bytes", r.fab.HostBytes())
	}
}

func TestCheckPath(t *testing.T) {
	r := newRig()
	if err := r.fab.CheckPath(r.ssd, r.ssdBuf.Base, r.nicBuf.Base); err == nil {
		t.Fatal("SSD->NIC path reported feasible")
	}
	if err := r.fab.CheckPath(r.ssd, r.ssdBuf.Base, r.vram.Base); err != nil {
		t.Fatalf("SSD->GPU path: %v", err)
	}
	if err := r.fab.CheckPath(r.nic, r.ddr3.Base, r.nicBuf.Base); err != nil {
		t.Fatalf("NIC->HDC path: %v", err)
	}
}

func TestLocalDMAUsesNoBus(t *testing.T) {
	r := newRig()
	r.mm.Write(r.ddr3.Base, []byte("abcd"))
	var end sim.Time
	r.env.Spawn("dma", func(p *sim.Proc) {
		r.fab.MustDMA(p, r.hdc, r.ddr3.Base+1024, r.ddr3.Base, 4)
		end = p.Now()
	})
	r.env.Run(-1)
	if end != DefaultParams().DMASetup {
		t.Fatalf("local DMA took %v", end)
	}
	if r.hdc.BytesIn() != 0 || r.hdc.BytesOut() != 0 {
		t.Fatal("local DMA counted as bus traffic")
	}
	if got := r.mm.Read(r.ddr3.Base+1024, 4); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("local copy = %q", got)
	}
}

func TestConcurrentDMANoDeadlock(t *testing.T) {
	r := newRig()
	done := 0
	// Cross traffic: ssd->hdc and hdc->ssd-direction (gpu->dram etc.)
	// exercise opposite-order link acquisition.
	r.env.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			r.fab.MustDMA(p, r.ssd, r.ddr3.Base, r.ssdBuf.Base, 4096)
		}
		done++
	})
	r.env.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			r.fab.MustDMA(p, r.hdc, r.dram.Base, r.ddr3.Base, 4096)
		}
		done++
	})
	r.env.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			r.fab.MustDMA(p, r.gpu, r.vram.Base, r.dram.Base, 4096)
		}
		done++
	})
	r.env.Run(-1)
	if done != 3 {
		t.Fatalf("completed %d/3 streams (deadlock?)", done)
	}
	if r.env.Live() != 0 {
		t.Fatalf("%d processes stuck", r.env.Live())
	}
}

func TestPortByteCounters(t *testing.T) {
	r := newRig()
	r.env.Spawn("dma", func(p *sim.Proc) {
		r.fab.MustDMA(p, r.ssd, r.ddr3.Base, r.ssdBuf.Base, 1000)
		r.fab.MustDMA(p, r.ssd, r.ddr3.Base+1000, r.ssdBuf.Base, 500)
	})
	r.env.Run(-1)
	if r.ssd.BytesOut() != 1500 {
		t.Fatalf("ssd out = %d", r.ssd.BytesOut())
	}
	if r.hdc.BytesIn() != 1500 {
		t.Fatalf("hdc in = %d", r.hdc.BytesIn())
	}
}

func TestPostedWriteDoorbell(t *testing.T) {
	r := newRig()
	doorReg := r.mm.AddRegion("ssd-doorbells", mem.MMIO, 4096, true)
	r.fab.Attach(r.ssd, doorReg)
	var rang uint64
	var at sim.Time
	doorReg.SetWriteHook(func(off uint64, n int) {
		rang = le64(doorReg.Bytes(off, 8))
		at = r.env.Now()
	})
	r.fab.PostedWrite(doorReg.Base+16, 7)
	r.env.Run(-1)
	if rang != 7 {
		t.Fatalf("doorbell value = %d", rang)
	}
	if at != DefaultParams().MMIOLatency {
		t.Fatalf("doorbell delivered at %v", at)
	}
}

func TestReadReg(t *testing.T) {
	r := newRig()
	reg := r.mm.AddRegion("regs", mem.MMIO, 64, true)
	r.fab.Attach(r.hdc, reg)
	var b [8]byte
	putLE64(b[:], 0xdeadbeef)
	reg.WriteAt(0, b[:])
	var got uint64
	var end sim.Time
	r.env.Spawn("rd", func(p *sim.Proc) {
		got = r.fab.ReadReg(p, reg.Base)
		end = p.Now()
	})
	r.env.Run(-1)
	if got != 0xdeadbeef {
		t.Fatalf("read %#x", got)
	}
	if end != 2*DefaultParams().MMIOLatency {
		t.Fatalf("read round trip %v", end)
	}
}

func TestMSIDelivery(t *testing.T) {
	r := newRig()
	fired := 0
	r.fab.OnMSI(3, func() { fired++ })
	r.fab.RaiseMSI(3)
	r.fab.RaiseMSI(3)
	r.env.Run(-1)
	if fired != 2 {
		t.Fatalf("MSI fired %d times", fired)
	}
}

func TestMSIUnknownVectorPanics(t *testing.T) {
	r := newRig()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.fab.RaiseMSI(99)
}

func TestDoubleAttachPanics(t *testing.T) {
	r := newRig()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.fab.Attach(r.nic, r.dram)
}

func TestLE64RoundTrip(t *testing.T) {
	var b [8]byte
	for _, v := range []uint64{0, 1, 0xff, 0xdeadbeefcafe, ^uint64(0)} {
		putLE64(b[:], v)
		if le64(b[:]) != v {
			t.Fatalf("round trip %#x", v)
		}
	}
}
