package pcie

import (
	"bytes"
	"testing"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// scatterExtents carves a deterministic scattered extent list out of
// the SSD-internal buffer and seeds each extent with distinct bytes.
func scatterExtents(r *rig) []mem.Extent {
	exts := []mem.Extent{
		{Addr: r.ssdBuf.Base + 16, Len: 700},
		{Addr: r.ssdBuf.Base + 4096, Len: 4096},
		{Addr: r.ssdBuf.Base + 9000, Len: 13},
		{Addr: r.ssdBuf.Base + 20480, Len: 2048},
	}
	seed := byte(7)
	for _, e := range exts {
		buf := make([]byte, e.Len)
		for i := range buf {
			buf[i] = seed + byte(i*31)
		}
		r.mm.Write(e.Addr, buf)
		seed += 97
	}
	return exts
}

// TestDMAVecEquivalence: a vectored gather/scatter must be
// indistinguishable from the equivalent loop of plain DMAs — same
// destination bytes, same simulated completion time, same port byte
// counters. DMAVec is a mechanical batching of the loop, not a
// different transfer model.
func TestDMAVecEquivalence(t *testing.T) {
	for _, gather := range []bool{true, false} {
		vec, loop := newRig(), newRig()
		exts := scatterExtents(vec)
		scatterExtents(loop)
		if !gather {
			// Scatter reads from the contiguous side: seed it.
			total := 0
			for _, e := range exts {
				total += e.Len
			}
			buf := make([]byte, total)
			for i := range buf {
				buf[i] = byte(i * 13)
			}
			vec.mm.Write(vec.dram.Base, buf)
			loop.mm.Write(loop.dram.Base, buf)
		}

		var vecErr, loopErr error
		vec.env.Spawn("vec", func(p *sim.Proc) {
			vecErr = vec.fab.DMAVec(p, vec.ssd, vec.dram.Base, exts, gather)
		})
		loop.env.Spawn("loop", func(p *sim.Proc) {
			off := 0
			for _, e := range exts {
				dst, src := loop.dram.Base+mem.Addr(off), e.Addr
				if !gather {
					dst, src = e.Addr, loop.dram.Base+mem.Addr(off)
				}
				if loopErr = loop.fab.DMA(p, loop.ssd, dst, src, e.Len); loopErr != nil {
					return
				}
				off += e.Len
			}
		})
		vec.env.Run(-1)
		loop.env.Run(-1)
		if vecErr != nil || loopErr != nil {
			t.Fatalf("gather=%v: vec err=%v loop err=%v", gather, vecErr, loopErr)
		}

		if vn, ln := vec.env.Now(), loop.env.Now(); vn != ln {
			t.Errorf("gather=%v: completion time %v != %v", gather, vn, ln)
		}
		total := 0
		for _, e := range exts {
			total += e.Len
		}
		if gather {
			got := vec.mm.Read(vec.dram.Base, total)
			want := loop.mm.Read(loop.dram.Base, total)
			if !bytes.Equal(got, want) {
				t.Errorf("gather=%v: destination bytes differ", gather)
			}
		} else {
			for _, e := range exts {
				got := vec.mm.Read(e.Addr, e.Len)
				want := loop.mm.Read(e.Addr, e.Len)
				if !bytes.Equal(got, want) {
					t.Errorf("gather=%v: extent at %#x differs", gather, e.Addr)
				}
			}
		}
		for i, pair := range [][2]*Port{{vec.ssd, loop.ssd}, {vec.host, loop.host}} {
			if pair[0].BytesIn() != pair[1].BytesIn() || pair[0].BytesOut() != pair[1].BytesOut() {
				t.Errorf("gather=%v: port %d counters vec=(%d,%d) loop=(%d,%d)", gather, i,
					pair[0].BytesIn(), pair[0].BytesOut(), pair[1].BytesIn(), pair[1].BytesOut())
			}
		}
		if vec.fab.HostBytes() != loop.fab.HostBytes() || vec.fab.P2PBytes() != loop.fab.P2PBytes() {
			t.Errorf("gather=%v: fabric byte counters differ", gather)
		}
	}
}

// TestDMAVecEmptyAndErrors: zero extents is a no-op; a bad extent
// reports an error without panicking.
func TestDMAVecEmpty(t *testing.T) {
	r := newRig()
	var err error
	r.env.Spawn("vec", func(p *sim.Proc) {
		err = r.fab.DMAVec(p, r.ssd, r.dram.Base, nil, true)
	})
	r.env.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if r.env.Now() != 0 {
		t.Fatalf("empty vec advanced time to %v", r.env.Now())
	}
}
