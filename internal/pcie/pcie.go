// Package pcie models the PCI Express fabric of the testbed: a
// multi-slot Gen2 switch (the paper uses a Cyclone PCIe2-2707, five
// slots, 80 Gbps aggregate), per-port serializing links, DMA
// transactions between bus addresses, posted MMIO writes (doorbells),
// and MSI interrupts toward the root complex.
//
// The fabric enforces the peer-to-peer policy encoded in mem.Region:
// a device may always DMA host DRAM and its own BARs, but it may reach
// a peer region only when that region is an exposed P2P target. The
// SSD and the NIC expose none, the GPU and the HDC Engine do — which
// reproduces the paper's constraint that software-controlled P2P
// cannot do SSD↔NIC while DCS-ctrl can (§V-A).
package pcie

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// Fault-recovery timing: a dropped posted write is redelivered by the
// data-link layer's ACK/NAK replay after the replay timer; a delayed
// one sits in a congested switch queue; a degraded link stalls a DMA
// while retraining.
const (
	replayTimeout    = 3 * sim.Microsecond
	congestionDelay  = 1 * sim.Microsecond
	linkRetrainStall = 5 * sim.Microsecond
)

// Params are fabric timing/bandwidth parameters.
type Params struct {
	// LinkBps is each port link's usable bandwidth in bits/s
	// (Gen2 x8: 5 GT/s × 8 lanes × 8b/10b = 32 Gbit/s).
	LinkBps float64
	// PropLatency is the one-way propagation latency through the
	// switch (request routing + serialization start).
	PropLatency sim.Time
	// DMASetup is the fixed per-DMA-transaction overhead (descriptor
	// fetch, tag allocation).
	DMASetup sim.Time
	// MMIOLatency is the delivery latency of a posted write.
	MMIOLatency sim.Time
	// CoreBps is the switch core's aggregate bandwidth (80 Gbps on
	// the Cyclone PCIe2-2707).
	CoreBps float64
	// Faults injects transport-level faults (delayed/dropped posted
	// writes, link degradation); nil disables injection.
	Faults *fault.Injector
}

// DefaultParams mirror the evaluation platform (Table V).
func DefaultParams() Params {
	return Params{
		LinkBps:     32e9,
		PropLatency: 300 * sim.Nanosecond,
		DMASetup:    200 * sim.Nanosecond,
		MMIOLatency: 300 * sim.Nanosecond,
		CoreBps:     80e9,
	}
}

// Port is one switch slot with an attached device (or the root
// complex) and its up/down simplex links.
type Port struct {
	ID   int
	Name string
	up   *sim.BandwidthServer // device -> switch
	down *sim.BandwidthServer // switch -> device

	bytesIn  int64
	bytesOut int64
}

// BytesIn returns bytes DMA'd into regions owned by this port.
func (p *Port) BytesIn() int64 { return p.bytesIn }

// BytesOut returns bytes DMA'd out of regions owned by this port.
func (p *Port) BytesOut() int64 { return p.bytesOut }

// Fabric is the switch plus the address-map-aware transaction engine.
type Fabric struct {
	env    *sim.Env
	mem    *mem.Map
	params Params
	ports  []*Port
	owner  map[*mem.Region]*Port
	core   *sim.BandwidthServer
	msi    map[int]func()

	p2pBytes  int64 // device-to-device payload bytes (never via host DRAM)
	hostBytes int64 // payload bytes with host DRAM as one endpoint

	// postedClock is the delivery time of the latest posted write.
	// PCIe posted writes are strictly ordered, so a delayed or
	// replayed TLP head-of-line blocks every later posted write —
	// without this a delayed command-slot write could be overtaken
	// by its own doorbell.
	postedClock sim.Time

	// Async-DMA engine state: instead of spawning a fresh proc (and
	// allocating its stack and completion signal) per DMAAsync call,
	// finished transfers park their worker on asyncJobs and recycle
	// their signal through sigFree. Both are plain LIFO/FIFO lists
	// drained on the simulated timeline, so reuse order is
	// deterministic — see DESIGN.md §11.
	asyncJobs *sim.Queue[asyncJob]
	asyncIdle int // workers parked on asyncJobs right now
	sigFree   []*sim.Signal

	// pwFree recycles posted-write delivery records (and their bound
	// callbacks) so every doorbell ring doesn't allocate a closure.
	pwFree []*postedWrite
}

// postedWrite is one in-flight posted write. fn is the record's bound
// deliver method, created once per record and reused.
type postedWrite struct {
	f    *Fabric
	addr mem.Addr
	val  uint64
	fn   func()
}

func (pw *postedWrite) deliver() {
	var b [8]byte
	putLE64(b[:], pw.val)
	pw.f.mem.Write(pw.addr, b[:])
	pw.f.pwFree = append(pw.f.pwFree, pw)
}

// asyncJob is one queued DMAAsync transfer.
type asyncJob struct {
	initiator *Port
	dst, src  mem.Addr
	n         int
	sig       *sim.Signal
}

// NewFabric returns a fabric over the given address map.
func NewFabric(env *sim.Env, m *mem.Map, params Params) *Fabric {
	if params.CoreBps <= 0 {
		params.CoreBps = 80e9
	}
	return &Fabric{
		env:       env,
		mem:       m,
		params:    params,
		owner:     map[*mem.Region]*Port{},
		core:      sim.NewBandwidthServer(env, "pcie-core", params.CoreBps, 0),
		msi:       map[int]func(){},
		asyncJobs: sim.NewQueue[asyncJob](env, "dma-async-jobs"),
	}
}

// Mem returns the fabric's address map.
func (f *Fabric) Mem() *mem.Map { return f.mem }

// Params returns the fabric parameters.
func (f *Fabric) Params() Params { return f.params }

// AddPort creates a new slot.
func (f *Fabric) AddPort(name string) *Port {
	p := &Port{
		ID:   len(f.ports),
		Name: name,
		up:   sim.NewBandwidthServer(f.env, name+"-up", f.params.LinkBps, 0),
		down: sim.NewBandwidthServer(f.env, name+"-down", f.params.LinkBps, 0),
	}
	f.ports = append(f.ports, p)
	return p
}

// Attach declares port as the owner of region: DMA touching the
// region traverses this port's link.
func (f *Fabric) Attach(port *Port, region *mem.Region) {
	if prev, ok := f.owner[region]; ok {
		panic(fmt.Sprintf("pcie: region %s already attached to %s", region.Name, prev.Name))
	}
	f.owner[region] = port
}

// OwnerOf returns the port owning the region containing addr.
func (f *Fabric) OwnerOf(addr mem.Addr) (*Port, *mem.Region, error) {
	r, _, err := f.mem.Resolve(addr)
	if err != nil {
		return nil, nil, err
	}
	p, ok := f.owner[r]
	if !ok {
		return nil, r, fmt.Errorf("pcie: region %s not attached to any port", r.Name)
	}
	return p, r, nil
}

// P2PBytes returns payload bytes moved device-to-device.
func (f *Fabric) P2PBytes() int64 { return f.p2pBytes }

// HostBytes returns payload bytes moved with host DRAM as an endpoint.
func (f *Fabric) HostBytes() int64 { return f.hostBytes }

// canReach checks the P2P policy for initiator touching region r.
func canReach(initiator *Port, owner *Port, r *mem.Region) error {
	if owner == initiator {
		return nil // a device always reaches its own BARs/internal memory
	}
	if r.Kind == mem.HostDRAM {
		return nil // root complex accepts DMA from any device
	}
	if !r.P2PTarget {
		return fmt.Errorf("pcie: region %s (%s) is not a P2P target for %s",
			r.Name, r.Kind, initiator.Name)
	}
	return nil
}

// DMA moves n bytes from src to dst on behalf of initiator, charging
// link and switch-core occupancy plus propagation latency, then
// copying the real bytes. It returns an error (without moving data)
// when the P2P policy forbids the access — the condition that makes
// direct SSD↔NIC impossible.
func (f *Fabric) DMA(p *sim.Proc, initiator *Port, dst, src mem.Addr, n int) error {
	if n == 0 {
		return nil
	}
	if n < 0 {
		panic("pcie: negative DMA length")
	}
	srcPort, srcReg, err := f.OwnerOf(src)
	if err != nil {
		return err
	}
	dstPort, dstReg, err := f.OwnerOf(dst)
	if err != nil {
		return err
	}
	if err := canReach(initiator, srcPort, srcReg); err != nil {
		return err
	}
	if err := canReach(initiator, dstPort, dstReg); err != nil {
		return err
	}

	if srcPort == dstPort {
		// Device-local move: no bus traffic, only internal copy time.
		p.Sleep(f.params.DMASetup)
		f.mem.Copy(dst, src, n)
		return nil
	}

	// Store-and-forward through the switch: serialize on the source
	// link, the switch core, and the destination link in turn. Each
	// stage is an independent bandwidth server, so concurrent
	// transactions on disjoint links pipeline freely — no transfer
	// ever holds one link while waiting for another (which would
	// convoy the whole fabric).
	if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
		p.Sleep(linkRetrainStall)
	}
	p.Sleep(f.params.DMASetup)
	srcPort.up.Transfer(p, n)
	f.core.Transfer(p, n)
	dstPort.down.Transfer(p, n)
	p.Sleep(f.params.PropLatency)

	f.mem.Copy(dst, src, n)
	srcPort.bytesOut += int64(n)
	dstPort.bytesIn += int64(n)
	if srcReg.Kind == mem.HostDRAM || dstReg.Kind == mem.HostDRAM {
		f.hostBytes += int64(n)
	} else {
		f.p2pBytes += int64(n)
	}
	return nil
}

// DMAAsync starts a DMA and returns a signal that fires when it
// completes — the "multiple outstanding tags" mode DMA engines use to
// hide per-transaction latency. Policy errors panic (callers validate
// paths at configuration time).
//
// Transfers run on a free-listed pool of worker procs: a new worker is
// spawned only when every existing one is busy. Handing a job to a
// parked worker and spawning a fresh proc both enqueue exactly one
// proc-resume event at the current instant, so the pooled and the
// spawn-per-call implementations dispatch in identical (time, seq)
// order — the pool changes allocation cost, not the event timeline.
// The returned signal may be recycled via RecycleAsyncSignal once the
// waiter has consumed the completion.
func (f *Fabric) DMAAsync(initiator *Port, dst, src mem.Addr, n int) *sim.Signal {
	var sig *sim.Signal
	if k := len(f.sigFree); k > 0 {
		sig = f.sigFree[k-1]
		f.sigFree = f.sigFree[:k-1]
	} else {
		sig = sim.NewSignal(f.env)
	}
	if f.asyncIdle > 0 {
		// Reserve the worker now: a second DMAAsync in the same instant
		// must not count this one as still idle. The job literal stays
		// out of the closure below so this warm path never heap-escapes.
		f.asyncIdle--
		f.asyncJobs.Put(asyncJob{initiator: initiator, dst: dst, src: src, n: n, sig: sig})
		return sig
	}
	job := asyncJob{initiator: initiator, dst: dst, src: src, n: n, sig: sig}
	f.env.Spawn("dma-async", func(p *sim.Proc) {
		for {
			f.MustDMA(p, job.initiator, job.dst, job.src, job.n)
			job.sig.Fire(nil)
			f.asyncIdle++
			job = f.asyncJobs.Get(p)
		}
	})
	return sig
}

// RecycleAsyncSignal returns a consumed DMAAsync completion signal to
// the free list. Optional — callers that retain the signal simply let
// the GC have it — but hot async paths (the NIC receive engine) call
// it to make async DMA allocation-free in steady state. The caller
// must be the sole waiter and must have already observed the fire.
func (f *Fabric) RecycleAsyncSignal(sig *sim.Signal) {
	sig.Reset()
	f.sigFree = append(f.sigFree, sig)
}

// MustDMA is DMA that panics on policy errors; device models use it on
// paths that were validated at configuration time.
func (f *Fabric) MustDMA(p *sim.Proc, initiator *Port, dst, src mem.Addr, n int) {
	if err := f.DMA(p, initiator, dst, src, n); err != nil {
		panic(err)
	}
}

// DMAVec moves a scatter-gather list in one call. When gather is true
// the extents are sources, copied in order into a contiguous window
// starting at base; when false base is the source window, scattered
// across the extents. Zero-length extents are skipped, like a
// zero-length DMA.
//
// Each extent is charged exactly as the equivalent DMA call would be —
// per-extent setup, link/core occupancy, byte counters, and fault
// behaviour are all identical to the hand-written DMA loop it
// replaces (the equivalence test in pcie_test.go pins this down).
// What the vectored form buys is the memory mechanics: extent-by-
// extent region-to-region copies with zero intermediate buffers and
// no per-extent closure or signal state.
func (f *Fabric) DMAVec(p *sim.Proc, initiator *Port, base mem.Addr, exts []mem.Extent, gather bool) error {
	off := mem.Addr(0)
	for _, e := range exts {
		var err error
		if gather {
			err = f.DMA(p, initiator, base+off, e.Addr, e.Len)
		} else {
			err = f.DMA(p, initiator, e.Addr, base+off, e.Len)
		}
		if err != nil {
			return err
		}
		off += mem.Addr(e.Len)
	}
	return nil
}

// MustDMAVec is DMAVec that panics on policy errors.
func (f *Fabric) MustDMAVec(p *sim.Proc, initiator *Port, base mem.Addr, exts []mem.Extent, gather bool) {
	if err := f.DMAVec(p, initiator, base, exts, gather); err != nil {
		panic(err)
	}
}

// CheckPath verifies, without simulating, that initiator may move data
// between the two addresses — used by configuration code to decide
// whether a direct path exists (e.g. SW-P2P feasibility probing).
func (f *Fabric) CheckPath(initiator *Port, a, b mem.Addr) error {
	pa, ra, err := f.OwnerOf(a)
	if err != nil {
		return err
	}
	pb, rb, err := f.OwnerOf(b)
	if err != nil {
		return err
	}
	if err := canReach(initiator, pa, ra); err != nil {
		return err
	}
	return canReach(initiator, pb, rb)
}

// PostedWrite delivers a small write (a doorbell ring) to addr after
// the MMIO latency. It does not block the caller: posted writes
// complete from the initiator's point of view immediately.
//
// Under fault injection the TLP may be delayed (switch congestion) or
// dropped and replayed by the data-link layer — both only add
// delivery latency; posted writes are never lost for good, matching
// PCIe's ACK/NAK guarantee.
func (f *Fabric) PostedWrite(addr mem.Addr, val uint64) {
	delay := f.params.MMIOLatency
	if f.params.Faults.Hit(fault.PCIeDropPosted) {
		delay += replayTimeout
	} else if f.params.Faults.Hit(fault.PCIeDelayPosted) {
		delay += congestionDelay
	}
	deliverAt := f.env.Now() + delay
	if deliverAt < f.postedClock {
		deliverAt = f.postedClock
	}
	f.postedClock = deliverAt
	var pw *postedWrite
	if k := len(f.pwFree); k > 0 {
		pw = f.pwFree[k-1]
		f.pwFree = f.pwFree[:k-1]
	} else {
		pw = &postedWrite{f: f}
		pw.fn = pw.deliver
	}
	pw.addr, pw.val = addr, val
	f.env.Schedule(deliverAt-f.env.Now(), pw.fn)
}

// ReadReg performs a non-posted register read: the caller blocks for a
// round trip and receives the current value.
func (f *Fabric) ReadReg(p *sim.Proc, addr mem.Addr) uint64 {
	p.Sleep(2 * f.params.MMIOLatency)
	return le64(f.mem.View(addr, 8))
}

// OnMSI registers a handler for an interrupt vector. Handlers run on
// the scheduler and must not block (wake a process instead).
func (f *Fabric) OnMSI(vector int, fn func()) {
	if _, dup := f.msi[vector]; dup {
		panic(fmt.Sprintf("pcie: MSI vector %d already registered", vector))
	}
	f.msi[vector] = fn
}

// RaiseMSI posts an interrupt toward the root complex.
func (f *Fabric) RaiseMSI(vector int) {
	fn, ok := f.msi[vector]
	if !ok {
		panic(fmt.Sprintf("pcie: MSI vector %d has no handler", vector))
	}
	f.env.Schedule(f.params.MMIOLatency, fn)
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
