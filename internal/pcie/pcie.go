// Package pcie models the PCI Express fabric of the testbed: a
// multi-slot Gen2 switch (the paper uses a Cyclone PCIe2-2707, five
// slots, 80 Gbps aggregate), per-port serializing links, DMA
// transactions between bus addresses, posted MMIO writes (doorbells),
// and MSI interrupts toward the root complex.
//
// The fabric enforces the peer-to-peer policy encoded in mem.Region:
// a device may always DMA host DRAM and its own BARs, but it may reach
// a peer region only when that region is an exposed P2P target. The
// SSD and the NIC expose none, the GPU and the HDC Engine do — which
// reproduces the paper's constraint that software-controlled P2P
// cannot do SSD↔NIC while DCS-ctrl can (§V-A).
package pcie

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// Fault-recovery timing: a dropped posted write is redelivered by the
// data-link layer's ACK/NAK replay after the replay timer; a delayed
// one sits in a congested switch queue; a degraded link stalls a DMA
// while retraining.
const (
	replayTimeout    = 3 * sim.Microsecond
	congestionDelay  = 1 * sim.Microsecond
	linkRetrainStall = 5 * sim.Microsecond
)

// Params are fabric timing/bandwidth parameters.
type Params struct {
	// LinkBps is each port link's usable bandwidth in bits/s
	// (Gen2 x8: 5 GT/s × 8 lanes × 8b/10b = 32 Gbit/s).
	LinkBps float64
	// PropLatency is the one-way propagation latency through the
	// switch (request routing + serialization start).
	PropLatency sim.Time
	// DMASetup is the fixed per-DMA-transaction overhead (descriptor
	// fetch, tag allocation).
	DMASetup sim.Time
	// MMIOLatency is the delivery latency of a posted write.
	MMIOLatency sim.Time
	// CoreBps is the switch core's aggregate bandwidth (80 Gbps on
	// the Cyclone PCIe2-2707).
	CoreBps float64
	// Faults injects transport-level faults (delayed/dropped posted
	// writes, link degradation); nil disables injection.
	Faults *fault.Injector
}

// DefaultParams mirror the evaluation platform (Table V).
func DefaultParams() Params {
	return Params{
		LinkBps:     32e9,
		PropLatency: 300 * sim.Nanosecond,
		DMASetup:    200 * sim.Nanosecond,
		MMIOLatency: 300 * sim.Nanosecond,
		CoreBps:     80e9,
	}
}

// Port is one switch slot with an attached device (or the root
// complex) and its up/down simplex links.
type Port struct {
	ID   int
	Name string
	up   *sim.BandwidthServer // device -> switch
	down *sim.BandwidthServer // switch -> device

	bytesIn  int64
	bytesOut int64
}

// BytesIn returns bytes DMA'd into regions owned by this port.
func (p *Port) BytesIn() int64 { return p.bytesIn }

// BytesOut returns bytes DMA'd out of regions owned by this port.
func (p *Port) BytesOut() int64 { return p.bytesOut }

// Fabric is the switch plus the address-map-aware transaction engine.
type Fabric struct {
	env    *sim.Env
	mem    *mem.Map
	params Params
	ports  []*Port
	owner  map[*mem.Region]*Port
	core   *sim.BandwidthServer
	msi    map[int]func()

	p2pBytes  int64 // device-to-device payload bytes (never via host DRAM)
	hostBytes int64 // payload bytes with host DRAM as one endpoint

	// postedClock is the delivery time of the latest posted write.
	// PCIe posted writes are strictly ordered, so a delayed or
	// replayed TLP head-of-line blocks every later posted write —
	// without this a delayed command-slot write could be overtaken
	// by its own doorbell.
	postedClock sim.Time
}

// NewFabric returns a fabric over the given address map.
func NewFabric(env *sim.Env, m *mem.Map, params Params) *Fabric {
	if params.CoreBps <= 0 {
		params.CoreBps = 80e9
	}
	return &Fabric{
		env:    env,
		mem:    m,
		params: params,
		owner:  map[*mem.Region]*Port{},
		core:   sim.NewBandwidthServer(env, "pcie-core", params.CoreBps, 0),
		msi:    map[int]func(){},
	}
}

// Mem returns the fabric's address map.
func (f *Fabric) Mem() *mem.Map { return f.mem }

// Params returns the fabric parameters.
func (f *Fabric) Params() Params { return f.params }

// AddPort creates a new slot.
func (f *Fabric) AddPort(name string) *Port {
	p := &Port{
		ID:   len(f.ports),
		Name: name,
		up:   sim.NewBandwidthServer(f.env, name+"-up", f.params.LinkBps, 0),
		down: sim.NewBandwidthServer(f.env, name+"-down", f.params.LinkBps, 0),
	}
	f.ports = append(f.ports, p)
	return p
}

// Attach declares port as the owner of region: DMA touching the
// region traverses this port's link.
func (f *Fabric) Attach(port *Port, region *mem.Region) {
	if prev, ok := f.owner[region]; ok {
		panic(fmt.Sprintf("pcie: region %s already attached to %s", region.Name, prev.Name))
	}
	f.owner[region] = port
}

// OwnerOf returns the port owning the region containing addr.
func (f *Fabric) OwnerOf(addr mem.Addr) (*Port, *mem.Region, error) {
	r, _, err := f.mem.Resolve(addr)
	if err != nil {
		return nil, nil, err
	}
	p, ok := f.owner[r]
	if !ok {
		return nil, r, fmt.Errorf("pcie: region %s not attached to any port", r.Name)
	}
	return p, r, nil
}

// P2PBytes returns payload bytes moved device-to-device.
func (f *Fabric) P2PBytes() int64 { return f.p2pBytes }

// HostBytes returns payload bytes moved with host DRAM as an endpoint.
func (f *Fabric) HostBytes() int64 { return f.hostBytes }

// canReach checks the P2P policy for initiator touching region r.
func canReach(initiator *Port, owner *Port, r *mem.Region) error {
	if owner == initiator {
		return nil // a device always reaches its own BARs/internal memory
	}
	if r.Kind == mem.HostDRAM {
		return nil // root complex accepts DMA from any device
	}
	if !r.P2PTarget {
		return fmt.Errorf("pcie: region %s (%s) is not a P2P target for %s",
			r.Name, r.Kind, initiator.Name)
	}
	return nil
}

// DMA moves n bytes from src to dst on behalf of initiator, charging
// link and switch-core occupancy plus propagation latency, then
// copying the real bytes. It returns an error (without moving data)
// when the P2P policy forbids the access — the condition that makes
// direct SSD↔NIC impossible.
func (f *Fabric) DMA(p *sim.Proc, initiator *Port, dst, src mem.Addr, n int) error {
	if n == 0 {
		return nil
	}
	if n < 0 {
		panic("pcie: negative DMA length")
	}
	srcPort, srcReg, err := f.OwnerOf(src)
	if err != nil {
		return err
	}
	dstPort, dstReg, err := f.OwnerOf(dst)
	if err != nil {
		return err
	}
	if err := canReach(initiator, srcPort, srcReg); err != nil {
		return err
	}
	if err := canReach(initiator, dstPort, dstReg); err != nil {
		return err
	}

	if srcPort == dstPort {
		// Device-local move: no bus traffic, only internal copy time.
		p.Sleep(f.params.DMASetup)
		f.mem.Copy(dst, src, n)
		return nil
	}

	// Store-and-forward through the switch: serialize on the source
	// link, the switch core, and the destination link in turn. Each
	// stage is an independent bandwidth server, so concurrent
	// transactions on disjoint links pipeline freely — no transfer
	// ever holds one link while waiting for another (which would
	// convoy the whole fabric).
	if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
		p.Sleep(linkRetrainStall)
	}
	p.Sleep(f.params.DMASetup)
	srcPort.up.Transfer(p, n)
	f.core.Transfer(p, n)
	dstPort.down.Transfer(p, n)
	p.Sleep(f.params.PropLatency)

	f.mem.Copy(dst, src, n)
	srcPort.bytesOut += int64(n)
	dstPort.bytesIn += int64(n)
	if srcReg.Kind == mem.HostDRAM || dstReg.Kind == mem.HostDRAM {
		f.hostBytes += int64(n)
	} else {
		f.p2pBytes += int64(n)
	}
	return nil
}

// DMAAsync starts a DMA and returns a signal that fires when it
// completes — the "multiple outstanding tags" mode DMA engines use to
// hide per-transaction latency. Policy errors panic (callers validate
// paths at configuration time).
func (f *Fabric) DMAAsync(initiator *Port, dst, src mem.Addr, n int) *sim.Signal {
	sig := sim.NewSignal(f.env)
	f.env.Spawn("dma-async", func(p *sim.Proc) {
		f.MustDMA(p, initiator, dst, src, n)
		sig.Fire(nil)
	})
	return sig
}

// MustDMA is DMA that panics on policy errors; device models use it on
// paths that were validated at configuration time.
func (f *Fabric) MustDMA(p *sim.Proc, initiator *Port, dst, src mem.Addr, n int) {
	if err := f.DMA(p, initiator, dst, src, n); err != nil {
		panic(err)
	}
}

// CheckPath verifies, without simulating, that initiator may move data
// between the two addresses — used by configuration code to decide
// whether a direct path exists (e.g. SW-P2P feasibility probing).
func (f *Fabric) CheckPath(initiator *Port, a, b mem.Addr) error {
	pa, ra, err := f.OwnerOf(a)
	if err != nil {
		return err
	}
	pb, rb, err := f.OwnerOf(b)
	if err != nil {
		return err
	}
	if err := canReach(initiator, pa, ra); err != nil {
		return err
	}
	return canReach(initiator, pb, rb)
}

// PostedWrite delivers a small write (a doorbell ring) to addr after
// the MMIO latency. It does not block the caller: posted writes
// complete from the initiator's point of view immediately.
//
// Under fault injection the TLP may be delayed (switch congestion) or
// dropped and replayed by the data-link layer — both only add
// delivery latency; posted writes are never lost for good, matching
// PCIe's ACK/NAK guarantee.
func (f *Fabric) PostedWrite(addr mem.Addr, val uint64) {
	delay := f.params.MMIOLatency
	if f.params.Faults.Hit(fault.PCIeDropPosted) {
		delay += replayTimeout
	} else if f.params.Faults.Hit(fault.PCIeDelayPosted) {
		delay += congestionDelay
	}
	deliverAt := f.env.Now() + delay
	if deliverAt < f.postedClock {
		deliverAt = f.postedClock
	}
	f.postedClock = deliverAt
	f.env.Schedule(deliverAt-f.env.Now(), func() {
		var b [8]byte
		putLE64(b[:], val)
		f.mem.Write(addr, b[:])
	})
}

// ReadReg performs a non-posted register read: the caller blocks for a
// round trip and receives the current value.
func (f *Fabric) ReadReg(p *sim.Proc, addr mem.Addr) uint64 {
	p.Sleep(2 * f.params.MMIOLatency)
	return le64(f.mem.Read(addr, 8))
}

// OnMSI registers a handler for an interrupt vector. Handlers run on
// the scheduler and must not block (wake a process instead).
func (f *Fabric) OnMSI(vector int, fn func()) {
	if _, dup := f.msi[vector]; dup {
		panic(fmt.Sprintf("pcie: MSI vector %d already registered", vector))
	}
	f.msi[vector] = fn
}

// RaiseMSI posts an interrupt toward the root complex.
func (f *Fabric) RaiseMSI(vector int) {
	fn, ok := f.msi[vector]
	if !ok {
		panic(fmt.Sprintf("pcie: MSI vector %d has no handler", vector))
	}
	f.env.Schedule(f.params.MMIOLatency, fn)
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
