// Package pcie models the PCI Express fabric of the testbed: a
// multi-slot Gen2 switch (the paper uses a Cyclone PCIe2-2707, five
// slots, 80 Gbps aggregate), per-port serializing links, DMA
// transactions between bus addresses, posted MMIO writes (doorbells),
// and MSI interrupts toward the root complex.
//
// The fabric enforces the peer-to-peer policy encoded in mem.Region:
// a device may always DMA host DRAM and its own BARs, but it may reach
// a peer region only when that region is an exposed P2P target. The
// SSD and the NIC expose none, the GPU and the HDC Engine do — which
// reproduces the paper's constraint that software-controlled P2P
// cannot do SSD↔NIC while DCS-ctrl can (§V-A).
package pcie

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// Fault-recovery timing: a dropped posted write is redelivered by the
// data-link layer's ACK/NAK replay after the replay timer; a delayed
// one sits in a congested switch queue; a degraded link stalls a DMA
// while retraining.
const (
	replayTimeout    = 3 * sim.Microsecond
	congestionDelay  = 1 * sim.Microsecond
	linkRetrainStall = 5 * sim.Microsecond
)

// Params are fabric timing/bandwidth parameters.
type Params struct {
	// LinkBps is each port link's usable bandwidth in bits/s
	// (Gen2 x8: 5 GT/s × 8 lanes × 8b/10b = 32 Gbit/s).
	LinkBps float64
	// PropLatency is the one-way propagation latency through the
	// switch (request routing + serialization start).
	PropLatency sim.Time
	// DMASetup is the fixed per-DMA-transaction overhead (descriptor
	// fetch, tag allocation).
	DMASetup sim.Time
	// MMIOLatency is the delivery latency of a posted write.
	MMIOLatency sim.Time
	// CoreBps is the switch core's aggregate bandwidth (80 Gbps on
	// the Cyclone PCIe2-2707).
	CoreBps float64
	// Faults injects transport-level faults (delayed/dropped posted
	// writes, link degradation); nil disables injection.
	Faults *fault.Injector
}

// DefaultParams mirror the evaluation platform (Table V).
func DefaultParams() Params {
	return Params{
		LinkBps:     32e9,
		PropLatency: 300 * sim.Nanosecond,
		DMASetup:    200 * sim.Nanosecond,
		MMIOLatency: 300 * sim.Nanosecond,
		CoreBps:     80e9,
	}
}

// Port is one switch slot with an attached device (or the root
// complex) and its up/down simplex links.
type Port struct {
	ID   int
	Name string
	up   *sim.BandwidthServer // device -> switch
	down *sim.BandwidthServer // switch -> device

	// Analytic link clocks for flow-exclusive fidelity: the time each
	// simplex link becomes free. Maintained only while FlowMode is on,
	// where they are the sole serialization state (the real servers are
	// never acquired, only accrued into for utilization reports).
	upFree   sim.Time
	downFree sim.Time

	bytesIn  int64
	bytesOut int64
}

// BytesIn returns bytes DMA'd into regions owned by this port.
func (p *Port) BytesIn() int64 { return p.bytesIn }

// BytesOut returns bytes DMA'd out of regions owned by this port.
func (p *Port) BytesOut() int64 { return p.bytesOut }

// Fabric is the switch plus the address-map-aware transaction engine.
type Fabric struct {
	env    *sim.Env
	mem    *mem.Map
	params Params
	ports  []*Port
	owner  map[*mem.Region]*Port
	core   *sim.BandwidthServer
	msi    map[int]func()

	p2pBytes  int64 // device-to-device payload bytes (never via host DRAM)
	hostBytes int64 // payload bytes with host DRAM as one endpoint

	// postedClock is the delivery time of the latest posted write.
	// PCIe posted writes are strictly ordered, so a delayed or
	// replayed TLP head-of-line blocks every later posted write —
	// without this a delayed command-slot write could be overtaken
	// by its own doorbell.
	postedClock sim.Time

	// Async-DMA engine state: instead of spawning a fresh proc (and
	// allocating its stack and completion signal) per DMAAsync call,
	// finished transfers park their worker on asyncJobs and recycle
	// their signal through sigFree. Both are plain LIFO/FIFO lists
	// drained on the simulated timeline, so reuse order is
	// deterministic — see DESIGN.md §11.
	asyncJobs *sim.Queue[asyncJob]
	asyncIdle int // workers parked on asyncJobs right now
	sigFree   []*sim.Signal

	// pwFree recycles posted-write delivery records (and their bound
	// callbacks) so every doorbell ring doesn't allocate a closure.
	pwFree []*postedWrite

	// flowExclusive marks this fabric as opted in to analytic DMA under
	// flow wire fidelity (SetFlowExclusive). coreFree is the analytic
	// switch-core clock, the core-server counterpart of Port.upFree.
	// flowHorizon is the highest entry time ever charged: analytic
	// exactness requires charges in entry order, so a charge below the
	// horizon is a scheduling bug and panics (loud beats silently
	// divergent). msiPending counts scheduled-but-undelivered MSIs,
	// part of the quiescence test gating multi-charge plans.
	flowExclusive bool
	// flowReactive marks every initiator as completion-driven, the
	// precondition for future-issue plan bookings (SetFlowReactive).
	flowReactive bool
	coreFree     sim.Time
	flowHorizon  sim.Time
	msiPending   int

	// faFree recycles analytic async-DMA completion records, msiFree
	// the MSI-delivery records that keep msiPending countable.
	faFree  []*flowAsync
	msiFree []*msiEvent
}

// postedWrite is one in-flight posted write. fn is the record's bound
// deliver method, created once per record and reused.
type postedWrite struct {
	f    *Fabric
	addr mem.Addr
	val  uint64
	fn   func()
}

func (pw *postedWrite) deliver() {
	var b [8]byte
	putLE64(b[:], pw.val)
	pw.f.mem.Write(pw.addr, b[:])
	pw.f.pwFree = append(pw.f.pwFree, pw)
}

// asyncJob is one queued DMAAsync transfer.
type asyncJob struct {
	initiator *Port
	dst, src  mem.Addr
	n         int
	sig       *sim.Signal
}

// NewFabric returns a fabric over the given address map.
func NewFabric(env *sim.Env, m *mem.Map, params Params) *Fabric {
	if params.CoreBps <= 0 {
		params.CoreBps = 80e9
	}
	return &Fabric{
		env:       env,
		mem:       m,
		params:    params,
		owner:     map[*mem.Region]*Port{},
		core:      sim.NewBandwidthServer(env, "pcie-core", params.CoreBps, 0),
		msi:       map[int]func(){},
		asyncJobs: sim.NewQueue[asyncJob](env, "dma-async-jobs"),
	}
}

// Mem returns the fabric's address map.
func (f *Fabric) Mem() *mem.Map { return f.mem }

// Params returns the fabric parameters.
func (f *Fabric) Params() Params { return f.params }

// PortCount returns the number of slots on the fabric. Analytic plans
// that book future charge entries use it as part of their quiescence
// test: on a fabric whose only initiators are one device and the root
// complex, the device can locally rule out foreign charges inside the
// plan window (DESIGN.md §13).
func (f *Fabric) PortCount() int { return len(f.ports) }

// AddPort creates a new slot.
func (f *Fabric) AddPort(name string) *Port {
	p := &Port{
		ID:   len(f.ports),
		Name: name,
		up:   sim.NewBandwidthServer(f.env, name+"-up", f.params.LinkBps, 0),
		down: sim.NewBandwidthServer(f.env, name+"-down", f.params.LinkBps, 0),
	}
	f.ports = append(f.ports, p)
	return p
}

// Attach declares port as the owner of region: DMA touching the
// region traverses this port's link.
func (f *Fabric) Attach(port *Port, region *mem.Region) {
	if prev, ok := f.owner[region]; ok {
		panic(fmt.Sprintf("pcie: region %s already attached to %s", region.Name, prev.Name))
	}
	f.owner[region] = port
}

// OwnerOf returns the port owning the region containing addr.
func (f *Fabric) OwnerOf(addr mem.Addr) (*Port, *mem.Region, error) {
	r, _, err := f.mem.Resolve(addr)
	if err != nil {
		return nil, nil, err
	}
	p, ok := f.owner[r]
	if !ok {
		return nil, r, fmt.Errorf("pcie: region %s not attached to any port", r.Name)
	}
	return p, r, nil
}

// P2PBytes returns payload bytes moved device-to-device.
func (f *Fabric) P2PBytes() int64 { return f.p2pBytes }

// HostBytes returns payload bytes moved with host DRAM as an endpoint.
func (f *Fabric) HostBytes() int64 { return f.hostBytes }

// canReach checks the P2P policy for initiator touching region r.
func canReach(initiator *Port, owner *Port, r *mem.Region) error {
	if owner == initiator {
		return nil // a device always reaches its own BARs/internal memory
	}
	if r.Kind == mem.HostDRAM {
		return nil // root complex accepts DMA from any device
	}
	if !r.P2PTarget {
		return fmt.Errorf("pcie: region %s (%s) is not a P2P target for %s",
			r.Name, r.Kind, initiator.Name)
	}
	return nil
}

// DMA moves n bytes from src to dst on behalf of initiator, charging
// link and switch-core occupancy plus propagation latency, then
// copying the real bytes. It returns an error (without moving data)
// when the P2P policy forbids the access — the condition that makes
// direct SSD↔NIC impossible.
func (f *Fabric) DMA(p *sim.Proc, initiator *Port, dst, src mem.Addr, n int) error {
	if n == 0 {
		return nil
	}
	if n < 0 {
		panic("pcie: negative DMA length")
	}
	srcPort, srcReg, err := f.OwnerOf(src)
	if err != nil {
		return err
	}
	dstPort, dstReg, err := f.OwnerOf(dst)
	if err != nil {
		return err
	}
	if err := canReach(initiator, srcPort, srcReg); err != nil {
		return err
	}
	if err := canReach(initiator, dstPort, dstReg); err != nil {
		return err
	}

	if srcPort == dstPort {
		// Device-local move: no bus traffic, only internal copy time.
		p.Sleep(f.params.DMASetup)
		f.mem.Copy(dst, src, n)
		return nil
	}

	if f.FlowMode() {
		f.flowXfer(p, srcPort, srcReg, dstPort, dstReg, dst, src, n)
		return nil
	}

	// Store-and-forward through the switch: serialize on the source
	// link, the switch core, and the destination link in turn. Each
	// stage is an independent bandwidth server, so concurrent
	// transactions on disjoint links pipeline freely — no transfer
	// ever holds one link while waiting for another (which would
	// convoy the whole fabric).
	if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
		p.Sleep(linkRetrainStall)
	}
	p.Sleep(f.params.DMASetup)
	srcPort.up.Transfer(p, n)
	f.core.Transfer(p, n)
	dstPort.down.Transfer(p, n)
	p.Sleep(f.params.PropLatency)

	f.mem.Copy(dst, src, n)
	srcPort.bytesOut += int64(n)
	dstPort.bytesIn += int64(n)
	if srcReg.Kind == mem.HostDRAM || dstReg.Kind == mem.HostDRAM {
		f.hostBytes += int64(n)
	} else {
		f.p2pBytes += int64(n)
	}
	return nil
}

// DMAAsync starts a DMA and returns a signal that fires when it
// completes — the "multiple outstanding tags" mode DMA engines use to
// hide per-transaction latency. Policy errors panic (callers validate
// paths at configuration time).
//
// Transfers run on a free-listed pool of worker procs: a new worker is
// spawned only when every existing one is busy. Handing a job to a
// parked worker and spawning a fresh proc both enqueue exactly one
// proc-resume event at the current instant, so the pooled and the
// spawn-per-call implementations dispatch in identical (time, seq)
// order — the pool changes allocation cost, not the event timeline.
// The returned signal may be recycled via RecycleAsyncSignal once the
// waiter has consumed the completion.
func (f *Fabric) DMAAsync(initiator *Port, dst, src mem.Addr, n int) *sim.Signal {
	var sig *sim.Signal
	if k := len(f.sigFree); k > 0 {
		sig = f.sigFree[k-1]
		f.sigFree = f.sigFree[:k-1]
	} else {
		sig = sim.NewSignal(f.env)
	}
	if f.FlowMode() {
		f.flowDMAAsync(initiator, dst, src, n, sig)
		return sig
	}
	if f.asyncIdle > 0 {
		// Reserve the worker now: a second DMAAsync in the same instant
		// must not count this one as still idle. The job literal stays
		// out of the closure below so this warm path never heap-escapes.
		f.asyncIdle--
		f.asyncJobs.Put(asyncJob{initiator: initiator, dst: dst, src: src, n: n, sig: sig})
		return sig
	}
	job := asyncJob{initiator: initiator, dst: dst, src: src, n: n, sig: sig}
	if f.env.HandlerProcs() {
		// Handler flavor: same pool discipline, no goroutine and no
		// park/resume handoffs. The machine and its bound body are
		// created once per pooled worker, like the goroutine's stack.
		w := &dmaWorker{f: f, job: job, hasJob: true}
		f.env.SpawnHandler("dma-async", w.run)
		return sig
	}
	f.env.Spawn("dma-async", func(p *sim.Proc) {
		for {
			f.MustDMA(p, job.initiator, job.dst, job.src, job.n)
			job.sig.Fire(nil)
			f.asyncIdle++
			job = f.asyncJobs.Get(p)
		}
	})
	return sig
}

// PrimeAsyncPool rebuilds the async-DMA worker pool population after
// a snapshot restore: n workers parked on the job queue, exactly as
// the checkpointed fabric had. A restored pool must not be left empty
// — a Put into a pool with parked workers can chain-wake them
// (spurious re-parking dispatches), so an empty pool and a populated
// one produce different dispatch counts. The caller runs the
// environment to quiescence afterwards so the workers reach their
// park points before simulated time resumes.
func (f *Fabric) PrimeAsyncPool(n int) {
	for i := 0; i < n; i++ {
		f.asyncIdle++
		if f.env.HandlerProcs() {
			w := &dmaWorker{f: f}
			f.env.SpawnHandler("dma-async", w.run)
			continue
		}
		f.env.Spawn("dma-async", func(p *sim.Proc) {
			job := f.asyncJobs.Get(p)
			for {
				f.MustDMA(p, job.initiator, job.dst, job.src, job.n)
				job.sig.Fire(nil)
				f.asyncIdle++
				job = f.asyncJobs.Get(p)
			}
		})
	}
}

// RecycleAsyncSignal returns a consumed DMAAsync completion signal to
// the free list. Optional — callers that retain the signal simply let
// the GC have it — but hot async paths (the NIC receive engine) call
// it to make async DMA allocation-free in steady state. The caller
// must be the sole waiter and must have already observed the fire.
func (f *Fabric) RecycleAsyncSignal(sig *sim.Signal) {
	sig.Reset()
	f.sigFree = append(f.sigFree, sig)
}

// MustDMA is DMA that panics on policy errors; device models use it on
// paths that were validated at configuration time.
//
//dcslint:hotpath pcie_dma_4k
func (f *Fabric) MustDMA(p *sim.Proc, initiator *Port, dst, src mem.Addr, n int) {
	if err := f.DMA(p, initiator, dst, src, n); err != nil {
		panic(err)
	}
}

// DMAVec moves a scatter-gather list in one call. When gather is true
// the extents are sources, copied in order into a contiguous window
// starting at base; when false base is the source window, scattered
// across the extents. Zero-length extents are skipped, like a
// zero-length DMA.
//
// Each extent is charged exactly as the equivalent DMA call would be —
// per-extent setup, link/core occupancy, byte counters, and fault
// behaviour are all identical to the hand-written DMA loop it
// replaces (the equivalence test in pcie_test.go pins this down).
// What the vectored form buys is the memory mechanics: extent-by-
// extent region-to-region copies with zero intermediate buffers and
// no per-extent closure or signal state.
func (f *Fabric) DMAVec(p *sim.Proc, initiator *Port, base mem.Addr, exts []mem.Extent, gather bool) error {
	off := mem.Addr(0)
	for _, e := range exts {
		var err error
		if gather {
			err = f.DMA(p, initiator, base+off, e.Addr, e.Len)
		} else {
			err = f.DMA(p, initiator, e.Addr, base+off, e.Len)
		}
		if err != nil {
			return err
		}
		off += mem.Addr(e.Len)
	}
	return nil
}

// MustDMAVec is DMAVec that panics on policy errors.
//
//dcslint:hotpath hdc_gather_8x512
func (f *Fabric) MustDMAVec(p *sim.Proc, initiator *Port, base mem.Addr, exts []mem.Extent, gather bool) {
	if err := f.DMAVec(p, initiator, base, exts, gather); err != nil {
		panic(err)
	}
}

// SetFlowExclusive opts this fabric into analytic DMA when the
// environment runs at flow wire fidelity: cross-port transactions
// charge scalar per-server clocks and sleep once for the computed
// total instead of walking the three bandwidth servers, cutting ~5
// events per transaction to 1 while producing bit-identical times.
//
// The mode is exact because every transaction enters the fabric a
// uniform DMASetup after it is issued, so charge order equals
// wire-entry order and the scalar clocks replay the FIFO servers'
// hand-off decisions precisely; fault draws stay at the per-frame
// path's instants because vectored transfers compose extent-by-extent
// (see DESIGN.md §13). Intended for benchmark and equivalence-test
// rigs; workload fabrics stay per-frame. Call before any traffic —
// the fidelity of in-flight transfers must never change.
func (f *Fabric) SetFlowExclusive() { f.flowExclusive = true }

// FlowMode reports whether DMA on this fabric is analytic right now.
func (f *Fabric) FlowMode() bool {
	return f.flowExclusive && f.env.WireFidelity() == sim.WireFlow
}

func maxTime(a, b sim.Time) sim.Time {
	if a >= b {
		return a
	}
	return b
}

// flowCharge advances the analytic clocks for one cross-port transfer
// entering the fabric at entry and returns its completion time
// (propagation included). Counters and busy time accrue exactly as the
// three real Transfer calls would have.
//
// Exactness requires charges in entry order: a scalar clock cannot
// backfill a gap, so charging a later entry first would push an earlier
// one behind it even when their occupancies do not overlap. Every
// charge site keeps the uniform issue→entry lag of DMASetup, and
// multi-charge plans must pass the quiescence test (FlowQuiet plus the
// device's own idle checks) before booking future entries. The horizon
// panic turns any violation of that discipline into a crash instead of
// a silently divergent timeline.
func (f *Fabric) flowCharge(srcPort, dstPort *Port, n int, entry sim.Time) sim.Time {
	if entry < f.flowHorizon {
		panic(fmt.Sprintf("pcie: flow charge entry %v below horizon %v (out-of-order analytic charge)",
			entry, f.flowHorizon))
	}
	f.flowHorizon = entry
	linkT := sim.BpsToTime(n, f.params.LinkBps)
	coreT := sim.BpsToTime(n, f.params.CoreBps)
	upEnd := maxTime(entry, srcPort.upFree) + linkT
	coreEnd := maxTime(upEnd, f.coreFree) + coreT
	downEnd := maxTime(coreEnd, dstPort.downFree) + linkT
	srcPort.upFree, f.coreFree, dstPort.downFree = upEnd, coreEnd, downEnd
	srcPort.up.AccrueFlow(n, 1, linkT)
	f.core.AccrueFlow(n, 1, coreT)
	dstPort.down.AccrueFlow(n, 1, linkT)
	return downEnd + f.params.PropLatency
}

// flowXfer is the analytic body of a cross-port DMA: identical fault
// draw, identical completion time, identical counters — one sleep.
func (f *Fabric) flowXfer(p *sim.Proc, srcPort *Port, srcReg *mem.Region, dstPort *Port, dstReg *mem.Region, dst, src mem.Addr, n int) {
	if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
		p.Sleep(linkRetrainStall)
	}
	now := f.env.Now()
	done := f.flowCharge(srcPort, dstPort, n, now+f.params.DMASetup)
	p.Sleep(done - now)
	f.mem.Copy(dst, src, n)
	f.flowAccount(srcPort, srcReg, dstPort, dstReg, n)
}

func (f *Fabric) flowAccount(srcPort *Port, srcReg *mem.Region, dstPort *Port, dstReg *mem.Region, n int) {
	srcPort.bytesOut += int64(n)
	dstPort.bytesIn += int64(n)
	if srcReg.Kind == mem.HostDRAM || dstReg.Kind == mem.HostDRAM {
		f.hostBytes += int64(n)
	} else {
		f.p2pBytes += int64(n)
	}
}

// FlowCopyNow charges one cross-port transfer issued at the current
// instant, copies the data immediately, and returns the completion
// time — the building block for device fast paths reading into private
// staging memory (BD fetch, frame gather). Because the copy lands at
// issue rather than completion, the destination must be hook-free
// device-internal memory and the source must obey the posted-buffer
// stability contract (DESIGN.md §13): submitters must not mutate a
// buffer they have handed to the device until its completion is
// reported, the same contract real DMA hardware imposes.
//
// FlowCopyNow draws no fault site. Callers on degrade-prone paths must
// draw fault.PCIeLinkDegrade themselves, sleep the stall, and only
// then issue — keeping the draw and the entry at the slow path's
// instants. Panics outside FlowMode or on an illegal path.
func (f *Fabric) FlowCopyNow(initiator *Port, dst, src mem.Addr, n int) sim.Time {
	if !f.FlowMode() {
		panic("pcie: FlowCopyNow outside flow mode")
	}
	srcPort, srcReg, dstPort, dstReg := f.mustResolvePair(initiator, dst, src)
	now := f.env.Now()
	if srcPort == dstPort {
		f.mem.Copy(dst, src, n)
		return now + f.params.DMASetup
	}
	done := f.flowCharge(srcPort, dstPort, n, now+f.params.DMASetup)
	f.mem.Copy(dst, src, n)
	f.flowAccount(srcPort, srcReg, dstPort, dstReg, n)
	return done
}

// FlowChargeAt charges one cross-port transfer issued at the given
// instant (now or later) and returns its completion time without
// copying — the plan-grade primitive for completion writes whose
// memory effects must land at completion (status, completion rings,
// payload deliveries with host-visible hooks). The caller applies the
// copy and side effects at the returned time via a scheduled event.
//
// Booking a future issue is only legal behind a quiescence check (see
// flowCharge): the caller must have established that no other charge
// can reach this fabric before the booked entry. FlowChargeAt draws no
// fault site — same contract as FlowCopyNow. Panics outside FlowMode,
// on an illegal path, or when issue precedes the current instant.
func (f *Fabric) FlowChargeAt(initiator *Port, dst, src mem.Addr, n int, issue sim.Time) sim.Time {
	if !f.FlowMode() {
		panic("pcie: FlowChargeAt outside flow mode")
	}
	if now := f.env.Now(); issue < now {
		panic(fmt.Sprintf("pcie: FlowChargeAt issue %v in the past (now %v)", issue, now))
	}
	srcPort, srcReg, dstPort, dstReg := f.mustResolvePair(initiator, dst, src)
	if srcPort == dstPort {
		return issue + f.params.DMASetup
	}
	done := f.flowCharge(srcPort, dstPort, n, issue+f.params.DMASetup)
	f.flowAccount(srcPort, srcReg, dstPort, dstReg, n)
	return done
}

// FlowQuiet reports whether the fabric itself could interleave a
// charge before a plan booked now: false while a posted write is in
// flight (its delivery may ring a doorbell and wake a charging proc)
// or an MSI is scheduled but undelivered. Devices combine this with
// their own idle checks before booking future entries.
func (f *Fabric) FlowQuiet() bool {
	return f.postedClock <= f.env.Now() && f.msiPending == 0
}

// SetFlowReactive declares that every initiator on this fabric issues
// new work only in reaction to device completions (completion-ring
// writes, status updates, MSIs) — never on its own clock. Future-issue
// plan bookings (the NIC's solo receive plan, transmit gather plans)
// require this declaration on top of SetFlowExclusive: with autonomous
// initiators, a doorbell can arrive inside a plan's window and its DMA
// would have to charge below the booked horizon, which the scalar
// clocks cannot express (the horizon panic would fire). Sequential
// analytic DMA and wire-level claims stay legal without it.
func (f *Fabric) SetFlowReactive() { f.flowReactive = true }

// FlowReactive reports whether future-issue plan bookings are allowed.
func (f *Fabric) FlowReactive() bool { return f.flowReactive }

// FlowClocksIdle reports whether every analytic server clock (links,
// switch core) is at or behind the current instant. Plans that
// dry-run a charge cascade before booking it require this: with idle
// clocks every sequential charge completes in exactly FlowXferTime,
// so the plan can verify its legality window without mutating state.
func (f *Fabric) FlowClocksIdle() bool {
	now := f.env.Now()
	if f.coreFree > now {
		return false
	}
	for _, p := range f.ports {
		if p.upFree > now || p.downFree > now {
			return false
		}
	}
	return true
}

// FlowXferTime returns the uncontended analytic duration of one
// cross-port transfer of n bytes from issue to completion — the value
// flowCharge produces when no clock is ahead of the entry.
func (f *Fabric) FlowXferTime(n int) sim.Time {
	return f.params.DMASetup + 2*sim.BpsToTime(n, f.params.LinkBps) +
		sim.BpsToTime(n, f.params.CoreBps) + f.params.PropLatency
}

// FlowDegradeArmed reports whether the link-degrade fault site can
// still fire on this fabric. Device fast paths that would skip the
// slow path's internal fault draws consult this and fall back to the
// per-transaction primitives (which draw at the exact slow-path
// instants) while the hazard is live.
func (f *Fabric) FlowDegradeArmed() bool {
	return f.params.Faults.Armed(fault.PCIeLinkDegrade)
}

func (f *Fabric) mustResolvePair(initiator *Port, dst, src mem.Addr) (srcPort *Port, srcReg *mem.Region, dstPort *Port, dstReg *mem.Region) {
	var err error
	srcPort, srcReg, err = f.OwnerOf(src)
	if err != nil {
		panic(err)
	}
	dstPort, dstReg, err = f.OwnerOf(dst)
	if err != nil {
		panic(err)
	}
	if err = canReach(initiator, srcPort, srcReg); err != nil {
		panic(err)
	}
	if err = canReach(initiator, dstPort, dstReg); err != nil {
		panic(err)
	}
	return srcPort, srcReg, dstPort, dstReg
}

// flowAsync is one analytic async-DMA completion in flight: the copy,
// the counters, and the signal fire all happen at the charged
// completion instant, exactly where the worker-proc path lands them.
type flowAsync struct {
	f        *Fabric
	srcPort  *Port
	srcReg   *mem.Region
	dstPort  *Port
	dstReg   *mem.Region
	dst, src mem.Addr
	n        int
	sig      *sim.Signal
	chargeFn func() // bound delayedCharge (degrade-stall path)
	doneFn   func() // bound complete
}

func (fa *flowAsync) delayedCharge() {
	f := fa.f
	done := f.flowCharge(fa.srcPort, fa.dstPort, fa.n, f.env.Now()+f.params.DMASetup)
	f.env.Schedule(done-f.env.Now(), fa.doneFn)
}

func (fa *flowAsync) complete() {
	f := fa.f
	f.mem.Copy(fa.dst, fa.src, fa.n)
	if fa.srcPort == fa.dstPort {
		fa.sig.Fire(nil)
	} else {
		f.flowAccount(fa.srcPort, fa.srcReg, fa.dstPort, fa.dstReg, fa.n)
		fa.sig.Fire(nil)
	}
	f.faFree = append(f.faFree, fa)
}

// flowDMAAsync is the analytic DMAAsync body: one scheduled event per
// transfer (two when a degrade stall fires, mirroring the worker's
// pre-entry stall sleep).
func (f *Fabric) flowDMAAsync(initiator *Port, dst, src mem.Addr, n int, sig *sim.Signal) {
	var fa *flowAsync
	if k := len(f.faFree); k > 0 {
		fa = f.faFree[k-1]
		f.faFree = f.faFree[:k-1]
	} else {
		fa = &flowAsync{f: f}
		fa.chargeFn = fa.delayedCharge
		fa.doneFn = fa.complete
	}
	fa.srcPort, fa.srcReg, fa.dstPort, fa.dstReg = f.mustResolvePair(initiator, dst, src)
	fa.dst, fa.src, fa.n, fa.sig = dst, src, n, sig
	if fa.srcPort == fa.dstPort {
		f.env.Schedule(f.params.DMASetup, fa.doneFn)
		return
	}
	if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
		f.env.Schedule(linkRetrainStall, fa.chargeFn)
		return
	}
	done := f.flowCharge(fa.srcPort, fa.dstPort, n, f.env.Now()+f.params.DMASetup)
	f.env.Schedule(done-f.env.Now(), fa.doneFn)
}

// CheckPath verifies, without simulating, that initiator may move data
// between the two addresses — used by configuration code to decide
// whether a direct path exists (e.g. SW-P2P feasibility probing).
func (f *Fabric) CheckPath(initiator *Port, a, b mem.Addr) error {
	pa, ra, err := f.OwnerOf(a)
	if err != nil {
		return err
	}
	pb, rb, err := f.OwnerOf(b)
	if err != nil {
		return err
	}
	if err := canReach(initiator, pa, ra); err != nil {
		return err
	}
	return canReach(initiator, pb, rb)
}

// PostedWrite delivers a small write (a doorbell ring) to addr after
// the MMIO latency. It does not block the caller: posted writes
// complete from the initiator's point of view immediately.
//
// Under fault injection the TLP may be delayed (switch congestion) or
// dropped and replayed by the data-link layer — both only add
// delivery latency; posted writes are never lost for good, matching
// PCIe's ACK/NAK guarantee.
func (f *Fabric) PostedWrite(addr mem.Addr, val uint64) {
	delay := f.params.MMIOLatency
	if f.params.Faults.Hit(fault.PCIeDropPosted) {
		delay += replayTimeout
	} else if f.params.Faults.Hit(fault.PCIeDelayPosted) {
		delay += congestionDelay
	}
	deliverAt := f.env.Now() + delay
	if deliverAt < f.postedClock {
		deliverAt = f.postedClock
	}
	f.postedClock = deliverAt
	var pw *postedWrite
	if k := len(f.pwFree); k > 0 {
		pw = f.pwFree[k-1]
		f.pwFree = f.pwFree[:k-1]
	} else {
		//dcslint:allow noalloc pool-miss arm: each postedWrite and its bound deliver are created once, then free-listed
		pw = &postedWrite{f: f}
		//dcslint:allow noalloc see above: one-time per pooled object, reused forever after
		pw.fn = pw.deliver
	}
	pw.addr, pw.val = addr, val
	f.env.Schedule(deliverAt-f.env.Now(), pw.fn)
}

// ReadReg performs a non-posted register read: the caller blocks for a
// round trip and receives the current value.
func (f *Fabric) ReadReg(p *sim.Proc, addr mem.Addr) uint64 {
	p.Sleep(2 * f.params.MMIOLatency)
	return le64(f.mem.View(addr, 8))
}

// OnMSI registers a handler for an interrupt vector. Handlers run on
// the scheduler and must not block (wake a process instead).
func (f *Fabric) OnMSI(vector int, fn func()) {
	if _, dup := f.msi[vector]; dup {
		panic(fmt.Sprintf("pcie: MSI vector %d already registered", vector))
	}
	f.msi[vector] = fn
}

// msiEvent is one in-flight MSI delivery, counted so FlowQuiet can
// tell whether an interrupt handler might still charge the fabric.
type msiEvent struct {
	f  *Fabric
	hn func() // registered handler
	fn func() // bound deliver
}

func (m *msiEvent) deliver() {
	f := m.f
	f.msiPending--
	hn := m.hn
	m.hn = nil
	f.msiFree = append(f.msiFree, m)
	hn()
}

// RaiseMSI posts an interrupt toward the root complex.
func (f *Fabric) RaiseMSI(vector int) {
	fn, ok := f.msi[vector]
	if !ok {
		panic(fmt.Sprintf("pcie: MSI vector %d has no handler", vector))
	}
	var m *msiEvent
	if k := len(f.msiFree); k > 0 {
		m = f.msiFree[k-1]
		f.msiFree = f.msiFree[:k-1]
	} else {
		m = &msiEvent{f: f}
		m.fn = m.deliver
	}
	m.hn = fn
	f.msiPending++
	f.env.Schedule(f.params.MMIOLatency, m.fn)
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
