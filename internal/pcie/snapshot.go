package pcie

import (
	"fmt"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). A quiescent fabric has every
// posted write delivered (postedClock at or behind now), no MSI in
// flight, and no DMA in any stage, so the state reduces to the
// analytic clocks, byte counters, and bandwidth-server accounting.
// The object free lists (recycled signals, posted-write and MSI
// records) restore empty: they trade allocations, not schedule. The
// async-DMA worker pool is different — a parked worker woken by a
// queue Put can chain-wake further parked workers (spurious
// re-parking dispatches that a fresh Spawn never causes) — so the
// snapshot records the pool population and the restore path primes
// that many parked workers (PrimeAsyncPool), keeping the dispatch
// count byte-identical to the checkpointed process.

// SnapSave encodes the fabric state. Ports iterate in slice (ID)
// order, which is the deterministic construction order.
func (f *Fabric) SnapSave(w *snap.Writer) error {
	if f.postedClock > f.env.Now() {
		return fmt.Errorf("pcie: checkpoint with a posted write in flight (clock %v > now %v)", f.postedClock, f.env.Now())
	}
	if f.msiPending != 0 {
		return fmt.Errorf("pcie: checkpoint with %d MSIs in flight", f.msiPending)
	}
	w.I64(int64(f.postedClock))
	w.I64(int64(f.coreFree))
	w.I64(int64(f.flowHorizon))
	w.I64(f.p2pBytes)
	w.I64(f.hostBytes)
	w.Int(f.asyncIdle)
	if err := sim.CheckpointBWInto(w, f.core); err != nil {
		return err
	}
	w.U32(uint32(len(f.ports)))
	for _, p := range f.ports {
		w.Str(p.Name)
		w.I64(int64(p.upFree))
		w.I64(int64(p.downFree))
		w.I64(p.bytesIn)
		w.I64(p.bytesOut)
		if err := sim.CheckpointBWInto(w, p.up); err != nil {
			return fmt.Errorf("pcie: port %s: %w", p.Name, err)
		}
		if err := sim.CheckpointBWInto(w, p.down); err != nil {
			return fmt.Errorf("pcie: port %s: %w", p.Name, err)
		}
	}
	return nil
}

// SnapLoad overlays the captured state onto a freshly built fabric
// with the identical port layout.
func (f *Fabric) SnapLoad(r *snap.Reader) error {
	f.postedClock = sim.Time(r.I64())
	f.coreFree = sim.Time(r.I64())
	f.flowHorizon = sim.Time(r.I64())
	f.p2pBytes = r.I64()
	f.hostBytes = r.I64()
	idle := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	f.PrimeAsyncPool(idle)
	if err := sim.RestoreBWFrom(r, f.core); err != nil {
		return err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(f.ports) {
		return fmt.Errorf("pcie: snapshot has %d ports, fabric has %d", n, len(f.ports))
	}
	for _, p := range f.ports {
		name := r.Str()
		if err := r.Err(); err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("pcie: snapshot port %q, fabric port %q (configuration mismatch)", name, p.Name)
		}
		p.upFree = sim.Time(r.I64())
		p.downFree = sim.Time(r.I64())
		p.bytesIn = r.I64()
		p.bytesOut = r.I64()
		if err := sim.RestoreBWFrom(r, p.up); err != nil {
			return err
		}
		if err := sim.RestoreBWFrom(r, p.down); err != nil {
			return err
		}
	}
	return r.Err()
}
