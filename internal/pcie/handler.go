package pcie

// Run-to-completion handler-proc machinery for the fabric (DESIGN.md
// §16). Xfer and XferVec replay one (*Fabric).DMA / (*Fabric).DMAVec
// call as an explicit state machine a handler proc can drive without
// ever parking: every Sleep becomes a Rearm, every bandwidth-server
// Transfer becomes the staged AcquireH / HoldTime / CompleteH triple,
// and fault draws happen at exactly the instants the goroutine path
// draws them — so the two flavors consume identical event sequences
// and the deterministic fault streams never diverge.
//
// The pooled async-DMA worker has both flavors: DMAAsync spawns the
// handler machine (dmaWorker) when the environment runs handler procs
// and the classic goroutine loop otherwise. Both park on the same
// asyncJobs queue, so the warm hand-off path is flavor-blind.

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// xferState enumerates where an Xfer resumes after a re-arm. States
// are ordered along the store-and-forward pipeline; zero-duration
// stages fall through inline exactly where the goroutine path's
// Sleep(0) would return without an event.
type xferState int

const (
	xferIdle       xferState = iota // no transfer staged
	xferStart                       // validate, resolve, draw degrade fault
	xferSetup                       // degrade stall elapsed; charge DMA setup
	xferAcqUp                       // acquire the source up-link
	xferUpHold                      // up-link occupancy elapsed
	xferAcqCore                     // acquire the switch core
	xferCoreHold                    // core occupancy elapsed
	xferAcqDown                     // acquire the destination down-link
	xferDownHold                    // down-link occupancy elapsed
	xferProp                        // propagation elapsed; copy and account
	xferLocal                       // device-local: setup elapsed; copy
	xferFlowCharge                  // flow mode: stall elapsed; charge clocks
	xferFlowDone                    // flow mode: completion instant reached
	xferDone                        // terminal
)

// Xfer is one in-flight DMA transaction driven by a handler proc: a
// run-to-completion replay of (*Fabric).MustDMA. Start stages the
// transfer, then the owner calls Step from its handler body until Step
// reports true; every false return means the machine re-armed itself
// (or enrolled on a resource) and the body must return.
//
// The zero value is idle and reusable: a completed Xfer may be
// Started again, so one machine per owner serves any number of
// sequential transfers without allocating.
type Xfer struct {
	f         *Fabric
	st        xferState
	initiator *Port
	dst, src  mem.Addr
	n         int
	tick      sim.ResTicket

	srcPort, dstPort *Port
	srcReg, dstReg   *mem.Region
}

// Start stages one transfer. Policy errors panic (the MustDMA
// contract: handler paths are validated at configuration time).
func (x *Xfer) Start(f *Fabric, initiator *Port, dst, src mem.Addr, n int) {
	if x.st != xferIdle {
		panic("pcie: Xfer started while a transfer is in flight")
	}
	x.f = f
	x.initiator = initiator
	x.dst, x.src, x.n = dst, src, n
	x.st = xferStart
}

// Active reports whether a transfer is staged or in flight.
func (x *Xfer) Active() bool { return x.st != xferIdle }

// Step advances the transfer and reports whether it completed. On
// false the handler body must return: the machine has re-armed h or
// enrolled it on a bandwidth server and will make progress on the
// next dispatch. The event sequence is identical to the goroutine
// MustDMA call it replaces — same fault draws, same per-stage sleeps,
// same FIFO positions on every server.
//
//dcslint:hotpath
func (x *Xfer) Step(h *sim.HandlerCtx) bool {
	f := x.f
	for {
		switch x.st {
		case xferIdle:
			panic("pcie: Step on idle Xfer")
		case xferStart:
			if x.n == 0 {
				x.finish()
				return true
			}
			if x.n < 0 {
				panic("pcie: negative DMA length")
			}
			x.srcPort, x.srcReg, x.dstPort, x.dstReg = f.mustResolvePair(x.initiator, x.dst, x.src)
			if x.srcPort == x.dstPort {
				// Device-local move: no bus traffic, only internal copy
				// time.
				x.st = xferLocal
				if d := f.params.DMASetup; d > 0 {
					h.Rearm(d)
					return false
				}
				continue
			}
			if f.FlowMode() {
				// Analytic arm, mirroring flowXfer: draw the degrade
				// fault first, stall if hit, then charge the clocks.
				x.st = xferFlowCharge
				if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
					h.Rearm(linkRetrainStall)
					return false
				}
				continue
			}
			x.st = xferSetup
			if f.params.Faults.Hit(fault.PCIeLinkDegrade) {
				h.Rearm(linkRetrainStall)
				return false
			}
			continue
		case xferSetup:
			x.st = xferAcqUp
			if d := f.params.DMASetup; d > 0 {
				h.Rearm(d)
				return false
			}
		case xferAcqUp:
			if !x.srcPort.up.AcquireH(h, &x.tick) {
				return false
			}
			x.st = xferUpHold
			if d := x.srcPort.up.HoldTime(x.n); d > 0 {
				h.Rearm(d)
				return false
			}
		case xferUpHold:
			x.srcPort.up.CompleteH(x.n)
			x.st = xferAcqCore
		case xferAcqCore:
			if !f.core.AcquireH(h, &x.tick) {
				return false
			}
			x.st = xferCoreHold
			if d := f.core.HoldTime(x.n); d > 0 {
				h.Rearm(d)
				return false
			}
		case xferCoreHold:
			f.core.CompleteH(x.n)
			x.st = xferAcqDown
		case xferAcqDown:
			if !x.dstPort.down.AcquireH(h, &x.tick) {
				return false
			}
			x.st = xferDownHold
			if d := x.dstPort.down.HoldTime(x.n); d > 0 {
				h.Rearm(d)
				return false
			}
		case xferDownHold:
			x.dstPort.down.CompleteH(x.n)
			x.st = xferProp
			if d := f.params.PropLatency; d > 0 {
				h.Rearm(d)
				return false
			}
		case xferProp:
			f.mem.Copy(x.dst, x.src, x.n)
			x.srcPort.bytesOut += int64(x.n)
			x.dstPort.bytesIn += int64(x.n)
			if x.srcReg.Kind == mem.HostDRAM || x.dstReg.Kind == mem.HostDRAM {
				f.hostBytes += int64(x.n)
			} else {
				f.p2pBytes += int64(x.n)
			}
			x.finish()
			return true
		case xferLocal:
			f.mem.Copy(x.dst, x.src, x.n)
			x.finish()
			return true
		case xferFlowCharge:
			now := f.env.Now()
			done := f.flowCharge(x.srcPort, x.dstPort, x.n, now+f.params.DMASetup)
			x.st = xferFlowDone
			if d := done - now; d > 0 {
				h.Rearm(d)
				return false
			}
		case xferFlowDone:
			f.mem.Copy(x.dst, x.src, x.n)
			f.flowAccount(x.srcPort, x.srcReg, x.dstPort, x.dstReg, x.n)
			x.finish()
			return true
		default:
			panic(fmt.Sprintf("pcie: Xfer in impossible state %d", x.st))
		}
	}
}

// finish resets the machine to idle, dropping region/port references.
func (x *Xfer) finish() {
	x.st = xferIdle
	x.srcPort, x.dstPort = nil, nil
	x.srcReg, x.dstReg = nil, nil
}

// XferVec is the handler-proc replay of (*Fabric).MustDMAVec: the
// extents run strictly in order, each charged exactly as the
// equivalent DMA call, with zero-length extents skipped inline. Like
// Xfer, the zero value is idle and reusable.
type XferVec struct {
	x         Xfer
	f         *Fabric
	initiator *Port
	base      mem.Addr
	exts      []mem.Extent
	gather    bool
	i         int
	off       mem.Addr
	active    bool
}

// Start stages one vectored transfer. The extent slice must stay
// unmutated until Step reports completion (the posted-buffer
// stability contract DMA hardware imposes anyway).
func (v *XferVec) Start(f *Fabric, initiator *Port, base mem.Addr, exts []mem.Extent, gather bool) {
	if v.active || v.x.Active() {
		panic("pcie: XferVec started while a transfer is in flight")
	}
	v.f = f
	v.initiator = initiator
	v.base = base
	v.exts = exts
	v.gather = gather
	v.i, v.off = 0, 0
	v.active = true
}

// Active reports whether a vectored transfer is in flight.
func (v *XferVec) Active() bool { return v.active }

// Step advances the vectored transfer and reports whether every
// extent completed. On false the handler body must return, exactly as
// with Xfer.Step.
//
//dcslint:hotpath
func (v *XferVec) Step(h *sim.HandlerCtx) bool {
	if !v.active {
		panic("pcie: Step on idle XferVec")
	}
	for {
		if !v.x.Active() {
			if v.i == len(v.exts) {
				v.active = false
				v.exts = nil
				return true
			}
			e := v.exts[v.i]
			if v.gather {
				v.x.Start(v.f, v.initiator, v.base+v.off, e.Addr, e.Len)
			} else {
				v.x.Start(v.f, v.initiator, e.Addr, v.base+v.off, e.Len)
			}
		}
		if !v.x.Step(h) {
			return false
		}
		v.off += mem.Addr(v.exts[v.i].Len)
		v.i++
	}
}

// dmaWorker is the handler flavor of the pooled async-DMA worker: the
// same fire / re-pool / fetch-next-job loop as the goroutine worker in
// DMAAsync, with the blocking MustDMA replaced by the Xfer machine.
type dmaWorker struct {
	f       *Fabric
	x       Xfer
	job     asyncJob
	hasJob  bool
	running bool // the staged job's transfer has been started
}

// run is the worker's handler body.
func (w *dmaWorker) run(h *sim.HandlerCtx) {
	f := w.f
	for {
		if !w.hasJob {
			job, ok := f.asyncJobs.GetH(h)
			if !ok {
				return // parked on the job queue, flavor-blind with the goroutine pool
			}
			w.job = job
			w.hasJob = true
		}
		if !w.running {
			w.x.Start(f, w.job.initiator, w.job.dst, w.job.src, w.job.n)
			w.running = true
		}
		if !w.x.Step(h) {
			return
		}
		w.job.sig.Fire(nil)
		f.asyncIdle++
		w.job = asyncJob{}
		w.hasJob, w.running = false, false
	}
}
