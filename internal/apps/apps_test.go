package apps

import (
	"fmt"
	"testing"

	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
	"dcsctrl/internal/workload"
)

// smallSwift returns a config small enough for unit testing.
func smallSwift() SwiftConfig {
	cfg := DefaultSwiftConfig()
	cfg.Conns = 4
	cfg.Warmup = 1 * sim.Millisecond
	cfg.Duration = 8 * sim.Millisecond
	cfg.MeanGap = 300 * sim.Microsecond
	cfg.Sizes = workload.NewSizeDist([]workload.SizeBucket{
		{Weight: 0.5, Min: 8 << 10, Max: 64 << 10},
		{Weight: 0.5, Min: 64 << 10, Max: 256 << 10},
	})
	return cfg
}

func TestSwiftRunsOnAllConfigs(t *testing.T) {
	for _, kind := range []core.Config{core.SWOpt, core.SWP2P, core.DCSCtrl} {
		env := sim.NewEnv()
		cl := core.NewCluster(env, kind, core.DefaultParams())
		res, err := RunSwift(env, cl, smallSwift())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%v: %d request errors", kind, res.Errors)
		}
		if res.Requests < 20 {
			t.Fatalf("%v: only %d requests completed", kind, res.Requests)
		}
		if res.GETs == 0 || res.PUTs == 0 {
			t.Fatalf("%v: GETs=%d PUTs=%d", kind, res.GETs, res.PUTs)
		}
		if res.Gbps <= 0 {
			t.Fatalf("%v: throughput %v", kind, res.Gbps)
		}
		if res.ServerCPU <= 0 || res.ServerCPU > 1 {
			t.Fatalf("%v: server CPU %v", kind, res.ServerCPU)
		}
	}
}

func TestSwiftDCSUsesLessCPUAtSameLoad(t *testing.T) {
	// Use the evaluation's size mixture: with tiny objects the common
	// per-request application cost dominates both designs and the gap
	// narrows (an observable model property, not a bug).
	cfg := smallSwift()
	cfg.Sizes = workload.DropboxSizes()
	util := func(kind core.Config) (float64, float64) {
		env := sim.NewEnv()
		cl := core.NewCluster(env, kind, core.DefaultParams())
		res, err := RunSwift(env, cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.ServerCPU, res.Gbps
	}
	p2pCPU, p2pGbps := util(core.SWP2P)
	dcsCPU, dcsGbps := util(core.DCSCtrl)
	// Same arrival process: throughput should be comparable (DCS never
	// slower), and CPU much lower.
	if dcsGbps < p2pGbps*0.9 {
		t.Fatalf("DCS throughput %.2f << SW-P2P %.2f at same load", dcsGbps, p2pGbps)
	}
	ratio := dcsCPU / p2pCPU
	if ratio > 0.7 {
		t.Fatalf("DCS CPU ratio %.2f, want well below 1 (paper ~0.48)", ratio)
	}
}

func TestSwiftDCSBreakdownHasNoGPUOrDataCopy(t *testing.T) {
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.DCSCtrl, core.DefaultParams())
	res, err := RunSwift(env, cl, smallSwift())
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerBusy[trace.CatGPUCtrl] != 0 || res.ServerBusy[trace.CatGPUCopy] != 0 {
		t.Fatal("DCS server charged GPU categories")
	}
	if res.ServerBusy[trace.CatHDCDriver] == 0 {
		t.Fatal("DCS server charged no HDC driver time")
	}
	if res.ServerBusy[trace.CatDataCopy] > res.ServerBusy[trace.CatNetStack] {
		// Control-plane copies only: must be small.
		t.Fatalf("data-copy %v too high for DCS", res.ServerBusy[trace.CatDataCopy])
	}
}

func TestSwiftDeterministicReplay(t *testing.T) {
	run := func() string {
		env := sim.NewEnv()
		cl := core.NewCluster(env, core.DCSCtrl, core.DefaultParams())
		res, err := RunSwift(env, cl, smallSwift())
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d %d %d %v", res.Requests, res.GETs, res.Bytes, res.Elapsed)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}

func TestHDFSRunsAndMovesBlocks(t *testing.T) {
	for _, kind := range []core.Config{core.SWOpt, core.DCSCtrl} {
		env := sim.NewEnv()
		cl := core.NewClusterWithClient(env, kind, kind, core.DefaultParams())
		cfg := DefaultHDFSConfig()
		cfg.Streams = 2
		cfg.BlockSize = 512 << 10
		cfg.Warmup = 1 * sim.Millisecond
		cfg.Duration = 10 * sim.Millisecond
		res, err := RunHDFS(env, cl, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%v: %d errors", kind, res.Errors)
		}
		if res.Blocks < 4 {
			t.Fatalf("%v: only %d blocks moved", kind, res.Blocks)
		}
		if res.Gbps <= 1 {
			t.Fatalf("%v: throughput %.2f Gbps", kind, res.Gbps)
		}
		if res.SenderCPU <= 0 || res.ReceiverCPU <= 0 {
			t.Fatalf("%v: CPU sender=%v receiver=%v", kind, res.SenderCPU, res.ReceiverCPU)
		}
	}
}

func TestHDFSDCSReducesBothSides(t *testing.T) {
	measure := func(kind core.Config) (float64, float64, float64) {
		env := sim.NewEnv()
		cl := core.NewClusterWithClient(env, kind, kind, core.DefaultParams())
		cfg := DefaultHDFSConfig()
		cfg.Streams = 2
		cfg.BlockSize = 512 << 10
		cfg.Warmup = 1 * sim.Millisecond
		cfg.Duration = 10 * sim.Millisecond
		res, err := RunHDFS(env, cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SenderCPU, res.ReceiverCPU, res.Gbps
	}
	sSend, sRecv, sGbps := measure(core.SWP2P)
	dSend, dRecv, dGbps := measure(core.DCSCtrl)
	if dGbps < sGbps*0.9 {
		t.Fatalf("DCS HDFS throughput %.2f << SW %.2f", dGbps, sGbps)
	}
	// DCS may deliver more bandwidth, so compare CPU per delivered
	// Gbps (the quantity Figure 12b holds constant).
	if dSend/dGbps >= sSend/sGbps {
		t.Fatalf("sender CPU/Gbps: DCS %.4f >= SW %.4f", dSend/dGbps, sSend/sGbps)
	}
	if dRecv/dGbps >= sRecv/sGbps {
		t.Fatalf("receiver CPU/Gbps: DCS %.4f >= SW %.4f", dRecv/dGbps, sRecv/sGbps)
	}
}

func TestSwiftBadConfigRejected(t *testing.T) {
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.SWOpt, core.DefaultParams())
	if _, err := RunSwift(env, cl, SwiftConfig{Conns: 0}); err == nil {
		t.Fatal("zero connections accepted")
	}
}

func TestHDFSBadConfigRejected(t *testing.T) {
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.SWOpt, core.DefaultParams())
	if _, err := RunHDFS(env, cl, HDFSConfig{Streams: 0}); err == nil {
		t.Fatal("zero streams accepted")
	}
}

func TestSwiftLatencyPercentiles(t *testing.T) {
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.DCSCtrl, core.DefaultParams())
	res, err := RunSwift(env, cl, smallSwift())
	if err != nil {
		t.Fatal(err)
	}
	if res.GETLatency.N() == 0 || res.PUTLatency.N() == 0 {
		t.Fatalf("no latency samples: GET=%d PUT=%d", res.GETLatency.N(), res.PUTLatency.N())
	}
	if res.GETLatency.Percentile(50) <= 0 {
		t.Fatal("zero GET p50")
	}
	if res.GETLatency.Percentile(99) < res.GETLatency.Percentile(50) {
		t.Fatal("p99 below p50")
	}
}
