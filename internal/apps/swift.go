// Package apps implements the paper's scale-out storage workloads
// (§V-C) on top of the core node API: an OpenStack-Swift-like object
// server (PUT/GET with MD5 integrity, Table II) and an HDFS-balancer-
// like block mover (CRC32 on receive). Each runs on every server
// configuration, so the CPU-utilization comparisons of Figures 12 and
// 13 fall directly out of the host accounting.
package apps

import (
	"encoding/binary"
	"fmt"

	"dcsctrl/internal/core"
	"dcsctrl/internal/hostos"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
	"dcsctrl/internal/workload"
)

// SwiftConfig drives the object-storage experiment.
type SwiftConfig struct {
	Conns      int     // concurrent client connections
	GETRatio   float64 // fraction of GET requests
	Sizes      *workload.SizeDist
	Seed       uint64
	MeanGap    sim.Time        // per-connection mean inter-request gap (Poisson)
	Warmup     sim.Time        // excluded from measurement
	Duration   sim.Time        // measured window
	Processing core.Processing // intermediate processing (MD5 for Swift)

	// AppCPUPerRequest is the object server's application-level cost
	// per request (authentication, container bookkeeping, response
	// assembly -- Swift is a Python service). It is paid on every
	// configuration: DCS-ctrl replaces the data path, not the request
	// handling, which is why Figure 12a's DCS bar is roughly half the
	// baseline rather than near zero.
	AppCPUPerRequest sim.Time
	// AppRelayBps is the user-space data shuffling rate of the
	// baseline object server (read()/send() through Python buffers);
	// DCS-ctrl's single sendfile-like call eliminates it.
	AppRelayBps float64
}

// DefaultSwiftConfig returns the evaluation setup: Poisson arrivals,
// Dropbox sizes, MD5 integrity.
func DefaultSwiftConfig() SwiftConfig {
	return SwiftConfig{
		Conns:      8,
		GETRatio:   0.67,
		Sizes:      workload.DropboxSizes(),
		Seed:       1,
		MeanGap:    400 * sim.Microsecond,
		Warmup:     2 * sim.Millisecond,
		Duration:   30 * sim.Millisecond,
		Processing: core.ProcMD5,

		AppCPUPerRequest: 370 * sim.Microsecond,
		AppRelayBps:      17.2e9,
	}
}

// SwiftResult summarizes a run.
type SwiftResult struct {
	Requests   int
	GETs, PUTs int
	Bytes      int64
	Elapsed    sim.Time
	// Server CPU busy time per category over the measured window.
	ServerBusy map[trace.Category]sim.Time
	ServerCPU  float64 // total utilization across all server cores
	Gbps       float64 // delivered payload throughput
	Errors     int
	// Client-observed request latencies (µs) within the window.
	GETLatency trace.Sample
	PUTLatency trace.Sample
}

// request wire format on the control connection: kind(1) pad(3)
// size(4) id(8).
const reqSize = 16

func encodeReq(kind workload.OpKind, size int, id uint64) []byte {
	b := make([]byte, reqSize)
	b[0] = byte(kind)
	binary.LittleEndian.PutUint32(b[4:], uint32(size))
	binary.LittleEndian.PutUint64(b[8:], id)
	return b
}

func decodeReq(b []byte) (workload.OpKind, int, uint64) {
	return workload.OpKind(b[0]), int(binary.LittleEndian.Uint32(b[4:])), binary.LittleEndian.Uint64(b[8:])
}

// relayed reports whether the configuration moves object data through
// user-space buffers (the paper's software baselines).
func relayed(k core.Config) bool {
	return k == core.Vanilla || k == core.SWOpt || k == core.SWP2P
}

// swiftPair is one client connection pair with its staged objects.
type swiftPair struct {
	ctrl, data core.Conn
	getFile    *hostos.File
	putFile    *hostos.File
}

// SwiftSession is a prepared Swift workload: files staged and
// connections opened, with no simulation processes spawned yet. The
// split from RunSwift exists for checkpoint/restore (DESIGN.md §17):
// a warm-fork experiment prepares a session, runs a warm phase to
// full quiescence, snapshots the cluster, and then runs measured
// phases — either straight through or forked from the snapshot into
// a freshly prepared, identically configured session. Each phase
// spawns its own server/client/measure processes and drains them
// completely, so phase boundaries are checkpointable instants.
type SwiftSession struct {
	env     *sim.Env
	cl      *core.Cluster
	cfg     SwiftConfig
	pairs   []*swiftPair
	maxSize int
	phase   int // completed RunPhase calls; offsets per-phase RNG seeds
}

// phaseSeedStride separates the RNG streams of successive phases: a
// restored session replays phase k with the same seeds whether or not
// earlier phases ran in this process.
const phaseSeedStride = 1_000_003

// PrepareSwift stages the workload's files and connections without
// spawning any processes. The resulting session is at a quiescent
// configuration point: identical Prepare calls on identical clusters
// produce identical setup state, which is what Cluster.Restore
// verifies against.
func PrepareSwift(env *sim.Env, cl *core.Cluster, cfg SwiftConfig) (*SwiftSession, error) {
	if cfg.Conns < 1 {
		return nil, fmt.Errorf("apps: need at least one connection")
	}
	maxSize := 0
	for _, b := range cfg.Sizes.Buckets {
		if b.Max > maxSize {
			maxSize = b.Max
		}
	}
	s := &SwiftSession{env: env, cl: cl, cfg: cfg, maxSize: maxSize}
	content := make([]byte, maxSize)
	for i := range content {
		content[i] = byte(i * 31)
	}
	s.pairs = make([]*swiftPair, cfg.Conns)
	for i := range s.pairs {
		getF, err := cl.Server.StageFile(fmt.Sprintf("vol-get-%d", i), content)
		if err != nil {
			return nil, err
		}
		putF, err := cl.Server.CreateFile(fmt.Sprintf("vol-put-%d", i), maxSize)
		if err != nil {
			return nil, err
		}
		s.pairs[i] = &swiftPair{
			ctrl:    cl.OpenConn(false),
			data:    cl.OpenConn(true),
			getFile: getF,
			putFile: putF,
		}
	}
	return s, nil
}

// Phase returns how many phases have completed.
func (s *SwiftSession) Phase() int { return s.phase }

// SetPhase declares that k phases already ran — against a restored
// cluster, where the warm phase happened in the checkpointed process.
// The next RunPhase then draws the same seeds the straight-through
// run's phase k would.
func (s *SwiftSession) SetPhase(k int) { s.phase = k }

// RunPhase runs one complete load phase — servers, Poisson clients,
// measurement window — and drains it: when it returns, every phase
// process has exited and the environment is quiescent, so the cluster
// may be snapshotted. warmup is excluded from measurement; duration
// is the measured window.
func (s *SwiftSession) RunPhase(warmup, duration sim.Time) (SwiftResult, error) {
	return s.RunPhaseSeed(warmup, duration, s.cfg.Seed+uint64(s.phase)*phaseSeedStride)
}

// RunPhaseSeed is RunPhase with an explicit seed for the phase's RNG
// streams. Warm-fork grids use it so the warm phase (and therefore
// the shared checkpoint) is seed-independent while each measured cell
// draws its own arrival and size streams.
func (s *SwiftSession) RunPhaseSeed(warmup, duration sim.Time, phaseSeed uint64) (SwiftResult, error) {
	env, cl, cfg := s.env, s.cl, s.cfg
	res := SwiftResult{ServerBusy: map[trace.Category]sim.Time{}}
	s.phase++

	stop := false
	measuring := false

	// Server: one handler process per connection pair.
	for _, pr := range s.pairs {
		pr := pr
		env.Spawn("swift-server", func(p *sim.Proc) {
			for {
				req := cl.ServerRecv(p, nil, pr.ctrl, reqSize)
				kind, size, id := decodeReq(req)
				if id == ^uint64(0) {
					return // shutdown
				}
				// Application-level request handling (all configurations).
				cl.Server.Host.Exec(p, trace.CatUser, cfg.AppCPUPerRequest, nil)
				if relayed(cl.Server.Kind) && cfg.AppRelayBps > 0 {
					// Baselines shuffle the object through user space.
					cl.Server.Host.Exec(p, trace.CatUser, sim.BpsToTime(size, cfg.AppRelayBps), nil)
				}
				var err error
				if kind == workload.OpGET {
					_, err = cl.Server.SendFileOp(p, pr.getFile, 0, size, pr.data.ID, cfg.Processing)
				} else {
					// 100-continue: tell the client to start the body only
					// once the receive path is about to be armed, so body
					// bytes never pile up unclaimed (Swift's real PUT path
					// uses Expect: 100-continue the same way).
					cl.ServerSend(p, nil, pr.ctrl, make([]byte, reqSize))
					_, err = cl.Server.RecvFileOp(p, pr.data.ID, pr.putFile, 0, size, cfg.Processing)
				}
				status := []byte{0}
				if err != nil {
					status[0] = 1
					res.Errors++
				}
				ack := make([]byte, reqSize)
				copy(ack, status)
				cl.ServerSend(p, nil, pr.ctrl, ack)
			}
		})
	}

	// Clients: Poisson arrivals per connection.
	mix := workload.NewMix(phaseSeed, cfg.Sizes, cfg.GETRatio)
	for i, pr := range s.pairs {
		pr := pr
		seed := phaseSeed + uint64(i)*7919
		env.Spawn("swift-client", func(p *sim.Proc) {
			rng := workload.NewRand(seed)
			payload := make([]byte, s.maxSize)
			var reqID uint64
			for !stop {
				p.Sleep(rng.ExpTime(cfg.MeanGap))
				if stop {
					break
				}
				req := mix.Next()
				reqID++
				t0 := p.Now()
				cl.ClientSend(p, pr.ctrl, encodeReq(req.Kind, req.Size, reqID))
				if req.Kind == workload.OpGET {
					cl.ClientRecv(p, pr.data, req.Size)
				} else {
					cl.ClientRecv(p, pr.ctrl, reqSize) // 100-continue
					cl.ClientSend(p, pr.data, payload[:req.Size])
				}
				cl.ClientRecv(p, pr.ctrl, reqSize)
				if measuring {
					res.Requests++
					res.Bytes += int64(req.Size)
					if req.Kind == workload.OpGET {
						res.GETs++
						res.GETLatency.AddTime(p.Now() - t0)
					} else {
						res.PUTs++
						res.PUTLatency.AddTime(p.Now() - t0)
					}
				}
			}
			// Shut the server handler down.
			cl.ClientSend(p, pr.ctrl, encodeReq(workload.OpGET, 0, ^uint64(0)))
		})
	}

	// Measurement window control.
	env.Spawn("swift-measure", func(p *sim.Proc) {
		p.Sleep(warmup)
		cl.Server.Host.Acct.Reset()
		measuring = true
		p.Sleep(duration)
		measuring = false
		acct := cl.Server.Host.Acct
		for _, cat := range acct.Categories() {
			res.ServerBusy[cat] = acct.Busy(cat)
		}
		res.ServerCPU = cl.Server.Host.Utilization()
		res.Elapsed = acct.Window()
		stop = true
	})

	env.Run(-1)
	if res.Elapsed > 0 {
		res.Gbps = float64(res.Bytes) * 8 / res.Elapsed.Seconds() / 1e9
	}
	return res, nil
}

// RunSwift executes the Swift workload on the cluster and returns the
// measured server-side results. It runs the simulation to completion.
// Equivalent to PrepareSwift followed by one RunPhase — the two-call
// form exists for checkpoint/restore experiments.
func RunSwift(env *sim.Env, cl *core.Cluster, cfg SwiftConfig) (SwiftResult, error) {
	s, err := PrepareSwift(env, cl, cfg)
	if err != nil {
		return SwiftResult{}, err
	}
	return s.RunPhase(cfg.Warmup, cfg.Duration)
}
