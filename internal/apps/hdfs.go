package apps

import (
	"fmt"

	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// HDFSConfig drives the balancer experiment: a sender reads blocks
// from its SSD and ships them; the receiver computes CRC32 and stores
// them (§V-C2). Block size is scaled down from HDFS's 64/128 MB to
// keep discrete-event runs tractable (documented in EXPERIMENTS.md).
type HDFSConfig struct {
	Streams   int
	BlockSize int
	Warmup    sim.Time
	Duration  sim.Time

	// AppCPUPerBlock is the DataNode/balancer application-level cost
	// per block (Java protocol handling, block bookkeeping); paid on
	// every configuration.
	AppCPUPerBlock sim.Time
	// AppRelayBps is the baseline DataNode's user-space per-byte data
	// shuffling rate; eliminated under DCS-ctrl.
	AppRelayBps float64
}

// DefaultHDFSConfig returns the evaluation setup.
func DefaultHDFSConfig() HDFSConfig {
	return HDFSConfig{
		Streams:        4,
		BlockSize:      1 << 20,
		Warmup:         2 * sim.Millisecond,
		Duration:       30 * sim.Millisecond,
		AppCPUPerBlock: 430 * sim.Microsecond,
		AppRelayBps:    17.2e9,
	}
}

// HDFSResult summarizes a balancer run. Sender and receiver busy
// times are reported separately, as in Figure 12b.
type HDFSResult struct {
	Blocks  int
	Bytes   int64
	Elapsed sim.Time

	SenderBusy   map[trace.Category]sim.Time
	ReceiverBusy map[trace.Category]sim.Time
	SenderCPU    float64
	ReceiverCPU  float64
	Gbps         float64
	Errors       int
}

// RunHDFS executes the balancer: the cluster's Client is the sender
// and the Server is the receiver (both run the configuration under
// test; build the cluster with NewClusterWithClient).
func RunHDFS(env *sim.Env, cl *core.Cluster, cfg HDFSConfig) (HDFSResult, error) {
	if cfg.Streams < 1 || cfg.BlockSize < 4096 {
		return HDFSResult{}, fmt.Errorf("apps: bad HDFS config")
	}
	res := HDFSResult{
		SenderBusy:   map[trace.Category]sim.Time{},
		ReceiverBusy: map[trace.Category]sim.Time{},
	}

	content := make([]byte, cfg.BlockSize)
	for i := range content {
		content[i] = byte(i*7 + 1)
	}

	stop := false
	measuring := false
	for s := 0; s < cfg.Streams; s++ {
		conn := cl.OpenConn(true)
		srcF, err := cl.Client.StageFile(fmt.Sprintf("blk-src-%d", s), content)
		if err != nil {
			return res, err
		}
		dstF, err := cl.Server.CreateFile(fmt.Sprintf("blk-dst-%d", s), cfg.BlockSize)
		if err != nil {
			return res, err
		}
		// Sender: read a block from the SSD and send it, no checksum.
		env.Spawn("hdfs-sender", func(p *sim.Proc) {
			for !stop {
				cl.Client.Host.Exec(p, trace.CatUser, cfg.AppCPUPerBlock, nil)
				if relayed(cl.Client.Kind) && cfg.AppRelayBps > 0 {
					cl.Client.Host.Exec(p, trace.CatUser, sim.BpsToTime(cfg.BlockSize, cfg.AppRelayBps), nil)
				}
				if _, err := cl.Client.SendFileOp(p, srcF, 0, cfg.BlockSize, conn.ID, core.ProcNone); err != nil {
					res.Errors++
					return
				}
			}
		})
		// Receiver: receive, CRC32, store.
		env.Spawn("hdfs-receiver", func(p *sim.Proc) {
			for !stop {
				cl.Server.Host.Exec(p, trace.CatUser, cfg.AppCPUPerBlock, nil)
				if relayed(cl.Server.Kind) && cfg.AppRelayBps > 0 {
					cl.Server.Host.Exec(p, trace.CatUser, sim.BpsToTime(cfg.BlockSize, cfg.AppRelayBps), nil)
				}
				if _, err := cl.Server.RecvFileOp(p, conn.ID, dstF, 0, cfg.BlockSize, core.ProcCRC32); err != nil {
					res.Errors++
					return
				}
				if measuring {
					res.Blocks++
					res.Bytes += int64(cfg.BlockSize)
				}
			}
		})
	}

	env.Spawn("hdfs-measure", func(p *sim.Proc) {
		p.Sleep(cfg.Warmup)
		cl.Server.Host.Acct.Reset()
		cl.Client.Host.Acct.Reset()
		measuring = true
		p.Sleep(cfg.Duration)
		measuring = false
		for _, cat := range cl.Client.Host.Acct.Categories() {
			res.SenderBusy[cat] = cl.Client.Host.Acct.Busy(cat)
		}
		for _, cat := range cl.Server.Host.Acct.Categories() {
			res.ReceiverBusy[cat] = cl.Server.Host.Acct.Busy(cat)
		}
		res.SenderCPU = cl.Client.Host.Utilization()
		res.ReceiverCPU = cl.Server.Host.Utilization()
		res.Elapsed = cl.Server.Host.Acct.Window()
		stop = true
	})

	env.Run(-1)
	if res.Elapsed > 0 {
		res.Gbps = float64(res.Bytes) * 8 / res.Elapsed.Seconds() / 1e9
	}
	return res, nil
}
