package bench

import (
	"testing"

	"dcsctrl/internal/sim"
)

// TestRestoreRoundTrip restores a warm checkpoint into a fresh cluster
// and re-snapshots it: the bytes must round-trip exactly.
func TestRestoreRoundTrip(t *testing.T) {
	cfg := DefaultWarmForkConfig()
	cfg.WarmDuration = 3 * sim.Millisecond
	cfg.Conns = 4
	_, cl, sess, err := cfg.buildCell()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunPhaseSeed(0, cfg.WarmDuration, warmSeed); err != nil {
		t.Fatal(err)
	}
	ckpt, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, cl2, _, err := cfg.buildCell()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Restore(ckpt); err != nil {
		t.Fatalf("restore: %v", err)
	}
	ckpt2, err := cl2.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if len(ckpt) != len(ckpt2) {
		t.Fatalf("sizes differ: %d vs %d", len(ckpt), len(ckpt2))
	}
	for i := range ckpt {
		if ckpt[i] != ckpt2[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("differ at byte %d; context orig=%q restored=%q", i, ckpt[lo:i+20], ckpt2[lo:i+20])
		}
	}
}
