package bench

import (
	"runtime"
	"testing"
)

// TestRackFlowsDeterministic pins the flow generator: the list depends
// only on the config, and both patterns produce the expected shapes.
func TestRackFlowsDeterministic(t *testing.T) {
	cfg := RackConfig{Nodes: 8, Seed: 42}.withDefaults()
	a, b := buildRackFlows(cfg), buildRackFlows(cfg)
	if len(a) != 8*7 {
		t.Fatalf("alltoall flow count = %d, want %d", len(a), 8*7)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs between identical builds: %+v vs %+v", i, a[i], b[i])
		}
	}
	in := buildRackFlows(RackConfig{Nodes: 8, Pattern: RackIncast, Rounds: 2}.withDefaults())
	if len(in) != 7*2 {
		t.Fatalf("incast flow count = %d, want %d", len(in), 7*2)
	}
	for _, f := range in {
		if f.dst != 0 || f.src == 0 {
			t.Fatalf("incast flow %+v not aimed at node 0", f)
		}
	}
}

// TestRackShardedMatchesSerial runs a small all-to-all rack serially
// and sharded and requires byte-identical fingerprints — the cheap
// in-package version of the exhaustive root-level equivalence suite.
func TestRackShardedMatchesSerial(t *testing.T) {
	cfg := RackConfig{Nodes: 8, Bytes: 8 << 10, Seed: 7}
	serial := RunRack(cfg)
	cfg.Domains = 4
	sharded := RunRack(cfg)
	if s, p := serial.Fingerprint(), sharded.Fingerprint(); s != p {
		t.Fatalf("fingerprints diverge: serial %s, 4 domains %s", s, p)
	}
	if sharded.ShardStats.ParWindows == 0 {
		t.Fatal("4-domain run never dispatched domains in parallel (knob dead)")
	}
	if serial.ShardStats.ParWindows != 0 {
		t.Fatal("serial run reported parallel windows")
	}
	if serial.Makespan != sharded.Makespan {
		t.Fatalf("makespan diverges: %v vs %v", serial.Makespan, sharded.Makespan)
	}
}

// TestIntraRunWorkers pins the product clamp.
func TestIntraRunWorkers(t *testing.T) {
	mp := runtime.GOMAXPROCS(0)
	if got := IntraRunWorkers(1, mp+5); got != mp {
		t.Fatalf("IntraRunWorkers(1, %d) = %d, want %d", mp+5, got, mp)
	}
	if got := IntraRunWorkers(mp, 8); got != 1 {
		t.Fatalf("IntraRunWorkers(%d, 8) = %d, want 1", mp, got)
	}
	if got := IntraRunWorkers(0, 0); got != 1 {
		t.Fatalf("IntraRunWorkers(0, 0) = %d, want 1", got)
	}
	if mp >= 2 {
		if got := IntraRunWorkers(1, 2); got != 2 {
			t.Fatalf("IntraRunWorkers(1, 2) = %d, want 2", got)
		}
	}
}
