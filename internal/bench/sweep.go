package bench

import (
	"fmt"
	"io"

	"dcsctrl/internal/core"
	"dcsctrl/internal/report"
	"dcsctrl/internal/sim"
)

// SizeSweep measures single-operation latency across transfer sizes
// for every design — the crossover view behind Figure 11: hardware
// control wins big at small transfers (control dominates) and keeps a
// constant absolute edge at large ones (media/wire dominate).
type SizeSweep struct {
	Proc    core.Processing
	Sizes   []int
	Configs []core.Config
	// LatencyUs[config][i] is the warm-op latency for Sizes[i] in µs.
	LatencyUs map[core.Config][]float64
}

// DefaultSweepSizes are the measured transfer sizes.
var DefaultSweepSizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// RunSizeSweep executes the sweep serially.
func RunSizeSweep(proc core.Processing) SizeSweep {
	return RunSizeSweepParallel(proc, 1)
}

// RunSizeSweepParallel executes the sweep's config×size trial cells
// across up to workers goroutines, each cell in its own sim.Env.
// Results are keyed by cell index, so the output is identical to a
// serial run for any worker count.
func RunSizeSweepParallel(proc core.Processing, workers int) SizeSweep {
	sw := SizeSweep{
		Proc:      proc,
		Sizes:     DefaultSweepSizes,
		Configs:   []core.Config{core.SWOpt, core.SWP2P, core.DCSCtrl},
		LatencyUs: map[core.Config][]float64{},
	}
	lat := make([]float64, len(sw.Configs)*len(sw.Sizes))
	ParallelFor(len(lat), workers, func(i int) {
		kind := sw.Configs[i/len(sw.Sizes)]
		size := sw.Sizes[i%len(sw.Sizes)]
		lat[i] = microbench(kind, size, proc).Latency.Microseconds()
	})
	for ci, kind := range sw.Configs {
		sw.LatencyUs[kind] = lat[ci*len(sw.Sizes) : (ci+1)*len(sw.Sizes)]
	}
	return sw
}

// Render writes the sweep as a table with per-size reductions.
func (sw SizeSweep) Render(w io.Writer) {
	t := report.Table{
		Title:   fmt.Sprintf("Latency vs transfer size (processing=%s)", sw.Proc),
		Headers: []string{"size", "sw-opt µs", "sw-p2p µs", "dcs-ctrl µs", "reduction vs sw-p2p"},
	}
	for i, size := range sw.Sizes {
		p2p := sw.LatencyUs[core.SWP2P][i]
		dcs := sw.LatencyUs[core.DCSCtrl][i]
		red := 0.0
		if p2p > 0 {
			red = 1 - dcs/p2p
		}
		t.AddRow(fmtSize(size),
			fmt.Sprintf("%.1f", sw.LatencyUs[core.SWOpt][i]),
			fmt.Sprintf("%.1f", p2p),
			fmt.Sprintf("%.1f", dcs),
			report.Pct(red))
	}
	t.Render(w)
}

// Reduction returns the DCS-vs-SW-P2P latency reduction at Sizes[i].
func (sw SizeSweep) Reduction(i int) float64 {
	p2p := sw.LatencyUs[core.SWP2P][i]
	if p2p <= 0 {
		return 0
	}
	return 1 - sw.LatencyUs[core.DCSCtrl][i]/p2p
}

func fmtSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ProcMD5 re-exports the MD5 processing kind for harness callers that
// do not import core directly.
const ProcMD5 = core.ProcMD5

// interface check: sweeps use the shared microbench helper.
var _ = sim.Microsecond
