package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel experiment runner. Every experiment in this package is a
// grid of independent trial cells — (config, size, processing,
// fault-profile) tuples — and each cell builds its own sim.Env, so
// cells share no mutable state and can run on different OS threads
// without any locking. Parallelism lives strictly *between*
// environments; inside one environment the kernel stays single-
// threaded and deterministic.
//
// Determinism of aggregated results is preserved by construction:
// workers pull cell indices from a shared counter, but every result is
// written to its cell's index-keyed slot and the caller assembles
// output in index order, so the rendered figures are byte-identical to
// a serial run regardless of worker count or completion order.

// Workers normalizes a worker-count knob: n <= 0 selects GOMAXPROCS
// (one worker per schedulable CPU), anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// EffectiveWorkers reports the worker count ParallelFor will actually
// use for n items, so callers can report honest concurrency numbers.
// The count is clamped to GOMAXPROCS: extra goroutines beyond the
// schedulable CPUs cannot run concurrently, but they do thrash the
// scheduler and the allocator caches — on a single-CPU box an
// oversubscribed "parallel" sweep ran ~1.6× slower than the serial
// loop. Clamping makes that case degenerate to serial.
func EffectiveWorkers(n, workers int) int {
	if workers > n {
		workers = n
	}
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// IntraRunWorkers budgets the worker goroutines available *inside* one
// cell when the sweep runs outer cells concurrently. Sharded rack
// cells are themselves parallel (internal/sim/shard), so the honest
// capacity constraint is the product: outer × intra ≤ GOMAXPROCS.
// The result never drops below 1, so the total may still exceed
// GOMAXPROCS when outer alone does — ParallelFor's own clamp handles
// that axis. Intra-cell workers beyond the budget would not run
// concurrently anyway, and (unlike the cross-cell axis) they also pay
// per-window barrier hand-offs, so oversubscribing them is strictly
// worse than serial. Results are unaffected either way: shard
// execution is byte-identical at any worker count.
func IntraRunWorkers(outer, want int) int {
	if want < 1 {
		want = 1
	}
	if outer < 1 {
		outer = 1
	}
	budget := runtime.GOMAXPROCS(0) / outer
	if budget < 1 {
		budget = 1
	}
	if want > budget {
		want = budget
	}
	return want
}

// ParallelFor runs fn(i) for every i in [0, n) across up to
// EffectiveWorkers(n, workers) goroutines and returns when all calls
// have completed. fn must write its result into an index-keyed slot
// (slice element i) rather than append, so the caller observes
// deterministic ordering. An effective worker count of 1 degenerates
// to a plain serial loop on the calling goroutine.
func ParallelFor(n, workers int, fn func(i int)) {
	workers = EffectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
