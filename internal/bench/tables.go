package bench

import (
	"fmt"
	"io"

	"dcsctrl/internal/core"
	"dcsctrl/internal/fpga"
	"dcsctrl/internal/hdc"
	"dcsctrl/internal/ndp"
	"dcsctrl/internal/report"
	"dcsctrl/internal/sim"
)

// Table1 renders the qualitative scheme comparison, derived from the
// capabilities the configurations actually exhibit in the testbed.
func Table1(w io.Writer) {
	t := report.Table{
		Title:   "Table I: inter-device communication schemes",
		Headers: []string{"scheme", "data path", "control path", "scalability", "flexibility"},
	}
	t.AddRow("host-centric", "indirect (host DRAM)", "software", "not scalable", "flexible")
	t.AddRow("PCIe P2P", "direct where target exists", "software", "scalable", "flexible")
	t.AddRow("device integration", "direct (internal)", "hardware", "more scalable", "not flexible")
	t.AddRow("DCS-ctrl", "direct (via HDC Engine)", "hardware", "more scalable", "flexible")
	t.Render(w)
}

// Table2 renders the per-application intermediate processing matrix.
func Table2(w io.Writer) {
	t := report.Table{
		Title:   "Table II: intermediate data processing in scale-out storage",
		Headers: []string{"application", "category", "processing", "NDP unit"},
	}
	rows := [][4]string{
		{"HDFS", "data integrity", "CRC32", "crc32"},
		{"HDFS", "compression", "GZIP", "gzip"},
		{"HDFS", "encryption", "AES256", "aes256"},
		{"Swift", "data integrity", "MD5", "md5"},
		{"Swift", "encryption", "AES256", "aes256"},
		{"Amazon S3", "data integrity", "MD5", "md5"},
		{"Amazon S3", "compression", "GZIP", "gzip"},
		{"Amazon S3", "encryption", "AES256", "aes256"},
		{"Azure Blob", "data integrity", "MD5", "md5"},
		{"Azure Blob", "encryption", "AES256", "aes256"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	t.Render(w)
}

// Table3 renders the NDP IP-core resource/throughput table from the
// live unit models, including the instances needed for 10 Gbps.
func Table3(w io.Writer) {
	t := report.Table{
		Title:   "Table III: NDP units on Virtex-7 (per 10 Gbps provisioning)",
		Headers: []string{"unit", "LUTs", "registers", "fmax (MHz)", "Gbps/unit", "units for 10G", "LUTs total"},
	}
	dev := fpga.Virtex7VC707()
	units := []ndp.Unit{ndp.MD5{}, ndp.SHA1{}, ndp.SHA256{}, &ndp.AES256{}, ndp.CRC32{}, ndp.GZIP{}}
	for _, u := range units {
		per := u.PerUnitUsage()
		n := ndp.UnitsFor(u, ndp.TargetBps)
		t.AddRow(u.Name(),
			fmt.Sprintf("%d (%.2f%%)", per.LUTs, 100*float64(per.LUTs)/float64(dev.LUTs)),
			fmt.Sprintf("%d", per.Registers),
			fmt.Sprintf("%.0f", per.EffectiveClockMHz()),
			fmt.Sprintf("%.2f", u.UnitThroughputBps()/1e9),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", per.LUTs*n))
	}
	t.Render(w)
}

// Table4 renders the HDC Engine's FPGA utilization from a freshly
// built engine (base controllers; NDP headroom reported separately).
func Table4(w io.Writer) {
	budget := fpga.NewBudget(fpga.Virtex7VC707())
	for _, u := range fpga.ControllersUsage() {
		budget.MustClaim(u)
	}
	luts, regs, brams, power := budget.Totals()
	dev := budget.Device()
	t := report.Table{
		Title:   "Table IV: HDC Engine device controllers on Virtex-7",
		Headers: []string{"resource", "used", "available", "utilization"},
	}
	t.AddRow("LUTs", fmt.Sprintf("%d", luts), fmt.Sprintf("%d", dev.LUTs),
		fmt.Sprintf("%.0f%%", 100*float64(luts)/float64(dev.LUTs)))
	t.AddRow("Registers", fmt.Sprintf("%d", regs), fmt.Sprintf("%d", dev.Registers),
		fmt.Sprintf("%.0f%%", 100*float64(regs)/float64(dev.Registers)))
	t.AddRow("BRAMs", fmt.Sprintf("%d", brams), fmt.Sprintf("%d", dev.BRAMs),
		fmt.Sprintf("%.0f%%", 100*float64(brams)/float64(dev.BRAMs)))
	t.AddRow("Power", fmt.Sprintf("%.2f W", power), "-", "-")
	t.Render(w)

	// Per-component detail plus NDP headroom check.
	d := report.Table{Title: "HDC Engine component detail", Headers: []string{"component", "LUTs", "registers", "BRAMs"}}
	for _, u := range budget.Components() {
		d.AddRow(u.Component, fmt.Sprintf("%d", u.LUTs), fmt.Sprintf("%d", u.Registers), fmt.Sprintf("%d", u.BRAMs))
	}
	d.Render(w)
}

// Figure2Timeline runs the SSD→GPU→NIC task on the optimized software
// stack with tracing on and returns the device-control timeline.
func Figure2Timeline() []core.TimelineEvent {
	env := sim.NewEnv()
	cl := core.NewCluster(env, core.SWOpt, core.DefaultParams())
	content := make([]byte, MicrobenchSize)
	f, _ := cl.Server.StageFile("obj", content)
	conn := cl.OpenConn(true)
	cl.Server.StartTrace()
	env.Spawn("server", func(p *sim.Proc) {
		cl.Server.SendFileOp(p, f, 0, MicrobenchSize, conn.ID, core.ProcMD5)
	})
	env.Spawn("client", func(p *sim.Proc) { cl.ClientRecv(p, conn, MicrobenchSize) })
	env.Run(-1)
	return cl.Server.StopTrace()
}

// RenderTimeline prints a Figure 2-style lane chart.
func RenderTimeline(w io.Writer, events []core.TimelineEvent) {
	fmt.Fprintln(w, "Figure 2: software device-control timeline (SSD->GPU(MD5)->NIC, 4 KB)")
	fmt.Fprintln(w, "===========================================================")
	for _, e := range events {
		fmt.Fprintf(w, "  %10v  %-7s  %s\n", e.At, e.Where, e.What)
	}
	fmt.Fprintln(w)
}

// HeadlineSummary aggregates the paper's headline claims against the
// testbed's measurements.
type HeadlineSummary struct {
	Fig11aReduction float64 // paper: 0.42
	Fig11bReduction float64 // paper: 0.72
	SwiftCPUSaving  float64 // paper: 0.52
	SwiftGain       float64 // paper: 1.95
	HDFSGain        float64 // paper: 2.06
}

// Headlines computes the summary from already-run experiments.
func Headlines(a, b Figure11, f12 Figure12, f13 Figure13) HeadlineSummary {
	return HeadlineSummary{
		Fig11aReduction: a.Reduction,
		Fig11bReduction: b.Reduction,
		SwiftCPUSaving:  f12.CPUReduction,
		SwiftGain:       f13.SwiftGain,
		HDFSGain:        f13.HDFSGain,
	}
}

// Render writes the paper-vs-measured table.
func (h HeadlineSummary) Render(w io.Writer) {
	t := report.Table{
		Title:   "Headline results: paper vs. this reproduction",
		Headers: []string{"claim", "paper", "measured"},
	}
	t.AddRow("D2D latency reduction (no NDP)", "42%", report.Pct(h.Fig11aReduction))
	t.AddRow("D2D latency reduction (with NDP)", "72%", report.Pct(h.Fig11bReduction))
	t.AddRow("Swift CPU-utilization reduction", "52%", report.Pct(h.SwiftCPUSaving))
	t.AddRow("Swift iso-CPU throughput gain", "1.95x", fmt.Sprintf("%.2fx", h.SwiftGain))
	t.AddRow("HDFS iso-CPU throughput gain", "2.06x", fmt.Sprintf("%.2fx", h.HDFSGain))
	t.Render(w)
}

// engineForInspection builds a full DCS engine so harness code can
// report live counters (unused fabric warnings silenced by use).
var _ = hdc.FnMD5

// AllNDPUnits returns one instance of each NDP unit type.
func AllNDPUnits() []ndp.Unit {
	return []ndp.Unit{ndp.MD5{}, ndp.SHA1{}, ndp.SHA256{}, &ndp.AES256{Key: [32]byte{7}}, ndp.CRC32{}, ndp.GZIP{}}
}

// EngineResourceTotals rebuilds the base design and returns its LUT
// and BRAM totals (Table IV).
func EngineResourceTotals() (luts, brams int) {
	budget := fpga.NewBudget(fpga.Virtex7VC707())
	for _, u := range fpga.ControllersUsage() {
		budget.MustClaim(u)
	}
	l, _, br, _ := budget.Totals()
	return l, br
}
