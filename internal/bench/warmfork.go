package bench

import (
	"fmt"
	"io"
	"time"

	"dcsctrl/internal/apps"
	"dcsctrl/internal/core"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Warm-fork experiment grids (DESIGN.md §17). An experiment grid
// re-simulates the same warm-up phase for every (config, seed) cell
// even though the warm phase is cell-invariant: arrival seeds only
// matter inside the measured window. Warm-forking runs the warm phase
// once per configuration, checkpoints the quiescent cluster, and
// forks every measured cell from the shared snapshot — the snapshot
// is a read-only byte slice, so cells restore in parallel. The grid
// verifies, per cell, that the forked continuation's fingerprint is
// byte-identical to a straight-through run of warm + measured in one
// process.

// WarmForkConfig parameterizes one warm-fork grid.
type WarmForkConfig struct {
	Kind    core.Config
	Seeds   []uint64 // one measured cell per seed
	Profile string   // fault profile name ("", "none", "light", "heavy")

	WarmDuration sim.Time // warm-phase load window (checkpointed after drain)
	Duration     sim.Time // measured window per cell
	Conns        int      // connection pairs (0: DefaultSwiftConfig's)

	Workers int // parallel cell workers (0: serial)
}

// DefaultWarmForkConfig returns the CI grid: a DCS-ctrl server, six
// seeds, a warm phase eight times the measured window. That ratio is
// the regime experiment grids actually run in — load the system to
// steady state once, then measure many short windows — and the regime
// where forking pays: the straight side re-simulates the warm phase
// per cell, the forked side pays one warm + save plus a per-cell
// restore that costs a fraction of the warm.
func DefaultWarmForkConfig() WarmForkConfig {
	return WarmForkConfig{
		Kind:         core.DCSCtrl,
		Seeds:        []uint64{1, 2, 3, 4, 5, 6},
		WarmDuration: 24 * sim.Millisecond,
		Duration:     2 * sim.Millisecond,
	}
}

// WarmForkCell is one (seed) cell's verdict.
type WarmForkCell struct {
	Seed       uint64 `json:"seed"`
	StraightFP string `json:"straight_fp"`
	ForkedFP   string `json:"forked_fp"`
	Match      bool   `json:"match"`
	Requests   int    `json:"requests"`
	StraightMs float64 `json:"straight_ms"`
	ForkedMs   float64 `json:"forked_ms"`
	RestoreNs  int64   `json:"restore_ns"`
}

// WarmForkResult is one grid's outcome.
type WarmForkResult struct {
	Config        string         `json:"config"`
	Profile       string         `json:"profile"`
	Cells         []WarmForkCell `json:"cells"`
	SnapshotBytes int            `json:"snapshot_bytes"`
	SnapshotHash  string         `json:"snapshot_hash"`
	SaveNs        int64          `json:"save_ns"`
	WarmMs        float64        `json:"warm_ms"`
	StraightMs    float64        `json:"straight_ms"`
	ForkedMs      float64        `json:"forked_ms"`
	Speedup       float64        `json:"speedup"`
	AllMatch      bool           `json:"all_match"`
}

// swiftCfgFor builds the grid's workload configuration.
func (c WarmForkConfig) swiftCfg() apps.SwiftConfig {
	scfg := apps.DefaultSwiftConfig()
	if c.Conns > 0 {
		scfg.Conns = c.Conns
	}
	scfg.Warmup = 0 // phases measure from their own start
	scfg.Duration = c.Duration
	return scfg
}

// buildCell constructs a settled, prepared cluster for the grid.
func (c WarmForkConfig) buildCell() (*sim.Env, *core.Cluster, *apps.SwiftSession, error) {
	env := sim.NewEnv()
	params := core.DefaultParams()
	if c.Profile != "" && c.Profile != "none" {
		profile, ok := fault.ProfileByName(c.Profile)
		if !ok {
			return nil, nil, nil, fmt.Errorf("bench: unknown fault profile %q", c.Profile)
		}
		params.Faults = fault.NewInjector(faultMatrixSeed, profile)
	}
	cl := core.NewCluster(env, c.Kind, params)
	sess, err := apps.PrepareSwift(env, cl, c.swiftCfg())
	if err != nil {
		return nil, nil, nil, err
	}
	env.Run(-1) // settle setup-time events to quiescence
	return env, cl, sess, nil
}

// cellFingerprint digests everything a forked continuation must
// reproduce byte-for-byte: the kernel's schedule counters (parks and
// handoffs excluded — goroutine mechanics, not schedule) and the
// workload's observable results.
func cellFingerprint(env *sim.Env, res apps.SwiftResult) string {
	st := env.Stats()
	return snap.ContentHash([]byte(fmt.Sprintf(
		"now=%d events=%d fused=%d ios=%d segs=%d segframes=%d req=%d gets=%d puts=%d bytes=%d errs=%d getlat=%.3f putlat=%.3f elapsed=%d",
		env.Now(), st.Events, st.Fused, st.IOs, st.Segments, st.SegFrames,
		res.Requests, res.GETs, res.PUTs, res.Bytes, res.Errors,
		res.GETLatency.Sum(), res.PUTLatency.Sum(), res.Elapsed)))
}

// warmSeed is the seed of the shared warm phase; it is deliberately
// constant so the checkpoint does not depend on the cell seed.
const warmSeed = 7

// RunWarmForkGrid executes the grid both ways — straight-through and
// warm-forked — and verifies fingerprint equivalence per cell.
func RunWarmForkGrid(cfg WarmForkConfig) (WarmForkResult, error) {
	out := WarmForkResult{Config: cfg.Kind.String(), Profile: cfg.Profile, AllMatch: true}
	if out.Profile == "" {
		out.Profile = "none"
	}

	// Warm once, checkpoint the quiescent cluster.
	warmStart := time.Now()
	_, cl, sess, err := cfg.buildCell()
	if err != nil {
		return out, err
	}
	if _, err := sess.RunPhaseSeed(0, cfg.WarmDuration, warmSeed); err != nil {
		return out, err
	}
	out.WarmMs = float64(time.Since(warmStart).Nanoseconds()) / 1e6
	saveStart := time.Now()
	ckpt, err := cl.Snapshot()
	if err != nil {
		return out, err
	}
	out.SaveNs = time.Since(saveStart).Nanoseconds()
	out.SnapshotBytes = len(ckpt)
	out.SnapshotHash = snap.ContentHash(ckpt)

	// Straight-through reference cells: warm + measured in one process.
	out.Cells = make([]WarmForkCell, len(cfg.Seeds))
	ParallelFor(len(cfg.Seeds), cfg.Workers, func(i int) {
		cell := &out.Cells[i]
		cell.Seed = cfg.Seeds[i]
		start := time.Now()
		env, _, s, err := cfg.buildCell()
		if err != nil {
			panic(err)
		}
		if _, err := s.RunPhaseSeed(0, cfg.WarmDuration, warmSeed); err != nil {
			panic(err)
		}
		res, err := s.RunPhaseSeed(0, cfg.Duration, cell.Seed)
		if err != nil {
			panic(err)
		}
		cell.StraightFP = cellFingerprint(env, res)
		cell.Requests = res.Requests
		cell.StraightMs = float64(time.Since(start).Nanoseconds()) / 1e6
	})

	// Forked cells: fresh cluster, restore the shared snapshot, run
	// only the measured window. The snapshot bytes are shared read-only
	// across workers.
	ParallelFor(len(cfg.Seeds), cfg.Workers, func(i int) {
		cell := &out.Cells[i]
		start := time.Now()
		env, cl, s, err := cfg.buildCell()
		if err != nil {
			panic(err)
		}
		restoreStart := time.Now()
		if err := cl.RestoreTrusted(ckpt); err != nil {
			panic(fmt.Sprintf("bench: warm-fork restore (seed %d): %v", cell.Seed, err))
		}
		cell.RestoreNs = time.Since(restoreStart).Nanoseconds()
		s.SetPhase(1) // the warm phase ran in the checkpointed process
		res, err := s.RunPhaseSeed(0, cfg.Duration, cell.Seed)
		if err != nil {
			panic(err)
		}
		cell.ForkedFP = cellFingerprint(env, res)
		cell.ForkedMs = float64(time.Since(start).Nanoseconds()) / 1e6
		cell.Match = cell.ForkedFP == cell.StraightFP
	})

	for i := range out.Cells {
		out.StraightMs += out.Cells[i].StraightMs
		out.ForkedMs += out.Cells[i].ForkedMs
		if !out.Cells[i].Match {
			out.AllMatch = false
		}
	}
	// The fork side pays the warm phase and snapshot once, the straight
	// side once per cell; charge both honestly.
	forkedTotal := out.ForkedMs + out.WarmMs + float64(out.SaveNs)/1e6
	if forkedTotal > 0 {
		out.Speedup = out.StraightMs / forkedTotal
	}
	out.ForkedMs = forkedTotal
	return out, nil
}

// Render writes the grid outcome in the repo's report style.
func (r WarmForkResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Warm-fork grid — %s, %s faults, %d cells\n", r.Config, r.Profile, len(r.Cells))
	fmt.Fprintf(w, "  checkpoint: %d bytes, hash %s, save %.2f ms\n",
		r.SnapshotBytes, r.SnapshotHash, float64(r.SaveNs)/1e6)
	for _, c := range r.Cells {
		verdict := "MATCH"
		if !c.Match {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(w, "  seed %-3d straight %8.2f ms   forked %8.2f ms (restore %.2f ms)  %s %s\n",
			c.Seed, c.StraightMs, c.ForkedMs, float64(c.RestoreNs)/1e6, c.StraightFP, verdict)
	}
	fmt.Fprintf(w, "  straight total %.2f ms, forked total %.2f ms, speedup %.2fx, fingerprints %s\n",
		r.StraightMs, r.ForkedMs, r.Speedup, map[bool]string{true: "all match", false: "DIVERGED"}[r.AllMatch])
}
