package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/nic"
	"dcsctrl/internal/nvme"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Data-plane microbenchmarks: the per-operation mechanical cost of the
// simulator's hot paths (memory copies, DMA, NVMe reads, NIC frame
// round trips). cmd/dcsbench emits them as BENCH_dataplane.json; CI
// diffs the artifact against the checked-in baseline and fails on
// ns/op regressions or any allocation creeping onto a zero-alloc path.

// DataplaneStat is one microbenchmark measurement.
type DataplaneStat struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	BytesPerOp  int     `json:"bytes_per_op"` // payload bytes moved per op
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HeapPerOp   float64 `json:"heap_bytes_per_op"`       // allocator bytes, not payload
	EventsPerOp float64 `json:"events_per_op,omitempty"` // kernel events dispatched per op
	// SegFramesPerOp counts frames carried inside analytic flow
	// segments per op — the knob-not-dead signal for the wire fast
	// path (cmd/benchdiff fails when a baseline that collapses frames
	// stops collapsing them).
	SegFramesPerOp float64 `json:"seg_frames_per_op,omitempty"`
}

// DataplaneReport is the BENCH_dataplane.json payload.
type DataplaneReport struct {
	GoVersion  string          `json:"go_version"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Benches    []DataplaneStat `json:"benches"`
}

// noiseMallocs is the ambient-allocation floor: a few mallocs across
// an entire measured run (thousands of ops) come from the runtime
// itself (GC bookkeeping, timers), not the measured path — a path
// that truly allocates does so at least once per op, four orders of
// magnitude above this. Snapping sub-noise counts to zero keeps the
// zero-alloc baselines (and benchdiff's ALLOCS gate) stable across
// runs; the per-path ZeroAlloc tests still assert exact zeros.
const noiseMallocs = 8

// measureOps runs fn(warm) to reach steady state (pools primed, slices
// grown), then measures fn(ops) with the allocator deltas attributed
// per operation.
func measureOps(name string, bytesPerOp, warm, ops int, fn func(n int)) DataplaneStat {
	fn(warm)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn(ops)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	heap := after.TotalAlloc - before.TotalAlloc
	if mallocs <= noiseMallocs {
		mallocs, heap = 0, 0
	}
	return DataplaneStat{
		Name:        name,
		Ops:         ops,
		BytesPerOp:  bytesPerOp,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(mallocs) / float64(ops),
		HeapPerOp:   float64(heap) / float64(ops),
	}
}

// measureSimOps is measureOps for simulator-backed benches: it also
// attributes the kernel's dispatched-event delta per operation, the
// protocol-efficiency number the batching work optimizes.
func measureSimOps(env *sim.Env, name string, bytesPerOp, warm, ops int, fn func(n int)) DataplaneStat {
	fn(warm)
	before := env.Stats()
	st := measureOps(name, bytesPerOp, 0, ops, fn)
	after := env.Stats()
	st.EventsPerOp = float64(after.Events-before.Events) / float64(ops)
	st.SegFramesPerOp = float64(after.SegFrames-before.SegFrames) / float64(ops)
	return st
}

// simRunner couples a work queue to a driver process so the measured
// window covers only steady-state operations: the process, queue, and
// every device pool are primed during warmup.
func simRunner(env *sim.Env, op func(p *sim.Proc, i int)) func(n int) {
	work := sim.NewQueue[int](env, "bench-work")
	env.Spawn("bench-driver", func(p *sim.Proc) {
		for {
			n := work.Get(p)
			for i := 0; i < n; i++ {
				op(p, i)
			}
		}
	})
	return func(n int) {
		work.Put(n)
		env.Run(-1)
	}
}

const dpPage = 4096

// benchMemCopy measures Map.Copy on the same-map fast path (4 KiB).
func benchMemCopy() DataplaneStat {
	mm := mem.NewMap()
	r := mm.AddRegion("dram", mem.HostDRAM, 1<<20, true)
	src := r.Base
	dst := r.Base + 512<<10
	mm.Write(src, make([]byte, dpPage))
	return measureOps("mem_copy_same_map_4k", dpPage, 1000, 200000, func(n int) {
		for i := 0; i < n; i++ {
			mm.Copy(dst, src, dpPage)
		}
	})
}

// benchReadInto measures Map.ReadInto (4 KiB into a caller buffer).
func benchReadInto() DataplaneStat {
	mm := mem.NewMap()
	r := mm.AddRegion("dram", mem.HostDRAM, 1<<20, true)
	buf := make([]byte, dpPage)
	return measureOps("mem_read_into_4k", dpPage, 1000, 200000, func(n int) {
		for i := 0; i < n; i++ {
			mm.ReadInto(r.Base, buf)
		}
	})
}

// benchDMA measures a synchronous 4 KiB fabric DMA between two host
// regions (setup + payload model, simulated latency dispatched for
// real).
func benchDMA() DataplaneStat {
	env := sim.NewEnv()
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	port := fab.AddPort("root")
	a := mm.AddRegion("a", mem.HostDRAM, 1<<20, true)
	b := mm.AddRegion("b", mem.HostDRAM, 1<<20, true)
	fab.Attach(port, a)
	fab.Attach(port, b)
	run := simRunner(env, func(p *sim.Proc, i int) {
		fab.MustDMA(p, port, b.Base, a.Base, dpPage)
	})
	return measureSimOps(env, "pcie_dma_4k", dpPage, 500, 20000, run)
}

// benchDMAVec measures a vectored gather DMA: 8 scattered 512 B
// extents into one contiguous 4 KiB buffer — the shape of the HDC
// Engine's packet-gather and PRP-list transfers.
func benchDMAVec() DataplaneStat {
	env := sim.NewEnv()
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	port := fab.AddPort("root")
	a := mm.AddRegion("a", mem.HostDRAM, 1<<20, true)
	b := mm.AddRegion("b", mem.HostDRAM, 1<<20, true)
	fab.Attach(port, a)
	fab.Attach(port, b)
	exts := make([]mem.Extent, 8)
	for i := range exts {
		exts[i] = mem.Extent{Addr: a.Base + mem.Addr(i*8192), Len: 512}
	}
	run := simRunner(env, func(p *sim.Proc, i int) {
		fab.MustDMAVec(p, port, b.Base, exts, true)
	})
	return measureSimOps(env, "hdc_gather_8x512", dpPage, 500, 20000, run)
}

// nvmeBench wires one SSD to a driver-style ring, mirroring the model
// used by both the host kernel path and the HDC NVMe controller.
type nvmeBench struct {
	env  *sim.Env
	ring *nvme.Ring
	kick *sim.Cond
	cb   func(nvme.Completion) // bound once; a per-Submit method value would allocate
	done int
}

func (b *nvmeBench) onCpl(cpl nvme.Completion) {
	if cpl.Status != nvme.StatusSuccess {
		panic("bench: nvme read failed")
	}
	b.done++
	b.kick.Broadcast()
}

// benchNVMeRead measures one 4 KiB (single-block) read end to end:
// SQE encode, doorbell, device fetch/decode/flash/DMA, CQE decode,
// callback dispatch.
func benchNVMeRead() DataplaneStat {
	env := sim.NewEnv()
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	port := fab.AddPort("root")
	dram := mm.AddRegion("dram", mem.HostDRAM, 1<<20, true)
	fab.Attach(port, dram)
	ssd := nvme.NewSSD(env, fab, "nvme0", nvme.DefaultParams())
	const entries = 64
	sq := mm.AddRegion("sq", mem.HostDRAM, entries*nvme.CommandSize, true)
	cq := mm.AddRegion("cq", mem.HostDRAM, entries*nvme.CompletionSize, true)
	fab.Attach(port, sq)
	fab.Attach(port, cq)
	sqdb, cqdb := ssd.DoorbellAddrs(1)
	cfg := nvme.RingConfig{QID: 1, Entries: entries, SQ: sq, CQ: cq, SQDoorbell: sqdb, CQDoorbell: cqdb}
	ring := nvme.NewRing(fab, cfg)
	cq.SetWriteHook(func(off uint64, n int) { ring.ProcessCompletions() })
	ssd.CreateQueuePair(cfg, -1)
	ssd.Preload(0, make([]byte, nvme.BlockSize))

	b := &nvmeBench{env: env, ring: ring, kick: sim.NewCond(env)}
	b.cb = b.onCpl
	cmd := nvme.Command{Opcode: nvme.OpRead, NSID: 1, PRP1: dram.Base, SLBA: 0, NLB: 0}
	run := simRunner(env, func(p *sim.Proc, i int) {
		want := b.done + 1
		if _, err := b.ring.Submit(cmd, b.cb); err != nil {
			panic(err)
		}
		b.ring.RingDoorbell()
		for b.done < want {
			b.kick.Wait(p)
		}
	})
	return measureSimOps(env, "nvme_read_4k", nvme.BlockSize, 500, 10000, run)
}

// nicNode is one endpoint of the frame-echo pair: its own address
// map/fabric and a NIC with one host-driven queue.
type nicNode struct {
	mm     *mem.Map
	fab    *pcie.Fabric
	dram   *mem.Region
	status *mem.Region
	nic    *nic.NIC
	send   *nic.SendRing
	recv   *nic.RecvRing

	fills []nic.Filled
	rbds  []nic.RecvBD
}

func newNicNode(env *sim.Env, name string) *nicNode {
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	port := fab.AddPort(name + "-root")
	dram := mm.AddRegion(name+"-dram", mem.HostDRAM, 16<<20, true)
	fab.Attach(port, dram)
	// Private fabric, one initiator, and a completion-driven rig (the
	// echo driver only sends after the previous reply lands): the
	// analytic flow path including plan bookings is legal end-to-end
	// (falls back per-frame automatically under WireFrame).
	fab.SetFlowExclusive()
	fab.SetFlowReactive()
	n := nic.NewNIC(env, fab, name+"-nic", nic.DefaultParams())
	const entries = 256
	sring := mm.AddRegion(name+"-sring", mem.HostDRAM, entries*nic.SendBDSize, true)
	rring := mm.AddRegion(name+"-rring", mem.HostDRAM, entries*nic.RecvBDSize, true)
	rcpl := mm.AddRegion(name+"-rcpl", mem.HostDRAM, entries*nic.RecvCplSize, true)
	status := mm.AddRegion(name+"-status", mem.HostDRAM, 64, true)
	for _, r := range []*mem.Region{sring, rring, rcpl, status} {
		fab.Attach(port, r)
	}
	cfg := nic.QueueConfig{
		QID: 0, SendRing: sring, SendEntries: entries,
		SendStatus: status.Base,
		RecvRing:   rring, RecvEntries: entries,
		RecvCpl: rcpl, RecvStatus: status.Base + 8,
		MSIVector: -1,
	}
	n.ConfigureQueue(cfg)
	return &nicNode{
		mm: mm, fab: fab, dram: dram, status: status, nic: n,
		send: nic.NewSendRing(fab, n, cfg),
		recv: nic.NewRecvRing(fab, n, cfg),
	}
}

// postBufs posts count 2 KiB receive buffers carved from addr.
func (n *nicNode) postBufs(addr mem.Addr, count int) {
	bds := n.rbds[:0]
	for i := 0; i < count; i++ {
		bds = append(bds, nic.RecvBD{Addr: addr + mem.Addr(i*2048), Len: 2048})
	}
	n.rbds = bds
	if err := n.recv.Post(bds); err != nil {
		panic(err)
	}
	n.recv.RingDoorbell()
}

// benchNICEcho measures a full frame round trip: node A pushes a
// one-frame send chain, the frame crosses the wire, node B's receive
// completion (write hook) reposts the buffer and fires B's pre-staged
// reply, and the measured op completes when A sees the reply land.
func benchNICEcho() DataplaneStat {
	env := sim.NewEnv()
	a := newNicNode(env, "a")
	b := newNicNode(env, "b")
	nic.Connect(a.nic, b.nic)
	flow := ether.Flow{
		SrcMAC: ether.MAC{2, 0, 0, 0, 0, 1}, DstMAC: ether.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: ether.IP{10, 0, 0, 1}, DstIP: ether.IP{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 80,
	}
	const payLen = 1024

	// Static frame contents: header template + payload staged once per
	// node; sequence numbers are not advanced (the raw NIC does not
	// check them) so every op transmits identical bytes.
	stage := func(n *nicNode, fl ether.Flow) (hdrAddr, payAddr mem.Addr) {
		hdr := ether.HeaderTemplate(fl, 0, ether.FlagACK|ether.FlagPSH)
		hdrAddr = n.dram.Alloc(uint64(len(hdr)), 64)
		n.mm.Write(hdrAddr, hdr)
		payAddr = n.dram.Alloc(payLen, 64)
		n.mm.Write(payAddr, make([]byte, payLen))
		return
	}
	aHdr, aPay := stage(a, flow)
	bHdr, bPay := stage(b, flow.Reverse())
	aBufs := a.dram.Alloc(64*2048, 4096)
	bBufs := b.dram.Alloc(64*2048, 4096)
	a.postBufs(aBufs, 64)
	b.postBufs(bBufs, 64)

	sendFrame := func(n *nicNode, hdrAddr, payAddr mem.Addr) {
		bds := [...]nic.SendBD{
			{Addr: hdrAddr, Len: ether.HeadersLen},
			{Addr: payAddr, Len: payLen, Flags: nic.SendFlagEnd},
		}
		if err := n.send.Push(bds[:]); err != nil {
			panic(err)
		}
		n.send.RingDoorbell()
	}

	echoed := 0
	kick := sim.NewCond(env)
	// B: every received frame triggers the pre-staged reply and a
	// buffer repost (runs from B's completion write hook).
	b.status.SetWriteHook(func(off uint64, n int) {
		b.fills = b.recv.AppendPoll(b.fills[:0])
		for range b.fills {
			sendFrame(b, bHdr, bPay)
		}
		if len(b.fills) > 0 {
			b.postBufs(bBufs, len(b.fills))
		}
	})
	// A: count replies and wake the driver.
	a.status.SetWriteHook(func(off uint64, n int) {
		a.fills = a.recv.AppendPoll(a.fills[:0])
		if len(a.fills) == 0 {
			return
		}
		echoed += len(a.fills)
		a.postBufs(aBufs, len(a.fills))
		kick.Broadcast()
	})

	run := simRunner(env, func(p *sim.Proc, i int) {
		want := echoed + 1
		sendFrame(a, aHdr, aPay)
		for echoed < want {
			kick.Wait(p)
		}
	})
	return measureSimOps(env, "nic_frame_echo", 2*(ether.HeadersLen+payLen), 500, 10000, run)
}

// benchNICBulkStream measures one 64 KiB LSO job delivered end to end:
// node A posts a two-BD LSO chain, the NIC segments it into 45 frames,
// the flow fast path collapses the steady-state run into analytic
// claims, and the op completes when B's completion hook has seen every
// frame of the job. Completion-driven like the echo, so the reactive
// analytic rig stays legal; the per-frame fidelity cost of the same
// job is the events_per_op baseline this bench exists to guard.
func benchNICBulkStream() DataplaneStat {
	env := sim.NewEnv()
	a := newNicNode(env, "a")
	b := newNicNode(env, "b")
	nic.Connect(a.nic, b.nic)
	flow := ether.Flow{
		SrcMAC: ether.MAC{2, 0, 0, 0, 0, 1}, DstMAC: ether.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: ether.IP{10, 0, 0, 1}, DstIP: ether.IP{10, 0, 0, 2},
		SrcPort: 5001, DstPort: 80,
	}
	const jobLen = 64 << 10
	frames := (jobLen + ether.MSS - 1) / ether.MSS

	hdr := ether.HeaderTemplate(flow, 0, ether.FlagACK|ether.FlagPSH)
	hdrAddr := a.dram.Alloc(uint64(len(hdr)), 64)
	a.mm.Write(hdrAddr, hdr)
	payAddr := a.dram.Alloc(jobLen, 4096)
	a.mm.Write(payAddr, make([]byte, jobLen))
	bBufs := b.dram.Alloc(128*2048, 4096)
	b.postBufs(bBufs, 128)

	got := 0
	kick := sim.NewCond(env)
	b.status.SetWriteHook(func(off uint64, n int) {
		b.fills = b.recv.AppendPoll(b.fills[:0])
		if len(b.fills) == 0 {
			return
		}
		got += len(b.fills)
		b.postBufs(bBufs, len(b.fills))
		kick.Broadcast()
	})

	run := simRunner(env, func(p *sim.Proc, i int) {
		want := got + frames
		// SendBD.Len is 16-bit: the 64 KiB payload rides as two 32 KiB
		// descriptors, the same split the host kernel's LSO path uses.
		bds := [...]nic.SendBD{
			{Addr: hdrAddr, Len: ether.HeadersLen, Flags: nic.SendFlagLSO, MSS: ether.MSS},
			{Addr: payAddr, Len: 32 << 10},
			{Addr: payAddr + 32<<10, Len: 32 << 10, Flags: nic.SendFlagEnd},
		}
		if err := a.send.Push(bds[:]); err != nil {
			panic(err)
		}
		a.send.RingDoorbell()
		for got < want {
			kick.Wait(p)
		}
	})
	return measureSimOps(env, "nic_bulk_stream_64k", jobLen, 100, 2000, run)
}

// NewDataplaneReport runs all data-plane microbenchmarks.
func NewDataplaneReport() *DataplaneReport {
	return &DataplaneReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benches: []DataplaneStat{
			benchMemCopy(),
			benchReadInto(),
			benchDMA(),
			benchDMAVec(),
			benchNVMeRead(),
			benchNICEcho(),
			benchNICBulkStream(),
		},
	}
}

// WriteJSON writes the report to path.
func (r *DataplaneReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
