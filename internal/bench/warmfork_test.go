package bench

import (
	"fmt"
	"testing"

	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
)

// TestWarmForkEquivalenceMatrix is the fork-vs-straight determinism
// matrix: every (server design, fault profile, seed) cell must
// produce a byte-identical fingerprint whether the measured phase
// continues from an in-process warm phase or from a restored
// checkpoint of that warm phase. Engine-fail profiles are excluded by
// design: a dead command parser cannot be checkpointed (SnapSave
// rejects it), so such runs always go straight through.
func TestWarmForkEquivalenceMatrix(t *testing.T) {
	kinds := []core.Config{core.DCSCtrl, core.SWOpt}
	profiles := []string{"none", "light", "heavy"}
	if testing.Short() {
		kinds = kinds[:1]
		profiles = profiles[:2]
	}
	for _, kind := range kinds {
		for _, profile := range profiles {
			kind, profile := kind, profile
			t.Run(fmt.Sprintf("%s/%s", kind, profile), func(t *testing.T) {
				t.Parallel()
				cfg := WarmForkConfig{
					Kind:         kind,
					Seeds:        []uint64{1, 99},
					Profile:      profile,
					WarmDuration: 3 * sim.Millisecond,
					Duration:     2 * sim.Millisecond,
					Conns:        4,
					Workers:      2,
				}
				res, err := RunWarmForkGrid(cfg)
				if err != nil {
					t.Fatalf("grid: %v", err)
				}
				if res.SnapshotBytes == 0 {
					t.Fatalf("empty snapshot")
				}
				total := 0
				for _, c := range res.Cells {
					total += c.Requests
					if !c.Match {
						t.Errorf("seed %d: fingerprint diverged: straight %s forked %s",
							c.Seed, c.StraightFP, c.ForkedFP)
					}
				}
				// Individual cells may legitimately complete zero
				// requests inside the short measured window; the grid
				// as a whole must not be trivially idle.
				if total == 0 {
					t.Errorf("no requests measured across any cell")
				}
			})
		}
	}
}

// TestWarmForkSnapshotDeterminism re-warms the same configuration
// twice and demands byte-identical checkpoints — the property CI's
// golden-artifact gate rests on.
func TestWarmForkSnapshotDeterminism(t *testing.T) {
	cfg := DefaultWarmForkConfig()
	cfg.WarmDuration = 3 * sim.Millisecond
	cfg.Conns = 4
	var snaps [][]byte
	for i := 0; i < 2; i++ {
		_, cl, sess, err := cfg.buildCell()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.RunPhaseSeed(0, cfg.WarmDuration, warmSeed); err != nil {
			t.Fatal(err)
		}
		ckpt, err := cl.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, ckpt)
	}
	if len(snaps[0]) != len(snaps[1]) {
		t.Fatalf("re-warmed snapshot sizes differ: %d vs %d", len(snaps[0]), len(snaps[1]))
	}
	for i := range snaps[0] {
		if snaps[0][i] != snaps[1][i] {
			t.Fatalf("re-warmed snapshots differ at byte %d", i)
		}
	}
}
