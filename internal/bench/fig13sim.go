package bench

import (
	"fmt"
	"io"

	"dcsctrl/internal/core"
	"dcsctrl/internal/hdc"
	"dcsctrl/internal/report"
	"dcsctrl/internal/sim"
)

// Figure13Sim validates the paper's Figure 13 projection by direct
// simulation instead of extrapolation: a 40-Gbps NIC, six SSDs, and
// one 6-core CPU per node, saturated with concurrent object streams
// (GET with MD5 integrity). Two fabric variants are measured:
//
//   - the paper's own PCIe Gen2 switch, where DCS-ctrl turns out to be
//     *fabric-bound* (every payload byte crosses the engine port twice)
//     — a real deployment consideration the projection glosses over;
//   - a Gen3 x16 fabric, where DCS-ctrl approaches the wire while the
//     software design stays CPU-bound, reproducing the projected ~2x.
type Figure13Sim struct {
	// Gbps[fabric][config] is delivered saturation throughput.
	Gbps map[string]map[core.Config]float64
	// Gains per fabric: DCS-ctrl over SW-ctrl P2P.
	Gains map[string]float64
}

// Fig13SimParams returns the scaled-up node parameters (Gen2 fabric).
func Fig13SimParams() core.Params {
	params := core.DefaultParams()
	params.NumSSDs = 6
	params.NIC.WireBps = 40e9
	params.HostNICQueues = 4
	params.HDC.NDPTargetBps = 40e9
	// Provision only the units the workload needs: a 40-Gbps MD5 bank
	// is 42 instances, and the full Table III set at 40 Gbps would no
	// longer fit the Virtex-7 — the flexibility/provisioning trade the
	// paper's resource tables are about.
	params.NDPFuncs = []uint8{hdc.FnMD5, hdc.FnCRC32}
	// Peak in-flight staging grows with the concurrent stream count
	// (32 × 256 KB streams, double-buffered).
	params.HostArenaBytes = 256 << 20
	params.GPU.VRAMBytes = 128 << 20
	// Scale the engine: deeper command queue and scoreboard, more NIC
	// queue pairs (like host RSS), more DDR3 buffering.
	params.HDC.CmdQueueEntries = 128
	params.HDC.ScoreboardEntries = 256
	params.HDC.NICEntries = 1024
	params.HDC.DDR3Bytes = 192 << 20
	params.HDC.ChunkCount = 1024
	params.HDC.RecvBufs = 32768
	params.HDC.Window = 8
	params.EngineNICQueues = 4
	return params
}

// fig13Fabrics lists the measured fabric variants.
var fig13Fabrics = []struct {
	name string
	mod  func(*core.Params)
}{
	{"pcie-gen2 (paper's switch)", func(p *core.Params) {}},
	{"pcie-gen3 x16", func(p *core.Params) {
		p.PCIe.LinkBps = 126e9
		p.PCIe.CoreBps = 512e9
	}},
}

// fig13Stream measures saturation throughput: k concurrent 256 KB GET
// streams with MD5, repeated so the pipeline reaches steady state.
func fig13Stream(kind core.Config, params core.Params) float64 {
	env := sim.NewEnv()
	cl := core.NewCluster(env, kind, params)
	const size = 256 << 10
	const k = 32
	const rounds = 6
	done := 0
	for i := 0; i < k; i++ {
		conn := cl.OpenConn(true)
		f, err := cl.Server.StageFile(fmt.Sprintf("f%d", i), make([]byte, size))
		if err != nil {
			panic(err)
		}
		ff, cn := f, conn
		env.Spawn("stream", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				if _, err := cl.Server.SendFileOp(p, ff, 0, size, cn.ID, core.ProcMD5); err != nil {
					panic(err)
				}
				done++
			}
		})
		env.Spawn("sink", func(p *sim.Proc) { cl.ClientRecv(p, cn, rounds*size) })
	}
	end := env.Run(-1)
	return float64(done*size) * 8 / end.Seconds() / 1e9
}

// RunFigure13Sim executes the saturation measurement.
func RunFigure13Sim() Figure13Sim {
	return RunFigure13SimParallel(1)
}

// RunFigure13SimParallel fans the fabric×config saturation cells
// across up to workers goroutines.
func RunFigure13SimParallel(workers int) Figure13Sim {
	out := Figure13Sim{
		Gbps:  map[string]map[core.Config]float64{},
		Gains: map[string]float64{},
	}
	configs := []core.Config{core.SWP2P, core.DCSCtrl}
	gbps := make([]float64, len(fig13Fabrics)*len(configs))
	ParallelFor(len(gbps), workers, func(i int) {
		fab := fig13Fabrics[i/len(configs)]
		params := Fig13SimParams()
		fab.mod(&params)
		gbps[i] = fig13Stream(configs[i%len(configs)], params)
	})
	for fi, fab := range fig13Fabrics {
		row := map[core.Config]float64{}
		for ci, k := range configs {
			row[k] = gbps[fi*len(configs)+ci]
		}
		out.Gbps[fab.name] = row
		if row[core.SWP2P] > 0 {
			out.Gains[fab.name] = row[core.DCSCtrl] / row[core.SWP2P]
		}
	}
	return out
}

// Render writes the measured-saturation table.
func (f Figure13Sim) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 13 (validated by simulation): GET saturation at 40 GbE, 6 SSDs, 6 cores",
		Headers: []string{"fabric", "sw-p2p Gbps", "dcs-ctrl Gbps", "gain"},
	}
	for _, fab := range fig13Fabrics {
		row := f.Gbps[fab.name]
		t.AddRow(fab.name,
			fmt.Sprintf("%.1f", row[core.SWP2P]),
			fmt.Sprintf("%.1f", row[core.DCSCtrl]),
			fmt.Sprintf("%.2fx", f.Gains[fab.name]))
	}
	t.Render(w)
	fmt.Fprintln(w, "  On the paper's Gen2 switch DCS-ctrl is fabric-bound (each byte")
	fmt.Fprintln(w, "  crosses the engine port twice); with a Gen3 fabric it approaches")
	fmt.Fprintln(w, "  the wire while the software design stays CPU-bound — the measured")
	fmt.Fprintln(w, "  counterpart of the paper's ~1.95x projection.")
	fmt.Fprintln(w)
}
