// Package bench regenerates every table and figure of the paper's
// evaluation (§V) on the simulated testbed. Each experiment returns
// structured results plus a Render method; cmd/dcsbench prints them
// and the repository's bench_test.go wraps them as Go benchmarks.
package bench

import (
	"fmt"
	"io"

	"dcsctrl/internal/apps"
	"dcsctrl/internal/core"
	"dcsctrl/internal/report"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
	"dcsctrl/internal/workload"
)

// microbench runs one warm SendFileOp of n bytes and returns the
// result (the first op warms queues and caches; the second is
// reported, matching steady-state measurement practice).
func microbench(kind core.Config, n int, proc core.Processing) core.OpResult {
	env := sim.NewEnv()
	cl := core.NewCluster(env, kind, core.DefaultParams())
	content := make([]byte, n)
	for i := range content {
		content[i] = byte(i * 7)
	}
	f, err := cl.Server.StageFile("obj", content)
	if err != nil {
		panic(err)
	}
	conn := cl.OpenConn(true)
	var res core.OpResult
	env.Spawn("server", func(p *sim.Proc) {
		if _, err := cl.Server.SendFileOp(p, f, 0, n, conn.ID, proc); err != nil {
			panic(err)
		}
		res, err = cl.Server.SendFileOp(p, f, 0, n, conn.ID, proc)
		if err != nil {
			panic(err)
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		cl.ClientRecv(p, conn, 2*n)
	})
	env.Run(-1)
	return res
}

// MicrobenchSize is the per-command transfer unit of the latency
// microbenchmarks (§IV-C: 4 KB per NVMe/NIC command).
const MicrobenchSize = 4096

// Figure11 is the latency-breakdown microbenchmark result.
type Figure11 struct {
	Title     string
	Configs   []core.Config
	Results   map[core.Config]core.OpResult
	Reduction float64 // DCS-ctrl vs SW-ctrl P2P
}

// Figure11a runs the SSD→NIC microbenchmark.
func Figure11a() Figure11 {
	return Figure11aParallel(1)
}

// Figure11aParallel runs Figure 11a's config cells across workers.
func Figure11aParallel(workers int) Figure11 {
	return figure11("Figure 11a: latency breakdown, SSD->NIC (4 KB)", core.ProcNone, workers)
}

// Figure11b runs the SSD→Processing→NIC microbenchmark (MD5).
func Figure11b() Figure11 {
	return Figure11bParallel(1)
}

// Figure11bParallel runs Figure 11b's config cells across workers.
func Figure11bParallel(workers int) Figure11 {
	return figure11("Figure 11b: latency breakdown, SSD->MD5->NIC (4 KB)", core.ProcMD5, workers)
}

func figure11(title string, proc core.Processing, workers int) Figure11 {
	f := Figure11{
		Title:   title,
		Configs: []core.Config{core.SWOpt, core.SWP2P, core.DCSCtrl},
		Results: map[core.Config]core.OpResult{},
	}
	results := make([]core.OpResult, len(f.Configs))
	ParallelFor(len(f.Configs), workers, func(i int) {
		results[i] = microbench(f.Configs[i], MicrobenchSize, proc)
	})
	for i, k := range f.Configs {
		f.Results[k] = results[i]
	}
	p2p := f.Results[core.SWP2P].Latency.Seconds()
	dcs := f.Results[core.DCSCtrl].Latency.Seconds()
	if p2p > 0 {
		f.Reduction = 1 - dcs/p2p
	}
	return f
}

// Render writes the figure as a stacked chart.
func (f Figure11) Render(w io.Writer) {
	chart := report.StackedChart{Title: f.Title, Unit: "µs"}
	for _, k := range f.Configs {
		chart.Bars = append(chart.Bars, report.BreakdownBar(k.String(), f.Results[k].Breakdown))
	}
	chart.Render(w)
	fmt.Fprintf(w, "  DCS-ctrl latency reduction vs SW-ctrl P2P: %s\n\n", report.Pct(f.Reduction))
}

// Figure3 is the software-overhead motivation experiment: latency and
// normalized CPU of the SSD→GPU(MD5)→NIC task across SW-opt,
// SW-ctrl P2P, and device integration.
type Figure3 struct {
	Configs []core.Config
	Lat     map[core.Config]core.OpResult
	CPU     map[core.Config]sim.Time // server CPU busy per op
}

// RunFigure3 executes the motivation microbenchmark.
func RunFigure3() Figure3 {
	return RunFigure3Parallel(1)
}

// RunFigure3Parallel executes the motivation microbenchmark's config
// cells across up to workers goroutines.
func RunFigure3Parallel(workers int) Figure3 {
	f := Figure3{
		Configs: []core.Config{core.SWOpt, core.SWP2P, core.DevIntegration},
		Lat:     map[core.Config]core.OpResult{},
		CPU:     map[core.Config]sim.Time{},
	}
	type cellOut struct {
		res core.OpResult
		cpu sim.Time
	}
	out := make([]cellOut, len(f.Configs))
	ParallelFor(len(f.Configs), workers, func(i int) {
		k := f.Configs[i]
		env := sim.NewEnv()
		cl := core.NewCluster(env, k, core.DefaultParams())
		content := make([]byte, MicrobenchSize)
		file, _ := cl.Server.StageFile("obj", content)
		conn := cl.OpenConn(true)
		var res core.OpResult
		env.Spawn("server", func(p *sim.Proc) {
			cl.Server.SendFileOp(p, file, 0, MicrobenchSize, conn.ID, core.ProcMD5)
			cl.Server.Host.Acct.Reset()
			res, _ = cl.Server.SendFileOp(p, file, 0, MicrobenchSize, conn.ID, core.ProcMD5)
		})
		env.Spawn("client", func(p *sim.Proc) { cl.ClientRecv(p, conn, 2*MicrobenchSize) })
		env.Run(-1)
		out[i] = cellOut{res: res, cpu: cl.Server.Host.Acct.TotalBusy()}
	})
	for i, k := range f.Configs {
		f.Lat[k] = out[i].res
		f.CPU[k] = out[i].cpu
	}
	return f
}

// Render writes both panels.
func (f Figure3) Render(w io.Writer) {
	lat := report.StackedChart{Title: "Figure 3a: software latency, SSD->GPU(MD5)->NIC (4 KB)", Unit: "µs"}
	for _, k := range f.Configs {
		lat.Bars = append(lat.Bars, report.BreakdownBar(k.String(), f.Lat[k].Breakdown, trace.CatIdleWait))
	}
	lat.Render(w)
	base := f.CPU[core.SWOpt].Seconds()
	cpu := report.StackedChart{Title: "Figure 3b: normalized CPU utilization of the same task", Unit: "x (SW-opt=1)"}
	for _, k := range f.Configs {
		v := 0.0
		if base > 0 {
			v = f.CPU[k].Seconds() / base
		}
		cpu.Bars = append(cpu.Bars, report.Bar{Label: k.String(),
			Segments: []report.Segment{{Name: "cpu", Value: v}}})
	}
	cpu.Render(w)
}

// Figure8 compares kernel-side CPU utilization of the stock kernel,
// the optimized kernel, and DCS-ctrl on direct SSD→NIC transfers.
type Figure8 struct {
	Configs []core.Config
	Busy    map[core.Config]map[trace.Category]sim.Time
	Window  sim.Time
	Cores   int
}

// RunFigure8 executes the kernel-overhead comparison: a fixed batch
// of 64 KB SSD→NIC transfers per configuration.
func RunFigure8() Figure8 {
	return RunFigure8Parallel(1)
}

// RunFigure8Parallel executes the kernel-overhead comparison's config
// cells across up to workers goroutines.
func RunFigure8Parallel(workers int) Figure8 {
	f := Figure8{
		Configs: []core.Config{core.Vanilla, core.SWOpt, core.DCSCtrl},
		Busy:    map[core.Config]map[trace.Category]sim.Time{},
		Cores:   core.DefaultParams().Host.Cores,
	}
	const ops = 20
	const size = 64 << 10
	type cellOut struct {
		busy   map[trace.Category]sim.Time
		window sim.Time
	}
	out := make([]cellOut, len(f.Configs))
	ParallelFor(len(f.Configs), workers, func(i int) {
		k := f.Configs[i]
		env := sim.NewEnv()
		cl := core.NewCluster(env, k, core.DefaultParams())
		content := make([]byte, size)
		file, _ := cl.Server.StageFile("obj", content)
		conn := cl.OpenConn(true)
		env.Spawn("server", func(p *sim.Proc) {
			cl.Server.SendFileOp(p, file, 0, size, conn.ID, core.ProcNone)
			cl.Server.Host.Acct.Reset()
			for i := 0; i < ops; i++ {
				cl.Server.SendFileOp(p, file, 0, size, conn.ID, core.ProcNone)
			}
		})
		env.Spawn("client", func(p *sim.Proc) { cl.ClientRecv(p, conn, (ops+1)*size) })
		env.Run(-1)
		busy := map[trace.Category]sim.Time{}
		for _, cat := range cl.Server.Host.Acct.Categories() {
			if cat == trace.CatUser {
				continue // kernel-side only, as in the figure
			}
			busy[cat] = cl.Server.Host.Acct.Busy(cat)
		}
		out[i] = cellOut{busy: busy, window: cl.Server.Host.Acct.Window()}
	})
	for i, k := range f.Configs {
		f.Busy[k] = out[i].busy
		if out[i].window > f.Window {
			f.Window = out[i].window
		}
	}
	return f
}

// Render writes the kernel-CPU chart.
func (f Figure8) Render(w io.Writer) {
	chart := report.StackedChart{Title: "Figure 8: kernel-side CPU utilization, direct SSD->NIC", Unit: "% of all cores"}
	for _, k := range f.Configs {
		chart.Bars = append(chart.Bars, report.BusyBar(k.String(), f.Busy[k], f.Window, f.Cores))
	}
	chart.Render(w)
}

// Figure12 is the scale-out-application CPU comparison.
type Figure12 struct {
	Swift map[core.Config]apps.SwiftResult
	HDFS  map[core.Config]apps.HDFSResult
	Cores int
	// CPUReduction is DCS-ctrl's total-CPU saving vs SW-ctrl P2P at
	// matched throughput (Swift), the paper's 52% headline.
	CPUReduction float64
}

// SwiftConfigs and HDFSConfigs list the compared designs.
var Fig12Configs = []core.Config{core.SWOpt, core.SWP2P, core.DCSCtrl}

// RunFigure12 executes both applications on every design.
func RunFigure12(swiftCfg apps.SwiftConfig, hdfsCfg apps.HDFSConfig) Figure12 {
	return RunFigure12Parallel(swiftCfg, hdfsCfg, 1)
}

// RunFigure12Parallel fans the experiment's application×config cells
// (Swift and HDFS on every design, six independent clusters) across
// up to workers goroutines.
func RunFigure12Parallel(swiftCfg apps.SwiftConfig, hdfsCfg apps.HDFSConfig, workers int) Figure12 {
	f := Figure12{
		Swift: map[core.Config]apps.SwiftResult{},
		HDFS:  map[core.Config]apps.HDFSResult{},
		Cores: core.DefaultParams().Host.Cores,
	}
	n := len(Fig12Configs)
	swiftOut := make([]apps.SwiftResult, n)
	hdfsOut := make([]apps.HDFSResult, n)
	errs := make([]error, 2*n)
	ParallelFor(2*n, workers, func(i int) {
		k := Fig12Configs[i%n]
		env := sim.NewEnv()
		if i < n {
			cl := core.NewCluster(env, k, core.DefaultParams())
			swiftOut[i], errs[i] = apps.RunSwift(env, cl, swiftCfg)
		} else {
			cl := core.NewClusterWithClient(env, k, k, core.DefaultParams())
			hdfsOut[i-n], errs[i] = apps.RunHDFS(env, cl, hdfsCfg)
		}
	})
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	for i, k := range Fig12Configs {
		f.Swift[k] = swiftOut[i]
		f.HDFS[k] = hdfsOut[i]
	}
	if p2p := f.Swift[core.SWP2P]; p2p.ServerCPU > 0 {
		f.CPUReduction = 1 - f.Swift[core.DCSCtrl].ServerCPU/p2p.ServerCPU
	}
	return f
}

// Render writes both application charts.
func (f Figure12) Render(w io.Writer) {
	sw := report.StackedChart{Title: "Figure 12a: Swift server CPU utilization (iso-load)", Unit: "% of all cores"}
	for _, k := range Fig12Configs {
		r := f.Swift[k]
		sw.Bars = append(sw.Bars, report.BusyBar(
			fmt.Sprintf("%s (%.1f Gbps)", k, r.Gbps), r.ServerBusy, r.Elapsed, f.Cores))
	}
	sw.Render(w)
	hd := report.StackedChart{Title: "Figure 12b: HDFS balancer CPU utilization (iso-bandwidth)", Unit: "% of all cores"}
	for _, k := range Fig12Configs {
		r := f.HDFS[k]
		hd.Bars = append(hd.Bars, report.BusyBar(
			fmt.Sprintf("%s sender (%.1f Gbps)", k, r.Gbps), r.SenderBusy, r.Elapsed, f.Cores))
		hd.Bars = append(hd.Bars, report.BusyBar(
			fmt.Sprintf("%s receiver", k), r.ReceiverBusy, r.Elapsed, f.Cores))
	}
	hd.Render(w)
	fmt.Fprintf(w, "  DCS-ctrl Swift CPU reduction vs SW-ctrl P2P: %s (paper: ~52%%)\n\n",
		report.Pct(f.CPUReduction))
}

// Figure13 projects the measured operating points to a 40-Gbps NIC
// and six SSDs on one 6-core CPU.
type Figure13 struct {
	SwiftCores map[core.Config]float64 // cores needed at 40 Gbps
	HDFSCores  map[core.Config]float64
	SwiftMax   map[core.Config]float64 // max Gbps with 6 cores
	HDFSMax    map[core.Config]float64
	// Throughput gains of DCS-ctrl over SW-ctrl P2P under the core
	// budget (paper: 1.95x Swift, 2.06x HDFS).
	SwiftGain, HDFSGain float64
}

// ProjectFigure13 derives the projection from Figure 12 measurements.
func ProjectFigure13(f12 Figure12) Figure13 {
	const targetGbps = 40
	const coreBudget = 6
	out := Figure13{
		SwiftCores: map[core.Config]float64{},
		HDFSCores:  map[core.Config]float64{},
		SwiftMax:   map[core.Config]float64{},
		HDFSMax:    map[core.Config]float64{},
	}
	for _, k := range Fig12Configs {
		s := f12.Swift[k]
		if sc, err := core.NewScalability(s.Gbps, s.ServerCPU, f12.Cores); err == nil {
			out.SwiftCores[k] = sc.CoresAt(targetGbps)
			out.SwiftMax[k] = sc.MaxGbps(coreBudget, targetGbps)
		}
		h := f12.HDFS[k]
		// The receiver is the heavier side; project its cost.
		if sc, err := core.NewScalability(h.Gbps, h.ReceiverCPU, f12.Cores); err == nil {
			out.HDFSCores[k] = sc.CoresAt(targetGbps)
			out.HDFSMax[k] = sc.MaxGbps(coreBudget, targetGbps)
		}
	}
	if v := out.SwiftMax[core.SWP2P]; v > 0 {
		out.SwiftGain = out.SwiftMax[core.DCSCtrl] / v
	}
	if v := out.HDFSMax[core.SWP2P]; v > 0 {
		out.HDFSGain = out.HDFSMax[core.DCSCtrl] / v
	}
	return out
}

// Render writes the projection tables.
func (f Figure13) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 13: projected CPU demand at 40 Gbps (6 SSDs, 6-core CPU)",
		Headers: []string{"design", "Swift cores@40G", "Swift max Gbps", "HDFS cores@40G", "HDFS max Gbps"},
	}
	for _, k := range Fig12Configs {
		t.AddRow(k.String(),
			fmt.Sprintf("%.2f", f.SwiftCores[k]),
			fmt.Sprintf("%.1f", f.SwiftMax[k]),
			fmt.Sprintf("%.2f", f.HDFSCores[k]),
			fmt.Sprintf("%.1f", f.HDFSMax[k]))
	}
	t.Render(w)
	fmt.Fprintf(w, "  iso-CPU throughput gain, DCS-ctrl vs SW-ctrl P2P: Swift %.2fx (paper 1.95x), HDFS %.2fx (paper 2.06x)\n\n",
		f.SwiftGain, f.HDFSGain)
}

// DefaultFig12Swift returns the Swift config used by the harness.
func DefaultFig12Swift() apps.SwiftConfig {
	cfg := apps.DefaultSwiftConfig()
	cfg.Conns = 8
	cfg.MeanGap = 250 * sim.Microsecond
	cfg.Duration = 25 * sim.Millisecond
	cfg.Sizes = workload.DropboxSizes()
	return cfg
}

// DefaultFig12HDFS returns the HDFS config used by the harness.
func DefaultFig12HDFS() apps.HDFSConfig {
	cfg := apps.DefaultHDFSConfig()
	cfg.Streams = 4
	cfg.Duration = 25 * sim.Millisecond
	return cfg
}
