package bench

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dcsctrl/internal/sim/snap"
)

// Checkpoint artifacts (DESIGN.md §17). An artifact is the raw
// snapshot gzip-compressed, named after its content:
//
//	ckpt-<config>-v<version>-<hash12>.ckpt.gz
//
// where hash12 is the first 12 hex digits of the FNV-1a content hash
// of the UNCOMPRESSED snapshot. The hash names the logical state, so
// CI can regenerate the snapshot and compare byte-for-byte against
// the checked-in golden artifact without trusting gzip framing.

// BuildWarmCheckpoint runs the grid's shared warm phase once and
// returns the snapshot bytes. The warm phase uses the fixed warmSeed,
// so the bytes depend only on the configuration and code — the
// property the golden-artifact CI gate pins.
func BuildWarmCheckpoint(cfg WarmForkConfig) ([]byte, error) {
	_, cl, sess, err := cfg.buildCell()
	if err != nil {
		return nil, err
	}
	if _, err := sess.RunPhaseSeed(0, cfg.WarmDuration, warmSeed); err != nil {
		return nil, err
	}
	return cl.Snapshot()
}

// CheckpointArtifactName returns the canonical artifact file name for
// a snapshot.
func CheckpointArtifactName(config string, data []byte) string {
	return fmt.Sprintf("ckpt-%s-v%d-%s.ckpt.gz", config, snap.Version, snap.ContentHash(data)[:12])
}

// WriteCheckpointArtifact writes the snapshot as a gzip artifact. If
// path is a directory (or ends in a separator) the canonical name is
// appended. It returns the path actually written.
func WriteCheckpointArtifact(path, config string, data []byte) (string, error) {
	if st, err := os.Stat(path); (err == nil && st.IsDir()) || strings.HasSuffix(path, string(os.PathSeparator)) {
		path = filepath.Join(path, CheckpointArtifactName(config, data))
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return "", err
	}
	if err := zw.Close(); err != nil {
		return "", err
	}
	return path, os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadCheckpointArtifact reads and decompresses a checkpoint
// artifact.
func ReadCheckpointArtifact(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	defer zr.Close()
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return data, nil
}

// VerifyCheckpoint restores an artifact's snapshot into a freshly
// built cluster, re-snapshots it, and byte-compares — the CI
// restore-and-compare gate. It also regenerates the warm checkpoint
// from source and compares against the artifact, catching code
// changes that silently shift the simulated schedule.
func VerifyCheckpoint(cfg WarmForkConfig, data []byte) error {
	_, cl, _, err := cfg.buildCell()
	if err != nil {
		return err
	}
	if err := cl.Restore(data); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	again, err := cl.Snapshot()
	if err != nil {
		return fmt.Errorf("re-snapshot: %w", err)
	}
	if !bytes.Equal(data, again) {
		return fmt.Errorf("restore round-trip mismatch: artifact %d bytes (%s), re-snapshot %d bytes (%s)",
			len(data), snap.ContentHash(data), len(again), snap.ContentHash(again))
	}
	fresh, err := BuildWarmCheckpoint(cfg)
	if err != nil {
		return fmt.Errorf("regenerate: %w", err)
	}
	if !bytes.Equal(data, fresh) {
		return fmt.Errorf("regenerated checkpoint differs from artifact: artifact %s, regenerated %s (schedule drift — re-bless the golden artifact if intended)",
			snap.ContentHash(data), snap.ContentHash(fresh))
	}
	return nil
}
