package bench

import (
	"fmt"
	"io"

	"dcsctrl/internal/apps"
	"dcsctrl/internal/core"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/report"
	"dcsctrl/internal/sim"
)

// FaultCell is one trial of the fault-recovery matrix: a server design
// under a named fault profile, driven by a short Swift workload, with
// the recovery machinery's counters captured afterwards.
type FaultCell struct {
	Config  core.Config
	Profile string

	Requests int64
	Errors   int64
	Gbps     float64

	Injected       int64 // faults fired across both nodes
	DriverRetries  int64 // D2D commands re-issued (DCS-ctrl only)
	DriverTimeouts int64 // commands abandoned by the watchdog
	EngineFailed   bool  // engine declared dead, host adopted conns
	Fallbacks      int64 // ops completed on the host-mediated path
	NICTxReplays   int64 // corrupt frames re-transmitted
}

// FaultMatrix is the full profiles×configs recovery sweep — the
// evaluation-harness view of the PR-1 recovery machinery: every design
// must absorb every profile with zero application-visible errors.
type FaultMatrix struct {
	Profiles []string
	Configs  []core.Config
	Cells    []FaultCell // row-major: profile-major, config-minor
}

// FaultMatrixProfiles are the swept profiles. engine-fail is included:
// on DCS-ctrl it exercises watchdog + host fallback, on the software
// designs it is a no-op control row.
var FaultMatrixProfiles = []string{"light", "heavy", "engine-fail"}

// faultMatrixSeed keeps the matrix deterministic run to run.
const faultMatrixSeed = 42

// RunFaultMatrix executes the matrix serially.
func RunFaultMatrix() FaultMatrix {
	return RunFaultMatrixParallel(1)
}

// RunFaultMatrixParallel fans the matrix's independent cells across up
// to workers goroutines, one cluster and one injector per cell.
func RunFaultMatrixParallel(workers int) FaultMatrix {
	m := FaultMatrix{
		Profiles: FaultMatrixProfiles,
		Configs:  []core.Config{core.Vanilla, core.SWOpt, core.SWP2P, core.DCSCtrl},
	}
	m.Cells = make([]FaultCell, len(m.Profiles)*len(m.Configs))
	ParallelFor(len(m.Cells), workers, func(i int) {
		profile := m.Profiles[i/len(m.Configs)]
		kind := m.Configs[i%len(m.Configs)]
		m.Cells[i] = runFaultCell(kind, profile)
	})
	return m
}

func runFaultCell(kind core.Config, profileName string) FaultCell {
	profile, ok := fault.ProfileByName(profileName)
	if !ok {
		panic("bench: unknown fault profile " + profileName)
	}
	params := core.DefaultParams()
	inj := fault.NewInjector(faultMatrixSeed, profile)
	params.Faults = inj
	env := sim.NewEnv()
	cl := core.NewCluster(env, kind, params)
	cfg := apps.DefaultSwiftConfig()
	cfg.Conns = 4
	cfg.Warmup = 1 * sim.Millisecond
	cfg.Duration = 8 * sim.Millisecond
	if profileName == "engine-fail" {
		// The driver watchdog declares the engine dead after 20 ms
		// (core.NewNode default); the measured window must outlast it
		// for the host-fallback path to complete any requests.
		cfg.Duration = 30 * sim.Millisecond
	}
	res, err := apps.RunSwift(env, cl, cfg)
	if err != nil {
		panic(err)
	}
	cell := FaultCell{
		Config:    kind,
		Profile:   profileName,
		Requests:  int64(res.Requests),
		Errors:    int64(res.Errors),
		Gbps:      res.Gbps,
		Injected:  inj.TotalInjected(),
		Fallbacks: cl.Server.Fallbacks(),
	}
	cell.NICTxReplays, _ = cl.Server.NIC.RecoveryStats()
	if cl.Server.Driver != nil {
		cell.DriverRetries = cl.Server.Driver.Retries()
		cell.DriverTimeouts = cl.Server.Driver.Timeouts()
		cell.EngineFailed = cl.Server.Driver.Failed()
	}
	return cell
}

// Render writes the matrix as a table.
func (m FaultMatrix) Render(w io.Writer) {
	t := report.Table{
		Title:   "Fault-recovery matrix: short Swift run per design x profile",
		Headers: []string{"profile", "design", "reqs", "errs", "Gbps", "injected", "retries", "fallbacks", "engine"},
	}
	for _, c := range m.Cells {
		engine := "ok"
		if c.EngineFailed {
			engine = "FAILED->host"
		}
		t.AddRow(c.Profile, c.Config.String(),
			fmt.Sprintf("%d", c.Requests),
			fmt.Sprintf("%d", c.Errors),
			fmt.Sprintf("%.2f", c.Gbps),
			fmt.Sprintf("%d", c.Injected),
			fmt.Sprintf("%d", c.DriverRetries),
			fmt.Sprintf("%d", c.Fallbacks),
			engine)
	}
	t.Render(w)
	fmt.Fprintln(w, "  Every row must show zero errors: the recovery machinery absorbs")
	fmt.Fprintln(w, "  injected faults without surfacing them to the application.")
	fmt.Fprintln(w)
}
