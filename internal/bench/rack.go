package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"dcsctrl/internal/core"
	"dcsctrl/internal/ether"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/shard"
	"dcsctrl/internal/workload"
)

// Rack workloads: deterministic flow sets over the switched fabric,
// executed serially or sharded. The flow set, every payload, and every
// completion time are fully determined by the config — domain count
// and worker count change only wall-clock time, never results — so
// Fingerprint is the cross-decomposition equivalence check.

// Rack traffic patterns.
const (
	RackAllToAll = "alltoall" // every ordered node pair exchanges one flow
	RackIncast   = "incast"   // every node sends to node 0 (barrier-heavy)
)

// RackConfig describes one rack workload cell.
type RackConfig struct {
	Nodes   int    // node count; default 16
	Domains int    // shard count; default 1
	Workers int    // worker goroutines; default = Domains (logical workers: results are identical at any count)
	Pattern string // RackAllToAll (default) or RackIncast
	Bytes   int    // mean flow payload; default 32 KB
	Rounds  int    // flows per (src, dst) pair; default 1
	Seed    uint64 // flow-size/payload seed

	// FaultProfile, with rules, arms per-node fault injectors seeded
	// from FaultSeed (see core.RackParams).
	FaultProfile fault.Profile
	FaultSeed    uint64
}

// withDefaults fills the zero fields.
func (c RackConfig) withDefaults() RackConfig {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Domains <= 0 {
		c.Domains = 1
	}
	if c.Workers <= 0 {
		c.Workers = c.Domains
	}
	if c.Pattern == "" {
		c.Pattern = RackAllToAll
	}
	if c.Bytes <= 0 {
		c.Bytes = 32 << 10
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	return c
}

// rackFlow is one generated flow.
type rackFlow struct {
	src, dst int
	bytes    int
}

// buildRackFlows expands the pattern into the deterministic flow list.
// Sizes are drawn from a per-flow-index PRNG, so the list depends only
// on (pattern, nodes, bytes, rounds, seed) — never on execution order.
func buildRackFlows(cfg RackConfig) []rackFlow {
	var flows []rackFlow
	add := func(src, dst int) {
		idx := uint64(len(flows))
		rnd := workload.NewRand(cfg.Seed ^ (idx+1)*0x9E3779B97F4A7C15)
		size := cfg.Bytes/2 + rnd.Intn(cfg.Bytes)
		if size < 1 {
			size = 1
		}
		flows = append(flows, rackFlow{src: src, dst: dst, bytes: size})
	}
	for round := 0; round < cfg.Rounds; round++ {
		switch cfg.Pattern {
		case RackIncast:
			for src := 1; src < cfg.Nodes; src++ {
				add(src, 0)
			}
		case RackAllToAll:
			for src := 0; src < cfg.Nodes; src++ {
				for dst := 0; dst < cfg.Nodes; dst++ {
					if dst != src {
						add(src, dst)
					}
				}
			}
		default:
			panic(fmt.Sprintf("bench: unknown rack pattern %q", cfg.Pattern))
		}
	}
	return flows
}

// RackResult is one rack run's outcome. FlowDone is index-keyed by
// flow — receivers in different domains write distinct slots, so the
// slice is race-free and its order is decomposition-invariant.
type RackResult struct {
	Config   RackConfig
	Flows    int
	Bytes    int64    // payload bytes across all flows
	Makespan sim.Time // latest flow completion
	FlowDone []sim.Time

	Events      uint64 // kernel events summed across domains
	Frames      int64  // frames delivered by the fabric
	WireBytes   int64  // wire bytes delivered by the fabric
	Drops       int64  // unroutable frames (must be 0)
	ShardStats  shard.Stats
	RxErrors    int64 // checksum-dropped frames (fault runs)
	WallSeconds float64
}

// Fingerprint digests the decomposition-invariant payload of the run:
// per-flow endpoints, sizes, and completion times, plus the makespan.
// Kernel counters (events, fusion) are deliberately excluded — event
// fusion depends on which nodes share an Env, so those counters vary
// across domain counts even though the simulated results do not.
func (r *RackResult) Fingerprint() string {
	h := sha256.New()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(r.Flows))
	put(uint64(r.Makespan))
	for i, d := range r.FlowDone {
		put(uint64(i))
		put(uint64(d))
	}
	put(uint64(r.Bytes))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// RunRack executes one rack workload cell and returns its results.
func RunRack(cfg RackConfig) RackResult {
	cfg = cfg.withDefaults()
	flows := buildRackFlows(cfg)
	r := core.NewRack(core.RackParams{
		Nodes:        cfg.Nodes,
		Domains:      cfg.Domains,
		Workers:      cfg.Workers,
		Kind:         core.SWOpt,
		Spec:         ether.RackSpec{},
		FaultProfile: cfg.FaultProfile,
		FaultSeed:    cfg.FaultSeed,
	})

	conns := make([]core.Conn, len(flows))
	for i, f := range flows {
		conns[i] = r.OpenConn(f.src, f.dst, false)
	}
	done := make([]sim.Time, len(flows))
	var total int64
	for i := range flows {
		f, conn, idx := flows[i], conns[i], i
		total += int64(f.bytes)
		payload := make([]byte, f.bytes)
		prnd := workload.NewRand(cfg.Seed ^ uint64(idx)<<20 ^ 0xA5A5)
		for j := range payload {
			payload[j] = byte(prnd.Uint64())
		}
		r.Nodes[f.src].Env.Spawn(fmt.Sprintf("flow%05d-tx", idx), func(p *sim.Proc) {
			r.NodeSend(p, f.src, conn, payload)
		})
		r.Nodes[f.dst].Env.Spawn(fmt.Sprintf("flow%05d-rx", idx), func(p *sim.Proc) {
			got := r.NodeRecv(p, f.dst, conn, f.bytes)
			for j := range got {
				if got[j] != payload[j] {
					panic(fmt.Sprintf("bench: flow %d byte %d corrupted in transit", idx, j))
				}
			}
			done[idx] = p.Now()
		})
	}
	start := time.Now()
	r.Run(-1)
	res := RackResult{
		Config:      cfg,
		Flows:       len(flows),
		Bytes:       total,
		FlowDone:    done,
		ShardStats:  r.Stats(),
		WallSeconds: time.Since(start).Seconds(),
	}
	for i, d := range done {
		if d == 0 {
			panic(fmt.Sprintf("bench: flow %d (%d->%d) never completed", i, flows[i].src, flows[i].dst))
		}
		if d > res.Makespan {
			res.Makespan = d
		}
	}
	for _, d := range r.Kernel.Domains() {
		res.Events += d.Env().Steps()
	}
	res.Frames, res.WireBytes, res.Drops = r.FabricStats()
	if res.Drops != 0 {
		panic(fmt.Sprintf("bench: %d unroutable frames in a closed rack", res.Drops))
	}
	for _, n := range r.Nodes {
		_, _, _, _, _, rxe := n.NIC.Stats()
		res.RxErrors += rxe
	}
	return res
}

// Render formats the result as a table row block for stdout.
func (r *RackResult) Render() string {
	var b strings.Builder
	st := r.ShardStats
	fmt.Fprintf(&b, "rack %s: %d nodes, %d domains, %d workers\n",
		r.Config.Pattern, r.Config.Nodes, st.Domains, st.Workers)
	fmt.Fprintf(&b, "  flows %d  payload %.1f MB  makespan %v  wall %.2fs\n",
		r.Flows, float64(r.Bytes)/1e6, r.Makespan, r.WallSeconds)
	fmt.Fprintf(&b, "  windows %d  parallel-windows %d  cross-frames %d  events %d\n",
		st.Windows, st.ParWindows, st.CrossFrames, r.Events)
	fmt.Fprintf(&b, "  fabric frames %d  wire %.1f MB  rx-errors %d\n",
		r.Frames, float64(r.WireBytes)/1e6, r.RxErrors)
	fmt.Fprintf(&b, "  fingerprint %s\n", r.Fingerprint())
	return b.String()
}
