package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dcsctrl/internal/core"
	"dcsctrl/internal/sim"
)

// Perf tracking for the kernel fast path and the parallel runner.
// cmd/dcsbench emits this as BENCH_kernel.json so every PR leaves a
// machine-readable perf trajectory behind: if ns/event or allocs/event
// regress, the next session sees it in the artifact diff.

// KernelStats is one kernel microbenchmark measurement. The dispatch
// counters (parks, handoffs, handler dispatches) make the park/resume
// handoff tax a first-class measured quantity: HandoffsPerEvent is
// what benchdiff's regression gate watches.
type KernelStats struct {
	Events            uint64  `json:"events"`
	WallNs            int64   `json:"wall_ns"`
	NsPerEvent        float64 `json:"ns_per_event"`
	EventsPerSec      float64 `json:"events_per_sec"`
	AllocsPerEvent    float64 `json:"allocs_per_event"`
	BytesPerEvent     float64 `json:"bytes_per_event"`
	Parks             uint64  `json:"parks"`
	Handoffs          uint64  `json:"handoffs"`
	HandlerDispatches uint64  `json:"handler_dispatches"`
	HandoffsPerEvent  float64 `json:"handoffs_per_event"`
}

// measureKernel runs fn (which must dispatch through env) and derives
// per-event rates from the wall clock and allocator deltas.
func measureKernel(env *sim.Env, fn func()) KernelStats {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	events := env.Steps()
	es := env.Stats()
	st := KernelStats{Events: events, WallNs: wall.Nanoseconds(),
		Parks: es.Parks, Handoffs: es.Handoffs, HandlerDispatches: es.HandlerDispatches}
	if events > 0 {
		st.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		st.EventsPerSec = float64(events) / wall.Seconds()
		st.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		st.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
		st.HandoffsPerEvent = float64(es.Handoffs) / float64(events)
	}
	return st
}

// MeasureKernelSchedule measures the pure timer path: n callbacks at
// staggered future instants, batch-dispatched (the event-heap path).
func MeasureKernelSchedule(n int) KernelStats {
	env := sim.NewEnv()
	nop := func() {}
	return measureKernel(env, func() {
		const batch = 4096
		for done := 0; done < n; done += batch {
			for j := 0; j < batch; j++ {
				env.Schedule(sim.Time(1+(j*37)%977), nop)
			}
			env.Run(-1)
		}
	})
}

// MeasureKernelParkResume measures the process handoff path: two
// processes ping-ponging through Yield (the FIFO-lane + direct-handoff
// path).
func MeasureKernelParkResume(n int) KernelStats {
	env := sim.NewEnv()
	for k := 0; k < 2; k++ {
		env.Spawn("pp", func(p *sim.Proc) {
			for i := 0; i < n/2; i++ {
				p.Yield()
			}
		})
	}
	return measureKernel(env, func() { env.Run(-1) })
}

// MeasureKernelParkResumeHandler is the same ping-pong workload as
// MeasureKernelParkResume expressed as handler procs: each Yield
// becomes a same-instant Rearm, so the event count matches and the
// wall-clock delta is pure dispatch-flavor cost — the handoff tax the
// handler kernel eliminates (DESIGN.md §16).
func MeasureKernelParkResumeHandler(n int) KernelStats {
	env := sim.NewEnv()
	for k := 0; k < 2; k++ {
		i := 0
		env.SpawnHandler("pp", func(h *sim.HandlerCtx) {
			if i >= n/2 {
				h.Exit()
				return
			}
			i++
			h.Rearm(0)
		})
	}
	return measureKernel(env, func() { env.Run(-1) })
}

// ProtocolStats is the event economy of one deterministic protocol
// cell: total dispatched kernel events, fused (inlined) continuations,
// host-visible I/O completions, and the headline events-per-I/O ratio
// the batched protocol pipelines optimize.
type ProtocolStats struct {
	Name        string  `json:"name"`
	Events      uint64  `json:"events"`
	Fused       uint64  `json:"fused"`
	IOs         uint64  `json:"ios"`
	EventsPerIO float64 `json:"events_per_io"`
}

// MeasureProtocol runs a fixed GET-style stream (ops transfers of size
// bytes over one connection) under cfg and returns the kernel's event
// accounting. The cell is deterministic, so the counts are exact and
// diffable across commits.
func MeasureProtocol(name string, cfg core.Config, ops, size int) ProtocolStats {
	env := sim.NewEnv()
	cl := core.NewCluster(env, cfg, core.DefaultParams())
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i * 7)
	}
	f, err := cl.Server.StageFile("obj", content)
	if err != nil {
		panic(err)
	}
	conn := cl.OpenConn(true)
	env.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			if _, err := cl.Server.SendFileOp(p, f, 0, size, conn.ID, core.ProcNone); err != nil {
				panic(err)
			}
		}
	})
	env.Spawn("client", func(p *sim.Proc) { cl.ClientRecv(p, conn, ops*size) })
	env.Run(-1)
	st := env.Stats()
	return ProtocolStats{
		Name:        name,
		Events:      st.Events,
		Fused:       st.Fused,
		IOs:         st.IOs,
		EventsPerIO: st.EventsPerIO(),
	}
}

// FigureTiming is the wall-clock cost of one regenerated experiment.
type FigureTiming struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// SweepComparison records the serial-vs-parallel wall clock of the
// full size sweep, the headline number for the parallel runner.
type SweepComparison struct {
	Workers    int     `json:"workers"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// RackPerf is one rack workload measurement: wall-clock rates plus the
// shard kernel's synchronization counters. ParWindows is the
// knob-not-dead signal benchdiff gates on — a multi-domain entry whose
// ParWindows is zero ran silently serial. Fingerprint is the
// decomposition-invariant result digest: every rack entry with the
// same workload must carry the same fingerprint no matter its domain
// or worker count.
type RackPerf struct {
	Name              string  `json:"name"`
	Nodes             int     `json:"nodes"`
	Domains           int     `json:"domains"`
	Workers           int     `json:"workers"`
	Flows             int     `json:"flows"`
	WallMs            float64 `json:"wall_ms"`
	NsPerFlow         float64 `json:"ns_per_flow"`
	Events            uint64  `json:"events"`
	EventsPerFlow     float64 `json:"events_per_flow"`
	Windows           uint64  `json:"windows"`
	ParWindows        uint64  `json:"par_windows"`
	CrossFrames       uint64  `json:"cross_frames"`
	Parks             uint64  `json:"parks"`
	Handoffs          uint64  `json:"handoffs"`
	HandlerDispatches uint64  `json:"handler_dispatches"`
	HandoffsPerEvent  float64 `json:"handoffs_per_event"`
	MakespanNs        int64   `json:"makespan_ns"`
	Fingerprint       string  `json:"fingerprint"`
	SpeedupVs1        float64 `json:"speedup_vs_1,omitempty"`
}

// PerfReport is the BENCH_kernel.json payload.
type PerfReport struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"workers"`
	GoVersion  string `json:"go_version"`

	KernelSchedule          KernelStats      `json:"kernel_schedule"`
	KernelParkResume        KernelStats      `json:"kernel_park_resume"`
	KernelParkResumeHandler KernelStats      `json:"kernel_park_resume_handler"`
	Protocol                []ProtocolStats  `json:"protocol,omitempty"`
	Figures                 []FigureTiming   `json:"figures,omitempty"`
	Sweep                   *SweepComparison `json:"sweep,omitempty"`
	Racks                   []RackPerf       `json:"racks,omitempty"`
	Checkpoint              *CheckpointPerf  `json:"checkpoint,omitempty"`
}

// CheckpointPerf summarizes the warm-fork grid for BENCH_kernel.json:
// snapshot codec cost, the straight-vs-forked wall clock at equal
// cell count, and the fingerprint verdict. AllMatch is the
// knob-not-dead signal benchdiff gates on — a grid whose forked cells
// diverge (or that ran zero cells) means the restore path is broken
// or dead.
type CheckpointPerf struct {
	Config        string  `json:"config"`
	Cells         int     `json:"cells"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	SaveNs        int64   `json:"save_ns"`
	RestoreNs     int64   `json:"restore_ns"` // mean per-cell restore
	StraightMs    float64 `json:"straight_ms"`
	ForkedMs      float64 `json:"forked_ms"`
	Speedup       float64 `json:"speedup"`
	AllMatch      bool    `json:"all_match"`
}

// RecordCheckpoint folds a warm-fork grid result into the report.
func (r *PerfReport) RecordCheckpoint(res WarmForkResult) {
	cp := &CheckpointPerf{
		Config:        res.Config,
		Cells:         len(res.Cells),
		SnapshotBytes: res.SnapshotBytes,
		SaveNs:        res.SaveNs,
		StraightMs:    res.StraightMs,
		ForkedMs:      res.ForkedMs,
		Speedup:       res.Speedup,
		AllMatch:      res.AllMatch && len(res.Cells) > 0,
	}
	for _, c := range res.Cells {
		cp.RestoreNs += c.RestoreNs
	}
	if len(res.Cells) > 0 {
		cp.RestoreNs /= int64(len(res.Cells))
	}
	r.Checkpoint = cp
}

// MeasureCheckpoint runs the default warm-fork grid and records it.
func (r *PerfReport) MeasureCheckpoint() error {
	cfg := DefaultWarmForkConfig()
	cfg.Workers = r.Workers
	res, err := RunWarmForkGrid(cfg)
	if err != nil {
		return err
	}
	r.RecordCheckpoint(res)
	return nil
}

// NewPerfReport runs the kernel microbenchmarks and returns a report
// ready to accumulate figure timings.
func NewPerfReport(workers int) *PerfReport {
	const events = 1 << 20
	return &PerfReport{
		GoMaxProcs:              runtime.GOMAXPROCS(0),
		NumCPU:                  runtime.NumCPU(),
		Workers:                 workers,
		GoVersion:               runtime.Version(),
		KernelSchedule:          MeasureKernelSchedule(events),
		KernelParkResume:        MeasureKernelParkResume(events),
		KernelParkResumeHandler: MeasureKernelParkResumeHandler(events),
	}
}

// MeasureProtocols records the event economy of the hot protocol
// configurations: one 16-op 64 KB GET stream per config.
func (r *PerfReport) MeasureProtocols() {
	const ops, size = 16, 64 << 10
	for _, cfg := range []core.Config{core.SWP2P, core.DCSCtrl} {
		r.Protocol = append(r.Protocol, MeasureProtocol(cfg.String(), cfg, ops, size))
	}
}

// Time runs fn and records its wall clock under name.
func (r *PerfReport) Time(name string, fn func()) {
	start := time.Now()
	fn()
	r.Figures = append(r.Figures, FigureTiming{
		Name:   name,
		WallMs: float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// CompareSweep measures the full size sweep serially and with workers
// goroutines and records the speedup.
func (r *PerfReport) CompareSweep(workers int) {
	// Warm the allocator and OS page cache first so the serial run
	// (measured before the parallel one) isn't charged for first-touch
	// costs the parallel run then inherits for free.
	RunSizeSweepParallel(0, 1)
	start := time.Now()
	RunSizeSweepParallel(0, 1) // ProcNone
	serial := time.Since(start)
	cmp := &SweepComparison{
		Workers:  EffectiveWorkers(workers, workers),
		SerialMs: float64(serial.Nanoseconds()) / 1e6,
	}
	if cmp.Workers <= 1 {
		// The GOMAXPROCS clamp degenerates the "parallel" sweep to the
		// identical serial loop; measuring the same code twice would
		// report run-to-run GC jitter as a speedup or slowdown.
		cmp.ParallelMs = cmp.SerialMs
		cmp.Speedup = 1
	} else {
		start = time.Now()
		RunSizeSweepParallel(0, workers)
		par := time.Since(start)
		cmp.ParallelMs = float64(par.Nanoseconds()) / 1e6
		if par > 0 {
			cmp.Speedup = float64(serial) / float64(par)
		}
	}
	r.Sweep = cmp
}

// rackPerfFrom flattens one rack run into its report entry.
func rackPerfFrom(res RackResult) RackPerf {
	st := res.ShardStats
	rp := RackPerf{
		Name:              fmt.Sprintf("rack_%s_%dx%d", res.Config.Pattern, res.Config.Nodes, st.Domains),
		Nodes:             res.Config.Nodes,
		Domains:           st.Domains,
		Workers:           st.Workers,
		Flows:             res.Flows,
		WallMs:            res.WallSeconds * 1e3,
		Events:            res.Events,
		Windows:           st.Windows,
		ParWindows:        st.ParWindows,
		CrossFrames:       st.CrossFrames,
		Parks:             st.Parks,
		Handoffs:          st.Handoffs,
		HandlerDispatches: st.HandlerDispatches,
		MakespanNs:        int64(res.Makespan),
		Fingerprint:       res.Fingerprint(),
	}
	if res.Flows > 0 {
		rp.NsPerFlow = res.WallSeconds * 1e9 / float64(res.Flows)
		rp.EventsPerFlow = float64(res.Events) / float64(res.Flows)
	}
	if res.Events > 0 {
		rp.HandoffsPerEvent = float64(st.Handoffs) / float64(res.Events)
	}
	return rp
}

// MeasureRacks runs the headline rack workload (all-to-all, the
// event-dense pattern) serial and sharded, and records both entries.
// The serial run is the reference schedule; the sharded run must
// reproduce its fingerprint exactly, and its SpeedupVs1 is the
// parallel kernel's headline number. The rack cell runs alone (outer
// worker count 1), so its shard pool gets the whole GOMAXPROCS
// budget via IntraRunWorkers — results are worker-count-invariant,
// only the wall clock cares.
func (r *PerfReport) MeasureRacks(nodes, domains int) {
	serial := RunRack(RackConfig{Nodes: nodes, Domains: 1})
	r.Racks = append(r.Racks, rackPerfFrom(serial))
	if domains > 1 {
		sharded := RunRack(RackConfig{Nodes: nodes, Domains: domains, Workers: IntraRunWorkers(1, domains)})
		rp := rackPerfFrom(sharded)
		if sharded.WallSeconds > 0 {
			rp.SpeedupVs1 = serial.WallSeconds / sharded.WallSeconds
		}
		if rp.Fingerprint != r.Racks[len(r.Racks)-1].Fingerprint {
			panic(fmt.Sprintf("bench: sharded rack fingerprint %s != serial %s (determinism violation)",
				rp.Fingerprint, r.Racks[len(r.Racks)-1].Fingerprint))
		}
		r.Racks = append(r.Racks, rp)
	}
}

// WriteJSON writes the report to path.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
