package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"dcsctrl/internal/sim"
)

// Perf tracking for the kernel fast path and the parallel runner.
// cmd/dcsbench emits this as BENCH_kernel.json so every PR leaves a
// machine-readable perf trajectory behind: if ns/event or allocs/event
// regress, the next session sees it in the artifact diff.

// KernelStats is one kernel microbenchmark measurement.
type KernelStats struct {
	Events         uint64  `json:"events"`
	WallNs         int64   `json:"wall_ns"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// measureKernel runs fn (which must dispatch through env) and derives
// per-event rates from the wall clock and allocator deltas.
func measureKernel(env *sim.Env, fn func()) KernelStats {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	events := env.Steps()
	st := KernelStats{Events: events, WallNs: wall.Nanoseconds()}
	if events > 0 {
		st.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		st.EventsPerSec = float64(events) / wall.Seconds()
		st.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		st.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return st
}

// MeasureKernelSchedule measures the pure timer path: n callbacks at
// staggered future instants, batch-dispatched (the event-heap path).
func MeasureKernelSchedule(n int) KernelStats {
	env := sim.NewEnv()
	nop := func() {}
	return measureKernel(env, func() {
		const batch = 4096
		for done := 0; done < n; done += batch {
			for j := 0; j < batch; j++ {
				env.Schedule(sim.Time(1+(j*37)%977), nop)
			}
			env.Run(-1)
		}
	})
}

// MeasureKernelParkResume measures the process handoff path: two
// processes ping-ponging through Yield (the FIFO-lane + direct-handoff
// path).
func MeasureKernelParkResume(n int) KernelStats {
	env := sim.NewEnv()
	for k := 0; k < 2; k++ {
		env.Spawn("pp", func(p *sim.Proc) {
			for i := 0; i < n/2; i++ {
				p.Yield()
			}
		})
	}
	return measureKernel(env, func() { env.Run(-1) })
}

// FigureTiming is the wall-clock cost of one regenerated experiment.
type FigureTiming struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// SweepComparison records the serial-vs-parallel wall clock of the
// full size sweep, the headline number for the parallel runner.
type SweepComparison struct {
	Workers    int     `json:"workers"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// PerfReport is the BENCH_kernel.json payload.
type PerfReport struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"workers"`
	GoVersion  string `json:"go_version"`

	KernelSchedule   KernelStats      `json:"kernel_schedule"`
	KernelParkResume KernelStats      `json:"kernel_park_resume"`
	Figures          []FigureTiming   `json:"figures,omitempty"`
	Sweep            *SweepComparison `json:"sweep,omitempty"`
}

// NewPerfReport runs the kernel microbenchmarks and returns a report
// ready to accumulate figure timings.
func NewPerfReport(workers int) *PerfReport {
	const events = 1 << 20
	return &PerfReport{
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		Workers:          workers,
		GoVersion:        runtime.Version(),
		KernelSchedule:   MeasureKernelSchedule(events),
		KernelParkResume: MeasureKernelParkResume(events),
	}
}

// Time runs fn and records its wall clock under name.
func (r *PerfReport) Time(name string, fn func()) {
	start := time.Now()
	fn()
	r.Figures = append(r.Figures, FigureTiming{
		Name:   name,
		WallMs: float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// CompareSweep measures the full size sweep serially and with workers
// goroutines and records the speedup.
func (r *PerfReport) CompareSweep(workers int) {
	// Warm the allocator and OS page cache first so the serial run
	// (measured before the parallel one) isn't charged for first-touch
	// costs the parallel run then inherits for free.
	RunSizeSweepParallel(0, 1)
	start := time.Now()
	RunSizeSweepParallel(0, 1) // ProcNone
	serial := time.Since(start)
	start = time.Now()
	RunSizeSweepParallel(0, workers)
	par := time.Since(start)
	cmp := &SweepComparison{
		Workers:    workers,
		SerialMs:   float64(serial.Nanoseconds()) / 1e6,
		ParallelMs: float64(par.Nanoseconds()) / 1e6,
	}
	if par > 0 {
		cmp.Speedup = float64(serial) / float64(par)
	}
	r.Sweep = cmp
}

// WriteJSON writes the report to path.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
