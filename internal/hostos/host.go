// Package hostos models the host side of the testbed: CPU cores, the
// cost of software code paths (syscalls, VFS, block layer, TCP/IP
// stack, interrupts), a file system with extent maps and a page cache,
// and per-category CPU accounting.
//
// The paper's argument is about where CPU cycles go, so every software
// step here is an Exec: acquire a core, advance time, release, and
// charge a trace.Category. Utilization figures (3b, 8, 12, 13) fall
// out of the accounting directly.
package hostos

import (
	"fmt"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// Params hold the calibrated costs of host software paths. The
// defaults approximate the evaluation platform: a 6-core Xeon E5-2630
// running an optimized (direct-I/O, reduced-copy) kernel stack, per
// the paper's choice of baseline (§II-B1).
type Params struct {
	Cores int

	SyscallEntry  sim.Time // user->kernel crossing
	SyscallExit   sim.Time // kernel->user crossing
	VFSLookup     sim.Time // path/extent resolution per request
	PageCacheOp   sim.Time // stock-kernel page cache management per page
	BlockSubmit   sim.Time // block layer + NVMe driver: build/submit one command
	BlockComplete sim.Time // NVMe driver completion handling per command
	SockSendSetup sim.Time // socket send path fixed cost per call
	SockPerSeg    sim.Time // TCP/IP per-segment cost (header build, descriptor)
	SockBufOp     sim.Time // stock-kernel socket buffer management per call
	SockRecvSetup sim.Time // socket receive path fixed cost per call
	IRQOverhead   sim.Time // interrupt entry/exit + schedule
	CtxSwitch     sim.Time // blocking wait: sleep + wakeup cost
	GPULaunch     sim.Time // CPU-side cost to launch a GPU kernel
	GPUDMASetup   sim.Time // CPU-side cost to program one GPU copy
	CopyBps       float64  // CPU memcpy bandwidth, bits/s
}

// DefaultParams return the calibrated host costs.
func DefaultParams() Params {
	return Params{
		Cores:         6,
		SyscallEntry:  500 * sim.Nanosecond,
		SyscallExit:   500 * sim.Nanosecond,
		VFSLookup:     3500 * sim.Nanosecond,
		PageCacheOp:   1200 * sim.Nanosecond,
		BlockSubmit:   6000 * sim.Nanosecond,
		BlockComplete: 4000 * sim.Nanosecond,
		SockSendSetup: 12000 * sim.Nanosecond,
		SockPerSeg:    800 * sim.Nanosecond,
		SockBufOp:     2500 * sim.Nanosecond,
		SockRecvSetup: 6000 * sim.Nanosecond,
		IRQOverhead:   1000 * sim.Nanosecond,
		CtxSwitch:     1200 * sim.Nanosecond,
		GPULaunch:     10000 * sim.Nanosecond,
		GPUDMASetup:   8000 * sim.Nanosecond,
		CopyBps:       48e9, // ~6 GB/s single-core memcpy
	}
}

// Host is a CPU complex: cores, accounting, and an IRQ service path.
type Host struct {
	Env    *sim.Env
	Params Params
	Cores  *sim.Resource
	Acct   *trace.CPUAccount

	irqQ *sim.Queue[irqWork]
}

type irqWork struct {
	cost sim.Time
	cat  trace.Category
	fn   func()
}

// NewHost builds a host with params.Cores cores and starts the IRQ
// service process.
func NewHost(env *sim.Env, params Params) *Host {
	if params.Cores <= 0 {
		panic(fmt.Sprintf("hostos: %d cores", params.Cores))
	}
	h := &Host{
		Env:    env,
		Params: params,
		Cores:  sim.NewResource(env, "cpu-cores", params.Cores),
		Acct:   trace.NewCPUAccount(env),
		irqQ:   sim.NewQueue[irqWork](env, "irq"),
	}
	env.Spawn("irq-service", h.irqLoop)
	return h
}

func (h *Host) irqLoop(p *sim.Proc) {
	for {
		w := h.irqQ.Get(p)
		h.Exec(p, w.cat, h.Params.IRQOverhead+w.cost, nil)
		if w.fn != nil {
			w.fn()
		}
	}
}

// Exec occupies one core for d, charging category cat and, when bd is
// non-nil, the latency breakdown too. This is the single choke point
// through which all modelled software cost flows.
func (h *Host) Exec(p *sim.Proc, cat trace.Category, d sim.Time, bd *trace.Breakdown) {
	if d <= 0 {
		return
	}
	h.Cores.Acquire(p)
	p.Sleep(d)
	h.Cores.Release()
	h.Acct.Charge(cat, d)
	if bd != nil {
		bd.Add(cat, d)
	}
}

// execHState enumerates where an ExecH resumes.
type execHState int

const (
	execIdle execHState = iota // nothing staged (or a zero-cost Exec)
	execAcq                    // acquiring a core
	execHold                   // core occupancy elapsing
)

// ExecH is the handler-proc replay of Exec (DESIGN.md §16): acquire a
// core, advance time, release, charge — staged across dispatches so a
// run-to-completion handler never parks. Start stages the charge, then
// the owner calls Step until it reports true; a zero-or-negative cost
// completes inline, exactly like Exec's early return. The zero value
// is idle and reusable, so one machine per owner serves any number of
// sequential charges without allocating.
type ExecH struct {
	host *Host
	cat  trace.Category
	d    sim.Time
	bd   *trace.Breakdown
	tick sim.ResTicket
	st   execHState
}

// Start stages one core charge. Panics if a charge is in flight.
func (x *ExecH) Start(host *Host, cat trace.Category, d sim.Time, bd *trace.Breakdown) {
	if x.st != execIdle {
		panic("hostos: ExecH started while a charge is in flight")
	}
	if d <= 0 {
		return // mirrors Exec: no core, no charge, no event
	}
	x.host, x.cat, x.d, x.bd = host, cat, d, bd
	x.st = execAcq
}

// Active reports whether a charge is staged or in flight.
func (x *ExecH) Active() bool { return x.st != execIdle }

// Step advances the charge and reports whether it completed. On false
// the handler body must return: the machine enrolled on the core pool
// or re-armed for its occupancy and resumes on the next dispatch.
func (x *ExecH) Step(h *sim.HandlerCtx) bool {
	switch x.st {
	case execIdle:
		return true // zero-cost charge: completed at Start
	case execAcq:
		if !x.host.Cores.AcquireH(h, &x.tick) {
			return false
		}
		x.st = execHold
		h.Rearm(x.d)
		return false
	case execHold:
		x.host.Cores.Release()
		x.host.Acct.Charge(x.cat, x.d)
		if x.bd != nil {
			x.bd.Add(x.cat, x.d)
		}
		x.st = execIdle
		x.host, x.bd = nil, nil
		return true
	default:
		panic("hostos: ExecH in impossible state")
	}
}

// RaiseIRQ enqueues interrupt work: IRQ overhead plus cost is charged
// to cat on a core, then fn runs (non-blocking; typically fires a
// signal that wakes a sleeping driver thread).
func (h *Host) RaiseIRQ(cat trace.Category, cost sim.Time, fn func()) {
	h.irqQ.Put(irqWork{cost: cost, cat: cat, fn: fn})
}

// CopyTime returns the single-core time to memcpy n bytes.
func (h *Host) CopyTime(n int) sim.Time {
	return sim.BpsToTime(n, h.Params.CopyBps)
}

// Copy charges a CPU-mediated copy of n bytes to category cat.
func (h *Host) Copy(p *sim.Proc, cat trace.Category, n int, bd *trace.Breakdown) {
	h.Exec(p, cat, h.CopyTime(n), bd)
}

// BlockOnDevice models a thread blocking for a device completion: the
// context-switch pair is charged, but the wait itself burns no CPU.
// It returns after sig fires.
func (h *Host) BlockOnDevice(p *sim.Proc, sig *sim.Signal, bd *trace.Breakdown) {
	h.Exec(p, trace.CatInterrupt, h.Params.CtxSwitch, bd)
	start := p.Now()
	sig.Wait(p)
	if bd != nil {
		bd.Add(trace.CatIdleWait, p.Now()-start)
	}
}

// Utilization returns total CPU utilization across all cores since the
// last account reset.
func (h *Host) Utilization() float64 {
	return h.Acct.TotalUtilization(h.Params.Cores)
}
