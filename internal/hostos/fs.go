package hostos

import (
	"fmt"
	"sort"
)

// BlockSize is the file system and NVMe logical block size.
const BlockSize = 4096

// Extent is a contiguous run of logical blocks on the SSD.
type Extent struct {
	LBA    uint64 // starting logical block address
	Blocks int    // run length in blocks
}

// File is a file's metadata: size and extent map. Contents live on the
// (simulated) SSD; the page cache may shadow individual pages.
type File struct {
	Name    string
	Size    int
	extents []Extent
}

// Extents returns the file's extent map.
func (f *File) Extents() []Extent { return append([]Extent(nil), f.extents...) }

// Blocks returns the number of logical blocks backing the file.
func (f *File) Blocks() int { return (f.Size + BlockSize - 1) / BlockSize }

// LBAs returns every backing LBA in file order.
func (f *File) LBAs() []uint64 {
	out := make([]uint64, 0, f.Blocks())
	for _, e := range f.extents {
		for i := 0; i < e.Blocks; i++ {
			out = append(out, e.LBA+uint64(i))
		}
	}
	return out
}

// LBARange maps the byte range [off, off+n) to backing LBAs.
func (f *File) LBARange(off, n int) ([]uint64, error) {
	if off < 0 || n < 0 || off+n > f.Size {
		return nil, fmt.Errorf("hostos: range [%d,%d) outside file %s size %d", off, off+n, f.Name, f.Size)
	}
	all := f.LBAs()
	first := off / BlockSize
	last := (off + n - 1) / BlockSize
	if n == 0 {
		return nil, nil
	}
	return all[first : last+1], nil
}

// pageState tracks one cached page.
type pageState struct {
	data  []byte
	dirty bool
}

// FileSystem manages file metadata, extent allocation on a simulated
// volume, and a page cache with dirty tracking. The stock-kernel
// ("Vanilla") path reads and writes through the cache; the optimized
// and DCS-ctrl paths bypass it, with DCS-ctrl's HDC Driver consulting
// Dirty() for the consistency check described in §IV-B.
type FileSystem struct {
	files   map[string]*File
	nextLBA uint64
	volume  uint64 // volume size in blocks

	cache      map[string]map[int]*pageState // file -> page index -> state
	cachePages int
	hits       int64
	misses     int64
}

// NewFileSystem returns an empty file system over a volume of the
// given size in bytes.
func NewFileSystem(volumeBytes uint64) *FileSystem {
	return &FileSystem{
		files:  map[string]*File{},
		volume: volumeBytes / BlockSize,
		cache:  map[string]map[int]*pageState{},
	}
}

// Create allocates a file of the given size. Extents are allocated in
// runs of up to 256 blocks (1 MB) to mimic a mostly-sequential but
// fragmented real volume.
func (fs *FileSystem) Create(name string, size int) (*File, error) {
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("hostos: file %s exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("hostos: negative size %d", size)
	}
	f := &File{Name: name, Size: size}
	blocks := f.Blocks()
	const maxRun = 256
	for blocks > 0 {
		run := blocks
		if run > maxRun {
			run = maxRun
		}
		if fs.nextLBA+uint64(run) > fs.volume {
			return nil, fmt.Errorf("hostos: volume full creating %s", name)
		}
		f.extents = append(f.extents, Extent{LBA: fs.nextLBA, Blocks: run})
		fs.nextLBA += uint64(run)
		blocks -= run
	}
	fs.files[name] = f
	return f, nil
}

// Lookup returns the file named name.
func (fs *FileSystem) Lookup(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hostos: no such file %s", name)
	}
	return f, nil
}

// Files returns all file names, sorted.
func (fs *FileSystem) Files() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CacheLookup returns the cached page, if present, and counts the
// hit/miss.
func (fs *FileSystem) CacheLookup(name string, page int) ([]byte, bool) {
	if ps, ok := fs.cache[name][page]; ok {
		fs.hits++
		return ps.data, true
	}
	fs.misses++
	return nil, false
}

// CacheFill inserts a clean page (after a read from the device).
func (fs *FileSystem) CacheFill(name string, page int, data []byte) {
	fs.insert(name, page, data, false)
}

// CacheWrite inserts or updates a dirty page (buffered write).
func (fs *FileSystem) CacheWrite(name string, page int, data []byte) {
	fs.insert(name, page, data, true)
}

func (fs *FileSystem) insert(name string, page int, data []byte, dirty bool) {
	m, ok := fs.cache[name]
	if !ok {
		m = map[int]*pageState{}
		fs.cache[name] = m
	}
	if _, existed := m[page]; !existed {
		fs.cachePages++
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m[page] = &pageState{data: cp, dirty: dirty}
}

// Dirty returns the indices of dirty cached pages of the file, sorted
// — the set the HDC Driver must reconcile before issuing a D2D read.
func (fs *FileSystem) Dirty(name string) []int {
	var out []int
	for idx, ps := range fs.cache[name] {
		if ps.dirty {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// CleanPage marks a page clean (after writeback) and returns its data.
func (fs *FileSystem) CleanPage(name string, page int) ([]byte, bool) {
	ps, ok := fs.cache[name][page]
	if !ok {
		return nil, false
	}
	ps.dirty = false
	return ps.data, true
}

// DropFile evicts all cached pages of a file.
func (fs *FileSystem) DropFile(name string) {
	fs.cachePages -= len(fs.cache[name])
	delete(fs.cache, name)
}

// CachedPages returns the number of resident pages.
func (fs *FileSystem) CachedPages() int { return fs.cachePages }

// CacheStats returns hits and misses.
func (fs *FileSystem) CacheStats() (hits, misses int64) { return fs.hits, fs.misses }
