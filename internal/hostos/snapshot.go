package hostos

import (
	"fmt"
	"sort"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). At a quiescent instant the host
// holds no cores and the IRQ queue is empty (the service loop parks on
// Get, which is fine), so the mutable state reduces to the core-pool
// utilization accounting and the per-category CPU account. The file
// system adds the extent allocator cursor, cache counters, and the
// resident page-cache content — data and dirty bits both decide future
// behaviour (cache hits, HDC writeback reconciliation).

// SnapSave encodes the host's accounting state.
func (h *Host) SnapSave(w *snap.Writer) error {
	if n := len(sim.CheckpointQueue(h.irqQ)); n != 0 {
		return fmt.Errorf("hostos: checkpoint with %d IRQs queued", n)
	}
	acc, err := h.Cores.CheckpointAccum()
	if err != nil {
		return err
	}
	w.I64(int64(acc.Busy))
	w.I64(int64(acc.LastStamp))
	return h.Acct.SnapSave(w)
}

// SnapLoad overlays the captured accounting onto an idle host.
func (h *Host) SnapLoad(r *snap.Reader) error {
	acc := sim.AccumState{Busy: sim.Time(r.I64()), LastStamp: sim.Time(r.I64())}
	if err := r.Err(); err != nil {
		return err
	}
	if err := h.Cores.RestoreAccum(acc); err != nil {
		return err
	}
	return h.Acct.SnapLoad(r)
}

// SnapSave encodes the file system: allocator cursor and cache stats
// (verified/overlaid), then the resident pages. File metadata is
// setup-determined — the restore target stages the identical files —
// so names and sizes are verified, not transplanted. Cache iteration
// collects and sorts names and page indices so encode order never
// leaks map iteration order.
func (fs *FileSystem) SnapSave(w *snap.Writer) error {
	w.U64(fs.nextLBA)
	w.I64(fs.hits)
	w.I64(fs.misses)
	names := fs.Files()
	w.U32(uint32(len(names)))
	for _, n := range names {
		w.Str(n)
		w.U64(uint64(fs.files[n].Size))
	}
	cached := make([]string, 0, len(fs.cache))
	for n := range fs.cache {
		if len(fs.cache[n]) > 0 {
			cached = append(cached, n)
		}
	}
	sort.Strings(cached)
	w.U32(uint32(len(cached)))
	for _, n := range cached {
		pages := fs.cache[n]
		idxs := make([]int, 0, len(pages))
		for i := range pages {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		w.Str(n)
		w.U32(uint32(len(idxs)))
		for _, i := range idxs {
			ps := pages[i]
			w.Int(i)
			w.Bool(ps.dirty)
			w.Bytes(ps.data)
		}
	}
	return nil
}

// SnapLoad verifies the file layout and overlays the cache content.
func (fs *FileSystem) SnapLoad(r *snap.Reader) error {
	nextLBA := r.U64()
	hits, misses := r.I64(), r.I64()
	nf := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nextLBA != fs.nextLBA {
		return fmt.Errorf("hostos: snapshot allocator at LBA %d, fs at %d (file layout mismatch)", nextLBA, fs.nextLBA)
	}
	if nf != len(fs.files) {
		return fmt.Errorf("hostos: snapshot has %d files, fs has %d", nf, len(fs.files))
	}
	for i := 0; i < nf; i++ {
		name := r.Str()
		size := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		f, ok := fs.files[name]
		if !ok || uint64(f.Size) != size {
			return fmt.Errorf("hostos: snapshot file %q/%d absent or resized in fs", name, size)
		}
	}
	fs.hits, fs.misses = hits, misses
	fs.cache = map[string]map[int]*pageState{}
	fs.cachePages = 0
	nc := int(r.U32())
	for i := 0; i < nc; i++ {
		name := r.Str()
		np := int(r.U32())
		if err := r.Err(); err != nil {
			return err
		}
		m := make(map[int]*pageState, np)
		fs.cache[name] = m
		for j := 0; j < np; j++ {
			idx := r.Int()
			dirty := r.Bool()
			data := r.Bytes()
			if err := r.Err(); err != nil {
				return err
			}
			m[idx] = &pageState{data: data, dirty: dirty}
			fs.cachePages++
		}
	}
	return r.Err()
}
