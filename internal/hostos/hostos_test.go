package hostos

import (
	"bytes"
	"testing"
	"testing/quick"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

func newHost(cores int) (*sim.Env, *Host) {
	env := sim.NewEnv()
	p := DefaultParams()
	p.Cores = cores
	return env, NewHost(env, p)
}

func TestExecChargesAccountAndBreakdown(t *testing.T) {
	env, h := newHost(2)
	bd := trace.NewBreakdown()
	env.Spawn("w", func(p *sim.Proc) {
		h.Exec(p, trace.CatNetStack, 10*sim.Microsecond, bd)
		h.Exec(p, trace.CatNetStack, 5*sim.Microsecond, nil)
	})
	env.Run(-1)
	if h.Acct.Busy(trace.CatNetStack) != 15*sim.Microsecond {
		t.Fatalf("busy = %v", h.Acct.Busy(trace.CatNetStack))
	}
	if bd.Get(trace.CatNetStack) != 10*sim.Microsecond {
		t.Fatalf("breakdown = %v", bd.Get(trace.CatNetStack))
	}
}

func TestExecZeroIsNoop(t *testing.T) {
	env, h := newHost(1)
	env.Spawn("w", func(p *sim.Proc) {
		h.Exec(p, trace.CatUser, 0, nil)
	})
	end := env.Run(-1)
	if end != 0 || h.Acct.TotalBusy() != 0 {
		t.Fatal("zero exec consumed time")
	}
}

func TestCoresSerialize(t *testing.T) {
	env, h := newHost(1)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		env.Spawn("w", func(p *sim.Proc) {
			h.Exec(p, trace.CatUser, 10*sim.Microsecond, nil)
			ends = append(ends, p.Now())
		})
	}
	env.Run(-1)
	want := []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v", ends)
		}
	}
}

func TestUtilization(t *testing.T) {
	env, h := newHost(2)
	env.Spawn("w", func(p *sim.Proc) {
		h.Exec(p, trace.CatUser, 40*sim.Microsecond, nil)
	})
	env.Spawn("tick", func(p *sim.Proc) { p.Sleep(100 * sim.Microsecond) })
	env.Run(-1)
	// 40µs busy over 2 cores × 100µs window = 0.2
	if got := h.Utilization(); got != 0.2 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestRaiseIRQ(t *testing.T) {
	env, h := newHost(1)
	sig := sim.NewSignal(env)
	var handled sim.Time
	h.RaiseIRQ(trace.CatInterrupt, 2*sim.Microsecond, func() {
		handled = env.Now()
		sig.Fire(nil)
	})
	env.Spawn("waiter", func(p *sim.Proc) { sig.Wait(p) })
	env.Run(-1)
	want := h.Params.IRQOverhead + 2*sim.Microsecond
	if handled != want {
		t.Fatalf("handled at %v, want %v", handled, want)
	}
	if h.Acct.Busy(trace.CatInterrupt) != want {
		t.Fatalf("irq busy = %v", h.Acct.Busy(trace.CatInterrupt))
	}
}

func TestIRQsSerializeOnQueue(t *testing.T) {
	env, h := newHost(4)
	count := 0
	for i := 0; i < 5; i++ {
		h.RaiseIRQ(trace.CatInterrupt, sim.Microsecond, func() { count++ })
	}
	env.Run(-1)
	if count != 5 {
		t.Fatalf("handled %d/5", count)
	}
	want := 5 * (h.Params.IRQOverhead + sim.Microsecond)
	if h.Acct.Busy(trace.CatInterrupt) != want {
		t.Fatalf("busy = %v, want %v", h.Acct.Busy(trace.CatInterrupt), want)
	}
}

func TestBlockOnDevice(t *testing.T) {
	env, h := newHost(1)
	sig := sim.NewSignal(env)
	bd := trace.NewBreakdown()
	var end sim.Time
	env.Spawn("driver", func(p *sim.Proc) {
		h.BlockOnDevice(p, sig, bd)
		end = p.Now()
	})
	env.Spawn("device", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		sig.Fire(nil)
	})
	env.Run(-1)
	if end != 50*sim.Microsecond {
		t.Fatalf("woke at %v", end)
	}
	if bd.Get(trace.CatIdleWait) <= 0 {
		t.Fatal("no wait recorded")
	}
	if bd.Get(trace.CatInterrupt) != h.Params.CtxSwitch {
		t.Fatalf("ctx switch = %v", bd.Get(trace.CatInterrupt))
	}
}

func TestCopyTime(t *testing.T) {
	_, h := newHost(1)
	// 48 Gbps => 6000 bytes per µs
	if got := h.CopyTime(6000); got != sim.Microsecond {
		t.Fatalf("copy time = %v", got)
	}
}

func TestFileCreateAndExtents(t *testing.T) {
	fs := NewFileSystem(1 << 30)
	f, err := fs.Create("obj1", 10*BlockSize+17)
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks() != 11 {
		t.Fatalf("blocks = %d", f.Blocks())
	}
	if got := len(f.LBAs()); got != 11 {
		t.Fatalf("LBAs = %d", got)
	}
	if _, err := fs.Create("obj1", 10); err == nil {
		t.Fatal("duplicate create allowed")
	}
	if _, err := fs.Lookup("missing"); err == nil {
		t.Fatal("lookup of missing file succeeded")
	}
}

func TestFileLBAsUniqueAcrossFiles(t *testing.T) {
	fs := NewFileSystem(1 << 30)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		f, err := fs.Create(string(rune('a'+i)), 300*BlockSize) // spans extents
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Extents()) < 2 {
			t.Fatalf("file %d has %d extents, want fragmentation", i, len(f.Extents()))
		}
		for _, lba := range f.LBAs() {
			if seen[lba] {
				t.Fatalf("LBA %d allocated twice", lba)
			}
			seen[lba] = true
		}
	}
}

func TestLBARange(t *testing.T) {
	fs := NewFileSystem(1 << 30)
	f, _ := fs.Create("f", 8*BlockSize)
	all := f.LBAs()
	got, err := f.LBARange(BlockSize, 2*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != all[1] || got[1] != all[2] {
		t.Fatalf("range = %v", got)
	}
	// Unaligned range touching three blocks.
	got, err = f.LBARange(BlockSize-1, BlockSize+2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("unaligned range = %v", got)
	}
	if _, err := f.LBARange(0, 9*BlockSize); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestVolumeFull(t *testing.T) {
	fs := NewFileSystem(10 * BlockSize)
	if _, err := fs.Create("big", 11*BlockSize); err == nil {
		t.Fatal("overcommit allowed")
	}
}

func TestPageCache(t *testing.T) {
	fs := NewFileSystem(1 << 30)
	fs.Create("f", 4*BlockSize)
	if _, ok := fs.CacheLookup("f", 0); ok {
		t.Fatal("hit on empty cache")
	}
	fs.CacheFill("f", 0, []byte("clean page"))
	data, ok := fs.CacheLookup("f", 0)
	if !ok || !bytes.Equal(data, []byte("clean page")) {
		t.Fatalf("lookup = %q %v", data, ok)
	}
	hits, misses := fs.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if len(fs.Dirty("f")) != 0 {
		t.Fatal("clean page reported dirty")
	}
	fs.CacheWrite("f", 2, []byte("dirty page"))
	if d := fs.Dirty("f"); len(d) != 1 || d[0] != 2 {
		t.Fatalf("dirty = %v", d)
	}
	if data, ok := fs.CleanPage("f", 2); !ok || !bytes.Equal(data, []byte("dirty page")) {
		t.Fatal("CleanPage failed")
	}
	if len(fs.Dirty("f")) != 0 {
		t.Fatal("page still dirty after writeback")
	}
	if fs.CachedPages() != 2 {
		t.Fatalf("cached pages = %d", fs.CachedPages())
	}
	fs.DropFile("f")
	if fs.CachedPages() != 0 {
		t.Fatal("drop did not evict")
	}
}

func TestCacheInsertCopiesData(t *testing.T) {
	fs := NewFileSystem(1 << 30)
	src := []byte("mutable")
	fs.CacheFill("f", 0, src)
	src[0] = 'X'
	data, _ := fs.CacheLookup("f", 0)
	if data[0] != 'm' {
		t.Fatal("cache aliases caller buffer")
	}
}

// Property: for any file size, the extent map covers exactly
// ceil(size/BlockSize) blocks and LBARange agrees with LBAs.
func TestExtentCoverageProperty(t *testing.T) {
	f := func(sizeRaw uint32) bool {
		size := int(sizeRaw % (4 << 20))
		fs := NewFileSystem(1 << 30)
		file, err := fs.Create("f", size)
		if err != nil {
			return false
		}
		want := (size + BlockSize - 1) / BlockSize
		if len(file.LBAs()) != want {
			return false
		}
		if size == 0 {
			return true
		}
		r, err := file.LBARange(0, size)
		return err == nil && len(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
