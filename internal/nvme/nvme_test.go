package nvme

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

func TestCommandEncodeDecode(t *testing.T) {
	c := Command{
		Opcode: OpRead, CID: 0x1234, NSID: 1,
		PRP1: 0x1_0000_0000, PRP2: 0x2_0000_0000,
		SLBA: 0xdeadbeef, NLB: 15,
	}
	b := c.Encode()
	got, err := DecodeCommand(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: %+v != %+v", got, c)
	}
	if c.Blocks() != 16 || c.Bytes() != 64<<10 {
		t.Fatalf("blocks=%d bytes=%d", c.Blocks(), c.Bytes())
	}
}

func TestCommandDecodeShort(t *testing.T) {
	if _, err := DecodeCommand(make([]byte, 10)); err == nil {
		t.Fatal("short SQE accepted")
	}
}

func TestCompletionEncodeDecode(t *testing.T) {
	for _, phase := range []bool{false, true} {
		c := Completion{Result: 7, SQHead: 3, SQID: 1, CID: 99, Status: StatusSuccess, Phase: phase}
		b := c.Encode()
		got, err := DecodeCompletion(b[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip: %+v != %+v", got, c)
		}
	}
}

// Property: command encode/decode is the identity on all field values.
func TestCommandRoundTripProperty(t *testing.T) {
	f := func(op uint8, cid uint16, nsid uint32, prp1, prp2, slba uint64, nlb uint16) bool {
		c := Command{Opcode: op, CID: cid, NSID: nsid,
			PRP1: mem.Addr(prp1), PRP2: mem.Addr(prp2), SLBA: slba, NLB: nlb}
		b := c.Encode()
		got, err := DecodeCommand(b[:])
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: completion encode/decode is the identity (status is 15
// bits on the wire).
func TestCompletionRoundTripProperty(t *testing.T) {
	f := func(res uint32, sqh, sqid, cid, status uint16, phase bool) bool {
		c := Completion{Result: res, SQHead: sqh, SQID: sqid, CID: cid,
			Status: status & 0x7fff, Phase: phase}
		b := c.Encode()
		got, err := DecodeCompletion(b[:])
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPRPs(t *testing.T) {
	mm := mem.NewMap()
	dram := mm.AddRegion("dram", mem.HostDRAM, 1<<20, true)
	list := dram.Alloc(4096, 4096)

	p1 := dram.Alloc(4096, 4096)
	a, b, err := BuildPRPs(mm, []mem.Addr{p1}, list)
	if err != nil || a != p1 || b != 0 {
		t.Fatalf("1 page: %v %v %v", a, b, err)
	}

	p2 := dram.Alloc(4096, 4096)
	a, b, err = BuildPRPs(mm, []mem.Addr{p1, p2}, list)
	if err != nil || a != p1 || b != p2 {
		t.Fatalf("2 pages: %v %v %v", a, b, err)
	}

	var pages []mem.Addr
	for i := 0; i < 5; i++ {
		pages = append(pages, dram.Alloc(4096, 4096))
	}
	a, b, err = BuildPRPs(mm, pages, list)
	if err != nil || a != pages[0] || b != list {
		t.Fatalf("5 pages: %v %v %v", a, b, err)
	}
	got := ReadPRPList(mm, list, 4)
	for i, pg := range pages[1:] {
		if got[i] != pg {
			t.Fatalf("PRP list entry %d = %#x, want %#x", i, got[i], pg)
		}
	}

	if _, _, err := BuildPRPs(mm, nil, list); err == nil {
		t.Fatal("empty page list accepted")
	}
}

func TestDataPagesErrors(t *testing.T) {
	mm := mem.NewMap()
	if _, err := DataPages(mm, Command{NLB: 1, PRP1: 100, PRP2: 0}); err == nil {
		t.Fatal("2-block without PRP2 accepted")
	}
	if _, err := DataPages(mm, Command{NLB: 7, PRP1: 100, PRP2: 0}); err == nil {
		t.Fatal("8-block without PRP list accepted")
	}
}

// testbed wires one SSD to a host with a driver-style ring.
type testbed struct {
	env  *sim.Env
	mm   *mem.Map
	fab  *pcie.Fabric
	ssd  *SSD
	ring *Ring
	dram *mem.Region
}

func newTestbed(t *testing.T, entries int, msi bool) *testbed {
	t.Helper()
	env := sim.NewEnv()
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	hostPort := fab.AddPort("root-complex")
	dram := mm.AddRegion("host-dram", mem.HostDRAM, 64<<20, true)
	fab.Attach(hostPort, dram)
	ssd := NewSSD(env, fab, "nvme0", DefaultParams())

	sq := mm.AddRegion("sq0", mem.HostDRAM, uint64(entries*CommandSize), true)
	cq := mm.AddRegion("cq0", mem.HostDRAM, uint64(entries*CompletionSize), true)
	fab.Attach(hostPort, sq)
	fab.Attach(hostPort, cq)
	sqdb, cqdb := ssd.DoorbellAddrs(1)
	cfg := RingConfig{QID: 1, Entries: entries, SQ: sq, CQ: cq, SQDoorbell: sqdb, CQDoorbell: cqdb}
	ring := NewRing(fab, cfg)
	vector := -1
	if msi {
		vector = 1
		fab.OnMSI(vector, func() { ring.ProcessCompletions() })
	} else {
		cq.SetWriteHook(func(off uint64, n int) { ring.ProcessCompletions() })
	}
	ssd.CreateQueuePair(cfg, vector)
	return &testbed{env: env, mm: mm, fab: fab, ssd: ssd, ring: ring, dram: dram}
}

// issue submits a command and returns a signal fired with its status.
func (tb *testbed) issue(cmd Command) *sim.Signal {
	sig := sim.NewSignal(tb.env)
	if _, err := tb.ring.Submit(cmd, func(cpl Completion) { sig.Fire(cpl.Status) }); err != nil {
		panic(err)
	}
	tb.ring.RingDoorbell()
	return sig
}

func TestReadSingleBlock(t *testing.T) {
	tb := newTestbed(t, 64, true)
	want := bytes.Repeat([]byte("dcs!"), BlockSize/4)
	tb.ssd.Preload(42, want)
	dst := tb.dram.Alloc(BlockSize, BlockSize)
	var status uint16
	tb.env.Spawn("driver", func(p *sim.Proc) {
		sig := tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, SLBA: 42, NLB: 0})
		status = sig.Wait(p).(uint16)
	})
	tb.env.Run(-1)
	if status != StatusSuccess {
		t.Fatalf("status = %#x", status)
	}
	if got := tb.mm.Read(dst, BlockSize); !bytes.Equal(got, want) {
		t.Fatal("read data mismatch")
	}
}

func TestWriteThenReadBack(t *testing.T) {
	tb := newTestbed(t, 64, true)
	payload := bytes.Repeat([]byte{0xAB}, 2*BlockSize)
	src := tb.dram.Alloc(2*BlockSize, BlockSize)
	tb.mm.Write(src, payload)
	dst := tb.dram.Alloc(2*BlockSize, BlockSize)
	tb.env.Spawn("driver", func(p *sim.Proc) {
		w := tb.issue(Command{Opcode: OpWrite, NSID: 1, PRP1: src, PRP2: src + BlockSize, SLBA: 100, NLB: 1})
		if s := w.Wait(p).(uint16); s != StatusSuccess {
			t.Errorf("write status %#x", s)
		}
		r := tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, PRP2: dst + BlockSize, SLBA: 100, NLB: 1})
		if s := r.Wait(p).(uint16); s != StatusSuccess {
			t.Errorf("read status %#x", s)
		}
	})
	tb.env.Run(-1)
	if got := tb.mm.Read(dst, 2*BlockSize); !bytes.Equal(got, payload) {
		t.Fatal("write/read round trip mismatch")
	}
	if got := tb.ssd.PeekBlock(100); !bytes.Equal(got, payload[:BlockSize]) {
		t.Fatal("flash content mismatch")
	}
}

func TestReadWithPRPList(t *testing.T) {
	tb := newTestbed(t, 64, true)
	const blocks = 16
	want := make([]byte, blocks*BlockSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	tb.ssd.Preload(500, want)
	// Scattered destination pages.
	var pages []mem.Addr
	for i := 0; i < blocks; i++ {
		pages = append(pages, tb.dram.Alloc(BlockSize, BlockSize))
		tb.dram.Alloc(BlockSize, BlockSize) // hole between pages
	}
	list := tb.dram.Alloc(4096, 4096)
	prp1, prp2, err := BuildPRPs(tb.mm, pages, list)
	if err != nil {
		t.Fatal(err)
	}
	tb.env.Spawn("driver", func(p *sim.Proc) {
		sig := tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: prp1, PRP2: prp2, SLBA: 500, NLB: blocks - 1})
		if s := sig.Wait(p).(uint16); s != StatusSuccess {
			t.Errorf("status %#x", s)
		}
	})
	tb.env.Run(-1)
	for i, pg := range pages {
		if got := tb.mm.Read(pg, BlockSize); !bytes.Equal(got, want[i*BlockSize:(i+1)*BlockSize]) {
			t.Fatalf("page %d mismatch", i)
		}
	}
}

func TestReadUnwrittenReturnsZeroes(t *testing.T) {
	tb := newTestbed(t, 64, true)
	dst := tb.dram.Alloc(BlockSize, BlockSize)
	tb.mm.Write(dst, bytes.Repeat([]byte{0xFF}, BlockSize))
	tb.env.Spawn("driver", func(p *sim.Proc) {
		tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, SLBA: 999999, NLB: 0}).Wait(p)
	})
	tb.env.Run(-1)
	if got := tb.mm.Read(dst, BlockSize); !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("unwritten block not zeroes")
	}
}

func TestInvalidOpcodeStatus(t *testing.T) {
	tb := newTestbed(t, 64, true)
	var status uint16
	tb.env.Spawn("driver", func(p *sim.Proc) {
		status = tb.issue(Command{Opcode: 0x7F, NSID: 1, PRP1: tb.dram.Base, SLBA: 0, NLB: 0}).Wait(p).(uint16)
	})
	tb.env.Run(-1)
	if status != StatusInvalidOp {
		t.Fatalf("status = %#x", status)
	}
}

func TestOversizeCommandRejected(t *testing.T) {
	tb := newTestbed(t, 64, true)
	var status uint16
	tb.env.Spawn("driver", func(p *sim.Proc) {
		status = tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: tb.dram.Base, SLBA: 0, NLB: MaxBlocksPerCmd}).Wait(p).(uint16)
	})
	tb.env.Run(-1)
	if status != StatusInvalidPRP {
		t.Fatalf("status = %#x", status)
	}
}

func TestCompletionByCQWriteHookNoMSI(t *testing.T) {
	// HDC Engine mode: no interrupt, the submitter snoops its CQ memory.
	tb := newTestbed(t, 64, false)
	tb.ssd.Preload(7, bytes.Repeat([]byte{1}, BlockSize))
	dst := tb.dram.Alloc(BlockSize, BlockSize)
	done := false
	tb.env.Spawn("driver", func(p *sim.Proc) {
		tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, SLBA: 7, NLB: 0}).Wait(p)
		done = true
	})
	tb.env.Run(-1)
	if !done {
		t.Fatal("completion not observed without MSI")
	}
}

func TestManyCommandsWrapRing(t *testing.T) {
	tb := newTestbed(t, 8, true) // tiny ring forces wrap + phase flips
	const n = 100
	completed := 0
	tb.env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			for tb.ring.Full() {
				p.Sleep(5 * sim.Microsecond)
			}
			dst := tb.dram.Alloc(BlockSize, BlockSize)
			sig := tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, SLBA: uint64(i), NLB: 0})
			_ = sig
			completed++
		}
		// Drain.
		for tb.ring.Outstanding() > 0 {
			p.Sleep(10 * sim.Microsecond)
		}
	})
	tb.env.Run(-1)
	if completed != n {
		t.Fatalf("submitted %d/%d", completed, n)
	}
	if tb.ring.Outstanding() != 0 {
		t.Fatalf("%d still outstanding", tb.ring.Outstanding())
	}
	cmds, _, _ := tb.ssd.Stats()
	if cmds != n {
		t.Fatalf("device completed %d", cmds)
	}
}

func TestConcurrentCommandsOverlap(t *testing.T) {
	// With 4 channels, 4 reads should take much less than 4× one read.
	one := func(n int) sim.Time {
		tb := newTestbed(t, 64, true)
		var last sim.Time
		tb.env.Spawn("driver", func(p *sim.Proc) {
			sigs := make([]*sim.Signal, n)
			for i := 0; i < n; i++ {
				dst := tb.dram.Alloc(BlockSize, BlockSize)
				sigs[i] = tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, SLBA: uint64(i), NLB: 0})
			}
			for _, s := range sigs {
				s.Wait(p)
			}
			last = p.Now()
		})
		tb.env.Run(-1)
		return last
	}
	t1, t4 := one(1), one(4)
	if t4 >= 3*t1 {
		t.Fatalf("no overlap: 1 cmd %v, 4 cmds %v", t1, t4)
	}
}

func TestRingFullReported(t *testing.T) {
	tb := newTestbed(t, 4, true)
	tb.env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := tb.ring.Submit(Command{Opcode: OpRead, NSID: 1, PRP1: tb.dram.Base, SLBA: 0}, nil); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		if !tb.ring.Full() {
			t.Error("ring not full at entries-1")
		}
		if _, err := tb.ring.Submit(Command{Opcode: OpRead, NSID: 1, PRP1: tb.dram.Base}, nil); err == nil {
			t.Error("submit to full ring succeeded")
		}
	})
	tb.env.Run(20 * sim.Microsecond)
}

func TestThroughputApproachesFlashBandwidth(t *testing.T) {
	tb := newTestbed(t, 256, true)
	const total = 64 // 64 × 64 KB = 4 MB
	var end sim.Time
	tb.env.Spawn("driver", func(p *sim.Proc) {
		outstanding := 0
		done := sim.NewQueue[int](tb.env, "done")
		issued := 0
		for issued < total || outstanding > 0 {
			for issued < total && outstanding < 16 && !tb.ring.Full() {
				var pages []mem.Addr
				for b := 0; b < 16; b++ {
					pages = append(pages, tb.dram.Alloc(BlockSize, BlockSize))
				}
				list := tb.dram.Alloc(4096, 4096)
				prp1, prp2, _ := BuildPRPs(tb.mm, pages, list)
				tb.ring.Submit(Command{Opcode: OpRead, NSID: 1, PRP1: prp1, PRP2: prp2,
					SLBA: uint64(issued * 16), NLB: 15}, func(Completion) { done.Put(1) })
				issued++
				outstanding++
			}
			tb.ring.RingDoorbell()
			done.Get(p)
			outstanding--
		}
		end = p.Now()
	})
	tb.env.Run(-1)
	gbps := float64(total*64<<10) * 8 / end.Seconds() / 1e9
	// Internal flash read bandwidth is 17.2 Gbps; expect to get most
	// of it with queue depth 16.
	if gbps < 12 || gbps > 17.3 {
		t.Fatalf("read throughput %.1f Gbps, want ~17", gbps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		tb := newTestbed(t, 32, true)
		var log []string
		tb.env.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				dst := tb.dram.Alloc(BlockSize, BlockSize)
				s := tb.issue(Command{Opcode: OpRead, NSID: 1, PRP1: dst, SLBA: uint64(i), NLB: 0})
				s.Wait(p)
				log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
			}
		})
		tb.env.Run(-1)
		return fmt.Sprint(log)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}

func TestFlushCommand(t *testing.T) {
	tb := newTestbed(t, 64, true)
	var status uint16
	var took sim.Time
	tb.env.Spawn("driver", func(p *sim.Proc) {
		start := p.Now()
		status = tb.issue(Command{Opcode: OpFlush, NSID: 1}).Wait(p).(uint16)
		took = p.Now() - start
	})
	tb.env.Run(-1)
	if status != StatusSuccess {
		t.Fatalf("flush status %#x", status)
	}
	if took < DefaultParams().WriteLatency {
		t.Fatalf("flush took %v, under the media latency", took)
	}
}
