package nvme

import (
	"fmt"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
)

// RingConfig describes one submission/completion queue pair from the
// submitter's point of view. SQ and CQ are regions owned by the
// submitter (host DRAM for the kernel driver, FPGA BRAM for the HDC
// Engine's NVMe controller); the doorbells live in the SSD's BAR.
type RingConfig struct {
	QID        uint16
	Entries    int
	SQ         *mem.Region
	CQ         *mem.Region
	SQDoorbell mem.Addr
	CQDoorbell mem.Addr
}

// Ring is the submitter side of a queue pair: it formats SQEs into
// queue memory, rings doorbells, and consumes CQEs by phase bit,
// dispatching each to the callback registered at submit time.
type Ring struct {
	cfg     RingConfig
	fab     *pcie.Fabric
	sqTail  int
	cqHead  int
	phase   bool
	nextCID uint16
	pending map[uint16]func(Completion)
}

// NewRing returns a ring over cfg. The queue regions must hold
// Entries SQEs and CQEs respectively.
func NewRing(fab *pcie.Fabric, cfg RingConfig) *Ring {
	if cfg.Entries < 2 {
		panic(fmt.Sprintf("nvme: ring %d too small (%d entries)", cfg.QID, cfg.Entries))
	}
	if cfg.SQ.Size < uint64(cfg.Entries*CommandSize) {
		panic(fmt.Sprintf("nvme: SQ region %s too small", cfg.SQ.Name))
	}
	if cfg.CQ.Size < uint64(cfg.Entries*CompletionSize) {
		panic(fmt.Sprintf("nvme: CQ region %s too small", cfg.CQ.Name))
	}
	return &Ring{cfg: cfg, fab: fab, phase: true, pending: map[uint16]func(Completion){}}
}

// Config returns the ring configuration.
func (r *Ring) Config() RingConfig { return r.cfg }

// Outstanding returns the number of commands submitted but not yet
// completed.
func (r *Ring) Outstanding() int { return len(r.pending) }

// Full reports whether the submission queue has no free slot (one
// slot is sacrificed to distinguish full from empty, per spec).
func (r *Ring) Full() bool { return len(r.pending) >= r.cfg.Entries-1 }

// Submit writes cmd into the next SQE slot and registers onDone for
// its completion. It returns the assigned CID. The caller must ring
// the doorbell (possibly batching several submissions per ring).
//
//dcslint:hotpath nvme_read_4k
func (r *Ring) Submit(cmd Command, onDone func(Completion)) (uint16, error) {
	if r.Full() {
		return 0, fmt.Errorf("nvme: SQ %d full", r.cfg.QID)
	}
	cid := r.nextCID
	r.nextCID++
	for {
		if _, busy := r.pending[cid]; !busy {
			break
		}
		cid = r.nextCID
		r.nextCID++
	}
	cmd.CID = cid
	sqe := cmd.Encode()
	r.cfg.SQ.WriteAt(uint64(r.sqTail)*CommandSize, sqe[:])
	r.sqTail = (r.sqTail + 1) % r.cfg.Entries
	r.pending[cid] = onDone
	return cid, nil
}

// RingDoorbell posts the current SQ tail to the device.
//
//dcslint:hotpath
func (r *Ring) RingDoorbell() {
	r.fab.PostedWrite(r.cfg.SQDoorbell, uint64(r.sqTail))
}

// ProcessCompletions consumes every CQE whose phase bit matches the
// expected phase, invokes the registered callbacks, advances the CQ
// head, and rings the CQ head doorbell. It returns the number of
// completions consumed. Safe to call from a write hook or IRQ path.
//
//dcslint:hotpath
func (r *Ring) ProcessCompletions() int {
	n := 0
	var raw [CompletionSize]byte
	for {
		r.cfg.CQ.ReadAt(uint64(r.cqHead)*CompletionSize, raw[:])
		cpl, err := DecodeCompletion(raw[:])
		if err != nil || cpl.Phase != r.phase {
			break
		}
		cb, ok := r.pending[cpl.CID]
		if !ok {
			panic(fmt.Sprintf("nvme: completion for unknown CID %d on ring %d", cpl.CID, r.cfg.QID))
		}
		delete(r.pending, cpl.CID)
		r.cqHead++
		if r.cqHead == r.cfg.Entries {
			r.cqHead = 0
			r.phase = !r.phase
		}
		n++
		if cb != nil {
			//dcslint:allow noalloc completion callback supplied at Submit; benched paths install non-capturing handlers
			cb(cpl)
		}
	}
	if n > 0 {
		r.fab.PostedWrite(r.cfg.CQDoorbell, uint64(r.cqHead))
	}
	return n
}
