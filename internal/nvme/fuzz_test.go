package nvme

import (
	"testing"

	"dcsctrl/internal/mem"
)

// FuzzCommandRoundTrip checks that any command survives the 64-byte
// SQE wire format: encode then decode yields the same fields.
func FuzzCommandRoundTrip(f *testing.F) {
	f.Add(uint8(OpRead), uint16(7), uint32(1), uint64(0x1000), uint64(0x2000), uint64(42), uint16(7))
	f.Add(uint8(OpWrite), uint16(0xFFFF), uint32(0xFFFFFFFF), uint64(0), uint64(1)<<63, uint64(1)<<40, uint16(0))
	f.Add(uint8(OpFlush), uint16(0), uint32(0), uint64(0), uint64(0), uint64(0), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, opcode uint8, cid uint16, nsid uint32, prp1, prp2, slba uint64, nlb uint16) {
		in := Command{
			Opcode: opcode, CID: cid, NSID: nsid,
			PRP1: mem.Addr(prp1), PRP2: mem.Addr(prp2),
			SLBA: slba, NLB: nlb,
		}
		enc := in.Encode()
		out, err := DecodeCommand(enc[:])
		if err != nil {
			t.Fatalf("decode of encoded command failed: %v", err)
		}
		if out != in {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	})
}

// FuzzCommandDecode feeds arbitrary bytes to the SQE parser: it must
// never panic, and anything it accepts must re-encode losslessly.
func FuzzCommandDecode(f *testing.F) {
	seed := Command{Opcode: OpRead, CID: 3, NSID: 1, SLBA: 9, NLB: 1}
	enc := seed.Encode()
	f.Add(enc[:])
	f.Add([]byte{})
	f.Add(make([]byte, CommandSize))
	f.Add(make([]byte, CommandSize-1))
	f.Fuzz(func(t *testing.T, b []byte) {
		cmd, err := DecodeCommand(b)
		if err != nil {
			return
		}
		re := cmd.Encode()
		cmd2, err := DecodeCommand(re[:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if cmd2 != cmd {
			t.Fatalf("re-decode mismatch:\n in: %+v\nout: %+v", cmd, cmd2)
		}
	})
}

// FuzzCompletionRoundTrip checks the 16-byte CQE wire format. The
// status field shares its word with the phase bit, so only 15 bits
// survive — the fuzzer masks accordingly.
func FuzzCompletionRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint16(1), uint16(2), uint16(3), uint16(StatusSuccess), true)
	f.Add(uint32(0xDEADBEEF), uint16(0xFFFF), uint16(0), uint16(0xABCD), uint16(StatusMediaErr), false)
	f.Fuzz(func(t *testing.T, result uint32, sqHead, sqID, cid, status uint16, phase bool) {
		in := Completion{
			Result: result, SQHead: sqHead, SQID: sqID, CID: cid,
			Status: status & 0x7FFF, Phase: phase,
		}
		enc := in.Encode()
		out, err := DecodeCompletion(enc[:])
		if err != nil {
			t.Fatalf("decode of encoded completion failed: %v", err)
		}
		if out != in {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	})
}
