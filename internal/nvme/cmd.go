// Package nvme implements the NVM Express machinery the testbed needs
// at wire-format fidelity: 64-byte submission commands, 16-byte
// completions with phase bits, PRP lists, submission/completion rings
// with doorbells, and an SSD device model with a flash backend that
// stores real bytes (calibrated to the Intel 750 of Table V).
//
// The same ring code serves both submitters the paper compares: the
// host NVMe driver (software control path) and the HDC Engine's NVMe
// device controller (hardware control path, rings in FPGA BRAM). Who
// pays the submission cost — CPU cycles or FPGA cycles — is decided by
// the caller, which is precisely the paper's point.
package nvme

import (
	"encoding/binary"
	"fmt"

	"dcsctrl/internal/mem"
)

// Command sizes and block geometry.
const (
	CommandSize    = 64   // submission queue entry size
	CompletionSize = 16   // completion queue entry size
	BlockSize      = 4096 // logical block size
	// MaxBlocksPerCmd caps one command at 16 blocks (64 KB), matching
	// the HDC Engine's chunk size; longer transfers use multiple
	// commands with PRP lists (§IV-C).
	MaxBlocksPerCmd = 16
)

// Opcodes (NVM command set).
const (
	OpFlush uint8 = 0x00
	OpWrite uint8 = 0x01
	OpRead  uint8 = 0x02
)

// Command is a decoded NVMe submission queue entry.
type Command struct {
	Opcode uint8
	CID    uint16
	NSID   uint32
	PRP1   mem.Addr
	PRP2   mem.Addr
	SLBA   uint64
	NLB    uint16 // 0-based: NLB=0 means one block
}

// Blocks returns the number of logical blocks the command covers.
func (c *Command) Blocks() int { return int(c.NLB) + 1 }

// Bytes returns the transfer length in bytes.
func (c *Command) Bytes() int { return c.Blocks() * BlockSize }

// Encode serializes the command into the 64-byte SQE wire format
// (the field offsets of NVMe 1.2 §4.2).
func (c *Command) Encode() [CommandSize]byte {
	var b [CommandSize]byte
	b[0] = c.Opcode
	binary.LittleEndian.PutUint16(b[2:], c.CID)
	binary.LittleEndian.PutUint32(b[4:], c.NSID)
	binary.LittleEndian.PutUint64(b[24:], uint64(c.PRP1))
	binary.LittleEndian.PutUint64(b[32:], uint64(c.PRP2))
	binary.LittleEndian.PutUint64(b[40:], c.SLBA) // CDW10-11
	binary.LittleEndian.PutUint16(b[48:], c.NLB)  // CDW12 bits 15:0
	return b
}

// DecodeCommand parses a 64-byte SQE.
func DecodeCommand(b []byte) (Command, error) {
	if len(b) < CommandSize {
		return Command{}, fmt.Errorf("nvme: short SQE (%d bytes)", len(b))
	}
	return Command{
		Opcode: b[0],
		CID:    binary.LittleEndian.Uint16(b[2:]),
		NSID:   binary.LittleEndian.Uint32(b[4:]),
		PRP1:   mem.Addr(binary.LittleEndian.Uint64(b[24:])),
		PRP2:   mem.Addr(binary.LittleEndian.Uint64(b[32:])),
		SLBA:   binary.LittleEndian.Uint64(b[40:]),
		NLB:    binary.LittleEndian.Uint16(b[48:]),
	}, nil
}

// Status codes (generic command status, plus the media-error status
// of the media-errors status-code type).
const (
	StatusSuccess     uint16 = 0x0
	StatusInvalidOp   uint16 = 0x1
	StatusInvalidPRP  uint16 = 0x13
	StatusInternalErr uint16 = 0x6
	// StatusMediaErr is an uncorrectable media error (SCT 2h, SC 81h
	// packed into the 8-bit-status convention the testbed uses). The
	// command failed on this attempt but did not move or corrupt
	// data, so re-issuing it is safe.
	StatusMediaErr uint16 = 0x81
)

// Retryable reports whether a completion status is transient: the
// command may succeed if re-issued. Protocol errors (bad opcode, bad
// PRP) are deterministic and never retried.
func Retryable(status uint16) bool { return status == StatusMediaErr }

// Completion is a decoded NVMe completion queue entry.
type Completion struct {
	Result uint32 // command-specific result (DW0)
	SQHead uint16
	SQID   uint16
	CID    uint16
	Status uint16 // status code, excluding the phase bit
	Phase  bool
}

// Encode serializes the completion into the 16-byte CQE wire format.
func (c *Completion) Encode() [CompletionSize]byte {
	var b [CompletionSize]byte
	binary.LittleEndian.PutUint32(b[0:], c.Result)
	binary.LittleEndian.PutUint16(b[8:], c.SQHead)
	binary.LittleEndian.PutUint16(b[10:], c.SQID)
	binary.LittleEndian.PutUint16(b[12:], c.CID)
	sf := c.Status << 1
	if c.Phase {
		sf |= 1
	}
	binary.LittleEndian.PutUint16(b[14:], sf)
	return b
}

// DecodeCompletion parses a 16-byte CQE.
func DecodeCompletion(b []byte) (Completion, error) {
	if len(b) < CompletionSize {
		return Completion{}, fmt.Errorf("nvme: short CQE (%d bytes)", len(b))
	}
	sf := binary.LittleEndian.Uint16(b[14:])
	return Completion{
		Result: binary.LittleEndian.Uint32(b[0:]),
		SQHead: binary.LittleEndian.Uint16(b[8:]),
		SQID:   binary.LittleEndian.Uint16(b[10:]),
		CID:    binary.LittleEndian.Uint16(b[12:]),
		Status: sf >> 1,
		Phase:  sf&1 == 1,
	}, nil
}

// BuildPRPs lays out the PRP fields for a transfer covering the given
// data pages. Following NVMe 1.2 §4.3: one page goes in PRP1; two
// pages use PRP1+PRP2 directly; more than two put a PRP list in
// listBuf (which must hold 8 bytes per remaining page) and point PRP2
// at it. It returns PRP1, PRP2.
func BuildPRPs(mm *mem.Map, pages []mem.Addr, listBuf mem.Addr) (mem.Addr, mem.Addr, error) {
	switch {
	case len(pages) == 0:
		return 0, 0, fmt.Errorf("nvme: no data pages")
	case len(pages) == 1:
		return pages[0], 0, nil
	case len(pages) == 2:
		return pages[0], pages[1], nil
	default:
		// Commands are capped at MaxBlocksPerCmd pages, so the list
		// fits a stack buffer; longer lists (none in the testbed) fall
		// back to the heap.
		var stack [8 * (MaxBlocksPerCmd - 1)]byte
		buf := stack[:]
		if need := 8 * (len(pages) - 1); need <= len(buf) {
			buf = buf[:need]
		} else {
			buf = make([]byte, need)
		}
		for i, pg := range pages[1:] {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(pg))
		}
		mm.Write(listBuf, buf)
		return pages[0], listBuf, nil
	}
}

// ReadPRPList decodes n page addresses from a PRP list at addr.
func ReadPRPList(mm *mem.Map, addr mem.Addr, n int) []mem.Addr {
	return AppendPRPList(make([]mem.Addr, 0, n), mm, addr, n)
}

// AppendPRPList is ReadPRPList into a caller-owned slice: it decodes
// straight out of a memory view and allocates nothing when dst has
// capacity.
func AppendPRPList(dst []mem.Addr, mm *mem.Map, addr mem.Addr, n int) []mem.Addr {
	raw := mm.View(addr, 8*n)
	for i := 0; i < n; i++ {
		dst = append(dst, mem.Addr(binary.LittleEndian.Uint64(raw[8*i:])))
	}
	return dst
}

// DataPages resolves a command's PRP fields to the full page list.
func DataPages(mm *mem.Map, cmd Command) ([]mem.Addr, error) {
	return AppendDataPages(nil, mm, cmd)
}

// AppendDataPages is DataPages into a caller-owned scratch slice, the
// allocation-free form device models use per command.
func AppendDataPages(dst []mem.Addr, mm *mem.Map, cmd Command) ([]mem.Addr, error) {
	n := cmd.Blocks()
	switch {
	case n == 1:
		return append(dst, cmd.PRP1), nil
	case n == 2:
		if cmd.PRP2 == 0 {
			return nil, fmt.Errorf("nvme: 2-block command without PRP2")
		}
		return append(dst, cmd.PRP1, cmd.PRP2), nil
	default:
		if cmd.PRP2 == 0 {
			return nil, fmt.Errorf("nvme: %d-block command without PRP list", n)
		}
		dst = append(dst, cmd.PRP1)
		return AppendPRPList(dst, mm, cmd.PRP2, n-1), nil
	}
}
