package nvme

import "testing"

// SQE/CQE marshalling runs once per simulated NVMe command on both the
// host driver path and the HDC Engine's hardware controller; the ring
// loops rely on it staying allocation-free.

func TestCommandCodecZeroAlloc(t *testing.T) {
	cmd := Command{Opcode: OpRead, CID: 7, NSID: 1, PRP1: 0x1000, PRP2: 0x2000, SLBA: 42, NLB: 7}
	var sink Command
	if n := testing.AllocsPerRun(100, func() {
		b := cmd.Encode()
		got, err := DecodeCommand(b[:])
		if err != nil {
			panic(err)
		}
		sink = got
	}); n != 0 {
		t.Fatalf("command encode/decode allocates %v per run", n)
	}
	_ = sink
}

func TestCompletionCodecZeroAlloc(t *testing.T) {
	cpl := Completion{Result: 3, SQHead: 9, SQID: 1, CID: 7, Status: StatusSuccess, Phase: true}
	var sink Completion
	if n := testing.AllocsPerRun(100, func() {
		b := cpl.Encode()
		got, err := DecodeCompletion(b[:])
		if err != nil {
			panic(err)
		}
		sink = got
	}); n != 0 {
		t.Fatalf("completion encode/decode allocates %v per run", n)
	}
	_ = sink
}
