package nvme

import (
	"fmt"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). A quiescent SSD has no command
// in any stage: every SQE fetched (sqHead == dbTail), no completion
// pending a CQ slot, every CQE consumed and the CQ head doorbell
// delivered (cqHeadSee == cqTail). What remains is ring positions and
// phase bits, flash content, the staging slot free list (order is
// schedule state: which slot a future command gets decides DMA
// extents), bandwidth/execution accounting, and counters. The exec
// worker pool population is schedule state too: a Put into a pool
// with parked workers can chain-wake them (spurious re-parking
// dispatches a fresh Spawn never causes), so the snapshot records the
// idle-worker count and the restore path primes that many parked
// workers (PrimeExecPool).

// SnapSave encodes the device state. QPs iterate in sorted-QID order
// so encode order never leaks map iteration order.
func (s *SSD) SnapSave(w *snap.Writer) error {
	slots := sim.CheckpointQueue(s.slotQ)
	w.U32(uint32(len(slots)))
	for _, a := range slots {
		w.U64(uint64(a))
	}
	if err := sim.CheckpointBWInto(w, s.readBW); err != nil {
		return fmt.Errorf("%s: %w", s.Name, err)
	}
	if err := sim.CheckpointBWInto(w, s.writeBW); err != nil {
		return fmt.Errorf("%s: %w", s.Name, err)
	}
	if err := sim.CheckpointAccumInto(w, s.exec); err != nil {
		return fmt.Errorf("%s: %w", s.Name, err)
	}
	w.I64(s.cmdsDone)
	w.I64(s.bytesRd)
	w.I64(s.bytesWr)
	w.Int(s.execIdle)

	lbas := sim.SortedKeys(s.flash)
	w.U32(uint32(len(lbas)))
	flashBytes := 0
	for _, lba := range lbas {
		flashBytes += 16 + len(s.flash[lba])
	}
	w.Grow(flashBytes)
	for _, lba := range lbas {
		w.U64(lba)
		w.Bytes(s.flash[lba])
	}

	qids := sim.SortedKeys(s.qps)
	w.U32(uint32(len(qids)))
	for _, qid := range qids {
		qp := s.qps[qid]
		if qp.sqHead != qp.dbTail {
			return fmt.Errorf("nvme: checkpoint of %s QP %d with unfetched SQEs (head=%d tail=%d)", s.Name, qid, qp.sqHead, qp.dbTail)
		}
		if len(qp.cplPend) != 0 {
			return fmt.Errorf("nvme: checkpoint of %s QP %d with %d pending completions", s.Name, qid, len(qp.cplPend))
		}
		if qp.kickQueued {
			return fmt.Errorf("nvme: checkpoint of %s QP %d with a queued doorbell kick", s.Name, qid)
		}
		if qp.cqHeadSee != qp.cqTail {
			return fmt.Errorf("nvme: checkpoint of %s QP %d with unconsumed CQEs (seen=%d tail=%d)", s.Name, qid, qp.cqHeadSee, qp.cqTail)
		}
		w.U16(qid)
		w.Int(qp.sqHead)
		w.Int(qp.cqTail)
		w.Bool(qp.phase)
	}
	return nil
}

// SnapLoad overlays the captured state onto a freshly built SSD with
// identical queue-pair configuration.
func (s *SSD) SnapLoad(r *snap.Reader) error {
	nSlots := int(r.U32())
	slots := make([]mem.Addr, nSlots)
	for i := range slots {
		slots[i] = mem.Addr(r.U64())
	}
	if err := r.Err(); err != nil {
		return err
	}
	if err := sim.RestoreQueue(s.slotQ, slots); err != nil {
		return err
	}
	if err := sim.RestoreBWFrom(r, s.readBW); err != nil {
		return err
	}
	if err := sim.RestoreBWFrom(r, s.writeBW); err != nil {
		return err
	}
	if err := sim.RestoreAccumFrom(r, s.exec); err != nil {
		return err
	}
	s.cmdsDone, s.bytesRd, s.bytesWr = r.I64(), r.I64(), r.I64()
	idle := r.Int()

	nBlocks := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	s.PrimeExecPool(idle)
	s.flash = make(map[uint64][]byte, nBlocks)
	for i := 0; i < nBlocks; i++ {
		lba := r.U64()
		blk := r.Bytes()
		if err := r.Err(); err != nil {
			return err
		}
		if len(blk) != BlockSize {
			return fmt.Errorf("nvme: snapshot block %d is %d bytes", lba, len(blk))
		}
		s.flash[lba] = blk
	}

	nQP := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nQP != len(s.qps) {
		return fmt.Errorf("nvme: snapshot has %d QPs, %s has %d", nQP, s.Name, len(s.qps))
	}
	for i := 0; i < nQP; i++ {
		qid := r.U16()
		sqHead, cqTail := r.Int(), r.Int()
		phase := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		qp, ok := s.qps[qid]
		if !ok {
			return fmt.Errorf("nvme: snapshot QP %d absent on %s", qid, s.Name)
		}
		qp.sqHead, qp.dbTail = sqHead, sqHead
		qp.cqTail, qp.cqHeadSee = cqTail, cqTail
		qp.phase = phase
	}
	return r.Err()
}

// SnapSave encodes the submitter-side ring positions. A quiescent
// submitter has no command outstanding.
func (r *Ring) SnapSave(w *snap.Writer) error {
	if len(r.pending) != 0 {
		return fmt.Errorf("nvme: checkpoint of ring %d with %d outstanding commands", r.cfg.QID, len(r.pending))
	}
	w.Int(r.sqTail)
	w.Int(r.cqHead)
	w.Bool(r.phase)
	w.U16(r.nextCID)
	return nil
}

// SnapLoad overlays the captured ring positions.
func (r *Ring) SnapLoad(rd *snap.Reader) error {
	if len(r.pending) != 0 {
		return fmt.Errorf("nvme: restore into ring %d with %d outstanding commands", r.cfg.QID, len(r.pending))
	}
	r.sqTail = rd.Int()
	r.cqHead = rd.Int()
	r.phase = rd.Bool()
	r.nextCID = rd.U16()
	return rd.Err()
}
