package nvme

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Params are the SSD performance characteristics, defaulting to the
// Intel 750 400 GB of Table V.
type Params struct {
	ReadLatency  sim.Time // media access latency per read command
	WriteLatency sim.Time // media program latency per write command
	ReadBps      float64  // internal read bandwidth (17.2 Gbps)
	WriteBps     float64  // internal write bandwidth (7.2 Gbps)
	Channels     int      // concurrently executing commands
	CmdDecode    sim.Time // on-device command decode/setup
	// Faults injects media errors (uncorrectable reads, failed
	// programs) reported via CQ status; nil disables injection.
	Faults *fault.Injector
}

// DefaultParams return the Intel 750-calibrated values.
func DefaultParams() Params {
	return Params{
		ReadLatency:  20 * sim.Microsecond,
		WriteLatency: 20 * sim.Microsecond,
		ReadBps:      17.2e9,
		WriteBps:     7.2e9,
		Channels:     4,
		CmdDecode:    500 * sim.Nanosecond,
	}
}

// doorbell register layout inside the SSD BAR: 32 bytes per queue
// pair, SQ tail at +0 and CQ head at +16.
const dbStride = 32

// SSD is the NVMe device model: it owns a doorbell BAR and an
// internal (non-P2P-addressable) staging buffer, fetches SQEs by DMA,
// executes them against a flash backend holding real block contents,
// moves data to/from PRP pages by DMA, posts CQEs, and optionally
// raises MSI.
type SSD struct {
	Name string

	env    *sim.Env
	fab    *pcie.Fabric
	params Params
	port   *pcie.Port

	Doorbells *mem.Region
	staging   *mem.Region
	slotQ     *sim.Queue[mem.Addr] // free 64 KB staging slots

	readBW  *sim.BandwidthServer
	writeBW *sim.BandwidthServer
	exec    *sim.Resource // concurrent command execution (channels)

	flash map[uint64][]byte
	qps   map[uint16]*devQP

	cmdsDone int64
	bytesRd  int64
	bytesWr  int64
}

type devQP struct {
	cfg       RingConfig
	msiVector int
	sqHead    int
	dbTail    int // last SQ tail doorbell value
	cqTail    int
	phase     bool
	cqHeadSee int           // last CQ head doorbell value
	sqKick    *sim.Cond     // SQ tail doorbell arrived
	cqKick    *sim.Cond     // CQ head doorbell arrived
	sqeBuf    mem.Addr      // per-QP staging for fetched SQEs
	cqeBuf    mem.Addr      // per-QP staging for posted CQEs
	cqLock    *sim.Resource // serializes CQE posting per queue
}

// NewSSD builds the device, allocating its BAR and staging regions and
// attaching them to a new fabric port.
func NewSSD(env *sim.Env, fab *pcie.Fabric, name string, params Params) *SSD {
	s := &SSD{
		Name:   name,
		env:    env,
		fab:    fab,
		params: params,
		flash:  map[uint64][]byte{},
		qps:    map[uint16]*devQP{},
	}
	s.port = fab.AddPort(name)
	mm := fab.Mem()
	s.Doorbells = mm.AddRegion(name+"-doorbells", mem.MMIO, 4096, true)
	s.staging = mm.AddRegion(name+"-staging", mem.DeviceInternal, 16<<20, false)
	fab.Attach(s.port, s.Doorbells)
	fab.Attach(s.port, s.staging)

	nSlots := params.Channels * 4
	s.slotQ = sim.NewQueue[mem.Addr](env, name+"-slots")
	for i := 0; i < nSlots; i++ {
		s.slotQ.Put(s.staging.Alloc(64<<10, 4096))
	}
	s.readBW = sim.NewBandwidthServer(env, name+"-flash-rd", params.ReadBps, 0)
	s.writeBW = sim.NewBandwidthServer(env, name+"-flash-wr", params.WriteBps, 0)
	s.exec = sim.NewResource(env, name+"-exec", params.Channels)

	s.Doorbells.SetWriteHook(s.onDoorbell)
	return s
}

// Port returns the SSD's fabric port.
func (s *SSD) Port() *pcie.Port { return s.port }

// Stats returns commands completed and bytes read/written.
func (s *SSD) Stats() (cmds, bytesRead, bytesWritten int64) {
	return s.cmdsDone, s.bytesRd, s.bytesWr
}

// CreateQueuePair registers a queue pair (the admin-queue step of a
// real device, performed at configuration time). msiVector < 0 means
// no interrupt: the submitter detects completions by CQ memory write
// (the HDC Engine mode).
func (s *SSD) CreateQueuePair(cfg RingConfig, msiVector int) {
	if _, dup := s.qps[cfg.QID]; dup {
		panic(fmt.Sprintf("nvme: QP %d exists on %s", cfg.QID, s.Name))
	}
	qp := &devQP{
		cfg:       cfg,
		msiVector: msiVector,
		phase:     true,
		sqKick:    sim.NewCond(s.env),
		cqKick:    sim.NewCond(s.env),
		sqeBuf:    s.staging.Alloc(CommandSize, 64),
		cqeBuf:    s.staging.Alloc(CompletionSize, 64),
		cqLock:    sim.NewResource(s.env, fmt.Sprintf("%s-qp%d-cq", s.Name, cfg.QID), 1),
	}
	s.qps[cfg.QID] = qp
	s.env.Spawn(fmt.Sprintf("%s-qp%d", s.Name, cfg.QID), func(p *sim.Proc) { s.qpLoop(p, qp) })
}

// DoorbellAddrs returns the SQ-tail and CQ-head doorbell addresses for
// a queue pair ID.
func (s *SSD) DoorbellAddrs(qid uint16) (sq, cq mem.Addr) {
	base := s.Doorbells.Base + mem.Addr(uint64(qid)*dbStride)
	return base, base + 16
}

func (s *SSD) onDoorbell(off uint64, n int) {
	qid := uint16(off / dbStride)
	qp, ok := s.qps[qid]
	if !ok {
		panic(fmt.Sprintf("nvme: doorbell for unknown QP %d on %s", qid, s.Name))
	}
	val := int(le64(s.Doorbells.Bytes(off, 8)))
	if off%dbStride == 0 {
		qp.dbTail = val
		qp.sqKick.Broadcast()
	} else {
		qp.cqHeadSee = val
		qp.cqKick.Broadcast()
	}
}

func (s *SSD) qpLoop(p *sim.Proc, qp *devQP) {
	for {
		for qp.sqHead == qp.dbTail {
			qp.sqKick.Wait(p)
		}
		// Fetch the SQE by DMA into the QP's staging scratch.
		sqeAddr := qp.cfg.SQ.Base + mem.Addr(uint64(qp.sqHead)*CommandSize)
		s.fab.MustDMA(p, s.port, qp.sqeBuf, sqeAddr, CommandSize)
		cmd, err := DecodeCommand(s.fab.Mem().Read(qp.sqeBuf, CommandSize))
		sqHead := (qp.sqHead + 1) % qp.cfg.Entries
		qp.sqHead = sqHead
		if err != nil {
			s.complete(p, qp, Completion{CID: cmd.CID, SQHead: uint16(sqHead), SQID: qp.cfg.QID, Status: StatusInternalErr})
			continue
		}
		p.Sleep(s.params.CmdDecode)
		// Execute concurrently up to the channel count; completions may
		// land out of order, which the CID matching absorbs.
		cmdCopy := cmd
		s.env.Spawn(fmt.Sprintf("%s-exec-cid%d", s.Name, cmd.CID), func(ep *sim.Proc) {
			s.exec.Acquire(ep)
			status := s.execute(ep, cmdCopy)
			s.exec.Release()
			s.complete(ep, qp, Completion{CID: cmdCopy.CID, SQHead: uint16(sqHead), SQID: qp.cfg.QID, Status: status})
		})
	}
}

func (s *SSD) execute(p *sim.Proc, cmd Command) uint16 {
	switch cmd.Opcode {
	case OpFlush:
		p.Sleep(s.params.WriteLatency)
		return StatusSuccess
	case OpRead, OpWrite:
	default:
		return StatusInvalidOp
	}
	if cmd.Blocks() > MaxBlocksPerCmd {
		return StatusInvalidPRP
	}
	pages, err := DataPages(s.fab.Mem(), cmd)
	if err != nil {
		return StatusInvalidPRP
	}
	slot := s.slotQ.Get(p)
	defer s.slotQ.Put(slot)
	n := cmd.Bytes()

	if cmd.Opcode == OpRead {
		// Media access: latency once, bandwidth for the span.
		p.Sleep(s.params.ReadLatency)
		if s.params.Faults.Hit(fault.NVMeReadError) {
			// Uncorrectable ECC on this access: fail before any data
			// leaves the device. A retry re-reads the media.
			return StatusMediaErr
		}
		s.readBW.Transfer(p, n)
		for i := 0; i < cmd.Blocks(); i++ {
			s.fab.Mem().Write(slot+mem.Addr(i*BlockSize), s.readBlock(cmd.SLBA+uint64(i)))
		}
		if err := s.dmaPages(p, pages, slot, true); err != nil {
			return StatusInvalidPRP
		}
		s.bytesRd += int64(n)
	} else {
		if err := s.dmaPages(p, pages, slot, false); err != nil {
			return StatusInvalidPRP
		}
		p.Sleep(s.params.WriteLatency)
		if s.params.Faults.Hit(fault.NVMeWriteError) {
			// Program failure before commit: flash is untouched, so
			// re-issuing the write is idempotent.
			return StatusMediaErr
		}
		s.writeBW.Transfer(p, n)
		for i := 0; i < cmd.Blocks(); i++ {
			s.flash[cmd.SLBA+uint64(i)] = s.fab.Mem().Read(slot+mem.Addr(i*BlockSize), BlockSize)
		}
		s.bytesWr += int64(n)
	}
	s.cmdsDone++
	return StatusSuccess
}

// dmaPages moves data between the staging slot and the PRP pages,
// coalescing physically contiguous pages into single DMA bursts.
// toPages=true moves staging->pages (read command).
func (s *SSD) dmaPages(p *sim.Proc, pages []mem.Addr, slot mem.Addr, toPages bool) error {
	i := 0
	off := 0
	for i < len(pages) {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+BlockSize {
			j++
		}
		n := (j - i) * BlockSize
		var err error
		if toPages {
			err = s.fab.DMA(p, s.port, pages[i], slot+mem.Addr(off), n)
		} else {
			err = s.fab.DMA(p, s.port, slot+mem.Addr(off), pages[i], n)
		}
		if err != nil {
			return err
		}
		off += n
		i = j
	}
	return nil
}

func (s *SSD) complete(p *sim.Proc, qp *devQP, cpl Completion) {
	qp.cqLock.Acquire(p)
	defer qp.cqLock.Release()
	// Respect CQ flow control: wait while the CQ is full.
	for (qp.cqTail+1)%qp.cfg.Entries == qp.cqHeadSee {
		qp.cqKick.Wait(p)
	}
	cpl.Phase = qp.phase
	raw := cpl.Encode()
	s.fab.Mem().Write(qp.cqeBuf, raw[:])
	cqeAddr := qp.cfg.CQ.Base + mem.Addr(uint64(qp.cqTail)*CompletionSize)
	s.fab.MustDMA(p, s.port, cqeAddr, qp.cqeBuf, CompletionSize)
	qp.cqTail++
	if qp.cqTail == qp.cfg.Entries {
		qp.cqTail = 0
		qp.phase = !qp.phase
	}
	if qp.msiVector >= 0 {
		s.fab.RaiseMSI(qp.msiVector)
	}
}

// readBlock returns the flash content of lba (zeroes if never written).
func (s *SSD) readBlock(lba uint64) []byte {
	if b, ok := s.flash[lba]; ok {
		return b
	}
	return make([]byte, BlockSize)
}

// Preload writes data directly into flash at setup time (no simulated
// cost) — the testbed's way of staging datasets.
func (s *SSD) Preload(lba uint64, data []byte) {
	for off := 0; off < len(data); off += BlockSize {
		blk := make([]byte, BlockSize)
		copy(blk, data[off:])
		s.flash[lba+uint64(off/BlockSize)] = blk
	}
}

// PeekBlock returns a copy of a flash block for verification.
func (s *SSD) PeekBlock(lba uint64) []byte {
	blk := make([]byte, BlockSize)
	copy(blk, s.readBlock(lba))
	return blk
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
