package nvme

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Params are the SSD performance characteristics, defaulting to the
// Intel 750 400 GB of Table V.
type Params struct {
	ReadLatency  sim.Time // media access latency per read command
	WriteLatency sim.Time // media program latency per write command
	ReadBps      float64  // internal read bandwidth (17.2 Gbps)
	WriteBps     float64  // internal write bandwidth (7.2 Gbps)
	Channels     int      // concurrently executing commands
	CmdDecode    sim.Time // on-device command decode/setup
	// Faults injects media errors (uncorrectable reads, failed
	// programs) reported via CQ status; nil disables injection.
	Faults *fault.Injector
}

// DefaultParams return the Intel 750-calibrated values.
func DefaultParams() Params {
	return Params{
		ReadLatency:  20 * sim.Microsecond,
		WriteLatency: 20 * sim.Microsecond,
		ReadBps:      17.2e9,
		WriteBps:     7.2e9,
		Channels:     4,
		CmdDecode:    500 * sim.Nanosecond,
	}
}

// doorbell register layout inside the SSD BAR: 32 bytes per queue
// pair, SQ tail at +0 and CQ head at +16.
const dbStride = 32

// SSD is the NVMe device model: it owns a doorbell BAR and an
// internal (non-P2P-addressable) staging buffer, fetches SQEs by DMA,
// executes them against a flash backend holding real block contents,
// moves data to/from PRP pages by DMA, posts CQEs, and optionally
// raises MSI.
type SSD struct {
	Name string

	env    *sim.Env
	fab    *pcie.Fabric
	params Params
	port   *pcie.Port

	Doorbells *mem.Region
	staging   *mem.Region
	slotQ     *sim.Queue[mem.Addr] // free 64 KB staging slots

	readBW  *sim.BandwidthServer
	writeBW *sim.BandwidthServer
	exec    *sim.Resource // concurrent command execution (channels)

	flash map[uint64][]byte
	qps   map[uint16]*devQP

	// Command-execution worker pool: finished workers park on
	// execJobs instead of exiting, so steady-state command execution
	// reuses proc stacks and scratch slices rather than allocating
	// per command. A deterministic free list, not sync.Pool — see
	// DESIGN.md §11.
	execJobs *sim.Queue[execJob]
	execIdle int

	// zeroBlock is the shared read-only content of never-written LBAs.
	zeroBlock []byte

	cmdsDone int64
	bytesRd  int64
	bytesWr  int64
}

// execJob is one fetched command handed to an execution worker.
type execJob struct {
	qp     *devQP
	cmd    Command
	sqHead int
}

type devQP struct {
	cfg       RingConfig
	msiVector int
	sqHead    int
	dbTail    int // last SQ tail doorbell value
	cqTail    int
	phase     bool
	cqHeadSee int           // last CQ head doorbell value
	sqKick    *sim.Cond     // SQ tail doorbell arrived
	cqKick    *sim.Cond     // CQ head doorbell arrived
	sqeBuf    mem.Addr      // per-QP staging for fetched SQEs
	cqeBuf    mem.Addr      // per-QP staging for posted CQEs
	cqLock    *sim.Resource // serializes CQE posting per queue
}

// NewSSD builds the device, allocating its BAR and staging regions and
// attaching them to a new fabric port.
func NewSSD(env *sim.Env, fab *pcie.Fabric, name string, params Params) *SSD {
	s := &SSD{
		Name:      name,
		env:       env,
		fab:       fab,
		params:    params,
		flash:     map[uint64][]byte{},
		qps:       map[uint16]*devQP{},
		execJobs:  sim.NewQueue[execJob](env, name+"-exec-jobs"),
		zeroBlock: make([]byte, BlockSize),
	}
	s.port = fab.AddPort(name)
	mm := fab.Mem()
	s.Doorbells = mm.AddRegion(name+"-doorbells", mem.MMIO, 4096, true)
	s.staging = mm.AddRegion(name+"-staging", mem.DeviceInternal, 16<<20, false)
	fab.Attach(s.port, s.Doorbells)
	fab.Attach(s.port, s.staging)

	nSlots := params.Channels * 4
	s.slotQ = sim.NewQueue[mem.Addr](env, name+"-slots")
	for i := 0; i < nSlots; i++ {
		s.slotQ.Put(s.staging.Alloc(64<<10, 4096))
	}
	s.readBW = sim.NewBandwidthServer(env, name+"-flash-rd", params.ReadBps, 0)
	s.writeBW = sim.NewBandwidthServer(env, name+"-flash-wr", params.WriteBps, 0)
	s.exec = sim.NewResource(env, name+"-exec", params.Channels)

	s.Doorbells.SetWriteHook(s.onDoorbell)
	return s
}

// Port returns the SSD's fabric port.
func (s *SSD) Port() *pcie.Port { return s.port }

// Stats returns commands completed and bytes read/written.
func (s *SSD) Stats() (cmds, bytesRead, bytesWritten int64) {
	return s.cmdsDone, s.bytesRd, s.bytesWr
}

// CreateQueuePair registers a queue pair (the admin-queue step of a
// real device, performed at configuration time). msiVector < 0 means
// no interrupt: the submitter detects completions by CQ memory write
// (the HDC Engine mode).
func (s *SSD) CreateQueuePair(cfg RingConfig, msiVector int) {
	if _, dup := s.qps[cfg.QID]; dup {
		panic(fmt.Sprintf("nvme: QP %d exists on %s", cfg.QID, s.Name))
	}
	qp := &devQP{
		cfg:       cfg,
		msiVector: msiVector,
		phase:     true,
		sqKick:    sim.NewCond(s.env),
		cqKick:    sim.NewCond(s.env),
		sqeBuf:    s.staging.Alloc(CommandSize, 64),
		cqeBuf:    s.staging.Alloc(CompletionSize, 64),
		cqLock:    sim.NewResource(s.env, fmt.Sprintf("%s-qp%d-cq", s.Name, cfg.QID), 1),
	}
	s.qps[cfg.QID] = qp
	s.env.Spawn(fmt.Sprintf("%s-qp%d", s.Name, cfg.QID), func(p *sim.Proc) { s.qpLoop(p, qp) })
}

// DoorbellAddrs returns the SQ-tail and CQ-head doorbell addresses for
// a queue pair ID.
func (s *SSD) DoorbellAddrs(qid uint16) (sq, cq mem.Addr) {
	base := s.Doorbells.Base + mem.Addr(uint64(qid)*dbStride)
	return base, base + 16
}

func (s *SSD) onDoorbell(off uint64, n int) {
	qid := uint16(off / dbStride)
	qp, ok := s.qps[qid]
	if !ok {
		panic(fmt.Sprintf("nvme: doorbell for unknown QP %d on %s", qid, s.Name))
	}
	val := int(le64(s.Doorbells.Bytes(off, 8)))
	if off%dbStride == 0 {
		qp.dbTail = val
		qp.sqKick.Broadcast()
	} else {
		qp.cqHeadSee = val
		qp.cqKick.Broadcast()
	}
}

func (s *SSD) qpLoop(p *sim.Proc, qp *devQP) {
	for {
		for qp.sqHead == qp.dbTail {
			qp.sqKick.Wait(p)
		}
		// Fetch the SQE by DMA into the QP's staging scratch.
		sqeAddr := qp.cfg.SQ.Base + mem.Addr(uint64(qp.sqHead)*CommandSize)
		s.fab.MustDMA(p, s.port, qp.sqeBuf, sqeAddr, CommandSize)
		cmd, err := DecodeCommand(s.fab.Mem().View(qp.sqeBuf, CommandSize))
		sqHead := (qp.sqHead + 1) % qp.cfg.Entries
		qp.sqHead = sqHead
		if err != nil {
			s.complete(p, qp, Completion{CID: cmd.CID, SQHead: uint16(sqHead), SQID: qp.cfg.QID, Status: StatusInternalErr})
			continue
		}
		p.Sleep(s.params.CmdDecode)
		// Execute concurrently up to the channel count; completions may
		// land out of order, which the CID matching absorbs. Handing the
		// job to a parked pool worker enqueues the same resume event a
		// fresh Spawn would, so pooling does not perturb event order.
		job := execJob{qp: qp, cmd: cmd, sqHead: sqHead}
		if s.execIdle > 0 {
			s.execIdle--
			s.execJobs.Put(job)
		} else {
			s.env.Spawn(s.Name+"-exec", func(ep *sim.Proc) { s.execWorker(ep, job) })
		}
	}
}

// execWorker runs fetched commands for the lifetime of the SSD,
// parking on the job queue between commands. The PRP-page and
// DMA-extent scratch slices live for the worker's lifetime, so
// steady-state execution allocates nothing.
func (s *SSD) execWorker(ep *sim.Proc, job execJob) {
	pages := make([]mem.Addr, 0, MaxBlocksPerCmd)
	exts := make([]mem.Extent, 0, MaxBlocksPerCmd)
	for {
		s.exec.Acquire(ep)
		status := s.execute(ep, job.cmd, &pages, &exts)
		s.exec.Release()
		s.complete(ep, job.qp, Completion{CID: job.cmd.CID, SQHead: uint16(job.sqHead), SQID: job.qp.cfg.QID, Status: status})
		s.execIdle++
		job = s.execJobs.Get(ep)
	}
}

func (s *SSD) execute(p *sim.Proc, cmd Command, pageScratch *[]mem.Addr, extScratch *[]mem.Extent) uint16 {
	switch cmd.Opcode {
	case OpFlush:
		p.Sleep(s.params.WriteLatency)
		return StatusSuccess
	case OpRead, OpWrite:
	default:
		return StatusInvalidOp
	}
	if cmd.Blocks() > MaxBlocksPerCmd {
		return StatusInvalidPRP
	}
	pages, err := AppendDataPages((*pageScratch)[:0], s.fab.Mem(), cmd)
	if err != nil {
		return StatusInvalidPRP
	}
	*pageScratch = pages
	slot := s.slotQ.Get(p)
	defer s.slotQ.Put(slot)
	n := cmd.Bytes()

	if cmd.Opcode == OpRead {
		// Media access: latency once, bandwidth for the span.
		p.Sleep(s.params.ReadLatency)
		if s.params.Faults.Hit(fault.NVMeReadError) {
			// Uncorrectable ECC on this access: fail before any data
			// leaves the device. A retry re-reads the media.
			return StatusMediaErr
		}
		s.readBW.Transfer(p, n)
		for i := 0; i < cmd.Blocks(); i++ {
			s.fab.Mem().Write(slot+mem.Addr(i*BlockSize), s.readBlock(cmd.SLBA+uint64(i)))
		}
		if err := s.dmaPages(p, pages, slot, true, extScratch); err != nil {
			return StatusInvalidPRP
		}
		s.bytesRd += int64(n)
	} else {
		if err := s.dmaPages(p, pages, slot, false, extScratch); err != nil {
			return StatusInvalidPRP
		}
		p.Sleep(s.params.WriteLatency)
		if s.params.Faults.Hit(fault.NVMeWriteError) {
			// Program failure before commit: flash is untouched, so
			// re-issuing the write is idempotent.
			return StatusMediaErr
		}
		s.writeBW.Transfer(p, n)
		for i := 0; i < cmd.Blocks(); i++ {
			// Overwrites land in the existing block — the flash map is
			// the device's deterministic block cache; only first writes
			// to an LBA allocate.
			lba := cmd.SLBA + uint64(i)
			blk, ok := s.flash[lba]
			if !ok {
				blk = make([]byte, BlockSize)
				s.flash[lba] = blk
			}
			s.fab.Mem().ReadInto(slot+mem.Addr(i*BlockSize), blk)
		}
		s.bytesWr += int64(n)
	}
	s.cmdsDone++
	return StatusSuccess
}

// dmaPages moves data between the staging slot and the PRP pages,
// coalescing physically contiguous pages into extents and issuing one
// vectored DMA. toPages=true moves staging->pages (a read command
// scatters the slot across the pages); toPages=false gathers the
// pages into the slot.
func (s *SSD) dmaPages(p *sim.Proc, pages []mem.Addr, slot mem.Addr, toPages bool, extScratch *[]mem.Extent) error {
	exts := (*extScratch)[:0]
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+BlockSize {
			j++
		}
		exts = append(exts, mem.Extent{Addr: pages[i], Len: (j - i) * BlockSize})
		i = j
	}
	*extScratch = exts
	return s.fab.DMAVec(p, s.port, slot, exts, !toPages)
}

func (s *SSD) complete(p *sim.Proc, qp *devQP, cpl Completion) {
	qp.cqLock.Acquire(p)
	defer qp.cqLock.Release()
	// Respect CQ flow control: wait while the CQ is full.
	for (qp.cqTail+1)%qp.cfg.Entries == qp.cqHeadSee {
		qp.cqKick.Wait(p)
	}
	cpl.Phase = qp.phase
	raw := cpl.Encode()
	s.fab.Mem().Write(qp.cqeBuf, raw[:])
	cqeAddr := qp.cfg.CQ.Base + mem.Addr(uint64(qp.cqTail)*CompletionSize)
	s.fab.MustDMA(p, s.port, cqeAddr, qp.cqeBuf, CompletionSize)
	qp.cqTail++
	if qp.cqTail == qp.cfg.Entries {
		qp.cqTail = 0
		qp.phase = !qp.phase
	}
	if qp.msiVector >= 0 {
		s.fab.RaiseMSI(qp.msiVector)
	}
}

// readBlock returns the flash content of lba. Never-written LBAs read
// as the shared zero block, which no caller may mutate (every use
// copies out of it).
func (s *SSD) readBlock(lba uint64) []byte {
	if b, ok := s.flash[lba]; ok {
		return b
	}
	return s.zeroBlock
}

// Preload writes data directly into flash at setup time (no simulated
// cost) — the testbed's way of staging datasets.
func (s *SSD) Preload(lba uint64, data []byte) {
	for off := 0; off < len(data); off += BlockSize {
		blk := make([]byte, BlockSize)
		copy(blk, data[off:])
		s.flash[lba+uint64(off/BlockSize)] = blk
	}
}

// PeekBlock returns a copy of a flash block for verification.
func (s *SSD) PeekBlock(lba uint64) []byte {
	blk := make([]byte, BlockSize)
	copy(blk, s.readBlock(lba))
	return blk
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
