package nvme

import (
	"fmt"

	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Params are the SSD performance characteristics, defaulting to the
// Intel 750 400 GB of Table V.
type Params struct {
	ReadLatency  sim.Time // media access latency per read command
	WriteLatency sim.Time // media program latency per write command
	ReadBps      float64  // internal read bandwidth (17.2 Gbps)
	WriteBps     float64  // internal write bandwidth (7.2 Gbps)
	Channels     int      // concurrently executing commands
	CmdDecode    sim.Time // on-device command decode/setup
	// Faults injects media errors (uncorrectable reads, failed
	// programs) reported via CQ status; nil disables injection.
	Faults *fault.Injector
}

// DefaultParams return the Intel 750-calibrated values.
func DefaultParams() Params {
	return Params{
		ReadLatency:  20 * sim.Microsecond,
		WriteLatency: 20 * sim.Microsecond,
		ReadBps:      17.2e9,
		WriteBps:     7.2e9,
		Channels:     4,
		CmdDecode:    500 * sim.Nanosecond,
	}
}

// doorbell register layout inside the SSD BAR: 32 bytes per queue
// pair, SQ tail at +0 and CQ head at +16.
const dbStride = 32

// SSD is the NVMe device model: it owns a doorbell BAR and an
// internal (non-P2P-addressable) staging buffer, fetches SQEs by DMA,
// executes them against a flash backend holding real block contents,
// moves data to/from PRP pages by DMA, posts CQEs, and optionally
// raises MSI.
type SSD struct {
	Name string

	env    *sim.Env
	fab    *pcie.Fabric
	params Params
	port   *pcie.Port

	Doorbells *mem.Region
	staging   *mem.Region
	slotQ     *sim.Queue[mem.Addr] // free 64 KB staging slots

	readBW  *sim.BandwidthServer
	writeBW *sim.BandwidthServer
	exec    *sim.Resource // concurrent command execution (channels)

	flash map[uint64][]byte
	qps   map[uint16]*devQP

	// Command-execution worker pool: finished workers park on
	// execJobs instead of exiting, so steady-state command execution
	// reuses proc stacks and scratch slices rather than allocating
	// per command. A deterministic free list, not sync.Pool — see
	// DESIGN.md §11.
	execJobs *sim.Queue[execJob]
	execIdle int

	// zeroBlock is the shared read-only content of never-written LBAs.
	zeroBlock []byte

	cmdsDone int64
	bytesRd  int64
	bytesWr  int64
}

// execJob is one fetched command handed to an execution worker.
type execJob struct {
	qp     *devQP
	cmd    Command
	sqHead int
}

type devQP struct {
	cfg       RingConfig
	msiVector int
	sqHead    int
	dbTail    int // last SQ tail doorbell value
	cqTail    int
	phase     bool
	cqHeadSee int       // last CQ head doorbell value
	sqKick    *sim.Cond // SQ tail doorbell arrived
	cqKick    *sim.Cond // CQ head doorbell arrived
	sqBatch   mem.Addr  // staging for burst-fetched SQEs (Entries slots)
	cqBatch   mem.Addr  // staging for coalesced CQE posts (Entries slots)

	// kickQueued coalesces same-instant SQ doorbell rings into one
	// deferred sqKick broadcast (kickFn is bound once at setup so the
	// doorbell hot path does not allocate a closure per ring).
	kickQueued bool
	kickFn     func()

	// cplPend holds finished commands awaiting a CQ slot; the per-QP
	// completer drains it in same-instant batches. Bounded by the
	// submitter's ring flow control (< Entries outstanding commands).
	cplPend []Completion
	cplWork *sim.Cond
	sqExts  []mem.Extent // wrap-aware fetch extents (qpLoop only)
	cqExts  []mem.Extent // wrap-aware post extents (cplLoop only)
}

// NewSSD builds the device, allocating its BAR and staging regions and
// attaching them to a new fabric port.
func NewSSD(env *sim.Env, fab *pcie.Fabric, name string, params Params) *SSD {
	s := &SSD{
		Name:      name,
		env:       env,
		fab:       fab,
		params:    params,
		flash:     map[uint64][]byte{},
		qps:       map[uint16]*devQP{},
		execJobs:  sim.NewQueue[execJob](env, name+"-exec-jobs"),
		zeroBlock: make([]byte, BlockSize),
	}
	s.port = fab.AddPort(name)
	mm := fab.Mem()
	s.Doorbells = mm.AddRegion(name+"-doorbells", mem.MMIO, 4096, true)
	s.staging = mm.AddRegion(name+"-staging", mem.DeviceInternal, 16<<20, false)
	fab.Attach(s.port, s.Doorbells)
	fab.Attach(s.port, s.staging)

	nSlots := params.Channels * 4
	s.slotQ = sim.NewQueue[mem.Addr](env, name+"-slots")
	for i := 0; i < nSlots; i++ {
		s.slotQ.Put(s.staging.Alloc(64<<10, 4096))
	}
	s.readBW = sim.NewBandwidthServer(env, name+"-flash-rd", params.ReadBps, 0)
	s.writeBW = sim.NewBandwidthServer(env, name+"-flash-wr", params.WriteBps, 0)
	s.exec = sim.NewResource(env, name+"-exec", params.Channels)

	s.Doorbells.SetWriteHook(s.onDoorbell)
	return s
}

// Port returns the SSD's fabric port.
func (s *SSD) Port() *pcie.Port { return s.port }

// Stats returns commands completed and bytes read/written.
func (s *SSD) Stats() (cmds, bytesRead, bytesWritten int64) {
	return s.cmdsDone, s.bytesRd, s.bytesWr
}

// CreateQueuePair registers a queue pair (the admin-queue step of a
// real device, performed at configuration time). msiVector < 0 means
// no interrupt: the submitter detects completions by CQ memory write
// (the HDC Engine mode).
func (s *SSD) CreateQueuePair(cfg RingConfig, msiVector int) {
	if _, dup := s.qps[cfg.QID]; dup {
		panic(fmt.Sprintf("nvme: QP %d exists on %s", cfg.QID, s.Name))
	}
	qp := &devQP{
		cfg:       cfg,
		msiVector: msiVector,
		phase:     true,
		sqKick:    sim.NewCond(s.env),
		cqKick:    sim.NewCond(s.env),
		sqBatch:   s.staging.Alloc(uint64(cfg.Entries)*CommandSize, 64),
		cqBatch:   s.staging.Alloc(uint64(cfg.Entries)*CompletionSize, 64),
		cplPend:   make([]Completion, 0, cfg.Entries),
		cplWork:   sim.NewCond(s.env),
		sqExts:    make([]mem.Extent, 0, 2),
		cqExts:    make([]mem.Extent, 0, 2),
	}
	qp.kickFn = func() {
		qp.kickQueued = false
		qp.sqKick.Broadcast()
	}
	s.qps[cfg.QID] = qp
	s.env.Spawn(fmt.Sprintf("%s-qp%d", s.Name, cfg.QID), func(p *sim.Proc) { s.qpLoop(p, qp) })
	s.env.Spawn(fmt.Sprintf("%s-qp%d-cpl", s.Name, cfg.QID), func(p *sim.Proc) { s.cplLoop(p, qp) })
}

// DoorbellAddrs returns the SQ-tail and CQ-head doorbell addresses for
// a queue pair ID.
func (s *SSD) DoorbellAddrs(qid uint16) (sq, cq mem.Addr) {
	base := s.Doorbells.Base + mem.Addr(uint64(qid)*dbStride)
	return base, base + 16
}

func (s *SSD) onDoorbell(off uint64, n int) {
	qid := uint16(off / dbStride)
	qp, ok := s.qps[qid]
	if !ok {
		panic(fmt.Sprintf("nvme: doorbell for unknown QP %d on %s", qid, s.Name))
	}
	val := int(le64(s.Doorbells.Bytes(off, 8)))
	if off%dbStride == 0 {
		// Coalesce same-instant tail rings: the deferred kick runs after
		// every doorbell delivery queued for this instant, so the QP loop
		// wakes once and sees the final tail (a multi-entry doorbell
		// drain, as real NVMe devices do). The continuation is a pure
		// scheduling action, so Chain may legally run it inline.
		qp.dbTail = val
		if !qp.kickQueued {
			qp.kickQueued = true
			s.env.Chain(qp.kickFn)
		}
	} else {
		qp.cqHeadSee = val
		qp.cqKick.Broadcast()
	}
}

// ringExtents appends the wrap-aware extents (at most two) covering n
// consecutive entries of size esz starting at index head in a ring of
// entries slots based at base.
func ringExtents(exts []mem.Extent, base mem.Addr, head, n, entries, esz int) []mem.Extent {
	first := entries - head
	if first > n {
		first = n
	}
	exts = append(exts, mem.Extent{Addr: base + mem.Addr(uint64(head)*uint64(esz)), Len: first * esz})
	if n > first {
		exts = append(exts, mem.Extent{Addr: base, Len: (n - first) * esz})
	}
	return exts
}

func (s *SSD) qpLoop(p *sim.Proc, qp *devQP) {
	for {
		for qp.sqHead == qp.dbTail {
			qp.sqKick.Wait(p)
		}
		// Drain every newly posted SQE in one pass: burst-fetch the
		// whole window by vectored DMA (one or two extents depending on
		// ring wrap), decode the batch in one sitting, then dispatch.
		avail := (qp.dbTail - qp.sqHead + qp.cfg.Entries) % qp.cfg.Entries
		qp.sqExts = ringExtents(qp.sqExts[:0], qp.cfg.SQ.Base, qp.sqHead, avail, qp.cfg.Entries, CommandSize)
		s.fab.MustDMAVec(p, s.port, qp.sqBatch, qp.sqExts, true)
		p.Sleep(s.params.CmdDecode * sim.Time(avail))
		for i := 0; i < avail; i++ {
			raw := s.fab.Mem().View(qp.sqBatch+mem.Addr(i*CommandSize), CommandSize)
			cmd, err := DecodeCommand(raw)
			sqHead := (qp.sqHead + 1) % qp.cfg.Entries
			qp.sqHead = sqHead
			if err != nil {
				s.finishCmd(qp, Completion{CID: cmd.CID, SQHead: uint16(sqHead), SQID: qp.cfg.QID, Status: StatusInternalErr})
				continue
			}
			// Execute concurrently up to the channel count; completions may
			// land out of order, which the CID matching absorbs. Handing the
			// job to a parked pool worker enqueues the same resume event a
			// fresh Spawn would, so pooling does not perturb event order.
			job := execJob{qp: qp, cmd: cmd, sqHead: sqHead}
			if s.execIdle > 0 {
				s.execIdle--
				s.execJobs.Put(job)
			} else {
				s.env.Spawn(s.Name+"-exec", func(ep *sim.Proc) { s.execWorker(ep, job) })
			}
		}
	}
}

// PrimeExecPool rebuilds the exec worker pool population after a
// snapshot restore: n workers parked on the job queue, exactly as the
// checkpointed device had. The pool population is schedule state — a
// Put into a pool with parked workers can chain-wake them, which an
// empty pool's Spawn path never does — so the restore must reproduce
// it, not merely rely on per-job event parity. The caller runs the
// environment to quiescence afterwards so the workers reach their
// park points before simulated time resumes.
func (s *SSD) PrimeExecPool(n int) {
	for i := 0; i < n; i++ {
		s.execIdle++
		s.env.Spawn(s.Name+"-exec", func(ep *sim.Proc) {
			s.execWorker(ep, s.execJobs.Get(ep))
		})
	}
}

// execWorker runs fetched commands for the lifetime of the SSD,
// parking on the job queue between commands. The PRP-page and
// DMA-extent scratch slices live for the worker's lifetime, so
// steady-state execution allocates nothing.
func (s *SSD) execWorker(ep *sim.Proc, job execJob) {
	pages := make([]mem.Addr, 0, MaxBlocksPerCmd)
	exts := make([]mem.Extent, 0, MaxBlocksPerCmd)
	for {
		s.exec.Acquire(ep)
		status := s.execute(ep, job.cmd, &pages, &exts)
		s.exec.Release()
		s.finishCmd(job.qp, Completion{CID: job.cmd.CID, SQHead: uint16(job.sqHead), SQID: job.qp.cfg.QID, Status: status})
		s.execIdle++
		job = s.execJobs.Get(ep)
	}
}

func (s *SSD) execute(p *sim.Proc, cmd Command, pageScratch *[]mem.Addr, extScratch *[]mem.Extent) uint16 {
	switch cmd.Opcode {
	case OpFlush:
		p.Sleep(s.params.WriteLatency)
		return StatusSuccess
	case OpRead, OpWrite:
	default:
		return StatusInvalidOp
	}
	if cmd.Blocks() > MaxBlocksPerCmd {
		return StatusInvalidPRP
	}
	pages, err := AppendDataPages((*pageScratch)[:0], s.fab.Mem(), cmd)
	if err != nil {
		return StatusInvalidPRP
	}
	*pageScratch = pages
	slot := s.slotQ.Get(p)
	defer s.slotQ.Put(slot)
	n := cmd.Bytes()

	if cmd.Opcode == OpRead {
		// Media access: latency once, bandwidth for the span.
		p.Sleep(s.params.ReadLatency)
		if s.params.Faults.Hit(fault.NVMeReadError) {
			// Uncorrectable ECC on this access: fail before any data
			// leaves the device. A retry re-reads the media.
			return StatusMediaErr
		}
		s.readBW.Transfer(p, n)
		for i := 0; i < cmd.Blocks(); i++ {
			s.fab.Mem().Write(slot+mem.Addr(i*BlockSize), s.readBlock(cmd.SLBA+uint64(i)))
		}
		if err := s.dmaPages(p, pages, slot, true, extScratch); err != nil {
			return StatusInvalidPRP
		}
		s.bytesRd += int64(n)
	} else {
		if err := s.dmaPages(p, pages, slot, false, extScratch); err != nil {
			return StatusInvalidPRP
		}
		p.Sleep(s.params.WriteLatency)
		if s.params.Faults.Hit(fault.NVMeWriteError) {
			// Program failure before commit: flash is untouched, so
			// re-issuing the write is idempotent.
			return StatusMediaErr
		}
		s.writeBW.Transfer(p, n)
		for i := 0; i < cmd.Blocks(); i++ {
			// Overwrites land in the existing block — the flash map is
			// the device's deterministic block cache; only first writes
			// to an LBA allocate.
			lba := cmd.SLBA + uint64(i)
			blk, ok := s.flash[lba]
			if !ok {
				blk = make([]byte, BlockSize)
				s.flash[lba] = blk
			}
			s.fab.Mem().ReadInto(slot+mem.Addr(i*BlockSize), blk)
		}
		s.bytesWr += int64(n)
	}
	s.cmdsDone++
	return StatusSuccess
}

// dmaPages moves data between the staging slot and the PRP pages,
// coalescing physically contiguous pages into extents and issuing one
// vectored DMA. toPages=true moves staging->pages (a read command
// scatters the slot across the pages); toPages=false gathers the
// pages into the slot.
func (s *SSD) dmaPages(p *sim.Proc, pages []mem.Addr, slot mem.Addr, toPages bool, extScratch *[]mem.Extent) error {
	exts := (*extScratch)[:0]
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+BlockSize {
			j++
		}
		exts = append(exts, mem.Extent{Addr: pages[i], Len: (j - i) * BlockSize})
		i = j
	}
	*extScratch = exts
	return s.fab.DMAVec(p, s.port, slot, exts, !toPages)
}

// finishCmd hands a finished command to the QP's completer. It never
// blocks: CQ flow control is absorbed by cplPend, which the submitter's
// ring bounds to fewer than Entries outstanding commands.
func (s *SSD) finishCmd(qp *devQP, cpl Completion) {
	qp.cplPend = append(qp.cplPend, cpl)
	qp.cplWork.Broadcast()
}

// cqFree returns the number of free CQ slots under NVMe flow control
// (one slot is always left open to distinguish full from empty).
func (s *SSD) cqFree(qp *devQP) int {
	return (qp.cqHeadSee - qp.cqTail - 1 + qp.cfg.Entries) % qp.cfg.Entries
}

// cplLoop is the QP's completion coalescer: it gathers every command
// that finished at the current instant and posts their CQEs in one
// pass — one vectored DMA (two extents on ring wrap) and at most one
// MSI per batch, instead of a DMA and an interrupt per command.
// Submitters are insensitive to MSI count: ProcessCompletions drains
// the CQ by phase bit regardless of how many interrupts coalesced.
func (s *SSD) cplLoop(p *sim.Proc, qp *devQP) {
	for {
		for len(qp.cplPend) == 0 {
			qp.cplWork.Wait(p)
		}
		// Let every command finishing at this instant land first.
		p.Yield()
		for s.cqFree(qp) == 0 {
			qp.cqKick.Wait(p)
		}
		k := len(qp.cplPend)
		if free := s.cqFree(qp); k > free {
			k = free
		}
		qp.cqExts = ringExtents(qp.cqExts[:0], qp.cfg.CQ.Base, qp.cqTail, k, qp.cfg.Entries, CompletionSize)
		for i := 0; i < k; i++ {
			cpl := qp.cplPend[i]
			cpl.Phase = qp.phase
			raw := cpl.Encode()
			s.fab.Mem().Write(qp.cqBatch+mem.Addr(i*CompletionSize), raw[:])
			qp.cqTail++
			if qp.cqTail == qp.cfg.Entries {
				qp.cqTail = 0
				qp.phase = !qp.phase
			}
		}
		s.fab.MustDMAVec(p, s.port, qp.cqBatch, qp.cqExts, false)
		n := copy(qp.cplPend, qp.cplPend[k:])
		qp.cplPend = qp.cplPend[:n]
		s.env.CountIO(k)
		if qp.msiVector >= 0 {
			s.fab.RaiseMSI(qp.msiVector)
		}
	}
}

// readBlock returns the flash content of lba. Never-written LBAs read
// as the shared zero block, which no caller may mutate (every use
// copies out of it).
func (s *SSD) readBlock(lba uint64) []byte {
	if b, ok := s.flash[lba]; ok {
		return b
	}
	return s.zeroBlock
}

// Preload writes data directly into flash at setup time (no simulated
// cost) — the testbed's way of staging datasets.
func (s *SSD) Preload(lba uint64, data []byte) {
	for off := 0; off < len(data); off += BlockSize {
		blk := make([]byte, BlockSize)
		copy(blk, data[off:])
		s.flash[lba+uint64(off/BlockSize)] = blk
	}
}

// PeekBlock returns a copy of a flash block for verification.
func (s *SSD) PeekBlock(lba uint64) []byte {
	blk := make([]byte, BlockSize)
	copy(blk, s.readBlock(lba))
	return blk
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
