package nic

import (
	"bytes"
	"testing"
	"testing/quick"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

func TestSendBDRoundTripProperty(t *testing.T) {
	f := func(addr uint64, ln, flags, mss uint16) bool {
		bd := SendBD{Addr: mem.Addr(addr), Len: ln, Flags: flags, MSS: mss}
		enc := bd.Encode()
		got, err := DecodeSendBD(enc[:])
		return err == nil && got == bd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecvBDRoundTripProperty(t *testing.T) {
	f := func(addr uint64, ln uint32) bool {
		bd := RecvBD{Addr: mem.Addr(addr), Len: ln}
		enc := bd.Encode()
		got, err := DecodeRecvBD(enc[:])
		return err == nil && got == bd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecvCplRoundTripProperty(t *testing.T) {
	f := func(idx, seq uint32, hl, pl uint16, flags, valid uint8) bool {
		c := RecvCpl{BDIndex: idx, HdrLen: hl, PayLen: pl, Seq: seq, Flags: flags, Valid: valid}
		enc := c.Encode()
		got, err := DecodeRecvCpl(enc[:])
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// node is one endpoint: its own address map/fabric, a host port with
// DRAM, and a NIC with one configured queue driven from host memory.
type node struct {
	mm       *mem.Map
	fab      *pcie.Fabric
	hostPort *pcie.Port
	dram     *mem.Region
	nic      *NIC
	cfg      QueueConfig
	send     *SendRing
	recv     *RecvRing
}

func newNode(env *sim.Env, name string, msiVector int, headerSplit bool) *node {
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	hostPort := fab.AddPort(name + "-root")
	dram := mm.AddRegion(name+"-dram", mem.HostDRAM, 64<<20, true)
	fab.Attach(hostPort, dram)
	n := NewNIC(env, fab, name+"-nic", DefaultParams())

	sendRing := mm.AddRegion(name+"-sring", mem.HostDRAM, 1024*SendBDSize, true)
	recvRing := mm.AddRegion(name+"-rring", mem.HostDRAM, 1024*RecvBDSize, true)
	recvCpl := mm.AddRegion(name+"-rcpl", mem.HostDRAM, 1024*RecvCplSize, true)
	status := mm.AddRegion(name+"-status", mem.HostDRAM, 64, true)
	for _, r := range []*mem.Region{sendRing, recvRing, recvCpl, status} {
		fab.Attach(hostPort, r)
	}
	cfg := QueueConfig{
		QID: 0, SendRing: sendRing, SendEntries: 1024,
		SendStatus: status.Base,
		RecvRing:   recvRing, RecvEntries: 1024,
		RecvCpl: recvCpl, RecvStatus: status.Base + 8,
		MSIVector: msiVector, HeaderSplit: headerSplit,
	}
	n.ConfigureQueue(cfg)
	return &node{
		mm: mm, fab: fab, hostPort: hostPort, dram: dram, nic: n, cfg: cfg,
		send: NewSendRing(fab, n, cfg),
		recv: NewRecvRing(fab, n, cfg),
	}
}

func testFlow() ether.Flow {
	return ether.Flow{
		SrcMAC: ether.MAC{2, 0, 0, 0, 0, 1}, DstMAC: ether.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: ether.IP{10, 0, 0, 1}, DstIP: ether.IP{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 80,
	}
}

// sendJob posts a header-template BD plus one payload BD and rings.
func sendJob(n *node, flow ether.Flow, seq uint32, payload []byte, lso bool) {
	hdr := ether.HeaderTemplate(flow, seq, ether.FlagACK|ether.FlagPSH)
	hdrAddr := n.dram.Alloc(uint64(len(hdr)), 64)
	n.mm.Write(hdrAddr, hdr)
	payAddr := n.dram.Alloc(uint64(len(payload))+1, 64)
	n.mm.Write(payAddr, payload)
	flags0 := uint16(0)
	if lso {
		flags0 = SendFlagLSO
	}
	// BD lengths are 16-bit, so large payloads span multiple BDs,
	// exactly as on real hardware.
	bds := []SendBD{{Addr: hdrAddr, Len: uint16(len(hdr)), Flags: flags0, MSS: ether.MSS}}
	const maxBD = 32 << 10
	for off := 0; off < len(payload); off += maxBD {
		end := off + maxBD
		if end > len(payload) {
			end = len(payload)
		}
		bds = append(bds, SendBD{Addr: payAddr + mem.Addr(off), Len: uint16(end - off)})
	}
	if len(payload) == 0 {
		bds = append(bds, SendBD{Addr: payAddr, Len: 0})
	}
	bds[len(bds)-1].Flags |= SendFlagEnd
	if err := n.send.Push(bds); err != nil {
		panic(err)
	}
	n.send.RingDoorbell()
}

// postRecv posts count MTU-sized receive buffers.
func postRecv(n *node, count int, bufLen uint32) {
	var bds []RecvBD
	for i := 0; i < count; i++ {
		bds = append(bds, RecvBD{Addr: n.dram.Alloc(uint64(bufLen), 64), Len: bufLen})
	}
	if err := n.recv.Post(bds); err != nil {
		panic(err)
	}
	n.recv.RingDoorbell()
}

func TestSmallSendReceive(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	b := newNode(env, "b", -1, false)
	Connect(a.nic, b.nic)
	postRecv(b, 8, 2048)
	payload := []byte("hello from node a")
	env.Spawn("tx", func(p *sim.Proc) { sendJob(a, testFlow(), 100, payload, false) })
	env.Run(-1)

	fills := b.recv.Poll()
	if len(fills) != 1 {
		t.Fatalf("completions = %d", len(fills))
	}
	f := fills[0]
	if int(f.Cpl.PayLen) != len(payload) || f.Cpl.Seq != 100 {
		t.Fatalf("cpl = %+v", f.Cpl)
	}
	frame := b.mm.Read(f.Addr, int(f.Cpl.HdrLen)+int(f.Cpl.PayLen))
	seg, err := ether.Parse(frame)
	if err != nil {
		t.Fatalf("received frame invalid: %v", err)
	}
	if !bytes.Equal(seg.Payload, payload) {
		t.Fatalf("payload = %q", seg.Payload)
	}
	if seg.Flow != testFlow() {
		t.Fatalf("flow = %+v", seg.Flow)
	}
	tx, rx, txPay, rxPay, drops, errs := a.nic.Stats()
	if tx != 1 || txPay != int64(len(payload)) || drops != 0 || errs != 0 {
		t.Fatalf("a stats: %d %d %d %d %d %d", tx, rx, txPay, rxPay, drops, errs)
	}
}

func TestLSOSegmentsAndReassembly(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	b := newNode(env, "b", -1, true) // header split on receiver
	Connect(a.nic, b.nic)
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	wantFrames := (len(payload) + ether.MSS - 1) / ether.MSS
	postRecv(b, wantFrames+4, HdrOff+ether.MSS)
	env.Spawn("tx", func(p *sim.Proc) { sendJob(a, testFlow(), 0, payload, true) })
	env.Run(-1)

	fills := b.recv.Poll()
	if len(fills) != wantFrames {
		t.Fatalf("frames = %d, want %d", len(fills), wantFrames)
	}
	// Reassemble by sequence number from split buffers.
	rebuilt := make([]byte, len(payload))
	for _, f := range fills {
		pay := b.mm.Read(f.Addr+HdrOff, int(f.Cpl.PayLen))
		copy(rebuilt[f.Cpl.Seq:], pay)
		hdr := b.mm.Read(f.Addr, int(f.Cpl.HdrLen))
		if _, err := ether.ParseHeaders(hdr); err != nil {
			t.Fatalf("split header unparsable: %v", err)
		}
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatal("reassembled payload mismatch")
	}
}

func TestPauseWithoutRecvBuffers(t *testing.T) {
	// 802.3x-style flow control: with no posted receive buffer the NIC
	// pauses (no drop); posting a buffer later releases the frame.
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	b := newNode(env, "b", -1, false)
	Connect(a.nic, b.nic)
	env.Spawn("tx", func(p *sim.Proc) { sendJob(a, testFlow(), 0, []byte("parked"), false) })
	env.Run(-1)
	_, rx, _, _, drops, _ := b.nic.Stats()
	if rx != 0 || drops != 0 {
		t.Fatalf("before buffers: rx=%d drops=%d", rx, drops)
	}
	postRecv(b, 4, 2048)
	env.Run(-1)
	_, rx, _, _, drops, _ = b.nic.Stats()
	if rx != 1 || drops != 0 {
		t.Fatalf("after buffers: rx=%d drops=%d", rx, drops)
	}
	if got := len(b.recv.Poll()); got != 1 {
		t.Fatalf("completions = %d", got)
	}
}

func TestDropWithoutPeer(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	env.Spawn("tx", func(p *sim.Proc) { sendJob(a, testFlow(), 0, []byte("void"), false) })
	env.Run(-1)
	_, _, _, _, drops, _ := a.nic.Stats()
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestFlowSteering(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	b := newNode(env, "b", -1, false)
	Connect(a.nic, b.nic)

	// Configure a second queue on b and steer the test flow to it.
	q1send := b.mm.AddRegion("b-s1", mem.HostDRAM, 64*SendBDSize, true)
	q1recv := b.mm.AddRegion("b-r1", mem.HostDRAM, 64*RecvBDSize, true)
	q1cpl := b.mm.AddRegion("b-c1", mem.HostDRAM, 64*RecvCplSize, true)
	q1status := b.mm.AddRegion("b-st1", mem.HostDRAM, 64, true)
	for _, r := range []*mem.Region{q1send, q1recv, q1cpl, q1status} {
		b.fab.Attach(b.hostPort, r)
	}
	cfg1 := QueueConfig{QID: 1, SendRing: q1send, SendEntries: 64,
		SendStatus: q1status.Base, RecvRing: q1recv, RecvEntries: 64,
		RecvCpl: q1cpl, RecvStatus: q1status.Base + 8, MSIVector: -1}
	b.nic.ConfigureQueue(cfg1)
	recv1 := NewRecvRing(b.fab, b.nic, cfg1)
	recv1.Post([]RecvBD{{Addr: b.dram.Alloc(2048, 64), Len: 2048}})
	recv1.RingDoorbell()
	b.nic.SetSteering(testFlow().Tuple(), 1)

	postRecv(b, 4, 2048) // queue 0 buffers, should stay unused
	env.Spawn("tx", func(p *sim.Proc) { sendJob(a, testFlow(), 0, []byte("steered"), false) })
	env.Run(-1)

	if got := len(recv1.Poll()); got != 1 {
		t.Fatalf("queue 1 completions = %d", got)
	}
	if got := len(b.recv.Poll()); got != 0 {
		t.Fatalf("queue 0 completions = %d", got)
	}
}

func TestArmedIRQRaisedOnce(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	// Receiver uses MSI vector 5 on its own fabric.
	b := newNode(env, "b", 5, false)
	irqs := 0
	b.fab.OnMSI(5, func() { irqs++ })
	Connect(a.nic, b.nic)
	postRecv(b, 8, 2048)
	b.recv.Arm()
	env.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			sendJob(a, testFlow(), uint32(i*10), []byte("ping"), false)
		}
	})
	env.Run(-1)
	if irqs != 1 {
		t.Fatalf("IRQs = %d, want 1 (armed once)", irqs)
	}
	if got := len(b.recv.Poll()); got != 3 {
		t.Fatalf("completions = %d", got)
	}
	// Re-arm with work already pending fires immediately.
	b.recv.Arm()
	env.Run(-1)
	if irqs != 1 {
		// all completions consumed; no pending work, so no IRQ
		t.Fatalf("IRQs after re-arm = %d", irqs)
	}
}

func TestSendRingBackpressure(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	hdrAddr := a.dram.Alloc(ether.HeadersLen, 64)
	a.mm.Write(hdrAddr, ether.HeaderTemplate(testFlow(), 0, ether.FlagACK))
	// Fill the ring without letting the NIC drain (no Run yet).
	for i := 0; i < 512; i++ {
		err := a.send.Push([]SendBD{
			{Addr: hdrAddr, Len: ether.HeadersLen},
			{Addr: hdrAddr, Len: 1, Flags: SendFlagEnd},
		})
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := a.send.Push([]SendBD{{Addr: hdrAddr, Len: 1, Flags: SendFlagEnd}}); err == nil {
		t.Fatal("overfull ring accepted BD")
	}
}

func TestRecvRingOvercommit(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	_ = env
	var bds []RecvBD
	for i := 0; i < 1025; i++ {
		bds = append(bds, RecvBD{Addr: a.dram.Alloc(2048, 64), Len: 2048})
	}
	if err := a.recv.Post(bds); err == nil {
		t.Fatal("overcommit accepted")
	}
}

func TestEffectiveThroughputNear9Gbps(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(env, "a", -1, false)
	b := newNode(env, "b", -1, false)
	Connect(a.nic, b.nic)
	const jobs = 16
	const jobSize = 64 << 10
	postRecv(b, jobs*46+8, 2048)
	env.Spawn("tx", func(p *sim.Proc) {
		payload := make([]byte, jobSize)
		for i := 0; i < jobs; i++ {
			sendJob(a, testFlow(), uint32(i*jobSize), payload, true)
			// Keep the ring from overflowing; the wire stays busy.
			for a.send.FreeSlots() < 900 {
				p.Sleep(10 * sim.Microsecond)
			}
		}
	})
	// Run to exhaustion: the final event is the last receive completion,
	// so the elapsed clock measures delivered payload throughput.
	end := env.Run(-1)
	gbps := float64(jobs*jobSize) * 8 / end.Seconds() / 1e9
	// Wire-effective ≈9.4 Gbps minus pipeline fill/drain bubbles.
	if gbps < 8.5 || gbps > 9.6 {
		t.Fatalf("effective throughput %.2f Gbps, want ≈9.4", gbps)
	}
	_, rx, _, rxPay, drops, errs := b.nic.Stats()
	if drops != 0 || errs != 0 {
		t.Fatalf("drops=%d errs=%d", drops, errs)
	}
	if rxPay != jobs*jobSize {
		t.Fatalf("rx payload = %d", rxPay)
	}
	_ = rx
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, sim.Time) {
		env := sim.NewEnv()
		a := newNode(env, "a", -1, false)
		b := newNode(env, "b", -1, false)
		Connect(a.nic, b.nic)
		postRecv(b, 64, 2048)
		env.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				sendJob(a, testFlow(), uint32(i*100), []byte("replay"), false)
				p.Sleep(3 * sim.Microsecond)
			}
		})
		end := env.Run(-1)
		_, rx, _, _, _, _ := b.nic.Stats()
		return rx, end
	}
	rx1, t1 := run()
	rx2, t2 := run()
	if rx1 != rx2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", rx1, t1, rx2, t2)
	}
}

func TestCorruptFrameDroppedByChecksum(t *testing.T) {
	// Failure injection: a frame corrupted in flight must be rejected
	// by the receive checksum verification, never delivered.
	env := sim.NewEnv()
	b := newNode(env, "b", -1, false)
	postRecv(b, 4, 2048)
	good := ether.Segment{Flow: testFlow(), Seq: 0, Flags: ether.FlagACK,
		Payload: []byte("intact payload")}
	frame := good.Marshal()
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-3] ^= 0x40
	// Deliver both directly to the device's receive path.
	b.nic.rxQ.Put(corrupt)
	b.nic.rxQ.Put(frame)
	env.Run(-1)
	_, rx, _, _, drops, errs := b.nic.Stats()
	if errs != 1 {
		t.Fatalf("rxErrors = %d, want 1", errs)
	}
	if rx != 1 || drops != 0 {
		t.Fatalf("rx=%d drops=%d", rx, drops)
	}
	fills := b.recv.Poll()
	if len(fills) != 1 {
		t.Fatalf("delivered %d frames", len(fills))
	}
	got := b.mm.Read(fills[0].Addr, int(fills[0].Cpl.HdrLen)+int(fills[0].Cpl.PayLen))
	if seg, err := ether.Parse(got); err != nil || string(seg.Payload) != "intact payload" {
		t.Fatalf("delivered frame wrong: %v %q", err, seg.Payload)
	}
}
