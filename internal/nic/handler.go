package nic

// Run-to-completion handler-proc flavors of the NIC receive loops
// (DESIGN.md §16). Each machine replays its goroutine twin statement
// for statement: the same queue operations in the same order, the
// same occupancy sleeps (as re-arms), and the same flush DMA (as a
// pcie.XferVec) — so the event sequence, and therefore every golden
// fingerprint, is byte-identical across flavors.

import (
	"dcsctrl/internal/ether"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// rxDemuxState enumerates where the demux machine resumes.
type rxDemuxState int

const (
	rxsGet   rxDemuxState = iota // fetch the next arrival burst
	rxsDemux                     // demux occupancy elapsed; steer frames
	rxsStall                     // a queue FIFO is full; waiting for space
)

// rxDemuxMachine is the handler flavor of rxLoop: verify, parse,
// steer. The burst slice persists across dispatches, exactly like the
// goroutine's loop-local scratch.
type rxDemuxMachine struct {
	n     *NIC
	st    rxDemuxState
	burst [][]byte
	i     int // next frame to steer within burst

	// Parked-frame context while stalled on a full queue FIFO.
	stallQ   *nicQueue
	stallSeg ether.Segment
}

// run is the machine's handler body.
func (m *rxDemuxMachine) run(h *sim.HandlerCtx) {
	n := m.n
	for {
		switch m.st {
		case rxsGet:
			frame, ok := n.rxQ.GetH(h)
			if !ok {
				return
			}
			m.burst = append(m.burst[:0], frame)
			for len(m.burst) < rxBatch {
				f2, ok := n.rxQ.TryGet()
				if !ok {
					break
				}
				m.burst = append(m.burst, f2)
			}
			// One demux occupancy per arrival burst, mirroring the
			// goroutine's Sleep (a zero charge falls through inline the
			// way Sleep(0) returns without an event).
			m.i = 0
			m.st = rxsDemux
			if d := sim.Time(len(m.burst)) * n.params.RxDemux; d > 0 {
				h.Rearm(d)
				return
			}
		case rxsDemux:
			for m.i < len(m.burst) {
				frame := m.burst[m.i]
				seg, err := ether.ParseView(frame)
				if err != nil {
					n.rxErrors++
					n.putFrameBuf(frame)
					m.i++
					continue
				}
				qid, ok := n.steering[seg.Flow.Tuple()]
				if !ok {
					qid = 0
				}
				q, exists := n.queues[qid]
				if !exists {
					n.drops++
					n.putFrameBuf(frame)
					m.i++
					continue
				}
				if q.rxFIFO.Len() >= rxQueueCap {
					m.stallQ, m.stallSeg = q, seg
					m.st = rxsStall
					q.rxSpace.WaitH(h)
					return
				}
				q.rxFIFO.Put(rxFrame{frame: frame, seg: seg})
				m.i++
			}
			for j := range m.burst {
				m.burst[j] = nil // drop frame refs until the next burst
			}
			m.st = rxsGet
		case rxsStall:
			// Re-check on every broadcast, like the goroutine's
			// for-Wait loop; the frame was already parsed.
			q := m.stallQ
			if q.rxFIFO.Len() >= rxQueueCap {
				q.rxSpace.WaitH(h)
				return
			}
			q.rxFIFO.Put(rxFrame{frame: m.burst[m.i], seg: m.stallSeg})
			m.i++
			m.stallQ, m.stallSeg = nil, ether.Segment{}
			m.st = rxsDemux
		}
	}
}

// rxCplState enumerates where the completer machine resumes.
type rxCplState int

const (
	csGet     rxCplState = iota // fetch the next in-flight DMA
	csWaitSig                   // waiting for its completion signal
	csFlush                     // flush DMA in progress
)

// rxCplMachine is the handler flavor of rxCplLoop: in-order DMA
// retirement, slot recycling, coalesced completion flushes.
type rxCplMachine struct {
	n    *NIC
	q    *nicQueue
	st   rxCplState
	pend rxPending
	vec  pcie.XferVec
}

// run is the machine's handler body.
func (m *rxCplMachine) run(h *sim.HandlerCtx) {
	n, q := m.n, m.q
	for {
		switch m.st {
		case csGet:
			pend, ok := q.rxPend.GetH(h)
			if !ok {
				return
			}
			m.pend = pend
			m.st = csWaitSig
		case csWaitSig:
			if !m.pend.sig.WaitH(h) {
				return
			}
			// This machine is the signal's only waiter, so it can be
			// recycled as soon as the completion is observed.
			n.fab.RecycleAsyncSignal(m.pend.sig)
			q.rxSlots.Put(m.pend.slot)
			n.rxFrames++
			n.rxPayload += int64(m.pend.pay)
			n.RxPerQueue[q.cfg.QID]++
			q.cplBuf = append(q.cplBuf, m.pend.cpl)
			m.pend = rxPending{}
			// Flush when the batch fills or no more DMAs are in flight
			// (the queue may be paused waiting for these completions).
			if len(q.cplBuf) >= rxBatch || q.rxPend.Len() == 0 {
				if n.prepFlush(q) > 0 {
					m.vec.Start(n.fab, n.port, q.cplStage, q.cplExts, false)
					m.st = csFlush
					continue
				}
			}
			m.st = csGet
		case csFlush:
			if !m.vec.Step(h) {
				return
			}
			n.finishFlush(q)
			m.st = csGet
		}
	}
}
