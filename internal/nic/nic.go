package nic

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// Params are the NIC performance characteristics (BCM57711-class).
type Params struct {
	WireBps    float64  // line rate, 10 Gbit/s
	PropDelay  sim.Time // cable + peer PHY latency
	TxOverhead sim.Time // per-frame transmit pipeline cost
	RxOverhead sim.Time // per-frame receive pipeline cost (per queue)
	RxDemux    sim.Time // per-frame parse/steer cost in the shared stage
	BDFetch    sim.Time // descriptor fetch/decode cost
	// Faults injects wire corruption and stuck descriptor fetches;
	// nil disables injection.
	Faults *fault.Injector
}

// Fault-recovery timing: a stuck descriptor fetch is re-read after a
// recovery delay; frameReplayCap bounds back-to-back corruptions of
// one frame so transmission always terminates.
const (
	stuckBDRecovery = 2 * sim.Microsecond
	frameReplayCap  = 8
)

// DefaultParams return 10-GbE defaults.
func DefaultParams() Params {
	return Params{
		WireBps:    10e9,
		PropDelay:  2 * sim.Microsecond,
		TxOverhead: 300 * sim.Nanosecond,
		RxOverhead: 300 * sim.Nanosecond,
		RxDemux:    100 * sim.Nanosecond,
		BDFetch:    150 * sim.Nanosecond,
	}
}

// QueueConfig is one send/receive queue pair from the submitter's
// point of view. Ring regions live in submitter memory (host DRAM for
// the kernel driver, FPGA BRAM for the HDC Engine's NIC controller).
type QueueConfig struct {
	QID         uint16
	SendRing    *mem.Region
	SendEntries int
	SendStatus  mem.Addr // 8-byte cumulative completed-BD counter
	RecvRing    *mem.Region
	RecvEntries int
	RecvCpl     *mem.Region
	RecvStatus  mem.Addr // 8-byte cumulative completion counter
	MSIVector   int      // <0: no interrupts (write-hook consumers)
	HeaderSplit bool     // split headers/payload on receive
}

// doorbell layout: 32 bytes per queue.
const (
	dbStride   = 32
	dbSendTail = 0
	dbSendArm  = 8
	dbRecvTail = 16
	dbRecvArm  = 24
)

type nicQueue struct {
	cfg QueueConfig

	sendTail uint64 // doorbell: BDs posted (cumulative)
	sendHead uint64 // BDs consumed (cumulative)
	sendKick *sim.Cond

	recvTail uint64 // doorbell: recv BDs posted (cumulative)
	recvHead uint64 // recv BDs consumed (cumulative)
	recvCplN uint64 // completions written (cumulative)

	// Armed-interrupt state: the driver arms with its acknowledged
	// counts; the NIC fires when completions run past an ack.
	armed   bool
	sendAck uint64
	recvAck uint64

	txStage  mem.Addr  // per-queue gather buffer in NIC internal memory
	scratch  mem.Addr  // per-queue descriptor/status scratch
	recvKick *sim.Cond // receive buffers posted (un-pause)

	// Per-queue receive pipeline: the demux stage steers parsed frames
	// here; an independent queue process fills buffers and posts
	// completions, so receive scales across queues (how multi-queue
	// 40 GbE hardware reaches line rate).
	rxFIFO  *sim.Queue[rxFrame]
	rxSpace *sim.Cond // signalled when the FIFO drains below its cap
	rxStage mem.Addr

	// Outstanding receive-DMA tags: payload writes overlap (per-tag
	// staging slots); a completer retires them in order so completion
	// entries stay FIFO.
	rxSlots  *sim.Queue[mem.Addr]
	rxPend   *sim.Queue[rxPending]
	cplStage mem.Addr

	bdCache   []RecvBD  // prefetched receive descriptors
	bdHead    int       // next unconsumed bdCache entry
	cplBuf    []RecvCpl // completions awaiting a coalesced flush
	cplFirst  uint64    // cumulative index of cplBuf[0]
	cplIssued uint64    // completions assigned an index (issue order)

	// Send-descriptor burst fetch: bdStage stages a wrap-aware vectored
	// DMA of every posted-but-unfetched send BD; sbdCache holds the
	// decoded burst, sendFetched the cumulative fetch cursor.
	bdStage     mem.Addr
	sbdCache    []SendBD
	sbdHead     int
	sendFetched uint64
	sendExts    []mem.Extent // merged gather extents scratch (txLoop only)
	cplExts     []mem.Extent // completion-flush extents scratch (rxCplLoop only)

	// irqQueued coalesces same-instant arm doorbells into one deferred
	// interrupt check (irqFn bound once; see Env.Chain).
	irqQueued bool
	irqFn     func()

	// txIdle is true while txLoop is parked on sendKick with no staged
	// work it could progress without a doorbell — part of the transmit-
	// quiescence test gating analytic multi-charge plans (DESIGN.md §13).
	txIdle bool

	// Reused per-packet LSO segment scratch: one packet is in flight
	// per queue at a time, so a single slice makes the transmit path
	// allocation-free in steady state.
	segs []ether.Segment
}

// bdLen returns the number of prefetched, unconsumed receive BDs.
func (q *nicQueue) bdLen() int { return len(q.bdCache) - q.bdHead }

// NIC is the device model.
type NIC struct {
	Name string

	env    *sim.Env
	fab    *pcie.Fabric
	params Params
	port   *pcie.Port

	Doorbells *mem.Region
	internal  *mem.Region

	txBW    *sim.BandwidthServer
	txFIFO  *sim.Queue[outFrame]
	txSpace *sim.Cond // signalled when the FIFO drains below its cap
	peer    *NIC
	uplink  Uplink
	rxQ     *sim.Queue[[]byte]

	queues    map[uint16]*nicQueue
	queueList []*nicQueue // deterministic iteration order
	steering  map[ether.Tuple]uint16

	txFrames, rxFrames   int64
	txPayload, rxPayload int64
	drops, rxErrors      int64
	txReplays            int64 // wire corruptions replayed by the link layer
	bdRefetches          int64 // stuck descriptor fetches re-read

	// Deterministic free lists (DESIGN.md §11): frameFree recycles
	// consumed frame buffers back to the marshalling side, fdFree
	// recycles wire-delivery records and their bound callbacks. Both
	// are LIFO lists driven only from the simulated timeline.
	frameFree [][]byte
	fdFree    []*frameDelivery

	// Flow-fidelity transmit state (flow.go): per-connection phase
	// machines deciding segment eligibility, the analytic wire clock,
	// the pending-claim exit ring bounding virtual FIFO occupancy, and
	// the count of real (per-frame) frames between txFIFO.Put and wire
	// exit — claims may only form while that count is zero, so the
	// analytic and per-frame schedules never interleave on the wire.
	flows        map[ether.Tuple]*ether.FlowState
	wireFree     sim.Time
	claimExits   []sim.Time
	claimHead    int
	realInFlight int
	segFrames    int64 // frames accounted through flow segments
	wbFree       []*wireBatch

	// eng is the analytic receive engine, created lazily on flow-
	// exclusive fabrics (flow.go).
	eng *rxEngine

	// RxPerQueue counts delivered frames per queue (diagnostics).
	RxPerQueue map[uint16]int64
}

// framePoolCap bounds the recycled-frame list; one-directional traffic
// would otherwise grow the receiver's pool without bound.
const framePoolCap = 256

func (n *NIC) getFrameBuf() []byte {
	if k := len(n.frameFree); k > 0 {
		b := n.frameFree[k-1]
		n.frameFree = n.frameFree[:k-1]
		return b
	}
	return nil
}

func (n *NIC) putFrameBuf(b []byte) {
	if len(n.frameFree) < framePoolCap {
		n.frameFree = append(n.frameFree, b)
	}
}

// frameDelivery is one propagation-delayed frame hand-off to the peer
// NIC. fn is the record's bound deliver method, created once per
// record and reused.
type frameDelivery struct {
	nic   *NIC
	to    *sim.Queue[[]byte]
	frame []byte
	fn    func()
}

func (d *frameDelivery) deliver() {
	d.to.Put(d.frame)
	d.frame = nil
	d.nic.fdFree = append(d.nic.fdFree, d)
}

// scheduleDelivery hands frame to q after the wire propagation delay
// without allocating a closure per frame.
func (n *NIC) scheduleDelivery(q *sim.Queue[[]byte], frame []byte) {
	var d *frameDelivery
	if k := len(n.fdFree); k > 0 {
		d = n.fdFree[k-1]
		n.fdFree = n.fdFree[:k-1]
	} else {
		d = &frameDelivery{nic: n}
		d.fn = d.deliver
	}
	d.to, d.frame = q, frame
	n.env.Schedule(n.params.PropDelay, d.fn)
}

// NewNIC builds the device on a new fabric port.
func NewNIC(env *sim.Env, fab *pcie.Fabric, name string, params Params) *NIC {
	n := &NIC{
		Name:       name,
		env:        env,
		fab:        fab,
		params:     params,
		queues:     map[uint16]*nicQueue{},
		steering:   map[ether.Tuple]uint16{},
		flows:      map[ether.Tuple]*ether.FlowState{},
		RxPerQueue: map[uint16]int64{},
	}
	n.port = fab.AddPort(name)
	mm := fab.Mem()
	n.Doorbells = mm.AddRegion(name+"-doorbells", mem.MMIO, 4096, true)
	n.internal = mm.AddRegion(name+"-internal", mem.DeviceInternal, 8<<20, false)
	fab.Attach(n.port, n.Doorbells)
	fab.Attach(n.port, n.internal)
	n.rxQ = sim.NewQueue[[]byte](env, name+"-rx")
	n.txBW = sim.NewBandwidthServer(env, name+"-wire-tx", params.WireBps, 0)
	n.txFIFO = sim.NewQueue[outFrame](env, name+"-txfifo")
	n.txSpace = sim.NewCond(env)
	n.Doorbells.SetWriteHook(n.onDoorbell)
	if env.HandlerProcs() {
		env.SpawnHandler(name+"-rx", (&rxDemuxMachine{n: n}).run)
	} else {
		env.Spawn(name+"-rx", n.rxLoop)
	}
	env.Spawn(name+"-tx-wire", n.txWireLoop)
	return n
}

// outFrame is a fully built frame queued for wire serialization.
type outFrame struct {
	frame   []byte
	wireLen int
	payLen  int
}

// txFIFOCap bounds the on-chip transmit FIFO (in frames); descriptor
// processing stalls when the wire falls behind, as on real hardware.
const txFIFOCap = 64

// txWireLoop drains built frames onto the wire at line rate.
//
// Under fault injection a frame may be corrupted on the wire: the
// corrupted copy is still delivered (the receiver's checksum check
// drops it and counts an rxError) and the link layer retransmits the
// original after a NAK round trip. Replays happen here, before the
// next frame is taken from the FIFO, so per-link FIFO delivery order
// is preserved — receivers never see reordering, only latency.
func (n *NIC) txWireLoop(p *sim.Proc) {
	for {
		f := n.txFIFO.Get(p)
		n.txSpace.Broadcast()
		// Queue behind analytic flow segments exactly as the FIFO would
		// have queued behind their per-frame expansion: claims book the
		// wire clock without occupying txBW (flow.go), so a real frame
		// waits out the booked window first.
		if w := n.wireFree; w > n.env.Now() {
			p.Sleep(w - n.env.Now())
		}
		for attempt := 0; ; attempt++ {
			n.txBW.Transfer(p, f.wireLen)
			n.txFrames++
			peer, up := n.peer, n.uplink
			if peer == nil && up == nil {
				n.drops++
				n.putFrameBuf(f.frame)
				break
			}
			if attempt < frameReplayCap && n.params.Faults.Hit(fault.NICCorruptFrame) {
				n.txReplays++
				bad := append([]byte(nil), f.frame...)
				bad[len(bad)-1] ^= 0xFF // breaks the TCP checksum
				if up != nil {
					up.SendFrame(bad, f.wireLen, 0)
				} else {
					n.deliverFrame(peer, bad)
				}
				p.Sleep(2 * n.params.PropDelay) // NAK round trip
				continue
			}
			n.txPayload += int64(f.payLen)
			if up != nil {
				up.SendFrame(f.frame, f.wireLen, f.payLen)
			} else {
				n.deliverFrame(peer, f.frame)
			}
			break
		}
		n.wireFree = n.env.Now()
		n.realInFlight--
		n.env.CountIO(1) // one wire frame left the device
	}
}

// deliverFrame hands one wire frame to the peer after propagation,
// through the peer's analytic receive engine when it has one.
func (n *NIC) deliverFrame(peer *NIC, frame []byte) {
	if e := peer.engine(); e != nil {
		e.scheduleArrival(frame, n.env.Now()+n.params.PropDelay)
		return
	}
	n.scheduleDelivery(peer.rxQ, frame)
}

// Port returns the NIC's fabric port.
func (n *NIC) Port() *pcie.Port { return n.port }

// Stats returns frame/byte/drop counters.
func (n *NIC) Stats() (txFrames, rxFrames, txPayload, rxPayload, drops, rxErrors int64) {
	return n.txFrames, n.rxFrames, n.txPayload, n.rxPayload, n.drops, n.rxErrors
}

// RecoveryStats returns the fault-recovery counters: frames replayed
// after wire corruption and descriptors re-fetched after a stuck read.
func (n *NIC) RecoveryStats() (txReplays, bdRefetches int64) {
	return n.txReplays, n.bdRefetches
}

// Connect wires two NICs back-to-back (the paper's two-node setup).
func Connect(a, b *NIC) {
	if a.uplink != nil || b.uplink != nil {
		panic("nic: Connect on a NIC already attached to a switched fabric")
	}
	a.peer, b.peer = b, a
}

// Uplink is a switched-fabric attachment point: SendFrame takes
// ownership of a fully serialized wire frame at the instant its last
// bit leaves the NIC (internal/sim/shard.Outbox satisfies this shape).
// With an uplink attached there is no peer, so the flow-level transmit
// fast path legally self-disables (claimRun requires a peer) and every
// frame travels per-frame — the fabric model owns all post-NIC timing.
type Uplink interface {
	SendFrame(frame []byte, wireLen, payLen int)
}

// AttachUplink points the NIC's transmit side at a switched fabric
// instead of a back-to-back peer.
func (n *NIC) AttachUplink(u Uplink) {
	if n.peer != nil {
		panic("nic: AttachUplink on a NIC already connected back-to-back")
	}
	n.uplink = u
}

// InjectFrame hands one wire frame arriving from a switched fabric to
// the receive path at the current instant — the fabric has already
// charged serialization and propagation for every hop. The NIC takes
// ownership of the frame buffer and recycles it through its free list
// once consumed.
func (n *NIC) InjectFrame(frame []byte) {
	n.rxQ.Put(frame)
}

// SetSteering directs frames matching the connection tuple to a queue
// — how receive traffic reaches the HDC Engine's dedicated queue pair
// instead of the host driver's.
func (n *NIC) SetSteering(t ether.Tuple, qid uint16) { n.steering[t] = qid }

// ClearSteering removes a steering rule.
func (n *NIC) ClearSteering(t ether.Tuple) { delete(n.steering, t) }

// ConfigureQueue registers a queue pair and starts its transmit
// process (configuration-time operation, no simulated cost).
func (n *NIC) ConfigureQueue(cfg QueueConfig) {
	if _, dup := n.queues[cfg.QID]; dup {
		panic(fmt.Sprintf("nic: queue %d exists on %s", cfg.QID, n.Name))
	}
	if n.eng != nil {
		// The analytic receive engine replicates a single queue's
		// pipeline; reconfiguring after it has carried traffic would
		// strand its state.
		panic(fmt.Sprintf("nic: %s: cannot add queues after the flow receive engine started", n.Name))
	}
	if cfg.SendEntries < 2 || cfg.RecvEntries < 2 {
		panic("nic: queue too small")
	}
	if cfg.SendRing.Size < uint64(cfg.SendEntries*SendBDSize) ||
		cfg.RecvRing.Size < uint64(cfg.RecvEntries*RecvBDSize) ||
		cfg.RecvCpl.Size < uint64(cfg.RecvEntries*RecvCplSize) {
		panic("nic: ring region too small")
	}
	q := &nicQueue{
		cfg:      cfg,
		sendKick: sim.NewCond(n.env),
		recvKick: sim.NewCond(n.env),
		txStage:  n.internal.Alloc(128<<10, 4096),
		scratch:  n.internal.Alloc(256, 64),
		rxFIFO:   sim.NewQueue[rxFrame](n.env, fmt.Sprintf("%s-rxq%d", n.Name, cfg.QID)),
		rxSpace:  sim.NewCond(n.env),
		rxStage:  n.internal.Alloc(4<<10, 64),
		rxSlots:  sim.NewQueue[mem.Addr](n.env, fmt.Sprintf("%s-rxslots%d", n.Name, cfg.QID)),
		rxPend:   sim.NewQueue[rxPending](n.env, fmt.Sprintf("%s-rxpend%d", n.Name, cfg.QID)),
		cplStage: n.internal.Alloc(4<<10, 64),
		bdStage:  n.internal.Alloc(uint64(cfg.SendEntries)*SendBDSize, 64),
	}
	q.irqFn = func() {
		q.irqQueued = false
		n.maybeIRQ(q)
	}
	for i := 0; i < rxDMATags; i++ {
		q.rxSlots.Put(n.internal.Alloc(2048, 64))
	}
	n.queues[cfg.QID] = q
	n.queueList = append(n.queueList, q)
	n.env.Spawn(fmt.Sprintf("%s-tx-q%d", n.Name, cfg.QID), func(p *sim.Proc) { n.txLoop(p, q) })
	n.env.Spawn(fmt.Sprintf("%s-rx-q%d", n.Name, cfg.QID), func(p *sim.Proc) { n.rxQueueLoop(p, q) })
	if n.env.HandlerProcs() {
		n.env.SpawnHandler(fmt.Sprintf("%s-rxcpl-q%d", n.Name, cfg.QID), (&rxCplMachine{n: n, q: q}).run)
	} else {
		n.env.Spawn(fmt.Sprintf("%s-rxcpl-q%d", n.Name, cfg.QID), func(p *sim.Proc) { n.rxCplLoop(p, q) })
	}
}

// DoorbellAddrs returns the four doorbell addresses for a queue.
func (n *NIC) DoorbellAddrs(qid uint16) (sendTail, sendArm, recvTail, recvArm mem.Addr) {
	base := n.Doorbells.Base + mem.Addr(uint64(qid)*dbStride)
	return base + dbSendTail, base + dbSendArm, base + dbRecvTail, base + dbRecvArm
}

func (n *NIC) onDoorbell(off uint64, _ int) {
	qid := uint16(off / dbStride)
	q, ok := n.queues[qid]
	if !ok {
		panic(fmt.Sprintf("nic: doorbell for unknown queue %d on %s", qid, n.Name))
	}
	val := le64(n.Doorbells.Bytes(off, 8))
	switch off % dbStride {
	case dbSendTail:
		q.sendTail = val
		q.sendKick.Broadcast()
	case dbSendArm:
		q.sendAck = val
		q.armed = true
		n.queueIRQCheck(q)
	case dbRecvTail:
		q.recvTail = val
		q.recvKick.Broadcast()
		if n.eng != nil && n.eng.q == q {
			n.eng.kick()
		}
	case dbRecvArm:
		q.recvAck = val
		q.armed = true
		n.queueIRQCheck(q)
	}
}

// queueIRQCheck defers the queue's interrupt check to the end of the
// current instant so same-instant send-arm and recv-arm doorbells
// coalesce into one check (and at most one MSI). The doorbell hook is
// in tail position of the posted-write delivery, so Chain may legally
// run the check inline when nothing else is due.
func (n *NIC) queueIRQCheck(q *nicQueue) {
	if !q.irqQueued {
		q.irqQueued = true
		n.env.Chain(q.irqFn)
	}
}

// maybeIRQ raises the queue's MSI when armed and completions have run
// past the driver's acknowledged counts, then disarms (NAPI-style:
// the driver re-arms with fresh acks after draining).
func (n *NIC) maybeIRQ(q *nicQueue) {
	if q.cfg.MSIVector < 0 || !q.armed {
		return
	}
	if q.sendHead > q.sendAck || q.recvCplN > q.recvAck {
		q.armed = false
		n.fab.RaiseMSI(q.cfg.MSIVector)
	}
}

// fetchSendBDs burst-fetches every posted-but-unfetched send BD in one
// wrap-aware vectored DMA (at most two extents) and decodes the batch
// into the queue's descriptor cache. Per-descriptor stuck-read faults
// are still drawn individually so injection statistics are preserved;
// recovery re-reads the whole burst once after the accumulated delay.
func (n *NIC) fetchSendBDs(p *sim.Proc, q *nicQueue) {
	avail := int(q.sendTail - q.sendFetched)
	if avail == 0 {
		return
	}
	slot := int(q.sendFetched % uint64(q.cfg.SendEntries))
	exts := ringExtents(q.sendExts[:0], q.cfg.SendRing.Base, slot, avail, q.cfg.SendEntries, SendBDSize)
	q.sendExts = exts
	n.fab.MustDMAVec(p, n.port, q.bdStage, exts, true)
	p.Sleep(n.params.BDFetch)
	stuck := 0
	for i := 0; i < avail; i++ {
		if n.params.Faults.Hit(fault.NICStuckBD) {
			stuck++
		}
	}
	if stuck > 0 {
		// Stale descriptor reads: re-fetch after the recovery delay.
		n.bdRefetches += int64(stuck)
		p.Sleep(sim.Time(stuck) * stuckBDRecovery)
		n.fab.MustDMAVec(p, n.port, q.bdStage, exts, true)
		p.Sleep(n.params.BDFetch)
	}
	if q.sbdHead == len(q.sbdCache) {
		q.sbdCache = q.sbdCache[:0]
		q.sbdHead = 0
	}
	raw := n.fab.Mem().View(q.bdStage, avail*SendBDSize)
	for i := 0; i < avail; i++ {
		bd, err := DecodeSendBD(raw[i*SendBDSize:])
		if err != nil {
			panic(err) // corrupted ring memory is a modelling bug
		}
		q.sbdCache = append(q.sbdCache, bd)
	}
	q.sendFetched += uint64(avail)
}

// ringExtents appends the wrap-aware extents (at most two) covering n
// consecutive entries of size esz starting at slot head in a ring of
// entries slots based at base.
func ringExtents(exts []mem.Extent, base mem.Addr, head, n, entries, esz int) []mem.Extent {
	first := entries - head
	if first > n {
		first = n
	}
	exts = append(exts, mem.Extent{Addr: base + mem.Addr(uint64(head)*uint64(esz)), Len: first * esz})
	if n > first {
		exts = append(exts, mem.Extent{Addr: base, Len: (n - first) * esz})
	}
	return exts
}

// txLoop consumes send BD chains, gathers buffers, applies LSO and
// checksum offload, and serializes frames onto the wire. Descriptors
// are burst-fetched and every complete chain in the burst is
// transmitted before the single per-burst status write-back and
// interrupt check — the descriptor-drain batching of real NICs.
func (n *NIC) txLoop(p *sim.Proc, q *nicQueue) {
	mm := n.fab.Mem()
	for {
		for q.sendHead == q.sendTail {
			q.txIdle = true
			q.sendKick.Wait(p)
			q.txIdle = false
		}
		n.fetchSendBDsAuto(p, q)
		sent := false
		for {
			// Find one complete chain (through its END flag) in the cache.
			end := -1
			for i := q.sbdHead; i < len(q.sbdCache); i++ {
				if i-q.sbdHead >= 64 {
					panic("nic: runaway BD chain without END flag")
				}
				if q.sbdCache[i].Flags&SendFlagEnd != 0 {
					end = i
					break
				}
			}
			if end < 0 {
				if q.sendFetched != q.sendTail {
					n.fetchSendBDsAuto(p, q)
					continue
				}
				if !sent {
					// Incomplete chain posted; wait for the rest. Nothing
					// here can progress without a doorbell, so the queue
					// counts as transmit-quiescent for plan gating.
					q.txIdle = true
					q.sendKick.Wait(p)
					q.txIdle = false
					n.fetchSendBDsAuto(p, q)
					continue
				}
				break // flush what was consumed; outer loop waits for more
			}
			chain := q.sbdCache[q.sbdHead : end+1]
			q.sbdHead = end + 1

			// Gather the chain into the queue's staging buffer, merging
			// physically adjacent fragments into one extent each.
			off := 0
			exts := q.sendExts[:0]
			for _, bd := range chain {
				if off+int(bd.Len) > 128<<10 {
					panic("nic: send chain exceeds staging buffer")
				}
				if k := len(exts) - 1; k >= 0 && exts[k].Addr+mem.Addr(exts[k].Len) == bd.Addr {
					exts[k].Len += int(bd.Len)
				} else {
					exts = append(exts, mem.Extent{Addr: bd.Addr, Len: int(bd.Len)})
				}
				off += int(bd.Len)
			}
			q.sendExts = exts
			// The staging view is stable for the whole transmit: only this
			// queue's txLoop writes q.txStage, and Marshal copies each
			// segment before it reaches the FIFO.
			if n.fab.FlowMode() {
				n.flowGatherTransmit(p, q, chain[0], exts, off)
			} else {
				n.fab.MustDMAVec(p, n.port, q.txStage, exts, true)
				raw := mm.View(q.txStage, off)
				n.transmit(p, q, chain[0], raw, 0)
			}
			q.sendHead += uint64(len(chain))

			// BD completion: buffers were fully fetched into the FIFO, so
			// the submitter may reuse them (wire transmission proceeds
			// asynchronously, as on real hardware). The write-back stays
			// per chain — withholding it until the whole burst drained
			// would stall submitters waiting on completed chains while a
			// later chain's frames trickle onto the wire.
			var cnt [8]byte
			putLE64(cnt[:], q.sendHead)
			mm.Write(q.scratch, cnt[:])
			n.fab.MustDMA(p, n.port, q.cfg.SendStatus, q.scratch, 8)
			n.maybeIRQ(q)
			sent = true
		}
	}
}

// transmit parses the header template, segments, and puts frames on
// the wire — per-frame through the FIFO, or as analytic flow-segment
// claims when the connection's state machine and the mechanical
// crossover conditions allow (flow.go). pre is wire-gather time still
// outstanding when a plan called transmit early; it is folded into the
// first build sleep so the frames land at the per-frame instants.
func (n *NIC) transmit(p *sim.Proc, q *nicQueue, first SendBD, raw []byte, pre sim.Time) {
	if len(raw) < ether.HeadersLen {
		n.drops++
		return
	}
	proto, err := ether.ParseHeaders(raw[:ether.HeadersLen])
	if err != nil {
		n.drops++
		return
	}
	// Segment payloads alias the staging buffer (raw); that is safe
	// because Marshal copies every byte into the frame before the
	// staging buffer can be rewritten.
	payload := raw[ether.HeadersLen:]
	segs := q.segs[:0]
	if first.Flags&SendFlagLSO != 0 {
		segs = ether.AppendSegments(segs, proto.Flow, proto.Seq, payload, int(first.MSS))
	} else {
		if len(payload) > ether.MSS {
			n.drops++
			return
		}
		segs = append(segs, ether.Segment{Flow: proto.Flow, Seq: proto.Seq, Ack: proto.Ack,
			Flags: proto.Flags | ether.FlagACK, Payload: payload})
	}
	q.segs = segs
	claimable := n.observeBurst(proto.Flow.Tuple(), segs)
	target := n.env.Now() + pre
	// The LSO segment loop runs in batched events: each pass pays the
	// pipeline cost for a run of frames in one sleep and marshals the
	// run back-to-back. Run sizes ramp up exponentially so the wire is
	// fed after one frame's overhead and never starves while later,
	// larger runs build (the total overhead charged is identical to the
	// per-frame model); a full FIFO still parks the process.
	ramp := 1
	for i := 0; i < len(segs); {
		// The FIFO budget counts claimed frames still on the analytic
		// wire (virtualQueued): while claims are draining, space opens
		// at their booked exits — the instants the wire loop's Get
		// would broadcast txSpace in the per-frame schedule.
		for n.txFIFO.Len()+n.virtualQueued() >= txFIFOCap {
			if x, ok := n.nextClaimExit(); ok {
				p.Sleep(x - n.env.Now())
			} else {
				n.txSpace.Wait(p)
			}
		}
		run := txFIFOCap - n.txFIFO.Len() - n.virtualQueued()
		if run > ramp {
			run = ramp
		}
		if rem := len(segs) - i; run > rem {
			run = rem
		}
		// Per-frame pipeline cost overlaps wire serialization: it is
		// paid here, in the build stage, not on the wire.
		d := n.params.TxOverhead * sim.Time(run)
		if now := n.env.Now(); now < target {
			d += target - now
		}
		p.Sleep(d)
		if claimable && n.claimRun(segs[i:i+run]) {
			i += run
		} else {
			for j := 0; j < run; j++ {
				s := &segs[i+j]
				// Checksum offload happens in MarshalTo; recycled frame
				// buffers make steady-state transmission allocation-free.
				frame := s.MarshalTo(n.getFrameBuf())
				n.realInFlight++
				n.txFIFO.Put(outFrame{frame: frame, wireLen: s.WireLen(), payLen: len(s.Payload)})
			}
			i += run
		}
		if ramp < txFIFOCap {
			ramp *= 2
		}
	}
}

// rxBatch is the receive-side coalescing factor: descriptors are
// prefetched and completions flushed in batches of up to this many,
// as real NICs do to amortize DMA transactions.
const rxBatch = 16

// fetchRecvBDs refills the queue's descriptor cache with one batched
// DMA (contiguous ring slots).
func (n *NIC) fetchRecvBDs(p *sim.Proc, q *nicQueue) {
	avail := int(q.recvTail - q.recvHead)
	if avail == 0 {
		return
	}
	batch := avail
	if batch > rxBatch {
		batch = rxBatch
	}
	slot := q.recvHead % uint64(q.cfg.RecvEntries)
	if room := q.cfg.RecvEntries - int(slot); batch > room {
		batch = room // stop at the ring wrap
	}
	bdAddr := q.cfg.RecvRing.Base + mem.Addr(slot*RecvBDSize)
	n.fab.MustDMA(p, n.port, q.rxStage, bdAddr, batch*RecvBDSize)
	p.Sleep(n.params.BDFetch)
	if q.bdHead == len(q.bdCache) {
		// Fully drained: rewind so the cache's capacity is reused
		// instead of resliced away.
		q.bdCache = q.bdCache[:0]
		q.bdHead = 0
	}
	raw := n.fab.Mem().View(q.rxStage, batch*RecvBDSize)
	for i := 0; i < batch; i++ {
		bd, err := DecodeRecvBD(raw[i*RecvBDSize:])
		if err != nil {
			panic(err)
		}
		q.bdCache = append(q.bdCache, bd)
	}
	q.recvHead += uint64(batch)
}

// flushCompletions writes pending completion entries and the status
// counter in one vectored DMA (completion runs first, status counter
// last, so a consumer woken by the status write always sees every
// entry), then fires the (armed) interrupt.
func (n *NIC) flushCompletions(p *sim.Proc, q *nicQueue) {
	if n.prepFlush(q) == 0 {
		return
	}
	n.fab.MustDMAVec(p, n.port, q.cplStage, q.cplExts, false)
	n.finishFlush(q)
}

// prepFlush stages the pending completion entries for the flush DMA —
// everything flushCompletions does before the vectored transfer — and
// returns the entry count (0: nothing to flush). Shared by the
// goroutine and handler flavors of the completer so the two stay
// byte-identical.
func (n *NIC) prepFlush(q *nicQueue) int {
	k := len(q.cplBuf)
	if k == 0 {
		return 0
	}
	mm := n.fab.Mem()
	// Encode straight into the staging region (device-internal, no
	// write hook) instead of through a bounce buffer; entries first,
	// the 8-byte status counter right after.
	stage, stageOff := mm.MustResolve(q.cplStage)
	for j := 0; j < k; j++ {
		enc := q.cplBuf[j].Encode()
		stage.WriteAt(stageOff+uint64(j*RecvCplSize), enc[:])
	}
	q.recvCplN = q.cplFirst + uint64(k)
	var cnt [8]byte
	putLE64(cnt[:], q.recvCplN)
	stage.WriteAt(stageOff+uint64(k*RecvCplSize), cnt[:])

	slot := int(q.cplFirst % uint64(q.cfg.RecvEntries))
	exts := ringExtents(q.cplExts[:0], q.cfg.RecvCpl.Base, slot, k, q.cfg.RecvEntries, RecvCplSize)
	exts = append(exts, mem.Extent{Addr: q.cfg.RecvStatus, Len: 8})
	q.cplExts = exts
	return k
}

// finishFlush retires a completed flush DMA: the batch buffer rewinds
// and the (armed) interrupt fires.
func (n *NIC) finishFlush(q *nicQueue) {
	q.cplBuf = q.cplBuf[:0]
	q.cplFirst = q.recvCplN
	n.maybeIRQ(q)
}

// rxFrame is one parsed frame handed from the demux stage to a
// queue's receive pipeline.
type rxFrame struct {
	frame []byte
	seg   ether.Segment
}

// rxQueueCap bounds each queue's staging FIFO; a full FIFO
// backpressures the demux stage (port-level pause).
const rxQueueCap = 128

// rxDMATags is the number of concurrently outstanding receive payload
// DMAs per queue (hides per-transaction fabric latency).
const rxDMATags = 16

// rxPending is one in-flight receive DMA awaiting in-order retirement.
type rxPending struct {
	cpl  RecvCpl
	sig  *sim.Signal
	slot mem.Addr
	pay  int
}

// rxLoop is the shared demux stage: verify, parse, steer. Heavy
// per-frame work (descriptor fetch, payload DMA, completions) happens
// in per-queue pipelines so receive throughput scales with queues.
func (n *NIC) rxLoop(p *sim.Proc) {
	var burst [][]byte // scratch: same-instant arrival batch
	for {
		burst = append(burst[:0], n.rxQ.Get(p))
		for len(burst) < rxBatch {
			frame, ok := n.rxQ.TryGet()
			if !ok {
				break
			}
			burst = append(burst, frame)
		}
		// One demux occupancy per arrival burst (interrupt-coalescing
		// analogue): the per-frame cost is uniform, so the charge is
		// the same k*RxDemux the serial loop would accumulate.
		p.Sleep(sim.Time(len(burst)) * n.params.RxDemux)
		for _, frame := range burst {
			// The view-parsed payload aliases frame; both travel
			// together in the rxFrame and the payload is copied into
			// the receive buffer before the frame is recycled.
			seg, err := ether.ParseView(frame)
			if err != nil {
				n.rxErrors++
				n.putFrameBuf(frame)
				continue
			}
			qid, ok := n.steering[seg.Flow.Tuple()]
			if !ok {
				qid = 0
			}
			q, exists := n.queues[qid]
			if !exists {
				n.drops++
				n.putFrameBuf(frame)
				continue
			}
			for q.rxFIFO.Len() >= rxQueueCap {
				q.rxSpace.Wait(p)
			}
			q.rxFIFO.Put(rxFrame{frame: frame, seg: seg})
		}
	}
}

// rxQueueLoop is one queue's receive pipeline: it takes parsed frames,
// fills posted buffers (pausing, PFC-style, while none are posted),
// and writes coalesced completions.
func (n *NIC) rxQueueLoop(p *sim.Proc, q *nicQueue) {
	var burst []rxFrame // scratch: same-instant frame batch
	for {
		burst = append(burst[:0], q.rxFIFO.Get(p))
		for len(burst) < rxBatch {
			rf, ok := q.rxFIFO.TryGet()
			if !ok {
				break
			}
			burst = append(burst, rf)
		}
		q.rxSpace.Broadcast()
		// One pipeline occupancy per burst; same uniform-cost argument
		// as the demux stage above.
		p.Sleep(sim.Time(len(burst)) * n.params.RxOverhead)
		for _, rf := range burst {
			n.rxFill(p, q, rf)
		}
	}
}

// rxFill lands one parsed frame in a posted receive buffer: BD
// consumption, (header-split) staging copies, and the payload DMA.
func (n *NIC) rxFill(p *sim.Proc, q *nicQueue, rf rxFrame) {
	mm := n.fab.Mem()
	seg := rf.seg
	// Per-queue (priority) flow control: with no posted buffer the
	// queue pauses until the consumer recycles some. In-flight DMAs
	// retire meanwhile and the completer flushes them, so the
	// consumer always sees enough completions to make progress.
	for q.bdLen() == 0 {
		n.fetchRecvBDs(p, q)
		if q.bdLen() > 0 {
			break
		}
		q.recvKick.Wait(p)
	}
	bd := q.bdCache[q.bdHead]
	q.bdHead++
	bdIndex := uint32(q.cplIssued % uint64(q.cfg.RecvEntries))

	hdr := rf.frame[:ether.HeadersLen]
	pay := seg.Payload
	cpl := RecvCpl{BDIndex: bdIndex, Seq: seg.Seq, Flags: seg.Flags, Valid: 1,
		HdrLen: uint16(len(hdr)), PayLen: uint16(len(pay))}

	// Issue the payload DMA on a free tag; retirement happens in
	// order in the completer so completion entries stay FIFO.
	slot := q.rxSlots.Get(p)
	var sig *sim.Signal
	if q.cfg.HeaderSplit {
		// Header at offset 0, payload at HdrOff, moved as one DMA.
		if int(bd.Len) < HdrOff+len(pay) {
			n.drops++
			q.rxSlots.Put(slot)
			n.putFrameBuf(rf.frame)
			return
		}
		mm.Zero(slot, HdrOff)
		mm.Write(slot, hdr)
		if len(pay) > 0 {
			mm.Write(slot+HdrOff, pay)
		}
		n.putFrameBuf(rf.frame) // hdr and pay copied into the slot
		sig = n.fab.DMAAsync(n.port, bd.Addr, slot, HdrOff+len(pay))
	} else {
		if int(bd.Len) < len(rf.frame) {
			n.drops++
			q.rxSlots.Put(slot)
			n.putFrameBuf(rf.frame)
			return
		}
		mm.Write(slot, rf.frame)
		n.putFrameBuf(rf.frame)
		sig = n.fab.DMAAsync(n.port, bd.Addr, slot, len(rf.frame))
	}
	q.cplIssued++
	q.rxPend.Put(rxPending{cpl: cpl, sig: sig, slot: slot, pay: len(pay)})
}

// rxCplLoop retires receive DMAs in order, recycles tag slots, and
// writes coalesced completion entries.
func (n *NIC) rxCplLoop(p *sim.Proc, q *nicQueue) {
	for {
		pend := q.rxPend.Get(p)
		pend.sig.Wait(p)
		// This loop is the signal's only waiter, so it can be recycled
		// as soon as the completion is observed.
		n.fab.RecycleAsyncSignal(pend.sig)
		q.rxSlots.Put(pend.slot)
		n.rxFrames++
		n.rxPayload += int64(pend.pay)
		n.RxPerQueue[q.cfg.QID]++
		q.cplBuf = append(q.cplBuf, pend.cpl)
		// Flush when the batch fills or no more DMAs are in flight
		// (the queue may be paused waiting for these completions).
		if len(q.cplBuf) >= rxBatch || q.rxPend.Len() == 0 {
			n.flushCompletions(p, q)
		}
	}
}

// DebugQueues reports per-queue ring state (diagnostics).
func (n *NIC) DebugQueues() string {
	out := fmt.Sprintf("%s: rxQ=%d txFIFO=%d", n.Name, n.rxQ.Len(), n.txFIFO.Len())
	for _, q := range n.queueList {
		out += fmt.Sprintf("\n  q%d: sendTail=%d sendHead=%d recvTail=%d recvHead=%d bdCache=%d cplBuf=%d cplN=%d rxFIFO=%d armed=%v",
			q.cfg.QID, q.sendTail, q.sendHead, q.recvTail, q.recvHead, q.bdLen(), len(q.cplBuf), q.recvCplN, q.rxFIFO.Len(), q.armed)
	}
	return out
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
