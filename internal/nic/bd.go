// Package nic models a Broadcom BCM57711-class 10-GbE NIC: send and
// receive buffer-descriptor rings in submitter memory, doorbells,
// large send offload with checksum offload, optional header/data
// split on receive, flow steering, armed (NAPI-style) interrupts, and
// a serializing 10 Gbps wire to a peer NIC. Frames are real bytes
// built and verified by the ether package.
package nic

import (
	"encoding/binary"
	"fmt"

	"dcsctrl/internal/mem"
)

// Descriptor sizes.
const (
	SendBDSize  = 16
	RecvBDSize  = 16
	RecvCplSize = 16
)

// Send BD flags.
const (
	SendFlagEnd uint16 = 1 << 0 // last BD of a packet chain
	SendFlagLSO uint16 = 1 << 1 // first BD: segment the chain's payload
)

// SendBD describes one transmit buffer fragment.
type SendBD struct {
	Addr  mem.Addr
	Len   uint16
	Flags uint16
	MSS   uint16
}

// Encode serializes the BD.
//
//dcslint:hotpath
func (b *SendBD) Encode() [SendBDSize]byte {
	var out [SendBDSize]byte
	binary.LittleEndian.PutUint64(out[0:], uint64(b.Addr))
	binary.LittleEndian.PutUint16(out[8:], b.Len)
	binary.LittleEndian.PutUint16(out[10:], b.Flags)
	binary.LittleEndian.PutUint16(out[12:], b.MSS)
	return out
}

// DecodeSendBD parses a send BD.
//
//dcslint:hotpath
func DecodeSendBD(raw []byte) (SendBD, error) {
	if len(raw) < SendBDSize {
		return SendBD{}, fmt.Errorf("nic: short send BD")
	}
	return SendBD{
		Addr:  mem.Addr(binary.LittleEndian.Uint64(raw[0:])),
		Len:   binary.LittleEndian.Uint16(raw[8:]),
		Flags: binary.LittleEndian.Uint16(raw[10:]),
		MSS:   binary.LittleEndian.Uint16(raw[12:]),
	}, nil
}

// RecvBD posts one receive buffer.
type RecvBD struct {
	Addr mem.Addr
	Len  uint32
}

// Encode serializes the BD.
//
//dcslint:hotpath
func (b *RecvBD) Encode() [RecvBDSize]byte {
	var out [RecvBDSize]byte
	binary.LittleEndian.PutUint64(out[0:], uint64(b.Addr))
	binary.LittleEndian.PutUint32(out[8:], b.Len)
	return out
}

// DecodeRecvBD parses a receive BD.
//
//dcslint:hotpath
func DecodeRecvBD(raw []byte) (RecvBD, error) {
	if len(raw) < RecvBDSize {
		return RecvBD{}, fmt.Errorf("nic: short recv BD")
	}
	return RecvBD{
		Addr: mem.Addr(binary.LittleEndian.Uint64(raw[0:])),
		Len:  binary.LittleEndian.Uint32(raw[8:]),
	}, nil
}

// RecvCpl is one receive completion: which BD was filled and how.
// With header split, the buffer holds HdrLen header bytes at offset 0
// and PayLen payload bytes at offset HdrOff.
type RecvCpl struct {
	BDIndex uint32
	HdrLen  uint16
	PayLen  uint16
	Seq     uint32
	Flags   uint8
	Valid   uint8 // 1 = entry present (consumer clears after reading)
}

// HdrOff is the payload offset within a split receive buffer.
const HdrOff = 64

// Encode serializes the completion.
//
//dcslint:hotpath
func (c *RecvCpl) Encode() [RecvCplSize]byte {
	var out [RecvCplSize]byte
	binary.LittleEndian.PutUint32(out[0:], c.BDIndex)
	binary.LittleEndian.PutUint16(out[4:], c.HdrLen)
	binary.LittleEndian.PutUint16(out[6:], c.PayLen)
	binary.LittleEndian.PutUint32(out[8:], c.Seq)
	out[12] = c.Flags
	out[13] = c.Valid
	return out
}

// DecodeRecvCpl parses a receive completion.
//
//dcslint:hotpath
func DecodeRecvCpl(raw []byte) (RecvCpl, error) {
	if len(raw) < RecvCplSize {
		return RecvCpl{}, fmt.Errorf("nic: short recv completion")
	}
	return RecvCpl{
		BDIndex: binary.LittleEndian.Uint32(raw[0:]),
		HdrLen:  binary.LittleEndian.Uint16(raw[4:]),
		PayLen:  binary.LittleEndian.Uint16(raw[6:]),
		Seq:     binary.LittleEndian.Uint32(raw[8:]),
		Flags:   raw[12],
		Valid:   raw[13],
	}, nil
}
