package nic

import (
	"fmt"

	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
)

// SendRing is the submitter side of a transmit queue: it formats BDs
// into ring memory and rings doorbells. Both the host NIC driver and
// the HDC Engine's NIC controller drive one of these; they differ in
// whose cycles pay for it.
type SendRing struct {
	fab  *pcie.Fabric
	nic  *NIC
	cfg  QueueConfig
	tail uint64
}

// NewSendRing returns a send ring over the queue.
func NewSendRing(fab *pcie.Fabric, n *NIC, cfg QueueConfig) *SendRing {
	return &SendRing{fab: fab, nic: n, cfg: cfg}
}

// Completed reads the cumulative completed-BD counter (submitter-local
// memory read).
func (r *SendRing) Completed() uint64 {
	return le64(r.fab.Mem().View(r.cfg.SendStatus, 8))
}

// FreeSlots returns the number of BD slots currently available.
func (r *SendRing) FreeSlots() int {
	return r.cfg.SendEntries - int(r.tail-r.Completed())
}

// Push writes a packet chain into the ring. The final BD must carry
// SendFlagEnd. The caller must ring the doorbell afterwards.
//
//dcslint:hotpath nic_frame_echo
func (r *SendRing) Push(bds []SendBD) error {
	if len(bds) == 0 {
		return fmt.Errorf("nic: empty BD chain")
	}
	if bds[len(bds)-1].Flags&SendFlagEnd == 0 {
		return fmt.Errorf("nic: chain missing END flag")
	}
	if r.FreeSlots() < len(bds) {
		return fmt.Errorf("nic: send ring %d full", r.cfg.QID)
	}
	for _, bd := range bds {
		slot := r.tail % uint64(r.cfg.SendEntries)
		enc := bd.Encode()
		r.cfg.SendRing.WriteAt(slot*SendBDSize, enc[:])
		r.tail++
	}
	return nil
}

// RingDoorbell posts the new tail to the NIC.
//
//dcslint:hotpath
func (r *SendRing) RingDoorbell() {
	sendTail, _, _, _ := r.nic.DoorbellAddrs(r.cfg.QID)
	r.fab.PostedWrite(sendTail, r.tail)
}

// Arm acknowledges the completions seen so far and requests an
// interrupt as soon as the completed-BD counter passes them.
func (r *SendRing) Arm() {
	_, sendArm, _, _ := r.nic.DoorbellAddrs(r.cfg.QID)
	r.fab.PostedWrite(sendArm, r.Completed())
}

// Tail returns the cumulative posted-BD count.
func (r *SendRing) Tail() uint64 { return r.tail }

// RecvRing is the submitter side of a receive queue: it posts buffers
// and consumes completions.
type RecvRing struct {
	fab     *pcie.Fabric
	nic     *NIC
	cfg     QueueConfig
	tail    uint64 // buffers posted (cumulative)
	cplHead uint64 // completions consumed (cumulative)
	addrs   []mem.Addr
}

// NewRecvRing returns a receive ring over the queue.
func NewRecvRing(fab *pcie.Fabric, n *NIC, cfg QueueConfig) *RecvRing {
	return &RecvRing{fab: fab, nic: n, cfg: cfg, addrs: make([]mem.Addr, cfg.RecvEntries)}
}

// Post writes receive BDs into the ring. The caller must ring the
// doorbell afterwards.
//
//dcslint:hotpath
func (r *RecvRing) Post(bds []RecvBD) error {
	if int(r.tail-r.cplHead)+len(bds) > r.cfg.RecvEntries {
		return fmt.Errorf("nic: recv ring %d overcommitted", r.cfg.QID)
	}
	for _, bd := range bds {
		slot := r.tail % uint64(r.cfg.RecvEntries)
		enc := bd.Encode()
		r.cfg.RecvRing.WriteAt(slot*RecvBDSize, enc[:])
		r.addrs[slot] = bd.Addr
		r.tail++
	}
	return nil
}

// RingDoorbell posts the new recv tail to the NIC.
//
//dcslint:hotpath
func (r *RecvRing) RingDoorbell() {
	_, _, recvTail, _ := r.nic.DoorbellAddrs(r.cfg.QID)
	r.fab.PostedWrite(recvTail, r.tail)
}

// Arm acknowledges the completions consumed so far and requests an
// interrupt as soon as new ones land.
func (r *RecvRing) Arm() {
	_, _, _, recvArm := r.nic.DoorbellAddrs(r.cfg.QID)
	r.fab.PostedWrite(recvArm, r.cplHead)
}

// Completions reads the cumulative completion counter.
func (r *RecvRing) Completions() uint64 {
	return le64(r.fab.Mem().View(r.cfg.RecvStatus, 8))
}

// Outstanding returns posted-but-unfilled buffer count as seen by the
// device (completion counter).
func (r *RecvRing) Outstanding() int { return int(r.tail - r.Completions()) }

// Unconsumed returns posted-minus-locally-consumed buffers — the bound
// Post enforces; use it when deciding how many buffers to repost.
func (r *RecvRing) Unconsumed() int { return int(r.tail - r.cplHead) }

// Filled is one consumed receive completion plus the buffer address
// it refers to.
type Filled struct {
	Cpl  RecvCpl
	Addr mem.Addr
}

// Poll consumes all available completions (submitter-local memory
// reads) and returns them with their buffer addresses resolved.
func (r *RecvRing) Poll() []Filled {
	return r.AppendPoll(nil)
}

// AppendPoll is Poll into a caller-owned slice: consumers that poll in
// a loop reuse one scratch slice and allocate nothing per wake.
//
//dcslint:hotpath
func (r *RecvRing) AppendPoll(out []Filled) []Filled {
	avail := r.Completions()
	for r.cplHead < avail {
		slot := r.cplHead % uint64(r.cfg.RecvEntries)
		raw := r.fab.Mem().View(r.cfg.RecvCpl.Base+mem.Addr(slot*RecvCplSize), RecvCplSize)
		cpl, err := DecodeRecvCpl(raw)
		if err != nil {
			panic(err)
		}
		if cpl.Valid == 0 {
			panic(fmt.Sprintf("nic: completion %d not valid on queue %d", r.cplHead, r.cfg.QID))
		}
		//dcslint:allow noalloc callers recycle the polled slice, so capacity is reused; nic_frame_echo proves 0 allocs/op
		out = append(out, Filled{Cpl: cpl, Addr: r.addrs[cpl.BDIndex]})
		r.cplHead++
	}
	return out
}
