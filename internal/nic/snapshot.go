package nic

import (
	"fmt"
	"sort"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). A quiescent NIC has no frame in
// any stage — demux, queue pipelines, DMA tags, FIFO, and wire are all
// empty, analytic claims all exited. What persists across quiescence
// is the ring bookkeeping (posted receive buffers and their prefetched
// descriptors wait for future traffic), the armed-interrupt state, the
// per-connection flow phase machines, the wire clock, the tag-slot
// free order (which staging slot a future frame gets), and counters.
// Free lists (frame buffers, delivery records, wire batches) restore
// empty: a pool miss and a pool hit produce identical event timelines.

// tupleKey packs a connection tuple into a sortable pair.
func tupleKey(t ether.Tuple) (uint64, uint64) {
	ip := func(a ether.IP) uint64 {
		return uint64(a[0])<<24 | uint64(a[1])<<16 | uint64(a[2])<<8 | uint64(a[3])
	}
	return ip(t.SrcIP)<<32 | ip(t.DstIP), uint64(t.SrcPort)<<16 | uint64(t.DstPort)
}

func writeTuple(w *snap.Writer, t ether.Tuple) {
	w.Bytes(t.SrcIP[:])
	w.Bytes(t.DstIP[:])
	w.U16(t.SrcPort)
	w.U16(t.DstPort)
}

func readTuple(r *snap.Reader) ether.Tuple {
	var t ether.Tuple
	copy(t.SrcIP[:], r.Bytes())
	copy(t.DstIP[:], r.Bytes())
	t.SrcPort = r.U16()
	t.DstPort = r.U16()
	return t
}

// SnapSave encodes the device state. Queues iterate in queueList
// (configuration) order, flows in sorted-tuple order.
func (n *NIC) SnapSave(w *snap.Writer) error {
	if n.eng != nil {
		return fmt.Errorf("nic: %s: checkpoint with a flow receive engine is unsupported", n.Name)
	}
	if l := n.rxQ.Len(); l != 0 {
		return fmt.Errorf("nic: %s: checkpoint with %d frames in the demux queue", n.Name, l)
	}
	if l := n.txFIFO.Len(); l != 0 {
		return fmt.Errorf("nic: %s: checkpoint with %d frames in the transmit FIFO", n.Name, l)
	}
	if n.realInFlight != 0 {
		return fmt.Errorf("nic: %s: checkpoint with %d frames between FIFO and wire", n.Name, n.realInFlight)
	}
	if n.pendingClaimedFrames() != 0 {
		return fmt.Errorf("nic: %s: checkpoint with undrained flow claims", n.Name)
	}
	w.I64(int64(n.wireFree))
	if err := sim.CheckpointBWInto(w, n.txBW); err != nil {
		return fmt.Errorf("nic: %s: %w", n.Name, err)
	}
	w.I64(n.txFrames)
	w.I64(n.rxFrames)
	w.I64(n.txPayload)
	w.I64(n.rxPayload)
	w.I64(n.drops)
	w.I64(n.rxErrors)
	w.I64(n.txReplays)
	w.I64(n.bdRefetches)
	w.I64(n.segFrames)
	w.U32(uint32(len(n.steering))) // setup-determined; verified at load

	tuples := make([]ether.Tuple, 0, len(n.flows))
	for t := range n.flows {
		tuples = append(tuples, t)
	}
	sort.Slice(tuples, func(i, j int) bool {
		a1, a2 := tupleKey(tuples[i])
		b1, b2 := tupleKey(tuples[j])
		if a1 != b1 {
			return a1 < b1
		}
		return a2 < b2
	})
	w.U32(uint32(len(tuples)))
	for _, t := range tuples {
		writeTuple(w, t)
		phase, runs := n.flows[t].CheckpointFlow()
		w.Int(int(phase))
		w.Int(runs)
	}

	qids := sim.SortedKeys(n.RxPerQueue)
	w.U32(uint32(len(qids)))
	for _, qid := range qids {
		w.U16(qid)
		w.I64(n.RxPerQueue[qid])
	}

	w.U32(uint32(len(n.queueList)))
	for _, q := range n.queueList {
		if err := n.saveQueue(w, q); err != nil {
			return err
		}
	}
	return nil
}

func (n *NIC) saveQueue(w *snap.Writer, q *nicQueue) error {
	qid := q.cfg.QID
	if q.sendHead != q.sendTail || q.sendFetched != q.sendTail {
		return fmt.Errorf("nic: %s q%d: checkpoint with unconsumed send BDs (tail=%d head=%d fetched=%d)",
			n.Name, qid, q.sendTail, q.sendHead, q.sendFetched)
	}
	if q.sbdHead != len(q.sbdCache) {
		return fmt.Errorf("nic: %s q%d: checkpoint with %d cached send BDs", n.Name, qid, len(q.sbdCache)-q.sbdHead)
	}
	if len(q.cplBuf) != 0 || q.cplFirst != q.recvCplN || q.cplIssued != q.recvCplN {
		return fmt.Errorf("nic: %s q%d: checkpoint with unflushed completions (buf=%d first=%d issued=%d cplN=%d)",
			n.Name, qid, len(q.cplBuf), q.cplFirst, q.cplIssued, q.recvCplN)
	}
	if l := q.rxFIFO.Len(); l != 0 {
		return fmt.Errorf("nic: %s q%d: checkpoint with %d staged receive frames", n.Name, qid, l)
	}
	if l := q.rxPend.Len(); l != 0 {
		return fmt.Errorf("nic: %s q%d: checkpoint with %d in-flight receive DMAs", n.Name, qid, l)
	}
	if q.irqQueued {
		return fmt.Errorf("nic: %s q%d: checkpoint with a queued interrupt check", n.Name, qid)
	}
	w.U16(qid)
	w.U64(q.sendTail)
	w.U64(q.recvTail)
	w.U64(q.recvHead)
	w.U64(q.recvCplN)
	w.Bool(q.armed)
	w.U64(q.sendAck)
	w.U64(q.recvAck)
	// Prefetched-but-unconsumed receive descriptors: posted buffers the
	// device already pulled out of the ring, waiting for traffic.
	bds := q.bdCache[q.bdHead:]
	w.U32(uint32(len(bds)))
	for _, bd := range bds {
		w.U64(uint64(bd.Addr))
		w.U32(bd.Len)
	}
	// DMA tag-slot free order: which staging slot a future frame gets.
	slots := sim.CheckpointQueue(q.rxSlots)
	w.U32(uint32(len(slots)))
	for _, s := range slots {
		w.U64(uint64(s))
	}
	return nil
}

// SnapLoad overlays the captured state onto a freshly built NIC with
// the identical queue configuration.
func (n *NIC) SnapLoad(r *snap.Reader) error {
	if n.eng != nil {
		return fmt.Errorf("nic: %s: restore with a flow receive engine is unsupported", n.Name)
	}
	n.wireFree = sim.Time(r.I64())
	if err := sim.RestoreBWFrom(r, n.txBW); err != nil {
		return fmt.Errorf("nic: %s: %w", n.Name, err)
	}
	n.txFrames = r.I64()
	n.rxFrames = r.I64()
	n.txPayload = r.I64()
	n.rxPayload = r.I64()
	n.drops = r.I64()
	n.rxErrors = r.I64()
	n.txReplays = r.I64()
	n.bdRefetches = r.I64()
	n.segFrames = r.I64()
	nSteer := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nSteer != len(n.steering) {
		return fmt.Errorf("nic: %s: snapshot has %d steering rules, device has %d (configuration mismatch)",
			n.Name, nSteer, len(n.steering))
	}

	nFlows := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	n.flows = make(map[ether.Tuple]*ether.FlowState, nFlows)
	for i := 0; i < nFlows; i++ {
		t := readTuple(r)
		phase := ether.FlowPhase(r.Int())
		runs := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		st := &ether.FlowState{}
		st.RestoreFlow(phase, runs)
		n.flows[t] = st
	}

	nRx := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	n.RxPerQueue = make(map[uint16]int64, nRx)
	for i := 0; i < nRx; i++ {
		qid := r.U16()
		n.RxPerQueue[qid] = r.I64()
	}

	nq := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nq != len(n.queueList) {
		return fmt.Errorf("nic: %s: snapshot has %d queues, device has %d", n.Name, nq, len(n.queueList))
	}
	for _, q := range n.queueList {
		if err := n.loadQueue(r, q); err != nil {
			return err
		}
	}
	return r.Err()
}

func (n *NIC) loadQueue(r *snap.Reader, q *nicQueue) error {
	qid := r.U16()
	if err := r.Err(); err != nil {
		return err
	}
	if qid != q.cfg.QID {
		return fmt.Errorf("nic: %s: snapshot queue %d, device queue %d", n.Name, qid, q.cfg.QID)
	}
	q.sendTail = r.U64()
	q.sendHead, q.sendFetched = q.sendTail, q.sendTail
	q.recvTail = r.U64()
	q.recvHead = r.U64()
	q.recvCplN = r.U64()
	q.cplFirst, q.cplIssued = q.recvCplN, q.recvCplN
	q.armed = r.Bool()
	q.sendAck = r.U64()
	q.recvAck = r.U64()
	nbd := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	q.bdCache = q.bdCache[:0]
	q.bdHead = 0
	for i := 0; i < nbd; i++ {
		q.bdCache = append(q.bdCache, RecvBD{Addr: mem.Addr(r.U64()), Len: r.U32()})
	}
	ns := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	slots := make([]mem.Addr, ns)
	for i := range slots {
		slots[i] = mem.Addr(r.U64())
	}
	if err := sim.RestoreQueue(q.rxSlots, slots); err != nil {
		return err
	}
	return r.Err()
}

// SnapSave encodes the submitter-side transmit ring cursor.
func (r *SendRing) SnapSave(w *snap.Writer) error {
	w.U64(r.tail)
	return nil
}

// SnapLoad overlays the captured cursor.
func (r *SendRing) SnapLoad(rd *snap.Reader) error {
	r.tail = rd.U64()
	return rd.Err()
}

// SnapSave encodes the submitter-side receive ring state: cursors plus
// the BD-index → buffer-address slot table future completions resolve
// through.
func (r *RecvRing) SnapSave(w *snap.Writer) error {
	w.U64(r.tail)
	w.U64(r.cplHead)
	w.U32(uint32(len(r.addrs)))
	for _, a := range r.addrs {
		w.U64(uint64(a))
	}
	return nil
}

// SnapLoad overlays the captured ring state.
func (r *RecvRing) SnapLoad(rd *snap.Reader) error {
	r.tail = rd.U64()
	r.cplHead = rd.U64()
	n := int(rd.U32())
	if err := rd.Err(); err != nil {
		return err
	}
	if n != len(r.addrs) {
		return fmt.Errorf("nic: snapshot recv ring has %d slots, ring has %d", n, len(r.addrs))
	}
	for i := range r.addrs {
		r.addrs[i] = mem.Addr(rd.U64())
	}
	return rd.Err()
}
