package nic

// The analytic receive engine (flow fidelity, DESIGN.md §13): an
// event-driven replica of the per-frame receive pipeline — demux
// bursts, per-queue pipeline bursts, descriptor consumption, payload
// DMA, in-order retirement, coalesced completion flushes — that
// advances the same clocks and applies every host-visible write at the
// identical instant, while dispatching a handful of events per burst
// instead of a handful per frame. When a frame arrives into an
// otherwise quiescent NIC it books the whole cascade as one analytic
// plan and fires a single apply event (the dominant shape of
// request/response traffic).
//
// The engine exists only on single-queue NICs of flow-exclusive
// fabrics without header split; ConfigureQueue refuses new queues once
// it has started.

import (
	"fmt"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// engFrame is one frame moving through the engine's stages. at is the
// stage-dependent ready instant; sched is the demux-burst formation
// instant, kept for the pipeline-burst tie-break.
type engFrame struct {
	at    sim.Time
	sched sim.Time
	frame []byte
	seg   ether.Segment
}

// engPend is one in-flight payload DMA. The host buffer write lands at
// rdy (the DMA completion); retirement — counters, completion entry,
// flush decision — happens in issue order at max(rdy, retire-loop
// free), exactly like the per-frame completer process.
type engPend struct {
	rdy   sim.Time
	dst   mem.Addr
	frame []byte
	cpl   RecvCpl
	pay   int
}

// engDemux is one formed demux burst awaiting its completion instant,
// when its frames are parsed, steered, and handed to the pipeline.
type engDemux struct {
	applyAt sim.Time
	sched   sim.Time // formation instant
	frames  []engFrame
}

type rxEngine struct {
	n *NIC
	q *nicQueue

	// pendingAccepts counts scheduled-but-unfired wireBatch events;
	// part of the engine's idleness (and every plan's quiescence) test.
	pendingAccepts int

	arr     []engFrame // arrived frames (arrival ascending)
	arrHead int

	demuxFree sim.Time
	demux     *engDemux  // formed burst awaiting applyAt (at most one)
	demuxPool []engDemux // backing store reuse

	fifo     []engFrame // parsed+steered, awaiting the queue pipeline
	fifoHead int
	blocked  []engFrame // demux output stalled on a full pipeline FIFO

	rxqFree  sim.Time // queue-pipeline proc free (last fill issued)
	rxqSched sim.Time // schedule instant of the event ending at rxqFree

	fill     []engFrame // current pipeline burst being filled, in order
	fillHead int
	fillFree sim.Time // descriptor-fetch completion gate
	bdWait   bool     // starved for posted BDs; recvTail kick resumes

	pend     []engPend
	wHead    int      // next pend awaiting its buffer write (at rdy)
	rHead    int      // next pend awaiting retirement
	cplFree  sim.Time // retirement loop busy-until (flush chains)
	flushing bool
	flExts   []mem.Extent
	flIdx    int
	flNext   sim.Time // instant of the next flush chain step
	flOff    mem.Addr // cplStage read cursor for scatter application

	nextWake sim.Time
	advFn    func()
	flFn     func()
	planFn   func()
	plan     engPlan
	advanc   bool
}

// engPlan is one booked whole-cascade plan awaiting its single apply
// event (see soloPlan).
type engPlan struct {
	active bool
	frame  []byte
	dst    mem.Addr
	pay    int
	exts   []mem.Extent // completion-flush scatter extents
}

func newRxEngine(n *NIC, q *nicQueue) *rxEngine {
	if n.params.PropDelay <= sim.Time(rxBatch)*n.params.RxDemux {
		// The engine's burst-membership tie rule assumes any frame
		// delivery event was scheduled before a demux wake at the same
		// instant, which PropDelay > rxBatch*RxDemux guarantees.
		panic(fmt.Sprintf("nic: %s: PropDelay too short for the flow receive engine", n.Name))
	}
	e := &rxEngine{n: n, q: q}
	e.advFn = e.advance
	e.flFn = e.flushStep
	e.planFn = e.applyPlan
	return e
}

// engine returns the NIC's analytic receive engine, creating it on
// first use when legal: flow fidelity on a flow-exclusive fabric, a
// single queue without header split, no degradable link (the engine
// skips the per-DMA degrade draws the slow path performs), and a fully
// drained per-frame receive path (frames must never be in both).
func (n *NIC) engine() *rxEngine {
	if n.eng != nil {
		return n.eng
	}
	if !n.fab.FlowMode() || n.fab.FlowDegradeArmed() || len(n.queueList) != 1 {
		return nil
	}
	q := n.queueList[0]
	if q.cfg.HeaderSplit {
		return nil
	}
	if n.params.PropDelay <= sim.Time(rxBatch)*n.params.RxDemux {
		return nil
	}
	if n.rxQ.Len() != 0 || q.rxFIFO.Len() != 0 || q.rxPend.Len() != 0 || len(q.cplBuf) != 0 {
		return nil
	}
	n.eng = newRxEngine(n, q)
	return n.eng
}

// idle reports whether the engine holds no work in any stage.
func (e *rxEngine) idle() bool {
	return e.pendingAccepts == 0 && e.arrHead == len(e.arr) && e.demux == nil &&
		e.fifoHead == len(e.fifo) && len(e.blocked) == 0 &&
		e.fillHead == len(e.fill) && e.rHead == len(e.pend) &&
		!e.flushing && !e.bdWait && !e.plan.active
}

// scheduleArrival hands one per-frame wire delivery to the engine at
// its arrival instant.
func (e *rxEngine) scheduleArrival(frame []byte, at sim.Time) {
	w := e.n.getWireBatch()
	w.frames = append(w.frames, frame)
	w.arrivals = append(w.arrivals, at)
	e.pendingAccepts++
	e.n.env.Schedule(at-e.n.env.Now(), w.fn)
}

// acceptBatch receives claimed (or per-frame) wire frames; arrivals
// are non-decreasing and the first is the current instant.
func (e *rxEngine) acceptBatch(frames [][]byte, arrivals []sim.Time) {
	if k := len(e.arr); k > 0 && e.arrHead == k {
		e.arr = e.arr[:0]
		e.arrHead = 0
	}
	for i, f := range frames {
		if k := len(e.arr); k > 0 && arrivals[i] < e.arr[k-1].at {
			panic("nic: engine arrivals out of order")
		}
		e.arr = append(e.arr, engFrame{at: arrivals[i], frame: f})
	}
	e.advance()
}

// kick is called from the receive-tail doorbell: newly posted buffers
// may unblock a starved fill stage.
func (e *rxEngine) kick() {
	if e.bdWait {
		e.bdWait = false
		e.advance()
	}
}

func (e *rxEngine) wake(t sim.Time) {
	now := e.n.env.Now()
	if t < now {
		panic("nic: engine wake in the past")
	}
	if e.nextWake != 0 && e.nextWake <= t && e.nextWake > now {
		return
	}
	e.nextWake = t
	e.n.env.Schedule(t-now, e.advFn)
}

// advance processes every stage transition due at the current instant
// and schedules the next wake. All fabric charges happen at their
// exact instants: the wake discipline guarantees advance runs at every
// charge-bearing time.
func (e *rxEngine) advance() {
	if e.advanc {
		return
	}
	e.advanc = true
	now := e.n.env.Now()
	if e.nextWake != 0 && e.nextWake <= now {
		e.nextWake = 0
	}
	for e.step(now) {
	}
	e.advanc = false
	e.scheduleNext(now)
}

// step performs one due transition; false when nothing further is due
// at now.
func (e *rxEngine) step(now sim.Time) bool {
	// Buffer writes land at DMA completion, independent of retirement.
	if e.wHead < len(e.pend) && e.pend[e.wHead].rdy <= now {
		p := &e.pend[e.wHead]
		e.n.fab.Mem().Write(p.dst, p.frame)
		e.n.putFrameBuf(p.frame)
		p.frame = nil
		e.wHead++
		return true
	}
	// In-order retirement: counters, completion entry, flush decision.
	if !e.flushing && e.rHead < e.wHead {
		if p := &e.pend[e.rHead]; maxT(p.rdy, e.cplFree) <= now {
			e.retire(p)
			return true
		}
	}
	// Demux burst completion: parse, steer, hand to the pipeline FIFO.
	if d := e.demux; d != nil && d.applyAt <= now {
		e.applyDemux(d)
		return true
	}
	// Pipeline burst formation: only once the previous burst's fills
	// have all issued (the per-frame pipeline is one process).
	if e.fillHead == len(e.fill) && !e.bdWait && e.fifoHead < len(e.fifo) {
		if s := maxT(e.fifo[e.fifoHead].at, e.rxqFree); s <= now {
			e.formPipelineBurst(s)
			return true
		}
	}
	// Fill: consume a descriptor and issue the payload DMA. The tag
	// pool gates issue: with rxDMATags DMAs unretired, the per-frame
	// pipeline parks on the slot queue until a retirement returns one.
	if e.fillHead < len(e.fill) && !e.bdWait && len(e.pend)-e.rHead < rxDMATags {
		if t := maxT(e.fill[e.fillHead].at, e.fillFree); t <= now {
			return e.fillOne(now)
		}
	}
	// Demux burst formation — or, for a lone arrival into a quiescent
	// device, the whole-cascade plan.
	if e.demux == nil && len(e.blocked) == 0 && e.arrHead < len(e.arr) {
		if w := maxT(e.arr[e.arrHead].at, e.demuxFree); w <= now {
			if e.soloPlan(now) {
				return true
			}
			e.formDemuxBurst(w)
			return true
		}
	}
	return false
}

func (e *rxEngine) formDemuxBurst(w sim.Time) {
	var d *engDemux
	if k := len(e.demuxPool); k > 0 {
		d = &e.demuxPool[k-1]
		e.demuxPool = e.demuxPool[:k-1]
	} else {
		d = &engDemux{}
	}
	d.sched = w
	d.frames = d.frames[:0]
	for e.arrHead < len(e.arr) && len(d.frames) < rxBatch && e.arr[e.arrHead].at <= w {
		d.frames = append(d.frames, e.arr[e.arrHead])
		e.arr[e.arrHead] = engFrame{}
		e.arrHead++
	}
	d.applyAt = w + sim.Time(len(d.frames))*e.n.params.RxDemux
	e.demuxFree = d.applyAt
	e.demux = d
}

func (e *rxEngine) applyDemux(d *engDemux) {
	n, q := e.n, e.q
	for i := range d.frames {
		f := &d.frames[i]
		seg, err := ether.ParseView(f.frame)
		if err != nil {
			n.rxErrors++
			n.putFrameBuf(f.frame)
			continue
		}
		qid, ok := n.steering[seg.Flow.Tuple()]
		if !ok {
			qid = 0
		}
		if qid != q.cfg.QID {
			n.drops++
			n.putFrameBuf(f.frame)
			continue
		}
		ef := engFrame{at: d.applyAt, sched: d.sched, frame: f.frame, seg: seg}
		if len(e.blocked) > 0 || len(e.fifo)-e.fifoHead >= rxQueueCap {
			e.blocked = append(e.blocked, ef)
			continue
		}
		e.fifo = append(e.fifo, ef)
	}
	e.demux = nil
	e.demuxPool = append(e.demuxPool, *d)
}

func (e *rxEngine) formPipelineBurst(s sim.Time) {
	if e.fillHead == len(e.fill) {
		e.fill = e.fill[:0]
		e.fillHead = 0
	}
	k := 0
	for e.fifoHead < len(e.fifo) && k < rxBatch {
		f := &e.fifo[e.fifoHead]
		if f.at > s {
			break
		}
		if f.at == s && s == e.rxqFree && f.sched >= e.rxqSched {
			// Tie: the frame's demux-completion event was scheduled
			// after the event that freed the pipeline, so the per-frame
			// pipeline's burst assembly ran first and missed it.
			break
		}
		e.fill = append(e.fill, *f)
		*f = engFrame{}
		e.fifoHead++
		k++
	}
	if e.fifoHead == len(e.fifo) {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
	end := s + sim.Time(k)*e.n.params.RxOverhead
	for i := len(e.fill) - k; i < len(e.fill); i++ {
		e.fill[i].at = end
	}
	e.rxqFree, e.rxqSched = end, s
	// Backpressure release: the per-frame pipeline broadcasts FIFO
	// space at burst assembly; the stalled demux stage resumes here.
	if len(e.blocked) > 0 {
		for i := range e.blocked {
			b := e.blocked[i]
			b.at = s
			e.fifo = append(e.fifo, b)
			e.blocked[i] = engFrame{}
		}
		e.blocked = e.blocked[:0]
		if e.demuxFree < s {
			e.demuxFree = s
		}
	}
}

// fillOne lands the next fill-stage frame: descriptor fetch or
// starvation pause when the cache is dry, then the descriptor consume
// and the analytic payload DMA. Runs at the exact per-frame instant.
func (e *rxEngine) fillOne(now sim.Time) bool {
	n, q := e.n, e.q
	if q.bdLen() == 0 {
		if q.recvTail == q.recvHead {
			e.bdWait = true
			return false
		}
		e.fetchRecvBDsFlow(now)
		return true
	}
	f := e.fill[e.fillHead] // copy out before zeroing the slot
	e.fill[e.fillHead] = engFrame{}
	e.fillHead++
	bd := q.bdCache[q.bdHead]
	q.bdHead++
	if int(bd.Len) < len(f.frame) {
		n.drops++
		n.putFrameBuf(f.frame)
		e.rxqFree, e.rxqSched = now, now
		return true
	}
	cpl := RecvCpl{BDIndex: uint32(q.cplIssued % uint64(q.cfg.RecvEntries)),
		Seq: f.seg.Seq, Flags: f.seg.Flags, Valid: 1,
		HdrLen: uint16(ether.HeadersLen), PayLen: uint16(len(f.seg.Payload))}
	rdy := n.fab.FlowChargeAt(n.port, bd.Addr, q.rxStage, len(f.frame), now)
	q.cplIssued++
	if e.rHead == len(e.pend) {
		e.pend = e.pend[:0]
		e.wHead, e.rHead = 0, 0
	}
	e.pend = append(e.pend, engPend{rdy: rdy, dst: bd.Addr, frame: f.frame, cpl: cpl, pay: len(f.seg.Payload)})
	// The per-frame pipeline proc is free once the DMA is issued; a
	// trailing gate (fetch) moved its free instant to now.
	e.rxqFree, e.rxqSched = now, now
	return true
}

// fetchRecvBDsFlow is the engine's fetchRecvBDs: same batch size, same
// completion instant, one charge instead of a blocking DMA walk. The
// ring bytes are read at issue under the posted-buffer stability
// contract; decode is immediate, availability gated to the per-frame
// fetch-done instant via fillFree.
func (e *rxEngine) fetchRecvBDsFlow(now sim.Time) {
	n, q := e.n, e.q
	avail := int(q.recvTail - q.recvHead)
	batch := avail
	if batch > rxBatch {
		batch = rxBatch
	}
	slot := q.recvHead % uint64(q.cfg.RecvEntries)
	if room := q.cfg.RecvEntries - int(slot); batch > room {
		batch = room
	}
	bdAddr := q.cfg.RecvRing.Base + mem.Addr(slot*RecvBDSize)
	done := n.fab.FlowCopyNow(n.port, q.rxStage, bdAddr, batch*RecvBDSize)
	if q.bdHead == len(q.bdCache) {
		q.bdCache = q.bdCache[:0]
		q.bdHead = 0
	}
	raw := n.fab.Mem().View(q.rxStage, batch*RecvBDSize)
	for i := 0; i < batch; i++ {
		bd, err := DecodeRecvBD(raw[i*RecvBDSize:])
		if err != nil {
			panic(err)
		}
		q.bdCache = append(q.bdCache, bd)
	}
	q.recvHead += uint64(batch)
	e.fillFree = done + n.params.BDFetch
}

// retire is one in-order DMA retirement: counters, the completion
// entry, and the coalesced-flush decision, at the per-frame completer's
// instant.
func (e *rxEngine) retire(p *engPend) {
	n, q := e.n, e.q
	n.rxFrames++
	n.rxPayload += int64(p.pay)
	n.RxPerQueue[q.cfg.QID]++
	q.cplBuf = append(q.cplBuf, p.cpl)
	*p = engPend{}
	e.rHead++
	outstanding := len(e.pend) - e.rHead
	if len(q.cplBuf) >= rxBatch || outstanding == 0 {
		e.startFlush()
	}
}

// startFlush begins the completion flush as a chain of events, one per
// scatter extent: extent k's charge issues at extent k-1's completion
// and its host bytes land exactly then — the per-frame sequential DMA
// walk with the blocking proc replaced by the chain. Entries are
// encoded into the staging region up front, as the per-frame path does.
func (e *rxEngine) startFlush() {
	n, q := e.n, e.q
	k := len(q.cplBuf)
	if k == 0 {
		return
	}
	mm := n.fab.Mem()
	stage, stageOff := mm.MustResolve(q.cplStage)
	for j := 0; j < k; j++ {
		enc := q.cplBuf[j].Encode()
		stage.WriteAt(stageOff+uint64(j*RecvCplSize), enc[:])
	}
	q.recvCplN = q.cplFirst + uint64(k)
	var cnt [8]byte
	putLE64(cnt[:], q.recvCplN)
	stage.WriteAt(stageOff+uint64(k*RecvCplSize), cnt[:])

	slot := int(q.cplFirst % uint64(q.cfg.RecvEntries))
	exts := ringExtents(q.cplExts[:0], q.cfg.RecvCpl.Base, slot, k, q.cfg.RecvEntries, RecvCplSize)
	exts = append(exts, mem.Extent{Addr: q.cfg.RecvStatus, Len: 8})
	q.cplExts = exts
	q.cplBuf = q.cplBuf[:0]
	q.cplFirst = q.recvCplN

	e.flushing = true
	e.flExts = exts
	e.flIdx = 0
	e.flOff = q.cplStage
	now := e.n.env.Now()
	e.flNext = n.fab.FlowChargeAt(n.port, exts[0].Addr, q.cplStage, exts[0].Len, now)
	n.env.Schedule(e.flNext-now, e.flFn)
}

// flushStep applies one flushed extent at its completion instant and
// charges the next.
func (e *rxEngine) flushStep() {
	n, q := e.n, e.q
	now := n.env.Now()
	ext := e.flExts[e.flIdx]
	n.fab.Mem().Copy(ext.Addr, e.flOff, ext.Len)
	e.flOff += mem.Addr(ext.Len)
	e.flIdx++
	if e.flIdx < len(e.flExts) {
		next := e.flExts[e.flIdx]
		e.flNext = n.fab.FlowChargeAt(n.port, next.Addr, e.flOff, next.Len, now)
		n.env.Schedule(e.flNext-now, e.flFn)
		return
	}
	// Chain done: the status counter landed last, so any consumer the
	// hook wakes sees every entry.
	e.flushing = false
	e.cplFree = now
	n.maybeIRQ(q)
	e.advance()
}

// scheduleNext books the earliest future charge-bearing instant.
func (e *rxEngine) scheduleNext(now sim.Time) {
	var t sim.Time = -1
	min := func(x sim.Time) {
		if x > now && (t < 0 || x < t) {
			t = x
		}
	}
	if e.wHead < len(e.pend) {
		min(e.pend[e.wHead].rdy)
	}
	if !e.flushing && e.rHead < e.wHead {
		min(maxT(e.pend[e.rHead].rdy, e.cplFree))
	}
	if d := e.demux; d != nil {
		min(d.applyAt)
	}
	if e.fillHead == len(e.fill) && !e.bdWait && e.fifoHead < len(e.fifo) {
		min(maxT(e.fifo[e.fifoHead].at, e.rxqFree))
	}
	if e.fillHead < len(e.fill) && !e.bdWait && len(e.pend)-e.rHead < rxDMATags {
		min(maxT(e.fill[e.fillHead].at, e.fillFree))
	}
	if e.demux == nil && len(e.blocked) == 0 && e.arrHead < len(e.arr) {
		min(maxT(e.arr[e.arrHead].at, e.demuxFree))
	}
	if t >= 0 {
		e.wake(t)
	}
}

// soloPlan books the whole receive cascade of a lone arrival — demux,
// pipeline, descriptor fetch, payload DMA, retirement, completion
// flush — as analytic charges at their exact per-frame instants, then
// fires a single apply event at the status write's completion. Legal
// only behind the full quiescence test (DESIGN.md §13): a private
// fabric with idle clocks, no posted write/MSI in flight, every
// transmit queue parked, the engine otherwise empty, hook-free
// deferred-write targets, and every booked issue inside the foreign-
// arrival bound now + PropDelay + RxDemux + RxOverhead (the earliest a
// frame not yet on the wire could charge this fabric). Returns false
// to fall back to the exact general machinery.
func (e *rxEngine) soloPlan(now sim.Time) bool {
	n, q := e.n, e.q
	if e.plan.active || e.pendingAccepts != 0 || e.arrHead != len(e.arr)-1 {
		return false
	}
	f := &e.arr[e.arrHead]
	if f.at != now || e.demuxFree > now || e.rxqFree > now || e.fillFree > now || e.cplFree > now {
		return false
	}
	if e.fillHead != len(e.fill) || e.rHead != len(e.pend) || e.fifoHead != len(e.fifo) ||
		len(e.blocked) != 0 || e.flushing || e.bdWait || len(q.cplBuf) != 0 {
		return false
	}
	frame := f.frame // consumeArr zeroes the arr entry f points into
	seg, err := ether.ParseView(frame)
	if err != nil {
		// Checksum reject: the frame dies in the demux stage with no
		// charge and no host-visible effect — fully inline.
		n.rxErrors++
		n.putFrameBuf(frame)
		e.consumeArr()
		e.demuxFree = now + n.params.RxDemux
		return true
	}
	if qid, ok := n.steering[seg.Flow.Tuple()]; ok && qid != q.cfg.QID {
		n.drops++
		n.putFrameBuf(frame)
		e.consumeArr()
		e.demuxFree = now + n.params.RxDemux
		return true
	}
	fab := n.fab
	if !fab.FlowReactive() || fab.PortCount() != 2 || !fab.FlowQuiet() ||
		fab.FlowDegradeArmed() || !fab.FlowClocksIdle() {
		return false
	}
	for _, o := range n.queueList {
		if !o.txIdle || o.sendFetched != o.sendTail {
			return false
		}
	}
	needFetch := q.bdLen() == 0
	if needFetch && q.recvTail == q.recvHead {
		return false // starved; the general machinery owns bdWait
	}
	if q.cfg.RecvCpl.HasWriteHook() {
		return false // entry writes are deferred to the final apply
	}

	// Dry-run the cascade with idle clocks to bound-check every issue
	// before booking anything.
	mm := fab.Mem()
	demuxDone := now + n.params.RxDemux
	burstEnd := demuxDone + n.params.RxOverhead
	fillAt := burstEnd
	batch := 0
	var bdAddr mem.Addr
	if needFetch {
		avail := int(q.recvTail - q.recvHead)
		batch = avail
		if batch > rxBatch {
			batch = rxBatch
		}
		slot := q.recvHead % uint64(q.cfg.RecvEntries)
		if room := q.cfg.RecvEntries - int(slot); batch > room {
			batch = room
		}
		bdAddr = q.cfg.RecvRing.Base + mem.Addr(slot*RecvBDSize)
		fillAt = burstEnd + fab.FlowXferTime(batch*RecvBDSize) + n.params.BDFetch
	}
	bound := now + n.params.PropDelay + n.params.RxDemux + n.params.RxOverhead
	var bd RecvBD
	if needFetch {
		raw := mm.View(bdAddr, RecvBDSize) // stability contract: posted BDs
		var derr error
		bd, derr = DecodeRecvBD(raw)
		if derr != nil {
			panic(derr)
		}
	} else {
		bd = q.bdCache[q.bdHead]
	}
	drop := int(bd.Len) < len(frame)
	lastIssue := fillAt
	if !drop {
		rdy := fillAt + fab.FlowXferTime(len(frame))
		// Flush extents: one completion entry (possibly wrapping is
		// impossible for k=1) plus the status counter.
		d := rdy + fab.FlowXferTime(RecvCplSize)
		lastIssue = d // status extent issues at the entry's completion
		if dreg, _, rerr := mm.Resolve(bd.Addr); rerr != nil || dreg.HasWriteHook() {
			return false // payload write is deferred to the final apply
		}
	}
	if lastIssue >= bound {
		return false
	}

	// Book it.
	e.consumeArr()
	e.demuxFree = demuxDone
	if needFetch {
		done := fab.FlowChargeAt(n.port, q.rxStage, bdAddr, batch*RecvBDSize, burstEnd)
		mm.Copy(q.rxStage, bdAddr, batch*RecvBDSize)
		if q.bdHead == len(q.bdCache) {
			q.bdCache = q.bdCache[:0]
			q.bdHead = 0
		}
		raw := mm.View(q.rxStage, batch*RecvBDSize)
		for i := 0; i < batch; i++ {
			dbd, derr := DecodeRecvBD(raw[i*RecvBDSize:])
			if derr != nil {
				panic(derr)
			}
			q.bdCache = append(q.bdCache, dbd)
		}
		q.recvHead += uint64(batch)
		e.fillFree = done + n.params.BDFetch
	}
	q.bdHead++
	e.rxqFree, e.rxqSched = fillAt, fillAt
	if drop {
		n.drops++
		n.putFrameBuf(frame)
		return true
	}
	cpl := RecvCpl{BDIndex: uint32(q.cplIssued % uint64(q.cfg.RecvEntries)),
		Seq: seg.Seq, Flags: seg.Flags, Valid: 1,
		HdrLen: uint16(ether.HeadersLen), PayLen: uint16(len(seg.Payload))}
	q.cplIssued++
	rdy := fab.FlowChargeAt(n.port, bd.Addr, q.rxStage, len(frame), fillAt)

	// Encode the flush staging exactly as startFlush would.
	stage, stageOff := mm.MustResolve(q.cplStage)
	enc := cpl.Encode()
	stage.WriteAt(stageOff, enc[:])
	q.recvCplN = q.cplFirst + 1
	var cnt [8]byte
	putLE64(cnt[:], q.recvCplN)
	stage.WriteAt(stageOff+uint64(RecvCplSize), cnt[:])
	slot := int(q.cplFirst % uint64(q.cfg.RecvEntries))
	exts := ringExtents(q.cplExts[:0], q.cfg.RecvCpl.Base, slot, 1, q.cfg.RecvEntries, RecvCplSize)
	exts = append(exts, mem.Extent{Addr: q.cfg.RecvStatus, Len: 8})
	q.cplExts = exts
	q.cplFirst = q.recvCplN

	done := rdy
	src := q.cplStage
	for _, ext := range exts {
		done = fab.FlowChargeAt(n.port, ext.Addr, src, ext.Len, done)
		src += mem.Addr(ext.Len)
	}
	e.cplFree = done
	e.plan.active = true
	e.plan.frame = frame
	e.plan.dst = bd.Addr
	e.plan.pay = len(seg.Payload)
	e.plan.exts = append(e.plan.exts[:0], exts...)
	n.env.Schedule(done-now, e.planFn)
	return true
}

func (e *rxEngine) consumeArr() {
	e.arr[e.arrHead] = engFrame{}
	e.arrHead++
	if e.arrHead == len(e.arr) {
		e.arr = e.arr[:0]
		e.arrHead = 0
	}
}

// applyPlan lands every deferred effect of a booked cascade at the
// status write's completion instant: the payload buffer, the
// completion entry, and — last, so a hook-woken consumer sees the
// entry — the status counter, then the interrupt check.
func (e *rxEngine) applyPlan() {
	n, q := e.n, e.q
	p := &e.plan
	mm := n.fab.Mem()
	mm.Write(p.dst, p.frame)
	n.putFrameBuf(p.frame)
	n.rxFrames++
	n.rxPayload += int64(p.pay)
	n.RxPerQueue[q.cfg.QID]++
	p.active = false
	p.frame = nil
	src := q.cplStage
	for _, ext := range p.exts {
		mm.Copy(ext.Addr, src, ext.Len)
		src += mem.Addr(ext.Len)
	}
	n.maybeIRQ(q)
	e.advance()
}

func maxT(a, b sim.Time) sim.Time {
	if a >= b {
		return a
	}
	return b
}
