package nic

// Flow-fidelity transmit fast path (DESIGN.md §13): when a
// connection's per-flow state machine (internal/ether) reports a
// steady bulk stream and the mechanical crossover conditions hold, a
// run of frames is collapsed into one analytic claim — the wire clock,
// byte counters, core occupancy, and FIFO budget advance exactly as
// the per-frame schedule would have advanced them, but no frame walks
// the transmit FIFO or the wire loop. Everything not provably
// collapsible stays per-frame; the two paths produce identical
// timelines, so falling back is always safe.

import (
	"dcsctrl/internal/ether"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/sim"
)

// observeBurst feeds one transmit burst through the connection's phase
// machine and reports whether its runs may be claimed. A burst sent
// while wire corruption can still fire demotes the flow: the per-frame
// replay path must own every frame that might be corrupted.
func (n *NIC) observeBurst(t ether.Tuple, segs []ether.Segment) bool {
	st := n.flows[t]
	if st == nil {
		st = &ether.FlowState{}
		n.flows[t] = st
	}
	if n.params.Faults.Armed(fault.NICCorruptFrame) {
		st.Demote()
		return false
	}
	st.Observe(ether.ClassifySegments(segs))
	return st.Eligible() && n.env.WireFidelity() == sim.WireFlow
}

// pendingClaimedFrames returns the number of claimed frames that have
// not yet left the wire — the virtual occupancy of the transmit FIFO
// plus its in-service slot. Exited entries are retired lazily.
func (n *NIC) pendingClaimedFrames() int {
	now := n.env.Now()
	for n.claimHead < len(n.claimExits) && n.claimExits[n.claimHead] <= now {
		n.claimHead++
	}
	if n.claimHead == len(n.claimExits) {
		n.claimExits = n.claimExits[:0]
		n.claimHead = 0
	}
	return len(n.claimExits) - n.claimHead
}

// virtualQueued is the claimed-frame count against the FIFO cap: of
// the pending claims, the earliest is in wire service (claims are
// booked from max(now, wireFree), so it has always started), the rest
// model queued FIFO entries.
func (n *NIC) virtualQueued() int {
	if p := n.pendingClaimedFrames(); p > 0 {
		return p - 1
	}
	return 0
}

// nextClaimExit returns the earliest pending claimed-frame wire exit.
func (n *NIC) nextClaimExit() (sim.Time, bool) {
	if n.pendingClaimedFrames() == 0 {
		return 0, false
	}
	return n.claimExits[n.claimHead], true
}

// claimRun books one run of frames analytically. It returns false —
// and the caller transmits the run per-frame — when a real frame is
// anywhere between FIFO insertion and wire exit (claims must never
// interleave with the per-frame wire loop), when the virtual FIFO
// budget would be exceeded, or when there is no peer to deliver to.
//
// The booking replays the per-frame schedule exactly: each frame
// serializes at line rate starting at max(now, wireFree) — the run is
// built in one batch, so every frame of the run is "in the FIFO" now —
// and arrives at the peer one propagation delay after its wire exit.
// Counters (txFrames, txPayload, wire busy time, CountIO) advance by
// the same amounts at booking time; only event count changes.
func (n *NIC) claimRun(segs []ether.Segment) bool {
	peer := n.peer
	if peer == nil || n.realInFlight != 0 {
		return false
	}
	if n.pendingClaimedFrames()+len(segs) > txFIFOCap {
		return false
	}
	env := n.env
	now := env.Now()
	start := n.wireFree
	if start < now {
		start = now
	}
	e := peer.engine()
	var w *wireBatch
	if e != nil {
		w = peer.getWireBatch()
	}
	wireBytes := 0
	var busy sim.Time
	for i := range segs {
		s := &segs[i]
		frame := s.MarshalTo(n.getFrameBuf())
		wl := s.WireLen()
		t := sim.BpsToTime(wl, n.params.WireBps)
		start += t
		busy += t
		wireBytes += wl
		n.claimExits = append(n.claimExits, start)
		n.txFrames++
		n.txPayload += int64(len(s.Payload))
		if w != nil {
			w.frames = append(w.frames, frame)
			w.arrivals = append(w.arrivals, start+n.params.PropDelay)
		} else {
			n.scheduleDeliveryAt(peer.rxQ, frame, start+n.params.PropDelay-now)
		}
	}
	n.wireFree = start
	n.segFrames += int64(len(segs))
	n.txBW.AccrueFlow(wireBytes, len(segs), busy)
	env.CountIO(len(segs))
	env.CountSegment(len(segs))
	if w != nil {
		e.pendingAccepts++
		env.Schedule(w.arrivals[0]-now, w.fn)
	}
	return true
}

// scheduleDeliveryAt is scheduleDelivery with an explicit delay, used
// by claims whose frames exit the wire in the future.
func (n *NIC) scheduleDeliveryAt(q *sim.Queue[[]byte], frame []byte, d sim.Time) {
	var fd *frameDelivery
	if k := len(n.fdFree); k > 0 {
		fd = n.fdFree[k-1]
		n.fdFree = n.fdFree[:k-1]
	} else {
		fd = &frameDelivery{nic: n}
		fd.fn = fd.deliver
	}
	fd.to, fd.frame = q, frame
	n.env.Schedule(d, fd.fn)
}

// wireBatch is one scheduled hand-off of claimed frames to the peer's
// analytic receive engine: a single event at the first frame's arrival
// carrying every frame with its own arrival instant. Owned (and
// free-listed) by the receiving NIC.
type wireBatch struct {
	n        *NIC
	frames   [][]byte
	arrivals []sim.Time
	fn       func()
}

func (w *wireBatch) accept() {
	e := w.n.eng
	e.pendingAccepts--
	e.acceptBatch(w.frames, w.arrivals)
	w.frames = w.frames[:0]
	w.arrivals = w.arrivals[:0]
	w.n.wbFree = append(w.n.wbFree, w)
}

func (n *NIC) getWireBatch() *wireBatch {
	if k := len(n.wbFree); k > 0 {
		w := n.wbFree[k-1]
		n.wbFree = n.wbFree[:k-1]
		return w
	}
	w := &wireBatch{n: n}
	w.fn = w.accept
	return w
}

// txPlanOK reports whether this NIC may book future charge entries on
// its fabric right now (the quiescence test of DESIGN.md §13): the
// fabric is a private one (this device plus the root complex, so no
// unregistered initiator can slip a charge into the plan window), no
// posted write or MSI is in flight, the link-degrade site cannot fire,
// the receive engine is idle, and every other transmit queue is parked
// with nothing fetchable. The plan window itself must stay under
// PropDelay — any foreign wire arrival charges later than that — which
// each caller bound-checks per booking.
func (n *NIC) txPlanOK(q *nicQueue) bool {
	if !n.fab.FlowReactive() {
		return false
	}
	if n.fab.PortCount() != 2 || !n.fab.FlowQuiet() || n.fab.FlowDegradeArmed() {
		return false
	}
	if n.eng != nil && !n.eng.idle() {
		return false
	}
	for _, o := range n.queueList {
		if o == q {
			continue
		}
		if !o.txIdle || o.sendFetched != o.sendTail {
			return false
		}
	}
	return true
}

// flowGatherTransmit gathers the chain into the staging buffer and
// transmits it. When the plan quiescence test passes, the per-extent
// DMAs are charged as one analytic plan — extent k issues at extent
// k-1's completion, exactly the per-frame hand-off — and transmit runs
// immediately with the outstanding gather time folded into its first
// build sleep. Sources are read early under the posted-buffer
// stability contract; the destination is hook-free device-internal
// staging memory, so nothing host-visible moves in time. A booking
// that would leave the legality window falls back to sleeping to that
// instant and continuing sequentially, which is always legal because
// every charged extent is then in the past.
func (n *NIC) flowGatherTransmit(p *sim.Proc, q *nicQueue, first SendBD, exts []mem.Extent, off int) {
	mm := n.fab.Mem()
	if len(exts) > 1 && n.txPlanOK(q) {
		limit := n.env.Now() + n.params.PropDelay
		dst := q.txStage
		var done sim.Time
		for i, e := range exts {
			if e.Len == 0 {
				continue
			}
			switch {
			case i == 0:
				done = n.fab.FlowCopyNow(n.port, dst, e.Addr, e.Len)
			case done < limit:
				d := n.fab.FlowChargeAt(n.port, dst, e.Addr, e.Len, done)
				mm.Copy(dst, e.Addr, e.Len)
				done = d
			default:
				p.Sleep(done - n.env.Now())
				done = n.fab.FlowCopyNow(n.port, dst, e.Addr, e.Len)
			}
			dst += mem.Addr(e.Len)
		}
		pre := sim.Time(0)
		if now := n.env.Now(); done > now {
			pre = done - now
		}
		n.transmit(p, q, first, mm.View(q.txStage, off), pre)
		return
	}
	// Sequential: identical to the per-frame gather, one event per
	// extent (flowXfer), internal fault draws at the exact instants.
	n.fab.MustDMAVec(p, n.port, q.txStage, exts, true)
	n.transmit(p, q, first, mm.View(q.txStage, off), 0)
}

// fetchSendBDsAuto fetches send descriptors through the analytic path
// when the fabric allows it, else the per-frame path. The analytic
// variant must not run while link degradation can fire: the per-frame
// fetch draws that site inside each DMA at instants the folded sleep
// below would not reproduce.
func (n *NIC) fetchSendBDsAuto(p *sim.Proc, q *nicQueue) {
	if n.fab.FlowMode() && !n.fab.FlowDegradeArmed() {
		n.flowFetchSendBDs(p, q)
		return
	}
	n.fetchSendBDs(p, q)
}

// flowFetchSendBDs mirrors fetchSendBDs with the descriptor DMA
// charged analytically and the decode latency folded into the same
// sleep — one event for the common single-extent burst. Stuck-BD
// faults are drawn at the identical post-fetch instant, so injection
// statistics and recovery timing match the per-frame path exactly.
func (n *NIC) flowFetchSendBDs(p *sim.Proc, q *nicQueue) {
	avail := int(q.sendTail - q.sendFetched)
	if avail == 0 {
		return
	}
	slot := int(q.sendFetched % uint64(q.cfg.SendEntries))
	exts := ringExtents(q.sendExts[:0], q.cfg.SendRing.Base, slot, avail, q.cfg.SendEntries, SendBDSize)
	q.sendExts = exts
	dst := q.bdStage
	var done sim.Time
	for i, e := range exts {
		if i > 0 {
			p.Sleep(done - n.env.Now())
		}
		done = n.fab.FlowCopyNow(n.port, dst, e.Addr, e.Len)
		dst += mem.Addr(e.Len)
	}
	p.Sleep(done + n.params.BDFetch - n.env.Now())
	stuck := 0
	for i := 0; i < avail; i++ {
		if n.params.Faults.Hit(fault.NICStuckBD) {
			stuck++
		}
	}
	if stuck > 0 {
		n.bdRefetches += int64(stuck)
		p.Sleep(sim.Time(stuck) * stuckBDRecovery)
		n.fab.MustDMAVec(p, n.port, q.bdStage, exts, true)
		p.Sleep(n.params.BDFetch)
	}
	if q.sbdHead == len(q.sbdCache) {
		q.sbdCache = q.sbdCache[:0]
		q.sbdHead = 0
	}
	raw := n.fab.Mem().View(q.bdStage, avail*SendBDSize)
	for i := 0; i < avail; i++ {
		bd, err := DecodeSendBD(raw[i*SendBDSize:])
		if err != nil {
			panic(err) // corrupted ring memory is a modelling bug
		}
		q.sbdCache = append(q.sbdCache, bd)
	}
	q.sendFetched += uint64(avail)
}
