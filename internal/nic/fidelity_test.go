package nic

// Crossover equivalence suite for the flow-level wire fast path
// (DESIGN.md §13). Every mix here is driven twice — once per frame,
// once with the flow fast path on — and the complete host-visible
// timeline (the instant, buffer address, completion entry, and payload
// checksum of every delivered frame, plus final device counters) must
// be byte-identical. The mixes cover the crossover seams: ramp-up,
// short-message bypass, duplex bulk, multiple concurrent flows,
// mid-stream faults (corruption, stuck descriptors, link degrade),
// buffer starvation, and randomized traffic under pinned seeds.

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"dcsctrl/internal/ether"
	"dcsctrl/internal/fault"
	"dcsctrl/internal/mem"
	"dcsctrl/internal/pcie"
	"dcsctrl/internal/sim"
)

// testSeed pins every randomized mix in this suite. The CI seed-matrix
// step overrides it via DCS_FIDELITY_SEED to sweep the equivalence
// property over additional fault and traffic schedules; any value must
// hold — the suite asserts a universal property, not a golden output.
var testSeed = func() int64 {
	if s := os.Getenv("DCS_FIDELITY_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			panic("bad DCS_FIDELITY_SEED: " + s)
		}
		return v
	}
	return 0x5EEDED
}()

// mixOp is one scripted sender action: wait gap, then send one LSO job
// of size bytes on flow fl.
type mixOp struct {
	node int // 0 = a, 1 = b
	fl   int // flow index within the node
	gap  sim.Time
	size int
}

type mixConfig struct {
	ops       []mixOp
	flows     int // flows per node
	bufs      int // receive buffers posted per node (starvation < ops)
	profile   fault.Profile
	faultSeed uint64
}

// fidelityNode wraps the test node with scripted-traffic state.
type fidelityNode struct {
	*node
	bufBase mem.Addr
	free    []mem.Addr // repost pool, consumed and refilled in order
	fills   []Filled
	txSeq   []uint32
	lines   *[]string
	label   string
}

func (fn *fidelityNode) post(addrs []mem.Addr) {
	if len(addrs) == 0 {
		return
	}
	bds := make([]RecvBD, 0, len(addrs))
	for _, a := range addrs {
		bds = append(bds, RecvBD{Addr: a, Len: 2048})
	}
	if err := fn.recv.Post(bds); err != nil {
		panic(err)
	}
	fn.recv.RingDoorbell()
}

// runMix drives one scripted mix under the given fidelity and returns
// the full host-visible fingerprint.
func runMix(fid sim.WireFidelity, mix mixConfig) (string, sim.Stats) {
	env := sim.NewEnv()
	env.SetWireFidelity(fid)
	nodes := make([]*fidelityNode, 2)
	var lines []string
	for i, name := range []string{"a", "b"} {
		inj := fault.NewInjector(mix.faultSeed, mix.profile)
		n := newFaultyNode(env, name, inj)
		fn := &fidelityNode{node: n, lines: &lines, label: name}
		fn.bufBase = n.dram.Alloc(uint64(mix.bufs)*2048, 4096)
		for k := 0; k < mix.bufs; k++ {
			fn.free = append(fn.free, fn.bufBase+mem.Addr(k*2048))
		}
		fn.txSeq = make([]uint32, mix.flows)
		nodes[i] = fn
	}
	Connect(nodes[0].nic, nodes[1].nic)
	for _, fn := range nodes {
		fn.post(fn.free)
		fn.free = fn.free[:0]
		fn := fn
		_, off := fn.mm.MustResolve(fn.cfg.RecvStatus)
		fn.statusRegion().SetWriteHook(func(o uint64, k int) {
			if o != off {
				return
			}
			fn.fills = fn.recv.AppendPoll(fn.fills[:0])
			for _, f := range fn.fills {
				raw := fn.mm.View(f.Addr, int(f.Cpl.HdrLen)+int(f.Cpl.PayLen))
				*fn.lines = append(*fn.lines, fmt.Sprintf(
					"t=%d %s addr=%x idx=%d seq=%d flags=%d hl=%d pl=%d crc=%08x",
					env.Now(), fn.label, uint64(f.Addr), f.Cpl.BDIndex, f.Cpl.Seq,
					f.Cpl.Flags, f.Cpl.HdrLen, f.Cpl.PayLen, crc32.ChecksumIEEE(raw)))
				fn.free = append(fn.free, f.Addr)
			}
			if len(fn.fills) > 0 {
				fn.post(fn.free)
				fn.free = fn.free[:0]
			}
		})
	}
	// One sender proc per node replays its schedule in order.
	for i := range nodes {
		i := i
		fn := nodes[i]
		env.Spawn(fn.label+"-driver", func(p *sim.Proc) {
			for _, op := range mix.ops {
				if op.node != i {
					continue
				}
				if op.gap > 0 {
					p.Sleep(op.gap)
				}
				fl := mixFlow(i, op.fl)
				payload := make([]byte, op.size)
				for j := range payload {
					payload[j] = byte(j ^ op.size ^ int(fn.txSeq[op.fl]))
				}
				sendJob(fn.node, fl, fn.txSeq[op.fl], payload, op.size > int(ether.MSS))
				fn.txSeq[op.fl] += uint32(op.size)
			}
		})
	}
	env.Run(-1)
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for _, fn := range nodes {
		tx, rx, txp, rxp, drops, errs := fn.nic.Stats()
		replays, refetches := fn.nic.RecoveryStats()
		fmt.Fprintf(&sb, "%s tx=%d rx=%d txp=%d rxp=%d drops=%d errs=%d replays=%d refetches=%d\n",
			fn.label, tx, rx, txp, rxp, drops, errs, replays, refetches)
	}
	fmt.Fprintf(&sb, "end=%d\n", env.Now())
	return sb.String(), env.Stats()
}

// statusRegion resolves the node's status region for hook installation.
func (fn *fidelityNode) statusRegion() *mem.Region {
	r, _ := fn.mm.MustResolve(fn.cfg.RecvStatus)
	return r
}

// newFaultyNode is newNode with a custom fault injector on the NIC
// (the PCIe fabric keeps the default none profile; pcie-level faults
// get their own mixes via params). The fabric stays event-driven
// (non-exclusive): scripted senders overlap transmit gathers with
// receive payload DMAs, and overtaking at the switch core is exactly
// what the scalar flow clocks cannot replay (DESIGN.md §13) — these
// mixes gate the fabric-independent wire-level claim crossover. The
// analytic fabric + receive engine are gated by the reactive echo
// mixes below, the only rig shape where they are legal.
func newFaultyNode(env *sim.Env, name string, inj *fault.Injector) *node {
	mm := mem.NewMap()
	fab := pcie.NewFabric(env, mm, pcie.DefaultParams())
	hostPort := fab.AddPort(name + "-root")
	dram := mm.AddRegion(name+"-dram", mem.HostDRAM, 64<<20, true)
	fab.Attach(hostPort, dram)
	params := DefaultParams()
	params.Faults = inj
	n := NewNIC(env, fab, name+"-nic", params)
	sendRing := mm.AddRegion(name+"-sring", mem.HostDRAM, 1024*SendBDSize, true)
	recvRing := mm.AddRegion(name+"-rring", mem.HostDRAM, 1024*RecvBDSize, true)
	recvCpl := mm.AddRegion(name+"-rcpl", mem.HostDRAM, 1024*RecvCplSize, true)
	status := mm.AddRegion(name+"-status", mem.HostDRAM, 64, true)
	for _, r := range []*mem.Region{sendRing, recvRing, recvCpl, status} {
		fab.Attach(hostPort, r)
	}
	cfg := QueueConfig{
		QID: 0, SendRing: sendRing, SendEntries: 1024,
		SendStatus: status.Base,
		RecvRing:   recvRing, RecvEntries: 1024,
		RecvCpl: recvCpl, RecvStatus: status.Base + 8,
		MSIVector: -1,
	}
	n.ConfigureQueue(cfg)
	return &node{
		mm: mm, fab: fab, hostPort: hostPort, dram: dram, nic: n, cfg: cfg,
		send: NewSendRing(fab, n, cfg),
		recv: NewRecvRing(fab, n, cfg),
	}
}

// mixFlow returns flow fl of node i's transmit direction.
func mixFlow(i, fl int) ether.Flow {
	f := ether.Flow{
		SrcMAC: ether.MAC{2, 0, 0, 0, 0, byte(1 + i)},
		DstMAC: ether.MAC{2, 0, 0, 0, 0, byte(2 - i)},
		SrcIP:  ether.IP{10, 0, 0, byte(1 + i)}, DstIP: ether.IP{10, 0, 0, byte(2 - i)},
		SrcPort: uint16(5000 + 13*fl), DstPort: 80,
	}
	if i == 1 {
		f.SrcPort, f.DstPort = uint16(7000+17*fl), 81
	}
	return f
}

// assertEquivalent runs the mix under both fidelities and fails on the
// first fingerprint divergence.
func assertEquivalent(t *testing.T, name string, mix mixConfig) (frame, flow sim.Stats) {
	t.Helper()
	frameFP, frameStats := runMix(sim.WireFrame, mix)
	flowFP, flowStats := runMix(sim.WireFlow, mix)
	if frameFP != flowFP {
		fl := strings.Split(frameFP, "\n")
		gl := strings.Split(flowFP, "\n")
		for i := 0; i < len(fl) || i < len(gl); i++ {
			a, b := "<eof>", "<eof>"
			if i < len(fl) {
				a = fl[i]
			}
			if i < len(gl) {
				b = gl[i]
			}
			if a != b {
				t.Fatalf("%s: fingerprints diverge at line %d:\n  frame: %s\n  flow:  %s",
					name, i, a, b)
			}
		}
		t.Fatalf("%s: fingerprints differ", name)
	}
	return frameStats, flowStats
}

func bulkMix(ops []mixOp, flows, bufs int) mixConfig {
	return mixConfig{ops: ops, flows: flows, bufs: bufs, profile: fault.None(), faultSeed: 1}
}

func TestFidelityEquivalenceBulkDuplex(t *testing.T) {
	// Steady duplex bulk: both nodes stream full-size LSO jobs with no
	// gaps — the claim path's home turf.
	var ops []mixOp
	for k := 0; k < 12; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10})
		ops = append(ops, mixOp{node: 1, fl: 0, size: 48 << 10})
	}
	_, flowStats := assertEquivalent(t, "bulk-duplex", bulkMix(ops, 1, 256))
	if flowStats.Segments == 0 {
		t.Fatal("knob not live: bulk duplex emitted no flow segments")
	}
}

func TestFidelityEquivalenceShortMessages(t *testing.T) {
	// Short-message bypass: everything below the bulk threshold stays
	// per-frame in both fidelities.
	var ops []mixOp
	for k := 0; k < 30; k++ {
		ops = append(ops, mixOp{node: k % 2, fl: 0, size: 64 + 32*k, gap: sim.Time(k%3) * 5 * sim.Microsecond})
	}
	assertEquivalent(t, "short", bulkMix(ops, 1, 128))
}

func TestFidelityEquivalenceMultiFlow(t *testing.T) {
	// Concurrent flows per direction with mixed sizes: per-flow state
	// machines ramp independently; interleaving must stay exact.
	var ops []mixOp
	for k := 0; k < 10; k++ {
		ops = append(ops, mixOp{node: 0, fl: k % 3, size: 32 << 10})
		ops = append(ops, mixOp{node: 1, fl: k % 2, size: 200, gap: sim.Time(k%2) * 2 * sim.Microsecond})
		ops = append(ops, mixOp{node: 0, fl: (k + 1) % 3, size: 1460})
	}
	assertEquivalent(t, "multi-flow", bulkMix(ops, 3, 256))
}

func TestFidelityEquivalenceStarvation(t *testing.T) {
	// Fewer receive buffers than in-flight frames: the fast path must
	// starve, recover, and retire in exactly the per-frame order.
	var ops []mixOp
	for k := 0; k < 8; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10})
	}
	assertEquivalent(t, "starve", bulkMix(ops, 1, 24))
}

func faultMix(ops []mixOp, flows, bufs int, rules map[fault.Site]fault.Rule) mixConfig {
	return mixConfig{ops: ops, flows: flows, bufs: bufs,
		profile: fault.Profile{Name: "mix", Rules: rules}, faultSeed: uint64(testSeed)}
}

func TestFidelityEquivalenceCorruptionBurst(t *testing.T) {
	// Deterministic corruption of the first frames: the flow machine
	// must demote, replay per-frame, and re-promote after the limit —
	// with the recovery timeline identical in both fidelities. The
	// trailing jobs sit behind a drain gap: crossover back to segments
	// additionally needs a quiescent wire (no real frame between FIFO
	// insertion and wire exit), which a gapless stream never offers.
	var ops []mixOp
	for k := 0; k < 10; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10})
	}
	for k := 0; k < 3; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10, gap: 500 * sim.Microsecond})
	}
	_, flowStats := assertEquivalent(t, "corrupt-first", faultMix(ops, 1, 256,
		map[fault.Site]fault.Rule{fault.NICCorruptFrame: {Prob: 1, Limit: 5}}))
	if flowStats.Segments == 0 {
		t.Fatal("flow path never re-promoted after the fault limit")
	}
}

// TestFidelityFaultSplitBoundary pins the mid-stream fault split: with
// NICCorruptFrame limited to 5 hits, every hit must be drawn on the
// per-frame replay path (a claim never carries a frame that might be
// corrupted — the segment splits exactly at the fault's frame
// boundary), and the post-fault tail must still be claimed.
func TestFidelityFaultSplitBoundary(t *testing.T) {
	var ops []mixOp
	for k := 0; k < 6; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10})
	}
	for k := 0; k < 3; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10, gap: 500 * sim.Microsecond})
	}
	mix := faultMix(ops, 1, 256,
		map[fault.Site]fault.Rule{fault.NICCorruptFrame: {Prob: 1, Limit: 5}})
	fp, stats := runMix(sim.WireFlow, mix)
	if !strings.Contains(fp, "replays=5") {
		t.Fatalf("flow run did not replay exactly the limited hits:\n%s", fp)
	}
	if stats.Segments == 0 || stats.SegFrames == 0 {
		t.Fatalf("flow run claimed nothing after the fault boundary: %+v", stats)
	}
}

func TestFidelityEquivalenceRandomCorruption(t *testing.T) {
	// Probabilistic corruption keeps the site armed for the whole run:
	// the fast path must stay demoted and the RNG draw sequence (and
	// with it every replay instant) must match exactly.
	var ops []mixOp
	for k := 0; k < 8; k++ {
		ops = append(ops, mixOp{node: k % 2, fl: 0, size: 32 << 10})
	}
	assertEquivalent(t, "corrupt-rand", faultMix(ops, 1, 256,
		map[fault.Site]fault.Rule{fault.NICCorruptFrame: {Prob: 0.1}}))
}

func TestFidelityEquivalenceStuckBDs(t *testing.T) {
	// Stuck descriptor fetches: the analytic fetch draws the site at
	// the identical post-fetch instant, so recovery stalls line up.
	var ops []mixOp
	for k := 0; k < 10; k++ {
		ops = append(ops, mixOp{node: 0, fl: 0, size: 64 << 10})
		ops = append(ops, mixOp{node: 1, fl: 0, size: 16 << 10})
	}
	assertEquivalent(t, "stuck-bd", faultMix(ops, 1, 256,
		map[fault.Site]fault.Rule{fault.NICStuckBD: {Prob: 0.2}}))
}

// echoConfig scripts a reactive request/response rig: node a sends a
// request, node b answers each fully received request with a reply,
// and a issues the next request only after the full reply lands. Every
// initiator is completion-driven, so the rig legally declares
// SetFlowReactive on top of SetFlowExclusive — the one fabric shape
// where analytic DMA, the receive engine, and future-issue plan
// bookings are all exact (DESIGN.md §13).
type echoConfig struct {
	rounds    int
	reqSize   int
	repSize   int
	profile   fault.Profile
	faultSeed uint64
}

// runEcho drives one reactive echo exchange under the given fidelity
// and returns the full host-visible fingerprint.
func runEcho(fid sim.WireFidelity, cfg echoConfig) (string, sim.Stats) {
	env := sim.NewEnv()
	env.SetWireFidelity(fid)
	nodes := make([]*fidelityNode, 2)
	var lines []string
	for i, name := range []string{"a", "b"} {
		inj := fault.NewInjector(cfg.faultSeed, cfg.profile)
		n := newFaultyNode(env, name, inj)
		n.fab.SetFlowExclusive()
		n.fab.SetFlowReactive()
		fn := &fidelityNode{node: n, lines: &lines, label: name}
		fn.bufBase = n.dram.Alloc(64*2048, 4096)
		for k := 0; k < 64; k++ {
			fn.free = append(fn.free, fn.bufBase+mem.Addr(k*2048))
		}
		fn.txSeq = make([]uint32, 1)
		nodes[i] = fn
	}
	Connect(nodes[0].nic, nodes[1].nic)
	send := func(i, size int) {
		fn := nodes[i]
		payload := make([]byte, size)
		for j := range payload {
			payload[j] = byte(j ^ size ^ int(fn.txSeq[0]))
		}
		sendJob(fn.node, mixFlow(i, 0), fn.txSeq[0], payload, size > int(ether.MSS))
		fn.txSeq[0] += uint32(size)
	}
	rounds := 0
	var gotA, gotB int // payload bytes fully delivered to each node
	for i := range nodes {
		i := i
		fn := nodes[i]
		fn.post(fn.free)
		fn.free = fn.free[:0]
		_, off := fn.mm.MustResolve(fn.cfg.RecvStatus)
		fn.statusRegion().SetWriteHook(func(o uint64, k int) {
			if o != off {
				return
			}
			fn.fills = fn.recv.AppendPoll(fn.fills[:0])
			for _, f := range fn.fills {
				raw := fn.mm.View(f.Addr, int(f.Cpl.HdrLen)+int(f.Cpl.PayLen))
				*fn.lines = append(*fn.lines, fmt.Sprintf(
					"t=%d %s addr=%x idx=%d seq=%d flags=%d hl=%d pl=%d crc=%08x",
					env.Now(), fn.label, uint64(f.Addr), f.Cpl.BDIndex, f.Cpl.Seq,
					f.Cpl.Flags, f.Cpl.HdrLen, f.Cpl.PayLen, crc32.ChecksumIEEE(raw)))
				fn.free = append(fn.free, f.Addr)
				if i == 1 {
					gotB += int(f.Cpl.PayLen)
				} else {
					gotA += int(f.Cpl.PayLen)
				}
			}
			if len(fn.fills) > 0 {
				fn.post(fn.free)
				fn.free = fn.free[:0]
			}
			// Completion-driven sends: b answers each fully received
			// request; a pipelines the next request after the full reply.
			if i == 1 {
				for gotB >= cfg.reqSize*(rounds+1) && rounds < cfg.rounds {
					rounds++
					send(1, cfg.repSize)
				}
			} else if gotA >= cfg.repSize*rounds && rounds < cfg.rounds && gotA > 0 {
				send(0, cfg.reqSize)
			}
		})
	}
	env.Spawn("kickoff", func(p *sim.Proc) { send(0, cfg.reqSize) })
	env.Run(-1)
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for _, fn := range nodes {
		tx, rx, txp, rxp, drops, errs := fn.nic.Stats()
		replays, refetches := fn.nic.RecoveryStats()
		fmt.Fprintf(&sb, "%s tx=%d rx=%d txp=%d rxp=%d drops=%d errs=%d replays=%d refetches=%d\n",
			fn.label, tx, rx, txp, rxp, drops, errs, replays, refetches)
	}
	fmt.Fprintf(&sb, "end=%d\n", env.Now())
	return sb.String(), env.Stats()
}

// assertEchoEquivalent runs the echo under both fidelities and fails
// on the first fingerprint divergence.
func assertEchoEquivalent(t *testing.T, name string, cfg echoConfig) (frame, flow sim.Stats) {
	t.Helper()
	frameFP, frameStats := runEcho(sim.WireFrame, cfg)
	flowFP, flowStats := runEcho(sim.WireFlow, cfg)
	if frameFP != flowFP {
		fl := strings.Split(frameFP, "\n")
		gl := strings.Split(flowFP, "\n")
		for i := 0; i < len(fl) || i < len(gl); i++ {
			a, b := "<eof>", "<eof>"
			if i < len(fl) {
				a = fl[i]
			}
			if i < len(gl) {
				b = gl[i]
			}
			if a != b {
				t.Fatalf("%s: fingerprints diverge at line %d:\n  frame: %s\n  flow:  %s",
					name, i, a, b)
			}
		}
		t.Fatalf("%s: fingerprints differ", name)
	}
	return frameStats, flowStats
}

func TestFidelityEquivalenceReactiveEcho(t *testing.T) {
	// Single-frame request/response on a reactive analytic fabric: the
	// solo receive plan's home turf. The flow run must both match the
	// per-frame timeline exactly and actually take the fast path.
	frameStats, flowStats := assertEchoEquivalent(t, "echo", echoConfig{
		rounds: 40, reqSize: 1024, repSize: 1024,
		profile: fault.None(), faultSeed: 1,
	})
	if flowStats.Events >= frameStats.Events {
		t.Fatalf("knob not live: flow run used %d events, frame run %d",
			flowStats.Events, frameStats.Events)
	}
}

func TestFidelityEquivalenceReactiveBulkEcho(t *testing.T) {
	// Small request, bulk LSO reply: claims, engine burst machinery,
	// and gather plans all engage within one reactive exchange.
	frameStats, flowStats := assertEchoEquivalent(t, "bulk-echo", echoConfig{
		rounds: 12, reqSize: 512, repSize: 32 << 10,
		profile: fault.None(), faultSeed: 1,
	})
	if flowStats.Segments == 0 {
		t.Fatal("knob not live: bulk echo emitted no flow segments")
	}
	if flowStats.Events >= frameStats.Events {
		t.Fatalf("knob not live: flow run used %d events, frame run %d",
			flowStats.Events, frameStats.Events)
	}
}

func TestFidelityEquivalenceReactiveFaultyEcho(t *testing.T) {
	// Faults on the reactive rig: corruption demotes the reply flow to
	// per-frame replay through the engine; stuck descriptor fetches
	// stall the analytic send path at the per-frame instants.
	assertEchoEquivalent(t, "echo-corrupt", echoConfig{
		rounds: 20, reqSize: 1024, repSize: 1024,
		profile: fault.Profile{Name: "ec", Rules: map[fault.Site]fault.Rule{
			fault.NICCorruptFrame: {Prob: 0.2},
		}},
		faultSeed: uint64(testSeed),
	})
	assertEchoEquivalent(t, "echo-stuck", echoConfig{
		rounds: 12, reqSize: 512, repSize: 32 << 10,
		profile: fault.Profile{Name: "es", Rules: map[fault.Site]fault.Rule{
			fault.NICStuckBD: {Prob: 0.2},
		}},
		faultSeed: uint64(testSeed),
	})
}

func TestFidelityEquivalenceRandomMixes(t *testing.T) {
	// Randomized traffic under pinned seeds: sizes, gaps, flows, and
	// fault schedules all drawn from testSeed-derived streams.
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(testSeed + int64(trial)))
		var ops []mixOp
		nops := 20 + rng.Intn(20)
		for k := 0; k < nops; k++ {
			op := mixOp{
				node: rng.Intn(2),
				fl:   rng.Intn(2),
				gap:  sim.Time(rng.Intn(4)) * sim.Microsecond,
			}
			switch rng.Intn(4) {
			case 0:
				op.size = 1 + rng.Intn(255) // short
			case 1:
				op.size = 256 + rng.Intn(1461) // one full-ish frame
			default:
				op.size = 4 << (10 + rng.Intn(5)) // bulk LSO 4K..64K
			}
			ops = append(ops, op)
		}
		rules := map[fault.Site]fault.Rule{}
		if trial%2 == 1 {
			rules[fault.NICCorruptFrame] = fault.Rule{Prob: 1, Limit: rng.Intn(4)}
			rules[fault.NICStuckBD] = fault.Rule{Prob: 0.1}
		}
		mix := faultMix(ops, 2, 256, rules)
		mix.faultSeed = uint64(testSeed + int64(trial))
		assertEquivalent(t, fmt.Sprintf("rand-%d", trial), mix)
	}
}
