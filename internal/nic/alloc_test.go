package nic

import "testing"

// BD and completion marshalling runs once per frame (often several
// times per frame); the NIC's ring engines rely on it staying
// allocation-free.

func TestSendBDCodecZeroAlloc(t *testing.T) {
	bd := SendBD{Addr: 0x4000, Len: 1500, Flags: SendFlagLSO | SendFlagEnd, MSS: 1460}
	var sink SendBD
	if n := testing.AllocsPerRun(100, func() {
		enc := bd.Encode()
		got, err := DecodeSendBD(enc[:])
		if err != nil {
			panic(err)
		}
		sink = got
	}); n != 0 {
		t.Fatalf("send-BD encode/decode allocates %v per run", n)
	}
	_ = sink
}

func TestRecvCplCodecZeroAlloc(t *testing.T) {
	c := RecvCpl{BDIndex: 3, HdrLen: 54, PayLen: 1460, Seq: 1000, Flags: 1, Valid: 1}
	var sink RecvCpl
	if n := testing.AllocsPerRun(100, func() {
		enc := c.Encode()
		got, err := DecodeRecvCpl(enc[:])
		if err != nil {
			panic(err)
		}
		sink = got
	}); n != 0 {
		t.Fatalf("recv-cpl encode/decode allocates %v per run", n)
	}
	_ = sink
}
