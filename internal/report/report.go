// Package report renders the harness output: aligned tables and
// ASCII stacked-bar charts, one per reproduced figure/table.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Bar is one stacked bar: a label plus (segment, value) pairs.
type Bar struct {
	Label    string
	Segments []Segment
}

// Segment is one stacked component.
type Segment struct {
	Name  string
	Value float64
}

// Total returns the bar's height.
func (b Bar) Total() float64 {
	var t float64
	for _, s := range b.Segments {
		t += s.Value
	}
	return t
}

// StackedChart renders horizontal stacked bars with a shared scale
// and a per-segment legend — the textual analogue of the paper's
// stacked-bar figures.
type StackedChart struct {
	Title string
	Unit  string
	Bars  []Bar
	Width int // bar width in characters (default 50)
}

// glyphs assigns a distinct fill character per segment name.
var glyphs = []byte{'#', '=', '+', 'o', '*', '~', '%', '@', 'x', ':', '.', '&'}

// Render writes the chart to w.
func (c *StackedChart) Render(w io.Writer) {
	if c.Width <= 0 {
		c.Width = 50
	}
	fmt.Fprintf(w, "%s\n%s\n", c.Title, strings.Repeat("=", len(c.Title)))
	var max float64
	labelW := 0
	segNames := []string{}
	seen := map[string]byte{}
	for _, b := range c.Bars {
		if b.Total() > max {
			max = b.Total()
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		for _, s := range b.Segments {
			if _, ok := seen[s.Name]; !ok {
				seen[s.Name] = glyphs[len(seen)%len(glyphs)]
				segNames = append(segNames, s.Name)
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, b := range c.Bars {
		var sb strings.Builder
		drawn := 0
		wanted := 0.0
		for _, s := range b.Segments {
			wanted += s.Value / max * float64(c.Width)
			n := int(wanted+0.5) - drawn
			if n < 0 {
				n = 0
			}
			sb.WriteString(strings.Repeat(string(seen[s.Name]), n))
			drawn += n
		}
		fmt.Fprintf(w, "  %-*s |%-*s| %.2f %s\n", labelW, b.Label, c.Width, sb.String(), b.Total(), c.Unit)
	}
	fmt.Fprintf(w, "  legend:")
	for _, n := range segNames {
		fmt.Fprintf(w, " %c=%s", seen[n], n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// BreakdownBar converts a latency breakdown into a Bar in µs,
// dropping pure-wait phases already covered by device segments.
func BreakdownBar(label string, bd *trace.Breakdown, drop ...trace.Category) Bar {
	skip := map[trace.Category]bool{}
	for _, d := range drop {
		skip[d] = true
	}
	b := Bar{Label: label}
	for _, ph := range bd.Phases() {
		if skip[ph] {
			continue
		}
		b.Segments = append(b.Segments, Segment{Name: string(ph), Value: bd.Get(ph).Microseconds()})
	}
	return b
}

// BusyBar converts per-category CPU busy time into a utilization Bar
// (fraction of total core capacity over the window).
func BusyBar(label string, busy map[trace.Category]sim.Time, window sim.Time, cores int) Bar {
	b := Bar{Label: label}
	names := make([]string, 0, len(busy))
	for cat := range busy {
		names = append(names, string(cat))
	}
	sort.Strings(names)
	denom := float64(window) * float64(cores)
	for _, name := range names {
		v := busy[trace.Category(name)]
		if v <= 0 {
			continue
		}
		b.Segments = append(b.Segments, Segment{Name: name, Value: float64(v) / denom * 100})
	}
	return b
}

// Pct formats a ratio as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// WriteCSV emits the table as CSV (for external plotting).
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
}
