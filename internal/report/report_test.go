package report

import (
	"strings"
	"testing"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/trace"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T", "a", "bbbb", "longer", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, rule, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestStackedChartRender(t *testing.T) {
	c := StackedChart{
		Title: "Figure X",
		Unit:  "µs",
		Bars: []Bar{
			{Label: "sw", Segments: []Segment{{"fs", 10}, {"read", 30}}},
			{Label: "dcs", Segments: []Segment{{"read", 25}}},
		},
	}
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "legend:") {
		t.Fatal("no legend")
	}
	if !strings.Contains(out, "40.00 µs") || !strings.Contains(out, "25.00 µs") {
		t.Fatalf("totals missing:\n%s", out)
	}
	// The taller bar must use more fill characters.
	swLine, dcsLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "sw ") || strings.HasPrefix(strings.TrimSpace(l), "sw") {
			if swLine == "" {
				swLine = l
			}
		}
		if strings.Contains(l, "dcs") {
			dcsLine = l
		}
	}
	fills := func(s string) int {
		return strings.Count(s, "#") + strings.Count(s, "=")
	}
	if fills(swLine) <= fills(dcsLine) {
		t.Fatalf("bar proportions wrong:\n%s", out)
	}
}

func TestChartZeroBars(t *testing.T) {
	c := StackedChart{Title: "empty", Bars: []Bar{{Label: "z"}}}
	var sb strings.Builder
	c.Render(&sb) // must not divide by zero
	if !strings.Contains(sb.String(), "z") {
		t.Fatal("label missing")
	}
}

func TestBreakdownBar(t *testing.T) {
	bd := trace.NewBreakdown()
	bd.Add(trace.CatFileSystem, 3*sim.Microsecond)
	bd.Add(trace.CatIdleWait, 100*sim.Microsecond)
	bd.Add(trace.CatRead, 20*sim.Microsecond)
	b := BreakdownBar("x", bd, trace.CatIdleWait)
	if len(b.Segments) != 2 {
		t.Fatalf("segments = %v", b.Segments)
	}
	if b.Total() != 23 {
		t.Fatalf("total = %v", b.Total())
	}
	// Order preserved from the breakdown.
	if b.Segments[0].Name != string(trace.CatFileSystem) {
		t.Fatalf("first = %s", b.Segments[0].Name)
	}
}

func TestBusyBar(t *testing.T) {
	busy := map[trace.Category]sim.Time{
		trace.CatNetStack: 30 * sim.Microsecond,
		trace.CatUser:     10 * sim.Microsecond,
	}
	b := BusyBar("cfg", busy, 100*sim.Microsecond, 2)
	if len(b.Segments) != 2 {
		t.Fatalf("segments = %v", b.Segments)
	}
	if got := b.Total(); got != 20 { // 40µs / 200µs = 20%
		t.Fatalf("total = %v%%", got)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.423) != "42.3%" {
		t.Fatalf("Pct = %s", Pct(0.423))
	}
}

func TestWriteCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("plain", `has,comma`)
	tb.AddRow(`has"quote`, "x")
	var sb strings.Builder
	tb.WriteCSV(&sb)
	got := sb.String()
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant\n%q", got, want)
	}
}
