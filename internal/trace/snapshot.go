package trace

import (
	"sort"

	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17): the account's window start and
// per-category busy map, categories sorted so encode order never
// leaks map iteration order.

// SnapSave encodes the account state.
func (a *CPUAccount) SnapSave(w *snap.Writer) error {
	w.I64(int64(a.start))
	cats := make([]Category, 0, len(a.busy))
	for c := range a.busy {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	w.U32(uint32(len(cats)))
	for _, c := range cats {
		w.Str(string(c))
		w.I64(int64(a.busy[c]))
	}
	return nil
}

// SnapLoad replaces the account state with the captured one.
func (a *CPUAccount) SnapLoad(r *snap.Reader) error {
	a.start = sim.Time(r.I64())
	n := int(r.U32())
	a.busy = make(map[Category]sim.Time, n)
	for i := 0; i < n; i++ {
		c := Category(r.Str())
		a.busy[c] = sim.Time(r.I64())
	}
	return r.Err()
}
