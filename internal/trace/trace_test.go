package trace

import (
	"math"
	"testing"
	"testing/quick"

	"dcsctrl/internal/sim"
)

func TestCPUAccountChargeAndUtilization(t *testing.T) {
	e := sim.NewEnv()
	a := NewCPUAccount(e)
	e.Spawn("work", func(p *sim.Proc) {
		a.Charge(CatUser, 10*sim.Microsecond)
		p.Sleep(100 * sim.Microsecond)
		a.Charge(CatNetStack, 30*sim.Microsecond)
	})
	e.Run(-1)
	if a.Busy(CatUser) != 10*sim.Microsecond {
		t.Fatalf("user busy = %v", a.Busy(CatUser))
	}
	if a.TotalBusy() != 40*sim.Microsecond {
		t.Fatalf("total busy = %v", a.TotalBusy())
	}
	if got := a.TotalUtilization(1); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("util = %v, want 0.4", got)
	}
	if got := a.Utilization(CatNetStack, 2); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("net util on 2 cores = %v, want 0.15", got)
	}
}

func TestCPUAccountReset(t *testing.T) {
	e := sim.NewEnv()
	a := NewCPUAccount(e)
	a.Charge(CatUser, sim.Microsecond)
	e.Spawn("tick", func(p *sim.Proc) { p.Sleep(50 * sim.Microsecond) })
	e.Run(-1)
	a.Reset()
	if a.TotalBusy() != 0 || a.Window() != 0 {
		t.Fatal("reset did not clear account")
	}
}

func TestCPUAccountCategoriesSorted(t *testing.T) {
	e := sim.NewEnv()
	a := NewCPUAccount(e)
	a.Charge(CatUser, 1)
	a.Charge(CatDataCopy, 1)
	a.Charge(CatBlockLayer, 1)
	cs := a.Categories()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("categories not sorted: %v", cs)
		}
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e := sim.NewEnv()
	NewCPUAccount(e).Charge(CatUser, -1)
}

func TestBreakdownOrderAndTotal(t *testing.T) {
	b := NewBreakdown()
	b.Add(CatFileSystem, 3*sim.Microsecond)
	b.Add(CatRead, 20*sim.Microsecond)
	b.Add(CatFileSystem, 1*sim.Microsecond)
	b.Add(CatNetStack, 5*sim.Microsecond)
	if b.Total() != 29*sim.Microsecond {
		t.Fatalf("total = %v", b.Total())
	}
	phases := b.Phases()
	want := []Category{CatFileSystem, CatRead, CatNetStack}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase order = %v", phases)
		}
	}
	if b.Get(CatFileSystem) != 4*sim.Microsecond {
		t.Fatalf("fs = %v", b.Get(CatFileSystem))
	}
}

func TestBreakdownMergeAndAverage(t *testing.T) {
	mk := func(fs, rd sim.Time) *Breakdown {
		b := NewBreakdown()
		b.Add(CatFileSystem, fs)
		b.Add(CatRead, rd)
		return b
	}
	avg := AverageBreakdowns([]*Breakdown{
		mk(2*sim.Microsecond, 10*sim.Microsecond),
		mk(4*sim.Microsecond, 30*sim.Microsecond),
	})
	if avg.Get(CatFileSystem) != 3*sim.Microsecond {
		t.Fatalf("avg fs = %v", avg.Get(CatFileSystem))
	}
	if avg.Get(CatRead) != 20*sim.Microsecond {
		t.Fatalf("avg read = %v", avg.Get(CatRead))
	}
	if AverageBreakdowns(nil).Total() != 0 {
		t.Fatal("empty average not zero")
	}
}

func TestSpan(t *testing.T) {
	e := sim.NewEnv()
	var lat sim.Time
	e.Spawn("op", func(p *sim.Proc) {
		s := NewSpan(e, "op")
		p.Sleep(25 * sim.Microsecond)
		s.Close(e)
		lat = s.Latency()
	})
	e.Run(-1)
	if lat != 25*sim.Microsecond {
		t.Fatalf("latency = %v", lat)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		s.Add(v)
	}
	if s.N() != 10 || s.Sum() != 55 {
		t.Fatalf("n=%d sum=%v", s.N(), s.Sum())
	}
	if s.Mean() != 5.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Percentile(50) != 5 {
		t.Fatalf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(90) != 9 {
		t.Fatalf("p90 = %v", s.Percentile(90))
	}
	if s.Min() != 1 || s.Max() != 10 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	want := math.Sqrt(8.25)
	if math.Abs(s.Stddev()-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample stats not zero")
	}
}

func TestSampleAddTime(t *testing.T) {
	var s Sample
	s.AddTime(42 * sim.Microsecond)
	if s.Mean() != 42 {
		t.Fatalf("mean = %v µs", s.Mean())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // buckets [0,10) ... [40,50) + overflow
	for _, v := range []float64{1, 5, 15, 44, 49, 100, 200} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(4) != 2 {
		t.Fatalf("buckets: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(4))
	}
	if h.Bucket(h.Buckets()-1) != 2 {
		t.Fatalf("overflow = %d", h.Bucket(h.Buckets()-1))
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("cmds", 3)
	c.Inc("irqs", 1)
	c.Inc("cmds", 2)
	if c.Get("cmds") != 5 || c.Get("irqs") != 1 {
		t.Fatalf("cmds=%d irqs=%d", c.Get("cmds"), c.Get("irqs"))
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "cmds" || keys[1] != "irqs" {
		t.Fatalf("keys = %v", keys)
	}
}
