// Package trace provides the measurement machinery of the testbed:
// per-category CPU busy-time accounting (the quantity behind the
// paper's Figures 3b, 8, 12 and 13), latency breakdowns by pipeline
// phase (Figures 3a and 11), and simple summary statistics.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"dcsctrl/internal/sim"
)

// Category labels where CPU time or latency is spent. The set mirrors
// the stacked-bar legends in the paper's figures.
type Category string

// Categories used across the testbed.
const (
	CatUser        Category = "user"         // application-level code
	CatFileSystem  Category = "file-system"  // VFS, extent lookup, page cache
	CatBlockLayer  Category = "block-layer"  // request queue, NVMe driver
	CatNetStack    Category = "net-stack"    // TCP/IP, socket buffers, NIC driver
	CatDevCtrl     Category = "device-ctrl"  // command submit/complete, doorbells
	CatDataCopy    Category = "data-copy"    // user<->kernel and CPU-mediated copies
	CatGPUCtrl     Category = "gpu-ctrl"     // kernel launch, cudaMemcpy control
	CatGPUCopy     Category = "gpu-copy"     // CPU<->GPU data transfer time
	CatInterrupt   Category = "interrupt"    // IRQ entry/exit, completion softirq
	CatHDCDriver   Category = "hdc-driver"   // DCS-ctrl's thin kernel module
	CatScoreboard  Category = "scoreboard"   // HDC Engine hardware scheduling
	CatRead        Category = "read"         // storage media time
	CatWrite       Category = "write"        // storage media time (writes)
	CatHash        Category = "hash"         // checksum computation
	CatNICTransmit Category = "nic-transmit" // wire serialization
	CatPageCache   Category = "page-cache"   // stock-kernel page cache management
	CatSockBuf     Category = "sock-buf"     // stock-kernel socket buffer management
	CatIdleWait    Category = "wait"         // time blocked on devices (latency only)
	CatRetry       Category = "retry"        // backoff + re-issue after a device fault
	CatFallback    Category = "fallback"     // host-mediated path after engine failure
)

// CPUAccount accumulates per-category core busy time. One account
// normally covers one host (all its cores).
type CPUAccount struct {
	env   *sim.Env
	busy  map[Category]sim.Time
	start sim.Time
}

// NewCPUAccount returns an account starting at the current sim time.
func NewCPUAccount(env *sim.Env) *CPUAccount {
	return &CPUAccount{env: env, busy: map[Category]sim.Time{}, start: env.Now()}
}

// Charge adds d of busy time to category c.
func (a *CPUAccount) Charge(c Category, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("trace: negative charge %v to %s", d, c))
	}
	a.busy[c] += d
}

// Reset clears all accumulated time and restarts the window now.
func (a *CPUAccount) Reset() {
	a.busy = map[Category]sim.Time{}
	a.start = a.env.Now()
}

// Window returns the accounting window length so far.
func (a *CPUAccount) Window() sim.Time { return a.env.Now() - a.start }

// Busy returns the busy time accumulated for category c.
func (a *CPUAccount) Busy(c Category) sim.Time { return a.busy[c] }

// TotalBusy returns busy time summed over all categories.
func (a *CPUAccount) TotalBusy() sim.Time {
	var t sim.Time
	for _, v := range a.busy {
		t += v
	}
	return t
}

// Categories returns the categories with non-zero time, sorted.
func (a *CPUAccount) Categories() []Category {
	cs := make([]Category, 0, len(a.busy))
	for c, v := range a.busy {
		if v > 0 {
			cs = append(cs, c)
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Utilization returns busy/(cores×window) for category c — the
// fraction of total CPU capacity spent in c.
func (a *CPUAccount) Utilization(c Category, cores int) float64 {
	w := a.Window()
	if w <= 0 || cores <= 0 {
		return 0
	}
	return float64(a.busy[c]) / (float64(w) * float64(cores))
}

// TotalUtilization returns total busy / (cores×window).
func (a *CPUAccount) TotalUtilization(cores int) float64 {
	w := a.Window()
	if w <= 0 || cores <= 0 {
		return 0
	}
	return float64(a.TotalBusy()) / (float64(w) * float64(cores))
}

// Breakdown is an ordered latency decomposition of one operation:
// phases appear in first-charge order, matching a stacked figure bar.
type Breakdown struct {
	order []Category
	dur   map[Category]sim.Time
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{dur: map[Category]sim.Time{}}
}

// Add charges d to phase c, appending c to the order on first use.
func (b *Breakdown) Add(c Category, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("trace: negative breakdown %v for %s", d, c))
	}
	if _, ok := b.dur[c]; !ok {
		b.order = append(b.order, c)
	}
	b.dur[c] += d
}

// Get returns the time charged to phase c.
func (b *Breakdown) Get(c Category) sim.Time { return b.dur[c] }

// Total returns the sum over all phases.
func (b *Breakdown) Total() sim.Time {
	var t sim.Time
	for _, v := range b.dur {
		t += v
	}
	return t
}

// Phases returns the phases in first-charge order.
func (b *Breakdown) Phases() []Category {
	return append([]Category(nil), b.order...)
}

// Merge accumulates other into b, preserving b's phase order and
// appending any new phases.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, c := range other.order {
		b.Add(c, other.dur[c])
	}
}

// Scale multiplies every phase by f (used for averaging).
func (b *Breakdown) Scale(f float64) {
	for c, v := range b.dur {
		b.dur[c] = sim.Time(float64(v) * f)
	}
}

// String renders "phase=dur" pairs in order.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, c := range b.order {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%v", c, b.dur[c])
	}
	return sb.String()
}

// AverageBreakdowns merges n breakdowns and divides by n.
func AverageBreakdowns(bs []*Breakdown) *Breakdown {
	out := NewBreakdown()
	if len(bs) == 0 {
		return out
	}
	for _, b := range bs {
		out.Merge(b)
	}
	out.Scale(1 / float64(len(bs)))
	return out
}

// Span measures one operation: wall-clock start/end plus a Breakdown.
// A Span is handed down a pipeline so each stage can self-report.
type Span struct {
	Name      string
	Start     sim.Time
	End       sim.Time
	Breakdown *Breakdown
}

// NewSpan opens a span at the current time.
func NewSpan(env *sim.Env, name string) *Span {
	return &Span{Name: name, Start: env.Now(), Breakdown: NewBreakdown()}
}

// Close records the end time and returns the span for chaining.
func (s *Span) Close(env *sim.Env) *Span {
	s.End = env.Now()
	return s
}

// Latency returns End-Start.
func (s *Span) Latency() sim.Time { return s.End - s.Start }
