package trace

import (
	"fmt"
	"math"
	"sort"

	"dcsctrl/internal/sim"
)

// Sample accumulates scalar observations (latencies, sizes) and
// reports summary statistics. Observations are kept, so percentiles
// are exact.
type Sample struct {
	vals   []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// AddTime records a sim.Time observation in microseconds.
func (s *Sample) AddTime(t sim.Time) { s.Add(t.Microseconds()) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.vals) }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted observations.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Histogram is a fixed-width bucket histogram over [0, width×buckets),
// with an overflow bucket at the end.
type Histogram struct {
	width   float64
	counts  []int64
	total   int64
	overMax float64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("trace: bad histogram shape")
	}
	return &Histogram{width: width, counts: make([]int64, n+1)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int(v / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts)-1 {
		i = len(h.counts) - 1
		if v > h.overMax {
			h.overMax = v
		}
	}
	h.counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets including overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Counter is a monotonically increasing named counter set.
type Counter struct {
	m    map[string]int64
	keys []string
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{m: map[string]int64{}} }

// Inc adds delta to key.
func (c *Counter) Inc(key string, delta int64) {
	if _, ok := c.m[key]; !ok {
		c.keys = append(c.keys, key)
	}
	c.m[key] += delta
}

// Get returns the value of key.
func (c *Counter) Get(key string) int64 { return c.m[key] }

// Keys returns keys in first-use order.
func (c *Counter) Keys() []string { return append([]string(nil), c.keys...) }
