package sim

import "fmt"

// Signal is a one-shot completion flag. Processes block in Wait until
// Fire is called; Fire wakes all current and future waiters.
type Signal struct {
	env     *Env
	done    bool
	val     any
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Done reports whether the signal has fired.
func (s *Signal) Done() bool { return s.done }

// Value returns the value passed to Fire (nil before firing).
func (s *Signal) Value() any { return s.val }

// Fire marks the signal done and wakes all waiters. Firing twice
// panics: completions in the model must be unique.
func (s *Signal) Fire(val any) {
	if s.done {
		panic("sim: signal fired twice")
	}
	s.done = true
	s.val = val
	for _, p := range s.waiters {
		s.env.wake(p)
	}
	s.waiters = nil
}

// Wait blocks the process until the signal fires and returns the
// fired value.
func (s *Signal) Wait(p *Proc) any {
	for !s.done {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	return s.val
}

// Cond is a broadcast condition variable: Wait parks the process until
// the next Broadcast, after which the caller re-checks its predicate
// in a loop. Unlike Queue, stale notifications accumulate no state.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond returns a condition bound to e.
func NewCond(e *Env) *Cond { return &Cond{env: e} }

// Wait parks until the next Broadcast. Callers must loop:
//
//	for !predicate() { cond.Wait(p) }
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes every currently parked waiter.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.env.wake(w)
	}
}

// Queue is an unbounded FIFO channel between processes. Put never
// blocks; Get blocks until an item is available. Items are delivered
// in insertion order and waiters are served in arrival order.
type Queue[T any] struct {
	env     *Env
	name    string
	items   []T
	waiters []*Proc
	maxLen  int // high-water mark, for diagnostics
}

// NewQueue returns an empty queue.
func NewQueue[T any](e *Env, name string) *Queue[T] {
	return &Queue[T]{env: e, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// MaxLen returns the high-water mark of the queue length.
func (q *Queue[T]) MaxLen() int { return q.maxLen }

// Put appends an item and wakes the first waiter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.env.wake(w)
	}
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If items remain and more waiters are parked, keep the chain going:
	// the wake that freed us may have raced with multiple Puts.
	if len(q.items) > 0 && len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.env.wake(w)
	}
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Resource is a counting semaphore with FIFO hand-off: Release grants
// the resource directly to the longest-waiting Acquire, so no waiter
// can be starved by late arrivals.
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*resWaiter

	// busy-time accounting (for utilization reporting)
	busy      Time // accumulated unit-busy time
	lastStamp Time
}

type resWaiter struct {
	p       *Proc
	granted bool
}

// NewResource returns a resource with capacity units.
func NewResource(e *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{env: e, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) stamp() {
	now := r.env.now
	r.busy += Time(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// BusyTime returns accumulated unit-busy time (unit-nanoseconds).
func (r *Resource) BusyTime() Time {
	r.stamp()
	return r.busy
}

// Acquire blocks until a unit is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.park()
	}
}

// TryAcquire takes a unit if one is free, without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit. If processes are waiting, ownership passes
// directly to the head waiter without the count dropping.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.granted = true
		r.env.wake(w.p)
		return
	}
	r.stamp()
	r.inUse--
}

// Use acquires the resource, sleeps for d, and releases it — the
// common "occupy a server for a service time" pattern.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}
