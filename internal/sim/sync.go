package sim

import "fmt"

// Signal is a one-shot completion flag. Processes block in Wait until
// Fire is called; Fire wakes all current and future waiters.
type Signal struct {
	env     *Env
	done    bool
	val     any
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Done reports whether the signal has fired.
func (s *Signal) Done() bool { return s.done }

// Value returns the value passed to Fire (nil before firing).
func (s *Signal) Value() any { return s.val }

// Fire marks the signal done and wakes all waiters. Firing twice
// panics: completions in the model must be unique.
func (s *Signal) Fire(val any) {
	if s.done {
		panic("sim: signal fired twice")
	}
	s.done = true
	s.val = val
	// Truncate in place rather than dropping the backing array: fired
	// signals are recycled (Reset) on zero-allocation paths, and the
	// next Wait must not have to grow a fresh waiter slice.
	for i, p := range s.waiters {
		s.env.wake(p)
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
}

// Wait blocks the process until the signal fires and returns the
// fired value.
func (s *Signal) Wait(p *Proc) any {
	for !s.done {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	return s.val
}

// WaitH is the handler-proc analogue of Wait: when the signal has
// already fired it reports true and the body proceeds inline (exactly
// where a goroutine Wait would return without parking); otherwise it
// enrolls the handler on the same waiter list a goroutine would park
// on and reports false — the body must return and re-check on its
// next dispatch, mirroring Wait's re-check loop.
//
//dcslint:hotpath
func (s *Signal) WaitH(h *HandlerCtx) bool {
	if s.done {
		return true
	}
	//dcslint:allow noalloc waiter list is capacity-preserving (Fire truncates, keeps backing array)
	s.waiters = append(s.waiters, h.proc)
	return false
}

// Reset returns a fired signal to the unfired state so it can be
// reused — the backing primitive for deterministic signal free lists
// (sync.Pool is scheduling-dependent and therefore banned from model
// code). Only the owner that observed the completion may Reset:
// resetting an unfired signal, or one that still has parked waiters,
// is a lifecycle bug and panics.
func (s *Signal) Reset() {
	if !s.done {
		panic("sim: reset of unfired signal")
	}
	if len(s.waiters) != 0 {
		panic("sim: reset of signal with waiters")
	}
	s.done = false
	s.val = nil
}

// Cond is a broadcast condition variable: Wait parks the process until
// the next Broadcast, after which the caller re-checks its predicate
// in a loop. Unlike Queue, stale notifications accumulate no state.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond returns a condition bound to e.
func NewCond(e *Env) *Cond { return &Cond{env: e} }

// Wait parks until the next Broadcast. Callers must loop:
//
//	for !predicate() { cond.Wait(p) }
func (c *Cond) Wait(p *Proc) {
	//dcslint:allow noalloc waiter list is capacity-preserving (Broadcast truncates, keeps backing array)
	c.waiters = append(c.waiters, p)
	p.park()
}

// WaitH is the handler-proc analogue of Wait: it enrolls the handler
// for the next Broadcast and returns. The body must return after
// calling it and re-check its predicate on the next dispatch:
//
//	if !predicate() { cond.WaitH(h); return }
//
//dcslint:hotpath
func (c *Cond) WaitH(h *HandlerCtx) {
	//dcslint:allow noalloc waiter list is capacity-preserving (Broadcast truncates, keeps backing array)
	c.waiters = append(c.waiters, h.proc)
}

// Broadcast wakes every currently parked waiter.
func (c *Cond) Broadcast() {
	// wake only schedules the resume event — no waiter re-enters Wait
	// until after this loop returns — so truncating in place is safe
	// and keeps the backing array for the next round of waiters.
	for i, w := range c.waiters {
		c.env.wake(w)
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
}

// Queue is an unbounded FIFO channel between processes. Put never
// blocks; Get blocks until an item is available. Items are delivered
// in insertion order and waiters are served in arrival order.
//
// Both the item and waiter FIFOs dequeue by head index and rewind when
// drained, so a steady-state Put/Get cycle reuses one backing array
// forever. Reslicing (`s = s[1:]`) would instead bleed one element of
// capacity per cycle and end up allocating on every operation.
type Queue[T any] struct {
	env      *Env
	name     string
	items    []T
	itemHead int
	waiters  []*Proc
	waitHead int
	maxLen   int // high-water mark, for diagnostics
}

// NewQueue returns an empty queue.
func NewQueue[T any](e *Env, name string) *Queue[T] {
	return &Queue[T]{env: e, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.itemHead }

// MaxLen returns the high-water mark of the queue length.
func (q *Queue[T]) MaxLen() int { return q.maxLen }

// takeItem pops the head item, zeroing the vacated slot (queued values
// may hold pointers) and rewinding once the queue drains.
func (q *Queue[T]) takeItem() T {
	var zero T
	v := q.items[q.itemHead]
	q.items[q.itemHead] = zero
	q.itemHead++
	if q.itemHead == len(q.items) {
		q.items = q.items[:0]
		q.itemHead = 0
	}
	return v
}

// wakeWaiter wakes the longest-parked waiter, if any.
func (q *Queue[T]) wakeWaiter() {
	if q.waitHead == len(q.waiters) {
		return
	}
	w := q.waiters[q.waitHead]
	q.waiters[q.waitHead] = nil
	q.waitHead++
	if q.waitHead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.waitHead = 0
	}
	q.env.wake(w)
}

// Put appends an item and wakes the first waiter, if any.
func (q *Queue[T]) Put(v T) {
	// A queue that stays non-empty slides (head advances, tail appends)
	// and would double its backing array forever; compact the live
	// window to the front instead of growing past capacity.
	if q.itemHead > 0 && len(q.items) == cap(q.items) {
		var zero T
		n := copy(q.items, q.items[q.itemHead:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = zero
		}
		q.items = q.items[:n]
		q.itemHead = 0
	}
	q.items = append(q.items, v)
	if q.Len() > q.maxLen {
		q.maxLen = q.Len()
	}
	q.wakeWaiter()
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.Len() == 0 {
		if q.waitHead > 0 && len(q.waiters) == cap(q.waiters) {
			n := copy(q.waiters, q.waiters[q.waitHead:])
			for i := n; i < len(q.waiters); i++ {
				q.waiters[i] = nil
			}
			q.waiters = q.waiters[:n]
			q.waitHead = 0
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.takeItem()
	// If items remain and more waiters are parked, keep the chain going:
	// the wake that freed us may have raced with multiple Puts.
	if q.Len() > 0 {
		q.wakeWaiter()
	}
	return v
}

// GetH is the handler-proc analogue of Get: when an item is available
// it is taken (with the identical chain-wake behaviour) and returned
// with ok=true; otherwise the handler is enrolled on the same waiter
// FIFO a goroutine would park on and ok=false — the body must return
// and retry on its next dispatch, mirroring Get's re-check loop.
//
//dcslint:hotpath
func (q *Queue[T]) GetH(h *HandlerCtx) (T, bool) {
	if q.Len() == 0 {
		if q.waitHead > 0 && len(q.waiters) == cap(q.waiters) {
			n := copy(q.waiters, q.waiters[q.waitHead:])
			for i := n; i < len(q.waiters); i++ {
				q.waiters[i] = nil
			}
			q.waiters = q.waiters[:n]
			q.waitHead = 0
		}
		//dcslint:allow noalloc waiter list is capacity-preserving (wakeWaiter rewinds, keeps backing array)
		q.waiters = append(q.waiters, h.proc)
		var zero T
		return zero, false
	}
	v := q.takeItem()
	// Identical to Get: if items remain and more waiters are parked,
	// keep the chain going.
	if q.Len() > 0 {
		q.wakeWaiter()
	}
	return v, true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.takeItem(), true
}

// Resource is a counting semaphore with FIFO hand-off: Release grants
// the resource directly to the longest-waiting Acquire, so no waiter
// can be starved by late arrivals.
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*resWaiter

	// busy-time accounting (for utilization reporting)
	busy      Time // accumulated unit-busy time
	lastStamp Time
}

type resWaiter struct {
	p       *Proc
	granted bool
}

// NewResource returns a resource with capacity units.
func NewResource(e *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{env: e, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) stamp() {
	now := r.env.now
	r.busy += Time(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// BusyTime returns accumulated unit-busy time (unit-nanoseconds).
func (r *Resource) BusyTime() Time {
	r.stamp()
	return r.busy
}

// Acquire blocks until a unit is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	//dcslint:allow noalloc non-escaping waiter record, stack-allocated (pcie_dma_4k proves 0 allocs/op under contention)
	w := &resWaiter{p: p}
	//dcslint:allow noalloc waiter list is capacity-preserving (grant path truncates, keeps backing array)
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.park()
	}
}

// ResTicket is a handler proc's pending Acquire: the waiter record a
// goroutine Acquire would stack-allocate, held instead inside the
// handler's long-lived state machine so enrolment survives across
// dispatches without allocating. The zero value is an idle ticket.
type ResTicket struct {
	w       resWaiter
	waiting bool
}

// AcquireH is the handler-proc analogue of Acquire: it reports true
// once the caller holds a unit. On false the handler is enrolled (or
// still enrolled) on the same FIFO waiter list a goroutine would park
// on; the body must return and call AcquireH again with the same
// ticket on its next dispatch. The grant path is identical: Release
// passes ownership directly to the head waiter.
//
//dcslint:hotpath
func (r *Resource) AcquireH(h *HandlerCtx, t *ResTicket) bool {
	if t.waiting {
		if !t.w.granted {
			return false // spurious dispatch: grant not ours yet
		}
		// Ownership was passed directly by Release; reset the ticket
		// for reuse.
		t.waiting = false
		t.w = resWaiter{}
		return true
	}
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return true
	}
	t.w = resWaiter{p: h.proc}
	t.waiting = true
	//dcslint:allow noalloc waiter record lives inside the caller's ticket; list is capacity-preserving
	r.waiters = append(r.waiters, &t.w)
	return false
}

// TryAcquire takes a unit if one is free, without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit. If processes are waiting, ownership passes
// directly to the head waiter without the count dropping.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.granted = true
		r.env.wake(w.p)
		return
	}
	r.stamp()
	r.inUse--
}

// Use acquires the resource, sleeps for d, and releases it — the
// common "occupy a server for a service time" pattern.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}
