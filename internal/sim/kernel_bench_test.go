package sim

import "testing"

// Kernel microbenchmarks. Each op is one kernel event, so ns/op and
// allocs/op read directly as ns/event and allocs/event — the numbers
// BENCH_kernel.json tracks across PRs. Run with
//
//	go test -bench=Kernel -benchmem ./internal/sim
//
// BenchmarkKernelSchedule measures the pure timer path: schedule a
// batch of callbacks at staggered future instants and dispatch them.
// It exercises the event heap with no process handoffs.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	nop := func() {}
	const batch = 4096
	for done := 0; done < b.N; {
		n := batch
		if rem := b.N - done; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			// Staggered deadlines keep the heap genuinely ordered
			// (all-equal deadlines would hit the FIFO fast path).
			env.Schedule(Time(1+(j*37)%977), nop)
		}
		env.Run(-1)
		done += n
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkKernelScheduleNow measures the same-instant path: callbacks
// scheduled with zero delay, the Yield/wake burst pattern that the
// FIFO lane accelerates.
func BenchmarkKernelScheduleNow(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	nop := func() {}
	const batch = 4096
	for done := 0; done < b.N; {
		n := batch
		if rem := b.N - done; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			env.Schedule(0, nop)
		}
		env.Run(-1)
		done += n
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkKernelParkResume measures the process handoff path: two
// processes ping-ponging via Yield, so every op is a genuine
// cross-goroutine park/resume handshake plus one same-instant event.
func BenchmarkKernelParkResume(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	iters := b.N/2 + 1
	for k := 0; k < 2; k++ {
		env.Spawn("ping", func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	env.Run(-1)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkKernelSleepChain measures the timer + handoff combination:
// two processes alternating sleeps, the dominant pattern in the device
// models (DMA completions, wire serialization, command rings).
func BenchmarkKernelSleepChain(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	iters := b.N/2 + 1
	for k := 0; k < 2; k++ {
		env.Spawn("chain", func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.Sleep(Time(1 + i%13))
			}
		})
	}
	b.ResetTimer()
	env.Run(-1)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
