// Package sim implements a deterministic discrete-event simulation
// kernel in the style of SimPy: a single logical timeline, an event
// heap ordered by (time, sequence), and cooperative goroutine-backed
// processes that park on the scheduler and are resumed one at a time.
//
// Exactly one goroutine (either the scheduler or the currently running
// process) executes at any instant, so model code needs no locking and
// every run with the same inputs produces the same event order.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units, usable for both timestamps and durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time using time.Duration notation (e.g. "42µs").
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns the time as a floating-point number of µs.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled callback. Events with equal deadlines fire in
// the order they were scheduled (seq), which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Env is a simulation environment: a clock, an event heap, and the
// bookkeeping needed to hand control between scheduler and processes.
type Env struct {
	now   Time
	seq   uint64
	heap  eventHeap
	yield chan struct{} // a running process signals here when it parks or exits
	live  int           // processes spawned and not yet terminated
	steps uint64        // events dispatched (diagnostics)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current simulation time.
func (e *Env) Now() Time { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Env) Steps() uint64 { return e.steps }

// Live returns the number of processes that have been spawned and have
// not yet terminated (parked processes count as live).
func (e *Env) Live() int { return e.live }

// Schedule runs fn after delay d. fn executes on the scheduler
// goroutine and must not block; to run blocking logic, have fn wake a
// process or spawn one.
func (e *Env) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.at(e.now+d, fn)
}

func (e *Env) at(t Time, fn func()) {
	e.seq++
	heap.Push(&e.heap, &event{at: t, seq: e.seq, fn: fn})
}

// Run dispatches events until the heap is empty or the clock would
// pass horizon (horizon < 0 means run to exhaustion). It returns the
// final simulation time. Events beyond the horizon remain queued, so
// Run may be called again to continue.
func (e *Env) Run(horizon Time) Time {
	for e.heap.Len() > 0 {
		ev := e.heap[0]
		if horizon >= 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.heap)
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v < %v", ev.at, e.now))
		}
		e.now = ev.at
		e.steps++
		ev.fn()
	}
	if horizon > e.now {
		e.now = horizon
	}
	return e.now
}

// Pending reports whether any events remain queued.
func (e *Env) Pending() bool { return e.heap.Len() > 0 }

// Proc is a simulation process: a goroutine that runs model logic and
// parks on the scheduler whenever it waits for simulated time or for a
// synchronization object.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	dead   bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process and schedules it to start immediately (at
// the current simulation time, after already-queued events).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for the scheduler to start us
		defer func() {
			p.dead = true
			e.live--
			e.yield <- struct{}{} // final hand-back to the scheduler
		}()
		fn(p)
	}()
	e.at(e.now, func() { e.step(p) })
	return p
}

// step transfers control to p and waits until it parks or terminates.
func (e *Env) step(p *Proc) {
	if p.dead {
		panic("sim: resuming terminated process " + p.name)
	}
	p.resume <- struct{}{}
	<-e.yield
}

// park returns control to the scheduler until the process is woken.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// wake schedules p to resume at the current time.
func (e *Env) wake(p *Proc) {
	e.at(e.now, func() { e.step(p) })
}

// Sleep advances the process by d of simulated time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %s", d, p.name))
	}
	if d == 0 {
		return
	}
	e := p.env
	e.at(e.now+d, func() { e.step(p) })
	p.park()
}

// Yield lets every event already scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() {
	e := p.env
	e.at(e.now, func() { e.step(p) })
	p.park()
}
