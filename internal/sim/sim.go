// Package sim implements a deterministic discrete-event simulation
// kernel in the style of SimPy: a single logical timeline, an event
// queue ordered by (time, sequence), and cooperative goroutine-backed
// processes that park on the scheduler and are resumed one at a time.
//
// Exactly one goroutine (either the Run caller or the currently
// running process) executes model code at any instant, so model code
// needs no locking and every run with the same inputs produces the
// same event order.
//
// The dispatch core is built for throughput — simulated experiments
// are embarrassingly parallel across environments (see
// internal/bench), so the per-event cost inside one environment is
// the floor for every figure:
//
//   - events live in a 4-ary min-heap over a value slice (no per-event
//     allocation, no container/heap interface calls);
//   - process resumptions carry a *Proc instead of a closure, so the
//     hot park/resume paths (Sleep, Yield, wake) allocate nothing;
//   - events scheduled for the current instant bypass the heap through
//     a FIFO lane (Yield/wake bursts are O(1) per event);
//   - control transfers directly from the parking process to the next
//     process (one channel handoff) instead of bouncing through a
//     scheduler goroutine (two handoffs).
package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units, usable for both timestamps and durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time using time.Duration notation (e.g. "42µs").
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns the time as a floating-point number of µs.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled occurrence. Events with equal deadlines fire in
// the order they were scheduled (seq), which keeps runs deterministic.
// A resumption of a parked process stores the process itself rather
// than a closure so that scheduling one allocates nothing.
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // non-nil: resume this process
	fn   func() // nil iff proc is set: run this callback
}

// ErrReentrantRun is the panic value when Env.Run is entered while the
// simulation is already running — for example from inside a process or
// a scheduled callback. The old behaviour was a silent deadlock on the
// scheduler handoff; the panic names the bug instead.
var ErrReentrantRun = errors.New("sim: Env.Run called re-entrantly while the simulation is running (schedule work or spawn a process instead)")

// Env is a simulation environment: a clock, an event queue, and the
// bookkeeping needed to hand control between scheduler and processes.
type Env struct {
	now Time
	seq uint64

	// heap is a 4-ary min-heap of future events ordered by (at, seq);
	// see heap.go. fifo[fifoHead:] is the same-instant lane: events
	// scheduled for the current instant in seq order. The lane always
	// drains before the clock advances, so every entry has at == now.
	heap     []event
	fifo     []event
	fifoHead int

	horizon Time // active Run horizon (<0: run to exhaustion)
	running bool // a Run is in progress (re-entrancy guard)

	yield chan struct{} // end-of-chain signal back to the Run caller

	live  int    // processes spawned and not yet terminated
	steps uint64 // events dispatched (diagnostics)

	fuse       bool         // zero-delay fusion enabled (Chain inline, Yield fast path)
	hproc      bool         // converted model paths spawn handler procs
	fused      uint64       // continuations run inline instead of enqueued
	ios        uint64       // protocol-level I/O completions (CountIO)
	wireFid    WireFidelity // wire model fidelity (per-frame vs flow segments)
	segments   uint64       // flow segments emitted (CountSegment calls)
	segFrames  uint64       // frames carried by those segments
	parks      uint64       // goroutine-proc parks (each costs a dispatch handoff)
	handoffs   uint64       // channel handoffs between dispatching goroutines
	hdispatch  uint64       // handler-proc bodies dispatched inline
	chainDepth int          // live inline Chain nesting (runaway-recursion guard)
}

// fusionOff inverts the package default so the zero value means fusion
// is ON; SetDefaultFusion(false) lets the equivalence suite build
// unfused environments without threading a flag through every model.
var fusionOff atomic.Bool

// SetDefaultFusion sets whether environments created after this call
// run zero-delay fusion (Chain inline + Yield fast path). It exists for
// A/B equivalence testing; production code leaves fusion on.
func SetDefaultFusion(on bool) { fusionOff.Store(!on) }

// DefaultFusion reports the current package-wide default.
func DefaultFusion() bool { return !fusionOff.Load() }

// WireFidelity selects how the wire/NIC stack models steady-state
// transmit streams: per-frame (every frame is its own wire occupancy,
// delivery, and receive-pipeline walk) or flow (eligible bursts
// collapse into analytic flow segments charging the identical times;
// see DESIGN.md §13). The flow fast path may only fire when the
// collapsed schedule is provably identical to the per-frame one, so
// everything observable must match in both modes — the invariant the
// fidelity-equivalence suite pins.
type WireFidelity int

const (
	// WireFrame disables the flow fast path: every frame is simulated
	// individually.
	WireFrame WireFidelity = iota
	// WireFlow permits flow-segment collapsing where the crossover
	// conditions hold (the default).
	WireFlow
)

// wireFrameOnly inverts the package default so the zero value means
// flow fidelity is ON, mirroring fusionOff above.
var wireFrameOnly atomic.Bool

// SetDefaultWireFidelity sets the wire fidelity of environments created
// after this call. It exists for A/B equivalence testing; production
// code leaves the flow fast path on.
func SetDefaultWireFidelity(f WireFidelity) { wireFrameOnly.Store(f == WireFrame) }

// DefaultWireFidelity reports the current package-wide default.
func DefaultWireFidelity() WireFidelity {
	if wireFrameOnly.Load() {
		return WireFrame
	}
	return WireFlow
}

// handlerOff inverts the package default so the zero value means
// handler procs are ON, mirroring fusionOff above. The knob selects
// which process flavor the converted model paths (pcie async-DMA
// workers, NIC demux/completion loops, hostnet rx delivery) spawn;
// the kernel itself always dispatches both flavors.
var handlerOff atomic.Bool

// SetDefaultHandlerProcs sets whether environments created after this
// call run the converted model loops as run-to-completion handler
// procs (on) or classic goroutine procs (off). It exists for A/B
// equivalence testing; production code leaves handler procs on.
func SetDefaultHandlerProcs(on bool) { handlerOff.Store(!on) }

// DefaultHandlerProcs reports the current package-wide default.
func DefaultHandlerProcs() bool { return !handlerOff.Load() }

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	e := &Env{yield: make(chan struct{}), horizon: -1, fuse: !fusionOff.Load(), hproc: !handlerOff.Load()}
	if wireFrameOnly.Load() {
		e.wireFid = WireFrame
	} else {
		e.wireFid = WireFlow
	}
	return e
}

// SetFusion overrides zero-delay fusion for this environment only.
func (e *Env) SetFusion(on bool) { e.fuse = on }

// Fusion reports whether zero-delay fusion is enabled for this env.
func (e *Env) Fusion() bool { return e.fuse }

// SetHandlerProcs overrides the handler-proc flavor selection for this
// environment only. Call it before any model is built: spawn sites
// latch the flavor at construction time.
func (e *Env) SetHandlerProcs(on bool) { e.hproc = on }

// HandlerProcs reports whether converted model paths in this
// environment spawn handler procs.
func (e *Env) HandlerProcs() bool { return e.hproc }

// SetWireFidelity overrides the wire fidelity for this environment
// only. Call it before any model activity: devices latch per-flow
// state against it and flipping it mid-run mixes the two schedules.
func (e *Env) SetWireFidelity(f WireFidelity) { e.wireFid = f }

// WireFidelity reports the wire fidelity of this environment.
func (e *Env) WireFidelity() WireFidelity { return e.wireFid }

// Now returns the current simulation time.
func (e *Env) Now() Time { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Env) Steps() uint64 { return e.steps }

// Live returns the number of processes that have been spawned and have
// not yet terminated (parked processes count as live).
func (e *Env) Live() int { return e.live }

// Schedule runs fn after delay d. fn executes on whichever goroutine
// holds the dispatch role and must not block; to run blocking logic,
// have fn wake a process or spawn one.
//
//dcslint:hotpath
func (e *Env) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.enqueue(e.now+d, event{fn: fn})
}

// enqueue stamps the event's (at, seq) and queues it: current-instant
// events take the FIFO lane, future events the heap. The lane entries'
// sequence numbers always exceed those of queued heap events at the
// same instant, and next() breaks the tie, so dispatch order is
// globally (at, seq) regardless of which structure holds an event.
func (e *Env) enqueue(t Time, ev event) {
	e.seq++
	ev.at = t
	ev.seq = e.seq
	if t == e.now {
		//dcslint:allow noalloc same-instant FIFO lane keeps its capacity; steady state is 0 allocs/event (BENCH_kernel)
		e.fifo = append(e.fifo, ev)
		return
	}
	e.pushHeap(ev)
}

// next removes and returns the globally earliest event, or ok=false
// when the queue is exhausted or the next event lies beyond the
// horizon (which only heap events can: lane events are at the current
// instant, and the clock never passes the horizon).
func (e *Env) next() (event, bool) {
	if e.fifoHead < len(e.fifo) {
		f := &e.fifo[e.fifoHead]
		if n := len(e.heap); n == 0 || e.heap[0].at > f.at ||
			(e.heap[0].at == f.at && e.heap[0].seq > f.seq) {
			ev := *f
			*f = event{} // drop fn/proc references for GC
			e.fifoHead++
			if e.fifoHead == len(e.fifo) {
				e.fifo = e.fifo[:0] // reuse the lane's backing array
				e.fifoHead = 0
			} else if e.fifoHead >= 32 && e.fifoHead*2 >= len(e.fifo) {
				// Steady-state ping-pong never fully drains the lane
				// (there is always one pending resume), so compact the
				// consumed prefix instead of growing forever.
				n := copy(e.fifo, e.fifo[e.fifoHead:])
				clearTail := e.fifo[n:]
				for i := range clearTail {
					clearTail[i] = event{}
				}
				e.fifo = e.fifo[:n]
				e.fifoHead = 0
			}
			return ev, true
		}
		// A heap event at the same instant was scheduled earlier; it
		// cannot be beyond the horizon because the lane entry is not.
		return e.popHeap(), true
	}
	if len(e.heap) == 0 {
		return event{}, false
	}
	if e.horizon >= 0 && e.heap[0].at > e.horizon {
		return event{}, false
	}
	ev := e.popHeap()
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", ev.at, e.now))
	}
	return ev, true
}

// Run dispatches events until the queue is empty or the clock would
// pass horizon (horizon < 0 means run to exhaustion). It returns the
// final simulation time. Events beyond the horizon remain queued, so
// Run may be called again to continue. Run is not re-entrant: calling
// it from inside a process or callback panics with ErrReentrantRun.
func (e *Env) Run(horizon Time) Time {
	if e.running {
		panic(ErrReentrantRun)
	}
	e.running = true
	defer func() { e.running = false }()
	e.horizon = horizon
	for {
		ev, ok := e.next()
		if !ok {
			break
		}
		e.now = ev.at
		e.steps++
		if ev.proc != nil {
			if ev.proc.hfn != nil {
				// Handler procs run to completion right here on the
				// dispatching goroutine: no handoff, no channel ops.
				e.runHandler(ev.proc)
				continue
			}
			// Hand the dispatch role to the process; control returns
			// here only when the whole chain of handoffs ends.
			e.handoff(ev.proc)
			<-e.yield
			continue
		}
		ev.fn()
	}
	if horizon > e.now {
		e.now = horizon
	}
	return e.now
}

// Pending reports whether any events remain queued.
func (e *Env) Pending() bool { return e.fifoHead < len(e.fifo) || len(e.heap) > 0 }

// NextAt reports the deadline of the globally earliest queued event
// without dispatching it. Lane entries are always at the current
// instant, which no heap event can precede, so the lane head wins when
// the lane is non-empty. Conservative window coordinators (sim/shard)
// use this to pick the next execution window's start.
func (e *Env) NextAt() (Time, bool) {
	if e.fifoHead < len(e.fifo) {
		return e.fifo[e.fifoHead].at, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// pendingNow reports whether any already-queued event is due at the
// current instant. While false, the next dispatch would be the event we
// are about to enqueue, so running it inline is schedule-identical.
func (e *Env) pendingNow() bool {
	return e.fifoHead < len(e.fifo) || (len(e.heap) > 0 && e.heap[0].at == e.now)
}

// maxChainDepth bounds live inline Chain nesting. Legal protocol
// batching fuses a handful of frames deep; anything approaching this
// limit is a same-instant recursion bug (see dcslint nochainrecursion).
const maxChainDepth = 1 << 16

// Chain schedules fn at the current instant, running it inline when
// that is schedule-identical to enqueueing: fusion is on and no queued
// event is due now (so fn would be dispatched next anyway). Callers
// must only Chain continuations that are either in tail position of the
// current event or pure scheduling actions (wakes/broadcasts with no
// other observable effect) — otherwise inline execution could reorder
// observable work relative to the unfused schedule. With fusion off, or
// when same-instant work is already queued, fn is enqueued normally.
//
//dcslint:hotpath
func (e *Env) Chain(fn func()) {
	if e.fuse && !e.pendingNow() {
		e.fused++
		e.chainDepth++
		if e.chainDepth > maxChainDepth {
			panic("sim: Chain recursion exceeded maxChainDepth (unbounded same-instant recursion?)")
		}
		//dcslint:allow noalloc fused continuation invoked inline; its allocation behaviour is judged at its creation site
		fn()
		e.chainDepth--
		return
	}
	e.enqueue(e.now, event{fn: fn})
}

// CountIO records n protocol-level I/O completions (NVMe CQEs, NIC wire
// frames, HDC command completions) for events-per-I/O accounting.
func (e *Env) CountIO(n int) { e.ios += uint64(n) }

// CountSegment records one flow segment collapsing frames individual
// frames into a single analytic wire event (see WireFidelity). Device
// models call it when a fast-path claim is emitted; the equivalence
// suite reads it back to prove the knob is not dead.
func (e *Env) CountSegment(frames int) {
	e.segments++
	e.segFrames += uint64(frames)
}

// Stats is a snapshot of per-run kernel dispatch counters.
type Stats struct {
	Events    uint64 // events dispatched through the queue
	Fused     uint64 // continuations fused inline (Chain / Yield fast path)
	IOs       uint64 // protocol I/O completions recorded via CountIO
	Segments  uint64 // flow segments emitted by the wire fast path
	SegFrames uint64 // frames carried inside those segments

	// The park/handoff tax, first-class: every goroutine-proc park
	// costs at least one channel handoff to move the dispatch role;
	// handler dispatches are the same wakes served inline for free.
	Parks             uint64 // goroutine-proc parks
	Handoffs          uint64 // channel handoffs between dispatching goroutines
	HandlerDispatches uint64 // handler-proc bodies invoked inline
}

// EventsPerIO returns dispatched events per recorded I/O (0 if none).
func (s Stats) EventsPerIO() float64 {
	if s.IOs == 0 {
		return 0
	}
	return float64(s.Events) / float64(s.IOs)
}

// Stats returns the environment's dispatch counters.
func (e *Env) Stats() Stats {
	return Stats{
		Events: e.steps, Fused: e.fused, IOs: e.ios,
		Segments: e.segments, SegFrames: e.segFrames,
		Parks: e.parks, Handoffs: e.handoffs, HandlerDispatches: e.hdispatch,
	}
}

// handoff resumes p, transferring the dispatch role to its goroutine.
func (e *Env) handoff(p *Proc) {
	if p.dead {
		panic("sim: resuming terminated process " + p.name)
	}
	e.handoffs++
	p.resume <- struct{}{}
}

// runHandler invokes a handler proc's body inline on the dispatching
// goroutine. The body runs to completion (having re-armed itself or
// enrolled on a sync edge) and control stays with the dispatcher.
func (e *Env) runHandler(p *Proc) {
	if p.dead {
		panic("sim: dispatching terminated handler proc " + p.name)
	}
	e.hdispatch++
	//dcslint:allow noalloc handler bodies are judged at their creation sites (noblockhandler walks them)
	p.hfn(p.hctx)
}

// dispatchFrom runs the event loop on the goroutine of the parked
// process self: either the next events belong to other processes or
// callbacks (self keeps dispatching, then hands off and waits), or the
// chain ends (self signals the Run caller and waits). It returns when
// self has been resumed.
func (e *Env) dispatchFrom(self *Proc) {
	for {
		ev, ok := e.next()
		if !ok {
			e.handoffs++
			e.yield <- struct{}{}
			<-self.resume
			return
		}
		e.now = ev.at
		e.steps++
		if ev.proc != nil {
			if ev.proc == self {
				return // our own wakeup: just keep running
			}
			if ev.proc.hfn != nil {
				e.runHandler(ev.proc)
				continue
			}
			e.handoff(ev.proc)
			<-self.resume
			return
		}
		//dcslint:allow noalloc kernel event dispatch; scheduled fns are judged at their creation sites
		ev.fn()
	}
}

// dispatchExit runs the event loop on the goroutine of a terminating
// process until the dispatch role can be handed to another process or
// back to the Run caller; the goroutine then exits.
func (e *Env) dispatchExit() {
	for {
		ev, ok := e.next()
		if !ok {
			e.handoffs++
			e.yield <- struct{}{}
			return
		}
		e.now = ev.at
		e.steps++
		if ev.proc != nil {
			if ev.proc.hfn != nil {
				e.runHandler(ev.proc)
				continue
			}
			e.handoff(ev.proc)
			return
		}
		ev.fn()
	}
}

// Proc is a simulation process: a goroutine that runs model logic and
// parks on the scheduler whenever it waits for simulated time or for a
// synchronization object.
//
// A Proc with hfn set is the second flavor — a handler proc (see
// SpawnHandler): it has no goroutine and no resume channel, and its
// wake events invoke hfn inline on the dispatching goroutine. Both
// flavors share one wake/enqueue path and one waiter representation,
// so sync primitives and schedules are identical across flavors.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	dead   bool

	hfn  func(*HandlerCtx) // handler body; non-nil marks a handler proc
	hctx *HandlerCtx       // the body's context, allocated once at spawn
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process and schedules it to start immediately (at
// the current simulation time, after already-queued events).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for the scheduler to start us
		fn(p)
		p.dead = true
		e.live--
		e.dispatchExit()
	}()
	e.enqueue(e.now, event{proc: p})
	return p
}

// HandlerCtx is the context of one handler proc: a run-to-completion
// state machine dispatched inline by the event loop (see SpawnHandler).
// The body may schedule events, ring doorbells, fire signals, and
// re-arm itself, but it must never block — every park-capable API
// panics on a handler proc (and dcslint noblockhandler proves the
// absence statically). Waiting is expressed by enrolling on a
// Signal/Cond/Queue/Resource edge through the non-blocking H variants
// and returning; the next wake re-invokes the body, which re-checks
// its state exactly like a goroutine proc re-checks its predicate
// after a park.
type HandlerCtx struct {
	proc *Proc
}

// SpawnHandler creates a handler proc and schedules its first dispatch
// immediately (at the current simulation time, after already-queued
// events) — the same first event a goroutine Spawn consumes, so the
// two flavors are schedule-identical from birth.
func (e *Env) SpawnHandler(name string, fn func(*HandlerCtx)) *HandlerCtx {
	p := &Proc{env: e, name: name, hfn: fn}
	p.hctx = &HandlerCtx{proc: p}
	e.live++
	e.enqueue(e.now, event{proc: p})
	return p.hctx
}

// Name returns the handler proc's name given at SpawnHandler time.
func (h *HandlerCtx) Name() string { return h.proc.name }

// Env returns the environment the handler proc belongs to.
func (h *HandlerCtx) Env() *Env { return h.proc.env }

// Now returns the current simulation time.
func (h *HandlerCtx) Now() Time { return h.proc.env.now }

// Rearm schedules the handler body to be re-invoked after d — the
// handler analogue of Sleep: the caller saves its continuation state
// and returns. Rearm(0) re-arms at the current instant behind
// already-queued events (the Yield analogue); a body that may legally
// continue inline should simply keep running instead.
//
//dcslint:hotpath
func (h *HandlerCtx) Rearm(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative rearm %v in %s", d, h.proc.name))
	}
	e := h.proc.env
	e.enqueue(e.now+d, event{proc: h.proc})
}

// Exit terminates the handler proc: the body must return immediately
// after calling it and no wake may still be pending. Dispatching a
// terminated handler proc panics, mirroring goroutine-proc resumption.
func (h *HandlerCtx) Exit() {
	if h.proc.dead {
		panic("sim: handler proc " + h.proc.name + " exited twice")
	}
	h.proc.dead = true
	h.proc.env.live--
}

// park returns control to the scheduler until the process is woken.
// The parking goroutine itself becomes the dispatcher, so the common
// case (another process runs next) costs one channel handoff.
func (p *Proc) park() {
	if p.hfn != nil {
		panic("sim: handler proc " + p.name + " called a blocking API (re-arm on a Signal/Cond edge or use the non-blocking H variants instead)")
	}
	p.env.parks++
	p.env.dispatchFrom(p)
}

// wake schedules p to resume at the current time.
func (e *Env) wake(p *Proc) {
	e.enqueue(e.now, event{proc: p})
}

// Sleep advances the process by d of simulated time.
//
//dcslint:hotpath
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %s", d, p.name))
	}
	if d == 0 {
		return
	}
	e := p.env
	e.enqueue(e.now+d, event{proc: p})
	p.park()
}

// Yield lets every event already scheduled for the current instant run
// before the process continues. When fusion is on and nothing is due at
// the current instant, the round trip through the queue is skipped
// entirely: the unfused schedule would pop our own resume straight back
// (dispatchFrom's proc == self case), so returning immediately is
// schedule-identical.
//
//dcslint:hotpath
func (p *Proc) Yield() {
	e := p.env
	if e.fuse && !e.pendingNow() {
		e.fused++
		return
	}
	e.enqueue(e.now, event{proc: p})
	p.park()
}
