package sim

import (
	"fmt"
	"sort"
)

// Checkpoint support: capture and force the kernel's observable state
// at quiescent instants (DESIGN.md §17).
//
// The event heap itself is never serialized — events hold closures and
// process references, which have no stable byte representation.
// Instead, checkpoints are only legal at full quiescence (Run returned
// with nothing pending; parked service processes are fine, queued
// events are not), where the kernel state reduces to the clock, the
// sequence counter, and the dispatch statistics. Restore rebuilds the
// model from the identical configuration, settles it, overlays the
// device state, and forces these counters — after which every future
// enqueue stamps the same (time, seq) it would have in the
// straight-through run.

// EnvState is the kernel's checkpointable state: everything the
// (time, seq) stamping of future events and the run fingerprint depend
// on. Parks/handoffs/dispatches are deliberately absent — they count
// goroutine mechanics (proc starts vs pool wakes) that legitimately
// differ between a forked and a straight run while the event timeline
// stays byte-identical.
type EnvState struct {
	Now       Time
	Seq       uint64
	Steps     uint64
	Fused     uint64
	IOs       uint64
	Segments  uint64
	SegFrames uint64
}

// Quiescent reports whether the environment is checkpointable: no Run
// in progress and no queued events. Parked processes are allowed —
// service loops (NIC demux, IRQ service, ring pollers) park forever
// between bursts and hold no hidden schedule state while parked.
func (e *Env) Quiescent() bool {
	return !e.running && !e.Pending()
}

// CheckpointState captures the kernel counters. It errors unless the
// environment is quiescent: with events still queued, the heap holds
// schedule state the checkpoint cannot represent.
func (e *Env) CheckpointState() (EnvState, error) {
	if !e.Quiescent() {
		return EnvState{}, fmt.Errorf("sim: checkpoint of non-quiescent env (running=%v pending=%v)", e.running, e.Pending())
	}
	return EnvState{
		Now: e.now, Seq: e.seq, Steps: e.steps,
		Fused: e.fused, IOs: e.ios, Segments: e.segments, SegFrames: e.segFrames,
	}, nil
}

// ForceCheckpointState overlays captured kernel counters onto a
// settled environment, completing a restore. The clock may only move
// forward: snapshots are taken after a warm phase, restores happen on
// a freshly settled environment whose clock is near zero.
func (e *Env) ForceCheckpointState(s EnvState) error {
	if !e.Quiescent() {
		return fmt.Errorf("sim: restore into non-quiescent env (running=%v pending=%v)", e.running, e.Pending())
	}
	if s.Now < e.now {
		return fmt.Errorf("sim: restore would move the clock backwards (%v -> %v)", e.now, s.Now)
	}
	e.now = s.Now
	e.seq = s.Seq
	e.steps = s.Steps
	e.fused = s.Fused
	e.ios = s.IOs
	e.segments = s.Segments
	e.segFrames = s.SegFrames
	return nil
}

// AccumState is a Resource's utilization accounting, captured so
// restored runs report the same busy fractions a straight run would.
type AccumState struct {
	Busy      Time
	LastStamp Time
}

// CheckpointAccum captures the resource's busy accounting. It errors
// when units are held or waiters are parked: a checkpointable instant
// must not have work in flight on the resource.
func (r *Resource) CheckpointAccum() (AccumState, error) {
	if r.inUse != 0 {
		return AccumState{}, fmt.Errorf("sim: checkpoint of resource %q with %d units in use", r.name, r.inUse)
	}
	if len(r.waiters) != 0 {
		return AccumState{}, fmt.Errorf("sim: checkpoint of resource %q with %d waiters", r.name, len(r.waiters))
	}
	return AccumState{Busy: r.busy, LastStamp: r.lastStamp}, nil
}

// RestoreAccum overlays captured busy accounting onto an idle resource.
func (r *Resource) RestoreAccum(s AccumState) error {
	if r.inUse != 0 || len(r.waiters) != 0 {
		return fmt.Errorf("sim: restore into busy resource %q", r.name)
	}
	r.busy = s.Busy
	r.lastStamp = s.LastStamp
	return nil
}

// BWState is a BandwidthServer's cumulative accounting.
type BWState struct {
	Accum AccumState
	Bytes int64
	Xfers int64
}

// CheckpointBW captures the server's cumulative counters.
func (b *BandwidthServer) CheckpointBW() (BWState, error) {
	a, err := b.res.CheckpointAccum()
	if err != nil {
		return BWState{}, err
	}
	return BWState{Accum: a, Bytes: b.bytes, Xfers: b.xfers}, nil
}

// RestoreBW overlays captured counters onto an idle server.
func (b *BandwidthServer) RestoreBW(s BWState) error {
	if err := b.res.RestoreAccum(s.Accum); err != nil {
		return err
	}
	b.bytes = s.Bytes
	b.xfers = s.Xfers
	return nil
}

// WaiterNames returns the names of the processes currently enrolled on
// the condition, in park order. Park order is wake order: Broadcast
// wakes waiters front to back, and at a same-instant wake the enqueue
// order decides which predicate re-check runs first. A checkpoint of a
// condition with several parked service processes must therefore
// record the order so a restore can reproduce it.
func (c *Cond) WaiterNames() []string {
	names := make([]string, len(c.waiters))
	for i, w := range c.waiters {
		names[i] = w.name
	}
	return names
}

// ReorderWaiters permutes the condition's parked waiters to match the
// given name order. The name multiset must match the enrolled waiters
// exactly; names must be unique (service-loop names are).
func (c *Cond) ReorderWaiters(names []string) error {
	if len(names) != len(c.waiters) {
		return fmt.Errorf("sim: cond has %d waiters, restore order lists %d", len(c.waiters), len(names))
	}
	byName := make(map[string]*Proc, len(c.waiters))
	for _, w := range c.waiters {
		if byName[w.name] != nil {
			return fmt.Errorf("sim: duplicate cond waiter name %q", w.name)
		}
		byName[w.name] = w
	}
	ordered := make([]*Proc, len(names))
	for i, n := range names {
		p := byName[n]
		if p == nil {
			return fmt.Errorf("sim: cond waiter %q absent at restore", n)
		}
		ordered[i] = p
		delete(byName, n)
	}
	copy(c.waiters, ordered)
	return nil
}

// CheckpointQueue returns a copy of the queue's live items in FIFO
// order. Order is state: a restored queue must hand out items in the
// exact sequence the straight run would.
func CheckpointQueue[T any](q *Queue[T]) []T {
	return append([]T(nil), q.items[q.itemHead:]...)
}

// RestoreQueue replaces the queue's content with items. A non-empty
// restore into a queue with parked waiters is inconsistent state — a
// Put would have woken one — and errors.
func RestoreQueue[T any](q *Queue[T], items []T) error {
	if len(items) > 0 && q.waitHead < len(q.waiters) {
		return fmt.Errorf("sim: restore of %d items into queue %q with waiters", len(items), q.name)
	}
	var zero T
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = append(q.items[:0], items...)
	q.itemHead = 0
	if q.maxLen < len(items) {
		q.maxLen = len(items)
	}
	return nil
}

// QueueWaiterCount reports how many processes are parked on Get.
func QueueWaiterCount[T any](q *Queue[T]) int { return len(q.waiters) - q.waitHead }

// SortedKeys returns the map's keys in sorted order — the collect/
// sort/index idiom snapshot encoders use so encode order can never
// leak map iteration order (dcslint maporder).
func SortedKeys[K ~uint64 | ~uint32 | ~uint16 | ~int | ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
