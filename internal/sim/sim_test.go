package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// testSeed pins every random draw in this file to an explicit
// constant, so `go test -count=N` replays the exact same programs on
// every run. Without it, testing/quick falls back to a wall-clock
// seed — precisely the nondeterminism the dcslint nowallclock rule
// bans from simulation code (see internal/lint and DESIGN.md,
// "Determinism rules"). Test code is outside dcslint's scope, but the
// determinism suite only means something if its own inputs replay.
const testSeed = 0x5EEDED

// quickCfg returns a quick.Check config drawing from the pinned seed.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(testSeed)),
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Schedule(30*Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, func() { got = append(got, 2) })
	e.Run(-1)
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30*Microsecond {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	e := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run(-1)
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestRunHorizonStopsAndResumes(t *testing.T) {
	e := NewEnv()
	fired := 0
	e.Schedule(10*Microsecond, func() { fired++ })
	e.Schedule(100*Microsecond, func() { fired++ })
	e.Run(50 * Microsecond)
	if fired != 1 {
		t.Fatalf("fired=%d before horizon", fired)
	}
	if e.Now() != 50*Microsecond {
		t.Fatalf("clock=%v, want horizon", e.Now())
	}
	if !e.Pending() {
		t.Fatal("event beyond horizon dropped")
	}
	e.Run(-1)
	if fired != 2 || e.Now() != 100*Microsecond {
		t.Fatalf("after resume fired=%d now=%v", fired, e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Microsecond)
		wake = p.Now()
	})
	e.Run(-1)
	if wake != 42*Microsecond {
		t.Fatalf("woke at %v", wake)
	}
	if e.Live() != 0 {
		t.Fatalf("live=%d after run", e.Live())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEnv()
	var trace []string
	step := func(name string, d Time) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(d)
			trace = append(trace, fmt.Sprintf("%s@%v", name, p.Now()))
			p.Sleep(d)
			trace = append(trace, fmt.Sprintf("%s@%v", name, p.Now()))
		})
	}
	step("a", 10*Microsecond)
	step("b", 15*Microsecond)
	e.Run(-1)
	want := "[a@10µs b@15µs a@20µs b@30µs]"
	if fmt.Sprint(trace) != want {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestSignal(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var got []any
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			got = append(got, s.Wait(p))
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		s.Fire("done")
	})
	e.Run(-1)
	if len(got) != 3 {
		t.Fatalf("waiters woken = %d", len(got))
	}
	for _, v := range got {
		if v != "done" {
			t.Fatalf("value = %v", v)
		}
	}
	// Late waiter sees the fired value without blocking.
	e.Spawn("late", func(p *Proc) {
		if s.Wait(p) != "done" {
			t.Error("late waiter wrong value")
		}
	})
	e.Run(-1)
}

func TestSignalDoubleFirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double fire")
		}
	}()
	e := NewEnv()
	s := NewSignal(e)
	s.Fire(nil)
	s.Fire(nil)
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Microsecond)
			q.Put(i)
		}
	})
	e.Run(-1)
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueManyWaiters(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			v := q.Get(p)
			order = append(order, i*100+v)
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(Microsecond)
		for i := 0; i < 4; i++ {
			q.Put(i)
		}
	})
	e.Run(-1)
	if len(order) != 4 {
		t.Fatalf("served %d of 4: %v", len(order), order)
	}
	// Waiters are served in arrival order: consumer i gets item i.
	for i, v := range order {
		if v != i*100+i {
			t.Fatalf("service order broken: %v", order)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e, "q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put("x")
	if v, ok := q.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 1)
	var maxConcurrent, cur int
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			cur++
			if cur > maxConcurrent {
				maxConcurrent = cur
			}
			p.Sleep(10 * Microsecond)
			cur--
			r.Release()
		})
	}
	end := e.Run(-1)
	if maxConcurrent != 1 {
		t.Fatalf("max concurrent = %d", maxConcurrent)
	}
	if end != 50*Microsecond {
		t.Fatalf("serialized end = %v", end)
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 3)
	var peak, cur int
	for i := 0; i < 9; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			cur++
			if cur > peak {
				peak = cur
			}
			p.Sleep(10 * Microsecond)
			cur--
			r.Release()
		})
	}
	end := e.Run(-1)
	if peak != 3 {
		t.Fatalf("peak = %d, want 3", peak)
	}
	if end != 30*Microsecond {
		t.Fatalf("end = %v, want 30µs", end)
	}
}

func TestResourceFIFOHandoff(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			p.Sleep(Time(i) * Microsecond) // arrive in index order
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(20 * Microsecond)
			r.Release()
		})
	}
	e.Run(-1)
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 2)
	for i := 0; i < 2; i++ {
		e.Spawn("u", func(p *Proc) { r.Use(p, 30*Microsecond) })
	}
	e.Run(-1)
	if got := r.BusyTime(); got != 60*Microsecond {
		t.Fatalf("busy = %v, want 60µs", got)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on held resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e := NewEnv()
	NewResource(e, "r", 1).Release()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEnv()
	panicked := false
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	e.Run(-1)
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestBandwidthServer(t *testing.T) {
	e := NewEnv()
	// 8 Gbit/s: 1000 bytes take 1µs.
	b := NewBandwidthServer(e, "link", 8e9, 0)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Spawn("tx", func(p *Proc) {
			b.Transfer(p, 1000)
			done = append(done, p.Now())
		})
	}
	e.Run(-1)
	want := []Time{1 * Microsecond, 2 * Microsecond, 3 * Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("transfer %d done at %v, want %v", i, done[i], want[i])
		}
	}
	if b.Bytes() != 3000 || b.Transfers() != 3 {
		t.Fatalf("counters: %d bytes, %d xfers", b.Bytes(), b.Transfers())
	}
}

func TestBandwidthServerOverhead(t *testing.T) {
	e := NewEnv()
	b := NewBandwidthServer(e, "link", 8e9, 500*Nanosecond)
	var end Time
	e.Spawn("tx", func(p *Proc) {
		b.Transfer(p, 1000)
		end = p.Now()
	})
	e.Run(-1)
	if end != 1500*Nanosecond {
		t.Fatalf("end = %v, want 1.5µs", end)
	}
}

func TestBpsToTime(t *testing.T) {
	if got := BpsToTime(1250, 10e9); got != 1*Microsecond {
		t.Fatalf("1250B @10Gbps = %v, want 1µs", got)
	}
	if got := BpsToTime(0, 10e9); got != 0 {
		t.Fatalf("0 bytes = %v", got)
	}
}

// TestDeterminism: the same random program produces the same trace on
// every run — the core guarantee everything else depends on.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		e := NewEnv()
		q := NewQueue[int](e, "q")
		r := NewResource(e, "r", 2)
		var trace []string
		for i := 0; i < 20; i++ {
			i := i
			d := Time(rng.Intn(50)) * Microsecond
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				r.Acquire(p)
				q.Put(i)
				p.Sleep(Time(rng.Intn(10)) * Microsecond)
				r.Release()
				trace = append(trace, fmt.Sprintf("%d@%v", i, p.Now()))
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for j := 0; j < 20; j++ {
				v := q.Get(p)
				trace = append(trace, fmt.Sprintf("got%d", v))
			}
		})
		e.Run(-1)
		return fmt.Sprint(trace)
	}
	if err := quick.Check(func(seed int64) bool {
		return run(seed) == run(seed)
	}, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// Property: with a capacity-c resource and n unit-time jobs, the
// makespan is ceil(n/c) service times — the FIFO resource neither
// loses capacity nor over-admits.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%40) + 1
		c := int(cRaw%8) + 1
		e := NewEnv()
		r := NewResource(e, "r", c)
		for i := 0; i < n; i++ {
			e.Spawn("job", func(p *Proc) { r.Use(p, 10*Microsecond) })
		}
		end := e.Run(-1)
		waves := (n + c - 1) / c
		return end == Time(waves)*10*Microsecond
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves order and loses nothing for any put/get
// interleaving produced by random sleeps.
func TestQueueOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEnv()
		q := NewQueue[int](e, "q")
		var got []int
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(Time(rng.Intn(5)) * Microsecond)
				q.Put(i)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, q.Get(p))
			}
		})
		e.Run(-1)
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(50)); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if s := (42 * Microsecond).String(); s != "42µs" {
		t.Fatalf("String = %q", s)
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion")
	}
	if (3 * Microsecond).Microseconds() != 3.0 {
		t.Fatal("Microseconds conversion")
	}
}

func TestYield(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run(-1)
	want := "[a1 b1 a2]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCondBroadcastWakesAllWaiters(t *testing.T) {
	e := NewEnv()
	c := NewCond(e)
	ready := false
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			for !ready {
				c.Wait(p)
			}
			woken++
		})
	}
	e.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		c.Broadcast() // spurious: predicate still false
		p.Sleep(10 * Microsecond)
		ready = true
		c.Broadcast()
	})
	e.Run(-1)
	if woken != 5 {
		t.Fatalf("woken = %d", woken)
	}
	if e.Live() != 0 {
		t.Fatalf("%d stuck", e.Live())
	}
}

// TestRunReentrancyPanics: calling Run while the simulation is already
// running (from a process or a callback) used to deadlock silently on
// the scheduler handoff; it must panic with the named error instead.
func TestRunReentrancyPanics(t *testing.T) {
	e := NewEnv()
	var fromProc, fromCallback any
	e.Spawn("nested", func(p *Proc) {
		defer func() { fromProc = recover() }()
		e.Run(-1)
	})
	e.Schedule(Microsecond, func() {
		defer func() { fromCallback = recover() }()
		e.Run(10 * Microsecond)
	})
	e.Run(-1)
	if fromProc != ErrReentrantRun {
		t.Fatalf("Run inside a process panicked with %v, want ErrReentrantRun", fromProc)
	}
	if fromCallback != ErrReentrantRun {
		t.Fatalf("Run inside a callback panicked with %v, want ErrReentrantRun", fromCallback)
	}
	// The guard clears: a fresh Run afterwards works.
	fired := false
	e.Schedule(Microsecond, func() { fired = true })
	e.Run(-1)
	if !fired {
		t.Fatal("Run after recovered re-entrancy panic did not dispatch")
	}
}

// TestFIFOLaneOrdering pins the (at, seq) tie-break across the two
// queues: an event scheduled *for* the current instant from within it
// (FIFO lane) must not overtake an earlier-scheduled heap event at the
// same instant.
func TestFIFOLaneOrdering(t *testing.T) {
	e := NewEnv()
	var got []string
	e.Schedule(5*Microsecond, func() {
		got = append(got, "a")
		// c lands in the FIFO lane; b (seq-earlier, same instant) is
		// still in the heap and must run first.
		e.Schedule(0, func() { got = append(got, "c") })
	})
	e.Schedule(5*Microsecond, func() { got = append(got, "b") })
	e.Run(-1)
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("order = %v, want [a b c]", got)
	}
}

// TestFIFOLaneCompaction drives the steady-state ping-pong that never
// fully drains the lane and checks the lane's backing array stays
// bounded (the compaction path).
func TestFIFOLaneCompaction(t *testing.T) {
	e := NewEnv()
	const rounds = 100000
	for k := 0; k < 2; k++ {
		e.Spawn("pp", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Yield()
			}
		})
	}
	e.Run(-1)
	if c := cap(e.fifo); c > 4096 {
		t.Fatalf("fifo lane grew to cap %d; compaction not bounding it", c)
	}
}

func TestCondNoMemory(t *testing.T) {
	// A broadcast with no waiters is lost (condition variables have no
	// memory); a subsequent waiter needs its own wakeup.
	e := NewEnv()
	c := NewCond(e)
	c.Broadcast()
	reached := false
	e.Spawn("late", func(p *Proc) {
		done := false
		e.Schedule(5*Microsecond, func() { done = true; c.Broadcast() })
		for !done {
			c.Wait(p)
		}
		reached = true
	})
	e.Run(-1)
	if !reached {
		t.Fatal("late waiter never woke")
	}
}
