package sim

// Inlined 4-ary min-heap over a value slice, ordered by (at, seq).
//
// Versus the container/heap pointer heap this replaces: events are
// stored by value (no per-Schedule allocation, no interface method
// calls), and the wider fan-out trades comparisons for depth — a
// 4-ary heap is half as deep as a binary one, which wins on sift-down
// heavy workloads like event queues (pops dominate because the FIFO
// lane absorbs most same-instant pushes).

// eventBefore reports whether a dispatches before b.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushHeap inserts ev, restoring the heap order by sifting up.
func (e *Env) pushHeap(ev event) {
	//dcslint:allow noalloc heap growth is amortized: capacity doubles, steady state is 0 allocs/event (BENCH_kernel)
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventBefore(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// popHeap removes and returns the minimum event. The caller must have
// checked that the heap is non-empty.
func (e *Env) popHeap() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/proc references for GC
	h = h[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventBefore(&h[j], &h[min]) {
				min = j
			}
		}
		if !eventBefore(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.heap = h
	return top
}
