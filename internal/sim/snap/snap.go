// Package snap is the deterministic checkpoint codec: a versioned,
// length-prefixed binary format for snapshotting complete simulator
// state at quiescent instants and restoring it byte-for-byte
// (DESIGN.md §17).
//
// The format is deliberately dumb: a fixed header (magic, version,
// knob flags, configuration fingerprint), a sequence of named
// length-prefixed sections written by per-device Snapshotters in a
// fixed registration order, and a trailing FNV-1a digest over
// everything before it. Encode order is fully deterministic — map-
// keyed state must be collected, sorted, and indexed before encoding
// (the dcslint maporder analyzer enforces the idiom) — so the same
// simulator state always produces the same bytes, and checkpoint
// artifacts can be content-addressed and re-verified byte-for-byte.
//
// Everything rejects loudly: truncated buffers, bad magic, version or
// knob mismatches, misnamed sections, short or over-long section
// reads, and digest mismatches all surface as errors, never as
// silently wrong simulator state.
package snap

import (
	"encoding/binary"
	"fmt"
)

// Magic identifies a checkpoint buffer ("DCSS" little-endian).
const Magic uint32 = 0x53534344

// Version is the current format version. Readers refuse other
// versions: state layouts change with the models, and decoding an old
// checkpoint into new structs would corrupt a run silently.
const Version uint32 = 1

// Knob flag bits carried in the header. A checkpoint taken under one
// schedule-affecting knob setting cannot restore into an environment
// running another: the event timelines diverge from the first event.
const (
	FlagFusion       uint32 = 1 << 0 // zero-delay fusion enabled
	FlagHandlerProcs uint32 = 1 << 1 // handler-proc flavor enabled
	FlagWireFlow     uint32 = 1 << 2 // flow-level wire fidelity
)

// Header is the fixed-size preamble of every checkpoint.
type Header struct {
	Version uint32
	Flags   uint32 // knob bits (FlagFusion | ...)
	Config  uint64 // configuration fingerprint (FNV-1a of the config string)
}

// headerSize is magic + version + flags + config.
const headerSize = 4 + 4 + 4 + 8

// digestSize is the trailing FNV-1a 64-bit digest.
const digestSize = 8

// Snapshotter is one source of checkpoint state: a device model, a
// memory map, a fault injector. Save must be strictly read-only on
// simulator state (a snapshot must never perturb the run it captures)
// and must error when the subsystem is not quiescent; Load overlays
// the decoded state onto a freshly built, settled instance of the same
// configuration.
type Snapshotter interface {
	// SnapSection returns the section name, unique within a checkpoint.
	SnapSection() string
	// SnapSave encodes the subsystem's state.
	SnapSave(w *Writer) error
	// SnapLoad decodes and overlays the subsystem's state.
	SnapLoad(r *Reader) error
}

// Writer builds a checkpoint buffer. All integers are little-endian.
type Writer struct {
	buf      []byte
	secStart int // offset of the current section's length prefix (-1: none)
}

// NewWriter returns a writer with the header already encoded.
func NewWriter(h Header) *Writer {
	w := &Writer{secStart: -1}
	w.u32(Magic)
	w.u32(h.Version)
	w.u32(h.Flags)
	w.u64(h.Config)
	return w
}

func (w *Writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// U8 encodes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 encodes a 16-bit integer.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 encodes a 32-bit integer.
func (w *Writer) U32(v uint32) { w.u32(v) }

// U64 encodes a 64-bit integer.
func (w *Writer) U64(v uint64) { w.u64(v) }

// I64 encodes a signed 64-bit integer.
func (w *Writer) I64(v int64) { w.u64(uint64(v)) }

// Int encodes an int as a signed 64-bit integer.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool encodes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Str encodes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes encodes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Section begins a named length-prefixed section. Sections cannot
// nest; the previous section must have been ended.
func (w *Writer) Section(name string) {
	if w.secStart >= 0 {
		panic("snap: Section inside an open section")
	}
	w.Str(name)
	w.secStart = len(w.buf)
	w.u32(0) // length placeholder, patched by EndSection
}

// EndSection closes the current section, patching its length prefix.
func (w *Writer) EndSection() {
	if w.secStart < 0 {
		panic("snap: EndSection without Section")
	}
	n := len(w.buf) - w.secStart - 4
	binary.LittleEndian.PutUint32(w.buf[w.secStart:], uint32(n))
	w.secStart = -1
}

// Finish appends the content digest and returns the checkpoint bytes.
// The writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	if w.secStart >= 0 {
		panic("snap: Finish with an open section")
	}
	w.u64(fnv1a(w.buf))
	return w.buf
}

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Grow ensures capacity for at least n more bytes. Snapshotters with
// a known payload bound (a region's live prefix, a flash block count)
// call it so multi-megabyte sections append without repeated buffer
// doubling — each doubling recopies the whole checkpoint built so
// far.
func (w *Writer) Grow(n int) {
	if cap(w.buf)-len(w.buf) >= n {
		return
	}
	nb := make([]byte, len(w.buf), len(w.buf)+n)
	copy(nb, w.buf)
	w.buf = nb
}

// SparseBytes encodes data as its non-zero 4 KiB pages: a page count,
// then (page index, raw page bytes) pairs in index order. Restores go
// through LoadSparseBytes, which leaves every uncaptured page zero,
// so the encoding is an authoritative image of the full span, not a
// patch.
func (w *Writer) SparseBytes(data []byte) {
	w.SparseBytesLive(data, uint64(len(data)))
}

// SparseBytesLive is SparseBytes with a caller-supplied liveness
// bound: bytes at or past live are guaranteed zero (e.g. a region's
// write high-water mark), so only the live prefix is scanned. The
// encoding is byte-identical to a full SparseBytes scan — pages past
// the bound would have been skipped as zero anyway.
func (w *Writer) SparseBytesLive(data []byte, live uint64) {
	const page = 4096
	w.u64(uint64(len(data)))
	if live > uint64(len(data)) {
		live = uint64(len(data))
	}
	// Single pass: reserve the count word and backpatch it, so each
	// page is classified once (zero-scanning the span dominates the
	// cost of saving a mostly-empty multi-megabyte region).
	countAt := len(w.buf)
	w.u32(0)
	n := uint32(0)
	for off := 0; off < int(live); off += page {
		p := pageAt(data, off, page)
		if isZero(p) {
			continue
		}
		n++
		w.u32(uint32(off / page))
		w.buf = append(w.buf, p...)
	}
	binary.LittleEndian.PutUint32(w.buf[countAt:], n)
}

func pageAt(data []byte, off, page int) []byte {
	end := off + page
	if end > len(data) {
		end = len(data)
	}
	return data[off:end]
}

// isZero scans one stream of 64-bit words, four per iteration.
// Zero-scanning multi-megabyte spans is the dominant cost of a save,
// so the loop shape matters; comparing against a zero page via
// bytes.Equal loses here because it reads two streams.
func isZero(b []byte) bool {
	for len(b) >= 32 {
		if binary.LittleEndian.Uint64(b)|
			binary.LittleEndian.Uint64(b[8:])|
			binary.LittleEndian.Uint64(b[16:])|
			binary.LittleEndian.Uint64(b[24:]) != 0 {
			return false
		}
		b = b[32:]
	}
	for len(b) >= 8 {
		if binary.LittleEndian.Uint64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Reader decodes a checkpoint buffer. Errors are sticky: after the
// first failure every accessor returns a zero value and Err reports
// the original cause, so decode sequences need only one check.
type Reader struct {
	buf    []byte
	off    int
	err    error
	secEnd int // exclusive end of the current section (-1: none)
}

// Open validates the envelope (magic, digest, header length) and
// returns a reader positioned at the first section along with the
// decoded header.
func Open(data []byte) (*Reader, Header, error) { return open(data, true) }

// OpenTrusted is Open without the digest check, for snapshots that
// never left the process: a warm-fork grid restores the same
// in-memory buffer once per cell, and re-hashing tens of megabytes
// per fork costs a meaningful fraction of the restore itself. Buffers
// that crossed a file or the network must go through Open.
func OpenTrusted(data []byte) (*Reader, Header, error) { return open(data, false) }

func open(data []byte, verify bool) (*Reader, Header, error) {
	if len(data) < headerSize+digestSize {
		return nil, Header{}, fmt.Errorf("snap: truncated checkpoint (%d bytes)", len(data))
	}
	body := data[:len(data)-digestSize]
	if verify {
		want := binary.LittleEndian.Uint64(data[len(data)-digestSize:])
		if got := fnv1a(body); got != want {
			return nil, Header{}, fmt.Errorf("snap: digest mismatch (corrupt checkpoint): got %#x want %#x", got, want)
		}
	}
	r := &Reader{buf: body, secEnd: -1}
	if m := r.u32(); m != Magic {
		return nil, Header{}, fmt.Errorf("snap: bad magic %#x", m)
	}
	h := Header{Version: r.u32(), Flags: r.u32(), Config: r.u64()}
	if r.err != nil {
		return nil, Header{}, r.err
	}
	if h.Version != Version {
		return nil, Header{}, fmt.Errorf("snap: version %d, this build reads %d", h.Version, Version)
	}
	return r, h, nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	lim := len(r.buf)
	if r.secEnd >= 0 {
		lim = r.secEnd
	}
	if n < 0 || r.off+n > lim {
		r.fail(fmt.Errorf("snap: truncated read of %d bytes at offset %d", n, r.off))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 decodes a 16-bit integer.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 decodes a 32-bit integer.
func (r *Reader) U32() uint32 { return r.u32() }

// U64 decodes a 64-bit integer.
func (r *Reader) U64() uint64 { return r.u64() }

// I64 decodes a signed 64-bit integer.
func (r *Reader) I64() int64 { return int64(r.u64()) }

// Int decodes an int encoded by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Str decodes a length-prefixed string.
func (r *Reader) Str() string {
	n := r.u32()
	return string(r.take(int(n)))
}

// Bytes decodes a length-prefixed byte slice (a copy).
func (r *Reader) Bytes() []byte {
	n := r.u32()
	return append([]byte(nil), r.take(int(n))...)
}

// Section opens the next section, which must carry the given name.
func (r *Reader) Section(name string) error {
	if r.err != nil {
		return r.err
	}
	if r.secEnd >= 0 {
		r.fail(fmt.Errorf("snap: Section %q inside an open section", name))
		return r.err
	}
	got := r.Str()
	if r.err != nil {
		return r.err
	}
	if got != name {
		r.fail(fmt.Errorf("snap: section order mismatch: got %q, want %q", got, name))
		return r.err
	}
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if r.off+int(n) > len(r.buf) {
		r.fail(fmt.Errorf("snap: section %q length %d exceeds buffer", name, n))
		return r.err
	}
	r.secEnd = r.off + int(n)
	return nil
}

// EndSection closes the current section, verifying it was consumed
// exactly.
func (r *Reader) EndSection() error {
	if r.secEnd < 0 {
		r.fail(fmt.Errorf("snap: EndSection without Section"))
		return r.err
	}
	if r.err == nil && r.off != r.secEnd {
		r.fail(fmt.Errorf("snap: section consumed %d bytes short of its length", r.secEnd-r.off))
	}
	r.off = r.secEnd
	r.secEnd = -1
	return r.err
}

// LoadSparseBytes decodes a SparseBytes span into dst as an exact
// image of the saved span regardless of dst's prior content: captured
// pages are copied in, and every other page ends zero.
func (r *Reader) LoadSparseBytes(dst []byte) error {
	return r.LoadSparseBytesDirty(dst, uint64(len(dst)))
}

// LoadSparseBytesDirty is LoadSparseBytes with a caller-supplied
// bound on dst's prior content: bytes at or past dirty are guaranteed
// already zero (e.g. the destination region's write high-water mark),
// so only gap pages below it need scrubbing. Gap pages are checked
// before they are cleared — a restore targets a freshly built cluster
// whose spans are almost entirely zero already, and a read-only scan
// of a clean page is much cheaper than rewriting it.
func (r *Reader) LoadSparseBytesDirty(dst []byte, dirty uint64) error {
	const page = 4096
	size := r.u64()
	if r.err != nil {
		return r.err
	}
	if size != uint64(len(dst)) {
		r.fail(fmt.Errorf("snap: sparse span size %d, destination %d", size, len(dst)))
		return r.err
	}
	dirtyPages := int((min(dirty, uint64(len(dst))) + page - 1) / page)
	zeroGap := func(from, to int) { // page indices, [from, to)
		if to > dirtyPages {
			to = dirtyPages
		}
		for pi := from; pi < to; pi++ {
			g := pageAt(dst, pi*page, page)
			if !isZero(g) {
				clear(g)
			}
		}
	}
	n := r.u32()
	prev := -1
	for i := uint32(0); i < n; i++ {
		idx := int(r.u32())
		if r.err != nil {
			return r.err
		}
		if idx <= prev || idx*page >= len(dst) {
			r.fail(fmt.Errorf("snap: sparse page index %d out of order or range", idx))
			return r.err
		}
		zeroGap(prev+1, idx)
		prev = idx
		p := pageAt(dst, idx*page, page)
		src := r.take(len(p))
		if src == nil {
			return r.err
		}
		copy(p, src)
	}
	zeroGap(prev+1, (len(dst)+page-1)/page)
	return r.err
}

// fnv1a computes a 64-bit FNV-1a-style digest of b, folding eight
// little-endian bytes per round with a byte-wise tail. Chunking
// changes the digest values relative to canonical byte-wise FNV-1a,
// which is fine — the digest only ever compares snapshots against
// snapshots — and makes hashing a multi-megabyte checkpoint ~8x
// cheaper, which matters because every save and every open pays it.
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= prime
		b = b[8:]
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// ContentHash returns the FNV-1a digest of data as a hex string, the
// content-address used in checkpoint artifact names.
func ContentHash(data []byte) string { return fmt.Sprintf("%016x", fnv1a(data)) }

// HashString fingerprints a configuration string for the header.
func HashString(s string) uint64 { return fnv1a([]byte(s)) }