package snap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// testSeed pins the quick-check PRNG so failures reproduce exactly
// (the repo-wide convention from sim_test.go).
const testSeed = 1

// roundTripPayload is one randomly generated section payload: a mixed
// sequence of primitive values plus a sparse byte span.
type roundTripPayload struct {
	A   uint8
	B   uint16
	C   uint32
	D   uint64
	E   int64
	F   bool
	S   string
	Raw []byte
}

func encodePayload(w *Writer, p roundTripPayload, span []byte) {
	w.Section("payload")
	w.U8(p.A)
	w.U16(p.B)
	w.U32(p.C)
	w.U64(p.D)
	w.I64(p.E)
	w.Bool(p.F)
	w.Str(p.S)
	w.Bytes(p.Raw)
	w.SparseBytes(span)
	w.EndSection()
}

// TestEncodeDecodeEncodeByteEquality is the core codec property:
// encode → decode → re-encode must reproduce the identical bytes for
// arbitrary payloads, so checkpoints are content-addressable.
func TestEncodeDecodeEncodeByteEquality(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(testSeed)), MaxCount: 200}
	f := func(p roundTripPayload, pages []byte, hdrCfg uint64, flags uint32) bool {
		// Build a sparse span: a few KiB with the random bytes strewn
		// across page boundaries so zero and non-zero pages both occur.
		span := make([]byte, 3*4096+123)
		for i, b := range pages {
			span[(i*911)%len(span)] = b
		}
		w := NewWriter(Header{Version: Version, Flags: flags, Config: hdrCfg})
		encodePayload(w, p, span)
		data := w.Finish()

		r, h, err := Open(data)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		if h.Flags != flags || h.Config != hdrCfg {
			return false
		}
		if err := r.Section("payload"); err != nil {
			return false
		}
		var q roundTripPayload
		q.A, q.B, q.C, q.D = r.U8(), r.U16(), r.U32(), r.U64()
		q.E, q.F, q.S, q.Raw = r.I64(), r.Bool(), r.Str(), r.Bytes()
		span2 := make([]byte, len(span))
		if err := r.LoadSparseBytes(span2); err != nil {
			return false
		}
		if err := r.EndSection(); err != nil {
			return false
		}
		if !bytes.Equal(span, span2) {
			return false
		}

		w2 := NewWriter(Header{Version: Version, Flags: flags, Config: hdrCfg})
		encodePayload(w2, q, span2)
		return bytes.Equal(data, w2.Finish())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationRejected flips through every possible truncation point
// of a valid checkpoint: all must be rejected, either at Open (digest
// or envelope) or as a sticky reader error before the decode finishes.
func TestTruncationRejected(t *testing.T) {
	w := NewWriter(Header{Version: Version})
	w.Section("s")
	w.Str("hello")
	w.U64(42)
	w.EndSection()
	data := w.Finish()

	for n := 0; n < len(data); n++ {
		if _, _, err := Open(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestCorruptionRejected flips single bits across the buffer: every
// corruption must fail the digest check.
func TestCorruptionRejected(t *testing.T) {
	w := NewWriter(Header{Version: Version})
	w.Section("s")
	w.Bytes([]byte{1, 2, 3, 4})
	w.EndSection()
	data := w.Finish()

	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit += 3 {
			c := append([]byte(nil), data...)
			c[i] ^= 1 << bit
			if _, _, err := Open(c); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

// TestVersionRejected: a future version must be refused.
func TestVersionRejected(t *testing.T) {
	w := NewWriter(Header{Version: Version + 1})
	w.Section("s")
	w.EndSection()
	if _, _, err := Open(w.Finish()); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestSectionOrderEnforced: reading sections out of order fails.
func TestSectionOrderEnforced(t *testing.T) {
	w := NewWriter(Header{Version: Version})
	w.Section("a")
	w.U8(1)
	w.EndSection()
	w.Section("b")
	w.U8(2)
	w.EndSection()
	r, _, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("b"); err == nil {
		t.Fatal("out-of-order section accepted")
	}
}

// TestShortSectionConsumptionRejected: a Load that leaves bytes behind
// is a layout bug, not a tolerable condition.
func TestShortSectionConsumptionRejected(t *testing.T) {
	w := NewWriter(Header{Version: Version})
	w.Section("s")
	w.U64(1)
	w.U64(2)
	w.EndSection()
	r, _, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("s"); err != nil {
		t.Fatal(err)
	}
	_ = r.U64()
	if err := r.EndSection(); err == nil {
		t.Fatal("short consumption accepted")
	}
}

// TestOverReadStopsAtSectionEnd: reads past the section boundary fail
// rather than bleeding into the next section.
func TestOverReadStopsAtSectionEnd(t *testing.T) {
	w := NewWriter(Header{Version: Version})
	w.Section("a")
	w.U8(1)
	w.EndSection()
	w.Section("b")
	w.U64(7)
	w.EndSection()
	r, _, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("a"); err != nil {
		t.Fatal(err)
	}
	_ = r.U8()
	_ = r.U64() // crosses the boundary
	if r.Err() == nil {
		t.Fatal("over-read crossed section boundary")
	}
}

// TestSparseAuthoritative: LoadSparseBytes must zero pre-existing
// destination bytes that the snapshot recorded as zero.
func TestSparseAuthoritative(t *testing.T) {
	src := make([]byte, 2*4096)
	src[4096+5] = 0xAB // page 1 non-zero, page 0 all zero
	w := NewWriter(Header{Version: Version})
	w.Section("m")
	w.SparseBytes(src)
	w.EndSection()
	r, _, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("m"); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	dst[17] = 0xFF // stale byte in a zero page: must be cleared
	if err := r.LoadSparseBytes(dst); err != nil {
		t.Fatal(err)
	}
	if err := r.EndSection(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("sparse restore is not an authoritative image")
	}
}
