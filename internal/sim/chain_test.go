package sim

import (
	"fmt"
	"strings"
	"testing"
)

// traceRun executes body against a fresh env with fusion set as given
// and returns the observable trace it produced.
func traceRun(fuse bool, body func(env *Env, trace *strings.Builder)) string {
	env := NewEnv()
	env.SetFusion(fuse)
	var trace strings.Builder
	body(env, &trace)
	env.Run(-1)
	fmt.Fprintf(&trace, "|end@%d", env.Now())
	return trace.String()
}

// TestChainScheduleIdentical checks that a tail-position Chain produces
// the same observable schedule fused and unfused: same relative order
// of continuations vs. already-queued and later-queued events, same
// timestamps.
func TestChainScheduleIdentical(t *testing.T) {
	body := func(env *Env, trace *strings.Builder) {
		log := func(s string) func() {
			return func() { fmt.Fprintf(trace, "|%s@%d", s, env.Now()) }
		}
		env.Schedule(0, func() {
			log("a")()
			// Tail position: nothing observable after Chain returns.
			env.Chain(func() {
				log("b")()
				env.Chain(log("c"))
			})
		})
		env.Schedule(0, log("d"))
		env.Schedule(5, func() {
			log("e")()
			env.Chain(log("f"))
		})
	}
	fused := traceRun(true, body)
	unfused := traceRun(false, body)
	if fused != unfused {
		t.Fatalf("schedules differ:\n fused:   %s\n unfused: %s", fused, unfused)
	}
	// With d queued at the same instant, the first Chain must defer so b
	// runs after d in both modes.
	want := "|a@0|d@0|b@0|c@0|e@5|f@5|end@5"
	if fused != want {
		t.Fatalf("trace = %s, want %s", fused, want)
	}
}

// TestChainInlineCounting checks that fused continuations are counted
// and that Chain defers when same-instant work is pending.
func TestChainInlineCounting(t *testing.T) {
	env := NewEnv()
	env.SetFusion(true)
	ran := 0
	env.Schedule(0, func() {
		env.Chain(func() { ran++ }) // nothing pending: inline
	})
	env.Run(-1)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	st := env.Stats()
	if st.Fused != 1 {
		t.Fatalf("Fused = %d, want 1", st.Fused)
	}
	if st.Events != 1 { // only the outer Schedule was dispatched
		t.Fatalf("Events = %d, want 1", st.Events)
	}
}

// TestChainUnfusedEnqueues checks that with fusion off every Chain goes
// through the queue and is counted as a dispatched event.
func TestChainUnfusedEnqueues(t *testing.T) {
	env := NewEnv()
	env.SetFusion(false)
	ran := false
	env.Schedule(0, func() {
		env.Chain(func() { ran = true })
	})
	env.Run(-1)
	if !ran {
		t.Fatal("chained fn did not run")
	}
	st := env.Stats()
	if st.Fused != 0 {
		t.Fatalf("Fused = %d, want 0", st.Fused)
	}
	if st.Events != 2 {
		t.Fatalf("Events = %d, want 2", st.Events)
	}
}

// TestYieldFastPath checks that a lone Yield with nothing pending skips
// the queue under fusion, and still lets pending same-instant work run
// first when there is any — in both modes, in the same order.
func TestYieldFastPath(t *testing.T) {
	for _, fuse := range []bool{true, false} {
		env := NewEnv()
		env.SetFusion(fuse)
		var order []string
		env.Spawn("p", func(p *Proc) {
			p.Sleep(10)
			// Nothing else pending at t=10: fast path (fused) or
			// self-resume round trip (unfused) — either way we continue.
			p.Yield()
			order = append(order, "p1")
			env.Schedule(0, func() { order = append(order, "cb") })
			p.Yield() // cb is pending: must run before we continue
			order = append(order, "p2")
		})
		env.Run(-1)
		got := strings.Join(order, ",")
		if got != "p1,cb,p2" {
			t.Fatalf("fuse=%v: order = %s, want p1,cb,p2", fuse, got)
		}
		if fuse && env.Stats().Fused == 0 {
			t.Fatal("fused Yield not counted")
		}
		if !fuse && env.Stats().Fused != 0 {
			t.Fatal("unfused env recorded fused continuations")
		}
	}
}

// TestStatsEventsPerIO checks CountIO accounting.
func TestStatsEventsPerIO(t *testing.T) {
	env := NewEnv()
	for i := 0; i < 6; i++ {
		env.Schedule(Time(i), func() {})
	}
	env.CountIO(2)
	env.CountIO(1)
	env.Run(-1)
	st := env.Stats()
	if st.IOs != 3 {
		t.Fatalf("IOs = %d, want 3", st.IOs)
	}
	if got := st.EventsPerIO(); got != 2 {
		t.Fatalf("EventsPerIO = %v, want 2", got)
	}
	if (Stats{}).EventsPerIO() != 0 {
		t.Fatal("EventsPerIO with no IOs should be 0")
	}
}

// TestDefaultFusion checks the package-wide default plumbing.
func TestDefaultFusion(t *testing.T) {
	if !DefaultFusion() {
		t.Fatal("fusion should default on")
	}
	SetDefaultFusion(false)
	defer SetDefaultFusion(true)
	if NewEnv().Fusion() {
		t.Fatal("NewEnv ignored SetDefaultFusion(false)")
	}
	SetDefaultFusion(true)
	if !NewEnv().Fusion() {
		t.Fatal("NewEnv ignored SetDefaultFusion(true)")
	}
}

// TestChainDepthGuard checks that unbounded same-instant recursion is
// caught instead of overflowing the stack.
func TestChainDepthGuard(t *testing.T) {
	env := NewEnv()
	env.SetFusion(true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from unbounded Chain recursion")
		}
	}()
	var loop func()
	loop = func() { env.Chain(loop) } //dcslint:allow nochainrecursion deliberate runaway for the depth-guard test
	env.Schedule(0, loop)
	env.Run(-1)
}
