package sim

import "fmt"

// BpsToTime converts a byte count at a bit rate (bits per second) to
// the simulated time the transfer occupies.
func BpsToTime(bytes int, bitsPerSecond float64) Time {
	if bitsPerSecond <= 0 {
		panic(fmt.Sprintf("sim: non-positive bit rate %v", bitsPerSecond))
	}
	return Time(float64(bytes) * 8 / bitsPerSecond * float64(Second))
}

// BandwidthServer models a serializing transmission resource (a link
// direction, a flash channel, a DMA engine): transfers queue FIFO and
// each occupies the server for size/rate plus a fixed per-transfer
// overhead.
type BandwidthServer struct {
	res      *Resource
	bps      float64 // bits per second
	overhead Time    // fixed per-transfer occupancy (arbitration, headers)
	bytes    int64   // total payload bytes moved
	xfers    int64   // total transfers served
}

// NewBandwidthServer returns a server transmitting at bitsPerSecond
// with the given fixed per-transfer overhead.
func NewBandwidthServer(e *Env, name string, bitsPerSecond float64, overhead Time) *BandwidthServer {
	if bitsPerSecond <= 0 {
		panic(fmt.Sprintf("sim: bandwidth server %q rate %v", name, bitsPerSecond))
	}
	return &BandwidthServer{res: NewResource(e, name, 1), bps: bitsPerSecond, overhead: overhead}
}

// Rate returns the configured bit rate.
func (b *BandwidthServer) Rate() float64 { return b.bps }

// Transfer occupies the server for the serialization time of n bytes.
func (b *BandwidthServer) Transfer(p *Proc, n int) {
	if n < 0 {
		panic("sim: negative transfer size")
	}
	b.res.Acquire(p)
	p.Sleep(b.overhead + BpsToTime(n, b.bps))
	b.res.Release()
	b.bytes += int64(n)
	b.xfers++
}

// AcquireH is the handler-staged first leg of Transfer: it reports
// true once the handler holds the server. The caller then re-arms for
// HoldTime(n) and finishes with CompleteH(n) — the exact decomposition
// Transfer performs (Acquire; Sleep; Release + account).
//
//dcslint:hotpath
func (b *BandwidthServer) AcquireH(h *HandlerCtx, t *ResTicket) bool {
	return b.res.AcquireH(h, t)
}

// HoldTime returns the occupancy of an n-byte transfer: the fixed
// per-transfer overhead plus serialization time.
//
//dcslint:hotpath
func (b *BandwidthServer) HoldTime(n int) Time {
	if n < 0 {
		panic("sim: negative transfer size")
	}
	return b.overhead + BpsToTime(n, b.bps)
}

// CompleteH is the handler-staged last leg of Transfer: it releases
// the server and accounts the n bytes moved.
//
//dcslint:hotpath
func (b *BandwidthServer) CompleteH(n int) {
	b.res.Release()
	b.bytes += int64(n)
	b.xfers++
}

// AccrueFlow records bytes, transfer count, and busy time served
// analytically (flow fidelity) without occupying the server. The
// analytic caller has already established that the server would have
// been busy for exactly busy time; this keeps utilization reports
// identical across fidelities.
func (b *BandwidthServer) AccrueFlow(n int, xfers int, busy Time) {
	if n < 0 || xfers < 0 || busy < 0 {
		panic("sim: negative flow accrual")
	}
	b.bytes += int64(n)
	b.xfers += int64(xfers)
	b.res.busy += busy
}

// BusyTime returns the accumulated busy time of the server.
func (b *BandwidthServer) BusyTime() Time { return b.res.BusyTime() }

// Bytes returns total payload bytes moved through the server.
func (b *BandwidthServer) Bytes() int64 { return b.bytes }

// Transfers returns the number of transfers served.
func (b *BandwidthServer) Transfers() int64 { return b.xfers }
