package sim

import "dcsctrl/internal/sim/snap"

// Shared encode/decode helpers for the checkpoint states defined in
// checkpoint.go, so every device snapshot encodes accounting the same
// way (and a hex dump of any section reads uniformly).

// SaveAccum encodes a resource utilization accumulator.
func SaveAccum(w *snap.Writer, s AccumState) {
	w.I64(int64(s.Busy))
	w.I64(int64(s.LastStamp))
}

// LoadAccum decodes a resource utilization accumulator.
func LoadAccum(r *snap.Reader) AccumState {
	return AccumState{Busy: Time(r.I64()), LastStamp: Time(r.I64())}
}

// SaveBW encodes a bandwidth-server accounting state.
func SaveBW(w *snap.Writer, s BWState) {
	SaveAccum(w, s.Accum)
	w.I64(s.Bytes)
	w.I64(s.Xfers)
}

// LoadBW decodes a bandwidth-server accounting state.
func LoadBW(r *snap.Reader) BWState {
	return BWState{Accum: LoadAccum(r), Bytes: r.I64(), Xfers: r.I64()}
}

// CheckpointBWInto captures the server's accounting and encodes it.
func CheckpointBWInto(w *snap.Writer, b *BandwidthServer) error {
	s, err := b.CheckpointBW()
	if err != nil {
		return err
	}
	SaveBW(w, s)
	return nil
}

// RestoreBWFrom decodes a bandwidth-server state and overlays it.
func RestoreBWFrom(r *snap.Reader, b *BandwidthServer) error {
	s := LoadBW(r)
	if err := r.Err(); err != nil {
		return err
	}
	return b.RestoreBW(s)
}

// CheckpointAccumInto captures the resource's accounting and encodes it.
func CheckpointAccumInto(w *snap.Writer, res *Resource) error {
	s, err := res.CheckpointAccum()
	if err != nil {
		return err
	}
	SaveAccum(w, s)
	return nil
}

// RestoreAccumFrom decodes a resource accounting state and overlays it.
func RestoreAccumFrom(r *snap.Reader, res *Resource) error {
	s := LoadAccum(r)
	if err := r.Err(); err != nil {
		return err
	}
	return res.RestoreAccum(s)
}
