// Package shard executes several sim.Env event queues in parallel
// under conservative lookahead synchronization, the SimBricks-style
// fixed-latency trick: every cross-domain interaction travels over a
// fabric link with a non-zero minimum latency Δ, so all domains can
// safely run any window [B, B+Δ) in parallel — nothing a domain does
// inside the window can affect another domain before the window ends.
//
// Determinism is absolute, not statistical: a run's results are
// byte-identical at any worker count AND any domain decomposition.
// Three mechanisms carry the guarantee (DESIGN.md §14):
//
//  1. Domains share no state. Every node's devices, memory, and
//     processes live in exactly one domain's Env, and all node-to-node
//     traffic — even between nodes of the same domain — crosses the
//     fabric.
//  2. The fabric is sequential. Cross-node frames become time-stamped
//     messages gathered at each barrier, sorted by the decomposition-
//     invariant key (departure time, source node, per-source order),
//     and injected into a single-threaded fabric engine owned by the
//     coordinator. Link contention is therefore resolved in one
//     deterministic order regardless of sharding.
//  3. Windows only partition time. Running [B, W] on one goroutine or
//     eight, or re-cutting window boundaries, never reorders any
//     domain's own (at, seq) dispatch.
//
// This package is, with the kernel itself, the only simulation code
// allowed to use goroutines and channels (dcslint nogoroutine policy):
// its worker pool and barriers are pure execution-engine concurrency,
// invisible to the simulated timeline.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"dcsctrl/internal/sim"
)

// Fabric is the coordinator-owned interconnect between domains. It
// must be deterministic and single-threaded: the kernel calls it only
// from the barrier, never concurrently with domain execution.
//
// Inject enters a frame departing src at time at; AdvanceTo processes
// all fabric events with deadline ≤ t, invoking deliver for each frame
// reaching its destination node by t; NextTime reports the earliest
// pending fabric event. Injections must never create fabric events at
// or before already-processed times — the lookahead bound guarantees
// this when windows are no longer than Lookahead.
type Fabric interface {
	Inject(src int, at sim.Time, frame []byte, wireLen int)
	NextTime() (sim.Time, bool)
	AdvanceTo(t sim.Time, deliver func(dst int, at sim.Time, frame []byte))
}

// Domain is one shard: an Env plus the nodes assigned to it, executed
// by at most one worker at a time.
type Domain struct {
	id  int
	env *sim.Env
}

// Env returns the domain's simulation environment.
func (d *Domain) Env() *sim.Env { return d.env }

// injection is one frame awaiting its barrier merge.
type injection struct {
	at      sim.Time
	src     int
	wireLen int
	frame   []byte
}

// Outbox is a node's transmit attachment point: it satisfies the NIC
// uplink shape (SendFrame) structurally and buffers departures until
// the next barrier. Only the owning domain's Env touches it during a
// window, and only the coordinator touches it at barriers, so it needs
// no locking.
type Outbox struct {
	env *sim.Env
	src int
	buf []injection
}

// SendFrame records one frame leaving the node at the current instant.
// The fabric takes ownership of the frame buffer.
func (o *Outbox) SendFrame(frame []byte, wireLen, payLen int) {
	o.buf = append(o.buf, injection{at: o.env.Now(), src: o.src, wireLen: wireLen, frame: frame})
}

// nodeReg is one node's routing entry: its domain and delivery sink.
type nodeReg struct {
	dom  *Domain
	sink func(frame []byte)
	out  *Outbox
}

// Stats counts the kernel's synchronization work. ParWindows is the
// knob-not-dead signal: a multi-domain run that never dispatches two
// domains concurrently is silently serial (benchdiff's NOPAR gate).
type Stats struct {
	Windows     uint64 // execution windows run
	ParWindows  uint64 // windows with ≥2 domains dispatched concurrently
	CrossFrames uint64 // frames merged through the fabric
	Domains     int
	Workers     int // worker goroutines the run may use

	// Dispatch-flavor counters summed across domains (DESIGN.md §16):
	// the park/resume handoff tax and the handler dispatches that
	// replace it.
	Parks             uint64
	Handoffs          uint64
	HandlerDispatches uint64
}

// Kernel is the conservative parallel coordinator: it owns the barrier
// loop, the fabric, and the worker pool.
type Kernel struct {
	fab     Fabric
	la      sim.Time
	workers int

	domains []*Domain
	nodes   []nodeReg

	merge  []injection // barrier merge scratch
	active []*Domain   // barrier dispatch scratch
	stats  Stats

	winStart sim.Time // current window bounds (injection sanity check)
	winEnd   sim.Time
	ran      bool
}

// NewKernel builds a coordinator. lookahead is the synchronization
// quantum — the fabric's minimum injection-to-first-event latency
// (ether.Topology.Lookahead). workers bounds the goroutines used per
// window; ≤1 runs every window serially on the caller's goroutine,
// which is also the byte-identical reference schedule.
func NewKernel(fab Fabric, lookahead sim.Time, workers int) *Kernel {
	if lookahead <= 0 {
		panic(fmt.Sprintf("shard: non-positive lookahead %v (zero-latency links cannot be sharded conservatively)", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	return &Kernel{fab: fab, la: lookahead, workers: workers, winEnd: -1}
}

// AddDomain creates a new empty domain with a fresh Env.
func (k *Kernel) AddDomain() *Domain {
	d := &Domain{id: len(k.domains), env: sim.NewEnv()}
	k.domains = append(k.domains, d)
	return d
}

// Domains returns the kernel's domains in creation order.
func (k *Kernel) Domains() []*Domain { return k.domains }

// AddNode registers node id in domain d with its frame-delivery sink
// (called at the frame's exact arrival instant, on d's timeline) and
// returns the node's transmit Outbox. Node ids must be added densely
// in order — they are the fabric's addressing.
func (k *Kernel) AddNode(id int, d *Domain, sink func(frame []byte)) *Outbox {
	if id != len(k.nodes) {
		panic(fmt.Sprintf("shard: node %d added out of order (want %d)", id, len(k.nodes)))
	}
	out := &Outbox{env: d.env, src: id}
	k.nodes = append(k.nodes, nodeReg{dom: d, sink: sink, out: out})
	return out
}

// Stats returns the synchronization counters.
func (k *Kernel) Stats() Stats {
	s := k.stats
	s.Domains = len(k.domains)
	s.Workers = k.workers
	if s.Workers > s.Domains {
		s.Workers = s.Domains
	}
	for _, d := range k.domains {
		es := d.env.Stats()
		s.Parks += es.Parks
		s.Handoffs += es.Handoffs
		s.HandlerDispatches += es.HandlerDispatches
	}
	return s
}

// Run executes all domains to quiescence, or until every domain's
// next event lies beyond horizon (horizon < 0: run to exhaustion),
// and returns the last window's end time. Run may be called again to
// continue. The caller's goroutine acts as the coordinator; domain
// windows run on a transient worker pool that exits before Run
// returns.
func (k *Kernel) Run(horizon sim.Time) sim.Time {
	pool := k.startPool()
	if pool != nil {
		defer pool.stop()
	}
	var end sim.Time
	for {
		k.gather()
		b, ok := k.next()
		if !ok {
			break
		}
		if horizon >= 0 && b > horizon {
			break
		}
		// Inclusive window end: events in [b, b+la) are safe to run.
		wend := b + k.la - 1*sim.Nanosecond
		if horizon >= 0 && wend > horizon {
			wend = horizon
		}
		k.winStart, k.winEnd, k.ran = b, wend, true
		k.stats.Windows++
		if k.fab != nil {
			k.fab.AdvanceTo(wend, k.deliver)
		}
		active := k.active[:0]
		for _, d := range k.domains {
			if t, has := d.env.NextAt(); has && t <= wend {
				active = append(active, d)
			}
		}
		k.active = active
		if pool != nil && len(active) > 1 {
			k.stats.ParWindows++
			pool.run(active, wend)
		} else {
			for _, d := range active {
				d.env.Run(wend)
			}
		}
		end = wend
	}
	return end
}

// gather merges every outbox's departures in the decomposition-
// invariant order (at, src, per-source FIFO) and injects them into the
// fabric. Per-source FIFO order survives the stable sort because each
// outbox is appended as a contiguous run.
func (k *Kernel) gather() {
	m := k.merge[:0]
	for i := range k.nodes {
		o := k.nodes[i].out
		m = append(m, o.buf...)
		for j := range o.buf {
			o.buf[j] = injection{} // drop frame references for GC
		}
		o.buf = o.buf[:0]
	}
	if len(m) == 0 {
		k.merge = m
		return
	}
	sort.SliceStable(m, func(a, b int) bool {
		if m[a].at != m[b].at {
			return m[a].at < m[b].at
		}
		return m[a].src < m[b].src
	})
	for i := range m {
		inj := &m[i]
		if k.ran && (inj.at < k.winStart || inj.at > k.winEnd) {
			panic(fmt.Sprintf("shard: node %d injected a frame at %v outside its window [%v, %v]",
				inj.src, inj.at, k.winStart, k.winEnd))
		}
		if k.fab == nil {
			panic(fmt.Sprintf("shard: node %d sent a frame but the kernel has no fabric", inj.src))
		}
		k.fab.Inject(inj.src, inj.at, inj.frame, inj.wireLen)
		k.stats.CrossFrames++
		inj.frame = nil
	}
	k.merge = m[:0]
}

// next returns the earliest pending instant across every domain and
// the fabric — the next window's start.
func (k *Kernel) next() (sim.Time, bool) {
	var b sim.Time
	ok := false
	for _, d := range k.domains {
		if t, has := d.env.NextAt(); has && (!ok || t < b) {
			b, ok = t, true
		}
	}
	if k.fab != nil {
		if t, has := k.fab.NextTime(); has && (!ok || t < b) {
			b, ok = t, true
		}
	}
	return b, ok
}

// deliver schedules one fabric arrival on the destination domain's
// timeline. Deliveries are scheduled only at barriers (no domain is
// running), and always in the future of the destination's clock — the
// lookahead legality argument.
func (k *Kernel) deliver(dst int, at sim.Time, frame []byte) {
	reg := &k.nodes[dst]
	env := reg.dom.env
	d := at - env.Now()
	if d < 0 {
		panic(fmt.Sprintf("shard: delivery to node %d at %v is in its domain's past (now %v): lookahead violation",
			dst, at, env.Now()))
	}
	sink := reg.sink
	env.Schedule(d, func() { sink(frame) })
}

// task is one domain window handed to a pool worker.
type task struct {
	d    *Domain
	wend sim.Time
	wg   *sync.WaitGroup
}

// pool is the transient per-Run worker pool. Handing a domain's Env to
// a worker is safe: the channel send/receive and the WaitGroup edges
// order every access to the Env between windows, and within a window
// exactly one worker touches it.
type pool struct {
	tasks chan task
}

// startPool spawns the worker pool, or returns nil when the run is
// serial (one domain or one worker) — the serial path dispatches on
// the coordinator goroutine with zero extra goroutines.
func (k *Kernel) startPool() *pool {
	w := k.workers
	if w > len(k.domains) {
		w = len(k.domains)
	}
	if w <= 1 {
		return nil
	}
	p := &pool{tasks: make(chan task, len(k.domains))}
	for i := 0; i < w; i++ {
		go func() {
			for t := range p.tasks {
				t.d.env.Run(t.wend)
				t.wg.Done()
			}
		}()
	}
	return p
}

// run executes one window across the active domains and blocks until
// all of them reach wend.
func (p *pool) run(active []*Domain, wend sim.Time) {
	var wg sync.WaitGroup
	wg.Add(len(active))
	for _, d := range active {
		p.tasks <- task{d: d, wend: wend, wg: &wg}
	}
	wg.Wait()
}

// stop winds the pool down; workers exit once the queue drains.
func (p *pool) stop() { close(p.tasks) }
