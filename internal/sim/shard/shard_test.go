// Kernel-level tests with a stub fixed-latency fabric: the coordinator
// mechanics (window partition, barrier merge, worker dispatch) must be
// byte-identical at any worker count and any domain decomposition,
// without dragging in the full ether/core stack.
package shard

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"dcsctrl/internal/sim"
)

// stubFabric delivers every frame exactly lat after injection, in
// (time, injection order) order. Injection order is what the kernel's
// barrier merge makes decomposition-invariant, so the stub inherits
// the determinism guarantee the real FabricSim relies on.
type stubFabric struct {
	lat  sim.Time
	evs  []stubEvent
	seq  int
	dst  func(src int) int
	done int
}

type stubEvent struct {
	at    sim.Time
	seq   int
	dst   int
	frame []byte
}

func (f *stubFabric) Inject(src int, at sim.Time, frame []byte, wireLen int) {
	f.evs = append(f.evs, stubEvent{at: at + f.lat, seq: f.seq, dst: f.dst(src), frame: frame})
	f.seq++
	sort.Slice(f.evs, func(a, b int) bool {
		if f.evs[a].at != f.evs[b].at {
			return f.evs[a].at < f.evs[b].at
		}
		return f.evs[a].seq < f.evs[b].seq
	})
}

func (f *stubFabric) NextTime() (sim.Time, bool) {
	if len(f.evs) == 0 {
		return 0, false
	}
	return f.evs[0].at, true
}

func (f *stubFabric) AdvanceTo(t sim.Time, deliver func(dst int, at sim.Time, frame []byte)) {
	for len(f.evs) > 0 && f.evs[0].at <= t {
		e := f.evs[0]
		f.evs = f.evs[1:]
		f.done++
		deliver(e.dst, e.at, e.frame)
	}
}

// arrival is one observed delivery, the unit of the equivalence trace.
type arrival struct {
	Node int
	At   sim.Time
	Tag  byte
	TTL  byte
}

// runRelay builds nodes spread over domains, seeds one staggered frame
// per node, and lets each arrival re-send to the next node until its
// TTL drains — multi-hop traffic that crosses every window boundary.
// It returns the full arrival trace in (at, node) order plus stats.
func runRelay(t *testing.T, nodes, domains, workers int) ([]arrival, Stats) {
	t.Helper()
	const lat = 500 * sim.Nanosecond
	fab := &stubFabric{lat: lat, dst: func(src int) int { return (src + 1) % nodes }}
	k := NewKernel(fab, lat, workers)
	doms := make([]*Domain, domains)
	for i := range doms {
		doms[i] = k.AddDomain()
	}
	traces := make([][]arrival, nodes) // per-node: only its domain writes it
	outs := make([]*Outbox, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		d := doms[i*domains/nodes]
		out := k.AddNode(i, d, func(frame []byte) {
			traces[i] = append(traces[i], arrival{Node: i, At: d.Env().Now(), Tag: frame[0], TTL: frame[1]})
			if frame[1] > 0 {
				outs[i].SendFrame([]byte{frame[0], frame[1] - 1}, 64, 2)
			}
		})
		outs[i] = out
		// Staggered seed: node i emits frame tag i with TTL 5 at a time
		// offset that lands seeds in different windows.
		d.Env().Schedule(sim.Time(1+i*137)*sim.Nanosecond, func() {
			out.SendFrame([]byte{byte(i), 5}, 64, 2)
		})
	}
	k.Run(-1)
	var all []arrival
	for _, tr := range traces {
		all = append(all, tr...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].At != all[b].At {
			return all[a].At < all[b].At
		}
		return all[a].Node < all[b].Node
	})
	want := nodes * 6 // each seed delivers TTL+1 = 6 times
	if len(all) != want {
		t.Fatalf("nodes=%d domains=%d workers=%d: %d arrivals, want %d", nodes, domains, workers, len(all), want)
	}
	return all, k.Stats()
}

// TestKernelEquivalence pins the core guarantee at the kernel level:
// the arrival trace is identical at every worker count and every
// decomposition, and so is the cross-fabric frame count.
func TestKernelEquivalence(t *testing.T) {
	const nodes = 6
	ref, refStats := runRelay(t, nodes, 1, 1)
	for _, c := range []struct{ domains, workers int }{
		{2, 1}, {2, 2}, {3, 2}, {4, 4}, {6, 8}, {6, 1},
	} {
		got, st := runRelay(t, nodes, c.domains, c.workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("domains=%d workers=%d: arrival trace diverges from serial", c.domains, c.workers)
		}
		if st.CrossFrames != refStats.CrossFrames {
			t.Fatalf("domains=%d workers=%d: cross frames %d != %d", c.domains, c.workers, st.CrossFrames, refStats.CrossFrames)
		}
		if c.domains > 1 && c.workers > 1 && st.ParWindows == 0 {
			t.Fatalf("domains=%d workers=%d: no parallel windows", c.domains, c.workers)
		}
		if c.workers <= 1 && st.ParWindows != 0 {
			t.Fatalf("domains=%d workers=1: reported %d parallel windows on the serial path", c.domains, st.ParWindows)
		}
	}
}

// TestKernelGuards pins the constructor and registration panics: the
// legality preconditions must fail loudly, not corrupt schedules.
func TestKernelGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { NewKernel(&stubFabric{}, 0, 1) })
	mustPanic("node out of order", func() {
		k := NewKernel(&stubFabric{}, sim.Microsecond, 1)
		d := k.AddDomain()
		k.AddNode(1, d, func([]byte) {})
	})
	mustPanic("frame without fabric", func() {
		k := NewKernel(nil, sim.Microsecond, 1)
		d := k.AddDomain()
		out := k.AddNode(0, d, func([]byte) {})
		d.Env().Schedule(sim.Nanosecond, func() { out.SendFrame([]byte{0}, 64, 1) })
		k.Run(-1)
	})
}

// TestKernelHorizon pins Run's horizon contract: a bounded run stops
// before events beyond the horizon and can be resumed to completion.
func TestKernelHorizon(t *testing.T) {
	const lat = sim.Microsecond
	fab := &stubFabric{lat: lat, dst: func(src int) int { return src ^ 1 }}
	k := NewKernel(fab, lat, 1)
	d := k.AddDomain()
	var got []sim.Time
	for i := 0; i < 2; i++ {
		i := i
		out := k.AddNode(i, d, func(frame []byte) { got = append(got, d.Env().Now()) })
		d.Env().Schedule(sim.Time(10+i)*sim.Microsecond, func() { out.SendFrame([]byte{byte(i)}, 64, 1) })
	}
	k.Run(5 * sim.Microsecond)
	if len(got) != 0 {
		t.Fatalf("horizon 5µs: %d arrivals before the seeds' time", len(got))
	}
	k.Run(-1)
	if len(got) != 2 {
		t.Fatalf("resumed run delivered %d arrivals, want 2", len(got))
	}
	if fmt.Sprint(got) != fmt.Sprint([]sim.Time{11 * sim.Microsecond, 12 * sim.Microsecond}) {
		t.Fatalf("arrival times %v", got)
	}
}
