package ndp

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"fmt"
	"hash/crc32"
	"io"

	"dcsctrl/internal/fpga"
)

// Table III: per-instance Virtex-7 resource utilization and measured
// throughput of the open-source IP cores the paper synthesized.
var tableIII = map[string]fpga.Usage{
	"md5":    {LUTs: 8970 / 11, Registers: 4180 / 11, MaxClockMHz: 130, PowerW: 0.02},
	"sha1":   {LUTs: 10760 / 10, Registers: 6848 / 10, MaxClockMHz: 235, PowerW: 0.02},
	"sha256": {LUTs: 13090 / 13, Registers: 7480 / 13, MaxClockMHz: 130, PowerW: 0.02},
	"aes256": {LUTs: 10689, Registers: 6000, MaxClockMHz: 250, PowerW: 0.08},
	"crc32":  {LUTs: 93, Registers: 53, MaxClockMHz: 250, PowerW: 0.01},
	"gzip":   {LUTs: 16273, Registers: 12718, MaxClockMHz: 178, PowerW: 0.12},
}

// Note: the paper reports the MD5/SHA1/SHA256 rows as the *multi-
// instance* totals needed for 10 Gbps ("Resource utilization belongs
// to multiple instances of non-pipelined IP cores", Table III note 2);
// tableIII stores the per-instance share so NewBank reconstructs the
// same totals.

func usageFor(name string) fpga.Usage {
	u, ok := tableIII[name]
	if !ok {
		panic("ndp: no Table III entry for " + name)
	}
	u.Component = name
	return u
}

// MD5 is the data-integrity unit used by Swift (Table II).
type MD5 struct{}

// Name implements Unit.
func (MD5) Name() string { return "md5" }

// UnitThroughputBps implements Unit (Table III: 0.97 Gbps).
func (MD5) UnitThroughputBps() float64 { return 0.97e9 }

// PerUnitUsage implements Unit.
func (MD5) PerUnitUsage() fpga.Usage { return usageFor("md5") }

// Transform passes data through and returns its MD5 digest as aux.
func (MD5) Transform(in []byte) ([]byte, []byte, error) {
	d := md5.Sum(in)
	return in, d[:], nil
}

// SHA1 is a data-integrity unit.
type SHA1 struct{}

// Name implements Unit.
func (SHA1) Name() string { return "sha1" }

// UnitThroughputBps implements Unit (Table III: 1.10 Gbps).
func (SHA1) UnitThroughputBps() float64 { return 1.10e9 }

// PerUnitUsage implements Unit.
func (SHA1) PerUnitUsage() fpga.Usage { return usageFor("sha1") }

// Transform passes data through and returns its SHA-1 digest as aux.
func (SHA1) Transform(in []byte) ([]byte, []byte, error) {
	d := sha1.Sum(in)
	return in, d[:], nil
}

// SHA256 is a data-integrity unit.
type SHA256 struct{}

// Name implements Unit.
func (SHA256) Name() string { return "sha256" }

// UnitThroughputBps implements Unit (Table III: 0.80 Gbps).
func (SHA256) UnitThroughputBps() float64 { return 0.80e9 }

// PerUnitUsage implements Unit.
func (SHA256) PerUnitUsage() fpga.Usage { return usageFor("sha256") }

// Transform passes data through and returns its SHA-256 digest as aux.
func (SHA256) Transform(in []byte) ([]byte, []byte, error) {
	d := sha256.Sum256(in)
	return in, d[:], nil
}

// CRC32 is the data-integrity unit used by HDFS (Table II).
type CRC32 struct{}

// Name implements Unit.
func (CRC32) Name() string { return "crc32" }

// UnitThroughputBps implements Unit (Table III: 10 Gbps).
func (CRC32) UnitThroughputBps() float64 { return 10e9 }

// PerUnitUsage implements Unit.
func (CRC32) PerUnitUsage() fpga.Usage { return usageFor("crc32") }

// Transform passes data through and returns the IEEE CRC32 (big
// endian) as aux.
func (CRC32) Transform(in []byte) ([]byte, []byte, error) {
	c := crc32.ChecksumIEEE(in)
	return in, []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}, nil
}

// AES256 encrypts or decrypts with AES-256-CTR (symmetric, so one
// unit type serves both directions, as the hardware core does).
type AES256 struct {
	Key [32]byte
	IV  [16]byte
}

// Name implements Unit.
func (*AES256) Name() string { return "aes256" }

// UnitThroughputBps implements Unit (Table III: 40.90 Gbps).
func (*AES256) UnitThroughputBps() float64 { return 40.90e9 }

// PerUnitUsage implements Unit.
func (*AES256) PerUnitUsage() fpga.Usage { return usageFor("aes256") }

// Transform returns the CTR keystream XOR of in (encrypt == decrypt).
func (a *AES256) Transform(in []byte) ([]byte, []byte, error) {
	block, err := aes.NewCipher(a.Key[:])
	if err != nil {
		return nil, nil, err
	}
	out := make([]byte, len(in))
	cipher.NewCTR(block, a.IV[:]).XORKeyStream(out, in)
	return out, nil, nil
}

// GZIP compresses (the HDFS/S3 path of Table II).
type GZIP struct{}

// Name implements Unit.
func (GZIP) Name() string { return "gzip" }

// UnitThroughputBps implements Unit (Table III: 100 Gbps).
func (GZIP) UnitThroughputBps() float64 { return 100e9 }

// PerUnitUsage implements Unit.
func (GZIP) PerUnitUsage() fpga.Usage { return usageFor("gzip") }

// Transform returns the gzip-compressed data.
func (GZIP) Transform(in []byte) ([]byte, []byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, nil, err
	}
	if _, err := w.Write(in); err != nil {
		return nil, nil, err
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), nil, nil
}

// GUNZIP decompresses; resource-wise it shares the gzip core.
type GUNZIP struct{}

// Name implements Unit.
func (GUNZIP) Name() string { return "gunzip" }

// UnitThroughputBps implements Unit.
func (GUNZIP) UnitThroughputBps() float64 { return 100e9 }

// PerUnitUsage implements Unit.
func (GUNZIP) PerUnitUsage() fpga.Usage {
	u := usageFor("gzip")
	u.Component = "gunzip"
	return u
}

// Transform returns the decompressed data.
func (GUNZIP) Transform(in []byte) ([]byte, []byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(in))
	if err != nil {
		return nil, nil, fmt.Errorf("gunzip: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("gunzip: %w", err)
	}
	return out, nil, nil
}
