package ndp

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"dcsctrl/internal/sim"
)

// Stream is a stateful instance of a unit processing one object chunk
// by chunk — the form the HDC Engine uses, where a multi-chunk D2D
// command flows through an NDP unit 64 KB at a time. Write returns
// the output produced for the chunk; Close returns any trailing
// output plus the auxiliary result (digest).
type Stream interface {
	Write(chunk []byte) ([]byte, error)
	Close() (tail, aux []byte, err error)
}

// Streamer is a Unit that can process objects incrementally. All
// units in this package implement it.
type Streamer interface {
	Unit
	NewStream() Stream
}

// StreamChunk processes one chunk through st, charging the bank's
// throughput model.
func (b *Bank) StreamChunk(p *sim.Proc, st Stream, chunk []byte) ([]byte, error) {
	p.Sleep(b.setup)
	b.bw.Transfer(p, len(chunk))
	out, err := st.Write(chunk)
	if err != nil {
		return nil, fmt.Errorf("ndp: %s stream: %w", b.unit.Name(), err)
	}
	b.bytes += int64(len(chunk))
	return out, nil
}

// StreamClose finalizes st (no simulated cost beyond a setup slot).
func (b *Bank) StreamClose(p *sim.Proc, st Stream) (tail, aux []byte, err error) {
	p.Sleep(b.setup)
	tail, aux, err = st.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("ndp: %s close: %w", b.unit.Name(), err)
	}
	b.invocations++
	return tail, aux, nil
}

// hashStream passes data through while accumulating a digest.
type hashStream struct {
	h     hash.Hash
	final func(hash.Hash) []byte
}

func (s *hashStream) Write(chunk []byte) ([]byte, error) {
	s.h.Write(chunk)
	return chunk, nil
}

func (s *hashStream) Close() ([]byte, []byte, error) {
	return nil, s.final(s.h), nil
}

// NewStream implements Streamer.
func (MD5) NewStream() Stream {
	return &hashStream{h: md5.New(), final: func(h hash.Hash) []byte { return h.Sum(nil) }}
}

// NewStream implements Streamer.
func (SHA1) NewStream() Stream {
	return &hashStream{h: sha1.New(), final: func(h hash.Hash) []byte { return h.Sum(nil) }}
}

// NewStream implements Streamer.
func (SHA256) NewStream() Stream {
	return &hashStream{h: sha256.New(), final: func(h hash.Hash) []byte { return h.Sum(nil) }}
}

// NewStream implements Streamer.
func (CRC32) NewStream() Stream {
	return &hashStream{h: crc32.NewIEEE(), final: func(h hash.Hash) []byte { return h.Sum(nil) }}
}

// ctrStream carries the CTR keystream position across chunks.
type ctrStream struct {
	s cipher.Stream
}

func (s *ctrStream) Write(chunk []byte) ([]byte, error) {
	out := make([]byte, len(chunk))
	s.s.XORKeyStream(out, chunk)
	return out, nil
}

func (s *ctrStream) Close() ([]byte, []byte, error) { return nil, nil, nil }

// NewStream implements Streamer.
func (a *AES256) NewStream() Stream {
	block, err := aes.NewCipher(a.Key[:])
	if err != nil {
		panic(err) // 32-byte key is correct by construction
	}
	return &ctrStream{s: cipher.NewCTR(block, a.IV[:])}
}

// gzipStream emits compressed bytes incrementally (Flush per chunk so
// downstream consumers make progress).
type gzipStream struct {
	buf bytes.Buffer
	w   *gzip.Writer
}

func (s *gzipStream) Write(chunk []byte) ([]byte, error) {
	if _, err := s.w.Write(chunk); err != nil {
		return nil, err
	}
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	out := append([]byte(nil), s.buf.Bytes()...)
	s.buf.Reset()
	return out, nil
}

func (s *gzipStream) Close() ([]byte, []byte, error) {
	if err := s.w.Close(); err != nil {
		return nil, nil, err
	}
	return append([]byte(nil), s.buf.Bytes()...), nil, nil
}

// NewStream implements Streamer.
func (GZIP) NewStream() Stream {
	s := &gzipStream{}
	w, err := gzip.NewWriterLevel(&s.buf, gzip.BestSpeed)
	if err != nil {
		panic(err)
	}
	s.w = w
	return s
}

// gunzipStream buffers compressed input and decompresses at Close
// (gzip framing cannot be finalized before the trailer arrives).
type gunzipStream struct {
	buf bytes.Buffer
}

func (s *gunzipStream) Write(chunk []byte) ([]byte, error) {
	s.buf.Write(chunk)
	return nil, nil
}

func (s *gunzipStream) Close() ([]byte, []byte, error) {
	r, err := gzip.NewReader(&s.buf)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	return out, nil, nil
}

// NewStream implements Streamer.
func (GUNZIP) NewStream() Stream { return &gunzipStream{} }

// Interface conformance checks.
var (
	_ Streamer = MD5{}
	_ Streamer = SHA1{}
	_ Streamer = SHA256{}
	_ Streamer = CRC32{}
	_ Streamer = (*AES256)(nil)
	_ Streamer = GZIP{}
	_ Streamer = GUNZIP{}
)
