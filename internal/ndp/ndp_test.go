package ndp

import (
	"bytes"
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"hash/crc32"
	"testing"
	"testing/quick"

	"dcsctrl/internal/fpga"
	"dcsctrl/internal/sim"
)

func data(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*17 + 3)
	}
	return out
}

func TestIntegrityUnitsMatchStdlib(t *testing.T) {
	in := data(10000)
	md := md5.Sum(in)
	s1 := sha1.Sum(in)
	s256 := sha256.Sum256(in)
	c := crc32.ChecksumIEEE(in)
	crcBE := []byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)}

	cases := []struct {
		unit Unit
		want []byte
	}{
		{MD5{}, md[:]},
		{SHA1{}, s1[:]},
		{SHA256{}, s256[:]},
		{CRC32{}, crcBE},
	}
	for _, tc := range cases {
		out, aux, err := tc.unit.Transform(in)
		if err != nil {
			t.Fatalf("%s: %v", tc.unit.Name(), err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("%s modified pass-through data", tc.unit.Name())
		}
		if !bytes.Equal(aux, tc.want) {
			t.Fatalf("%s digest mismatch", tc.unit.Name())
		}
	}
}

func TestAESRoundTripProperty(t *testing.T) {
	unit := &AES256{Key: [32]byte{1, 2, 3}, IV: [16]byte{9}}
	f := func(in []byte) bool {
		ct, _, err := unit.Transform(in)
		if err != nil {
			return false
		}
		if len(in) > 0 && bytes.Equal(ct, in) {
			return false // encryption must change non-empty data
		}
		pt, _, err := unit.Transform(ct) // CTR is symmetric
		return err == nil && bytes.Equal(pt, in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAESKeyMatters(t *testing.T) {
	a := &AES256{Key: [32]byte{1}}
	b := &AES256{Key: [32]byte{2}}
	in := data(100)
	ca, _, _ := a.Transform(in)
	cb, _, _ := b.Transform(in)
	if bytes.Equal(ca, cb) {
		t.Fatal("different keys produced identical ciphertext")
	}
}

func TestGzipRoundTripProperty(t *testing.T) {
	f := func(in []byte) bool {
		ct, _, err := (GZIP{}).Transform(in)
		if err != nil {
			return false
		}
		pt, _, err := (GUNZIP{}).Transform(ct)
		return err == nil && bytes.Equal(pt, in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGzipCompresses(t *testing.T) {
	in := bytes.Repeat([]byte("scale-out storage "), 1000)
	ct, _, err := (GZIP{}).Transform(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) >= len(in)/2 {
		t.Fatalf("repetitive data compressed %d -> %d", len(in), len(ct))
	}
}

func TestGunzipRejectsGarbage(t *testing.T) {
	if _, _, err := (GUNZIP{}).Transform([]byte("not gzip")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestUnitsForTableIII(t *testing.T) {
	// Instances needed to sustain 10 Gbps, per Table III throughputs.
	cases := []struct {
		unit Unit
		want int
	}{
		{MD5{}, 11}, {SHA1{}, 10}, {SHA256{}, 13},
		{&AES256{}, 1}, {CRC32{}, 1}, {GZIP{}, 1},
	}
	for _, tc := range cases {
		if got := UnitsFor(tc.unit, TargetBps); got != tc.want {
			t.Fatalf("%s: %d units, want %d", tc.unit.Name(), got, tc.want)
		}
	}
}

func TestBankProvisioningClaimsResources(t *testing.T) {
	budget := fpga.NewBudget(fpga.Virtex7VC707())
	for _, u := range fpga.ControllersUsage() {
		budget.MustClaim(u)
	}
	env := sim.NewEnv()
	bank, err := NewBank(env, budget, MD5{}, TargetBps)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Units() != 11 {
		t.Fatalf("units = %d", bank.Units())
	}
	if bank.AggregateBps() < TargetBps {
		t.Fatalf("aggregate %.2f Gbps < target", bank.AggregateBps()/1e9)
	}
	luts, _, _, _ := budget.Totals()
	if luts <= 116344 {
		t.Fatal("bank claimed no LUTs")
	}
	// The remaining fabric still fits the other Table III banks — the
	// paper's headroom claim (§IV-C).
	for _, u := range []Unit{CRC32{}, &AES256{}, GZIP{}} {
		if _, err := NewBank(env, budget, u, TargetBps); err != nil {
			t.Fatalf("no headroom for %s: %v", u.Name(), err)
		}
	}
}

func TestBankRejectedWhenDeviceFull(t *testing.T) {
	budget := fpga.NewBudget(fpga.Device{Name: "tiny", LUTs: 100, Registers: 100, BRAMs: 10})
	env := sim.NewEnv()
	if _, err := NewBank(env, budget, MD5{}, TargetBps); err == nil {
		t.Fatal("bank fit in a 100-LUT device")
	}
}

func TestBankProcessingTime(t *testing.T) {
	budget := fpga.NewBudget(fpga.Virtex7VC707())
	env := sim.NewEnv()
	bank, err := NewBank(env, budget, CRC32{}, TargetBps)
	if err != nil {
		t.Fatal(err)
	}
	in := data(64 << 10)
	var took sim.Time
	var aux []byte
	env.Spawn("proc", func(p *sim.Proc) {
		start := p.Now()
		_, aux, err = bank.Process(p, in)
		took = p.Now() - start
	})
	env.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	want := 500*sim.Nanosecond + sim.BpsToTime(len(in), 10e9)
	if took != want {
		t.Fatalf("processing took %v, want %v", took, want)
	}
	c := crc32.ChecksumIEEE(in)
	if aux[0] != byte(c>>24) || aux[3] != byte(c) {
		t.Fatal("crc mismatch")
	}
	inv, by := bank.Stats()
	if inv != 1 || by != int64(len(in)) {
		t.Fatalf("stats: %d %d", inv, by)
	}
}

func TestBankSerializesStreams(t *testing.T) {
	budget := fpga.NewBudget(fpga.Virtex7VC707())
	env := sim.NewEnv()
	bank, _ := NewBank(env, budget, CRC32{}, TargetBps)
	in := data(64 << 10)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		env.Spawn("proc", func(p *sim.Proc) {
			bank.Process(p, in)
			ends = append(ends, p.Now())
		})
	}
	env.Run(-1)
	if ends[1] < 2*sim.BpsToTime(len(in), 10e9) {
		t.Fatalf("two streams did not serialize: %v", ends)
	}
}

func TestTableIIIResourceTotals(t *testing.T) {
	// Reconstructing the multi-instance totals the paper prints.
	cases := []struct {
		unit      Unit
		wantLUTs  int
		tolerance int
	}{
		{MD5{}, 8970, 11},   // 11 instances × per-instance share
		{SHA1{}, 10760, 10}, // integer division rounding
		{SHA256{}, 13090, 13},
		{&AES256{}, 10689, 0},
		{CRC32{}, 93, 0},
		{GZIP{}, 16273, 0},
	}
	for _, tc := range cases {
		n := UnitsFor(tc.unit, TargetBps)
		got := tc.unit.PerUnitUsage().LUTs * n
		diff := got - tc.wantLUTs
		if diff < 0 {
			diff = -diff
		}
		if diff > tc.tolerance {
			t.Fatalf("%s: %d LUTs for 10 Gbps, want %d±%d", tc.unit.Name(), got, tc.wantLUTs, tc.tolerance)
		}
	}
}
