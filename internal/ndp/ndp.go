// Package ndp implements the HDC Engine's near-device processing
// units (§III-D): data-integrity, encryption, and compression IP cores
// that run between device operations so D2D transfers need no host
// CPU. Each unit carries the Table III FPGA resource/throughput model
// and performs the real transformation (stdlib crypto/compress), so
// pipelines are verified end to end, byte for byte.
package ndp

import (
	"fmt"

	"dcsctrl/internal/fpga"
	"dcsctrl/internal/sim"
)

// Unit is one IP core type.
type Unit interface {
	// Name is the IP core's short name ("md5", "aes256", ...).
	Name() string
	// UnitThroughputBps is one instance's data throughput (Table III).
	UnitThroughputBps() float64
	// PerUnitUsage is one instance's FPGA resource cost (Table III).
	PerUnitUsage() fpga.Usage
	// Transform processes data, returning the output bytes and any
	// auxiliary result (digest for integrity units, nil otherwise).
	Transform(in []byte) (out, aux []byte, err error)
}

// TargetBps is the line rate the paper provisions NDP banks for.
const TargetBps = 10e9

// UnitsFor returns the number of instances needed to sustain bps.
func UnitsFor(u Unit, bps float64) int {
	n := 1
	for float64(n)*u.UnitThroughputBps() < bps {
		n++
	}
	return n
}

// Bank is a provisioned set of identical units plus the timing model:
// processing occupies the bank's aggregate bandwidth, with a small
// per-invocation setup cost (buffer switch, unit dispatch).
type Bank struct {
	unit  Unit
	units int
	bw    *sim.BandwidthServer
	setup sim.Time

	invocations int64
	bytes       int64
}

// NewBank provisions enough instances of u to sustain targetBps and
// claims their FPGA resources from budget (error when the device is
// too full — the paper's flexibility constraint made concrete).
func NewBank(env *sim.Env, budget *fpga.Budget, u Unit, targetBps float64) (*Bank, error) {
	n := UnitsFor(u, targetBps)
	per := u.PerUnitUsage()
	total := fpga.Usage{
		Component:   "ndp-" + u.Name(),
		LUTs:        per.LUTs * n,
		Registers:   per.Registers * n,
		BRAMs:       per.BRAMs * n,
		PowerW:      per.PowerW * float64(n),
		MaxClockMHz: per.MaxClockMHz,
	}
	if err := budget.Claim(total); err != nil {
		return nil, fmt.Errorf("ndp: provisioning %d×%s: %w", n, u.Name(), err)
	}
	agg := float64(n) * u.UnitThroughputBps()
	return &Bank{
		unit:  u,
		units: n,
		bw:    sim.NewBandwidthServer(env, "ndp-"+u.Name(), agg, 0),
		setup: 500 * sim.Nanosecond,
	}, nil
}

// Unit returns the bank's IP core type.
func (b *Bank) Unit() Unit { return b.unit }

// Units returns the instance count.
func (b *Bank) Units() int { return b.units }

// AggregateBps returns the bank's total throughput.
func (b *Bank) AggregateBps() float64 { return b.bw.Rate() }

// Stats returns invocation and byte counters.
func (b *Bank) Stats() (invocations, bytes int64) { return b.invocations, b.bytes }

// Process runs the transformation over data, charging simulated time
// for the bank's throughput, and returns (output, aux).
func (b *Bank) Process(p *sim.Proc, data []byte) ([]byte, []byte, error) {
	p.Sleep(b.setup)
	b.bw.Transfer(p, len(data))
	out, aux, err := b.unit.Transform(data)
	if err != nil {
		return nil, nil, fmt.Errorf("ndp: %s: %w", b.unit.Name(), err)
	}
	b.invocations++
	b.bytes += int64(len(data))
	return out, aux, nil
}
