package fault

import (
	"fmt"

	"dcsctrl/internal/sim/snap"
)

// Checkpoint support (DESIGN.md §17). The injector's schedule (seed +
// profile) is configuration — the restore target is built with the
// identical injector — so the snapshot carries only the mutable part:
// each site's PRNG position and draw/fire counters. Encoding iterates
// the registered site list (stable order), never the streams map, so
// encode order cannot leak map iteration order.

// SnapSection implements snap.Snapshotter.
func (in *Injector) SnapSection() string { return "fault" }

// SnapSave encodes the per-site stream positions. Sites without a
// stream (absent from the profile) encode a presence bit of zero.
func (in *Injector) SnapSave(w *snap.Writer) error {
	w.U64(in.seed)
	w.Str(in.profile.Name)
	sites := Sites()
	w.U32(uint32(len(sites)))
	for _, s := range sites {
		w.Str(string(s))
		st, ok := in.streams[s]
		w.Bool(ok)
		if ok {
			w.U64(st.state)
			w.I64(st.draws)
			w.I64(st.hits)
		}
	}
	return nil
}

// SnapLoad overlays the captured stream positions onto an injector
// built from the identical (seed, profile).
func (in *Injector) SnapLoad(r *snap.Reader) error {
	seed := r.U64()
	profName := r.Str()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if seed != in.seed || profName != in.profile.Name {
		return fmt.Errorf("fault: snapshot injector (seed=%d profile=%q), target (seed=%d profile=%q)",
			seed, profName, in.seed, in.profile.Name)
	}
	sites := Sites()
	if n != len(sites) {
		return fmt.Errorf("fault: snapshot has %d sites, build registers %d", n, len(sites))
	}
	for _, s := range sites {
		name := r.Str()
		present := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if name != string(s) {
			return fmt.Errorf("fault: snapshot site %q, build registers %q", name, s)
		}
		st, ok := in.streams[s]
		if present != ok {
			return fmt.Errorf("fault: site %q stream presence mismatch (snapshot=%v target=%v)", s, present, ok)
		}
		if present {
			st.state = r.U64()
			st.draws = r.I64()
			st.hits = r.I64()
		}
	}
	return r.Err()
}
