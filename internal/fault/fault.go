// Package fault is the seed-deterministic fault-injection layer for
// the simulated hardware. Every device model exposes named injection
// sites at its hardware boundary (a posted write leaving the root
// complex, a flash page read, a frame hitting the wire, a command
// entering the HDC engine); an Injector decides per event whether the
// fault fires.
//
// Determinism is the design center: each site draws from its own
// xorshift64* stream, seeded by mixing the injector seed with the
// site name. Fault decisions therefore depend only on (seed, site,
// draw index) — never on map iteration order, wall-clock time, or
// which other sites exist — so a failure run replays bit-identically
// and recovery paths are assertable in regression tests.
//
// A fault schedule is plain data: a Profile maps sites to a firing
// probability and an optional count limit. Profiles carry no code,
// so they can be named on the dcsctl command line, embedded in test
// tables, and diffed between runs.
package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Site names one injection point at a hardware boundary. Sites are
// registered here, centrally, so profiles can be validated and stats
// reported uniformly.
type Site string

// The injection sites, grouped by device model.
const (
	// PCIeDelayPosted delays a posted MMIO write in flight (switch
	// congestion); software sees nothing but latency.
	PCIeDelayPosted Site = "pcie.delay-posted"
	// PCIeDropPosted drops a posted write TLP; the data-link layer's
	// ACK/NAK protocol replays it after the replay timer, so delivery
	// is delayed but guaranteed (transparent to software, as on real
	// PCIe).
	PCIeDropPosted Site = "pcie.drop-posted"
	// PCIeLinkDegrade stalls a DMA transfer as if the link retrained
	// to a lower width for a moment.
	PCIeLinkDegrade Site = "pcie.link-degrade"

	// NVMeReadError fails a flash read with an uncorrectable-media
	// status in the CQ entry; the driver must retry.
	NVMeReadError Site = "nvme.read-error"
	// NVMeWriteError fails a flash program operation with a media
	// status before any data is committed; retry is idempotent.
	NVMeWriteError Site = "nvme.write-error"

	// NICCorruptFrame corrupts a frame on the wire. The receiver's
	// checksum verification drops it and the link layer replays the
	// original, preserving FIFO delivery order.
	NICCorruptFrame Site = "nic.crc-corrupt"
	// NICStuckBD makes a buffer-descriptor fetch return stale data;
	// the NIC re-reads the descriptor after a recovery delay.
	NICStuckBD Site = "nic.stuck-bd"

	// HDCEngineStall stalls the engine's command parser briefly
	// (transient pipeline hang, well below the driver timeout).
	HDCEngineStall Site = "hdc.engine-stall"
	// HDCPoisonCpl poisons a command at admission: the completion
	// entry carries a transient error status and nothing has moved,
	// so the driver's re-issue is idempotent.
	HDCPoisonCpl Site = "hdc.poison-cpl"
	// HDCEngineFail kills the engine's command parser outright. In-
	// flight commands never complete; the driver's command timeout
	// declares the engine dead and ops fall back to the host path.
	HDCEngineFail Site = "hdc.engine-fail"
)

// Sites lists every registered site in stable order.
func Sites() []Site {
	return []Site{
		PCIeDelayPosted, PCIeDropPosted, PCIeLinkDegrade,
		NVMeReadError, NVMeWriteError,
		NICCorruptFrame, NICStuckBD,
		HDCEngineStall, HDCPoisonCpl, HDCEngineFail,
	}
}

// Rule is the plain-data schedule for one site.
type Rule struct {
	// Prob is the per-draw firing probability in [0,1].
	Prob float64
	// Limit caps the number of times the site fires; 0 means
	// unlimited. Limit with Prob=1 means "fail exactly the first
	// Limit attempts", the shape deterministic recovery tests want.
	Limit int
}

// Profile is a named, plain-data fault schedule.
type Profile struct {
	Name  string
	Rules map[Site]Rule
}

// None returns the empty profile: no site ever fires.
func None() Profile { return Profile{Name: "none"} }

// Light returns a low-rate profile across every recoverable site —
// enough to exercise each recovery path in a workload run without
// dominating it.
func Light() Profile {
	return Profile{Name: "light", Rules: map[Site]Rule{
		PCIeDelayPosted: {Prob: 0.01},
		PCIeDropPosted:  {Prob: 0.005},
		PCIeLinkDegrade: {Prob: 0.005},
		NVMeReadError:   {Prob: 0.01},
		NVMeWriteError:  {Prob: 0.01},
		NICCorruptFrame: {Prob: 0.005},
		NICStuckBD:      {Prob: 0.005},
		HDCEngineStall:  {Prob: 0.01},
		HDCPoisonCpl:    {Prob: 0.02},
	}}
}

// Heavy returns an aggressive profile: every recoverable site fires
// often enough that multi-retry sequences and backoff are exercised.
func Heavy() Profile {
	return Profile{Name: "heavy", Rules: map[Site]Rule{
		PCIeDelayPosted: {Prob: 0.05},
		PCIeDropPosted:  {Prob: 0.02},
		PCIeLinkDegrade: {Prob: 0.02},
		NVMeReadError:   {Prob: 0.05},
		NVMeWriteError:  {Prob: 0.05},
		NICCorruptFrame: {Prob: 0.02},
		NICStuckBD:      {Prob: 0.02},
		HDCEngineStall:  {Prob: 0.05},
		HDCPoisonCpl:    {Prob: 0.08},
	}}
}

// EngineFail returns the graceful-degradation scenario: the HDC
// engine dies on the first command it parses and every D2D op must
// fall back to the host-mediated path.
func EngineFail() Profile {
	return Profile{Name: "engine-fail", Rules: map[Site]Rule{
		HDCEngineFail: {Prob: 1, Limit: 1},
	}}
}

// ProfileByName resolves a named profile (for the dcsctl -faults
// flag).
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "", "none":
		return None(), true
	case "light":
		return Light(), true
	case "heavy":
		return Heavy(), true
	case "engine-fail":
		return EngineFail(), true
	}
	return Profile{}, false
}

// ProfileNames lists the named profiles.
func ProfileNames() []string { return []string{"none", "light", "heavy", "engine-fail"} }

// Validate rejects unknown sites and out-of-range rules.
func (pr Profile) Validate() error {
	known := map[Site]bool{}
	for _, s := range Sites() {
		known[s] = true
	}
	for s, r := range pr.Rules {
		if !known[s] {
			return fmt.Errorf("fault: unknown site %q", s)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("fault: site %q probability %v out of [0,1]", s, r.Prob)
		}
		if r.Limit < 0 {
			return fmt.Errorf("fault: site %q negative limit %d", s, r.Limit)
		}
	}
	return nil
}

// String renders the profile compactly, sites in stable order.
func (pr Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", pr.Name)
	first := true
	for _, s := range Sites() {
		r, ok := pr.Rules[s]
		if !ok {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "%s:%g", s, r.Prob)
		if r.Limit > 0 {
			fmt.Fprintf(&b, "/%d", r.Limit)
		}
	}
	b.WriteString("}")
	return b.String()
}

// stream is one site's private PRNG plus counters (xorshift64*, the
// same generator as internal/workload, duplicated so fault never
// perturbs workload replay).
type stream struct {
	state uint64
	draws int64
	hits  int64
}

func (st *stream) next() uint64 {
	x := st.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	st.state = x
	return x * 0x2545F4914F6CDD1D
}

// SiteStats reports one site's draw/fire counts.
type SiteStats struct {
	Draws    int64
	Injected int64
}

// Injector makes the per-event fault decisions for one simulation.
// All methods are nil-receiver safe — device models call Hit
// unconditionally and a nil injector means "no faults". The Injector
// is not goroutine-safe; the discrete-event simulation is single-
// threaded.
type Injector struct {
	seed    uint64
	profile Profile
	streams map[Site]*stream
}

// NewInjector builds an injector for the profile. It panics on an
// invalid profile (a schedule is configuration; failing fast beats
// silently skipping sites).
func NewInjector(seed uint64, profile Profile) *Injector {
	if err := profile.Validate(); err != nil {
		panic(err)
	}
	in := &Injector{seed: seed, profile: profile, streams: map[Site]*stream{}}
	for s := range profile.Rules {
		in.streams[s] = &stream{state: mix(seed, string(s))}
	}
	return in
}

// mix derives a site stream's initial state from the injector seed
// and the site name (FNV-1a over the name, folded with the seed
// through splitmix64-style finalization). Zero is remapped so
// xorshift never sticks.
func mix(seed uint64, site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	z := seed ^ h
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// Hit reports whether the fault at site fires for this event, and
// advances that site's stream. Nil-safe: a nil injector never fires.
func (in *Injector) Hit(site Site) bool {
	if in == nil {
		return false
	}
	st, ok := in.streams[site]
	if !ok {
		return false
	}
	r := in.profile.Rules[site]
	if r.Limit > 0 && st.hits >= int64(r.Limit) {
		return false
	}
	st.draws++
	u := float64(st.next()>>11) / float64(1<<53)
	if u >= r.Prob {
		return false
	}
	st.hits++
	return true
}

// Armed reports whether the site could still fire or draw: a stream
// exists and the fire limit (if any) is not exhausted. Hit on an
// unarmed site is a pure no-op — it records no draw and returns false
// — so fast paths may legally skip Hit calls for unarmed sites without
// perturbing any stream or statistic. Nil-safe: nothing is armed on a
// nil injector.
func (in *Injector) Armed(site Site) bool {
	if in == nil {
		return false
	}
	st, ok := in.streams[site]
	if !ok {
		return false
	}
	r := in.profile.Rules[site]
	return r.Limit == 0 || st.hits < int64(r.Limit)
}

// Seed returns the injector seed (nil-safe).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Profile returns the schedule the injector was built from
// (nil-safe; the zero Profile for nil).
func (in *Injector) ProfileUsed() Profile {
	if in == nil {
		return Profile{}
	}
	return in.profile
}

// Injected returns how many times the site has fired (nil-safe).
func (in *Injector) Injected(site Site) int64 {
	if in == nil {
		return 0
	}
	st, ok := in.streams[site]
	if !ok {
		return 0
	}
	return st.hits
}

// TotalInjected sums fires across all sites (nil-safe).
func (in *Injector) TotalInjected() int64 {
	if in == nil {
		return 0
	}
	var n int64
	for _, st := range in.streams {
		n += st.hits
	}
	return n
}

// Stats returns per-site draw/fire counts for every site with at
// least one draw, keyed by site (nil-safe; empty map for nil).
func (in *Injector) Stats() map[Site]SiteStats {
	out := map[Site]SiteStats{}
	if in == nil {
		return out
	}
	for s, st := range in.streams {
		if st.draws > 0 {
			out[s] = SiteStats{Draws: st.draws, Injected: st.hits}
		}
	}
	return out
}

// StatsString renders Stats() one line per site in stable order —
// for dcsctl and test failure messages.
func (in *Injector) StatsString() string {
	stats := in.Stats()
	keys := make([]string, 0, len(stats))
	for s := range stats {
		keys = append(keys, string(s))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		st := stats[Site(k)]
		fmt.Fprintf(&b, "%-20s %8d draws %6d injected\n", k, st.Draws, st.Injected)
	}
	return b.String()
}
