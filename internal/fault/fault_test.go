package fault

import "testing"

// Same seed, same profile: the decision sequence at every site must
// replay bit-identically.
func TestDeterministicStreams(t *testing.T) {
	run := func(seed uint64) []bool {
		in := NewInjector(seed, Heavy())
		var out []bool
		for i := 0; i < 2000; i++ {
			for _, s := range Sites() {
				out = append(out, in.Hit(s))
			}
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged for identical seeds", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical decision sequences")
	}
}

// Streams are per-site: drawing on one site must not perturb another
// site's sequence.
func TestStreamsIndependentAcrossSites(t *testing.T) {
	drawSite := func(interleave bool) []bool {
		in := NewInjector(7, Heavy())
		var out []bool
		for i := 0; i < 500; i++ {
			if interleave {
				in.Hit(NICCorruptFrame) // extra traffic on another site
				in.Hit(PCIeDropPosted)
			}
			out = append(out, in.Hit(NVMeReadError))
		}
		return out
	}
	plain, interleaved := drawSite(false), drawSite(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("nvme.read-error decision %d changed when other sites drew", i)
		}
	}
}

func TestLimitCapsInjections(t *testing.T) {
	in := NewInjector(1, Profile{Name: "t", Rules: map[Site]Rule{
		HDCPoisonCpl: {Prob: 1, Limit: 3},
	}})
	fired := 0
	for i := 0; i < 100; i++ {
		if in.Hit(HDCPoisonCpl) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("limit 3 with prob 1 fired %d times", fired)
	}
	if got := in.Injected(HDCPoisonCpl); got != 3 {
		t.Fatalf("Injected = %d, want 3", got)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Hit(NVMeReadError) {
		t.Fatal("nil injector fired")
	}
	if in.TotalInjected() != 0 || in.Injected(NICStuckBD) != 0 || in.Seed() != 0 {
		t.Fatal("nil injector reported nonzero state")
	}
	if len(in.Stats()) != 0 {
		t.Fatal("nil injector reported stats")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("profile %q not found", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %q invalid: %v", name, err)
		}
		if name != "none" && len(p.Rules) == 0 {
			t.Fatalf("profile %q has no rules", name)
		}
	}
	if _, ok := ProfileByName("no-such"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "x", Rules: map[Site]Rule{Site("bogus.site"): {Prob: 0.5}}},
		{Name: "x", Rules: map[Site]Rule{NVMeReadError: {Prob: 1.5}}},
		{Name: "x", Rules: map[Site]Rule{NVMeReadError: {Prob: 0.5, Limit: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %d validated unexpectedly", i)
		}
	}
}

// Probabilities are honoured to rough tolerance — a sanity check that
// the uniform draw is wired up correctly.
func TestProbabilityRoughlyHonoured(t *testing.T) {
	in := NewInjector(9, Profile{Name: "t", Rules: map[Site]Rule{
		NICCorruptFrame: {Prob: 0.25},
	}})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if in.Hit(NICCorruptFrame) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("prob 0.25 fired at rate %.3f", frac)
	}
}
